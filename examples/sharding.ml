(* Sharded serving layer walkthrough:
   - build a 4-way hash-partitioned ensemble of FAST+FAIR trees,
   - push a mixed workload through the batched group-flush scheduler,
   - run a globally ordered cross-shard range scan,
   - crash every shard and recover them in parallel on simulated
     threads.

   Run with: dune exec examples/sharding.exe *)

module Arena = Ff_pmem.Arena
module Stats = Ff_pmem.Stats
module Prng = Ff_util.Prng
module Histogram = Ff_util.Histogram
module W = Ff_workload.Workload
module Shard = Ff_shard.Shard

let () =
  let shards = 4 in
  let t = Shard.create ~inner:"fastfair" ~shards ~batch_cap:64 ~group:true () in

  (* A deterministic per-shard-seeded workload, as the bench does. *)
  let trace =
    Array.concat
      (List.init shards (fun s ->
           W.mixed_trace
             (Prng.create (W.shard_seed ~base:42 ~shard:s))
             ~n:5_000 ~space:40_000
             {
               W.insert_pct = 70;
               search_pct = 20;
               delete_pct = 5;
               range_pct = 5;
               range_len = 16;
               read_latest = false;
               scan_len_max = 0;
             }))
  in
  let checksum = Shard.submit t trace in
  Printf.printf "submitted %d ops in %d batches (checksum %d)\n"
    (Array.length trace) (Shard.batches t) checksum;

  let occ = Shard.occupancy t in
  let mx, mean = Shard.imbalance t in
  Printf.printf "occupancy: [%s], imbalance max/mean = %.2f\n"
    (String.concat "; " (Array.to_list (Array.map string_of_int occ)))
    (float_of_int mx /. mean);

  let fences =
    Array.fold_left
      (fun acc a -> acc + (Arena.total_stats a).Stats.fences)
      0 (Shard.arenas t)
  in
  Printf.printf "group flush: %.3f fences/op across all shards\n"
    (float_of_int fences /. float_of_int (Array.length trace));

  let lat = Shard.merged_latency t in
  Printf.printf "latency (all shards merged): p50 %d ns, p99 %d ns\n"
    (Histogram.percentile lat 50.) (Histogram.percentile lat 99.);

  (* A scan that straddles every shard comes back globally ordered. *)
  let seen = ref 0 and last = ref 0 and ordered = ref true in
  Shard.range t ~lo:1 ~hi:40_000 (fun k _ ->
      if k <= !last then ordered := false;
      last := k;
      incr seen);
  Printf.printf "merged range: %d keys, globally ordered = %b\n" !seen !ordered;

  (* Crash all shards, then recover each on its own simulated thread. *)
  Shard.power_fail t (Ff_pmem.Storelog.Random_eviction (Prng.create 9));
  let o = Shard.recover_parallel t in
  Printf.printf "parallel recovery of %d shards: makespan %.1f us (threads: %s)\n"
    shards
    (float_of_int o.Ff_mcsim.Mcsim.makespan_ns /. 1000.)
    (String.concat ", "
       (Array.to_list
          (Array.map
             (fun ns -> Printf.sprintf "%.1fus" (float_of_int ns /. 1000.))
             o.Ff_mcsim.Mcsim.thread_end_ns)));
  let again = ref 0 in
  Shard.range t ~lo:1 ~hi:40_000 (fun _ _ -> incr again);
  Printf.printf "after recovery: %d keys still resident\n" !again
