(* ffcli: exercise the persistent indexes from the command line.

   Every structure-facing subcommand resolves its index through
   Ff_index.Registry, so each registered structure (including blink and
   the KV layer) is reachable here with no per-binary builder table.

   Subcommands:
     list        registered indexes and their capability matrix
     fuzz        random ops cross-checked against a model
     crash-test  crash-point sweep with recovery validation
     stats       PM event statistics for a load (text or --json;
                 --shards adds per-shard fault/degradation blocks)
     dump        print the structure of a small FAST+FAIR tree
     persist     save a persisted PM image to a file and reload it
     trace       record a multithreaded run as a Perfetto JSON trace
     top         SLO/profiler dashboard from a live run or a snapshot
     check       model-check schedules and crash states (--tx switches
                 to whole-transaction durable serializability,
                 --snapshot to snapshot serializability, --rebalance
                 to lost-write freedom under live resharding, --replica
                 to no-lost-acks replication; --all smoke-sweeps every
                 family with one verdict line each)
     tx          failure-atomic multi-key transfers: crash one transfer
                 mid-commit at every sampled store, audit the balances
     snapshot    MVCC time travel: pin epochs, crash, read the old
                 world back, reclaim with epoch GC
     backup      online backup of a pinned snapshot into a second
                 arena while the source keeps serving writes
     rebalance   live shard split / merge / migrate under a concurrent
                 writer, auditing zero lost acknowledged writes
     cluster     replicated serving over a lossy fabric: partition and
                 power-fail the hot shard's primary under a concurrent
                 writer, fail over, resync, audit zero lost acks *)

module Arena = Ff_pmem.Arena
module Config = Ff_pmem.Config
module Stats = Ff_pmem.Stats
module Storelog = Ff_pmem.Storelog
module Prng = Ff_util.Prng
module Intf = Ff_index.Intf
module Descriptor = Ff_index.Descriptor
module Registry = Ff_index.Registry
module Locks = Ff_index.Locks
module W = Ff_workload.Workload
module Harness = Ff_workload.Crash_harness
module Shard = Ff_shard.Shard
module Rebalance = Ff_rebalance.Rebalance
module Scrub = Ff_scrub.Scrub
module Tree = Ff_fastfair.Tree
open Cmdliner

let mk_arena ?(read_ns = 300) ?(write_ns = 300) words =
  Arena.create ~config:(Config.pm ~read_ns ~write_ns ()) ~words ()

(* Node size used by the crash sweep: small nodes maximize structural
   events (splits, merges) per store. *)
let small_nodes d =
  {
    Descriptor.default_config with
    Descriptor.node_bytes =
      (if d.Descriptor.caps.Descriptor.tunable_node_bytes then Some 256 else None);
  }

(* ------------------------------------------------------------------ *)
(* list                                                                *)
(* ------------------------------------------------------------------ *)

let list_indexes names_only persistent_only =
  let ds =
    List.filter
      (fun d ->
        (not persistent_only) || d.Descriptor.caps.Descriptor.is_persistent)
      (Registry.all ())
  in
  if names_only then List.iter (fun d -> print_endline d.Descriptor.name) ds
  else begin
    (* Aligned capability matrix: one row per index, one column per
       capability, so "which indexes can migrate" (reloc) is a single
       glance down a column. *)
    let b v = if v then "yes" else "-" in
    let row name range del recov pers locks node reloc scrub tx snap =
      Printf.printf "%-18s %-5s %-4s %-4s %-5s %-10s %-8s %-6s %-6s %-4s %-4s\n"
        name range del recov pers locks node reloc scrub tx snap
    in
    row "name" "range" "del" "rec" "pers" "locks" "node" "reloc" "scrub" "tx"
      "snap";
    List.iter
      (fun d ->
        let c = d.Descriptor.caps in
        row d.Descriptor.name (b c.Descriptor.has_range)
          (b c.Descriptor.has_delete)
          (b c.Descriptor.has_recovery)
          (b c.Descriptor.is_persistent)
          (String.concat "/"
             (List.map
                (function Locks.Single -> "single" | Locks.Sim -> "sim")
                c.Descriptor.lock_modes))
          (if c.Descriptor.tunable_node_bytes then "tunable" else "fixed")
          (b c.Descriptor.relocatable_root)
          (b c.Descriptor.scrubbable) (b c.Descriptor.txnable)
          (b c.Descriptor.snapshottable))
      ds;
    print_newline ();
    List.iter
      (fun d ->
        Printf.printf "%-18s %s\n" d.Descriptor.name d.Descriptor.summary;
        match d.Descriptor.composite with
        | Some (inner, n) ->
            Printf.printf "%-18s   composite: %d shards over %s\n" "" n inner
        | None -> ())
      ds
  end;
  0

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)
(* ------------------------------------------------------------------ *)

(* With --shards N, the named index becomes the inner structure of an
   on-the-fly sharded composite; the capability gate's rejection (e.g.
   a volatile inner) is surfaced verbatim.

   With --faults, the run is punctuated by power failures that fire a
   seeded poison plan, followed by a full scrub-and-recover cycle.
   Poisoned leaf-record lines are quarantined with loss, so the model
   oracle accepts a key silently disappearing only while the scrub
   reports accounted record loss — a wrong surviving value or an
   unaccounted disappearance still fails the run. *)
let fuzz index_name ops_count seed shards faults =
  match
    if shards = 0 then
      Ok (Registry.find_exn index_name, fun arena -> Registry.build index_name arena)
    else
      match Shard.descriptor ~inner:index_name ~shards () with
      | d -> Ok (d, d.Descriptor.build Descriptor.default_config)
      | exception Invalid_argument msg -> Error msg
  with
  | Error msg ->
      Printf.printf "fuzz: %s\n" msg;
      1
  | Ok (d, build) ->
  if faults && not (Scrub.scrubbable d) then begin
    Printf.printf
      "fuzz: --faults needs a scrubbable index and %s is not (caps: %s)\n"
      d.Descriptor.name (Descriptor.caps_line d);
    1
  end
  else begin
  let rng = Prng.create seed in
  let arena = mk_arena (max (ops_count * 64) (1 lsl 16)) in
  let t = ref (build arena) in
  let model = Hashtbl.create 1024 in
  let space = max 64 (ops_count / 2) in
  let mismatches = ref 0 in
  let fault_cycles = ref 0 and lost_total = ref 0 in
  let fault_interval = max 500 (ops_count / 8) in
  let fault_cycle step =
    incr fault_cycles;
    (!t).Intf.close ();
    Arena.set_fault_plan arena
      (Some
         {
           Arena.fault_seed = seed + step;
           poison_lines = 2;
           flip_words = 0;
           stuck_words = 0;
         });
    Arena.power_fail arena (Harness.default_mode step);
    let r =
      Scrub.run ~config:Descriptor.default_config d arena
        ~recover:(fun () ->
          t := d.Descriptor.open_existing Descriptor.default_config arena;
          (!t).Intf.recover ())
    in
    if not (Scrub.clean r) then begin
      incr mismatches;
      Printf.printf "step %d: scrub NOT clean after faults:\n%s\n" step
        (Scrub.to_string r)
    end;
    (* Reconcile the model with accounted media loss. *)
    let lost = ref [] in
    Hashtbl.iter
      (fun k v ->
        match (!t).Intf.search k with
        | Some v' when v' = v -> ()
        | Some v' ->
            incr mismatches;
            Printf.printf "step %d: post-fault key %d -> %d, expected %d\n" step
              k v' v
        | None -> lost := k :: !lost)
      model;
    let n_lost = List.length !lost in
    lost_total := !lost_total + n_lost;
    if n_lost > 0 && r.Scrub.lost_records = 0 then begin
      incr mismatches;
      Printf.printf
        "step %d: %d keys disappeared but the scrub reported no record loss\n"
        step n_lost
    end;
    List.iter (Hashtbl.remove model) !lost
  in
  for step = 1 to ops_count do
    if faults && step mod fault_interval = 0 then fault_cycle step;
    let t = !t in
    let k = 1 + Prng.int rng space in
    (match Prng.int rng 12 with
    | 0 | 1 ->
        let expected = Hashtbl.mem model k in
        let got = t.Intf.delete k in
        if got <> expected then begin
          incr mismatches;
          Printf.printf "step %d: delete %d -> %b, expected %b\n" step k got expected
        end;
        Hashtbl.remove model k
    | 2 | 3 -> (
        let expected = Hashtbl.find_opt model k in
        match (t.Intf.search k, expected) with
        | Some v, Some v' when v = v' -> ()
        | None, None -> ()
        | got, _ ->
            incr mismatches;
            Printf.printf "step %d: search %d -> %s, expected %s\n" step k
              (match got with Some v -> string_of_int v | None -> "none")
              (match expected with Some v -> string_of_int v | None -> "none"))
    | 4 ->
        let expected = Hashtbl.mem model k in
        let got = t.Intf.update k (W.value_of k) in
        if got <> expected then begin
          incr mismatches;
          Printf.printf "step %d: update %d -> %b, expected %b\n" step k got expected
        end
    | _ ->
        t.Intf.insert k (W.value_of k);
        Hashtbl.replace model k (W.value_of k))
  done;
  Hashtbl.iter
    (fun k v ->
      if (!t).Intf.search k <> Some v then begin
        incr mismatches;
        Printf.printf "final: key %d wrong\n" k
      end)
    model;
  (!t).Intf.close ();
  if !mismatches = 0 then begin
    Printf.printf "fuzz ok: %d ops on %s, %d live keys" ops_count (!t).Intf.name
      (Hashtbl.length model);
    if faults then
      Printf.printf " (%d fault cycles, %d records lost to quarantine)"
        !fault_cycles !lost_total;
    print_newline ();
    0
  end
  else begin
    Printf.printf "fuzz FAILED: %d mismatches\n" !mismatches;
    1
  end
  end

(* ------------------------------------------------------------------ *)
(* crash-test: generic crash-point sweep over any recoverable index    *)
(* ------------------------------------------------------------------ *)

let crash_test index_name keys points seed =
  let d = Registry.find_exn index_name in
  if not d.Descriptor.caps.Descriptor.has_recovery then begin
    Printf.printf "crash-test: %s has no recovery capability (volatile); nothing to test\n"
      index_name;
    0
  end
  else begin
    let config = small_nodes d in
    let base = Arena.create ~words:(max (keys * 100) (1 lsl 16)) () in
    let t = d.Descriptor.build config base in
    let rng = Prng.create seed in
    let ks = W.distinct_uniform rng ~n:keys ~space:(8 * keys) in
    W.load_keys t ks;
    t.Intf.close ();
    let extra = (16 * keys) + 1 in
    let batch (t : Intf.ops) =
      t.Intf.insert extra (W.value_of extra);
      ignore (t.Intf.delete ks.(0))
    in
    let validate (t : Intf.ops) =
      Array.for_all
        (fun key -> key = ks.(0) || t.Intf.search key = Some (W.value_of key))
        ks
    in
    let o =
      Harness.enumerate ~max_points:points ~base
        ~reopen:(d.Descriptor.open_existing config)
        ~batch ~validate ()
    in
    Printf.printf
      "crash-test %s: %d points over %d stores, tolerated pre-recovery %d, recovered %d\n"
      index_name o.Harness.points o.Harness.store_span o.Harness.tolerated
      o.Harness.recovered;
    let show label = function
      | [] -> ()
      | pts ->
          Printf.printf "  %s at stores: %s\n" label
            (String.concat ", " (List.map string_of_int pts))
    in
    show "intolerant" o.Harness.failed_tolerance;
    show "recovery FAILED" o.Harness.failed_recovery;
    (* Exit-code contract: failed recovery is always a durability bug;
       failed pre-recovery tolerance is a bug only for structures that
       claim lock-free reads (the paper's transient-inconsistency
       guarantee) — lock-based designs never promised it. *)
    let tolerance_bug =
      d.Descriptor.caps.Descriptor.lock_free_reads
      && o.Harness.failed_tolerance <> []
    in
    if tolerance_bug then
      Printf.printf
        "  FAIL: %s claims lock-free reads but crash states broke pre-recovery readers\n"
        index_name;
    if o.Harness.failed_recovery = [] && not tolerance_bug then 0 else 1
  end

(* ------------------------------------------------------------------ *)
(* stats                                                               *)
(* ------------------------------------------------------------------ *)

module J = Ff_trace.Json

let fault_stats_json (fs : Arena.fault_stats) =
  J.Obj
    [
      ("poisoned", J.Int fs.Arena.poisoned);
      ("flipped", J.Int fs.Arena.flipped);
      ("stuck", J.Int fs.Arena.stuck);
      ("media_error_reads", J.Int fs.Arena.media_error_reads);
    ]

let pm_stats_json s = J.of_string (Stats.to_json s)

let print_pm_text keys s =
  Printf.printf "  stores   %10d (%.2f/op)\n" s.Stats.stores
    (float_of_int s.Stats.stores /. float_of_int keys);
  Printf.printf "  flushes  %10d (%.2f/op)\n" s.Stats.flushes
    (float_of_int s.Stats.flushes /. float_of_int keys);
  Printf.printf "  fences   %10d (%.2f/op)\n" s.Stats.fences
    (float_of_int s.Stats.fences /. float_of_int keys);
  Printf.printf "  LLC miss %10d (%.2f/op)\n" s.Stats.line_misses
    (float_of_int s.Stats.line_misses /. float_of_int keys);
  Printf.printf "  sim time %10.3f ms (%.3f us/op)\n"
    (float_of_int (Stats.total_ns s) /. 1e6)
    (float_of_int (Stats.total_ns s) /. float_of_int keys /. 1000.)

(* With --shards N, the load runs through the serving layer and the
   report gains per-shard blocks: PM counters, media-fault statistics
   and the degradation guard's counters.  --degrade K then poisons the
   root-node line of the first K shards and probes each with one
   routed search, so the degraded/fault blocks show live values (the
   siblings keep serving; a scrubbed recover would re-admit). *)
let stats index_name keys seed json shards degrade retry_limit backoff_ns =
  if shards = 0 then begin
    let arena = mk_arena (max (keys * 64) (1 lsl 16)) in
    let t = Registry.build index_name arena in
    let rng = Prng.create seed in
    let ks = W.distinct_uniform rng ~n:keys ~space:(8 * keys) in
    Arena.reset_stats arena;
    W.load_keys t ks;
    let s = Arena.total_stats arena in
    if json then
      print_endline
        (J.to_string
           (J.Obj
              [
                ("index", J.Str index_name);
                ("keys", J.Int keys);
                ("pm", pm_stats_json s);
                ("fault_stats", fault_stats_json (Arena.fault_stats arena));
              ]))
    else begin
      Printf.printf "index: %s, %d inserts\n" index_name keys;
      print_pm_text keys s
    end;
    0
  end
  else begin
    match
      Shard.create ~words:(max (keys * 64 / shards) (1 lsl 16))
        ~retry_limit ~backoff_ns ~inner:index_name ~shards ()
    with
    | exception Invalid_argument msg ->
        Printf.printf "stats: %s\n" msg;
        1
    | t ->
        let rng = Prng.create seed in
        let space = 8 * keys in
        let ks = W.distinct_uniform rng ~n:keys ~space in
        let ops = Array.map (fun k -> W.Insert k) ks in
        ignore (Shard.submit t ops);
        ignore (Shard.drain_queues t);
        let degrade = max 0 (min degrade shards) in
        for s = 0 to degrade - 1 do
          let a = Shard.arenas t |> fun ar -> ar.(s) in
          Arena.poison_line a (Arena.root_get a 0 / Arena.words_per_line);
          (try
             for k = 1 to space do
               if Shard.shard_of_key t k = s then begin
                 ignore (Shard.search t k);
                 raise Exit
               end
             done
           with
          | Exit -> ()
          | Shard.Degraded _ -> ())
        done;
        let arenas = Shard.arenas t in
        let healthy = Shard.healthy t in
        let dstats = Shard.degraded_stats t in
        let merged = Stats.create () in
        Array.iter (fun a -> Stats.add merged (Arena.total_stats a)) arenas;
        let merged_faults =
          Array.fold_left
            (fun (acc : Arena.fault_stats) a ->
              let fs = Arena.fault_stats a in
              {
                Arena.poisoned = acc.Arena.poisoned + fs.Arena.poisoned;
                flipped = acc.Arena.flipped + fs.Arena.flipped;
                stuck = acc.Arena.stuck + fs.Arena.stuck;
                media_error_reads =
                  acc.Arena.media_error_reads + fs.Arena.media_error_reads;
              })
            { Arena.poisoned = 0; flipped = 0; stuck = 0; media_error_reads = 0 }
            arenas
        in
        if json then begin
          let shard_block i =
            let me, retries, rejected = dstats.(i) in
            J.Obj
              [
                ("shard", J.Int i);
                ("healthy", J.Bool healthy.(i));
                ("media_errors", J.Int me);
                ("retries", J.Int retries);
                ("rejected", J.Int rejected);
                ("fault_stats", fault_stats_json (Arena.fault_stats arenas.(i)));
                ("pm", pm_stats_json (Arena.total_stats arenas.(i)));
              ]
          in
          print_endline
            (J.to_string
               (J.Obj
                  [
                    ("index", J.Str index_name);
                    ("keys", J.Int keys);
                    ("shards", J.Int shards);
                    ("pm", pm_stats_json merged);
                    ("fault_stats", fault_stats_json merged_faults);
                    ( "degraded_stats",
                      J.Arr (List.init shards shard_block) );
                  ]))
        end
        else begin
          Printf.printf "index: %s x %d shards, %d inserts\n" index_name shards
            keys;
          print_pm_text keys merged;
          Printf.printf "  faults: %d poisoned, %d media-error reads\n"
            merged_faults.Arena.poisoned merged_faults.Arena.media_error_reads;
          Array.iteri
            (fun i (me, retries, rejected) ->
              Printf.printf
                "  shard %d: %s, %d media errors, %d retries, %d rejected\n" i
                (if healthy.(i) then "healthy" else "DEGRADED")
                me retries rejected)
            dstats
        end;
        0
  end

(* ------------------------------------------------------------------ *)
(* dump                                                                *)
(* ------------------------------------------------------------------ *)

let dump keys =
  let module L = Ff_fastfair.Layout in
  let module Node = Ff_fastfair.Node in
  let arena = Arena.create ~words:(1 lsl 16) () in
  let t = Tree.create ~node_bytes:128 arena in
  for k = 1 to keys do
    Tree.insert t ~key:(k * 10) ~value:(W.value_of k)
  done;
  let l = Tree.layout t in
  let rt = Tree.root t in
  let top = Arena.peek arena (rt + L.off_level) in
  Printf.printf "height %d, root @%d\n" (top + 1) rt;
  for level = top downto 0 do
    Printf.printf "level %d:\n" level;
    let rec leftmost n =
      if Arena.peek arena (n + L.off_level) > level then
        leftmost (Arena.peek arena (n + L.off_leftmost))
      else n
    in
    let rec walk n =
      if n <> 0 then begin
        let entries = Node.entries_debug arena l n in
        Printf.printf "  @%-6d low=%-6d [%s]\n" n
          (Arena.peek arena (n + L.off_low))
          (String.concat "; "
             (List.map (fun (k, p) -> Printf.sprintf "%d->%d" k p) entries));
        walk (Arena.peek arena (n + L.off_sibling))
      end
    in
    walk (leftmost rt)
  done;
  0

(* ------------------------------------------------------------------ *)
(* persist: save any index's image to disk and reload it               *)
(* ------------------------------------------------------------------ *)

let persist index_name keys path =
  let d = Registry.find_exn index_name in
  if not d.Descriptor.caps.Descriptor.is_persistent then begin
    Printf.printf "persist: %s is volatile; there is no image to save\n" index_name;
    0
  end
  else begin
    let arena = mk_arena (max (keys * 64) (1 lsl 16)) in
    let t = Registry.build index_name arena in
    let rng = Prng.create 1 in
    let ks = W.distinct_uniform rng ~n:keys ~space:(8 * keys) in
    W.load_keys t ks;
    t.Intf.close ();
    Arena.save_to_file arena path;
    Printf.printf "saved %d keys of %s to %s (%d KiB persisted image)\n" keys
      index_name path
      (Arena.capacity arena * 8 / 1024);
    (* Reload as if after a reboot; the root-slot manifest names the
       index, so no out-of-band knowledge is needed. *)
    let arena2 = Arena.load_from_file path in
    let t2 = Registry.open_existing arena2 in
    t2.Intf.recover ();
    Printf.printf "manifest: %s\n" t2.Intf.name;
    let missing = ref 0 in
    Array.iter
      (fun k -> if t2.Intf.search k <> Some (W.value_of k) then incr missing)
      ks;
    Sys.remove path;
    if !missing = 0 then begin
      Printf.printf "reloaded image: all %d keys present\n" keys;
      0
    end
    else begin
      Printf.printf "reloaded image: %d keys MISSING\n" !missing;
      1
    end
  end

(* ------------------------------------------------------------------ *)
(* scrub: deterministic mid-split leak demo and repair exercise        *)
(* ------------------------------------------------------------------ *)

(* Crash a split-heavy insert batch at ascending store points until the
   post-crash image leaks at least one allocated-but-unreachable block,
   then scrub it: the report must show the leak reclaimed and the next
   allocation must actually reuse the reclaimed block.  Every step
   derives from (--seed, store index) alone, so one seed produces the
   byte-identical report on every run.  --mutate-skip-scrub recovers
   without scrubbing and runs detection only: the leak oracle must then
   fail (exit 1), proving the oracle catches a recovery path that
   forgot to scrub. *)
let scrub_run index_name keys seed poison json out mutate_skip =
  let d = Registry.find_exn index_name in
  if not (Scrub.scrubbable d) then begin
    Printf.printf "scrub: %s is not scrubbable (caps: %s)\n" index_name
      (Descriptor.caps_line d);
    1
  end
  else begin
    let config = small_nodes d in
    let base = mk_arena (max (keys * 100) (1 lsl 16)) in
    let t = d.Descriptor.build config base in
    let rng = Prng.create seed in
    let ks = W.distinct_uniform rng ~n:keys ~space:(8 * keys) in
    W.load_keys t ks;
    t.Intf.close ();
    Arena.drain base;
    let fresh = Array.init ((keys / 4) + 8) (fun i -> (8 * keys) + 1 + i) in
    let run_batch (t : Intf.ops) =
      Array.iter (fun k -> t.Intf.insert k (W.value_of k)) fresh
    in
    (* Probe the batch's store span on a throwaway clone. *)
    let span =
      let a = Arena.clone base in
      let t = d.Descriptor.open_existing config a in
      let c0 = Arena.store_count a in
      run_batch t;
      Arena.store_count a - c0
    in
    let crash_at ~poison k =
      let a = Arena.clone base in
      let t = d.Descriptor.open_existing config a in
      Arena.set_crash_plan a (Arena.After_stores (Arena.store_count a + k));
      (try run_batch t with Arena.Crashed -> ());
      Arena.set_crash_plan a Arena.Never;
      if poison > 0 then
        Arena.set_fault_plan a
          (Some
             {
               Arena.fault_seed = seed + k;
               poison_lines = poison;
               flip_words = 0;
               stuck_words = 0;
             });
      Arena.power_fail a (Harness.default_mode k);
      a
    in
    let rec find k =
      if k > span then None
      else begin
        let a = crash_at ~poison:0 k in
        let audit = Scrub.audit ~config d a in
        if audit.Scrub.leaked_blocks <> [] then Some (k, audit) else find (k + 1)
      end
    in
    match find 1 with
    | None ->
        Printf.printf "scrub: no leaking crash point in %d stores of %s\n" span
          index_name;
        1
    | Some (k, audit) ->
        Printf.printf
          "crash at store %d/%d leaks %d words in %d blocks (found by audit)\n" k
          span audit.Scrub.leaked_words
          (List.length audit.Scrub.leaked_blocks);
        if mutate_skip then begin
          (* Mutant: plain recovery with the scrub pass disabled. *)
          let a = crash_at ~poison:0 k in
          let t = d.Descriptor.open_existing config a in
          t.Intf.recover ();
          let r = Scrub.audit ~config d a in
          if r.Scrub.leaked_blocks <> [] then begin
            Printf.printf
              "mutant (scrub skipped): leak oracle FAILED as required — %d words \
               still leaked after recovery\n"
              r.Scrub.leaked_words;
            1
          end
          else begin
            print_endline "mutant (scrub skipped): leak oracle unexpectedly clean";
            0
          end
        end
        else begin
          let a = crash_at ~poison k in
          let r =
            Scrub.run ~config d a ~recover:(fun () ->
                let t = d.Descriptor.open_existing config a in
                t.Intf.recover ())
          in
          if json then print_endline (Scrub.to_string r)
          else Format.printf "%a@." Scrub.pp r;
          (match out with
          | None -> ()
          | Some path ->
              let oc = open_out path in
              output_string oc (Scrub.to_string r);
              output_char oc '\n';
              close_out oc;
              Printf.printf "report saved to %s\n" path);
          (* The leak must be gone (composite indexes reclaim inside
             their own recover, so re-audit rather than trusting this
             report's reclaimed count) and genuinely reusable: the
             next node-sized allocation must land inside a gap that
             was leaked at detection time or reclaimed by this run. *)
          let post = Scrub.audit ~config d a in
          let leak_gone = post.Scrub.leaked_blocks = [] in
          Printf.printf "post-scrub audit: %s\n"
            (if leak_gone then "no leaks remain" else "LEAKS REMAIN");
          let grain =
            match Registry.scrub_provider d.Descriptor.name with
            | Some p -> (p config a).Descriptor.scrub_grain
            | None -> Arena.words_per_line
          in
          let na = Arena.alloc_raw a grain in
          let reused =
            List.exists
              (fun (addr, w) -> na >= addr && na + grain <= addr + w)
              (audit.Scrub.leaked_blocks @ r.Scrub.leaked_blocks)
          in
          Printf.printf "next alloc of %d words -> @%d (%s)\n" grain na
            (if reused then "reuses the reclaimed leak" else "fresh memory");
          if Scrub.clean r && leak_gone && reused then 0
          else begin
            Printf.printf "scrub FAILED: clean=%b leak_gone=%b reused=%b\n"
              (Scrub.clean r) leak_gone reused;
            1
          end
        end
  end

(* ------------------------------------------------------------------ *)
(* trace: record a multithreaded mixed run as a Perfetto JSON file     *)
(* ------------------------------------------------------------------ *)

let trace keys ops threads seed out =
  let module Mcsim = Ff_mcsim.Mcsim in
  let module Locks = Ff_index.Locks in
  let module Trace = Ff_trace.Trace in
  let threads = max 1 (min 64 threads) in
  (* Fail on an unwritable output path now, not after the simulation. *)
  close_out (open_out out);
  let config = { Config.default with Config.write_latency_ns = 300; max_threads = 64 } in
  let arena = Arena.create ~config ~words:(max ((keys + ops) * 80) (1 lsl 16)) () in
  let t = Tree.create ~lock_mode:Locks.Sim arena in
  let rng = Prng.create seed in
  let ks = W.distinct_uniform rng ~n:(keys + ops) ~space:(16 * (keys + ops)) in
  ignore
    (Mcsim.run ~cores:16 ~arena
       [|
         (fun _ ->
           Array.iteri
             (fun i k -> if i < keys then Tree.insert t ~key:k ~value:(W.value_of k))
             ks);
       |]);
  (* Attach the tracer after the untraced preload: each Mcsim.run
     restarts the simulated clock at zero. *)
  let tr = Trace.for_arena arena in
  Tree.set_tracer t tr;
  let per = max 1 (ops / threads) in
  let body tid =
    let r = Prng.create (seed + 100 + tid) in
    let base = keys + (tid * per) in
    let inserted = ref 0 in
    for i = 0 to per - 1 do
      match i mod 4 with
      | 0 | 1 -> ignore (Tree.search t ks.(Prng.int r keys))
      | 2 ->
          if base + !inserted < keys + ops then begin
            let k = ks.(base + !inserted) in
            Tree.insert t ~key:k ~value:(W.value_of k);
            incr inserted
          end
      | _ -> ignore (Tree.delete t ks.(Prng.int r keys))
    done
  in
  ignore
    (Mcsim.run ~cores:16 ~quantum_ns:150 ~lock_ns:20 ~contention_ns:100 ~arena
       (Array.init threads (fun _ -> body)));
  Arena.set_event_sink arena None;
  Ff_trace.Perfetto.write_file tr out;
  Printf.printf
    "wrote %s: %d events (%d dropped), %d duplicate-pointer skips observed\n" out
    (Trace.event_count tr) (Trace.dropped_count tr) (Trace.dup_skips tr);
  Format.printf "%a@." Ff_trace.Metrics.pp_text (Trace.metrics tr);
  0

(* ------------------------------------------------------------------ *)
(* top: text dashboard from a saved snapshot or a live mini-run        *)
(* ------------------------------------------------------------------ *)

module FTrace = Ff_trace.Trace
module Obs_snapshot = Ff_obs.Snapshot
module Obs_slo = Ff_obs.Slo
module Obs_profile = Ff_obs.Profile

(* Exit code mirrors the SLO verdict so `ffcli top` doubles as a gate:
   0 when every evaluated rule held, 1 on any violation. *)
let render_top ?(health = [||]) (snap : Obs_snapshot.t) =
  Printf.printf "== ffcli top: %s (scale %g, seed %d) ==\n"
    snap.Obs_snapshot.label snap.Obs_snapshot.scale snap.Obs_snapshot.seed;
  Printf.printf "throughput  %10.1f kops      (%d ops in %.3f simulated ms)\n"
    snap.Obs_snapshot.kops snap.Obs_snapshot.ops
    (float_of_int snap.Obs_snapshot.elapsed_ns /. 1e6);
  Printf.printf "fence cost  %10.3f fences/op %.3f flushes/op\n"
    snap.Obs_snapshot.fences_per_op snap.Obs_snapshot.flushes_per_op;
  Printf.printf "latency     p50=%dns p99=%dns p999=%dns\n"
    snap.Obs_snapshot.p50_ns snap.Obs_snapshot.p99_ns snap.Obs_snapshot.p999_ns;
  let violated =
    match snap.Obs_snapshot.slo with
    | None ->
        print_endline "SLO         (not evaluated)";
        false
    | Some r ->
        if Obs_slo.ok r then begin
          Printf.printf "SLO         ok (%d rules)\n" r.Obs_slo.evaluated;
          false
        end
        else begin
          Printf.printf "SLO         %d of %d rules VIOLATED\n"
            (List.length r.Obs_slo.violations)
            r.Obs_slo.evaluated;
          List.iter
            (fun (v : Obs_slo.violation) ->
              Printf.printf "  breach %s: %s\n" v.Obs_slo.rule v.Obs_slo.detail)
            r.Obs_slo.violations;
          true
        end
  in
  if Array.length health > 0 then
    Printf.printf "shards      %s\n"
      (String.concat " "
         (Array.to_list
            (Array.mapi
               (fun i h -> Printf.sprintf "%d:%s" i (if h then "ok" else "DEGRADED"))
               health)));
  Format.printf "%a@." Obs_profile.pp snap.Obs_snapshot.profile;
  if violated then 1 else 0

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* A saved file is either a bare snapshot (Snapshot.save, `bench soak`)
   or a full bench report whose "obs" member holds one (BENCH_n.json
   from `bench --json --slo`). *)
let top_from path =
  match J.of_string (read_file path) with
  | exception J.Parse_error msg ->
      Printf.printf "top: %s is not valid JSON (%s)\n" path msg;
      2
  | doc ->
      let snap_json = match J.member "obs" doc with Some o -> o | None -> doc in
      let looks_like_snapshot =
        List.for_all
          (fun k -> J.member k snap_json <> None)
          [ "label"; "kops"; "profile" ]
      in
      (match if looks_like_snapshot then Some (Obs_snapshot.of_json snap_json) else None with
      | exception _ ->
          Printf.printf "top: %s carries no benchmark snapshot\n" path;
          2
      | None ->
          Printf.printf "top: %s carries no benchmark snapshot\n" path;
          2
      | Some snap -> render_top snap)

let top_live index_name ops shards seed p99_bound =
  let clock_ref = ref (fun () -> 0) in
  let tr = FTrace.create ~capacity:(1 lsl 15) ~clock:(fun () -> !clock_ref ()) () in
  match
    Shard.create
      ~words:(max (ops * 64 / shards) (1 lsl 16))
      ~batch_cap:64 ~tracer:tr ~inner:index_name ~shards ()
  with
  | exception Invalid_argument msg ->
      Printf.printf "top: %s\n" msg;
      2
  | t ->
      let arenas = Shard.arenas t in
      clock_ref :=
        (fun () ->
          Array.fold_left
            (fun acc a -> max acc (Stats.total_ns (Arena.total_stats a)))
            0 arenas);
      Array.iter (fun a -> FTrace.attach_arena tr a) arenas;
      let keys = W.zipfian (Prng.create seed) ~n:ops ~space:(8 * ops) ~theta:0.99 in
      let oprng = Prng.create (W.shard_seed ~base:seed ~shard:1) in
      let trace_ops =
        Array.map
          (fun k ->
            let r = Prng.int oprng 100 in
            if r < 60 then W.Insert k
            else if r < 90 then W.Search k
            else if r < 95 then W.Delete k
            else W.Range (k, 8))
          keys
      in
      let rules =
        [
          Obs_slo.Latency
            {
              rule = "insert-p99";
              metric = "shard.latency_ns.insert";
              percentile = 99.;
              bound_ns = p99_bound;
            };
          Obs_slo.Latency
            {
              rule = "search-p99";
              metric = "shard.latency_ns.search";
              percentile = 99.;
              bound_ns = p99_bound;
            };
          Obs_slo.Burn_rate
            {
              rule = "degraded-budget";
              events = "shard.degraded";
              ops = "shard.batch_ops";
              max_per_1k = 5.;
            };
        ]
      in
      let mon = Obs_slo.Monitor.create ~window_ns:200_000 ~tracer:tr rules in
      let chunk = max 1 (Array.length trace_ops / 16) in
      let off = ref 0 in
      while !off < Array.length trace_ops do
        let c = min chunk (Array.length trace_ops - !off) in
        ignore (Shard.submit t (Array.sub trace_ops !off c));
        Obs_slo.Monitor.tick mon ~now:(FTrace.now tr);
        off := !off + c
      done;
      ignore (Shard.drain_queues t);
      let now = FTrace.now tr in
      Obs_slo.Monitor.check mon ~now;
      let report = Obs_slo.Monitor.report mon ~now in
      let snap =
        Obs_snapshot.make
          ~label:(index_name ^ " live")
          ~scale:0. ~seed ~ops:(Array.length trace_ops) ~elapsed_ns:now
          ~latency:(Shard.merged_latency t) ~slo:report
          ~profile:(Obs_profile.of_trace ~ops:(Array.length trace_ops) tr)
          ()
      in
      render_top ~health:(Shard.healthy t) snap

let top from index_name ops shards seed p99_bound =
  match from with
  | Some path -> top_from path
  | None -> top_live index_name ops shards seed p99_bound

(* ------------------------------------------------------------------ *)
(* tx: failure-atomic multi-key transfers with a mid-commit crash      *)
(* ------------------------------------------------------------------ *)

module Tx = Ff_tx.Tx

(* Balances live in the index odd-encoded with the account id folded
   into the low bits: values stay globally unique (two accounts holding
   the same balance must not produce equal values — the tree reads
   duplicate values as in-flight-insert markers and skips them),
   nonzero per the index contract, and never line-aligned. *)
let bal_enc ~accounts a b = (2 * ((b * accounts) + (a - 1))) + 1
let bal_dec ~accounts v = (v - 1) / 2 / accounts

let tx_path_of_string = function
  | "logged" -> Tx.Logged
  | "shadow" -> Tx.Shadow
  | s -> invalid_arg (Printf.sprintf "unknown commit path %S (logged, shadow)" s)

(* The demo: load N accounts, run a history of committed transfers,
   then replay one further transfer crashed mid-commit at every sampled
   store offset.  After each power failure + recovery the balance sheet
   must sit exactly on a transaction boundary (all-pre or all-post) —
   which also conserves the total.  A torn half-transfer is a
   violation and a nonzero exit. *)
let tx_demo index_name path_name accounts transfers points seed json =
  let path = tx_path_of_string path_name in
  let d = Registry.find_exn index_name in
  if not d.Descriptor.caps.Descriptor.txnable then begin
    Printf.printf "tx: %s is not txnable (caps: %s)\n" index_name
      (Descriptor.caps_line d);
    1
  end
  else begin
    let config = small_nodes d in
    let init = 1_000 in
    let base = mk_arena (max (accounts * 400) (1 lsl 16)) in
    let t = d.Descriptor.build config base in
    let balances = Array.make (accounts + 1) 0 in
    let bal_enc = bal_enc ~accounts and bal_dec = bal_dec ~accounts in
    for a = 1 to accounts do
      balances.(a) <- init;
      t.Intf.insert a (bal_enc a init)
    done;
    let transfer mgr src dst amt =
      Tx.run mgr (fun tx ->
          match (Tx.get tx src, Tx.get tx dst) with
          | Some sv, Some dv ->
              let sb = bal_dec sv in
              if sb < amt then Tx.abort ~reason:"insufficient funds" tx
              else begin
                Tx.put tx src (bal_enc src (sb - amt));
                Tx.put tx dst (bal_enc dst (bal_dec dv + amt))
              end
          | _ -> Tx.abort ~reason:"missing account" tx)
    in
    let rng = Prng.create seed in
    let pick () =
      let s = 1 + Prng.int rng accounts in
      let d0 = 1 + Prng.int rng accounts in
      let d' = if d0 = s then (s mod accounts) + 1 else d0 in
      (s, d', 1 + Prng.int rng 50)
    in
    let mgr = Tx.create ~path base t in
    let committed = ref 0 and aborted = ref 0 in
    for _ = 1 to transfers do
      let s, dsta, amt = pick () in
      match transfer mgr s dsta amt with
      | Ok () ->
          incr committed;
          balances.(s) <- balances.(s) - amt;
          balances.(dsta) <- balances.(dsta) + amt
      | Error _ -> incr aborted
    done;
    t.Intf.close ();
    Arena.drain base;
    (* The crash victim: guaranteed not to abort on funds. *)
    let src = ref 1 in
    for a = 2 to accounts do
      if balances.(a) > balances.(!src) then src := a
    done;
    let src = !src in
    let dst = (src mod accounts) + 1 in
    let amt = 1 + Prng.int rng (min 50 balances.(src)) in
    let reopen a =
      let t = d.Descriptor.open_existing config a in
      t.Intf.recover ();
      (t, Tx.create ~path a t)
    in
    (* Span of the victim transfer, probed on a throwaway clone (the
       transfer body draws nothing from the PRNG, so every clone
       executes the identical store sequence). *)
    let span =
      let a = Arena.clone base in
      let _, m = reopen a in
      let c0 = Arena.store_count a in
      ignore (transfer m src dst amt);
      Arena.store_count a - c0
    in
    let offsets =
      if span <= points then List.init span (fun i -> i + 1)
      else
        List.init points (fun i ->
            1 + (i * (span - 1) / (max 1 (points - 1))))
    in
    let pre = Array.init accounts (fun i -> balances.(i + 1)) in
    let post =
      Array.init accounts (fun i ->
          let a1 = i + 1 in
          let delta =
            (if a1 = dst then amt else 0) - (if a1 = src then amt else 0)
          in
          balances.(a1) + delta)
    in
    let redone = ref 0 and undone = ref 0 in
    let violations = ref [] in
    List.iter
      (fun k ->
        let a = Arena.clone base in
        let _, m = reopen a in
        Arena.set_crash_plan a (Arena.After_stores (Arena.store_count a + k));
        (try ignore (transfer m src dst amt)
         with Arena.Crashed -> ());
        Arena.set_crash_plan a Arena.Never;
        Arena.power_fail a (Harness.default_mode (seed + k));
        let t3, m3 = reopen a in
        (match Tx.recover m3 with
        | `Redone _ -> incr redone
        | `Undone _ -> incr undone
        | `Clean | `Aborted _ -> ());
        let got =
          Array.init accounts (fun i ->
              match t3.Intf.search (i + 1) with
              | Some v -> bal_dec v
              | None -> min_int)
        in
        if got <> pre && got <> post then begin
          let total = Array.fold_left ( + ) 0 got in
          violations :=
            ( k,
              Printf.sprintf
                "balances match neither side of the transfer (total %d, expected %d)"
                total (accounts * init) )
            :: !violations
        end)
      offsets;
    let violations = List.rev !violations in
    let ok = violations = [] in
    if json then
      print_endline
        (J.to_string
           (J.Obj
              [
                ("index", J.Str index_name);
                ("path", J.Str path_name);
                ("accounts", J.Int accounts);
                ( "history",
                  J.Obj
                    [ ("committed", J.Int !committed); ("aborted", J.Int !aborted) ]
                );
                ( "crash_sweep",
                  J.Obj
                    [
                      ("transfer", J.Obj [ ("from", J.Int src); ("to", J.Int dst); ("amount", J.Int amt) ]);
                      ("store_span", J.Int span);
                      ("points", J.Int (List.length offsets));
                      ("redone", J.Int !redone);
                      ("undone", J.Int !undone);
                      ( "violations",
                        J.Arr
                          (List.map
                             (fun (k, msg) ->
                               J.Obj [ ("store", J.Int k); ("detail", J.Str msg) ])
                             violations) );
                    ] );
                ("ok", J.Bool ok);
              ]))
    else begin
      Printf.printf "tx %s (%s path): %d accounts, %d transfers committed, %d aborted\n"
        index_name path_name accounts !committed !aborted;
      Printf.printf
        "crash sweep: transfer %d->%d amount %d, %d points over %d stores\n" src
        dst amt (List.length offsets) span;
      Printf.printf "  recovery: %d redone, %d rolled back\n" !redone !undone;
      List.iter
        (fun (k, msg) -> Printf.printf "  VIOLATION at store %d: %s\n" k msg)
        violations;
      Printf.printf "balance audit: %s\n"
        (if ok then "every crash lands on a transaction boundary"
         else "ATOMICITY BROKEN")
    end;
    if ok then 0 else 1
  end

(* ------------------------------------------------------------------ *)
(* snapshot: MVCC time travel over a snapshottable index               *)
(* ------------------------------------------------------------------ *)

module Snapshot = Ff_snapshot.Snapshot

let dump_at ops epoch hi =
  let acc = ref [] in
  ops.Intf.range_at epoch 1 hi (fun k v -> acc := (k, v) :: !acc);
  List.rev !acc

(* Load, pin, mutate, pin again: show that the first epoch still reads
   the old world, then power-fail and prove the pinned epoch survives
   recovery byte-for-byte before GC reclaims it. *)
let snapshot_demo index_name keys seed =
  let d = Registry.find_exn index_name in
  if not d.Descriptor.caps.Descriptor.snapshottable then begin
    Printf.printf "snapshot: %s is not snapshottable (caps: %s)\n" index_name
      (Descriptor.caps_line d);
    2
  end
  else begin
    let space = 2 * keys in
    let arena = mk_arena (max (1 lsl 20) (keys * 96)) in
    let ops = Registry.build index_name arena in
    let rng = Prng.create seed in
    let ks = W.distinct_uniform rng ~n:keys ~space in
    W.load_keys ops ks;
    let s1 = ops.Intf.snapshot_begin 0 in
    Array.iteri
      (fun i k ->
        (* fresh values from a disjoint part of the odd space (values
           must stay unique across keys) *)
        if i mod 2 = 0 then ops.Intf.insert k (W.value_of (space + k))
        else if i mod 9 = 0 then ignore (ops.Intf.delete k))
      ks;
    let s2 = ops.Intf.snapshot_begin 0 in
    let v1 = dump_at ops s1 space in
    let v2 = dump_at ops s2 space in
    Printf.printf "%s: %d keys loaded, epochs %d and %d pinned\n" index_name
      keys s1 s2;
    Printf.printf "  as-of %d: %d keys   as-of %d: %d keys\n" s1
      (List.length v1) s2 (List.length v2);
    Arena.power_fail arena Storelog.Keep_all;
    let o = Registry.open_existing arena in
    o.Intf.recover ();
    let r1 = dump_at o s1 space in
    let survived = r1 = v1 in
    Printf.printf "  power_fail + recovery: epoch %d re-pin %s\n" s1
      (if survived then "byte-identical" else "DIVERGED");
    let freed = o.Intf.gc_before s2 in
    Printf.printf "  gc_before %d: %d lines freed\n" s2 freed;
    let refused =
      match o.Intf.read_at s1 ks.(0) with
      | exception Invalid_argument _ -> true
      | _ -> false
    in
    Printf.printf "  epoch %d below the GC floor: reads %s\n" s1
      (if refused then "refused" else "STILL SERVED");
    let intact = dump_at o s2 space = v2 in
    Printf.printf "  epoch %d after GC: %s\n" s2
      (if intact then "intact" else "DAMAGED");
    if survived && refused && intact then 0 else 1
  end

(* Online backup: stream a pinned epoch into a second arena at a
   non-default root slot while the source keeps absorbing writes
   between chunks. *)
let backup_demo keys seed root_slot chunk =
  let space = 2 * keys in
  let src = mk_arena (max (1 lsl 20) (keys * 96)) in
  let inner = Registry.build "fastfair" src in
  let st = Snapshot.create src inner in
  let sops = Snapshot.ops_of st "snap-fastfair" in
  let rng = Prng.create seed in
  let ks = W.distinct_uniform rng ~n:keys ~space in
  W.load_keys sops ks;
  let snap = Snapshot.take st in
  let e = Snapshot.epoch snap in
  let expected = ref [] in
  Snapshot.range snap ~lo:1 ~hi:space (fun k v ->
      expected := (k, v) :: !expected);
  let expected = List.rev !expected in
  let dcfg = { Descriptor.default_config with Descriptor.root_slot } in
  let dest = mk_arena (max (1 lsl 20) (keys * 64)) in
  let d = Registry.find_exn "fastfair" in
  let dest_ops = d.Descriptor.build dcfg dest in
  let writes = ref 0 in
  let total =
    Snapshot.backup st ~epoch:e ~dest:dest_ops ~chunk
      ~between:(fun () ->
        (* the source stays online: mutate a few keys per chunk *)
        for _ = 1 to 4 do
          let k = ks.(Prng.int rng keys) in
          sops.Intf.insert k (W.value_of (space + k));
          incr writes
        done)
      ()
  in
  let dump ops =
    let acc = ref [] in
    ops.Intf.range 1 space (fun k v -> acc := (k, v) :: !acc);
    List.rev !acc
  in
  let live_ok = dump dest_ops = expected in
  Printf.printf
    "backup: %d pairs streamed at epoch %d (chunk %d, root slot %d), %d \
     concurrent writes on the source\n"
    total e chunk root_slot !writes;
  Printf.printf "  destination matches the pinned epoch: %s\n"
    (if live_ok then "yes" else "NO");
  Arena.power_fail dest Storelog.Keep_all;
  (* the manifest does not record the root slot, so reopening at a
     non-default slot takes an explicit config — the relocatable_root
     contract *)
  let reopened = d.Descriptor.open_existing dcfg dest in
  reopened.Intf.recover ();
  let crash_ok = dump reopened = expected in
  Printf.printf "  after power_fail + recovery at slot %d: %s\n" root_slot
    (if crash_ok then "byte-identical" else "DIVERGED");
  if live_ok && crash_ok then 0 else 1

(* ------------------------------------------------------------------ *)
(* rebalance: live split / merge / migrate under a concurrent writer   *)
(* ------------------------------------------------------------------ *)

(* One rebalance runs while a simulated writer keeps inserting; the
   audit is the rebalancer's whole contract: every acknowledged write
   (prefill and concurrent) reads back afterwards, live and again
   after a power failure resolved from the decision word alone.
   --mutate-drop-delta arms the cutover mutant, so the audit must
   fail — the lost writes are exactly the dual-written delta. *)
let rebalance_demo kind keys seed bytes_per_ms chunk_ops mutate =
  let module Mcsim = Ff_mcsim.Mcsim in
  let value_of k = (k * 7919) + 13 in
  let throttle = { Rebalance.bytes_per_ms; chunk_ops } in
  let prefill = List.init keys (fun i -> (2 * i) + 1) in
  let writer_keys =
    (* even keys, inserted in a seed-shuffled order so the dual-write
       window sees an unpredictable mix of both spans *)
    let a = Array.init keys (fun i -> (2 * i) + 2) in
    let rng = Prng.create seed in
    for i = keys - 1 downto 1 do
      let j = Prng.int rng (i + 1) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    done;
    Array.to_list a
  in
  let run t arena rebalance =
    let pairs = List.map (fun k -> (k, value_of k)) writer_keys in
    let writer _ =
      List.iter (fun (k, v) -> Shard.insert t ~key:k ~value:v) pairs
    in
    let report = ref None in
    ignore
      (Mcsim.run ~cores:1 ~quantum_ns:1 ~arena
         [| writer; (fun _ -> report := Some (rebalance ())) |]);
    (List.map (fun k -> (k, value_of k)) prefill @ pairs, Option.get !report)
  in
  let audit what read expected =
    let missing =
      List.filter (fun (k, v) -> read k <> Some v) expected
    in
    Printf.printf "  %s: %d/%d acknowledged writes visible%s\n" what
      (List.length expected - List.length missing)
      (List.length expected)
      (if missing = [] then ""
       else
         Printf.sprintf " — LOST %s"
           (String.concat ", "
              (List.map (fun (k, _) -> string_of_int k) missing)));
    missing = []
  in
  let print_report (r : Rebalance.report) =
    Printf.printf
      "%s: generation %d at shard %d — %d keys copied, %d delta records \
       replayed, %d stale keys cleaned\n"
      kind r.Rebalance.r_generation r.Rebalance.r_shard
      r.Rebalance.r_moved_keys r.Rebalance.r_delta_replayed
      r.Rebalance.r_cleaned_keys;
    Printf.printf
      "  background copy %d ns, cutover window %d ns (simulated)\n"
      r.Rebalance.r_copy_ns r.Rebalance.r_cutover_ns
  in
  Rebalance.mutant_drop_delta := mutate;
  Fun.protect
    ~finally:(fun () -> Rebalance.mutant_drop_delta := false)
    (fun () ->
      match kind with
      | "split" | "merge" ->
          let bounds = if kind = "merge" then [| keys |] else [||] in
          let a = mk_arena (max (1 lsl 20) (keys * 160)) in
          let t =
            Shard.create_composite ~inner:"fastfair"
              ~partition:(Shard.Partition.range ~bounds)
              a
          in
          List.iter
            (fun k -> Shard.insert t ~key:k ~value:(value_of k))
            prefill;
          let expected, r =
            run t a (fun () ->
                if kind = "split" then
                  Rebalance.split ~throttle t ~shard:0 ~pivot:keys
                else Rebalance.merge ~throttle t ~left:0)
          in
          print_report r;
          Printf.printf "  topology: %d shard%s\n" (Shard.shards t)
            (if Shard.shards t = 1 then "" else "s");
          let live_ok = audit "live audit" (Shard.search t) expected in
          Arena.power_fail a Storelog.Keep_all;
          let res = Rebalance.resolve a in
          Printf.printf "  power_fail + resolve: %s\n"
            (match res with
            | Rebalance.Resolved_idle -> "idle (finish already durable)"
            | Rebalance.Resolved_aborted _ -> "ABORTED"
            | Rebalance.Resolved_completed _ -> "rolled forward"
            | Rebalance.Resolved_migrated -> "MIGRATED?");
          let t2 = Shard.attach ~inner:"fastfair" a in
          Shard.recover t2;
          let crash_ok = audit "post-crash audit" (Shard.search t2) expected in
          if live_ok && crash_ok then 0 else 1
      | "migrate" ->
          let t = Shard.create ~group:false ~inner:"fastfair" ~shards:1 () in
          let src = (Shard.arenas t).(0) in
          let dst = mk_arena (max (1 lsl 20) (keys * 160)) in
          List.iter
            (fun k -> Shard.insert t ~key:k ~value:(value_of k))
            prefill;
          let expected, r =
            run t src (fun () -> Rebalance.migrate ~throttle t ~shard:0 ~dst)
          in
          print_report r;
          Printf.printf "  %d arena words shipped; source tombstone: %s\n"
            r.Rebalance.r_moved_words
            (match Rebalance.phase src with
            | Rebalance.Committed _ -> "committed"
            | _ -> "MISSING");
          let live_ok = audit "live audit" (Shard.search t) expected in
          Arena.power_fail dst Storelog.Keep_all;
          let res = Rebalance.resolve src in
          Printf.printf "  power_fail(dst) + resolve(src): %s\n"
            (match res with
            | Rebalance.Resolved_migrated -> "mount the destination"
            | _ -> "UNEXPECTED");
          let o = Registry.open_existing dst in
          o.Intf.recover ();
          let crash_ok =
            audit "post-crash audit" (fun k -> o.Intf.search k) expected
          in
          if live_ok && crash_ok && res = Rebalance.Resolved_migrated then 0
          else 1
      | s ->
          Printf.printf
            "rebalance: unknown kind %S (split, merge, migrate)\n" s;
          2)

(* ------------------------------------------------------------------ *)
(* cluster: replicated serving over a lossy fabric                     *)
(* ------------------------------------------------------------------ *)

module Cluster = Ff_cluster.Cluster

(* A concurrent writer keeps acking while shard 0's primary is first
   partitioned from its backup, then power-failed; the backup is
   promoted, the fabric heals, the dead node restarts and resyncs, and
   the audit requires every acknowledged write to read back.  The
   ack-before-replicate mutant makes the same run lose acks. *)
let cluster_demo nodes shards ops keyspace seed mutate =
  let prev = !Cluster.mutant_ack_before_replicate in
  Cluster.mutant_ack_before_replicate := mutate;
  Fun.protect
    ~finally:(fun () -> Cluster.mutant_ack_before_replicate := prev)
  @@ fun () ->
  let cfg =
    { Cluster.default with Cluster.nodes; shards; seed; words = 1 lsl 15 }
  in
  let cl = Cluster.create cfg in
  Printf.printf
    "cluster: %d nodes, %d shards, lossy fabric (seed %d)%s\n" nodes shards
    seed
    (if mutate then " [MUTANT: ack before replicate]" else "");
  (* Last acked value and indeterminate (errored) attempts per key. *)
  let acked = Hashtbl.create 97 in
  let pending = Hashtbl.create 97 in
  let part_at = max 1 (ops / 3) in
  let kill_at = max 2 (ops / 2) in
  let victim = ref (-1) in
  for j = 1 to ops do
    if j = part_at then begin
      let p = Cluster.primary_of cl ~shard:0 in
      let b = Cluster.backup_of cl ~shard:0 in
      Printf.printf "  t=%dns: partition node %d <-/-> node %d (shard 0)\n"
        (Cluster.now_ns cl) p b;
      Cluster.partition cl ~a:p ~b
    end;
    if j = kill_at then begin
      let v = Cluster.primary_of cl ~shard:0 in
      Printf.printf "  t=%dns: power-fail node %d (shard 0 primary)\n"
        (Cluster.now_ns cl) v;
      Cluster.kill_node cl v;
      victim := v;
      for s = 0 to shards - 1 do
        if Cluster.primary_of cl ~shard:s = v then
          if Cluster.failover cl ~shard:s then
            Printf.printf
              "  t=%dns: shard %d failed over to node %d (term %d)\n"
              (Cluster.now_ns cl) s
              (Cluster.primary_of cl ~shard:s)
              (Cluster.term_of cl ~shard:s)
      done
    end;
    let k = (j mod keyspace) + 1 in
    match Cluster.put cl k j with
    | Ok () ->
        Hashtbl.replace acked k j;
        Hashtbl.remove pending k
    | Error _ ->
        Hashtbl.replace pending k
          (j :: Option.value ~default:[] (Hashtbl.find_opt pending k))
  done;
  Cluster.heal cl;
  if !victim >= 0 then begin
    Cluster.restart_node cl !victim;
    Printf.printf "  t=%dns: node %d restarted and resynced\n"
      (Cluster.now_ns cl) !victim
  end;
  for _ = 1 to 3 do
    Cluster.tick cl
  done;
  let lost = ref 0 in
  let checked = ref 0 in
  Hashtbl.iter
    (fun k v ->
      incr checked;
      let rec read tries =
        match Cluster.get cl k with
        | Ok r -> Some r
        | Error _ ->
            if tries <= 0 then None
            else begin
              Cluster.tick cl;
              read (tries - 1)
            end
      in
      let pend = Option.value ~default:[] (Hashtbl.find_opt pending k) in
      match read 10 with
      | None ->
          incr lost;
          Printf.printf "  LOST: key %d unreadable (last acked %d)\n" k v
      | Some r ->
          let ok =
            match r with Some x -> x = v || List.mem x pend | None -> false
          in
          if not ok then begin
            incr lost;
            Printf.printf "  LOST: key %d reads %s, last acked %d\n" k
              (match r with None -> "absent" | Some x -> string_of_int x)
              v
          end)
    acked;
  let st = Cluster.stats cl in
  Printf.printf
    "  acks=%d read_only_refusals=%d unavailable=%d failovers=%d resyncs=%d\n"
    st.Cluster.s_acks st.Cluster.s_read_only st.Cluster.s_unavailable
    st.Cluster.s_failovers st.Cluster.s_resyncs;
  Printf.printf
    "  repl_records=%d resent=%d rpc_sent=%d dropped=%d dup=%d blackout=%s\n"
    st.Cluster.s_repl_records st.Cluster.s_repl_resent st.Cluster.s_rpc_sent
    st.Cluster.s_rpc_dropped st.Cluster.s_rpc_dup
    (if st.Cluster.s_last_blackout_ns < 0 then "none"
     else Printf.sprintf "%dns" st.Cluster.s_last_blackout_ns);
  Cluster.close cl;
  if !lost = 0 then begin
    Printf.printf "  audit: %d acknowledged keys, zero lost\n" !checked;
    0
  end
  else begin
    Printf.printf "  audit: %d acknowledged keys, %d LOST\n" !checked !lost;
    1
  end

(* ------------------------------------------------------------------ *)
(* check: model-check schedules and crash states                       *)
(* ------------------------------------------------------------------ *)

let print_check_report ~out (r : Ff_check.Check.report) =
  print_endline (Ff_check.Check.report_summary r);
  List.iteri
    (fun i (v : Ff_check.Check.violation) ->
      Printf.printf "\nviolation %d (%s):\n%s\n" (i + 1)
        (Ff_check.Check.kind_to_string v.Ff_check.Check.kind)
        v.Ff_check.Check.detail;
      match out with
      | None -> ()
      | Some dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          let path = Filename.concat dir (Printf.sprintf "cx-%d.json" (i + 1)) in
          Ff_check.Counterexample.save v.Ff_check.Check.counterexample path;
          Printf.printf "counterexample saved to %s (replay with: ffcli check --replay %s)\n"
            path path)
    r.Ff_check.Check.violations;
  if r.Ff_check.Check.violations = [] then 0 else 1

(* check --all: one bounded sweep per checker family with a one-line
   verdict each; the exit code is the OR across families.  Budgets are
   sized for a smoke sweep, not a deep audit — CI runs the deep sweeps
   per family. *)
let check_all index_name seed out =
  let module C = Ff_check.Check in
  let module TC = Ff_check.Txcheck in
  let module SC = Ff_check.Snapcheck in
  let module RC = Ff_check.Rebalcheck in
  let module RepC = Ff_check.Replcheck in
  let snap_index =
    let candidate = "snap-" ^ index_name in
    if Registry.find candidate <> None then candidate else index_name
  in
  let families =
    [
      ( "linearizability",
        fun () ->
          C.run
            ~config:{ C.default with C.seed; schedules = 6; crash_budget = 64 }
            index_name );
      ( "tx",
        fun () ->
          TC.run
            ~config:
              { TC.default with TC.seed; schedules = 4; crash_budget = 64 }
            index_name );
      ( "snapshot",
        fun () ->
          (* ops_per_round mirrors the `check --snapshot` CLI default
             rather than SC.default: the deeper 4-op rounds expose a
             known prefix-window artifact (see ROADMAP) that the smoke
             sweep should not trip over. *)
          SC.run
            ~config:
              {
                SC.default with
                SC.seed;
                ops_per_round = 2;
                schedules = 4;
                crash_budget = 64;
              }
            snap_index );
      ( "rebalance",
        fun () ->
          RC.run
            ~config:
              { RC.default with RC.seed; schedules = 2; crash_budget = 24 }
            index_name );
      ( "replica",
        fun () ->
          RepC.run
            ~config:{ RepC.default with RepC.seed; schedules = 4 }
            index_name );
    ]
  in
  List.fold_left
    (fun acc (fam, f) ->
      let r = f () in
      match r.C.skipped with
      | Some reason ->
          Printf.printf "%-16s skipped: %s\n" fam reason;
          acc
      | None ->
          Printf.printf "%-16s %s\n" fam (C.report_summary r);
          List.iteri
            (fun i (v : C.violation) ->
              match out with
              | None -> ()
              | Some dir ->
                  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
                  let path =
                    Filename.concat dir
                      (Printf.sprintf "%s-cx-%d.json" fam (i + 1))
                  in
                  Ff_check.Counterexample.save v.C.counterexample path;
                  Printf.printf "  counterexample saved to %s\n" path)
            r.C.violations;
          if r.C.violations <> [] then 1 else acc)
    0 families

let check index_name writers readers ops keyspace prefill seed explorer schedules
    no_crashes crash_budget non_tso elide tx txns tx_path torn snapshot rounds
    snap_mutant rebalance rebal_kind rebal_mutant replica repl_mutant all out
    replay =
  let module C = Ff_check.Check in
  let module TC = Ff_check.Txcheck in
  let module SC = Ff_check.Snapcheck in
  let module RC = Ff_check.Rebalcheck in
  let module RepC = Ff_check.Replcheck in
  match replay with
  | Some path -> (
      match Ff_check.Counterexample.load path with
      | Error msg ->
          Printf.printf "check --replay: %s\n" msg;
          2
      | Ok cx ->
          (* A counterexample carrying the tx (resp. snap) extension
             came from the transaction (resp. snapshot) checker;
             replay it through the matching engine. *)
          let is_tx = cx.Ff_check.Counterexample.tx <> None in
          let is_snap = cx.Ff_check.Counterexample.snap <> None in
          let is_rebal = cx.Ff_check.Counterexample.rebal <> None in
          let is_repl = cx.Ff_check.Counterexample.repl <> None in
          Printf.printf "replaying %s%s counterexample for %s (crash: %s)\n"
            (if is_tx then "transaction "
             else if is_snap then "snapshot "
             else if is_rebal then "rebalance "
             else if is_repl then "replication "
             else "")
            cx.Ff_check.Counterexample.kind cx.Ff_check.Counterexample.index
            (match cx.Ff_check.Counterexample.crash with
            | None -> "none"
            | Some c ->
                Printf.sprintf "%s at store %d" c.Ff_check.Counterexample.mode
                  c.Ff_check.Counterexample.store_count);
          let r =
            if is_tx then TC.replay cx
            else if is_snap then SC.replay cx
            else if is_rebal then RC.replay cx
            else if is_repl then RepC.replay cx
            else C.replay cx
          in
          let rc = print_check_report ~out:None r in
          if rc = 1 then begin
            print_endline "counterexample REPRODUCED";
            1
          end
          else begin
            print_endline "counterexample did NOT reproduce";
            2
          end)
  | None ->
      let explorer =
        match explorer with
        | "dfs" -> C.Dfs
        | "pct" -> C.Pct
        | s -> invalid_arg (Printf.sprintf "unknown explorer %S (dfs, pct)" s)
      in
      if all then check_all index_name seed out
      else if replica then begin
        let config =
          {
            RepC.default with
            RepC.ops = (if ops > 2 then ops else RepC.default.RepC.ops);
            keyspace;
            seed;
            mutant = repl_mutant;
            schedules;
          }
        in
        match RepC.checkable (Registry.find_exn index_name) config with
        | Some msg ->
            Printf.printf "check --replica: %s\n" msg;
            2
        | None -> print_check_report ~out (RepC.run ~config index_name)
      end
      else if rebalance then begin
        let config =
          {
            RC.default with
            RC.kind = RC.rkind_of_string rebal_kind;
            ops;
            keyspace;
            prefill;
            seed;
            mutant = rebal_mutant;
            explorer;
            schedules;
            crash_budget = (if no_crashes then 0 else crash_budget);
          }
        in
        match RC.checkable (Registry.find_exn index_name) config with
        | Some msg ->
            Printf.printf "check --rebalance: %s\n" msg;
            2
        | None -> print_check_report ~out (RC.run ~config index_name)
      end
      else if snapshot then begin
        let config =
          {
            SC.default with
            SC.rounds;
            ops_per_round = ops;
            keyspace;
            prefill;
            seed;
            mutant = snap_mutant;
            explorer;
            schedules;
            crash_budget = (if no_crashes then 0 else crash_budget);
          }
        in
        match SC.checkable (Registry.find_exn index_name) config with
        | Some msg ->
            Printf.printf "check --snapshot: %s\n" msg;
            2
        | None -> print_check_report ~out (SC.run ~config index_name)
      end
      else if tx then begin
        let config =
          {
            TC.default with
            TC.txns;
            ops_per_txn = ops;
            readers;
            keyspace;
            prefill;
            seed;
            path = tx_path_of_string tx_path;
            torn_commit = torn;
            explorer;
            schedules;
            crash_budget = (if no_crashes then 0 else crash_budget);
            non_tso;
          }
        in
        match TC.checkable (Registry.find_exn index_name) config with
        | Some msg ->
            Printf.printf "check --tx: %s\n" msg;
            2
        | None -> print_check_report ~out (TC.run ~config index_name)
      end
      else
        let config =
          {
            C.default with
            C.writers;
            readers;
            ops_per_thread = ops;
            keyspace;
            prefill;
            seed;
            explorer;
            schedules;
            crashes = not no_crashes;
            crash_budget;
            non_tso;
            elide_flush = elide;
          }
        in
        print_check_report ~out (C.run ~config index_name)

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)
(* ------------------------------------------------------------------ *)

(* Unknown names fail with the registry's own name list, which is the
   single source of truth (no per-binary table to fall out of date). *)
let index_conv =
  let parse s =
    match Registry.find s with
    | Some _ -> Ok s
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown index %S (registered: %s)" s
               (String.concat ", " (Registry.names ()))))
  in
  Arg.conv (parse, Format.pp_print_string)

let index_arg =
  let doc = "Index structure: " ^ String.concat ", " (Registry.names ()) ^ "." in
  Arg.(value & opt index_conv "fastfair" & info [ "index"; "i" ] ~docv:"INDEX" ~doc)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed"; "s" ] ~docv:"SEED" ~doc:"PRNG seed.")

let list_cmd =
  let names_only =
    Arg.(value & flag & info [ "names" ] ~doc:"Print bare names, one per line.")
  in
  let persistent_only =
    Arg.(
      value & flag
      & info [ "persistent" ] ~doc:"Only indexes whose contents survive a power failure.")
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List registered indexes and their capabilities")
    Term.(const list_indexes $ names_only $ persistent_only)

let fuzz_cmd =
  let ops =
    Arg.(value & opt int 50_000 & info [ "ops"; "n" ] ~docv:"N" ~doc:"Operation count.")
  in
  let shards =
    Arg.(value & opt int 0 & info [ "shards" ] ~docv:"N"
         ~doc:"Fuzz an N-way sharded composite over the chosen index (0 = unsharded).")
  in
  let faults =
    Arg.(value & flag & info [ "faults" ]
         ~doc:"Punctuate the run with power failures that poison cache lines \
               (seeded, deterministic), then scrub-and-recover; the model \
               tolerates only media loss the scrub accounted for.")
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Random operations cross-checked against a hash-table model")
    Term.(const fuzz $ index_arg $ ops $ seed_arg $ shards $ faults)

let crash_cmd =
  let keys =
    Arg.(value & opt int 2000 & info [ "keys"; "k" ] ~docv:"N" ~doc:"Preloaded keys.")
  in
  let points =
    Arg.(value & opt int 200 & info [ "points"; "p" ] ~docv:"P" ~doc:"Crash points to sample.")
  in
  Cmd.v
    (Cmd.info "crash-test"
       ~doc:"Crash an insert+delete batch at sampled store points and validate recovery")
    Term.(const crash_test $ index_arg $ keys $ points $ seed_arg)

let stats_cmd =
  let keys =
    Arg.(value & opt int 100_000 & info [ "keys"; "k" ] ~docv:"N" ~doc:"Keys to insert.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the counters as a JSON object.")
  in
  let shards =
    Arg.(value & opt int 0 & info [ "shards" ] ~docv:"N"
         ~doc:"Load through an N-way sharded serving layer and report \
               per-shard PM, fault and degradation statistics (0 = unsharded).")
  in
  let degrade =
    Arg.(value & opt int 0 & info [ "degrade" ] ~docv:"K"
         ~doc:"After the load, poison the root-node line of the first K \
               shards and probe each once, so the fault and degradation \
               blocks report live values (needs --shards).")
  in
  let retry_limit =
    Arg.(value & opt int 3 & info [ "retry-limit" ] ~docv:"N"
         ~doc:"With --shards: worker attempts per op before parking the \
               batch (jittered exponential backoff between attempts).")
  in
  let backoff_ns =
    Arg.(value & opt int 1000 & info [ "backoff-ns" ] ~docv:"NS"
         ~doc:"With --shards: base backoff charged before retry n is \
               base*2^n plus up to the same again of seeded jitter.")
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"PM event statistics for a bulk load")
    Term.(const stats $ index_arg $ keys $ seed_arg $ json $ shards $ degrade
          $ retry_limit $ backoff_ns)

let dump_cmd =
  let keys =
    Arg.(value & opt int 30 & info [ "keys"; "k" ] ~docv:"N" ~doc:"Keys to insert.")
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Print the node structure of a small FAST+FAIR tree")
    Term.(const dump $ keys)

let persist_cmd =
  let keys =
    Arg.(value & opt int 50_000 & info [ "keys"; "k" ] ~docv:"N" ~doc:"Keys to insert.")
  in
  let path =
    Arg.(value & opt string "/tmp/fastfair.img" & info [ "file"; "f" ] ~docv:"PATH"
         ~doc:"Image file path.")
  in
  Cmd.v
    (Cmd.info "persist"
       ~doc:"Save any index's persisted PM image to a file and reload it via the manifest")
    Term.(const persist $ index_arg $ keys $ path)

let scrub_cmd =
  let keys =
    Arg.(value & opt int 300 & info [ "keys"; "k" ] ~docv:"N" ~doc:"Preloaded keys.")
  in
  let poison =
    Arg.(value & opt int 0 & info [ "poison" ] ~docv:"N"
         ~doc:"Also poison N cache lines at the crash (media-fault repair exercise).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the scrub report as JSON.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"PATH"
         ~doc:"Also save the JSON report to this file.")
  in
  let mutate_skip =
    Arg.(value & flag & info [ "mutate-skip-scrub" ]
         ~doc:"Fault injection: recover without scrubbing and run the leak \
               oracle only — it must fail (exit 1), proving the oracle catches \
               a recovery path that forgot to scrub.")
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:"Leak a node with a seeded mid-split crash, then scrub: detect, \
             repair, reclaim, and prove the next allocation reuses the leak")
    Term.(const scrub_run $ index_arg $ keys $ seed_arg $ poison $ json $ out
          $ mutate_skip)

let trace_cmd =
  let keys =
    Arg.(value & opt int 20_000 & info [ "keys"; "k" ] ~docv:"N" ~doc:"Preloaded keys.")
  in
  let ops =
    Arg.(value & opt int 8_000 & info [ "ops"; "n" ] ~docv:"N"
         ~doc:"Traced operations (2:1:1 search/insert/delete mix).")
  in
  let threads =
    Arg.(value & opt int 8 & info [ "threads"; "t" ] ~docv:"T"
         ~doc:"Simulated threads on the 16-core machine.")
  in
  let out =
    Arg.(value & opt string "trace.json" & info [ "out"; "o" ] ~docv:"PATH"
         ~doc:"Output Perfetto/chrome://tracing JSON file.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Record a multithreaded FAST+FAIR run as a Perfetto JSON trace and print metrics")
    Term.(const trace $ keys $ ops $ threads $ seed_arg $ out)

let top_cmd =
  let from =
    Arg.(value & opt (some string) None & info [ "from"; "f" ] ~docv:"FILE"
         ~doc:"Render a saved snapshot (BENCH_n.json from $(b,bench --json \
               --slo), or a bare snapshot file) instead of running live.")
  in
  let ops =
    Arg.(value & opt int 4_000 & info [ "ops"; "n" ] ~docv:"N"
         ~doc:"Live mode: operations in the zipfian mixed load.")
  in
  let shards =
    Arg.(value & opt int 4 & info [ "shards" ] ~docv:"N"
         ~doc:"Live mode: shard count of the serving layer.")
  in
  let p99 =
    Arg.(value & opt int 20_000_000 & info [ "p99-ns" ] ~docv:"NS"
         ~doc:"Live mode: p99 latency bound for the insert/search SLO rules.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Text dashboard: throughput, latency tail, fence attribution and \
             SLO verdict, from a live mini-run or a saved snapshot")
    Term.(const top $ from $ index_arg $ ops $ shards $ seed_arg $ p99)

let check_cmd =
  let writers =
    Arg.(value & opt int 2 & info [ "writers"; "w" ] ~docv:"N" ~doc:"Concurrent writer threads.")
  in
  let readers =
    Arg.(value & opt int 1 & info [ "readers"; "r" ] ~docv:"N" ~doc:"Concurrent reader threads.")
  in
  let ops =
    Arg.(value & opt int 2 & info [ "ops"; "n" ] ~docv:"N" ~doc:"Operations per thread.")
  in
  let keyspace =
    Arg.(value & opt int 8 & info [ "keyspace" ] ~docv:"K" ~doc:"Keys drawn from 1..K.")
  in
  let prefill =
    Arg.(value & opt int 4 & info [ "prefill" ] ~docv:"N" ~doc:"Keys inserted before the concurrent phase.")
  in
  let explorer =
    Arg.(value & opt string "pct" & info [ "explorer"; "e" ] ~docv:"MODE"
         ~doc:"Schedule exploration: $(b,pct) (randomized priorities) or $(b,dfs) (bounded exhaustive).")
  in
  let schedules =
    Arg.(value & opt int 16 & info [ "schedules" ] ~docv:"N" ~doc:"Exploration budget (schedules).")
  in
  let no_crashes =
    Arg.(value & flag & info [ "no-crashes" ] ~doc:"Skip the crash x schedule product engine.")
  in
  let crash_budget =
    Arg.(value & opt int 256 & info [ "crash-budget" ] ~docv:"N"
         ~doc:"Global cap on crash executions across all schedules.")
  in
  let non_tso =
    Arg.(value & flag & info [ "non-tso" ]
         ~doc:"Run under non-TSO memory order and sweep every fence-epoch cutoff exhaustively.")
  in
  let elide =
    Arg.(value & flag & info [ "mutate-elide-flush" ]
         ~doc:"Fault injection: drop every flush during the concurrent phase (demonstrates \
               counterexample generation; a correct structure then fails durability).")
  in
  let tx =
    Arg.(value & flag & info [ "tx" ]
         ~doc:"Check whole transactions for durable serializability instead of \
               individual operations: every crash point replays through \
               transaction recovery and must land on a transaction boundary. \
               $(b,--ops) becomes operations per transaction.")
  in
  let txns =
    Arg.(value & opt int 3 & info [ "txns" ] ~docv:"N"
         ~doc:"With --tx: transactions in the writer script.")
  in
  let tx_path =
    Arg.(value & opt string "logged" & info [ "tx-path" ] ~docv:"PATH"
         ~doc:"With --tx: commit path under test, $(b,logged) or $(b,shadow).")
  in
  let torn =
    Arg.(value & flag & info [ "mutate-torn-commit" ]
         ~doc:"Fault injection (with --tx): persist the commit record without \
               ordering the payload behind it — the sweep must fail and emit a \
               replayable counterexample.")
  in
  let snapshot =
    Arg.(value & flag & info [ "snapshot" ]
         ~doc:"Check snapshot serializability instead of individual operations: \
               a reader pins an epoch mid-schedule, its read vector must match \
               a commit-log prefix inside the pin window, stay stable under \
               concurrent writes, and survive every crash point byte-for-byte. \
               Needs a snapshottable index (e.g. $(b,snap-fastfair)); \
               $(b,--ops) becomes operations per round.")
  in
  let rounds =
    Arg.(value & opt int 3 & info [ "rounds" ] ~docv:"N"
         ~doc:"With --snapshot: write rounds in the commit log.")
  in
  let snap_mutant =
    Arg.(value & flag & info [ "mutate-read-latest" ]
         ~doc:"Fault injection (with --snapshot): pinned reads silently resolve \
               against the live tree — the sweep must fail and emit a \
               replayable counterexample.")
  in
  let rebalance =
    Arg.(value & flag & info [ "rebalance" ]
         ~doc:"Check live resharding instead of individual operations: a \
               writer applies a deterministic commit log while a rebalancer \
               splits, merges or migrates a shard underneath it; after every \
               explored schedule and crash point, zero acknowledged writes \
               may be lost. $(b,--ops) becomes the writer commit-log length.")
  in
  let rebal_kind =
    Arg.(value & opt string "split" & info [ "rebal-kind" ] ~docv:"KIND"
         ~doc:"With --rebalance: $(b,split), $(b,merge) or $(b,migrate).")
  in
  let rebal_mutant =
    Arg.(value & flag & info [ "mutate-drop-delta" ]
         ~doc:"Fault injection (with --rebalance): cutover silently discards \
               the dual-written delta records — the sweep must fail and emit \
               a replayable counterexample.")
  in
  let replica =
    Arg.(value & flag & info [ "replica" ]
         ~doc:"Check multi-node replication instead of individual operations: \
               a client script runs against a simulated cluster over a lossy \
               fabric while the hot shard's primary is partitioned and \
               power-failed; after failover and resync, every acknowledged \
               write must read back. $(b,--ops) becomes the client script \
               length.")
  in
  let repl_mutant =
    Arg.(value & flag & info [ "mutate-ack-before-replicate" ]
         ~doc:"Fault injection (with --replica): the primary acks client \
               writes before the backup is durable — the sweep must fail and \
               emit a replayable counterexample.")
  in
  let all =
    Arg.(value & flag & info [ "all" ]
         ~doc:"Run every checker family (linearizability, tx, snapshot, \
               rebalance, replica) as one bounded smoke sweep with a one-line \
               verdict per family; the exit code is the OR across families.")
  in
  let out =
    Arg.(value & opt (some string) (Some "counterexamples") & info [ "out"; "o" ] ~docv:"DIR"
         ~doc:"Directory for counterexample artifacts.")
  in
  let replay =
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE"
         ~doc:"Re-execute a recorded counterexample deterministically instead of exploring.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Model-check an index: explore schedules, verify linearizability, and crash \
             every explored schedule at each fence; --tx checks whole transactions \
             for durable serializability, --rebalance checks lost-write freedom \
             under live resharding, --replica checks no-lost-acks replication, \
             --all runs every family as one smoke sweep")
    Term.(const check $ index_arg $ writers $ readers $ ops $ keyspace $ prefill $ seed_arg
          $ explorer $ schedules $ no_crashes $ crash_budget $ non_tso $ elide
          $ tx $ txns $ tx_path $ torn $ snapshot $ rounds $ snap_mutant
          $ rebalance $ rebal_kind $ rebal_mutant $ replica $ repl_mutant $ all
          $ out $ replay)

let tx_cmd =
  let path =
    Arg.(value & opt string "logged" & info [ "path"; "p" ] ~docv:"PATH"
         ~doc:"Commit path: $(b,logged) (undo/redo) or $(b,shadow) (MOD-style).")
  in
  let accounts =
    Arg.(value & opt int 16 & info [ "accounts"; "a" ] ~docv:"N"
         ~doc:"Accounts on the balance sheet.")
  in
  let transfers =
    Arg.(value & opt int 200 & info [ "transfers"; "n" ] ~docv:"N"
         ~doc:"Committed transfer history before the crash sweep.")
  in
  let points =
    Arg.(value & opt int 60 & info [ "points" ] ~docv:"P"
         ~doc:"Crash points sampled across the victim transfer's stores.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the audit as a JSON object.")
  in
  Cmd.v
    (Cmd.info "tx"
       ~doc:"Failure-atomic multi-key transfers: crash one transfer mid-commit \
             at every sampled store, recover, and audit that the balances land \
             on a transaction boundary")
    Term.(const tx_demo $ index_arg $ path $ accounts $ transfers $ points
          $ seed_arg $ json)

let snapshot_cmd =
  let index =
    let doc =
      "Snapshottable index (snap column in $(b,ffcli list))."
    in
    Arg.(value & opt index_conv "snap-fastfair"
         & info [ "index"; "i" ] ~docv:"INDEX" ~doc)
  in
  let keys =
    Arg.(value & opt int 2000 & info [ "keys"; "k" ] ~docv:"N"
         ~doc:"Keys loaded before the first pin.")
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:"MVCC time travel: pin an epoch, keep writing, read the old world \
             back — including after a power failure — then reclaim it with \
             epoch GC")
    Term.(const snapshot_demo $ index $ keys $ seed_arg)

let backup_cmd =
  let keys =
    Arg.(value & opt int 2000 & info [ "keys"; "k" ] ~docv:"N"
         ~doc:"Keys loaded before the backup epoch is pinned.")
  in
  let root_slot =
    Arg.(value & opt int 4 & info [ "root-slot" ] ~docv:"SLOT"
         ~doc:"Destination root slot (exercises relocatable_root).")
  in
  let chunk =
    Arg.(value & opt int 256 & info [ "chunk" ] ~docv:"N"
         ~doc:"Pairs streamed per batch between source write bursts.")
  in
  Cmd.v
    (Cmd.info "backup"
       ~doc:"Online backup: stream a pinned snapshot into a second arena at a \
             non-default root slot while the source keeps serving writes, \
             then crash the copy and verify it recovers byte-identical")
    Term.(const backup_demo $ keys $ seed_arg $ root_slot $ chunk)

let rebalance_cmd =
  let kind =
    Arg.(value & opt string "split" & info [ "kind" ] ~docv:"KIND"
         ~doc:"$(b,split), $(b,merge) or $(b,migrate).")
  in
  let keys =
    Arg.(value & opt int 400 & info [ "keys"; "k" ] ~docv:"N"
         ~doc:"Prefilled keys; the concurrent writer inserts as many again.")
  in
  let bytes_per_ms =
    Arg.(value & opt int 65536 & info [ "bytes-per-ms" ] ~docv:"B"
         ~doc:"Background-copy budget per simulated millisecond (0 = unthrottled).")
  in
  let chunk_ops =
    Arg.(value & opt int 64 & info [ "chunk-ops" ] ~docv:"N"
         ~doc:"Keys moved per throttle charge.")
  in
  let mutate =
    Arg.(value & flag & info [ "mutate-drop-delta" ]
         ~doc:"Fault injection: cutover silently discards the dual-written \
               delta records — the audit must then report lost acknowledged \
               writes and exit 1.")
  in
  Cmd.v
    (Cmd.info "rebalance"
       ~doc:"Live resharding: split, merge or migrate a shard while a \
             concurrent writer keeps inserting, audit that no acknowledged \
             write is lost — live and again after a power failure resolved \
             from the decision word alone")
    Term.(const rebalance_demo $ kind $ keys $ seed_arg $ bytes_per_ms
          $ chunk_ops $ mutate)

let cluster_cmd =
  let nodes =
    Arg.(value & opt int 3 & info [ "nodes" ] ~docv:"N"
         ~doc:"Simulated nodes (each hosts a full shard ensemble).")
  in
  let shards =
    Arg.(value & opt int 4 & info [ "shards" ] ~docv:"N"
         ~doc:"Logical shards, each with one primary and one backup replica.")
  in
  let ops =
    Arg.(value & opt int 400 & info [ "ops"; "n" ] ~docv:"N"
         ~doc:"Client writes issued by the concurrent writer.")
  in
  let keyspace =
    Arg.(value & opt int 64 & info [ "keyspace" ] ~docv:"K"
         ~doc:"Keys drawn from 1..K.")
  in
  let mutate =
    Arg.(value & flag & info [ "mutate-ack-before-replicate" ]
         ~doc:"Fault injection: the primary acks client writes before the \
               backup is durable — the audit must then report lost \
               acknowledged writes and exit 1.")
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:"Replicated serving over a lossy fabric: partition and power-fail \
             the hot shard's primary under a concurrent writer, promote the \
             backup, resync the rejoining node, and audit that no \
             acknowledged write is lost")
    Term.(const cluster_demo $ nodes $ shards $ ops $ keyspace $ seed_arg
          $ mutate)

let () =
  let info = Cmd.info "ffcli" ~doc:"FAST+FAIR persistent B+-tree playground" in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ list_cmd; fuzz_cmd; crash_cmd; check_cmd; scrub_cmd; stats_cmd; dump_cmd;
            persist_cmd; trace_cmd; top_cmd; tx_cmd; snapshot_cmd; backup_cmd;
            rebalance_cmd; cluster_cmd ]))
