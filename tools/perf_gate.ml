(* perf_gate: refuse performance regressions between checked-in
   benchmark snapshots.

   The repo carries its perf trajectory as BENCH_<n>.json files — one
   per PR, written by `bench --json BENCH_<n>.json --slo` at a fixed
   scale and seed, so every number is simulated-time-deterministic and
   a diff is a code change, never machine noise.

   Modes:
     perf_gate                      gate latest checked-in vs previous
     perf_gate --fresh FILE         gate FILE vs latest checked-in
   Options:
     --dir DIR          where BENCH_<n>.json live (default ".")
     --tolerance T      allowed fractional drift (default 0.10)

   Exit 0 when the headline holds (kops not down, fences/op not up,
   beyond tolerance), 1 on regression, 2 on usage errors.  With fewer
   than two snapshots there is nothing to compare: exit 0 with a note,
   so the first PR that checks in a snapshot passes.  --fresh with no
   checked-in baseline at all, though, exits 2 with the expected
   baseline name and the command that regenerates one — that is a
   broken setup, not a green gate. *)

module J = Ff_trace.Json
module Snapshot = Ff_obs.Snapshot

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* A snapshot file is either bare (Snapshot.save) or a full bench
   report whose "obs" member holds one. *)
let load_snapshot path =
  match J.of_string (read_file path) with
  | exception J.Parse_error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | doc ->
      let sj = match J.member "obs" doc with Some o -> o | None -> doc in
      let present k = J.member k sj <> None in
      if present "label" && present "kops" && present "fences_per_op" then
        Ok (Snapshot.of_json sj)
      else Error (Printf.sprintf "%s carries no benchmark snapshot" path)

let bench_number name =
  (* BENCH_<n>.json -> Some n *)
  if String.length name > 7 && String.sub name 0 6 = "BENCH_" then
    match Filename.chop_suffix_opt ~suffix:".json" name with
    | Some stem -> int_of_string_opt (String.sub stem 6 (String.length stem - 6))
    | None -> None
  else None

let checked_in dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun name ->
         match bench_number name with
         | Some n -> Some (n, Filename.concat dir name)
         | None -> None)
  |> List.sort compare

let gate ~tolerance ~prev_path ~fresh_path =
  match (load_snapshot prev_path, load_snapshot fresh_path) with
  | Error e, _ | _, Error e ->
      prerr_endline ("perf_gate: " ^ e);
      2
  | Ok prev, Ok fresh -> (
      Printf.printf "perf_gate: %s -> %s (tolerance %.0f%%)\n" prev_path
        fresh_path (100. *. tolerance);
      Printf.printf "  kops       %10.1f -> %10.1f\n" prev.Snapshot.kops
        fresh.Snapshot.kops;
      Printf.printf "  fences/op  %10.3f -> %10.3f\n" prev.Snapshot.fences_per_op
        fresh.Snapshot.fences_per_op;
      Printf.printf "  p99        %8dns -> %8dns\n" prev.Snapshot.p99_ns
        fresh.Snapshot.p99_ns;
      match Snapshot.compare_headline ~prev ~fresh ~tolerance with
      | [] ->
          print_endline "perf_gate: PASS";
          0
      | failures ->
          List.iter (fun f -> print_endline ("perf_gate: FAIL " ^ f)) failures;
          1)

let () =
  let dir = ref "." and tolerance = ref 0.10 and fresh = ref "" in
  let spec =
    [
      ("--dir", Arg.Set_string dir, "DIR directory holding BENCH_<n>.json");
      ("--tolerance", Arg.Set_float tolerance, "T fractional drift allowed");
      ("--fresh", Arg.Set_string fresh, "FILE gate FILE against the latest checked-in snapshot");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "perf_gate [--dir DIR] [--tolerance T] [--fresh FILE]";
  let history = checked_in !dir in
  let rc =
    match (!fresh, List.rev history) with
    | "", (_, latest) :: (_, prev) :: _ ->
        gate ~tolerance:!tolerance ~prev_path:prev ~fresh_path:latest
    | "", _ ->
        Printf.printf
          "perf_gate: fewer than two BENCH_<n>.json in %s; nothing to gate\n"
          !dir;
        0
    | f, (_, latest) :: _ ->
        gate ~tolerance:!tolerance ~prev_path:latest ~fresh_path:f
    | f, [] ->
        (* --fresh without a baseline is a broken setup (wrong --dir, or
           the snapshot was never checked in), not a trivially-green
           gate: fail loudly and say how to repair it. *)
        prerr_endline ("perf_gate: no checked-in baseline to gate " ^ f ^ " against");
        Printf.eprintf
          "perf_gate: expected a BENCH_<n>.json in %s (e.g. %s); check --dir, \
           or regenerate and check in a baseline with:\n\
          \  dune exec bench/main.exe -- --json BENCH_<n>.json --slo\n"
          !dir
          (Filename.concat !dir "BENCH_1.json");
        2
  in
  exit rc
