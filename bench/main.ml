(* Benchmark harness: one target per table/figure of the paper's
   evaluation (Section V), regenerating each series from the PM cost
   model (simulated nanoseconds) or, for Figure 7, from the multicore
   simulator's makespan.  `main.exe --help` lists targets; the default
   runs everything at a scaled-down size.

   Absolute numbers differ from the paper (our substrate is a
   simulator, not a Haswell testbed with Quartz); the *shapes* — who
   wins, crossover points, scaling knees — are the reproduction
   targets and are recorded against the paper in EXPERIMENTS.md. *)

module Arena = Ff_pmem.Arena
module Config = Ff_pmem.Config
module Stats = Ff_pmem.Stats
module Storelog = Ff_pmem.Storelog
module Prng = Ff_util.Prng
module Table = Ff_util.Table
module Mcsim = Ff_mcsim.Mcsim
module Locks = Ff_index.Locks
module Intf = Ff_index.Intf
module Descriptor = Ff_index.Descriptor
module Registry = Ff_index.Registry
module W = Ff_workload.Workload
module Shard = Ff_shard.Shard
module Histogram = Ff_util.Histogram
module Tree = Ff_fastfair.Tree
module Tpcc = Ff_tpcc.Tpcc
module Rebalance = Ff_rebalance.Rebalance

(* ------------------------------------------------------------------ *)
(* Scales (overridable via CLI)                                        *)
(* ------------------------------------------------------------------ *)

let scale = ref 1.0

let sc n = max 16 (int_of_float (float_of_int n *. !scale))

(* Scheduling policy for the concurrent (multi-thread) Mcsim runs.
   Recorded in the --json report so concurrency numbers are
   reproducible: rerunning with the same policy+seed replays the same
   interleavings. *)
let sched_policy = ref "fifo"
let sched_seed = ref 0
let sched () = Mcsim.policy_of_spec ~seed:!sched_seed !sched_policy

(* Zipfian skew for the YCSB-style and soak workloads (--zipf). *)
let zipf_theta = ref 0.99

(* ------------------------------------------------------------------ *)
(* Builders — resolved through the index registry                      *)
(* ------------------------------------------------------------------ *)

let arena ?(config = Config.default) words = Arena.create ~config ~words ()

type maker = { label : string; build : Arena.t -> Intf.ops }

let of_registry ?label ?node_bytes ?(lock = Locks.Single) name =
  let d = Registry.find_exn name in
  {
    label = (match label with Some l -> l | None -> name);
    build =
      d.Descriptor.build
        { Descriptor.default_config with Descriptor.node_bytes; lock_mode = lock };
  }

let fastfair ?node_bytes ?lock () =
  of_registry ~label:"fast+fair" ?node_bytes ?lock "fastfair"

let fastlog () = of_registry ~label:"fast+log" "fastfair-logged"

let leaflock ?lock () = of_registry ~label:"ff+leaflock" ?lock "fastfair-leaflock"

let wbtree ?node_bytes () = of_registry ~label:"wb+tree" ?node_bytes "wbtree"

let fptree ?leaf_bytes ?lock () =
  of_registry ~label:"fp-tree" ?node_bytes:leaf_bytes ?lock "fptree"

let wort () = of_registry "wort"
let skiplist ?lock () = of_registry ?lock "skiplist"
let blink ?lock () = of_registry ~label:"b-link" ?lock "blink"

(* Search-mode (linear vs binary FAST) is a node-level ablation knob of
   the fastfair library, not an index-level capability; Figure 3 and
   ablation (4) build it directly. *)
let fastfair_mode ~node_bytes ~mode a = Tree.ops (Tree.create ~node_bytes ~mode a)

(* ------------------------------------------------------------------ *)
(* Measurement helpers                                                 *)
(* ------------------------------------------------------------------ *)

let us_per_op a n = float_of_int (Stats.total_ns (Arena.total_stats a)) /. float_of_int n /. 1000.

let kops a n =
  let ns = Stats.total_ns (Arena.total_stats a) in
  if ns = 0 then 0. else float_of_int n /. (float_of_int ns /. 1e9) /. 1000.

(* ------------------------------------------------------------------ *)
(* Figure 3: linear vs binary search across node sizes                 *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  print_endline "== Figure 3: linear vs binary search, by node size (us/op) ==";
  print_endline "   (1M random keys in the paper; scaled here; PM = DRAM latency)";
  let n = sc 100_000 in
  let tbl =
    Table.create
      [ "node"; "lin-insert"; "bin-insert"; "lin-search"; "bin-search" ]
  in
  List.iter
    (fun node_bytes ->
      let cell mode phase =
        let a = arena (n * 48) in
        let rng = Prng.create 1 in
        let keys = W.distinct_uniform rng ~n ~space:(8 * n) in
        let t = fastfair_mode ~node_bytes ~mode a in
        (match phase with
        | `Insert ->
            Arena.reset_stats a;
            W.load_keys t keys
        | `Search ->
            W.load_keys t keys;
            Arena.reset_stats a;
            Array.iter (fun k -> ignore (t.Intf.search k)) keys);
        us_per_op a n
      in
      Table.add_floats tbl
        (string_of_int node_bytes ^ "B")
        [
          cell Ff_fastfair.Node.Linear `Insert;
          cell Ff_fastfair.Node.Binary `Insert;
          cell Ff_fastfair.Node.Linear `Search;
          cell Ff_fastfair.Node.Binary `Search;
        ])
    [ 256; 512; 1024; 2048; 4096 ];
  Table.print tbl

(* ------------------------------------------------------------------ *)
(* Figure 4: range query speedup over SkipList                         *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  print_endline "== Figure 4: range-query speedup over SkipList (read latency 300ns) ==";
  print_endline "   (10M keys / 1KB nodes in the paper; scaled here)";
  let n = sc 200_000 in
  let space = 8 * n in
  let queries = 20 in
  let config = Config.pm ~read_ns:300 ~write_ns:300 () in
  let makers =
    [
      fastfair ~node_bytes:1024 ();
      fptree ();
      wbtree ();
      wort ();
      skiplist ();
    ]
  in
  let ratios = [ 0.1; 0.5; 1.0; 3.0; 5.0 ] in
  (* time per (maker, ratio) *)
  let times =
    List.map
      (fun m ->
        let a = arena ~config (n * 56) in
        let t = m.build a in
        let rng = Prng.create 2 in
        let keys = W.distinct_uniform rng ~n ~space in
        W.load_keys t keys;
        let per_ratio =
          List.map
            (fun r ->
              let width = int_of_float (float_of_int space *. r /. 100.) in
              Arena.reset_stats a;
              let qrng = Prng.create 3 in
              for _ = 1 to queries do
                let lo = 1 + Prng.int qrng (space - width) in
                t.Intf.range lo (lo + width) (fun _ _ -> ())
              done;
              us_per_op a queries)
            ratios
        in
        (m.label, per_ratio))
      makers
  in
  let skip_times = List.assoc "skiplist" times in
  let tbl = Table.create ("ratio%" :: List.map (fun (l, _) -> l) times) in
  List.iteri
    (fun i r ->
      Table.add_floats tbl
        (Printf.sprintf "%.1f" r)
        (List.map (fun (_, ts) -> List.nth skip_times i /. List.nth ts i) times))
    ratios;
  Table.print tbl;
  print_endline "   (values are speedups: higher = faster than SkipList)"

(* ------------------------------------------------------------------ *)
(* Figure 5: latency sweeps                                            *)
(* ------------------------------------------------------------------ *)

let insert_makers () =
  [ fastfair (); fastlog (); fptree (); wbtree (); wort (); skiplist () ]

let search_makers () =
  [ fastfair (); fptree (); wbtree (); wort (); skiplist () ]

let fig5a () =
  print_endline "== Figure 5(a): insertion-time breakdown (us/op) by PM latency ==";
  let n = sc 100_000 in
  let space = 8 * n in
  List.iter
    (fun lat ->
      Printf.printf "-- read/write latency %d ns --\n" lat;
      let config = Config.pm ~read_ns:lat ~write_ns:lat () in
      let tbl = Table.create [ "index"; "clflush"; "search"; "update"; "total" ] in
      List.iter
        (fun m ->
          let a = arena ~config (n * 56) in
          let t = m.build a in
          let rng = Prng.create 4 in
          let keys = W.distinct_uniform rng ~n ~space in
          let half = n / 2 in
          Array.iteri (fun i k -> if i < half then t.Intf.insert k (W.value_of k)) keys;
          Arena.reset_stats a;
          Array.iteri (fun i k -> if i >= half then t.Intf.insert k (W.value_of k)) keys;
          let s = Arena.total_stats a in
          let ops = float_of_int (n - half) *. 1000. in
          let flush = float_of_int (s.Stats.flush_ns + s.Stats.fence_ns) /. ops in
          let search = float_of_int s.Stats.search_ns /. ops in
          let update = float_of_int (s.Stats.update_ns + s.Stats.other_ns) /. ops in
          Table.add_floats tbl m.label [ flush; search; update; flush +. search +. update ])
        (insert_makers ());
      Table.print tbl)
    [ 120; 300; 600; 900 ]

let latency_sweep ~title ~latencies ~config_of ~makers ~run =
  print_endline title;
  let tbl = Table.create ("ns" :: List.map (fun m -> m.label) (makers ())) in
  List.iter
    (fun lat ->
      let row =
        List.map
          (fun m ->
            let config = config_of lat in
            run config m)
          (makers ())
      in
      Table.add_floats tbl (string_of_int lat) row)
    latencies;
  Table.print tbl

let fig5b () =
  let n = sc 100_000 in
  let space = 8 * n in
  latency_sweep
    ~title:"== Figure 5(b): search time (us/op) vs PM read latency =="
    ~latencies:[ 120; 300; 600; 900 ]
    ~config_of:(fun lat -> Config.pm ~read_ns:lat ~write_ns:300 ())
    ~makers:search_makers
    ~run:(fun config m ->
      let a = arena ~config (n * 56) in
      let t = m.build a in
      let rng = Prng.create 5 in
      let keys = W.distinct_uniform rng ~n ~space in
      W.load_keys t keys;
      let probes = min n (sc 50_000) in
      Arena.reset_stats a;
      for i = 0 to probes - 1 do
        ignore (t.Intf.search keys.(i * (n / probes)))
      done;
      us_per_op a probes)

let fig5c () =
  let n = sc 100_000 in
  let space = 8 * n in
  latency_sweep
    ~title:"== Figure 5(c): insert time (us/op) vs PM write latency (TSO) =="
    ~latencies:[ 120; 300; 600; 900 ]
    ~config_of:(fun lat -> Config.pm ~read_ns:120 ~write_ns:lat ())
    ~makers:insert_makers
    ~run:(fun config m ->
      let a = arena ~config (n * 56) in
      let t = m.build a in
      let rng = Prng.create 6 in
      let keys = W.distinct_uniform rng ~n ~space in
      let half = n / 2 in
      Array.iteri (fun i k -> if i < half then t.Intf.insert k (W.value_of k)) keys;
      Arena.reset_stats a;
      Array.iteri (fun i k -> if i >= half then t.Intf.insert k (W.value_of k)) keys;
      us_per_op a (n - half))

let fig5d () =
  let n = sc 100_000 in
  let space = 8 * n in
  let makers () =
    [
      fastfair ();
      fptree ~leaf_bytes:256 ();
      wbtree ~node_bytes:256 ();
      wort ();
      skiplist ();
    ]
  in
  latency_sweep
    ~title:
      "== Figure 5(d): insert time (us/op) vs write latency, non-TSO (ARM dmb; \
       256B wB+/FP nodes) =="
    ~latencies:[ 100; 700; 1000; 1300; 1600 ]
    ~config_of:(fun lat -> { (Config.arm ~read_ns:100 ~write_ns:lat ()) with max_threads = 4 })
    ~makers
    ~run:(fun config m ->
      let a = arena ~config (n * 56) in
      let t = m.build a in
      let rng = Prng.create 7 in
      let keys = W.distinct_uniform rng ~n ~space in
      let half = n / 2 in
      Array.iteri (fun i k -> if i < half then t.Intf.insert k (W.value_of k)) keys;
      Arena.reset_stats a;
      Array.iteri (fun i k -> if i >= half then t.Intf.insert k (W.value_of k)) keys;
      us_per_op a (n - half))

(* ------------------------------------------------------------------ *)
(* Figure 6: TPC-C                                                     *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  print_endline "== Figure 6: TPC-C throughput (simulated Kops/sec), latency 300/300 ==";
  let txns = sc 4000 in
  let config = Config.pm ~read_ns:300 ~write_ns:300 () in
  let makers = [ fastfair (); fptree (); wbtree (); wort (); skiplist () ] in
  let mixes = [ ("W1", Tpcc.w1); ("W2", Tpcc.w2); ("W3", Tpcc.w3); ("W4", Tpcc.w4) ] in
  let tbl = Table.create ("mix" :: List.map (fun m -> m.label) makers) in
  List.iter
    (fun (mix_name, mix) ->
      let row =
        List.map
          (fun m ->
            let a = arena ~config (txns * 1600) in
            let idx = m.build a in
            let t = Tpcc.load ~arena:a idx Tpcc.default_config in
            Arena.reset_stats a;
            Tpcc.run t mix ~txns;
            kops a txns)
          makers
      in
      Table.add_floats tbl mix_name row)
    mixes;
  Table.print tbl

(* ------------------------------------------------------------------ *)
(* Figure 7: multithreaded scalability (simulated 16-core machine)     *)
(* ------------------------------------------------------------------ *)

type sim_ix = {
  sl : string;
  sbuild : Arena.t -> Intf.ops;
  searchable : bool; (* appears in (a) and (c) *)
}

let fig7_makers () =
  [
    { sl = "fast+fair"; sbuild = (fastfair ~lock:Locks.Sim ()).build; searchable = true };
    { sl = "ff+leaflock"; sbuild = (leaflock ~lock:Locks.Sim ()).build; searchable = true };
    { sl = "fp-tree"; sbuild = (fptree ~lock:Locks.Sim ()).build; searchable = true };
    { sl = "b-link"; sbuild = (blink ~lock:Locks.Sim ()).build; searchable = true };
    { sl = "skiplist"; sbuild = (skiplist ~lock:Locks.Sim ()).build; searchable = true };
  ]

let fig7_run ~workload ~threads ~preload ~total_ops ix =
  let config = { Config.default with Config.write_latency_ns = 300; max_threads = 64 } in
  let a = arena ~config ((preload + total_ops) * 60) in
  let t = ix.sbuild a in
  let rng = Prng.create 11 in
  let keys = W.distinct_uniform rng ~n:(preload + total_ops) ~space:(16 * (preload + total_ops)) in
  (* Preload inside a single simulated thread (Sim locks). *)
  ignore
    (Mcsim.run ~cores:16 ~arena:a
       [| (fun _ -> Array.iteri (fun i k -> if i < preload then t.Intf.insert k (W.value_of k)) keys) |]);
  (* contention_ns ~ the time a std::mutex critical section owns the
     lock's cache line; quantum keeps interleaving reasonably fine. *)
  let per = total_ops / threads in
  let body tid =
    let r = Prng.create (100 + tid) in
    match workload with
    | `Search ->
        for _ = 1 to per do
          ignore (t.Intf.search keys.(Prng.int r preload))
        done
    | `Insert ->
        let base = preload + (tid * per) in
        for i = 0 to per - 1 do
          let k = keys.(base + i) in
          t.Intf.insert k (W.value_of k)
        done
    | `Mixed ->
        (* per thread: groups of 16 searches, 4 inserts, 1 delete *)
        let base = preload + (tid * per) in
        let inserted = ref 0 in
        let g = ref 0 in
        while (16 + 4 + 1) * !g < per do
          for _ = 1 to 16 do
            ignore (t.Intf.search keys.(Prng.int r preload))
          done;
          for _ = 1 to 4 do
            if base + !inserted < preload + total_ops then begin
              let k = keys.(base + !inserted) in
              t.Intf.insert k (W.value_of k);
              incr inserted
            end
          done;
          ignore (t.Intf.delete keys.(Prng.int r preload));
          incr g
        done
  in
  let outcome =
    Mcsim.run ~cores:16 ~quantum_ns:150 ~lock_ns:20 ~contention_ns:100
      ~policy:(sched ()) ~arena:a
      (Array.init threads (fun _ -> body))
  in
  let ops = per * threads in
  if outcome.Mcsim.makespan_ns = 0 then 0.
  else float_of_int ops /. (float_of_int outcome.Mcsim.makespan_ns /. 1e9) /. 1000.

let fig7 () =
  print_endline "== Figure 7: scalability on 16 simulated cores (Kops/sec) ==";
  let preload = sc 30_000 in
  let total_ops = sc 16_000 in
  let threads_list = [ 1; 2; 4; 8; 16; 32 ] in
  List.iter
    (fun (name, workload, filter) ->
      Printf.printf "-- %s --\n" name;
      let makers = List.filter filter (fig7_makers ()) in
      let tbl = Table.create ("threads" :: List.map (fun m -> m.sl) makers) in
      List.iter
        (fun threads ->
          let row =
            List.map (fun ix -> fig7_run ~workload ~threads ~preload ~total_ops ix) makers
          in
          Table.add_floats tbl (string_of_int threads) row)
        threads_list;
      Table.print tbl)
    [
      ("(a) search", `Search, fun ix -> ix.searchable);
      ("(b) insert", `Insert, fun ix -> ix.sl <> "ff+leaflock");
      ("(c) mixed 16:4:1", `Mixed, fun ix -> ix.searchable);
    ]

(* ------------------------------------------------------------------ *)
(* Section 5.2 text: clflush counts                                    *)
(* ------------------------------------------------------------------ *)

let stats_target () =
  print_endline "== clflush statistics (paper Section 5.2/5.4 text) ==";
  let n = sc 50_000 in
  let space = 8 * n in
  let tbl = Table.create [ "index"; "flush/insert"; "fence/insert" ] in
  List.iter
    (fun m ->
      let a = arena (n * 56) in
      let t = m.build a in
      let rng = Prng.create 8 in
      let keys = W.distinct_uniform rng ~n ~space in
      let half = n / 2 in
      Array.iteri (fun i k -> if i < half then t.Intf.insert k (W.value_of k)) keys;
      Arena.reset_stats a;
      Array.iteri (fun i k -> if i >= half then t.Intf.insert k (W.value_of k)) keys;
      let s = Arena.total_stats a in
      let ops = float_of_int (n - half) in
      Table.add_floats tbl m.label
        [ float_of_int s.Stats.flushes /. ops; float_of_int s.Stats.fences /. ops ])
    (insert_makers ());
  Table.print tbl;
  print_endline
    "   paper: FAST+FAIR ~4.2 flushes/insert at 512B nodes (worst case 8);\n\
    \   wB+-tree ~1.7x FAST+FAIR; FP-tree 4.8 vs 4.2"

(* ------------------------------------------------------------------ *)
(* Section 5.7: recoverability                                         *)
(* ------------------------------------------------------------------ *)

let crash_target () =
  print_endline "== Recoverability (Section 5.7): crash-point sweep + recovery cost ==";
  let n = sc 5_000 in
  let a0 = arena (n * 80) in
  let t0 = Tree.create ~node_bytes:256 a0 in
  let rng = Prng.create 9 in
  let keys = W.distinct_uniform rng ~n ~space:(8 * n) in
  Array.iter (fun k -> Tree.insert t0 ~key:k ~value:(W.value_of k)) keys;
  Arena.drain a0;
  (* Crash a batch of inserts and deletes (with splits) at sampled
     store points; count tolerance. *)
  let batch tc =
    for i = 1 to 20 do
      Tree.insert tc ~key:((16 * n) + i) ~value:(W.value_of ((16 * n) + i))
    done;
    for i = 0 to 9 do
      ignore (Tree.delete tc keys.(i))
    done
  in
  let probe =
    let c = Arena.clone a0 in
    let tc = Tree.open_existing ~node_bytes:256 c in
    let b = Arena.store_count c in
    batch tc;
    Arena.store_count c - b
  in
  let points = ref 0 and tolerated = ref 0 and recovered = ref 0 in
  let step = max 1 (probe / 200) in
  let k = ref 0 in
  while !k <= probe do
    incr points;
    let c = Arena.clone a0 in
    let tc = Tree.open_existing ~node_bytes:256 c in
    Arena.set_crash_plan c (Arena.After_stores (Arena.store_count c + !k));
    (try batch tc with Arena.Crashed -> ());
    Arena.power_fail c (Storelog.Random_eviction (Prng.create !k));
    let tc = Tree.open_existing ~node_bytes:256 c in
    (* keys 10.. were never deleted; they must stay readable *)
    let pre_ok = ref true in
    Array.iteri
      (fun i key ->
        if i >= 10 && Tree.search tc key <> Some (W.value_of key) then pre_ok := false)
      keys;
    if !pre_ok then incr tolerated;
    Tree.recover tc;
    if Ff_fastfair.Invariant.check tc = [] then incr recovered;
    k := !k + step
  done;
  Printf.printf
    "crash points: %d | readable pre-recovery: %d | sound post-recovery: %d\n"
    !points !tolerated !recovered;
  (* Recovery-cost comparison: FAST+FAIR reattaches instantly; FP-tree
     rebuilds its DRAM inner levels. *)
  let nrec = sc 50_000 in
  let ff_ns =
    let a = arena (nrec * 56) in
    let t = Tree.create a in
    let keys = W.distinct_uniform (Prng.create 10) ~n:nrec ~space:(8 * nrec) in
    Array.iter (fun k -> Tree.insert t ~key:k ~value:(W.value_of k)) keys;
    Arena.power_fail a Storelog.Keep_all;
    let t = Tree.open_existing a in
    Arena.reset_stats a;
    Tree.recover ~lazy_:true t;
    Stats.total_ns (Arena.total_stats a)
  in
  let fp_ns =
    let a = arena (nrec * 56) in
    let t = Ff_fptree.Fptree.create a in
    let keys = W.distinct_uniform (Prng.create 10) ~n:nrec ~space:(8 * nrec) in
    Array.iter (fun k -> Ff_fptree.Fptree.insert t ~key:k ~value:(W.value_of k)) keys;
    Arena.power_fail a Storelog.Keep_all;
    let t = Ff_fptree.Fptree.open_existing a in
    Arena.reset_stats a;
    Ff_fptree.Fptree.recover t;
    Stats.total_ns (Arena.total_stats a)
  in
  Printf.printf
    "recovery cost at %d keys: FAST+FAIR (lazy) %d ns | FP-tree inner rebuild %d ns\n"
    nrec ff_ns fp_ns

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks (wall-clock)                               *)
(* ------------------------------------------------------------------ *)

let micro () =
  print_endline "== Bechamel wall-clock microbenchmarks (host time, ns/op) ==";
  let open Bechamel in
  let open Toolkit in
  let n = 20_000 in
  let mk_loaded maker =
    let a = arena (n * 60) in
    let t = maker.build a in
    let keys = W.distinct_uniform (Prng.create 12) ~n ~space:(8 * n) in
    W.load_keys t keys;
    (t, keys)
  in
  let search_test maker =
    let t, keys = mk_loaded maker in
    let i = ref 0 in
    Test.make ~name:(maker.label ^ "-search")
      (Staged.stage (fun () ->
           i := (!i + 1) mod n;
           ignore (t.Intf.search keys.(!i))))
  in
  let insert_test maker =
    let t, _ = mk_loaded maker in
    let i = ref (16 * n) in
    Test.make ~name:(maker.label ^ "-insert")
      (Staged.stage (fun () ->
           incr i;
           t.Intf.insert !i (W.value_of !i)))
  in
  let range_test maker =
    let t, _ = mk_loaded maker in
    let i = ref 0 in
    Test.make ~name:(maker.label ^ "-range100")
      (Staged.stage (fun () ->
           i := (!i + 997) mod (7 * n);
           let c = ref 0 in
           t.Intf.range !i (!i + 800) (fun _ _ -> incr c)))
  in
  let tests =
    Test.make_grouped ~name:"ops"
      [
        search_test (fastfair ());
        insert_test (fastfair ());
        range_test (fastfair ());
        search_test (wbtree ());
        search_test (fptree ());
        search_test (wort ());
        search_test (skiplist ());
      ]
  in
  let benchmark () =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 10) () in
    let raw = Benchmark.all cfg instances tests in
    Analyze.all ols Instance.monotonic_clock raw
  in
  let results = benchmark () in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> Printf.printf "%-24s %10.1f ns/op\n" name est
      | Some [] | None -> Printf.printf "%-24s (no estimate)\n" name)
    results


(* ------------------------------------------------------------------ *)
(* Ablations: design choices isolated                                  *)
(* ------------------------------------------------------------------ *)

let ablation () =
  print_endline "== Ablations ==";
  let n = sc 50_000 in
  let space = 8 * n in

  (* 1. Store ordering: FAST vs a naive unordered shift, crash states. *)
  print_endline "-- (1) FAST store ordering vs naive shift: crash-state corruption --";
  let count_violations insert_fn =
    let module L = Ff_fastfair.Layout in
    let module Node = Ff_fastfair.Node in
    let l = L.make ~node_bytes:256 in
    let a0 = Arena.create ~words:(1 lsl 14) () in
    let node = Arena.alloc a0 l.L.node_words in
    Node.init a0 l node ~level:0 ~leftmost:0 ~low:0;
    let keys = [ 10; 20; 30; 40; 50; 60; 70 ] in
    List.iter
      (fun k -> Node.insert_nonfull a0 l node ~key:k ~value:(W.value_of k) ~mode:Node.Linear)
      keys;
    Arena.drain a0;
    let total =
      let c = Arena.clone a0 in
      let b = Arena.store_count c in
      insert_fn c l node;
      Arena.store_count c - b
    in
    let bad = ref 0 and states = ref 0 in
    for k = 0 to total do
      incr states;
      let c = Arena.clone a0 in
      Arena.set_crash_plan c (Arena.After_stores (Arena.store_count c + k));
      (try insert_fn c l node with Arena.Crashed -> ());
      Arena.power_fail c Storelog.Keep_all;
      if
        not
          (List.for_all
             (fun key -> Node.search c l node ~mode:Node.Linear key = Some (W.value_of key))
             keys)
      then incr bad
    done;
    (!bad, !states)
  in
  let fast_bad, states =
    count_violations (fun a l n ->
        Ff_fastfair.Node.insert_nonfull a l n ~key:25 ~value:(W.value_of 25)
          ~mode:Ff_fastfair.Node.Linear)
  in
  let naive_bad, _ =
    count_violations (fun a l n ->
        Ff_fastfair.Node.insert_nonfull_unordered a l n ~key:25 ~value:(W.value_of 25))
  in
  Printf.printf "FAST ordering : %d corrupted of %d crash states\n" fast_bad states;
  Printf.printf "naive shift   : %d corrupted of %d crash states\n\n" naive_bad states;

  (* 2. Bulk load vs incremental insertion. *)
  print_endline "-- (2) bulk load vs incremental insertion --";
  let rng = Prng.create 21 in
  let keys = W.distinct_uniform rng ~n ~space in
  let pairs = Array.map (fun k -> (k, W.value_of k)) keys in
  let a1 = arena (n * 56) in
  Arena.reset_stats a1;
  let t1 = Tree.create a1 in
  Array.iter (fun k -> Tree.insert t1 ~key:k ~value:(W.value_of k)) keys;
  let s1 = Arena.total_stats a1 in
  let a2 = arena (n * 56) in
  Arena.reset_stats a2;
  let _t2 = Ff_fastfair.Bulk.load a2 pairs in
  let s2 = Arena.total_stats a2 in
  Printf.printf "incremental: %8d flushes, %7.2f ms simulated\n" s1.Stats.flushes
    (float_of_int (Stats.total_ns s1) /. 1e6);
  Printf.printf "bulk load  : %8d flushes, %7.2f ms simulated\n\n" s2.Stats.flushes
    (float_of_int (Stats.total_ns s2) /. 1e6);

  (* 3. Compaction payoff for range scans after mass deletes. *)
  print_endline "-- (3) compaction after mass deletes: range-scan cost --";
  let a3 = arena (n * 56) in
  let t3 = Tree.create ~node_bytes:256 a3 in
  for k = 1 to n do
    Tree.insert t3 ~key:k ~value:(W.value_of k)
  done;
  for k = 1 to n do
    if k mod 8 <> 0 then ignore (Tree.delete t3 k)
  done;
  let scan () =
    Arena.reset_stats a3;
    let c = ref 0 in
    Tree.range t3 ~lo:1 ~hi:n (fun _ _ -> incr c);
    (float_of_int (Stats.total_ns (Arena.total_stats a3)) /. 1e6, !c)
  in
  let before_ms, cnt = scan () in
  let freed = Ff_fastfair.Compact.compact t3 in
  let after_ms, cnt2 = scan () in
  Printf.printf "before compact: %7.2f ms for %d keys\n" before_ms cnt;
  Printf.printf "after  compact: %7.2f ms for %d keys (%d nodes freed)\n\n" after_ms cnt2
    freed;

  (* 4. MLP/prefetch discount: why linear search beats binary. *)
  print_endline "-- (4) sequential-prefetch discount vs linear/binary search (1KB nodes) --";
  List.iter
    (fun mlp ->
      (* small line cache so the tree does not fit and misses dominate *)
      let config =
        { (Config.pm ~read_ns:300 ~write_ns:300 ()) with
          Config.mlp_factor = mlp; cache_lines = 512 }
      in
      let time mode =
        let a = arena ~config (n * 56) in
        let t = fastfair_mode ~node_bytes:1024 ~mode a in
        let rng = Prng.create 22 in
        let ks = W.distinct_uniform rng ~n ~space in
        W.load_keys t ks;
        Arena.reset_stats a;
        Array.iter (fun k -> ignore (t.Intf.search k)) ks;
        us_per_op a n
      in
      Printf.printf "mlp_factor %d: linear %.3f us, binary %.3f us\n" mlp
        (time Ff_fastfair.Node.Linear) (time Ff_fastfair.Node.Binary))
    [ 1; 2; 4; 8 ];
  print_endline ""


(* ------------------------------------------------------------------ *)
(* Extension: YCSB-style skewed workloads                              *)
(* ------------------------------------------------------------------ *)

let ycsb () =
  print_endline "== Extension: YCSB-style Zipfian workloads (us/op, latency 300/300) ==";
  let n = sc 100_000 in
  let ops = sc 50_000 in
  let space = 4 * n in
  let config = Config.pm ~read_ns:300 ~write_ns:300 () in
  let makers () = [ fastfair (); fptree (); wbtree (); wort (); skiplist () ] in
  let workloads =
    [
      ("A 50r/50u", fun rng t keys ->
          for _ = 1 to ops do
            let k = keys.(Prng.int rng n) in
            if Prng.bool rng then ignore (t.Intf.search k)
            else t.Intf.insert k (W.value_of k)
          done);
      ("B 95r/5u", fun rng t keys ->
          for _ = 1 to ops do
            let k = keys.(Prng.int rng n) in
            if Prng.int rng 100 < 95 then ignore (t.Intf.search k)
            else t.Intf.insert k (W.value_of k)
          done);
      ("C 100r", fun rng t keys ->
          for _ = 1 to ops do
            ignore (t.Intf.search keys.(Prng.int rng n))
          done);
      ("E scans", fun rng t keys ->
          for _ = 1 to ops / 50 do
            let k = keys.(Prng.int rng n) in
            let c = ref 0 in
            t.Intf.range k (k + (space / n * 100)) (fun _ _ -> incr c)
          done);
    ]
  in
  let tbl = Table.create ("workload" :: List.map (fun m -> m.label) (makers ())) in
  List.iter
    (fun (wname, run_w) ->
      let row =
        List.map
          (fun m ->
            let a = arena ~config (n * 56) in
            let t = m.build a in
            let rng = Prng.create 31 in
            let keys = W.distinct_uniform rng ~n ~space in
            W.load_keys t keys;
            (* zipfian access pattern over loaded keys *)
            let z = Ff_util.Zipf.create ~n ~theta:!zipf_theta in
            let zrng = Prng.create 32 in
            let hot = Array.init n (fun _ -> keys.(Ff_util.Zipf.sample z zrng)) in
            Arena.reset_stats a;
            run_w (Prng.create 33) t hot;
            let opcount = if wname = "E scans" then ops / 50 else ops in
            us_per_op a opcount)
          (makers ())
      in
      Table.add_floats tbl wname row)
    workloads;
  Table.print tbl;
  Printf.printf "   (Zipfian theta = %.2f over the loaded keys)\n" !zipf_theta


(* ------------------------------------------------------------------ *)
(* Extension: per-operation latency distributions                      *)
(* ------------------------------------------------------------------ *)

let latencies () =
  print_endline "== Extension: per-op simulated latency distribution (ns), latency 300/300 ==";
  let n = sc 100_000 in
  let probes = sc 20_000 in
  let space = 8 * n in
  let config = Config.pm ~read_ns:300 ~write_ns:300 () in
  let tbl =
    Table.create
      [ "index"; "search p50"; "search p99"; "search max"; "insert p50"; "insert p99" ]
  in
  List.iter
    (fun m ->
      let a = arena ~config (n * 60) in
      let t = m.build a in
      let rng = Prng.create 41 in
      let keys = W.distinct_uniform rng ~n ~space in
      W.load_keys t keys;
      let h_search = Ff_util.Histogram.create () in
      let h_insert = Ff_util.Histogram.create () in
      let snap () = Stats.total_ns (Arena.total_stats a) in
      for i = 0 to probes - 1 do
        let before = snap () in
        ignore (t.Intf.search keys.(i * (n / probes)));
        Ff_util.Histogram.add h_search (snap () - before)
      done;
      for i = 0 to (probes / 4) - 1 do
        let k = space + (2 * i) + 1 in
        let before = snap () in
        t.Intf.insert k (W.value_of k);
        Ff_util.Histogram.add h_insert (snap () - before)
      done;
      Table.add_row tbl
        [
          m.label;
          string_of_int (Ff_util.Histogram.percentile h_search 50.);
          string_of_int (Ff_util.Histogram.percentile h_search 99.);
          string_of_int (Ff_util.Histogram.max_sample h_search);
          string_of_int (Ff_util.Histogram.percentile h_insert 50.);
          string_of_int (Ff_util.Histogram.percentile h_insert 99.);
        ])
    [ fastfair (); fptree (); wbtree (); wort (); skiplist () ];
  Table.print tbl;
  print_endline
    "   (tails: FAIR splits / skiplist tower rebuilds / wB+ logged splits show in p99+)"

(* ------------------------------------------------------------------ *)
(* Sharded serving layer (--shards N,M,... ; target: sharded)          *)
(* ------------------------------------------------------------------ *)

let shard_counts : int list ref = ref []
let base_seed = ref 42

type sharded_row = {
  sh_shards : int;
  sh_group : bool;
  sh_ops : int;
  sh_kops : float; (* ops over the slowest shard's simulated time *)
  sh_fences_per_op : float;
  sh_flushes_per_op : float;
  sh_imb_max : int;
  sh_imb_mean : float;
  sh_p50 : int;
  sh_p99 : int;
}

let sharded_run ~shards ~group =
  let n = sc 40_000 in
  let config = Config.pm ~read_ns:300 ~write_ns:300 () in
  let words = max (1 lsl 16) (n * 64 / shards) in
  let t =
    Shard.create ~pm_config:config ~words ~batch_cap:64 ~group
      ~inner:"fastfair" ~shards ()
  in
  (* One deterministic trace per shard stream, seeded from the base
     seed and the shard id, interleaved round-robin into a single
     submission stream (the scheduler re-partitions by key anyway). *)
  let per = n / shards in
  let mix =
    {
      W.insert_pct = 60;
      search_pct = 30;
      delete_pct = 5;
      range_pct = 5;
      range_len = 16;
      read_latest = false;
      scan_len_max = 0;
    }
  in
  let traces =
    Array.init shards (fun s ->
        W.mixed_trace
          (Prng.create (W.shard_seed ~base:!base_seed ~shard:s))
          ~n:per ~space:(8 * n) mix)
  in
  let ops =
    Array.init (per * shards) (fun i -> traces.(i mod shards).(i / shards))
  in
  ignore (Shard.submit t ops);
  let arenas = Shard.arenas t in
  let wall =
    Array.fold_left
      (fun acc a -> max acc (Stats.total_ns (Arena.total_stats a)))
      0 arenas
  in
  let sum f = Array.fold_left (fun acc a -> acc + f (Arena.total_stats a)) 0 arenas in
  let fences = sum (fun s -> s.Stats.fences) in
  let flushes = sum (fun s -> s.Stats.flushes) in
  let imb_max, imb_mean = Shard.imbalance t in
  let lat = Shard.merged_latency t in
  let nops = Array.length ops in
  {
    sh_shards = shards;
    sh_group = group;
    sh_ops = nops;
    sh_kops =
      (if wall = 0 then 0.
       else float_of_int nops /. (float_of_int wall /. 1e9) /. 1000.);
    sh_fences_per_op = float_of_int fences /. float_of_int nops;
    sh_flushes_per_op = float_of_int flushes /. float_of_int nops;
    sh_imb_max = imb_max;
    sh_imb_mean = imb_mean;
    sh_p50 = Histogram.percentile lat 50.;
    sh_p99 = Histogram.percentile lat 99.;
  }

let sharded_rows () =
  let counts = match !shard_counts with [] -> [ 1; 4; 8 ] | l -> l in
  List.concat_map
    (fun shards ->
      [ sharded_run ~shards ~group:false; sharded_run ~shards ~group:true ])
    counts

(* ------------------------------------------------------------------ *)
(* Scrub cost: what a post-crash scrub pass adds to recovery time      *)
(* ------------------------------------------------------------------ *)

module Scrub = Ff_scrub.Scrub

type scrub_row = {
  sc_index : string;
  sc_keys : int;
  sc_scrub_ns : int;
  sc_ns_per_key : float;
  sc_leaked : int;
  sc_reclaimed : int;
  sc_repaired : int;
  sc_quarantined : int;
}

(* One deterministic scenario per scrubbable index: load, crash an
   insert batch mid-split (so a node leaks), poison two lines, then
   time the full scrub-and-recover pass in simulated ns. *)
let scrub_run_one name =
  let d = Registry.find_exn name in
  if not (Scrub.scrubbable d) then None
  else begin
    let n = sc 20_000 in
    let config = Descriptor.default_config in
    let a = arena ~config:(Config.pm ~read_ns:300 ~write_ns:300 ()) (n * 64) in
    let t = d.Descriptor.build config a in
    let rng = Prng.create 71 in
    let keys = W.distinct_uniform rng ~n ~space:(8 * n) in
    W.load_keys t keys;
    t.Intf.close ();
    Arena.drain a;
    let t = d.Descriptor.open_existing config a in
    Arena.set_crash_plan a (Arena.After_stores (Arena.store_count a + 40));
    (try
       for i = 1 to 64 do
         let k = (8 * n) + i in
         t.Intf.insert k (W.value_of k)
       done
     with Arena.Crashed -> ());
    Arena.set_crash_plan a Arena.Never;
    Arena.set_fault_plan a
      (Some { Arena.fault_seed = 71; poison_lines = 2; flip_words = 0; stuck_words = 0 });
    Arena.power_fail a (Ff_workload.Crash_harness.default_mode 40);
    let r =
      Scrub.run ~config d a ~recover:(fun () ->
          let t = d.Descriptor.open_existing config a in
          t.Intf.recover ())
    in
    Some
      {
        sc_index = name;
        sc_keys = n;
        sc_scrub_ns = r.Scrub.duration_ns;
        sc_ns_per_key = float_of_int r.Scrub.duration_ns /. float_of_int n;
        sc_leaked = r.Scrub.leaked_words;
        sc_reclaimed = r.Scrub.reclaimed_words;
        sc_repaired = List.length r.Scrub.repaired_lines;
        sc_quarantined = List.length r.Scrub.quarantined_lines;
      }
  end

let scrub_rows () =
  List.filter_map scrub_run_one
    [ "fastfair"; "fastfair-logged"; "fastfair-leaflock"; "sharded-fastfair" ]

let scrub_target () =
  print_endline
    "== scrub cost: post-crash leak scan, media repair and reclamation ==";
  print_endline
    "   (crash mid-split over a preloaded tree, 2 poisoned lines, seed 71)";
  Printf.printf "%18s %9s %11s %9s %9s %10s %9s %12s\n" "index" "keys"
    "scrub(us)" "ns/key" "leaked" "reclaimed" "repaired" "quarantined";
  List.iter
    (fun r ->
      Printf.printf "%18s %9d %11.1f %9.2f %9d %10d %9d %12d\n" r.sc_index
        r.sc_keys
        (float_of_int r.sc_scrub_ns /. 1000.)
        r.sc_ns_per_key r.sc_leaked r.sc_reclaimed r.sc_repaired r.sc_quarantined)
    (scrub_rows ())

let sharded_target () =
  print_endline "== sharded serving layer: scaling and group-flush amortization ==";
  Printf.printf "   (mixed 60:30:5:5 workload, hash partition, batch_cap=64, seed %d)\n"
    !base_seed;
  Printf.printf "%8s %6s %10s %11s %12s %14s %9s %9s\n" "shards" "group"
    "kops" "fences/op" "flushes/op" "imbalance" "p50(ns)" "p99(ns)";
  List.iter
    (fun r ->
      Printf.printf "%8d %6s %10.1f %11.3f %12.3f %8d/%5.0f %9d %9d\n"
        r.sh_shards
        (if r.sh_group then "on" else "off")
        r.sh_kops r.sh_fences_per_op r.sh_flushes_per_op r.sh_imb_max
        r.sh_imb_mean r.sh_p50 r.sh_p99)
    (sharded_rows ())

(* ------------------------------------------------------------------ *)
(* Soak: zipfian mix + crash + fault storm + scrub, under SLO watch    *)
(* ------------------------------------------------------------------ *)

module Trace = Ff_trace.Trace
module Obs_ts = Ff_obs.Timeseries
module Slo = Ff_obs.Slo
module Profile = Ff_obs.Profile
module Snapshot = Ff_obs.Snapshot
module Cluster = Ff_cluster.Cluster
module Fabric = Ff_net.Fabric

let slo_flag = ref false
let slo_p99_ns = ref 20_000_000
let slo_out = ref ""
let soak_trace_file = ref ""
let slo_failed = ref false
let soak_retry_limit = ref 3
let soak_backoff_ns = ref 1_000

(* End-to-end latency includes queueing behind up to batch_cap ops, so
   the default bound is generous; --slo-p99-ns 1 injects a breach. *)
let soak_rules () =
  [
    Slo.Latency
      {
        rule = "insert-p99";
        metric = "shard.latency_ns.insert";
        percentile = 99.;
        bound_ns = !slo_p99_ns;
      };
    Slo.Latency
      {
        rule = "search-p99";
        metric = "shard.latency_ns.search";
        percentile = 99.;
        bound_ns = !slo_p99_ns;
      };
    Slo.Burn_rate
      {
        rule = "degraded-budget";
        events = "shard.degraded";
        ops = "shard.batch_ops";
        max_per_1k = 5.;
      };
    (* Replication rules for the chaos phase below.  The multi-window
       burn rate tolerates the deliberate partition spike (the short
       window alone exceeds any sane budget while shard 0 is solo) and
       fires only if unavailability also persists across the long
       horizon — the SRE page-on-sustained-burn shape. *)
    Slo.Burn_rate_multi
      {
        rule = "repl-unavail-burn";
        events = "cluster.unavail";
        ops = "cluster.ops";
        max_per_1k = 250.;
        short_ns = 200_000;
        long_ns = 2_000_000;
      };
    Slo.Latency
      {
        rule = "failover-blackout";
        metric = "cluster.blackout_ns";
        percentile = 99.;
        bound_ns = 5_000_000;
      };
  ]

(* The nightly-style scenario: a zipfian mixed load on a 4-shard
   ensemble, one power failure with scrubbed recovery, one media-fault
   storm that degrades a shard until the next scrub re-admits it — all
   on simulated time, so the whole run (and its Perfetto trace) is
   reproducible from --seed. *)
let soak_scenario () =
  let shards = 4 in
  let n = sc 40_000 in
  let config = Config.pm ~read_ns:300 ~write_ns:300 () in
  let words = max (1 lsl 16) (n * 64 / shards) in
  (* One tracer across all shard arenas; its clock is the slowest
     shard's accumulated simulated time, monotonic because per-arena
     time only grows. *)
  let clock_ref = ref (fun () -> 0) in
  let tr = Trace.create ~capacity:(1 lsl 16) ~clock:(fun () -> !clock_ref ()) () in
  let keys = W.zipfian (Prng.create !base_seed) ~n ~space:(8 * n) ~theta:!zipf_theta in
  let t =
    (* A range partition (not the default hash) so the mid-soak split
       below has a contiguous span to cut; bounds at the workload's
       own quantiles, or the zipfian skew would pile every op onto
       the lowest shard and serialize the batch scheduler. *)
    let bounds =
      let sorted = Array.copy keys in
      Array.sort compare sorted;
      let b = Array.init (shards - 1) (fun i -> sorted.((i + 1) * n / shards)) in
      for i = 1 to Array.length b - 1 do
        if b.(i) <= b.(i - 1) then b.(i) <- b.(i - 1) + 1
      done;
      b
    in
    Shard.create ~pm_config:config ~words ~batch_cap:64 ~group:true ~tracer:tr
      ~partition:(Shard.Partition.range ~bounds)
      ~retry_limit:!soak_retry_limit ~backoff_ns:!soak_backoff_ns
      ~inner:"fastfair" ~shards ()
  in
  let arenas = Shard.arenas t in
  clock_ref :=
    (fun () ->
      Array.fold_left
        (fun acc a -> max acc (Stats.total_ns (Arena.total_stats a)))
        0 arenas);
  Array.iter (fun a -> Trace.attach_arena tr a) arenas;
  let oprng = Prng.create (W.shard_seed ~base:!base_seed ~shard:1) in
  let ops =
    Array.map
      (fun k ->
        let r = Prng.int oprng 100 in
        if r < 60 then W.Insert k
        else if r < 90 then W.Search k
        else if r < 95 then W.Delete k
        else W.Range (k, 8))
      keys
  in
  let mon = Slo.Monitor.create ~window_ns:200_000 ~tracer:tr (soak_rules ()) in
  let ts = Obs_ts.create ~window_ns:200_000 tr in
  Obs_ts.track_counter ts "shard.batch_ops";
  Obs_ts.track_counter ts "shard.degraded";
  Obs_ts.track_histogram ts "shard.latency_ns.insert";
  let chunk = max 1 (Array.length ops / 32) in
  let run_range lo hi =
    let len = hi - lo in
    let off = ref 0 in
    while !off < len do
      let c = min chunk (len - !off) in
      ignore (Shard.submit t (Array.sub ops (lo + !off) c));
      let now = Trace.now tr in
      Slo.Monitor.tick mon ~now;
      Obs_ts.tick ts ~now;
      off := !off + c
    done
  in
  let total = Array.length ops in
  (* Phase 1: steady state. *)
  run_range 0 (total / 2);
  (* Phase 1.5: elastic resharding under watch — the zipfian load
     piles onto the low end of the range partition, so split the
     hottest shard at its median key while the SLO monitor keeps
     scoring.  The new shard joins the tracer and the soak's own
     power failure below then exercises the post-split topology. *)
  let hot =
    let occ = Shard.occupancy t in
    let best = ref 0 in
    Array.iteri (fun i c -> if c > occ.(!best) then best := i) occ;
    !best
  in
  let pivot =
    let ops_h = Shard.instance_ops t hot in
    let count = ref 0 in
    ops_h.Intf.range 1 (8 * n) (fun _ _ -> incr count);
    let seen = ref 0 and p = ref 0 in
    (try
       ops_h.Intf.range 1 (8 * n) (fun k _ ->
           incr seen;
           if !seen >= !count / 2 then begin
             p := k;
             raise Exit
           end)
     with Exit -> ());
    !p
  in
  let dst = Arena.create ~config ~words () in
  let rb = Rebalance.split t ~shard:hot ~pivot ~dst in
  Trace.attach_arena tr dst;
  clock_ref :=
    (fun () ->
      Array.fold_left
        (fun acc a -> max acc (Stats.total_ns (Arena.total_stats a)))
        0 (Shard.arenas t));
  Printf.printf
    "  [mid-soak split: shard %d at pivot %d -> %d shards, %d keys copied, \
     cutover %d ns]\n%!"
    hot pivot (Shard.shards t) rb.Rebalance.r_moved_keys
    rb.Rebalance.r_cutover_ns;
  (* Phase 2: one power failure, scrubbed recovery. *)
  Shard.power_fail t (Ff_workload.Crash_harness.default_mode !base_seed);
  Shard.recover t;
  (* Phase 3: fault storm — poison the last shard's leftmost leaf
     header (a line scrub can repair it) and touch a key that
     descends into it, so that shard deterministically degrades until
     the scrub re-admits it.  The last shard owns the cold high span
     of the range partition; poisoning shard 0 would put the fault on
     the zipfian hot keys themselves and the retry storm would swamp
     the run. *)
  let victim = Shard.shards t - 1 in
  let av = Shard.instance_arena t victim in
  let leftmost_leaf a =
    let module L = Ff_fastfair.Layout in
    let rec go node =
      if Arena.peek a (node + L.off_level) = 0 then node
      else go (Arena.peek a (node + L.off_leftmost))
    in
    go (Arena.root_get a 0)
  in
  Arena.poison_line av (leftmost_leaf av / Arena.words_per_line);
  (try
     for k = 1 to 8 * n do
       if Shard.shard_of_key t k = victim then begin
         ignore (Shard.search t k);
         raise Exit
       end
     done
   with
  | Exit -> ()
  | Shard.Degraded _ -> ());
  run_range (total / 2) (3 * total / 4);
  (* Phase 3.5: replication chaos — a small cluster rides the soak's
     tracer, so its unavailability and blackout land in the same
     metrics registry the SLO monitor scores (the repl-unavail-burn
     and failover-blackout rules above).  The sequence is the failover
     demo's: partition the hot shard's replica pair, heal, kill the
     primary, promote, restart.  The cluster runs on the fabric clock,
     so its elapsed ns is folded into the tracer clock to keep the
     monitor's windows moving. *)
  let soak_clock = !clock_ref in
  let cluster_ns = ref 0 in
  clock_ref := (fun () -> soak_clock () + !cluster_ns);
  let cc =
    {
      Cluster.default with
      Cluster.nodes = 3;
      shards = 2;
      words = 1 lsl 14;
      seed = !base_seed;
    }
  in
  let c = Cluster.create ~tracer:tr cc in
  let cops = max 120 (sc 2_000) in
  let crng = Prng.create (W.shard_seed ~base:!base_seed ~shard:13) in
  let victim_node = ref (-1) in
  for j = 1 to cops do
    if j = cops / 3 then
      Cluster.partition c ~a:(Cluster.primary_of c ~shard:0)
        ~b:(Cluster.backup_of c ~shard:0);
    if j = cops / 2 then begin
      Cluster.heal c;
      let p = Cluster.primary_of c ~shard:0 in
      victim_node := p;
      Cluster.kill_node c p;
      for s = 0 to cc.Cluster.shards - 1 do
        if Cluster.primary_of c ~shard:s = p then
          ignore (Cluster.failover c ~shard:s)
      done
    end;
    (* Restart the victim well before the end: the promoted primaries
       run solo (hence read-only) until their backup resyncs, and the
       burn-rate budget above assumes that window is bounded. *)
    if j = 2 * cops / 3 && !victim_node >= 0 then begin
      Cluster.restart_node c !victim_node;
      victim_node := -1
    end;
    let k = 1 + Prng.int crng 64 in
    (match Prng.int crng 4 with
    | 0 -> ignore (Cluster.get c k)
    | _ -> ignore (Cluster.put c k j));
    cluster_ns := max !cluster_ns (Cluster.now_ns c);
    if j land 15 = 0 then begin
      let now = Trace.now tr in
      Slo.Monitor.tick mon ~now;
      Obs_ts.tick ts ~now
    end
  done;
  if !victim_node >= 0 then Cluster.restart_node c !victim_node;
  for _ = 1 to 3 do
    Cluster.tick c
  done;
  cluster_ns := max !cluster_ns (Cluster.now_ns c);
  let ccs = Cluster.stats c in
  Printf.printf
    "  [replication chaos: %d acks, %d refused, %d failover(s), %d resync(s), \
     blackout %d ns]\n%!"
    ccs.Cluster.s_acks
    (ccs.Cluster.s_read_only + ccs.Cluster.s_unavailable)
    ccs.Cluster.s_failovers ccs.Cluster.s_resyncs ccs.Cluster.s_last_blackout_ns;
  Cluster.close c;
  (* Phase 4: scrub repairs the line and the shard is re-admitted;
     with the heat subsided, the elastic story closes by merging the
     two coldest neighbours back (the split scaled out, the merge
     scales back in), then a tail of clean traffic follows. *)
  Shard.power_fail t Ff_pmem.Storelog.Keep_all;
  Shard.recover t;
  let cold_left =
    let occ = Shard.occupancy t in
    let best = ref 0 in
    for i = 1 to Array.length occ - 2 do
      if occ.(i) + occ.(i + 1) < occ.(!best) + occ.(!best + 1) then best := i
    done;
    !best
  in
  let rbm = Rebalance.merge t ~left:cold_left in
  Printf.printf
    "  [mid-soak merge: shards %d+%d -> %d shards, %d keys copied back]\n%!"
    cold_left (cold_left + 1) (Shard.shards t) rbm.Rebalance.r_moved_keys;
  run_range (3 * total / 4) total;
  let now = Trace.now tr in
  Slo.Monitor.check mon ~now;
  let report = Slo.Monitor.report mon ~now in
  let profile = Profile.of_trace ~ops:total tr in
  let snap =
    (* The chaos cluster's fabric time was folded into the tracer
       clock to keep the SLO windows moving, but the headline kops
       measures the shard soak: charge only the shard arenas' time. *)
    Snapshot.make ~label:"soak" ~scale:!scale ~seed:!base_seed ~ops:total
      ~elapsed_ns:(now - !cluster_ns)
      ~latency:(Shard.merged_latency t)
      ~slo:report ~profile ()
  in
  (t, tr, ts, snap, report)

let soak_target () =
  print_endline
    "== soak: zipfian mix + crash + fault storm + scrub + elastic \
     split/merge on 4 shards ==";
  let t, tr, ts, snap, report = soak_scenario () in
  Snapshot.pp Format.std_formatter snap;
  Format.printf "timeseries: %d samples over %d series@."
    (Obs_ts.samples ts)
    (List.length (Obs_ts.names ts));
  Format.printf "shard health: %s@."
    (String.concat " "
       (Array.to_list
          (Array.map (fun h -> if h then "ok" else "degraded") (Shard.healthy t))));
  if !soak_trace_file <> "" then begin
    Ff_trace.Perfetto.write_file tr !soak_trace_file;
    Printf.printf "[perfetto trace -> %s: %d events]\n%!" !soak_trace_file
      (Trace.event_count tr)
  end;
  if !slo_out <> "" then begin
    let oc = open_out !slo_out in
    output_string oc (Ff_trace.Json.to_string (Slo.report_to_json report));
    output_char oc '\n';
    close_out oc;
    Printf.printf "[slo report -> %s]\n%!" !slo_out
  end;
  if !slo_flag && not (Slo.ok report) then slo_failed := true

(* ------------------------------------------------------------------ *)
(* Rebalance: copy throughput, cutover pause, foreground p99           *)
(* ------------------------------------------------------------------ *)

type rb_row = {
  rb_kind : string;
  rb_prefill : int;
  rb_moved_keys : int;
  rb_moved_bytes : int;
  rb_copy_ns : int;
  rb_cutover_ns : int;
  rb_copy_mb_s : float;
  rb_p99_before : int;
  rb_p99_during : int;
  rb_p99_after : int;
}

let p99_of = function
  | [] -> 0
  | l ->
      let a = Array.of_list (List.sort compare l) in
      a.(min (Array.length a - 1) (Array.length a * 99 / 100))

(* One rebalance under a foreground thread on the multicore simulator.
   Foreground latency is the simulated-clock delta around each op,
   bucketed by protocol phase (the rebalancer flips the bucket as it
   starts and finishes), so the three p99s isolate the background
   copy's interference and the cutover pause from steady state. *)
let rb_row kind =
  let n = sc 4_000 in
  let config = Config.pm ~read_ns:300 ~write_ns:300 () in
  let words = max (1 lsl 20) (n * 96) in
  let prefill = Array.init n (fun i -> (2 * i) + 1) in
  let t, sim_arena, dst, run_rebalance =
    match kind with
    | "split" | "merge" ->
        let a = arena ~config words in
        let bounds = if kind = "merge" then [| n |] else [||] in
        let t =
          Shard.create_composite ~inner:"fastfair"
            ~partition:(Shard.Partition.range ~bounds)
            a
        in
        ( t,
          a,
          None,
          fun () ->
            if kind = "split" then Rebalance.split t ~shard:0 ~pivot:n
            else Rebalance.merge t ~left:0 )
    | "migrate" ->
        let t =
          Shard.create ~pm_config:config ~words ~group:false
            ~inner:"fastfair" ~shards:1 ()
        in
        let src = (Shard.arenas t).(0) in
        let dst = arena ~config words in
        (t, src, Some dst, fun () -> Rebalance.migrate t ~shard:0 ~dst)
    | s -> invalid_arg ("rb_row: unknown kind " ^ s)
  in
  Array.iter (fun k -> Shard.insert t ~key:k ~value:(W.value_of k)) prefill;
  (* Summing the arenas' consumed ns gives a monotonic clock that
     keeps ticking after a migrate cutover moves the writer onto the
     destination arena (a max would freeze at the source's total). *)
  let clock () =
    let ns a = Stats.total_ns (Arena.total_stats a) in
    match dst with None -> ns sim_arena | Some d -> ns sim_arena + ns d
  in
  let phase = ref `Before in
  let before = ref [] and during = ref [] and after = ref [] in
  let before_ops = ref 0 and after_ops = ref 0 in
  let report = ref None in
  let writer _ =
    let rng = Prng.create (W.shard_seed ~base:!base_seed ~shard:11) in
    (* run until the post-rebalance bucket has enough samples for a
       stable p99 *)
    let quota = 256 in
    let i = ref 0 in
    while !after_ops < quota do
      incr i;
      let k = 1 + Prng.int rng (2 * n) in
      let ph = !phase in
      let t0 = clock () in
      if !i land 3 = 0 then Shard.insert t ~key:k ~value:(W.value_of k)
      else ignore (Shard.search t k);
      let dt = clock () - t0 in
      match ph with
      | `Before ->
          before := dt :: !before;
          incr before_ops
      | `During -> during := dt :: !during
      | `After ->
          after := dt :: !after;
          incr after_ops
    done
  in
  let rebalancer _ =
    (* let steady state accumulate first; cpu_work passes through the
       scheduler's yield hook, so the writer keeps running *)
    while !before_ops < 256 do
      Arena.cpu_work sim_arena 1_000
    done;
    phase := `During;
    report := Some (run_rebalance ());
    phase := `After
  in
  ignore
    (Mcsim.run ~cores:1 ~quantum_ns:200 ~arena:sim_arena
       [| writer; rebalancer |]);
  let r = Option.get !report in
  let moved_bytes =
    if r.Rebalance.r_moved_words > 0 then 8 * r.Rebalance.r_moved_words
    else 16 * r.Rebalance.r_moved_keys
  in
  {
    rb_kind = kind;
    rb_prefill = n;
    rb_moved_keys = r.Rebalance.r_moved_keys;
    rb_moved_bytes = moved_bytes;
    rb_copy_ns = r.Rebalance.r_copy_ns;
    rb_cutover_ns = r.Rebalance.r_cutover_ns;
    rb_copy_mb_s =
      (if r.Rebalance.r_copy_ns = 0 then 0.
       else float_of_int moved_bytes *. 1e3 /. float_of_int r.Rebalance.r_copy_ns);
    rb_p99_before = p99_of !before;
    rb_p99_during = p99_of !during;
    rb_p99_after = p99_of !after;
  }

(* The three kinds run once each; cached so a `rebalance` target and a
   --json report in the same invocation measure a single run. *)
let rb_rows_cache = ref None

let rebalance_rows () =
  match !rb_rows_cache with
  | Some rows -> rows
  | None ->
      let rows = List.map rb_row [ "split"; "merge"; "migrate" ] in
      rb_rows_cache := Some rows;
      rows

let rebalance_target () =
  print_endline
    "== rebalance: live split / merge / migrate under foreground load ==";
  Printf.printf "%-8s %10s %10s %11s %12s %15s %15s %14s\n" "kind" "moved_keys"
    "moved_kb" "copy_MB_s" "cutover_ns" "p99_before_ns" "p99_during_ns"
    "p99_after_ns";
  List.iter
    (fun r ->
      Printf.printf "%-8s %10d %10d %11.2f %12d %15d %15d %14d\n" r.rb_kind
        r.rb_moved_keys (r.rb_moved_bytes / 1024) r.rb_copy_mb_s r.rb_cutover_ns
        r.rb_p99_before r.rb_p99_during r.rb_p99_after)
    (rebalance_rows ());
  print_endline
    "   (simulated ns; p99 over foreground point ops before / during / after \
     the rebalance)"

(* ------------------------------------------------------------------ *)
(* Cluster: failover blackout, replication overhead, partition p99     *)
(* ------------------------------------------------------------------ *)

type cl_row = {
  cl_label : string;
  cl_ops : int;
  cl_acks : int;
  cl_refused : int;
  cl_failovers : int;
  cl_resyncs : int;
  cl_blackout_ns : int;
  cl_repl_records : int;
  cl_repl_resent : int;
  cl_fences_per_ack : float;
  cl_p99_before : int;
  cl_p99_during : int;
  cl_p99_after : int;
}

(* One 3-node/2-shard run per fabric profile: steady state, then a
   partition isolates shard 0's replica pair (read-only degradation),
   then heal + primary kill + promote + restart.  Client latency is
   the fabric-clock delta around each op, bucketed by phase, so the
   three p99s isolate the partition window and the post-failover
   recovery from steady state. *)
let cl_row label faults =
  let ops = max 240 (sc 4_000) in
  let cc =
    {
      Cluster.default with
      Cluster.nodes = 3;
      shards = 2;
      words = 1 lsl 15;
      seed = !base_seed;
      faults;
    }
  in
  let c = Cluster.create cc in
  let rng = Prng.create (W.shard_seed ~base:!base_seed ~shard:17) in
  let before = ref [] and during = ref [] and after = ref [] in
  let bucket = ref before in
  for j = 1 to ops do
    if j = ops / 3 then begin
      Cluster.partition c ~a:(Cluster.primary_of c ~shard:0)
        ~b:(Cluster.backup_of c ~shard:0);
      bucket := during
    end;
    if j = ops / 2 then begin
      Cluster.heal c;
      let p = Cluster.primary_of c ~shard:0 in
      Cluster.kill_node c p;
      for s = 0 to cc.Cluster.shards - 1 do
        if Cluster.primary_of c ~shard:s = p then
          ignore (Cluster.failover c ~shard:s)
      done;
      Cluster.restart_node c p;
      bucket := after
    end;
    let k = 1 + Prng.int rng 128 in
    let t0 = Cluster.now_ns c in
    (match Prng.int rng 4 with
    | 0 -> ignore (Cluster.get c k)
    | _ -> ignore (Cluster.put c k j));
    !bucket := (Cluster.now_ns c - t0) :: !(!bucket)
  done;
  let cs = Cluster.stats c in
  let fences = Cluster.fences c in
  let row =
    {
      cl_label = label;
      cl_ops = ops;
      cl_acks = cs.Cluster.s_acks;
      cl_refused = cs.Cluster.s_read_only + cs.Cluster.s_unavailable;
      cl_failovers = cs.Cluster.s_failovers;
      cl_resyncs = cs.Cluster.s_resyncs;
      cl_blackout_ns = cs.Cluster.s_last_blackout_ns;
      cl_repl_records = cs.Cluster.s_repl_records;
      cl_repl_resent = cs.Cluster.s_repl_resent;
      cl_fences_per_ack =
        float_of_int fences /. float_of_int (max 1 cs.Cluster.s_acks);
      cl_p99_before = p99_of !before;
      cl_p99_during = p99_of !during;
      cl_p99_after = p99_of !after;
    }
  in
  Cluster.close c;
  row

(* Unreplicated baseline for the overhead column: the same op mix on a
   plain 2-shard ensemble; cluster fences/ack minus this is the price
   of durable-on-backup-before-ack. *)
let cl_solo_fences_per_op () =
  let ops = max 240 (sc 4_000) in
  let t =
    Shard.create
      ~pm_config:(Config.pm ~read_ns:300 ~write_ns:300 ())
      ~words:(1 lsl 15) ~inner:"fastfair" ~shards:2 ()
  in
  let rng = Prng.create (W.shard_seed ~base:!base_seed ~shard:17) in
  for j = 1 to ops do
    let k = 1 + Prng.int rng 128 in
    match Prng.int rng 4 with
    | 0 -> ignore (Shard.search t k)
    | _ -> Shard.insert t ~key:k ~value:j
  done;
  let fences =
    Array.fold_left
      (fun acc a -> acc + (Arena.total_stats a).Stats.fences)
      0 (Shard.arenas t)
  in
  float_of_int fences /. float_of_int ops

(* Both fabric profiles run once each; cached so a `cluster` target
   and a --json report in the same invocation measure a single run. *)
let cl_rows_cache = ref None

let cluster_rows () =
  match !cl_rows_cache with
  | Some r -> r
  | None ->
      let r =
        ( cl_solo_fences_per_op (),
          [ cl_row "lossy" Fabric.default_faults; cl_row "calm" Fabric.calm ] )
      in
      cl_rows_cache := Some r;
      r

let cluster_target () =
  print_endline
    "== cluster: primary/backup replication under partition + failover (3 \
     nodes, 2 shards) ==";
  let solo, rows = cluster_rows () in
  Printf.printf "%-6s %6s %6s %8s %5s %11s %10s %11s %12s %11s %12s\n" "fabric"
    "acks" "refuse" "failover" "rsync" "blackout_ns" "fences/ack" "repl_recs"
    "p99_before" "p99_part" "p99_after";
  List.iter
    (fun r ->
      Printf.printf "%-6s %6d %6d %8d %5d %11d %10.1f %5d+%-5d %12d %11d %12d\n"
        r.cl_label r.cl_acks r.cl_refused r.cl_failovers r.cl_resyncs
        r.cl_blackout_ns r.cl_fences_per_ack r.cl_repl_records r.cl_repl_resent
        r.cl_p99_before r.cl_p99_during r.cl_p99_after)
    rows;
  Printf.printf
    "   (fabric-clock ns; unreplicated 2-shard baseline %.1f fences/op — the \
     delta is the durable-on-backup-before-ack price)\n"
    solo

(* ------------------------------------------------------------------ *)
(* Transactions: logged vs shadow commit-path cost, TPC-C aborts       *)
(* ------------------------------------------------------------------ *)

module Tx = Ff_tx.Tx

type tx_row = {
  tx_path : string;
  tx_txns : int;
  tx_ops_per_txn : int;
  tx_fences_per_txn : float;
  tx_fences_per_op : float;
  tx_flushes_per_op : float;
  tx_us_per_txn : float;
  tx_site_fences : (string * int) list; (* tx_* profile sites only *)
}

(* Same multi-key update workload through both commit paths on the same
   tree shape, with a tracer attached so every fence is attributed to
   the tx_log / tx_commit / tx_replay site that issued it. *)
let tx_row path =
  let txns = sc 2_000 in
  let ops_per_txn = 4 in
  let n = sc 20_000 in
  let config = Config.pm ~read_ns:300 ~write_ns:300 () in
  let a = arena ~config (max (n * 64) (1 lsl 17)) in
  let t = (fastfair ()).build a in
  W.load_keys t (W.sequential ~n);
  let tr = Ff_trace.Trace.for_arena ~capacity:(1 lsl 16) a in
  let mgr = Tx.create ~path a t in
  Tx.set_tracer mgr tr;
  Arena.reset_stats a;
  let rng = Prng.create (W.shard_seed ~base:!base_seed ~shard:7) in
  let vc = ref n in
  for _ = 1 to txns do
    ignore
      (Tx.run mgr (fun tx ->
           for _ = 1 to ops_per_txn do
             incr vc;
             Tx.put tx (1 + Prng.int rng n) (W.value_of !vc)
           done))
  done;
  Arena.set_event_sink a None;
  let s = Arena.total_stats a in
  let ops = txns * ops_per_txn in
  let profile = Profile.of_trace ~ops tr in
  let site_fences =
    List.filter_map
      (fun r ->
        let site = r.Profile.site in
        if String.length site >= 3 && String.sub site 0 3 = "tx_" then
          Some (site, r.Profile.fences)
        else None)
      profile.Profile.rows
  in
  {
    tx_path = (match path with Tx.Logged -> "logged" | Tx.Shadow -> "shadow");
    tx_txns = txns;
    tx_ops_per_txn = ops_per_txn;
    tx_fences_per_txn = float_of_int s.Stats.fences /. float_of_int txns;
    tx_fences_per_op = float_of_int s.Stats.fences /. float_of_int ops;
    tx_flushes_per_op = float_of_int s.Stats.flushes /. float_of_int ops;
    tx_us_per_txn =
      float_of_int (Stats.total_ns s) /. float_of_int txns /. 1000.;
    tx_site_fences = site_fences;
  }

let tx_rows () = [ tx_row Tx.Logged; tx_row Tx.Shadow ]

(* TPC-C under real transactions: W1 mix, both paths; the abort count
   must be nonzero (invalid-item New-Orders roll back by spec). *)
let tx_tpcc_stats path =
  let txns = sc 2_000 in
  let config = Config.pm ~read_ns:300 ~write_ns:300 () in
  (* The TPC-C population is near-constant in txns; keep a floor so
     small --scale runs don't exhaust the arena. *)
  let a = arena ~config (max (txns * 1600) 400_000) in
  let idx = (fastfair ()).build a in
  let t = Tpcc.load ~path ~arena:a idx Tpcc.default_config in
  Tpcc.run t Tpcc.w1 ~txns;
  (Tpcc.commits t, Tpcc.aborts t, Tpcc.retries t)

let tx_target () =
  print_endline
    "== tx: commit-path cost (4-op update txns, fast+fair), latency 300/300 ==";
  let rows = tx_rows () in
  let tbl =
    Table.create [ "path"; "fences/txn"; "fences/op"; "flushes/op"; "us/txn" ]
  in
  List.iter
    (fun r ->
      Table.add_floats tbl r.tx_path
        [ r.tx_fences_per_txn; r.tx_fences_per_op; r.tx_flushes_per_op; r.tx_us_per_txn ])
    rows;
  Table.print tbl;
  List.iter
    (fun r ->
      Printf.printf "  %-6s site fences: %s\n" r.tx_path
        (String.concat " "
           (List.map (fun (s, f) -> Printf.sprintf "%s=%d" s f) r.tx_site_fences)))
    rows;
  List.iter
    (fun path ->
      let c, ab, re = tx_tpcc_stats path in
      Printf.printf "  tpcc[%s]: commits=%d aborts=%d retries=%d\n"
        (match path with Tx.Logged -> "logged" | Tx.Shadow -> "shadow")
        c ab re)
    [ Tx.Logged; Tx.Shadow ]

(* ------------------------------------------------------------------ *)
(* Snapshots: MVCC wrapper overhead, publish cost, backup throughput   *)
(* ------------------------------------------------------------------ *)

module Snap = Ff_snapshot.Snapshot

type snap_row = {
  sn_phase : string;
  sn_ops : int;
  sn_kops : float;
  sn_fences_per_op : float;
  sn_flushes_per_op : float;
}

let snap_mk_row phase a ops =
  let s = Arena.total_stats a in
  let fops = float_of_int ops in
  {
    sn_phase = phase;
    sn_ops = ops;
    sn_kops = kops a ops;
    sn_fences_per_op = float_of_int s.Stats.fences /. fops;
    sn_flushes_per_op = float_of_int s.Stats.flushes /. fops;
  }

(* Writer cost with and without the version store in the loop (a live
   pin forces every overwrite to preserve its superseded value), point
   reads live vs as-of a pinned epoch, the price of publishing an
   epoch, and online-backup streaming rate. *)
let snap_rows () =
  let n = sc 20_000 in
  let ops = sc 10_000 in
  let config = Config.pm ~read_ns:300 ~write_ns:300 () in
  let fresh_wrapped () =
    let a = arena ~config (max (n * 96) (1 lsl 18)) in
    let st = Snap.create a ((fastfair ()).build a) in
    let t = Snap.ops_of st "snap-fastfair" in
    W.load_keys t (W.sequential ~n);
    (a, st, t)
  in
  let overwrite t rng =
    (* fresh values disjoint from the loaded ones: uniqueness contract *)
    let vc = ref 0 in
    for _ = 1 to ops do
      incr vc;
      t.Intf.insert (1 + Prng.int rng n) (W.value_of (n + (ops * 2) + !vc))
    done
  in
  let plain =
    let a = arena ~config (max (n * 64) (1 lsl 17)) in
    let t = (fastfair ()).build a in
    W.load_keys t (W.sequential ~n);
    Arena.reset_stats a;
    overwrite t (Prng.create !base_seed);
    snap_mk_row "writer-plain" a ops
  in
  let wrapped =
    let a, st, t = fresh_wrapped () in
    let pin = Snap.take st in
    Arena.reset_stats a;
    overwrite t (Prng.create !base_seed);
    Snap.release pin;
    snap_mk_row "writer-pinned" a ops
  in
  let reads =
    let a, st, t = fresh_wrapped () in
    let pin = Snap.take st in
    overwrite t (Prng.create !base_seed);
    let e = Snap.epoch pin in
    let rng = Prng.create (W.shard_seed ~base:!base_seed ~shard:3) in
    Arena.reset_stats a;
    for _ = 1 to ops do
      ignore (Snap.read_at st e (1 + Prng.int rng n))
    done;
    snap_mk_row "read-pinned" a ops
  in
  let publish =
    let a, st, t = fresh_wrapped () in
    let rng = Prng.create !base_seed in
    let pins = 64 in
    Arena.reset_stats a;
    for _ = 1 to pins do
      (* one write between pins so every publish advances the epoch *)
      t.Intf.insert (1 + Prng.int rng n) (W.value_of (n + (ops * 4) + Prng.int rng 1_000_000));
      ignore (Snap.snapshot_begin st 0)
    done;
    snap_mk_row "publish" a pins
  in
  let backup =
    let a, st, _t = fresh_wrapped () in
    let dest_arena = arena ~config (max (n * 64) (1 lsl 17)) in
    let dest = (fastfair ()).build dest_arena in
    let pin = Snap.take st in
    Arena.reset_stats a;
    Arena.reset_stats dest_arena;
    let total =
      Snap.backup st ~epoch:(Snap.epoch pin) ~dest ~chunk:512 ()
    in
    let s = Arena.total_stats a and d = Arena.total_stats dest_arena in
    let ns = Stats.total_ns s + Stats.total_ns d in
    let fpairs = float_of_int total in
    {
      sn_phase = "backup";
      sn_ops = total;
      sn_kops =
        (if ns = 0 then 0.
         else fpairs /. (float_of_int ns /. 1e9) /. 1000.);
      sn_fences_per_op = float_of_int (s.Stats.fences + d.Stats.fences) /. fpairs;
      sn_flushes_per_op =
        float_of_int (s.Stats.flushes + d.Stats.flushes) /. fpairs;
    }
  in
  [ plain; wrapped; reads; publish; backup ]

let snapshot_target () =
  print_endline
    "== snapshot: MVCC wrapper overhead over fast+fair, latency 300/300 ==";
  let rows = snap_rows () in
  let tbl = Table.create [ "phase"; "ops"; "kops"; "fences/op"; "flushes/op" ] in
  List.iter
    (fun r ->
      Table.add_floats tbl r.sn_phase
        [ float_of_int r.sn_ops; r.sn_kops; r.sn_fences_per_op; r.sn_flushes_per_op ])
    rows;
  Table.print tbl

(* ------------------------------------------------------------------ *)
(* YCSB mix presets (--mix ycsb-a..e)                                  *)
(* ------------------------------------------------------------------ *)

let mix_names_str = String.concat "|" W.mix_names

let bad_mix spec =
  raise
    (Arg.Bad
       (Printf.sprintf "--mix: unknown preset '%s' (valid: %s)" spec
          mix_names_str))

let ycsb_mix_target spec =
  let mix =
    match W.ycsb_mix spec with Some m -> m | None -> bad_mix spec
  in
  Printf.printf
    "== YCSB mix %s: %d%% update / %d%% read / %d%% scan, latency 300/300 ==\n"
    spec mix.W.insert_pct mix.W.search_pct mix.W.range_pct;
  let n = sc 50_000 in
  let opsn = sc 100_000 in
  let config = Config.pm ~read_ns:300 ~write_ns:300 () in
  let tbl = Table.create [ "index"; "kops"; "fences/op"; "flushes/op" ] in
  List.iter
    (fun m ->
      let a = arena ~config ((n + opsn) * 60) in
      let t = m.build a in
      let rng = Prng.create !base_seed in
      let keys = W.distinct_uniform rng ~n ~space:(2 * n) in
      W.load_keys t keys;
      Arena.reset_stats a;
      let trace = W.mixed_trace rng ~n:opsn ~space:(2 * n) mix in
      ignore (W.run_trace t trace);
      let s = Arena.total_stats a in
      let fops = float_of_int opsn in
      Table.add_floats tbl m.label
        [
          kops a opsn;
          float_of_int s.Stats.fences /. fops;
          float_of_int s.Stats.flushes /. fops;
        ])
    (search_makers ());
  Table.print tbl

(* ------------------------------------------------------------------ *)
(* Machine-readable results (--json FILE)                              *)
(* ------------------------------------------------------------------ *)

module J = Ff_trace.Json

let json_report file =
  let n = sc 50_000 in
  let space = 8 * n in
  let config = Config.pm ~read_ns:300 ~write_ns:300 () in
  let measure m phase =
    let a = arena ~config (n * 56) in
    let t = m.build a in
    let rng = Prng.create 61 in
    let keys = W.distinct_uniform rng ~n ~space in
    let ops =
      match phase with
      | `Insert ->
          let half = n / 2 in
          Array.iteri (fun i k -> if i < half then t.Intf.insert k (W.value_of k)) keys;
          Arena.reset_stats a;
          Array.iteri (fun i k -> if i >= half then t.Intf.insert k (W.value_of k)) keys;
          n - half
      | `Search ->
          W.load_keys t keys;
          Arena.reset_stats a;
          Array.iter (fun k -> ignore (t.Intf.search k)) keys;
          n
      | `Range ->
          W.load_keys t keys;
          Arena.reset_stats a;
          let queries = 50 in
          let qrng = Prng.create 62 in
          let width = space / 100 in
          for _ = 1 to queries do
            let lo = 1 + Prng.int qrng (space - width) in
            t.Intf.range lo (lo + width) (fun _ _ -> ())
          done;
          queries
    in
    let s = Arena.total_stats a in
    let fops = float_of_int ops in
    J.Obj
      [
        ("index", J.Str m.label);
        ("ops", J.Int ops);
        ("ns_per_op", J.Float (float_of_int (Stats.total_ns s) /. fops));
        ("flushes_per_op", J.Float (float_of_int s.Stats.flushes /. fops));
        ("fences_per_op", J.Float (float_of_int s.Stats.fences /. fops));
      ]
  in
  let workload name phase makers =
    J.Obj
      [
        ("workload", J.Str name);
        ("results", J.Arr (List.map (fun m -> measure m phase) makers));
      ]
  in
  let scrub_row_json r =
    J.Obj
      [
        ("index", J.Str r.sc_index);
        ("keys", J.Int r.sc_keys);
        ("scrub_ns", J.Int r.sc_scrub_ns);
        ("ns_per_key", J.Float r.sc_ns_per_key);
        ("leaked_words", J.Int r.sc_leaked);
        ("reclaimed_words", J.Int r.sc_reclaimed);
        ("repaired_lines", J.Int r.sc_repaired);
        ("quarantined_lines", J.Int r.sc_quarantined);
      ]
  in
  let tx_row_json r =
    J.Obj
      [
        ("path", J.Str r.tx_path);
        ("txns", J.Int r.tx_txns);
        ("ops_per_txn", J.Int r.tx_ops_per_txn);
        ("fences_per_txn", J.Float r.tx_fences_per_txn);
        ("fences_per_op", J.Float r.tx_fences_per_op);
        ("flushes_per_op", J.Float r.tx_flushes_per_op);
        ("us_per_txn", J.Float r.tx_us_per_txn);
        ( "site_fences",
          J.Obj (List.map (fun (s, f) -> (s, J.Int f)) r.tx_site_fences) );
      ]
  in
  let snap_row_json r =
    J.Obj
      [
        ("phase", J.Str r.sn_phase);
        ("ops", J.Int r.sn_ops);
        ("kops", J.Float r.sn_kops);
        ("fences_per_op", J.Float r.sn_fences_per_op);
        ("flushes_per_op", J.Float r.sn_flushes_per_op);
      ]
  in
  let tx_tpcc_json path =
    let c, ab, re = tx_tpcc_stats path in
    J.Obj
      [
        ( "path",
          J.Str (match path with Tx.Logged -> "logged" | Tx.Shadow -> "shadow") );
        ("commits", J.Int c);
        ("aborts", J.Int ab);
        ("retries", J.Int re);
      ]
  in
  let rb_row_json r =
    J.Obj
      [
        ("kind", J.Str r.rb_kind);
        ("prefill", J.Int r.rb_prefill);
        ("moved_keys", J.Int r.rb_moved_keys);
        ("moved_bytes", J.Int r.rb_moved_bytes);
        ("copy_ns", J.Int r.rb_copy_ns);
        ("cutover_ns", J.Int r.rb_cutover_ns);
        ("copy_mb_per_s", J.Float r.rb_copy_mb_s);
        ("p99_before_ns", J.Int r.rb_p99_before);
        ("p99_during_ns", J.Int r.rb_p99_during);
        ("p99_after_ns", J.Int r.rb_p99_after);
      ]
  in
  let cl_row_json r =
    J.Obj
      [
        ("fabric", J.Str r.cl_label);
        ("ops", J.Int r.cl_ops);
        ("acks", J.Int r.cl_acks);
        ("refused", J.Int r.cl_refused);
        ("failovers", J.Int r.cl_failovers);
        ("resyncs", J.Int r.cl_resyncs);
        ("blackout_ns", J.Int r.cl_blackout_ns);
        ("repl_records", J.Int r.cl_repl_records);
        ("repl_resent", J.Int r.cl_repl_resent);
        ("fences_per_ack", J.Float r.cl_fences_per_ack);
        ("p99_before_ns", J.Int r.cl_p99_before);
        ("p99_partition_ns", J.Int r.cl_p99_during);
        ("p99_after_ns", J.Int r.cl_p99_after);
      ]
  in
  let sharded_row_json r =
    J.Obj
      [
        ("shards", J.Int r.sh_shards);
        ("group_flush", J.Bool r.sh_group);
        ("ops", J.Int r.sh_ops);
        ("kops", J.Float r.sh_kops);
        ("fences_per_op", J.Float r.sh_fences_per_op);
        ("flushes_per_op", J.Float r.sh_flushes_per_op);
        ("imbalance_max", J.Int r.sh_imb_max);
        ("imbalance_mean", J.Float r.sh_imb_mean);
        ("latency_p50_ns", J.Int r.sh_p50);
        ("latency_p99_ns", J.Int r.sh_p99);
      ]
  in
  let doc =
    J.Obj
      ([
         ("bench", J.Str "fastfair");
         ("scale", J.Float !scale);
         ("pm", J.Obj [ ("read_ns", J.Int 300); ("write_ns", J.Int 300) ]);
         ( "sched",
           J.Obj [ ("policy", J.Str !sched_policy); ("seed", J.Int !sched_seed) ] );
         ( "workloads",
           J.Arr
             [
               workload "insert" `Insert (insert_makers ());
               workload "search" `Search (search_makers ());
               workload "range" `Range [ fastfair (); skiplist () ];
             ] );
         ("scrub", J.Arr (List.map scrub_row_json (scrub_rows ())));
         ( "tx",
           J.Obj
             [
               ("paths", J.Arr (List.map tx_row_json (tx_rows ())));
               ( "tpcc",
                 J.Arr (List.map tx_tpcc_json [ Tx.Logged; Tx.Shadow ]) );
             ] );
         ("snapshot", J.Arr (List.map snap_row_json (snap_rows ())));
         ("rebalance", J.Arr (List.map rb_row_json (rebalance_rows ())));
         ( "cluster",
           let solo, rows = cluster_rows () in
           J.Obj
             [
               ("solo_fences_per_op", J.Float solo);
               ("rows", J.Arr (List.map cl_row_json rows));
             ] );
       ]
      @ (if !shard_counts = [] then []
         else [ ("sharded", J.Arr (List.map sharded_row_json (sharded_rows ()))) ])
      @
      (* --slo: run the soak scenario and embed its snapshot — the
         headline + per-site fence table the CI perf gate diffs. *)
      if not !slo_flag then []
      else begin
        let _t, _tr, _ts, snap, report = soak_scenario () in
        if not (Slo.ok report) then slo_failed := true;
        [ ("obs", Snapshot.to_json snap) ]
      end)
  in
  let oc = open_out file in
  output_string oc (J.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "[json results -> %s]\n%!" file

(* ------------------------------------------------------------------ *)
(* Perfetto trace of a multithreaded mixed run (--trace FILE)          *)
(* ------------------------------------------------------------------ *)

let trace_target file =
  Printf.printf "== tracing 8 simulated threads, mixed 16:4:1 workload ==\n";
  (* Fail on an unwritable output path now, not after the simulation. *)
  close_out (open_out file);
  let n = sc 20_000 in
  let ops = sc 8_000 in
  let threads = 8 in
  let config = { Config.default with Config.write_latency_ns = 300; max_threads = 64 } in
  let a = arena ~config ((n + ops) * 60) in
  let t = Tree.create ~lock_mode:Locks.Sim a in
  let keys = W.distinct_uniform (Prng.create 51) ~n:(n + ops) ~space:(16 * (n + ops)) in
  ignore
    (Mcsim.run ~cores:16 ~arena:a
       [|
         (fun _ ->
           Array.iteri (fun i k -> if i < n then Tree.insert t ~key:k ~value:(W.value_of k)) keys);
       |]);
  (* Attach the tracer only for the measured run: each Mcsim.run restarts
     the simulated clock, and mixing timebases would bend the timeline. *)
  let tr = Ff_trace.Trace.for_arena ~capacity:(1 lsl 16) a in
  Tree.set_tracer t tr;
  let per = ops / threads in
  let body tid =
    let r = Prng.create (200 + tid) in
    let base = n + (tid * per) in
    let inserted = ref 0 in
    let g = ref 0 in
    while (16 + 4 + 1) * !g < per do
      for _ = 1 to 16 do
        ignore (Tree.search t keys.(Prng.int r n))
      done;
      for _ = 1 to 4 do
        if !inserted < per then begin
          let k = keys.(base + !inserted) in
          Tree.insert t ~key:k ~value:(W.value_of k);
          incr inserted
        end
      done;
      ignore (Tree.delete t keys.(Prng.int r n));
      incr g
    done
  in
  ignore
    (Mcsim.run ~cores:16 ~quantum_ns:150 ~lock_ns:20 ~contention_ns:100
       ~policy:(sched ()) ~arena:a
       (Array.init threads (fun _ -> body)));
  Arena.set_event_sink a None;
  Ff_trace.Perfetto.write_file tr file;
  Printf.printf "[perfetto trace -> %s: %d events kept, %d dropped, %d dup-pointer skips]\n%!"
    file
    (Ff_trace.Trace.event_count tr)
    (Ff_trace.Trace.dropped_count tr)
    (Ff_trace.Trace.dup_skips tr);
  print_endline (Ff_trace.Metrics.to_json_string (Ff_trace.Trace.metrics tr))

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let targets =
  [
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5a", fig5a);
    ("fig5b", fig5b);
    ("fig5c", fig5c);
    ("fig5d", fig5d);
    ("fig6", fig6);
    ("fig7", fig7);
    ("stats", stats_target);
    ("crash", crash_target);
    ("ablation", ablation);
    ("ycsb", ycsb);
    ("latencies", latencies);
    ("micro", micro);
    ("sharded", sharded_target);
    ("scrub", scrub_target);
    ("soak", soak_target);
    ("rebalance", rebalance_target);
    ("cluster", cluster_target);
    ("tx", tx_target);
    ("snapshot", snapshot_target);
  ]

let () =
  let selected = ref [] in
  let json_file = ref "" in
  let trace_file = ref "" in
  let mix_spec = ref "" in
  let spec =
    [
      ( "--scale",
        Arg.Float (fun s -> scale := s),
        "S  scale workload sizes by S (default 1.0)" );
      ( "--json",
        Arg.Set_string json_file,
        "FILE  write machine-readable results (ns/op, flushes/op, fences/op per workload)" );
      ( "--trace",
        Arg.Set_string trace_file,
        "FILE  record a multithreaded mixed run as a Perfetto/chrome://tracing JSON file" );
      ( "--mix",
        Arg.String
          (fun s ->
            if W.ycsb_mix s = None then bad_mix s;
            mix_spec := s),
        Printf.sprintf
          "M  run a YCSB mix preset (%s) over the registered indexes"
          mix_names_str );
      ( "--shards",
        Arg.String
          (fun s ->
            shard_counts :=
              List.map
                (fun c ->
                  match int_of_string_opt (String.trim c) with
                  | Some n when n >= 1 -> n
                  | _ -> raise (Arg.Bad ("--shards: bad count " ^ c)))
                (String.split_on_char ',' s)),
        "N,M,...  shard counts for the sharded serving-layer report (default 1,4,8)"
      );
      ( "--seed",
        Arg.Set_int base_seed,
        "S  base PRNG seed; shard s uses Workload.shard_seed ~base:S ~shard:s (default 42)"
      );
      ( "--sched-policy",
        Arg.String
          (fun p ->
            (* Validate eagerly so a typo fails before minutes of warmup. *)
            (try ignore (Mcsim.policy_of_spec ~seed:0 p)
             with Invalid_argument m -> raise (Arg.Bad m));
            sched_policy := p),
        "P  Mcsim scheduling policy for concurrent runs: fifo|random|pct (default fifo)"
      );
      ( "--sched-seed",
        Arg.Set_int sched_seed,
        "S  seed for --sched-policy random/pct (default 0); recorded in --json" );
      ( "--zipf",
        Arg.Float
          (fun t ->
            if t <= 0. then
              raise (Arg.Bad (Printf.sprintf "--zipf: theta %g must be > 0" t));
            zipf_theta := t),
        "T  Zipfian skew theta for the ycsb and soak workloads (default 0.99; \
         smaller is flatter)" );
      ( "--slo",
        Arg.Set slo_flag,
        "  evaluate SLO rules on the soak scenario (exit 1 on violation); with \
         --json, embeds the obs snapshot" );
      ( "--slo-p99-ns",
        Arg.Set_int slo_p99_ns,
        "N  p99 end-to-end latency bound in simulated ns for the SLO rules \
         (default 20000000; set low to inject a breach)" );
      ( "--slo-out",
        Arg.Set_string slo_out,
        "FILE  write the soak target's SLO report as JSON" );
      ( "--soak-trace",
        Arg.Set_string soak_trace_file,
        "FILE  write the soak target's Perfetto trace" );
      ( "--retry-limit",
        Arg.Set_int soak_retry_limit,
        "N  degraded-shard retry budget for the soak ensemble (default 3)" );
      ( "--backoff-ns",
        Arg.Set_int soak_backoff_ns,
        "N  base delay for the soak ensemble's jittered exponential retry \
         backoff, in simulated ns (default 1000)" );
    ]
  in
  let usage =
    "main.exe [targets] [--scale S] [--json FILE] [--trace FILE] [--shards N,M,...]\n\
     targets: "
    ^ String.concat " " (List.map fst targets)
    ^ " (default: all; --json/--trace/--shards alone run only their own workloads)"
  in
  Arg.parse spec (fun t -> selected := t :: !selected) usage;
  let selected =
    if !selected = [] then
      if !json_file <> "" || !trace_file <> "" || !mix_spec <> "" then []
      else if !shard_counts <> [] then [ "sharded" ]
      else List.map fst targets
    else List.rev !selected
  in
  if !json_file <> "" then json_report !json_file;
  if !trace_file <> "" then trace_target !trace_file;
  if !mix_spec <> "" then ycsb_mix_target !mix_spec;
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name targets with
      | Some f ->
          let s = Unix.gettimeofday () in
          f ();
          Printf.printf "[%s done in %.1fs]\n\n%!" name (Unix.gettimeofday () -. s)
      | None -> Printf.eprintf "unknown target %s\n" name)
    selected;
  Printf.printf "total %.1fs\n" (Unix.gettimeofday () -. t0);
  if !slo_failed then begin
    prerr_endline "SLO violated (see report above); failing the run";
    exit 1
  end
