(* Tracing: watch the tree's transient inconsistencies happen.

   Attaches an event-ring tracer to a FAST+FAIR tree, runs a
   multithreaded workload on the simulated 4-core machine, prints the
   metrics exposition (counters + latency/flush histograms), and
   writes a Perfetto trace you can load in ui.perfetto.dev.

   Run with: dune exec examples/tracing.exe *)

module Arena = Ff_pmem.Arena
module Config = Ff_pmem.Config
module Mcsim = Ff_mcsim.Mcsim
module Locks = Ff_index.Locks
module Tree = Ff_fastfair.Tree
module Trace = Ff_trace.Trace
module Prng = Ff_util.Prng

let () =
  let config = { Config.default with Config.write_latency_ns = 300; max_threads = 16 } in
  let arena = Arena.create ~config ~words:(1 lsl 20) () in
  let tree = Tree.create ~lock_mode:Locks.Sim arena in

  (* The tracer: per-thread event rings fed by the tree (spans,
     duplicate-pointer skips) and by the arena itself (every PM store,
     flush, fence and allocation). *)
  let tr = Trace.for_arena arena in
  Tree.set_tracer tree tr;

  (* 4 threads: one writer splitting nodes, three lock-free readers. *)
  let writer _ =
    for k = 1000 downto 1 do
      Tree.insert tree ~key:k ~value:((2 * k) + 1)
    done
  in
  let reader tid =
    let rng = Prng.create (7 * tid) in
    for _ = 1 to 2000 do
      ignore (Tree.search tree (1 + Prng.int rng 1000))
    done
  in
  let outcome =
    Mcsim.run ~cores:4 ~quantum_ns:50 ~lock_ns:20 ~contention_ns:100 ~arena
      [| writer; reader; reader; reader |]
  in
  Arena.set_event_sink arena None;

  Printf.printf "simulated makespan: %d ns\n" outcome.Mcsim.makespan_ns;
  Printf.printf "events recorded: %d (%d dropped)\n" (Trace.event_count tr)
    (Trace.dropped_count tr);
  Printf.printf
    "transient duplicate-pointer states observed (and tolerated) by readers: %d\n\n"
    (Trace.dup_skips tr);

  (* Text exposition of every counter and histogram. *)
  Format.printf "%a@." Ff_trace.Metrics.pp_text (Trace.metrics tr);

  (* Same data, machine-readable. *)
  print_endline (Ff_trace.Metrics.to_json_string (Trace.metrics tr));

  let path = Filename.temp_file "fastfair-trace" ".json" in
  Ff_trace.Perfetto.write_file tr path;
  Printf.printf "\nPerfetto trace written to %s — load it at https://ui.perfetto.dev\n" path
