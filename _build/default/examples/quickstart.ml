(* Quickstart: a FAST+FAIR B+-tree on simulated persistent memory.

   Run with: dune exec examples/quickstart.exe *)

module Arena = Ff_pmem.Arena
module Config = Ff_pmem.Config
module Stats = Ff_pmem.Stats
module Tree = Ff_fastfair.Tree

let () =
  (* A 16 MiB simulated PM device with 300ns read/write latency. *)
  let config = Config.pm ~read_ns:300 ~write_ns:300 () in
  let arena = Arena.create ~config ~words:(2 * 1024 * 1024) () in

  (* A tree with the paper's default 512-byte nodes. *)
  let tree = Tree.create arena in

  (* Insert some key/value pairs.  Values must be unique and nonzero —
     they play the role of the paper's record pointers. *)
  for k = 1 to 10_000 do
    Tree.insert tree ~key:k ~value:(k * 2 + 1)
  done;
  Printf.printf "inserted 10000 keys; tree height = %d\n" (Tree.height tree);

  (* Point lookups. *)
  (match Tree.search tree 4242 with
  | Some v -> Printf.printf "search 4242 -> %d\n" v
  | None -> print_endline "search 4242 -> not found");
  assert (Tree.search tree 10_001 = None);

  (* In-place update: a single failure-atomic 8-byte store. *)
  Tree.insert tree ~key:4242 ~value:999_999;
  assert (Tree.search tree 4242 = Some 999_999);

  (* Range scan over the sorted leaf chain. *)
  let count = ref 0 and sum = ref 0 in
  Tree.range tree ~lo:100 ~hi:200 (fun k _v ->
      incr count;
      sum := !sum + k);
  Printf.printf "range [100,200]: %d keys, key sum %d\n" !count !sum;

  (* Delete. *)
  assert (Tree.delete tree 4242);
  assert (Tree.search tree 4242 = None);

  (* The simulator accounts every PM event. *)
  let s = Arena.total_stats arena in
  Printf.printf
    "PM activity: %d stores, %d cache-line flushes, %d fences\n"
    s.Stats.stores s.Stats.flushes s.Stats.fences;
  Printf.printf "simulated time: %.2f ms\n"
    (float_of_int (Stats.total_ns s) /. 1e6);

  (* Structural invariants hold. *)
  Ff_fastfair.Invariant.check_exn tree;
  print_endline "invariants OK"
