(* The adopter's toolbox: bulk loading, cursors, the Kv layer for
   arbitrary values, crash-safe compaction, and device images on disk.

   Run with: dune exec examples/maintenance.exe *)

module Arena = Ff_pmem.Arena
module Config = Ff_pmem.Config
module Stats = Ff_pmem.Stats
open Ff_fastfair

let () =
  let config = Config.pm ~read_ns:300 ~write_ns:300 () in
  let arena = Arena.create ~config ~words:(4 * 1024 * 1024) () in

  (* 1. Bulk load: build bottom-up, publish with one atomic store. *)
  let pairs = Array.init 100_000 (fun i -> ((2 * i) + 2, (4 * i) + 1)) in
  Arena.reset_stats arena;
  let tree = Bulk.load ~node_bytes:512 arena pairs in
  let s = Arena.total_stats arena in
  Printf.printf "bulk-loaded 100k keys: %d flushes (vs ~4.2/key incremental)\n"
    s.Stats.flushes;
  Printf.printf "height %d, cardinal %d\n" (Tree.height tree) (Tree.cardinal tree);

  (* 2. Cursor: resumable ordered iteration. *)
  let c = Cursor.create tree ~lo:1000 in
  let first_five = List.init 5 (fun _ -> Cursor.next c) in
  Printf.printf "cursor from 1000: %s\n"
    (String.concat ", "
       (List.map
          (function Some (k, _) -> string_of_int k | None -> "-")
          first_five));
  let sum = Cursor.fold tree ~lo:1 ~hi:200 ~init:0 (fun acc k _ -> acc + k) in
  Printf.printf "fold over [1,200]: key sum = %d\n" sum;

  (* 3. Mass deletion, then crash-safe compaction. *)
  let n0 = List.length (Tree.reachable_nodes tree) in
  Array.iteri (fun i (k, _) -> if i mod 10 <> 0 then ignore (Tree.delete tree k)) pairs;
  let freed = Compact.compact tree in
  Printf.printf "deleted 90%%: compaction freed %d of %d nodes (now %d, height %d)\n"
    freed n0
    (List.length (Tree.reachable_nodes tree))
    (Tree.height tree);
  Invariant.check_exn tree;

  (* 4. Kv layer: duplicate and zero values are fine. *)
  let arena2 = Arena.create ~config ~words:(1 lsl 20) () in
  let kv = Kv.create arena2 in
  Kv.put kv ~key:1 ~value:7;
  Kv.put kv ~key:2 ~value:7;
  Kv.put kv ~key:3 ~value:0;
  Printf.printf "kv: 1->%s 2->%s 3->%s (duplicates and zero allowed)\n"
    (match Kv.get kv 1 with Some v -> string_of_int v | None -> "-")
    (match Kv.get kv 2 with Some v -> string_of_int v | None -> "-")
    (match Kv.get kv 3 with Some v -> string_of_int v | None -> "-");

  (* 5. Device image on disk: what a reboot would see. *)
  Arena.drain arena2;
  let path = Filename.temp_file "fastfair" ".img" in
  Arena.save_to_file arena2 path;
  let arena3 = Arena.load_from_file ~config path in
  Sys.remove path;
  let kv2 = Kv.open_existing arena3 in
  Kv.recover kv2;
  assert (Kv.get kv2 2 = Some 7);
  Printf.printf "image saved, reloaded, verified: key 2 -> %d\n"
    (Option.get (Kv.get kv2 2));
  print_endline "maintenance demo OK"
