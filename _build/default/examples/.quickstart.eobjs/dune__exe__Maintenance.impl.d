examples/maintenance.ml: Array Bulk Compact Cursor Ff_fastfair Ff_pmem Filename Invariant Kv List Option Printf String Sys Tree
