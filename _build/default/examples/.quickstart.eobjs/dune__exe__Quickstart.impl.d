examples/quickstart.ml: Ff_fastfair Ff_pmem Printf
