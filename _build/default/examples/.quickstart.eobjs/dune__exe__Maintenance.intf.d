examples/maintenance.mli:
