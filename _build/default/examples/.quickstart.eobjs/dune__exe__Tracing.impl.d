examples/tracing.ml: Ff_fastfair Ff_index Ff_mcsim Ff_pmem Ff_trace Ff_util Filename Format Printf
