examples/concurrent_readers.mli:
