examples/crash_recovery.ml: Ff_fastfair Ff_pmem Ff_util List Printf
