examples/tpcc_demo.ml: Ff_fastfair Ff_fptree Ff_pmem Ff_tpcc Ff_wbtree Printf
