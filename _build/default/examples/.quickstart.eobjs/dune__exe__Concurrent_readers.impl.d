examples/concurrent_readers.ml: Array Ff_fastfair Ff_index Ff_mcsim Ff_pmem Ff_util List Printf
