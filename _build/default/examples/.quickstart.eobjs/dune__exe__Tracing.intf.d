examples/tracing.mli:
