examples/quickstart.mli:
