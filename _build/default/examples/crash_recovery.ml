(* Endurable transient inconsistency, live: crash a FAIR node split at
   every possible 8-byte store, and watch readers tolerate every
   intermediate state with no log and no recovery pass (the paper's
   central claim, Sections III and 5.7).

   Run with: dune exec examples/crash_recovery.exe *)

module Arena = Ff_pmem.Arena
module Storelog = Ff_pmem.Storelog
module Prng = Ff_util.Prng
module Tree = Ff_fastfair.Tree
module Invariant = Ff_fastfair.Invariant

let value_of k = (2 * k) + 1

let () =
  (* Small nodes (128 B = 4 records) so a single insert triggers a
     FAIR split with root growth. *)
  let arena = Arena.create ~words:(1 lsl 16) () in
  let tree = Tree.create ~node_bytes:128 arena in
  List.iter (fun k -> Tree.insert tree ~key:k ~value:(value_of k)) [ 10; 20; 30; 40 ];
  Arena.drain arena;
  print_endline "base tree: keys {10,20,30,40} in one full 128-byte leaf";

  (* How many stores does 'insert 25' (a full FAIR split) take? *)
  let total =
    let c = Arena.clone arena in
    let t = Tree.open_existing ~node_bytes:128 c in
    let before = Arena.store_count c in
    Tree.insert t ~key:25 ~value:(value_of 25);
    Arena.store_count c - before
  in
  Printf.printf "insert 25 forces a node split: %d 8-byte stores\n\n" total;

  let tolerated = ref 0 and atomic = ref 0 and recovered = ref 0 in
  for k = 0 to total do
    (* Clone the device, crash before the (k+1)-th store, and lose
       everything that was not explicitly flushed (plus random
       evictions). *)
    let c = Arena.clone arena in
    let t = Tree.open_existing ~node_bytes:128 c in
    Arena.set_crash_plan c (Arena.After_stores (Arena.store_count c + k));
    (try Tree.insert t ~key:25 ~value:(value_of 25) with Arena.Crashed -> ());
    Arena.power_fail c (Storelog.Random_eviction (Prng.create k));

    (* Reattach with NO recovery: lock-free readers must still see
       every committed key. *)
    let t = Tree.open_existing ~node_bytes:128 c in
    let committed_ok =
      List.for_all
        (fun key -> Tree.search t key = Some (value_of key))
        [ 10; 20; 30; 40 ]
    in
    if committed_ok then incr tolerated;
    (* The in-flight key is all-or-nothing. *)
    (match Tree.search t 25 with
    | None -> incr atomic
    | Some v when v = value_of 25 -> incr atomic
    | Some _ -> ());
    (* Lazy recovery: ordinary writers repair as a side effect. *)
    Tree.recover ~lazy_:true t;
    Tree.insert t ~key:35 ~value:(value_of 35);
    ignore (Tree.delete t 35);
    Tree.recover t;
    (* eager pass to finish dangling structure for the check *)
    if Invariant.check t = [] then incr recovered
  done;

  Printf.printf "crash points enumerated : %d\n" (total + 1);
  Printf.printf "readers tolerated state : %d / %d (no recovery ran)\n" !tolerated (total + 1);
  Printf.printf "in-flight key atomic    : %d / %d\n" !atomic (total + 1);
  Printf.printf "invariants after repair : %d / %d\n" !recovered (total + 1);
  if !tolerated = total + 1 && !atomic = total + 1 && !recovered = total + 1 then
    print_endline "\nevery transient state was endurable — no logging needed"
  else begin
    print_endline "\nUNEXPECTED: some state was not tolerated";
    exit 1
  end
