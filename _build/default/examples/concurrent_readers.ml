(* Lock-free search under concurrent writers (paper Section IV).

   The deterministic multicore simulator preempts at every PM access
   (quantum = 1ns), so readers get suspended in the middle of node
   scans while a writer's FAST shifts move keys under them — the exact
   scenario of the paper's Figure 1 walk-through — and still return
   correct results, because every intermediate store leaves a state
   the duplicate-pointer rule tolerates.

   Run with: dune exec examples/concurrent_readers.exe *)

module Arena = Ff_pmem.Arena
module Mcsim = Ff_mcsim.Mcsim
module Locks = Ff_index.Locks
module Tree = Ff_fastfair.Tree
module Prng = Ff_util.Prng

let value_of k = (2 * k) + 1

let () =
  let arena = Arena.create ~words:(1 lsl 21) () in
  let tree = Tree.create ~node_bytes:128 ~lock_mode:Locks.Sim arena in

  (* Preload (inside the simulator: the tree uses simulated locks). *)
  ignore
    (Mcsim.run ~arena
       [|
         (fun _ ->
           for k = 1 to 1000 do
             Tree.insert tree ~key:(2 * k) ~value:(value_of (2 * k))
           done);
       |]);
  print_endline "preloaded 1000 even keys";

  (* 6 readers hammer the even keys while 2 writers insert and delete
     odd keys, shifting records inside the same nodes. *)
  let anomalies = ref 0 and reads = ref 0 in
  let reader tid =
    let rng = Prng.create tid in
    for _ = 1 to 2000 do
      let k = 2 * (1 + Prng.int rng 1000) in
      incr reads;
      match Tree.search tree k with
      | Some v when v = value_of k -> ()
      | Some _ | None -> incr anomalies
    done
  in
  let writer tid =
    let rng = Prng.create (1000 + tid) in
    for _ = 1 to 800 do
      let k = (2 * (1 + Prng.int rng 1000)) + 1 in
      if Prng.bool rng then Tree.insert tree ~key:k ~value:(value_of k)
      else ignore (Tree.delete tree k)
    done
  in
  let outcome =
    Mcsim.run ~cores:8 ~quantum_ns:1 ~arena
      [| reader; reader; reader; writer; reader; writer; reader; reader |]
  in
  Printf.printf "%d lock-free reads against 1600 concurrent writes: %d anomalies\n"
    !reads !anomalies;
  Printf.printf "simulated makespan: %.2f ms on 8 cores (%d scheduler events)\n"
    (float_of_int outcome.Mcsim.makespan_ns /. 1e6)
    outcome.Mcsim.events;
  Ff_fastfair.Invariant.check_exn tree;
  print_endline "final tree invariants OK";
  if !anomalies > 0 then exit 1;

  (* Scalability: the same search workload with 1..16 threads.  Reads
     never block, so throughput scales with cores. *)
  print_endline "\nlock-free read scaling (simulated 16-core machine):";
  List.iter
    (fun threads ->
      let per = 4000 / threads in
      let body tid =
        let rng = Prng.create (77 + tid) in
        for _ = 1 to per do
          ignore (Tree.search tree (2 * (1 + Prng.int rng 1000)))
        done
      in
      let o = Mcsim.run ~cores:16 ~arena (Array.init threads (fun _ -> body)) in
      Printf.printf "  %2d threads: %7.0f Kops/s\n" threads
        (float_of_int (per * threads) /. (float_of_int o.Mcsim.makespan_ns /. 1e9) /. 1000.))
    [ 1; 2; 4; 8; 16 ]
