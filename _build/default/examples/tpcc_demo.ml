(* TPC-C-style OLTP over persistent indexes (paper Section 5.6).

   Runs the W1 mix (NewOrder 34%, Payment 43%, OrderStatus 5%,
   Delivery 4%, StockLevel 14%) over FAST+FAIR, wB+-tree and FP-tree
   on the same simulated PM device and compares throughput.

   Run with: dune exec examples/tpcc_demo.exe *)

module Arena = Ff_pmem.Arena
module Config = Ff_pmem.Config
module Stats = Ff_pmem.Stats
module Tpcc = Ff_tpcc.Tpcc

let run_on name build =
  let config = Config.pm ~read_ns:300 ~write_ns:300 () in
  let arena = Arena.create ~config ~words:(6 * 1024 * 1024) () in
  let index = build arena in
  let t = Tpcc.load ~arena index Tpcc.default_config in
  Arena.reset_stats arena;
  let txns = 2000 in
  Tpcc.run t Tpcc.w1 ~txns;
  let s = Arena.total_stats arena in
  let secs = float_of_int (Stats.total_ns s) /. 1e9 in
  Printf.printf
    "%-10s %6.1f Ktxn/s | %7d orders | %9d flushes | checksum %x\n"
    name
    (float_of_int txns /. secs /. 1000.)
    (Tpcc.orders_created t) s.Stats.flushes (Tpcc.checksum t land 0xffffff)

let () =
  print_endline "TPC-C W1 mix, 2000 transactions, PM latency 300/300 ns:";
  run_on "fast+fair" (fun a -> Ff_fastfair.Tree.ops (Ff_fastfair.Tree.create a));
  run_on "wb+tree" (fun a -> Ff_wbtree.Wbtree.ops (Ff_wbtree.Wbtree.create a));
  run_on "fp-tree" (fun a -> Ff_fptree.Fptree.ops (Ff_fptree.Fptree.create a));
  print_endline "\n(identical checksums = identical logical reads across indexes)"
