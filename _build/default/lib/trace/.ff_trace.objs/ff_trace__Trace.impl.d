lib/trace/trace.ml: Array Ff_mcsim Ff_pmem Hashtbl Metrics Stdlib
