lib/trace/perfetto.mli: Json Trace
