lib/trace/trace.mli: Ff_pmem Metrics
