lib/trace/json.ml: Buffer Char Float List Printf String
