lib/trace/metrics.ml: Ff_util Format Hashtbl Json List Option Stdlib
