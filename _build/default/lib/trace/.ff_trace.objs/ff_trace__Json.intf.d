lib/trace/json.mli: Buffer
