lib/trace/perfetto.ml: Buffer Fun Hashtbl Json List Printf Trace
