lib/trace/metrics.mli: Ff_util Format Json
