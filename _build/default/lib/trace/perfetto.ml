(* ts is microseconds in the trace-event format; simulated ns keep
   sub-us precision as fractions. *)
let us_of_ns ns = float_of_int ns /. 1000.

let base ~name ~ph ~tid ~ts rest =
  Json.Obj
    ([
       ("name", Json.Str name);
       ("ph", Json.Str ph);
       ("pid", Json.Int 0);
       ("tid", Json.Int tid);
       ("ts", Json.Float (us_of_ns ts));
     ]
    @ rest)

let args kvs = [ ("args", Json.Obj kvs) ]
let inst_scope = ("s", Json.Str "t")

let event_json ~tid ~ts (ev : Trace.event) =
  match ev with
  | Trace.Pm_store { addr } ->
      base ~name:"store" ~ph:"i" ~tid ~ts (inst_scope :: args [ ("addr", Json.Int addr) ])
  | Trace.Pm_flush { addr } ->
      base ~name:"flush" ~ph:"i" ~tid ~ts (inst_scope :: args [ ("addr", Json.Int addr) ])
  | Trace.Pm_fence -> base ~name:"fence" ~ph:"i" ~tid ~ts [ inst_scope ]
  | Trace.Pm_alloc { addr; words } ->
      base ~name:"alloc" ~ph:"i" ~tid ~ts
        (inst_scope :: args [ ("addr", Json.Int addr); ("words", Json.Int words) ])
  | Trace.Pm_free { addr; words } ->
      base ~name:"free" ~ph:"i" ~tid ~ts
        (inst_scope :: args [ ("addr", Json.Int addr); ("words", Json.Int words) ])
  | Trace.Span_b { name; detail } ->
      base ~name ~ph:"B" ~tid ~ts (args [ ("v", Json.Int detail) ])
  | Trace.Span_e { name } -> base ~name ~ph:"E" ~tid ~ts []
  | Trace.Inst { name; detail } ->
      base ~name ~ph:"i" ~tid ~ts (inst_scope :: args [ ("v", Json.Int detail) ])

let to_json tr =
  let body = ref [] in
  let used = Hashtbl.create 8 in
  Trace.iter_events tr (fun ~tid ~ts ev ->
      Hashtbl.replace used tid ();
      body := event_json ~tid ~ts ev :: !body);
  (* Name only the tracks that carry events so Perfetto sorts and
     labels them without rows of empty lanes. *)
  let events = ref [] in
  for tid = Trace.threads tr - 1 downto 0 do
    if Hashtbl.mem used tid then
      events :=
        Json.Obj
          [
            ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("pid", Json.Int 0);
            ("tid", Json.Int tid);
            ("args", Json.Obj [ ("name", Json.Str (Printf.sprintf "sim-thread-%d" tid)) ]);
          ]
        :: !events
  done;
  Json.Obj
    [
      ("traceEvents", Json.Arr (!events @ List.rev !body));
      ("displayTimeUnit", Json.Str "ns");
      ( "otherData",
        Json.Obj
          [
            ("clock", Json.Str "simulated-ns");
            ("events", Json.Int (Trace.event_count tr));
            ("dropped", Json.Int (Trace.dropped_count tr));
          ] );
    ]

let to_string tr = Json.to_string (to_json tr)

let write_file tr path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      Json.to_buffer buf (to_json tr);
      Buffer.output_buffer oc buf)
