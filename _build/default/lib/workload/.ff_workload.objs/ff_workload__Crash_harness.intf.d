lib/workload/crash_harness.mli: Ff_index Ff_pmem
