lib/workload/crash_harness.ml: Ff_index Ff_pmem Ff_util
