lib/workload/workload.ml: Array Ff_index Ff_util Hashtbl
