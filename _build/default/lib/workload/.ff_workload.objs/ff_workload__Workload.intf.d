lib/workload/workload.mli: Ff_index Ff_util
