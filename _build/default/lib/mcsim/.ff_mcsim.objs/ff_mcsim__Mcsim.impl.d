lib/mcsim/mcsim.ml: Array Effect Ff_pmem Ff_util Option Queue
