lib/mcsim/mcsim.mli: Ff_pmem Ff_util
