(** WORT baseline (Lee et al., FAST'17): write-optimal radix tree.

    A path-compressed radix tree with 4-bit span over 60-bit keys.
    The deterministic structure means an ordinary insert needs no
    rebalancing: write the leaf cell, flush it, then publish with one
    failure-atomic 8-byte child-slot store — very few flushes, which
    is why WORT wins the high-write-latency regime of Figure 5(c).
    Every tree level is a dependent pointer chase into a random cache
    line, so searches have no memory-level parallelism and range
    queries are slow — Figures 4 and 5(b).

    Deviation from the original: a prefix-mismatch split copies the
    old node instead of editing its packed header in place, so the
    whole split commits with a single pointer store and needs no
    depth-based recovery procedure (see DESIGN.md).  Structural state
    is consistent after every store; {!recover} is a no-op. *)

type t

val create : ?root_slot:int -> Ff_pmem.Arena.t -> t
val open_existing : ?root_slot:int -> Ff_pmem.Arena.t -> t

val insert : t -> key:int -> value:int -> unit
(** Keys must lie in [\[1, 2^60)]. *)

val search : t -> int -> int option
val delete : t -> int -> bool
val range : t -> lo:int -> hi:int -> (int -> int -> unit) -> unit
val recover : t -> unit
val ops : t -> Ff_index.Intf.ops
