lib/wort/wort.mli: Ff_index Ff_pmem
