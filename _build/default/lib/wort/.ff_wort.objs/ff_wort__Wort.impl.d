lib/wort/wort.ml: Ff_index Ff_pmem
