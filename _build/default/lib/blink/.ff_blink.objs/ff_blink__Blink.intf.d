lib/blink/blink.mli: Ff_index Ff_pmem
