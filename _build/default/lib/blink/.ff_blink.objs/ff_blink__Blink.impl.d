lib/blink/blink.ml: Array Ff_index Ff_pmem
