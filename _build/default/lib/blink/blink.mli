(** Volatile B-link tree (Lehman & Yao) — the paper's concurrency
    reference in Figure 7.

    Purely DRAM-resident: nodes are OCaml records, and time is charged
    to the accounting arena as CPU work per visited node/probe.  Every
    visit — including reads — takes the node's mutex (the paper's
    implementation uses std::mutex, Section 5.7), which is what the
    paper contrasts against FAST+FAIR's lock-free search: under the
    multicore simulator the shared root lock becomes the scalability
    bottleneck.  Not failure-atomic by design (it is the "not a
    persistent index" baseline). *)

type t

val create : ?fanout:int -> ?lock_mode:Ff_index.Locks.mode -> Ff_pmem.Arena.t -> t
(** The arena is used only for cost accounting. *)

val insert : t -> key:int -> value:int -> unit
val search : t -> int -> int option
val delete : t -> int -> bool
val range : t -> lo:int -> hi:int -> (int -> int -> unit) -> unit
val ops : t -> Ff_index.Intf.ops
val height : t -> int
