lib/index/locks.mli:
