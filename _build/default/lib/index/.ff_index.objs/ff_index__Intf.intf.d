lib/index/intf.mli:
