lib/index/intf.ml: List
