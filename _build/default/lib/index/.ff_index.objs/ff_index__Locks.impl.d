lib/index/locks.ml: Ff_mcsim Hashtbl
