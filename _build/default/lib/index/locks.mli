(** Lock abstraction so the same index code runs both single-threaded
    (no-op locks, used by the latency experiments) and inside the
    multicore simulator (simulated mutexes that block in simulated
    time, used by the Figure 7 scalability experiments). *)

type mode =
  | Single  (** no-op locks for single-threaded runs *)
  | Sim     (** {!Ff_mcsim.Mcsim} locks; only valid inside [Mcsim.run] *)

type mutex

val make_mutex : mode -> mutex
val lock : mutex -> unit
val unlock : mutex -> unit

val try_lock : mutex -> bool
(** Always succeeds in [Single] mode. *)

type rwlock

val make_rwlock : mode -> rwlock
val rd_lock : rwlock -> unit
val rd_unlock : rwlock -> unit
val wr_lock : rwlock -> unit
val wr_unlock : rwlock -> unit

(** Lazily-created lock tables keyed by node address. *)

module Table : sig
  type t

  val create : mode -> t
  val mode : t -> mode
  val mutex_of : t -> int -> mutex
  val rwlock_of : t -> int -> rwlock
end
