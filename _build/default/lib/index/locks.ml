type mode = Single | Sim

type mutex = No_mutex | Sim_mutex of Ff_mcsim.Mcsim.mutex

let make_mutex = function
  | Single -> No_mutex
  | Sim -> Sim_mutex (Ff_mcsim.Mcsim.create_mutex ())

let lock = function No_mutex -> () | Sim_mutex m -> Ff_mcsim.Mcsim.lock m
let unlock = function No_mutex -> () | Sim_mutex m -> Ff_mcsim.Mcsim.unlock m
let try_lock = function No_mutex -> true | Sim_mutex m -> Ff_mcsim.Mcsim.try_lock m

type rwlock = No_rwlock | Sim_rwlock of Ff_mcsim.Mcsim.rwlock

let make_rwlock = function
  | Single -> No_rwlock
  | Sim -> Sim_rwlock (Ff_mcsim.Mcsim.create_rwlock ())

let rd_lock = function No_rwlock -> () | Sim_rwlock l -> Ff_mcsim.Mcsim.rd_lock l
let rd_unlock = function No_rwlock -> () | Sim_rwlock l -> Ff_mcsim.Mcsim.rd_unlock l
let wr_lock = function No_rwlock -> () | Sim_rwlock l -> Ff_mcsim.Mcsim.wr_lock l
let wr_unlock = function No_rwlock -> () | Sim_rwlock l -> Ff_mcsim.Mcsim.wr_unlock l

module Table = struct
  type nonrec t = {
    mode : mode;
    mutexes : (int, mutex) Hashtbl.t;
    rwlocks : (int, rwlock) Hashtbl.t;
  }

  let create mode =
    { mode; mutexes = Hashtbl.create 1024; rwlocks = Hashtbl.create 1024 }

  let mode t = t.mode

  let mutex_of t addr =
    match Hashtbl.find_opt t.mutexes addr with
    | Some m -> m
    | None ->
        let m = make_mutex t.mode in
        Hashtbl.add t.mutexes addr m;
        m

  let rwlock_of t addr =
    match Hashtbl.find_opt t.rwlocks addr with
    | Some l -> l
    | None ->
        let l = make_rwlock t.mode in
        Hashtbl.add t.rwlocks addr l;
        l
end
