type ops = {
  name : string;
  insert : int -> int -> unit;
  search : int -> int option;
  delete : int -> bool;
  range : int -> int -> (int -> int -> unit) -> unit;
  recover : unit -> unit;
}

let range_count t lo hi =
  let n = ref 0 in
  t.range lo hi (fun _ _ -> incr n);
  !n

let range_list t lo hi =
  let acc = ref [] in
  t.range lo hi (fun k v -> acc := (k, v) :: !acc);
  List.rev !acc
