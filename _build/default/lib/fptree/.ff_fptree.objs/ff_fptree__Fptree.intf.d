lib/fptree/fptree.mli: Ff_index Ff_pmem
