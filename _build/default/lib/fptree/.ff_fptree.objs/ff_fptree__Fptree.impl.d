lib/fptree/fptree.ml: Array Ff_index Ff_pmem Hashtbl List Option
