module Arena = Ff_pmem.Arena

type t = { node_words : int; capacity : int }

let header_words = 8

let off_level = 0
let off_sibling = 1
let off_switch = 2
let off_leftmost = 3
let off_count = 4
let off_low = 5

let make ~node_bytes =
  if node_bytes < 128 || node_bytes land (node_bytes - 1) <> 0 then
    invalid_arg "Layout.make: node_bytes must be a power of two >= 128";
  let node_words = node_bytes / 8 in
  { node_words; capacity = (node_words - header_words) / 2 }

let key_off i = header_words + (2 * i)
let ptr_off i = header_words + (2 * i) + 1

type node = int

let level a n = Arena.read a (n + off_level)
let sibling a n = Arena.read a (n + off_sibling)
let switch a n = Arena.read a (n + off_switch)
let leftmost a n = Arena.read a (n + off_leftmost)
let count_hint a n = Arena.read a (n + off_count)
let low a n = Arena.read a (n + off_low)
let key a n i = Arena.read a (n + key_off i)
let ptr a n i = Arena.read a (n + ptr_off i)

let set_level a n v = Arena.write a (n + off_level) v
let set_sibling a n v = Arena.write a (n + off_sibling) v
let set_switch a n v = Arena.write a (n + off_switch) v
let set_leftmost a n v = Arena.write a (n + off_leftmost) v
let set_count_hint a n v = Arena.write a (n + off_count) v
let set_low a n v = Arena.write a (n + off_low) v
let set_key a n i v = Arena.write a (n + key_off i) v
let set_ptr a n i v = Arena.write a (n + ptr_off i) v

let is_leaf a n = level a n = 0

let left_ptr_of a n i = if i = 0 then leftmost a n else ptr a n (i - 1)

let record_line_boundary _layout i =
  (* records[i].ptr is at word 9+2i; it is the last word of its line
     when (9 + 2i) mod 8 = 7, i.e. i mod 4 = 3. *)
  (ptr_off i) mod Arena.words_per_line = Arena.words_per_line - 1
