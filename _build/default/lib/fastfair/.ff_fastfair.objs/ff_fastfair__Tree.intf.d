lib/fastfair/tree.mli: Ff_index Ff_pmem Ff_trace Layout Node
