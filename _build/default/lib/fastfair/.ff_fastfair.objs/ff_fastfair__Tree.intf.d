lib/fastfair/tree.mli: Ff_index Ff_pmem Layout Node
