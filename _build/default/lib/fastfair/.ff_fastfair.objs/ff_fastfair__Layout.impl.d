lib/fastfair/layout.ml: Ff_pmem
