lib/fastfair/compact.mli: Layout Tree
