lib/fastfair/bulk.mli: Ff_pmem Tree
