lib/fastfair/cursor.mli: Tree
