lib/fastfair/compact.ml: Ff_pmem Layout Node Tree
