lib/fastfair/bulk.ml: Array Ff_pmem Hashtbl Layout List Node Tree
