lib/fastfair/invariant.mli: Tree
