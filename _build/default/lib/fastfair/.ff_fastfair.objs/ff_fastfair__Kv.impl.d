lib/fastfair/kv.ml: Ff_index Ff_pmem Tree
