lib/fastfair/layout.mli: Ff_pmem
