lib/fastfair/invariant.ml: Ff_pmem Hashtbl Layout List Node Printf String Tree
