lib/fastfair/kv.mli: Ff_index Ff_pmem Tree
