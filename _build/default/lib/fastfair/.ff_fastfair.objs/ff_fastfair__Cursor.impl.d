lib/fastfair/cursor.ml: Ff_pmem Layout Node Tree
