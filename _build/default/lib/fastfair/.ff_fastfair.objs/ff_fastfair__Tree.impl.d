lib/fastfair/tree.ml: Ff_index Ff_pmem Hashtbl Layout List Node Printf String
