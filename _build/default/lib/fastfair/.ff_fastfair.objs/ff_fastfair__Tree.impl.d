lib/fastfair/tree.ml: Ff_index Ff_pmem Ff_trace Hashtbl Layout List Node Printf String
