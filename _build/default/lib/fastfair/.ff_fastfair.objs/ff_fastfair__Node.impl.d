lib/fastfair/node.ml: Array Ff_pmem Ff_trace Layout List
