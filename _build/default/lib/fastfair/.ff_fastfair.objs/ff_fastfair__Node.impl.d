lib/fastfair/node.ml: Array Ff_pmem Layout List
