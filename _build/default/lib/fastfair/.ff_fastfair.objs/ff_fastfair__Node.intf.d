lib/fastfair/node.mli: Ff_pmem Ff_trace Layout
