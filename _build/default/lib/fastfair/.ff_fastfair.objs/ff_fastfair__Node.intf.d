lib/fastfair/node.mli: Ff_pmem Layout
