module Arena = Ff_pmem.Arena
module L = Layout

type t = { tree : Tree.t; mutable node : int; mutable last : int }

let to_leaf tree key =
  let a = Tree.arena tree in
  let l = Tree.layout tree in
  let rec go n =
    if L.is_leaf a n then n
    else go (Node.find_child a l n ~mode:Node.Linear key)
  in
  go (Tree.root tree)

let create tree ~lo = { tree; node = to_leaf tree lo; last = lo - 1 }

let seek c key =
  c.node <- to_leaf c.tree key;
  c.last <- key - 1

(* Smallest valid key > c.last in the current node. *)
let scan_node c =
  let a = Tree.arena c.tree and l = Tree.layout c.tree in
  let cap = l.L.capacity in
  let best = ref None in
  let rec go i prev_raw =
    if i < cap then begin
      let p = L.ptr a c.node i in
      if p <> 0 then begin
        (if p <> prev_raw then begin
           let k = L.key a c.node i in
           match !best with
           | Some (bk, _) when bk <= k -> ()
           | Some _ | None -> if k > c.last then best := Some (k, p)
         end);
        go (i + 1) p
      end
    end
  in
  go 0 (L.leftmost a c.node);
  !best

let rec next c =
  if c.node = 0 then None
  else
    match scan_node c with
    | Some (k, v) ->
        c.last <- k;
        Some (k, v)
    | None ->
        c.node <- L.sibling (Tree.arena c.tree) c.node;
        next c

let fold tree ~lo ~hi ~init f =
  let c = create tree ~lo in
  let rec go acc =
    match next c with
    | Some (k, v) when k <= hi -> go (f acc k v)
    | Some _ | None -> acc
  in
  go init
