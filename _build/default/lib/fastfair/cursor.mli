(** Resumable ascending iteration over the leaf chain.

    A cursor holds only a current leaf address and the last key
    delivered, so it stays valid across concurrent FAST shifts and
    FAIR splits: each {!next} re-scans the current node for the
    smallest valid key greater than the last one (the same
    deduplicating discipline as {!Tree.range}), following sibling
    pointers as nodes are exhausted.  Like all lock-free reads it
    observes read-uncommitted state (paper Section 4.1). *)

type t

val create : Tree.t -> lo:int -> t
(** Position before the smallest key >= [lo]. *)

val next : t -> (int * int) option
(** The next (key, value) in ascending order, or [None] at the end. *)

val seek : t -> int -> unit
(** Reposition before the smallest key >= the argument. *)

val fold : Tree.t -> lo:int -> hi:int -> init:'a -> ('a -> int -> int -> 'a) -> 'a
(** Convenience fold over [\[lo, hi\]] built on a cursor. *)
