module Arena = Ff_pmem.Arena
module L = Layout

let merge_threshold l = max 1 (l.L.capacity / 4)

let leftmost_of_level t level =
  let a = Tree.arena t in
  let rec go n = if L.level a n > level then go (L.leftmost a n) else n in
  go (Tree.root t)

(* Position of the entry routing to [child] within [parent], matching
   by pointer (robust against separator/low-key drift). *)
let entry_position_of_child a l parent child =
  let rec go i prev_raw =
    if i >= l.L.capacity then None
    else begin
      let p = L.ptr a parent i in
      if p = 0 then None
      else if p <> prev_raw && p = child then Some i
      else go (i + 1) p
    end
  in
  go 0 (L.leftmost a parent)

(* FAST-delete the separator that routes to [child]; all traffic then
   reaches it through the left sibling's chain.  Returns false if the
   child was dangling (no separator to remove). *)
let remove_parent_separator t child level =
  let a = Tree.arena t and l = Tree.layout t in
  let rec walk parent =
    if parent = 0 then false
    else
      match entry_position_of_child a l parent child with
      | Some pos ->
          Node.remove_at a l parent pos;
          true
      | None -> walk (L.sibling a parent)
  in
  if L.level a (Tree.root t) <= level then false
  else walk (leftmost_of_level t (level + 1))

(* Merge the donor [b] into its left sibling [a_node]; both at [level],
   [b = sibling a_node].  The caller has checked capacities and that
   [b]'s separator was removed (a donor that is its parent's leftmost
   child is never merged: the parent's leftmost pointer would dangle —
   standard B-trees merge only within one parent). *)
let merge_into t a_node b level =
  let a = Tree.arena t and l = Tree.layout t in
  (* An internal donor's leftmost child needs its own entry. *)
  if level > 0 then begin
    let lm = L.leftmost a b in
    Node.insert_nonfull a l a_node ~key:(L.low a b) ~value:lm ~mode:Node.Linear
  end;
  (* Migrate entries: commit in the left node first, then retire the
     donor's copy; the transient duplicate carries the same value. *)
  let rec drain () =
    match Node.first_entry a l b with
    | Some (k, v) ->
        Node.insert_nonfull a l a_node ~key:k ~value:v ~mode:Node.Linear;
        ignore (Node.delete a l b k);
        drain ()
    | None -> ()
  in
  drain ();
  (* Unlink with one failure-atomic store, then reclaim. *)
  L.set_sibling a a_node (L.sibling a b);
  Arena.flush a (a_node + L.off_sibling);
  Arena.free a b l.L.node_words

let compact t =
  let a = Tree.arena t and l = Tree.layout t in
  let freed = ref 0 in
  let top = L.level a (Tree.root t) in
  for level = 0 to top do
    let node = ref (leftmost_of_level t level) in
    while !node <> 0 do
      let b = L.sibling a !node in
      if b <> 0 then begin
        let ca = Node.count a l !node and cb = Node.count a l b in
        let budget = l.L.capacity - 1 - if level > 0 then 1 else 0 in
        if
          (ca <= merge_threshold l || cb <= merge_threshold l)
          && ca + cb <= budget
          && remove_parent_separator t b level
        then begin
          merge_into t !node b level;
          incr freed
          (* stay on this node: its new sibling may merge too *)
        end
        else node := b
      end
      else node := 0
    done
  done;
  (* Collapse empty internal roots: a failure-atomic root-slot store
     per level of shrinkage. *)
  let rec collapse () =
    let rt = Tree.root t in
    if L.level a rt > 0 && Node.count a l rt = 0 then begin
      let only_child = L.leftmost a rt in
      Arena.root_set a (Tree.root_slot t) only_child;
      Arena.free a rt l.L.node_words;
      incr freed;
      collapse ()
    end
  in
  collapse ();
  !freed
