(** Convenience key-value layer without the pointer-uniqueness
    contract.

    {!Tree} stores caller-provided values directly as the paper's
    "record pointers", which must be unique and nonzero.  [Kv] lifts
    that restriction the way the paper's system would be deployed: each
    value lives in its own persistent cell (written and flushed before
    the key is committed), and the tree indexes the cell's unique
    address.  Updates overwrite the cell with one failure-atomic 8-byte
    store; deletes recycle the cell.

    Cost: one extra PM cell write + flush per first insert of a key,
    and one dependent cell read per lookup — the price of arbitrary
    (including duplicate or zero) values. *)

type t

val create : ?node_bytes:int -> ?root_slot:int -> Ff_pmem.Arena.t -> t
val open_existing : ?node_bytes:int -> ?root_slot:int -> Ff_pmem.Arena.t -> t

val put : t -> key:int -> value:int -> unit
(** Any value, including 0 and duplicates across keys. *)

val get : t -> int -> int option
val delete : t -> int -> bool
val range : t -> lo:int -> hi:int -> (int -> int -> unit) -> unit
val recover : ?lazy_:bool -> t -> unit
val tree : t -> Tree.t
val ops : t -> Ff_index.Intf.ops
