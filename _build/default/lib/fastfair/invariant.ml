module Arena = Ff_pmem.Arena
module L = Layout

let peek = Arena.peek

let node_violations a l n acc =
  let cap = l.L.capacity in
  let leftmost = peek a (n + L.off_leftmost) in
  let err fmt = Printf.ksprintf (fun s -> Printf.sprintf "node %d: %s" n s) fmt in
  let acc = ref acc in
  (* Zero-terminated record array. *)
  let cnt = ref cap in
  (try
     for i = 0 to cap - 1 do
       if peek a (n + L.ptr_off i) = 0 then begin
         cnt := i;
         raise Exit
       end
     done
   with Exit -> ());
  for i = !cnt to cap - 1 do
    if peek a (n + L.ptr_off i) <> 0 then
      acc := err "nonzero ptr at slot %d beyond terminator %d" i !cnt :: !acc
  done;
  (* No garbage, strictly ascending keys. *)
  let prev_raw = ref leftmost in
  let prev_key = ref min_int in
  for i = 0 to !cnt - 1 do
    let p = peek a (n + L.ptr_off i) in
    let k = peek a (n + L.key_off i) in
    if p = !prev_raw then acc := err "duplicate-pointer garbage at slot %d" i :: !acc
    else begin
      if k <= !prev_key then
        acc := err "keys not strictly ascending at slot %d (%d <= %d)" i k !prev_key :: !acc;
      prev_key := k
    end;
    prev_raw := p
  done;
  let hint = peek a (n + L.off_count) in
  if hint <> !cnt then acc := err "count hint %d <> count %d" hint !cnt :: !acc;
  (* Leaf anchor. *)
  if peek a (n + L.off_level) = 0 && leftmost <> n then
    acc := err "leaf anchor is %d, expected self" leftmost :: !acc;
  !acc

let leftmost_of_level t level =
  let a = Tree.arena t in
  let rec go n = if peek a (n + L.off_level) > level then go (peek a (n + L.off_leftmost)) else n in
  go (Tree.root t)

let chain t first =
  let a = Tree.arena t in
  let rec go n acc = if n = 0 then List.rev acc else go (peek a (n + L.off_sibling)) (n :: acc) in
  go first []

let check t =
  let a = Tree.arena t and l = Tree.layout t in
  let acc = ref [] in
  let rt = Tree.root t in
  let top = peek a (rt + L.off_level) in
  if peek a (rt + L.off_sibling) <> 0 then
    acc := Printf.sprintf "root %d has a sibling (uncommitted root growth)" rt :: !acc;
  for level = top downto 0 do
    let ch = chain t (leftmost_of_level t level) in
    (* Node-local invariants + level consistency. *)
    List.iter
      (fun n ->
        acc := node_violations a l n !acc;
        let lv = peek a (n + L.off_level) in
        if lv <> level then
          acc := Printf.sprintf "node %d: level %d on chain of level %d" n lv level :: !acc)
      ch;
    (* Chain keys strictly ascending across nodes. *)
    let prev = ref min_int in
    List.iter
      (fun n ->
        List.iter
          (fun (k, _) ->
            if k <= !prev then
              acc :=
                Printf.sprintf "level %d: chain keys not ascending at node %d (key %d)" level n k
                :: !acc;
            prev := k)
          (Node.entries_debug a l n))
      ch;
    (* Parent attachment and routing. *)
    if level < top then begin
      let parents = chain t (leftmost_of_level t (level + 1)) in
      let referenced = Hashtbl.create 64 in
      List.iter
        (fun p ->
          let lm = peek a (p + L.off_leftmost) in
          Hashtbl.replace referenced lm min_int;
          List.iter
            (fun (k, c) ->
              Hashtbl.replace referenced c k;
              if peek a (c + L.off_level) <> level then
                acc :=
                  Printf.sprintf "parent %d routes to node %d of wrong level" p c :: !acc)
            (Node.entries_debug a l p))
        parents;
      List.iter
        (fun n ->
          match Hashtbl.find_opt referenced n with
          | None ->
              acc := Printf.sprintf "node %d (level %d) not attached to any parent" n level :: !acc
          | Some sep ->
              let low = peek a (n + L.off_low) in
              if sep <> min_int && sep <> low then
                acc :=
                  Printf.sprintf "node %d separator %d <> low key %d" n sep low :: !acc;
              (match Node.entries_debug a l n with
              | (k0, _) :: _ when k0 < low ->
                  acc := Printf.sprintf "node %d first key %d < low %d" n k0 low :: !acc
              | _ -> ()))
        ch
    end
  done;
  (* Value uniqueness across leaves. *)
  let seen = Hashtbl.create 1024 in
  List.iter
    (fun n ->
      List.iter
        (fun (k, v) ->
          match Hashtbl.find_opt seen v with
          | Some k' ->
              acc := Printf.sprintf "value %d duplicated (keys %d and %d)" v k' k :: !acc
          | None -> Hashtbl.replace seen v k)
        (Node.entries_debug a l n))
    (chain t (leftmost_of_level t 0));
  List.rev !acc

let check_exn t =
  match check t with
  | [] -> ()
  | vs -> failwith (String.concat "\n" vs)

let keys t =
  let a = Tree.arena t and l = Tree.layout t in
  List.concat_map
    (fun n -> List.map fst (Node.entries_debug a l n))
    (chain t (leftmost_of_level t 0))
