(** Node-level FAST operations (paper Section 3.1, Algorithm 1) and
    lock-free node search (Section IV, Algorithm 3).

    Every mutation is a sequence of 8-byte stores ordered by
    [fence_if_not_tso] and cache-line-boundary flushes such that {b any
    store prefix} leaves the node in a state read operations tolerate:
    a key is valid only when its left-hand and right-hand pointers
    differ, so the transient duplicate created by a shift is invisible.

    Invariant maintained by all mutations: record slots at positions
    >= count have a zero pointer.  Right-to-left scans (used while a
    delete is shifting left) rely on it instead of a count hint, so
    they are safe even against arbitrarily stale post-crash metadata.

    Mutating entry points assume the caller holds the node's write
    lock (the tree layer's job); reads never lock. *)

type search_mode = Linear | Binary

val init :
  Ff_pmem.Arena.t -> Layout.t -> Layout.node -> level:int -> leftmost:int -> low:int -> unit
(** Initialize a freshly allocated node.  [leftmost = 0] on a leaf
    installs the self-anchor (see {!Layout}); [low] is the node's
    range lower bound (its split separator; 0 for a root).  Does not
    flush; callers flush the whole node before linking it. *)

val count : Ff_pmem.Arena.t -> Layout.t -> Layout.node -> int
(** Charged scan for the first zero pointer. *)

val first_entry : Ff_pmem.Arena.t -> Layout.t -> Layout.node -> (int * int) option
(** Leftmost valid (key, ptr), skipping transient garbage. *)

val last_entry : Ff_pmem.Arena.t -> Layout.t -> Layout.node -> (int * int) option

val find_exact : Ff_pmem.Arena.t -> Layout.t -> Layout.node -> int -> int option
(** Position of the valid entry holding exactly this key (writer-side;
    assumes the lock is held so no direction juggling is needed). *)

val search :
  Ff_pmem.Arena.t ->
  Layout.t ->
  Layout.node ->
  mode:search_mode ->
  ?tr:Ff_trace.Trace.t ->
  int ->
  int option
(** Lock-free search of one node (Algorithm 3): direction chosen by
    the switch counter's parity, validity by the duplicate-pointer
    rule, re-scan if the counter moved.  Returns the value.  [tr]
    records each duplicate-adjacent-pointer skip (the paper's
    tolerated transient inconsistency); defaults to the null tracer. *)

val find_child :
  Ff_pmem.Arena.t ->
  Layout.t ->
  Layout.node ->
  mode:search_mode ->
  ?tr:Ff_trace.Trace.t ->
  int ->
  int
(** Lock-free routing in an internal node: the child covering [key]
    ([leftmost_ptr] when the key precedes all entries).  [tr] as in
    {!search}. *)

val insert_nonfull :
  Ff_pmem.Arena.t -> Layout.t -> Layout.node -> key:int -> value:int -> mode:search_mode -> unit
(** FAST insertion (Algorithm 1).  Preconditions: lock held, key not
    present, [count < capacity].  Every intermediate store leaves the
    node endurable. *)

val remove_at : Ff_pmem.Arena.t -> Layout.t -> Layout.node -> int -> unit
(** FAST left-shift removal of the record at a position (used by
    delete and by lazy recovery's garbage compaction). *)

val delete : Ff_pmem.Arena.t -> Layout.t -> Layout.node -> int -> bool
(** Find and remove a key; flips the switch counter to odd first so
    concurrent lock-free readers scan right-to-left. *)

val update_value : Ff_pmem.Arena.t -> Layout.t -> Layout.node -> pos:int -> value:int -> unit
(** Atomic in-place value replacement (8-byte store + flush). *)

val truncate_from : Ff_pmem.Arena.t -> Layout.t -> Layout.node -> int -> unit
(** Zero record pointers from the top down to the given position
    inclusive — the FAIR split's in-place truncation of the donor
    node.  Every prefix of the store sequence only shrinks the node's
    visible suffix, so readers and crashes are safe. *)

val writer_fix : Ff_pmem.Arena.t -> Layout.t -> Layout.node -> bool
(** Lazy recovery (Section 4.2): compact duplicate-pointer garbage and
    left-of-equal-key stale entries left by a crash; refresh the count
    hint.  Returns true if anything was repaired.  Lock held. *)

val entries_debug : Ff_pmem.Arena.t -> Layout.t -> Layout.node -> (int * int) list
(** Uncharged dump of valid entries (tests and checkers). *)

val raw_records_debug : Ff_pmem.Arena.t -> Layout.t -> Layout.node -> (int * int) array
(** Uncharged dump of all record slots, including garbage. *)

(** {1 Negative control (ablation)} *)

val insert_nonfull_unordered :
  Ff_pmem.Arena.t -> Layout.t -> Layout.node -> key:int -> value:int -> unit
(** The naive shift the paper's discipline replaces: keys written
    before pointers, no fences, no boundary flushes, one final flush.
    Exists solely so tests and the [ablation] bench can demonstrate
    that without FAST's ordering, crash states and concurrent reads
    observe corruption.  Never use it for real data. *)
