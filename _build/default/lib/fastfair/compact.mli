(** Crash-safe in-place merging of underfull nodes — the rebalancing
    direction the paper sketches in Section 4.2 ("we check if the
    sibling node can be merged with its left node") but the released
    implementation never ships.  Deletes leave nodes underfull; this
    maintenance pass merges them with the same endurable-transient-
    inconsistency discipline as FAST/FAIR:

    + the donor's parent separator is FAST-deleted {e first}, so all
      top-down traffic routes through the left node and reaches the
      donor over the sibling chain;
    + entries migrate one at a time — FAST-insert into the left node
      (its commit makes the pair readable there), then FAST-delete
      from the donor; the transient duplicate is harmless because both
      copies carry the same value and scans deduplicate;
    + the donor is unlinked with a single failure-atomic sibling-
      pointer store, then freed;
    + an internal root left with zero separators is replaced by its
      only child (failure-atomic root-slot store), shrinking the tree.

    Every intermediate state is one the ordinary readers and the
    recovery pass already tolerate, so a crash anywhere mid-compaction
    needs no log.  The pass assumes a quiesced tree (no concurrent
    writers): it is a maintenance operation, not part of the
    concurrent protocol. *)

val merge_threshold : Layout.t -> int
(** Nodes with fewer entries are merge candidates (capacity / 4). *)

val compact : Tree.t -> int
(** Merge underfull sibling runs bottom-up and collapse the root while
    it has no separators.  Returns the number of nodes freed. *)
