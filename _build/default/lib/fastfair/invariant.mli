(** Structural invariant checker for quiesced trees (tests and the
    crash harness).  All reads are uncharged peeks.

    A "quiesced" tree has no in-flight operation and has been through
    recovery if it crashed; transient B-link states (untruncated
    donors, unattached siblings) are reported as violations. *)

val check : Tree.t -> string list
(** Returns human-readable violations; [[]] means the tree is sound:
    - per node: valid entries strictly ascending, no duplicate-pointer
      garbage, zero-terminated record array, accurate count hint;
    - leaf chain strictly ascending globally, all at level 0;
    - internal nodes: children at level-1, separators route correctly,
      every level-chain node attached to its parent;
    - values unique tree-wide. *)

val check_exn : Tree.t -> unit
(** @raise Failure with the violation list if any. *)

val keys : Tree.t -> int list
(** All keys in leaf-chain order (uncharged). *)
