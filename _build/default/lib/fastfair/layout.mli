(** Persistent node layout of the FAST+FAIR B+-tree.

    A node occupies [node_words] contiguous words (line-aligned).  The
    first cache line is the header; records follow as (key, ptr) word
    pairs, mirroring the paper's node of Figure 1:

    {v
    word 0  level           0 for leaves
    word 1  sibling_ptr     B-link right sibling (0 = none)
    word 2  switch_counter  even: last op was insert; odd: delete
    word 3  leftmost_ptr    internal: child for key < records[0].key
                            leaf: the node's own address (anchor)
    word 4  count           volatile entry-count hint (recomputed on
                            recovery; never relied upon for safety)
    word 5  low key         inclusive lower bound of the key range
    word 6..7               reserved
    word 8+2i   records[i].key
    word 9+2i   records[i].ptr   0 terminates the record array
    v}

    The {e anchor}: the paper's validity rule compares a key's left and
    right pointers, where the left pointer of records[0] is
    [leftmost_ptr].  The released C++ implementation leaves leaf
    [leftmost_ptr] NULL, so a left-shifted duplicate at position 0
    momentarily terminates scans.  We instead anchor leaf
    [leftmost_ptr] to the node's own address — a unique non-null
    pointer that can never equal a record pointer — so position-0
    duplicates are detected by exactly the same rule as everywhere
    else.  DESIGN.md discusses this deviation. *)

type t = private {
  node_words : int;  (** node size in words (node bytes / 8) *)
  capacity : int;    (** maximum number of records *)
}

val make : node_bytes:int -> t
(** [make ~node_bytes] for a power-of-two node size >= 128 bytes. *)

val header_words : int

(** {1 Field offsets} *)

val off_level : int
val off_sibling : int
val off_switch : int
val off_leftmost : int
val off_count : int
val off_low : int

val key_off : int -> int
(** Word offset of records[i].key within the node. *)

val ptr_off : int -> int
(** Word offset of records[i].ptr within the node. *)

(** {1 Charged field accessors} *)

type node = int
(** A node's base address in the arena. *)

val level : Ff_pmem.Arena.t -> node -> int
val sibling : Ff_pmem.Arena.t -> node -> int
val switch : Ff_pmem.Arena.t -> node -> int
val leftmost : Ff_pmem.Arena.t -> node -> int
val count_hint : Ff_pmem.Arena.t -> node -> int

val low : Ff_pmem.Arena.t -> node -> int
(** Inclusive lower bound of the node's key range: the separator it
    was split off with (0 for an original root).  A B-link node's
    range cannot be derived from its first entry — after an internal
    split the promoted separator is below the sibling's first key —
    so move-right decisions use this persisted bound.  The released
    C++ implementation compares the sibling's first key instead, which
    loses separator-gap keys under concurrency (see DESIGN.md). *)

val key : Ff_pmem.Arena.t -> node -> int -> int
val ptr : Ff_pmem.Arena.t -> node -> int -> int

val set_level : Ff_pmem.Arena.t -> node -> int -> unit
val set_sibling : Ff_pmem.Arena.t -> node -> int -> unit
val set_switch : Ff_pmem.Arena.t -> node -> int -> unit
val set_leftmost : Ff_pmem.Arena.t -> node -> int -> unit
val set_count_hint : Ff_pmem.Arena.t -> node -> int -> unit
val set_low : Ff_pmem.Arena.t -> node -> int -> unit
val set_key : Ff_pmem.Arena.t -> node -> int -> int -> unit
val set_ptr : Ff_pmem.Arena.t -> node -> int -> int -> unit

val is_leaf : Ff_pmem.Arena.t -> node -> bool

val left_ptr_of : Ff_pmem.Arena.t -> node -> int -> int
(** The "left-hand pointer" of records[i]: records[i-1].ptr, or
    [leftmost_ptr] for i = 0 (the validity-rule neighbour). *)

val record_line_boundary : t -> int -> bool
(** [record_line_boundary layout i] is true when records[i] ends a
    cache line, i.e. FAST must flush before touching records[i+1]. *)
