(** Bottom-up bulk loading.

    Builds the whole tree in private memory — leaves packed to a fill
    factor, internal levels stacked on top — flushes every node, and
    publishes with a single failure-atomic root-slot store, so a crash
    anywhere before that store leaves the previous tree (or an empty
    root slot) intact.  Orders of magnitude fewer shifts and flushes
    than incremental insertion (see the [ablation] bench target). *)

val load :
  ?node_bytes:int ->
  ?fill:float ->
  ?root_slot:int ->
  Ff_pmem.Arena.t ->
  (int * int) array ->
  Tree.t
(** [load arena pairs] with strictly positive unique keys and nonzero
    unique values; pairs need not be sorted.  [fill] (default 0.85) is
    the leaf/internal occupancy.  @raise Invalid_argument on duplicate
    keys or invalid values. *)
