module Arena = Ff_pmem.Arena
module L = Layout
module Trace = Ff_trace.Trace

type search_mode = Linear | Binary

let init a l n ~level ~leftmost ~low =
  ignore l;
  L.set_level a n level;
  L.set_sibling a n 0;
  L.set_switch a n 0;
  L.set_leftmost a n (if level = 0 && leftmost = 0 then n else leftmost);
  L.set_count_hint a n 0;
  L.set_low a n low

let count a l n =
  let cap = l.L.capacity in
  let rec go i = if i < cap && L.ptr a n i <> 0 then go (i + 1) else i in
  go 0

let first_entry a l n =
  let cap = l.L.capacity in
  let rec go i prev_raw =
    if i >= cap then None
    else begin
      let p = L.ptr a n i in
      if p = 0 then None
      else if p <> prev_raw then Some (L.key a n i, p)
      else go (i + 1) p
    end
  in
  go 0 (L.leftmost a n)

let last_entry a l n =
  let cap = l.L.capacity in
  let rec go i =
    if i < 0 then None
    else begin
      let p = L.ptr a n i in
      if p = 0 then go (i - 1)
      else if p <> L.left_ptr_of a n i then Some (L.key a n i, p)
      else go (i - 1)
    end
  in
  go (cap - 1)

let find_exact a l n key =
  let cap = l.L.capacity in
  let rec go i prev_raw =
    if i >= cap then None
    else begin
      let p = L.ptr a n i in
      if p = 0 then None
      else begin
        let k = L.key a n i in
        if p <> prev_raw then
          if k = key then Some i else if k > key then None else go (i + 1) p
        else go (i + 1) p
      end
    end
  in
  go 0 (L.leftmost a n)

(* ------------------------------------------------------------------ *)
(* Lock-free search (Algorithm 3)                                      *)
(* ------------------------------------------------------------------ *)

let scan_left_to_right a l n tr key =
  let cap = l.L.capacity in
  let rec go i prev_raw =
    if i >= cap then None
    else begin
      let p = L.ptr a n i in
      if p = 0 then None
      else begin
        let k = L.key a n i in
        if p <> prev_raw then
          if k = key then
            (* Double-read: the (key, ptr) pair is two separate words;
               re-checking the key rejects a half-shifted pair. *)
            if L.key a n i = key then Some p else go (i + 1) p
          else if k > key then None
          else go (i + 1) p
        else begin
          (* Duplicate adjacent pointers: a half-shifted record; the
             paper's endurable transient inconsistency, tolerated by
             skipping. *)
          Trace.dup_skip tr ~leaf:true;
          go (i + 1) p
        end
      end
    end
  in
  go 0 (L.leftmost a n)

let scan_right_to_left a l n tr key =
  let cap = l.L.capacity in
  let rec go i =
    if i < 0 then None
    else begin
      let p = L.ptr a n i in
      if p = 0 then go (i - 1)
      else if p <> L.left_ptr_of a n i then begin
        let k = L.key a n i in
        if k = key then if L.key a n i = key then Some p else go (i - 1)
        else if k < key then None
        else go (i - 1)
      end
      else begin
        Trace.dup_skip tr ~leaf:true;
        go (i - 1)
      end
    end
  in
  go (cap - 1)

let binary_search_leaf a l n key =
  let cfg = Arena.config a in
  let cnt = L.count_hint a n in
  ignore l;
  let rec go lo hi =
    if lo > hi then None
    else begin
      let mid = (lo + hi) / 2 in
      Arena.cpu_work a cfg.Ff_pmem.Config.branch_miss_ns;
      let k = L.key a n mid in
      if k = key then Some (L.ptr a n mid)
      else if k < key then go (mid + 1) hi
      else go lo (mid - 1)
    end
  in
  go 0 (cnt - 1)

let search a l n ~mode ?(tr = Trace.null) key =
  match mode with
  | Binary -> binary_search_leaf a l n key
  | Linear ->
      let rec attempt budget =
        let sw = L.switch a n in
        let ret =
          if sw land 1 = 0 then scan_left_to_right a l n tr key
          else scan_right_to_left a l n tr key
        in
        if L.switch a n <> sw && budget > 0 then attempt (budget - 1) else ret
      in
      attempt 64

(* ------------------------------------------------------------------ *)
(* Internal-node routing                                               *)
(* ------------------------------------------------------------------ *)

let route_left_to_right a l n tr key =
  let cap = l.L.capacity in
  let leftmost = L.leftmost a n in
  let rec go i prev_raw child =
    if i >= cap then child
    else begin
      let p = L.ptr a n i in
      if p = 0 then child
      else begin
        let k = L.key a n i in
        if p <> prev_raw then
          if k <= key then go (i + 1) p p else child
        else begin
          Trace.dup_skip tr ~leaf:false;
          go (i + 1) p child
        end
      end
    end
  in
  go 0 leftmost leftmost

let route_right_to_left a l n tr key =
  let cap = l.L.capacity in
  let rec go i =
    if i < 0 then L.leftmost a n
    else begin
      let p = L.ptr a n i in
      if p = 0 then go (i - 1)
      else if p <> L.left_ptr_of a n i then begin
        let k = L.key a n i in
        if k <= key then p else go (i - 1)
      end
      else begin
        Trace.dup_skip tr ~leaf:false;
        go (i - 1)
      end
    end
  in
  go (cap - 1)

let binary_route a l n key =
  let cfg = Arena.config a in
  ignore l;
  let cnt = L.count_hint a n in
  (* Largest i with key_i <= key; leftmost child if none. *)
  let rec go lo hi best =
    if lo > hi then best
    else begin
      let mid = (lo + hi) / 2 in
      Arena.cpu_work a cfg.Ff_pmem.Config.branch_miss_ns;
      let k = L.key a n mid in
      if k <= key then go (mid + 1) hi mid else go lo (mid - 1) best
    end
  in
  let best = go 0 (cnt - 1) (-1) in
  if best < 0 then L.leftmost a n else L.ptr a n best

let find_child a l n ~mode ?(tr = Trace.null) key =
  match mode with
  | Binary -> binary_route a l n key
  | Linear ->
      let rec attempt budget =
        let sw = L.switch a n in
        let child =
          if sw land 1 = 0 then route_left_to_right a l n tr key
          else route_right_to_left a l n tr key
        in
        if L.switch a n <> sw && budget > 0 then attempt (budget - 1) else child
      in
      attempt 64

(* ------------------------------------------------------------------ *)
(* FAST insertion (Algorithm 1)                                        *)
(* ------------------------------------------------------------------ *)

let record_first_in_line i = i mod 4 = 0

let insert_nonfull a l n ~key ~value ~mode =
  assert (value <> 0);
  let sw = L.switch a n in
  if sw land 1 = 1 then L.set_switch a n (sw + 1);
  let cnt = match mode with Linear -> count a l n | Binary -> L.count_hint a n in
  assert (cnt < l.L.capacity);
  let rec shift i =
    if i < 0 then begin
      (* The key precedes every entry: invalidate slot 0 by pointing it
         at the left anchor, then commit with the final pointer store. *)
      let anchor = L.leftmost a n in
      L.set_ptr a n 0 anchor;
      Arena.fence_if_not_tso a;
      L.set_key a n 0 key;
      Arena.fence_if_not_tso a;
      L.set_ptr a n 0 value;
      Arena.flush a (n + L.ptr_off 0)
    end
    else begin
      let ki = L.key a n i in
      if ki > key then begin
        (* Shift records[i] to records[i+1]: pointer first, so the
           duplicate-pointer rule hides the half-copied pair. *)
        L.set_ptr a n (i + 1) (L.ptr a n i);
        Arena.fence_if_not_tso a;
        L.set_key a n (i + 1) ki;
        Arena.fence_if_not_tso a;
        (* Crossing into the previous cache line: flush the line we
           are leaving so dirty lines persist in order. *)
        if record_first_in_line (i + 1) then Arena.flush a (n + L.key_off (i + 1));
        shift (i - 1)
      end
      else begin
        L.set_ptr a n (i + 1) (L.ptr a n i);
        Arena.fence_if_not_tso a;
        L.set_key a n (i + 1) key;
        Arena.fence_if_not_tso a;
        L.set_ptr a n (i + 1) value;
        Arena.flush a (n + L.ptr_off (i + 1))
      end
    end
  in
  shift (cnt - 1);
  L.set_count_hint a n (cnt + 1)

(* ------------------------------------------------------------------ *)
(* FAST deletion: left shift                                           *)
(* ------------------------------------------------------------------ *)

let record_last_in_line i = i mod 4 = 3

let remove_at a l n pos =
  let cnt = count a l n in
  assert (pos >= 0 && pos < cnt);
  for i = pos to cnt - 2 do
    let k = L.key a n (i + 1) and p = L.ptr a n (i + 1) in
    L.set_key a n i k;
    Arena.fence_if_not_tso a;
    L.set_ptr a n i p;
    Arena.fence_if_not_tso a;
    if record_last_in_line i then Arena.flush a (n + L.ptr_off i)
  done;
  L.set_ptr a n (cnt - 1) 0;
  Arena.flush a (n + L.ptr_off (cnt - 1));
  L.set_count_hint a n (cnt - 1)

let delete a l n key =
  let sw = L.switch a n in
  if sw land 1 = 0 then begin
    L.set_switch a n (sw + 1);
    (* The left-shift states a delete creates are only tolerable for
       readers scanning right-to-left; under relaxed persistency the
       parity flip must therefore persist before any shift store does
       (dirty cache lines flushed in order, paper Section VI). *)
    Arena.flush a (n + L.off_switch)
  end;
  match find_exact a l n key with
  | None -> false
  | Some pos ->
      remove_at a l n pos;
      true

let update_value a l n ~pos ~value =
  ignore l;
  assert (value <> 0);
  L.set_ptr a n pos value;
  Arena.flush a (n + L.ptr_off pos)

let truncate_from a l n pos =
  let cnt = count a l n in
  let rec zero i =
    if i >= pos then begin
      L.set_ptr a n i 0;
      Arena.fence_if_not_tso a;
      if record_first_in_line i && i > pos then Arena.flush a (n + L.ptr_off i);
      zero (i - 1)
    end
  in
  zero (cnt - 1);
  Arena.flush a (n + L.ptr_off pos);
  L.set_count_hint a n pos

(* ------------------------------------------------------------------ *)
(* Lazy recovery (writer side)                                         *)
(* ------------------------------------------------------------------ *)

let writer_fix a l n =
  let cap = l.L.capacity in
  let fixed = ref false in
  let rec pass () =
    (* Find the first anomaly; FAST guarantees at most one per crash,
       but the loop handles any number. *)
    let rec scan i prev_raw prev_valid =
      if i >= cap then None
      else begin
        let p = L.ptr a n i in
        if p = 0 then None
        else if p = prev_raw then Some i (* duplicate-pointer garbage *)
        else begin
          let k = L.key a n i in
          match prev_valid with
          | Some (pk, ppos) when pk = k ->
              (* Two valid entries with equal keys: an interrupted left
                 shift; the left copy is stale. *)
              Some ppos
          | Some _ | None -> scan (i + 1) p (Some (k, i))
        end
      end
    in
    match scan 0 (L.leftmost a n) None with
    | Some pos ->
        fixed := true;
        remove_at a l n pos;
        pass ()
    | None -> L.set_count_hint a n (count a l n)
  in
  pass ();
  !fixed

(* ------------------------------------------------------------------ *)
(* Debug views (uncharged)                                             *)
(* ------------------------------------------------------------------ *)

let peek_ptr a n i = Arena.peek a (n + L.ptr_off i)
let peek_key a n i = Arena.peek a (n + L.key_off i)

let entries_debug a l n =
  let cap = l.L.capacity in
  let leftmost = Arena.peek a (n + L.off_leftmost) in
  let rec go i prev_raw acc =
    if i >= cap then List.rev acc
    else begin
      let p = peek_ptr a n i in
      if p = 0 then List.rev acc
      else if p <> prev_raw then go (i + 1) p ((peek_key a n i, p) :: acc)
      else go (i + 1) p acc
    end
  in
  go 0 leftmost []

let raw_records_debug a l n =
  Array.init l.L.capacity (fun i -> (peek_key a n i, peek_ptr a n i))

let insert_nonfull_unordered a l n ~key ~value =
  assert (value <> 0);
  let cnt = count a l n in
  assert (cnt < l.L.capacity);
  let rec shift i =
    if i < 0 then begin
      L.set_key a n 0 key;
      L.set_ptr a n 0 value;
      Arena.flush a (n + L.ptr_off 0)
    end
    else begin
      let ki = L.key a n i in
      if ki > key then begin
        (* key first, pointer second: the duplicate-pointer rule can no
           longer hide the half-copied pair *)
        L.set_key a n (i + 1) ki;
        L.set_ptr a n (i + 1) (L.ptr a n i);
        shift (i - 1)
      end
      else begin
        L.set_key a n (i + 1) key;
        L.set_ptr a n (i + 1) value;
        Arena.flush a (n + L.ptr_off (i + 1))
      end
    end
  in
  shift (cnt - 1);
  L.set_count_hint a n (cnt + 1)
