module Arena = Ff_pmem.Arena
module L = Layout

(* Write a fresh private node: header, packed records, count hint.
   No ordering discipline is needed — nothing is reachable until the
   final root-slot store. *)
let build_node a l ~level ~leftmost ~low entries =
  let n = Arena.alloc a l.L.node_words in
  Node.init a l n ~level ~leftmost ~low;
  List.iteri
    (fun i (k, v) ->
      L.set_key a n i k;
      L.set_ptr a n i v)
    entries;
  L.set_count_hint a n (List.length entries);
  n

(* Split a list into chunks of at most [per], preserving order. *)
let chunk per xs =
  let rec go acc cur cnt = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if cnt = per then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (cnt + 1) rest
  in
  go [] [] 0 xs

(* The first node of a level covers everything to the left. *)
let relax_first = function
  | (_, n) :: _ -> fun a -> L.set_low a n 0
  | [] -> fun _ -> ()

let load ?(node_bytes = 512) ?(fill = 0.85) ?(root_slot = 0) arena pairs =
  let l = L.make ~node_bytes in
  let sorted = List.sort compare (Array.to_list pairs) in
  let rec check_unique = function
    | (k1, _) :: ((k2, _) :: _ as rest) ->
        if k1 = k2 then invalid_arg "Bulk.load: duplicate key";
        check_unique rest
    | [ _ ] | [] -> ()
  in
  check_unique sorted;
  List.iter
    (fun (k, v) ->
      if k <= 0 then invalid_arg "Bulk.load: keys must be positive";
      if v = 0 then invalid_arg "Bulk.load: values must be nonzero")
    sorted;
  let per = min (max 2 (int_of_float (float_of_int l.L.capacity *. fill)))
              (l.L.capacity - 1) in
  (* Leaves, left to right. *)
  let leaves =
    List.map
      (fun entries ->
        let low = match entries with (k, _) :: _ -> k | [] -> 0 in
        (low, build_node arena l ~level:0 ~leftmost:0 ~low entries))
      (chunk per sorted)
  in
  relax_first leaves arena;
  (* Stack internal levels until one node remains. *)
  let rec build level nodes =
    match nodes with
    | [] -> build_node arena l ~level:0 ~leftmost:0 ~low:0 []
    | [ (_, n) ] -> n
    | _ ->
        let parents =
          List.map
            (fun group ->
              match group with
              | (glow, first) :: rest ->
                  (glow, build_node arena l ~level ~leftmost:first ~low:glow rest)
              | [] -> assert false)
            (chunk (per + 1) nodes)
        in
        relax_first parents arena;
        build (level + 1) parents
  in
  let root = build 1 leaves in
  (* Gather nodes per level (depth-first visits each level left to
     right), chain siblings, persist, publish. *)
  let by_level = Hashtbl.create 8 in
  let rec gather n =
    let lv = L.level arena n in
    let existing = try Hashtbl.find by_level lv with Not_found -> [] in
    Hashtbl.replace by_level lv (n :: existing);
    if lv > 0 then begin
      gather (L.leftmost arena n);
      let rec each i =
        if i < l.L.capacity then begin
          let p = L.ptr arena n i in
          if p <> 0 then begin
            gather p;
            each (i + 1)
          end
        end
      in
      each 0
    end
  in
  gather root;
  Hashtbl.iter
    (fun _lv nodes ->
      let rec chain = function
        | a :: (b :: _ as rest) ->
            L.set_sibling arena a b;
            chain rest
        | [ _ ] | [] -> ()
      in
      chain (List.rev nodes))
    by_level;
  Hashtbl.iter
    (fun _ nodes ->
      List.iter (fun n -> Arena.flush_range arena n l.L.node_words) nodes)
    by_level;
  Arena.root_set arena root_slot root;
  Tree.open_existing ~node_bytes ~root_slot arena
