let mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0. xs in
    sqrt (acc /. float_of_int (n - 1))
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then 0.
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    let idx = max 0 (min (n - 1) (rank - 1)) in
    sorted.(idx)
  end

let min_max xs =
  if Array.length xs = 0 then (0., 0.)
  else
    Array.fold_left
      (fun (lo, hi) x -> ((if x < lo then x else lo), if x > hi then x else hi))
      (xs.(0), xs.(0))
      xs

let geo_mean xs =
  let n = Array.length xs in
  if n = 0 then 0.
  else begin
    let acc = Array.fold_left (fun a x -> a +. Float.log x) 0. xs in
    Float.exp (acc /. float_of_int n)
  end

type summary = {
  mean : float;
  stddev : float;
  p50 : float;
  p99 : float;
  min : float;
  max : float;
}

let summarize xs =
  let lo, hi = min_max xs in
  {
    mean = mean xs;
    stddev = stddev xs;
    p50 = percentile xs 50.;
    p99 = percentile xs 99.;
    min = lo;
    max = hi;
  }

let pp_summary ppf s =
  Format.fprintf ppf "mean=%.3f sd=%.3f p50=%.3f p99=%.3f min=%.3f max=%.3f"
    s.mean s.stddev s.p50 s.p99 s.min s.max
