type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 16) ~dummy () =
  { data = Array.make (max capacity 1) dummy; len = 0; dummy }

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Vec.set";
  t.data.(i) <- v

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (2 * cap) t.dummy in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t v =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Vec.pop";
  t.len <- t.len - 1;
  let v = t.data.(t.len) in
  t.data.(t.len) <- t.dummy;
  v

let clear t =
  Array.fill t.data 0 t.len t.dummy;
  t.len <- 0

let is_empty t = t.len = 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let to_array t = Array.sub t.data 0 t.len

let of_array ~dummy a =
  let t = create ~capacity:(max (Array.length a) 1) ~dummy () in
  Array.iter (push t) a;
  t
