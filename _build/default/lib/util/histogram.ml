(* Buckets at powers of sqrt(2): bucket i covers (b(i-1), b(i)] with
   b(i) = 2^(i/2), giving <= ~41% width per bucket. *)

let nbuckets = 124 (* covers up to ~2^62 *)

type t = {
  buckets : int array;
  mutable n : int;
  mutable total : int;
  mutable max_sample : int;
}

let create () = { buckets = Array.make nbuckets 0; n = 0; total = 0; max_sample = 0 }

let bound i =
  (* b(i) = 2^(i/2), alternating exact powers of two and * sqrt 2 *)
  let base = 1 lsl (i / 2) in
  if i land 1 = 0 then base
  else int_of_float (float_of_int base *. 1.4142135623730951)

let bucket_of v =
  let rec go i = if i >= nbuckets - 1 || bound i >= v then i else go (i + 1) in
  (* start near log2 to keep it O(1)-ish *)
  let rec log2 v acc = if v <= 1 then acc else log2 (v lsr 1) (acc + 1) in
  let i0 = max 0 ((2 * log2 v 0) - 2) in
  go i0

let add t v =
  let v = max v 0 in
  let i = if v = 0 then 0 else bucket_of v in
  t.buckets.(i) <- t.buckets.(i) + 1;
  t.n <- t.n + 1;
  t.total <- t.total + v;
  if v > t.max_sample then t.max_sample <- v

let count t = t.n
let mean t = if t.n = 0 then 0. else float_of_int t.total /. float_of_int t.n
let max_sample t = t.max_sample

let percentile t p =
  if t.n = 0 then 0
  else begin
    let rank = int_of_float (ceil (p /. 100. *. float_of_int t.n)) in
    let rank = max 1 (min t.n rank) in
    let rec go i seen =
      let seen = seen + t.buckets.(i) in
      if seen >= rank || i = nbuckets - 1 then bound i else go (i + 1) seen
    in
    min (go 0 0) t.max_sample
  end

let merge acc x =
  for i = 0 to nbuckets - 1 do
    acc.buckets.(i) <- acc.buckets.(i) + x.buckets.(i)
  done;
  acc.n <- acc.n + x.n;
  acc.total <- acc.total + x.total;
  if x.max_sample > acc.max_sample then acc.max_sample <- x.max_sample

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.1f p50=%d p99=%d max=%d" t.n (mean t)
    (percentile t 50.) (percentile t 99.) t.max_sample
