(** Deterministic pseudo-random number generation.

    All randomized components of the reproduction (workload generators,
    skip-list coin flips, crash-point sampling, relaxed-persistency
    eviction) draw from this PRNG so that every experiment is exactly
    replayable from a seed.  The generator is SplitMix64, which has a
    64-bit state, passes BigCrush, and is trivially splittable. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator.  Two generators created
    with the same seed produce identical streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent
    generator; use it to give sub-components their own streams. *)

val next : t -> int
(** Next raw value, uniform over the full non-negative OCaml [int]
    range (63 bits, high bit cleared). *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be > 0. *)

val in_range : t -> int -> int -> int
(** [in_range t lo hi] is uniform in [\[lo, hi)]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
