(** Fixed-width ASCII table rendering for the benchmark harness.

    The harness prints one table per paper figure; columns are aligned
    so the series can be eyeballed against the paper's plots. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row; short rows are padded with empty cells. *)

val add_floats : t -> string -> float list -> unit
(** [add_floats t label xs] appends a row whose first cell is [label]
    and the rest are [xs] formatted with 3 decimal places. *)

val render : t -> string
(** Render with a header rule and column padding. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)
