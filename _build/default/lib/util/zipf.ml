type t = {
  n : int;
  theta : float;
  h_x1 : float;
  h_x0 : float;
  s : float;
}

(* Rejection-inversion sampling (Hörmann & Derflinger 1996): H is an
   integral upper envelope of the Zipf pmf; we invert H over a uniform
   deviate and accept/reject against the true pmf. *)

let h theta x =
  if Float.abs (theta -. 1.) < 1e-12 then Float.log x
  else (Float.pow x (1. -. theta)) /. (1. -. theta)

let h_inv theta x =
  if Float.abs (theta -. 1.) < 1e-12 then Float.exp x
  else Float.pow ((1. -. theta) *. x) (1. /. (1. -. theta))

let create ~n ~theta =
  assert (n >= 1);
  assert (theta > 0.);
  let h_x1 = h theta 1.5 -. 1. in
  let h_x0 = h theta (float_of_int n +. 0.5) in
  let s = 2. -. h_inv theta (h theta 2.5 -. Float.pow 2. (-.theta)) in
  { n; theta; h_x1; h_x0; s }

let n t = t.n

let sample t rng =
  if t.n = 1 then 0
  else begin
    let rec go () =
      let u = t.h_x0 +. (Prng.float rng *. (t.h_x1 -. t.h_x0)) in
      let x = h_inv t.theta u in
      let k = Float.round x in
      let k = if k < 1. then 1. else if k > float_of_int t.n then float_of_int t.n else k in
      if Float.abs (k -. x) <= t.s then int_of_float k - 1
      else if u >= h t.theta (k +. 0.5) -. Float.pow k (-.t.theta) then int_of_float k - 1
      else go ()
    in
    go ()
  end
