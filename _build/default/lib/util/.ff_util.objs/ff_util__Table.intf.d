lib/util/table.mli:
