lib/util/vec.mli:
