lib/util/prng.mli:
