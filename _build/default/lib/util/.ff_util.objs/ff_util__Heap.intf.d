lib/util/heap.mli:
