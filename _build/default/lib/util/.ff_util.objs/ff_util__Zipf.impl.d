lib/util/zipf.ml: Float Prng
