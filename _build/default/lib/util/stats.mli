(** Small numeric summaries used by the benchmark harness. *)

val mean : float array -> float
(** Arithmetic mean; 0. for an empty array. *)

val stddev : float array -> float
(** Sample standard deviation; 0. for fewer than two points. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0, 100\]]; sorts a copy.
    Nearest-rank definition; 0. for an empty array. *)

val min_max : float array -> float * float
(** (min, max); (0., 0.) for an empty array. *)

val geo_mean : float array -> float
(** Geometric mean of positive values; 0. for an empty array. *)

type summary = {
  mean : float;
  stddev : float;
  p50 : float;
  p99 : float;
  min : float;
  max : float;
}

val summarize : float array -> summary

val pp_summary : Format.formatter -> summary -> unit
