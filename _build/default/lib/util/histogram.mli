(** Log-bucketed latency histogram.

    Samples (simulated nanoseconds) land in power-of-sqrt(2) buckets,
    so percentile estimates stay within ~20% across nine orders of
    magnitude with a few hundred bytes of state.  Used by the
    [latencies] benchmark target for per-operation p50/p99 tables. *)

type t

val create : unit -> t
val add : t -> int -> unit
(** Record one sample (negative samples count as 0). *)

val count : t -> int
val mean : t -> float

val percentile : t -> float -> int
(** [percentile t p] for p in [\[0, 100\]]: an upper bound of the
    bucket containing the p-th percentile sample; 0 when empty. *)

val max_sample : t -> int
val merge : t -> t -> unit
(** [merge acc x] adds [x]'s samples into [acc]. *)

val pp : Format.formatter -> t -> unit
