type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let add_floats t label xs =
  add_row t (label :: List.map (fun x -> Printf.sprintf "%.3f" x) xs)

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let pad r = r @ List.init (ncols - List.length r) (fun _ -> "") in
  let all = List.map pad all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun r -> List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) r)
    all;
  let buf = Buffer.create 256 in
  let render_row r =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf c;
        Buffer.add_string buf (String.make (widths.(i) - String.length c) ' '))
      r;
    Buffer.add_char buf '\n'
  in
  (match all with
  | header :: body ->
      render_row header;
      let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
      Buffer.add_string buf (String.make total '-');
      Buffer.add_char buf '\n';
      List.iter render_row body
  | [] -> ());
  Buffer.contents buf

let print t = print_string (render t); print_newline ()
