(** Minimal growable array (OCaml 5.1's stdlib has no [Dynarray]). *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills unused slots; it is never returned by [get]. *)

val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a
(** Remove and return the last element.  @raise Invalid_argument if empty. *)

val clear : 'a t -> unit
val is_empty : 'a t -> bool
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val to_array : 'a t -> 'a array
val of_array : dummy:'a -> 'a array -> 'a t
