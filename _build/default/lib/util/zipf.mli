(** Zipfian key distribution (used by the skewed-workload extensions
    and the TPC-C NURand-style access patterns).

    Items are ranked [0 .. n-1]; rank 0 is the hottest.  The sampler
    uses the rejection-inversion method of Hörmann & Derflinger, which
    is O(1) per sample for any skew [theta > 0, theta <> 1]. *)

type t

val create : n:int -> theta:float -> t
(** [create ~n ~theta] prepares a sampler over [n] ranks with skew
    [theta] (typical YCSB skew is 0.99).  [n >= 1], [theta > 0.],
    [theta <> 1.]. *)

val sample : t -> Prng.t -> int
(** Draw a rank in [\[0, n)]. *)

val n : t -> int
