type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let next t = Int64.to_int (next_int64 t) land max_int

let split t =
  let seed = next t in
  { state = Int64.of_int seed }

let int t bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias for large bounds. *)
  let rec go () =
    let r = next t in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then go () else v
  in
  go ()

let in_range t lo hi =
  assert (lo < hi);
  lo + int t (hi - lo)

let float t = Stdlib.float_of_int (next t) /. Stdlib.float_of_int max_int

let bool t = next t land 1 = 1

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
