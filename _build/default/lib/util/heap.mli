(** Stable binary min-heap keyed by integer priority.

    Entries with equal keys pop in insertion order, which keeps the
    discrete-event simulator deterministic. *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> int -> 'a -> unit
val pop : 'a t -> (int * 'a) option
val peek : 'a t -> (int * 'a) option
val size : 'a t -> int
val is_empty : 'a t -> bool
