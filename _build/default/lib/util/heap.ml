type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { data = [||]; len = 0; next_seq = 0 }

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.data.(i) t.data.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && less t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.len && less t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t key value =
  let entry = { key; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if t.len = Array.length t.data then begin
    let cap = max 16 (2 * t.len) in
    let data = Array.make cap entry in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- entry;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t 0
    end;
    Some (top.key, top.value)
  end

let peek t = if t.len = 0 then None else Some (t.data.(0).key, t.data.(0).value)
let size t = t.len
let is_empty t = t.len = 0
