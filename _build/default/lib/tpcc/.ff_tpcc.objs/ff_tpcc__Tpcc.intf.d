lib/tpcc/tpcc.mli: Ff_index Ff_pmem
