lib/tpcc/tpcc.ml: Array Ff_index Ff_pmem Ff_util List
