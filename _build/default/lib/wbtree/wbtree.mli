(** wB+-tree baseline (Chen & Jin, VLDB'15): slot-array + bitmap
    nodes, evaluated by the paper as its append-only comparator.

    Entries are written append-only into any free slot; a small sorted
    {e slot array} gives the logical order, and a {e bitmap} word
    commits both the entry liveness bits and a slot-array-valid bit
    with one failure-atomic 8-byte store.  An insert therefore costs
    at least four cache-line flushes (entry, bitmap-invalidate,
    slot-array, bitmap-commit), and node splits go through a PM redo
    log — the two costs FAST+FAIR removes.

    Single-threaded, as in the paper (Section 5.7 notes wB+-tree was
    not designed for concurrent queries). *)

type t

val create : ?node_bytes:int -> ?root_slot:int -> Ff_pmem.Arena.t -> t
(** Default node size 1 KB (the paper's setting: at most 64 entries
    per node).  Uses arena root slots [root_slot] (root pointer) and
    [root_slot + 1] (split-log pointer). *)

val open_existing : ?node_bytes:int -> ?root_slot:int -> Ff_pmem.Arena.t -> t

val insert : t -> key:int -> value:int -> unit
val search : t -> int -> int option
val delete : t -> int -> bool
val range : t -> lo:int -> hi:int -> (int -> int -> unit) -> unit

val recover : t -> unit
(** Replay the split redo log if committed, rebuild any invalidated
    slot arrays, and re-attach dangling split siblings. *)

val ops : t -> Ff_index.Intf.ops
val height : t -> int
val check : t -> string list
(** Structural invariants on a quiesced tree (uncharged). *)
