lib/wbtree/wbtree.ml: Array Ff_index Ff_pmem Hashtbl List Printf
