lib/wbtree/wbtree.mli: Ff_index Ff_pmem
