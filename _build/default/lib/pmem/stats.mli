(** Per-thread accounting of simulated cost and event counts.

    Simulated time is bucketed by phase so the harness can reproduce
    the paper's Figure 5(a) breakdown of insertion time into
    {e clflush}, {e search} and {e node update} components.  Flush and
    fence costs always land in their own buckets regardless of the
    current phase. *)

type phase = Search | Update | Other

type t = {
  mutable loads : int;          (** word loads *)
  mutable stores : int;         (** word stores *)
  mutable flushes : int;        (** cache-line flushes *)
  mutable fences : int;         (** mfence / dmb *)
  mutable line_misses : int;    (** LLC-missing line accesses *)
  mutable line_hits : int;
  mutable seq_misses : int;     (** misses served at the MLP discount *)
  mutable search_ns : int;      (** simulated ns while phase = Search *)
  mutable update_ns : int;      (** simulated ns while phase = Update *)
  mutable other_ns : int;
  mutable flush_ns : int;
  mutable fence_ns : int;
  mutable phase : phase;
}

val create : unit -> t
val reset : t -> unit

val total_ns : t -> int
(** Sum of all time buckets. *)

val add : t -> t -> unit
(** [add acc x] accumulates [x]'s counters into [acc]. *)

val diff : t -> t -> t
(** [diff after before] is the per-field difference (phase taken from
    [after]). *)

val copy : t -> t

val to_json : t -> string
(** One flat JSON object (all counters plus ["total_ns"]), so external
    tooling can consume the counters without parsing [pp] output. *)

val pp : Format.formatter -> t -> unit
