lib/pmem/config.ml:
