lib/pmem/cachesim.ml: Array Hashtbl List
