lib/pmem/cachesim.mli:
