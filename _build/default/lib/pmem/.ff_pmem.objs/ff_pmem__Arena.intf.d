lib/pmem/arena.mli: Config Stats Storelog
