lib/pmem/config.mli:
