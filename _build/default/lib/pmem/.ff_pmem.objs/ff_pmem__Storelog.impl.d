lib/pmem/storelog.ml: Array Ff_util Hashtbl List Seq
