lib/pmem/arena.ml: Array Cachesim Config Fun Hashtbl List Marshal Printf Stats Storelog
