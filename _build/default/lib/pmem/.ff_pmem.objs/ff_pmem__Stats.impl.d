lib/pmem/stats.ml: Format Printf
