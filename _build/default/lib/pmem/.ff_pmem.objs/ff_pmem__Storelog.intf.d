lib/pmem/storelog.mli: Ff_util
