type memory_order = Tso | Non_tso

type t = {
  memory_order : memory_order;
  atomic_word_bytes : int;
  read_latency_ns : int;
  write_latency_ns : int;
  l1_hit_ns : int;
  store_ns : int;
  fence_ns : int;
  cpu_word_ns : int;
  branch_miss_ns : int;
  mlp_factor : int;
  cache_lines : int;
  max_threads : int;
  pending_high_water : int;
}

let default =
  {
    memory_order = Tso;
    atomic_word_bytes = 8;
    read_latency_ns = 100;
    write_latency_ns = 100;
    l1_hit_ns = 1;
    store_ns = 1;
    fence_ns = 8;
    cpu_word_ns = 1;
    branch_miss_ns = 6;
    mlp_factor = 4;
    cache_lines = 16384;
    max_threads = 64;
    pending_high_water = 1 lsl 16;
  }

let pm ?(read_ns = 300) ?(write_ns = 300) () =
  { default with read_latency_ns = read_ns; write_latency_ns = write_ns }

let arm ?(read_ns = 100) ?(write_ns = 700) () =
  {
    default with
    memory_order = Non_tso;
    atomic_word_bytes = 4;
    read_latency_ns = read_ns;
    write_latency_ns = write_ns;
    fence_ns = 20;
    mlp_factor = 2;
  }

let with_latency t ~read_ns ~write_ns =
  { t with read_latency_ns = read_ns; write_latency_ns = write_ns }
