(* Doubly-linked LRU list over slot indices, with a line -> slot map.
   Slot 0 is a sentinel head (most recent side); the tail side is
   evicted.  All operations are O(1). *)

type t = {
  capacity : int;
  map : (int, int) Hashtbl.t; (* line -> slot *)
  line_of : int array;        (* slot -> line, -1 if free *)
  prev : int array;
  next : int array;
  mutable free : int list;
  mutable last_miss_line : int;
}

type outcome = Hit | Miss of { sequential : bool }

let create ~capacity =
  let capacity = max capacity 1 in
  let n = capacity + 1 in
  {
    capacity;
    map = Hashtbl.create (2 * capacity);
    line_of = Array.make n (-1);
    prev = (let a = Array.init n (fun _ -> 0) in a.(0) <- 0; a);
    next = (let a = Array.init n (fun _ -> 0) in a.(0) <- 0; a);
    free = List.init capacity (fun i -> i + 1);
    last_miss_line = min_int;
  }

let unlink t slot =
  let p = t.prev.(slot) and n = t.next.(slot) in
  t.next.(p) <- n;
  t.prev.(n) <- p

let push_front t slot =
  let first = t.next.(0) in
  t.next.(0) <- slot;
  t.prev.(slot) <- 0;
  t.next.(slot) <- first;
  t.prev.(first) <- slot

let evict_lru t =
  let victim = t.prev.(0) in
  assert (victim <> 0);
  unlink t victim;
  Hashtbl.remove t.map t.line_of.(victim);
  t.line_of.(victim) <- -1;
  victim

let access t line =
  match Hashtbl.find_opt t.map line with
  | Some slot ->
      unlink t slot;
      push_front t slot;
      Hit
  | None ->
      let slot =
        match t.free with
        | s :: rest ->
            t.free <- rest;
            s
        | [] -> evict_lru t
      in
      t.line_of.(slot) <- line;
      Hashtbl.replace t.map line slot;
      push_front t slot;
      let sequential = line = t.last_miss_line + 1 in
      t.last_miss_line <- line;
      Miss { sequential }

let invalidate t line =
  match Hashtbl.find_opt t.map line with
  | None -> ()
  | Some slot ->
      unlink t slot;
      Hashtbl.remove t.map line;
      t.line_of.(slot) <- -1;
      t.free <- slot :: t.free

let clear t =
  Hashtbl.reset t.map;
  t.free <- List.init t.capacity (fun i -> i + 1);
  Array.fill t.line_of 0 (Array.length t.line_of) (-1);
  t.next.(0) <- 0;
  t.prev.(0) <- 0;
  t.last_miss_line <- min_int

let resident t line = Hashtbl.mem t.map line

let size t = Hashtbl.length t.map
