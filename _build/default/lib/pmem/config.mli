(** Configuration of the simulated persistent-memory device and CPU.

    The latency model follows the paper's experimental setup: a
    Quartz-style emulator that charges a configurable read latency per
    LLC-missing cache-line load and a configurable write latency per
    cache-line flush, with a memory-level-parallelism (MLP) discount
    for sequential line accesses (hardware prefetcher), exactly the
    effect Section 5.4 relies on to explain why B+-tree search is less
    latency-sensitive than WORT or SkipList. *)

type memory_order =
  | Tso      (** x86-like: stores are not reordered with stores. *)
  | Non_tso  (** ARM-like: stores between fences are unordered. *)

type t = {
  memory_order : memory_order;
  atomic_word_bytes : int;
      (** Failure-atomic store granularity: 8 on x86-64, 4 on the
          paper's ARM Snapdragon testbed. *)
  read_latency_ns : int;   (** PM cache-line read latency (LLC miss). *)
  write_latency_ns : int;  (** PM cache-line write-back (clflush wait). *)
  l1_hit_ns : int;         (** Cost of a load served by the cache sim. *)
  store_ns : int;          (** Cost of a store (absorbed by the cache). *)
  fence_ns : int;          (** mfence on TSO; dmb on non-TSO configs. *)
  cpu_word_ns : int;       (** CPU work per key comparison. *)
  branch_miss_ns : int;    (** Mispredict penalty (binary-search probes). *)
  mlp_factor : int;
      (** Divisor applied to [read_latency_ns] for a line access that is
          sequentially adjacent to the previous miss (prefetch hit). *)
  cache_lines : int;       (** Per-thread LRU line-cache capacity. *)
  max_threads : int;       (** Number of per-thread accounting contexts. *)
  pending_high_water : int;
      (** Background write-back threshold for the store log: when more
          than this many stores are pending, the oldest half is evicted
          to PM (a legal crash state, and it bounds memory). *)
}

val default : t
(** DRAM-speed TSO machine resembling the paper's Haswell testbed. *)

val pm : ?read_ns:int -> ?write_ns:int -> unit -> t
(** TSO machine with PM latencies (defaults 300/300 like Section 5.3). *)

val arm : ?read_ns:int -> ?write_ns:int -> unit -> t
(** Non-TSO machine with 4-byte atomic words and dmb fences, modelling
    the paper's Nexus 5 setup of Section 5.5. *)

val with_latency : t -> read_ns:int -> write_ns:int -> t
