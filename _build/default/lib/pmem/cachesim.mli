(** LRU cache-line residency simulator (one instance per simulated
    thread/core).

    Decides whether a line access is an LLC hit or a PM miss, and
    whether a miss is sequentially adjacent to the previous miss (in
    which case the hardware prefetcher / memory-level parallelism
    discount of the cost model applies). *)

type t

val create : capacity:int -> t

type outcome = Hit | Miss of { sequential : bool }

val access : t -> int -> outcome
(** [access t line] records an access to [line] and classifies it. *)

val invalidate : t -> int -> unit
(** Drop a line (used when a crash discards the volatile image). *)

val clear : t -> unit
val resident : t -> int -> bool
val size : t -> int
