(** Persistent SkipList baseline (paper Section V, after the
    Log-Structured NVMM system's mapping index).

    Only the level-0 linked list lives in PM and is updated
    failure-atomically: a new node is fully written and flushed before
    the predecessor's next pointer is swung with a single 8-byte store
    + flush.  The probabilistic upper levels are volatile and rebuilt
    on recovery by walking the level-0 list.

    Each entry is its own cache line, so searches chase random
    pointers with no memory-level parallelism — the cache-locality
    weakness the paper's Figures 4 and 5 exhibit. *)

type t

val create : ?root_slot:int -> ?seed:int -> Ff_pmem.Arena.t -> t
val open_existing : ?root_slot:int -> ?seed:int -> Ff_pmem.Arena.t -> t
(** Reattach after a crash; call {!recover} to rebuild the index. *)

val insert : t -> key:int -> value:int -> unit
val search : t -> int -> int option
val delete : t -> int -> bool
val range : t -> lo:int -> hi:int -> (int -> int -> unit) -> unit

val recover : t -> unit
(** Rebuild the volatile upper levels from the persistent level-0
    list. *)

val length : t -> int
val ops : t -> Ff_index.Intf.ops

val lock : t -> Ff_index.Locks.mutex
(** Single global writer lock used by the concurrent driver (readers
    are lock-free, as in the paper). *)

val set_lock_mode : t -> Ff_index.Locks.mode -> unit
