lib/skiplist/skiplist.ml: Array Ff_index Ff_pmem Ff_util Hashtbl
