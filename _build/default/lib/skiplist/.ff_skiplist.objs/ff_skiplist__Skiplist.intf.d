lib/skiplist/skiplist.mli: Ff_index Ff_pmem
