(* Multicore simulator: scheduling, locks, determinism — and the
   paper's Section IV suspended-reader interleaving, reproduced
   deterministically with a preempt-every-access quantum. *)

open Ff_pmem
module Mcsim = Ff_mcsim.Mcsim
module Prng = Ff_util.Prng
module Tree = Ff_fastfair.Tree
module Locks = Ff_index.Locks

let value_of k = (2 * k) + 1

let test_parallel_speedup () =
  (* 8 independent threads on 8 cores should take ~1 thread's time; on
     1 core, ~8x. *)
  let body _ = Mcsim.charge 1000 in
  let r8 = Mcsim.run ~cores:8 (Array.init 8 (fun _ -> body)) in
  let r1 = Mcsim.run ~cores:1 (Array.init 8 (fun _ -> body)) in
  Alcotest.(check int) "8 cores" 1000 r8.Mcsim.makespan_ns;
  Alcotest.(check int) "1 core" 8000 r1.Mcsim.makespan_ns

let test_more_threads_than_cores () =
  let body _ = for _ = 1 to 10 do Mcsim.charge 100 done in
  let r = Mcsim.run ~cores:4 ~quantum_ns:100 (Array.init 16 (fun _ -> body)) in
  Alcotest.(check int) "makespan = work/cores" (16 * 1000 / 4) r.Mcsim.makespan_ns

let test_determinism () =
  let mk () =
    let m = Mcsim.create_mutex () in
    let acc = ref [] in
    let body tid =
      for _ = 1 to 3 do
        Mcsim.charge (100 + (tid * 7));
        Mcsim.lock m;
        acc := tid :: !acc;
        Mcsim.unlock m
      done
    in
    let r = Mcsim.run ~cores:2 (Array.init 4 (fun _ -> body)) in
    (r.Mcsim.makespan_ns, !acc)
  in
  let a = mk () and b = mk () in
  Alcotest.(check bool) "identical runs" true (a = b)

let test_mutex_mutual_exclusion () =
  let m = Mcsim.create_mutex () in
  let inside = ref 0 in
  let max_inside = ref 0 in
  let body _ =
    for _ = 1 to 20 do
      Mcsim.lock m;
      incr inside;
      if !inside > !max_inside then max_inside := !inside;
      Mcsim.charge 50;
      (* yields while holding the lock *)
      decr inside;
      Mcsim.unlock m
    done
  in
  ignore (Mcsim.run ~cores:8 ~quantum_ns:1 (Array.init 8 (fun _ -> body)));
  Alcotest.(check int) "never two holders" 1 !max_inside

let test_mutex_blocking_time () =
  (* Two threads serialize on one lock held for 1000ns each. *)
  let m = Mcsim.create_mutex () in
  let body _ =
    Mcsim.lock m;
    Mcsim.charge 1000;
    Mcsim.unlock m
  in
  let r = Mcsim.run ~cores:2 ~lock_ns:0 (Array.init 2 (fun _ -> body)) in
  Alcotest.(check int) "serialized" 2000 r.Mcsim.makespan_ns

let test_rwlock_readers_parallel () =
  let l = Mcsim.create_rwlock () in
  let body _ =
    Mcsim.rd_lock l;
    Mcsim.charge 1000;
    Mcsim.rd_unlock l
  in
  let r = Mcsim.run ~cores:8 ~lock_ns:0 ~contention_ns:0 (Array.init 8 (fun _ -> body)) in
  Alcotest.(check int) "readers in parallel" 1000 r.Mcsim.makespan_ns

let test_rwlock_writer_excludes () =
  let l = Mcsim.create_rwlock () in
  let in_write = ref false in
  let violation = ref false in
  let writer _ =
    Mcsim.wr_lock l;
    in_write := true;
    Mcsim.charge 500;
    in_write := false;
    Mcsim.wr_unlock l
  in
  let reader _ =
    Mcsim.rd_lock l;
    if !in_write then violation := true;
    Mcsim.charge 100;
    Mcsim.rd_unlock l
  in
  ignore
    (Mcsim.run ~cores:8 ~quantum_ns:1
       [| writer; reader; reader; writer; reader; reader |]);
  Alcotest.(check bool) "no reader during write" false !violation

let test_gate () =
  let g = Mcsim.create_gate () in
  let order = ref [] in
  let waiter tid =
    Mcsim.gate_wait g;
    order := tid :: !order
  in
  let opener _ =
    Mcsim.charge 5000;
    order := 99 :: !order;
    Mcsim.gate_open g
  in
  ignore (Mcsim.run ~cores:4 [| waiter; waiter; opener |]);
  (match List.rev !order with
  | 99 :: rest -> Alcotest.(check int) "both waiters ran" 2 (List.length rest)
  | _ -> Alcotest.fail "opener must run first")

let test_contention_cost () =
  (* Read-lock acquisitions on one shared lock cost more with more
     concurrent readers. *)
  let time readers =
    let l = Mcsim.create_rwlock () in
    let body _ =
      for _ = 1 to 100 do
        Mcsim.rd_lock l;
        Mcsim.charge 10;
        Mcsim.rd_unlock l
      done
    in
    let r =
      Mcsim.run ~cores:16 ~lock_ns:20 ~contention_ns:20 ~quantum_ns:1
        (Array.init readers (fun _ -> body))
    in
    r.Mcsim.makespan_ns
  in
  let t1 = time 1 and t8 = time 8 in
  (* With contention cost, 8 readers are much slower than 8x-parallel
     would suggest. *)
  Alcotest.(check bool) "contention hurts" true (t8 > t1 * 2)

let test_my_tid () =
  let seen = Array.make 4 (-1) in
  let body tid = seen.(tid) <- Mcsim.my_tid () in
  ignore (Mcsim.run ~cores:4 (Array.init 4 (fun _ -> body)));
  Alcotest.(check (array int)) "tids" [| 0; 1; 2; 3 |] seen

let test_my_tid_outside_run () =
  Alcotest.check_raises "outside run" (Failure "Mcsim.my_tid: not inside Mcsim.run")
    (fun () -> ignore (Mcsim.my_tid ()))

(* ------------------------------------------------------------------ *)
(* FAST+FAIR under the simulator                                       *)
(* ------------------------------------------------------------------ *)

let mk_sim_tree ?(node_bytes = 128) ?(leaf_read_locks = false) () =
  let a = Arena.create ~words:(1 lsl 21) () in
  let t = Tree.create ~node_bytes ~lock_mode:Locks.Sim ~leaf_read_locks a in
  (a, t)

(* Run a single-thread simulation step (setup or post-checks touching
   Sim-mode locks must happen inside Mcsim.run). *)
let in_sim a f = ignore (Mcsim.run ~arena:a [| (fun _ -> f ()) |])

(* The Section IV scenario: a reader is suspended mid-scan while a
   writer shifts the node under it; the reader must still follow a
   correct pointer.  quantum_ns = 1 preempts at every PM access, and
   the FIFO scheduler interleaves reader and writer densely. *)
let test_suspended_reader_insert () =
  let a, t = mk_sim_tree () in
  in_sim a (fun () ->
      List.iter (fun k -> Tree.insert t ~key:k ~value:(value_of k)) [ 10; 20; 30; 40 ]);
  let results = Array.make 8 (Some 0) in
  let reader slot key tid =
    ignore tid;
    results.(slot) <- Tree.search t key
  in
  let writer _ = Tree.insert t ~key:25 ~value:(value_of 25) in
  let bodies =
    [| reader 0 10; reader 1 20; reader 2 30; reader 3 40; writer;
       reader 4 10; reader 5 30; reader 6 40; reader 7 20 |]
  in
  ignore (Mcsim.run ~cores:8 ~quantum_ns:1 ~arena:a bodies);
  List.iteri
    (fun i key ->
      Alcotest.(check (option int))
        (Printf.sprintf "reader %d key %d" i key)
        (Some (value_of key)) results.(i))
    [ 10; 20; 30; 40; 10; 30; 40; 20 ];
  Alcotest.(check (option int)) "writer committed" (Some (value_of 25)) (Tree.search t 25)

let test_suspended_reader_delete () =
  let a, t = mk_sim_tree () in
  in_sim a (fun () ->
      List.iter (fun k -> Tree.insert t ~key:k ~value:(value_of k)) [ 10; 20; 30; 40 ]);
  let results = Array.make 3 (Some 0) in
  let reader slot key tid =
    ignore tid;
    results.(slot) <- Tree.search t key
  in
  let writer _ = ignore (Tree.delete t 20) in
  ignore
    (Mcsim.run ~cores:4 ~quantum_ns:1 ~arena:a
       [| reader 0 10; writer; reader 1 30; reader 2 40 |]);
  List.iteri
    (fun i key ->
      Alcotest.(check (option int))
        (Printf.sprintf "reader %d survives delete shifts" i)
        (Some (value_of key)) results.(i))
    [ 10; 30; 40 ]

let test_concurrent_writers_disjoint () =
  let a, t = mk_sim_tree () in
  let n_threads = 8 and per = 50 in
  let writer tid =
    for i = 1 to per do
      let k = (tid * 1000) + i in
      Tree.insert t ~key:k ~value:(value_of k)
    done
  in
  ignore (Mcsim.run ~cores:8 ~quantum_ns:1 ~arena:a (Array.init n_threads (fun _ -> writer)));
  for tid = 0 to n_threads - 1 do
    for i = 1 to per do
      let k = (tid * 1000) + i in
      Alcotest.(check (option int))
        (Printf.sprintf "key %d" k)
        (Some (value_of k)) (Tree.search t k)
    done
  done;
  Ff_fastfair.Invariant.check_exn t

let test_concurrent_mixed_with_readers () =
  let a, t = mk_sim_tree () in
  in_sim a (fun () ->
      for k = 1 to 200 do
        Tree.insert t ~key:(2 * k) ~value:(value_of (2 * k))
      done);
  let bad = ref [] in
  let reader tid =
    let rng = Prng.create (tid + 1) in
    for _ = 1 to 100 do
      let k = 2 * (1 + Prng.int rng 200) in
      match Tree.search t k with
      | Some v when v = value_of k -> ()
      | Some v -> bad := Printf.sprintf "key %d -> %d" k v :: !bad
      | None -> bad := Printf.sprintf "key %d lost" k :: !bad
    done
  in
  let writer tid =
    let rng = Prng.create (tid + 100) in
    for _ = 1 to 60 do
      (* writers touch only odd keys; readers check only even keys *)
      let k = (2 * (1 + Prng.int rng 300)) + 1 in
      if Prng.bool rng then Tree.insert t ~key:k ~value:(value_of k)
      else ignore (Tree.delete t k)
    done
  in
  ignore
    (Mcsim.run ~cores:16 ~quantum_ns:1 ~arena:a
       [| reader; writer; reader; writer; reader; writer; reader; writer |]);
  Alcotest.(check (list string)) "no anomalies" [] !bad;
  Ff_fastfair.Invariant.check_exn t

let test_leaflock_variant_concurrent () =
  let a, t = mk_sim_tree ~leaf_read_locks:true () in
  in_sim a (fun () ->
      for k = 1 to 100 do
        Tree.insert t ~key:k ~value:(value_of k)
      done);
  let ok = ref true in
  let reader tid =
    let rng = Prng.create tid in
    for _ = 1 to 50 do
      let k = 1 + Prng.int rng 100 in
      if Tree.search t k <> Some (value_of k) then ok := false
    done
  in
  let writer _ =
    for k = 101 to 140 do
      Tree.insert t ~key:k ~value:(value_of k)
    done
  in
  ignore (Mcsim.run ~cores:8 ~quantum_ns:1 ~arena:a [| reader; writer; reader; reader |]);
  in_sim a (fun () ->
      for k = 101 to 140 do
        if Tree.search t k <> Some (value_of k) then ok := false
      done);
  Alcotest.(check bool) "leaflock reads correct" true !ok;
  Ff_fastfair.Invariant.check_exn t

let suite =
  [
    Alcotest.test_case "parallel speedup" `Quick test_parallel_speedup;
    Alcotest.test_case "threads > cores" `Quick test_more_threads_than_cores;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "mutex exclusion" `Quick test_mutex_mutual_exclusion;
    Alcotest.test_case "mutex blocking time" `Quick test_mutex_blocking_time;
    Alcotest.test_case "rwlock parallel readers" `Quick test_rwlock_readers_parallel;
    Alcotest.test_case "rwlock writer excludes" `Quick test_rwlock_writer_excludes;
    Alcotest.test_case "gate" `Quick test_gate;
    Alcotest.test_case "lock contention cost" `Quick test_contention_cost;
    Alcotest.test_case "my_tid" `Quick test_my_tid;
    Alcotest.test_case "my_tid outside run" `Quick test_my_tid_outside_run;
    Alcotest.test_case "suspended reader vs insert" `Quick test_suspended_reader_insert;
    Alcotest.test_case "suspended reader vs delete" `Quick test_suspended_reader_delete;
    Alcotest.test_case "concurrent writers" `Quick test_concurrent_writers_disjoint;
    Alcotest.test_case "mixed readers/writers" `Quick test_concurrent_mixed_with_readers;
    Alcotest.test_case "leaflock variant" `Quick test_leaflock_variant_concurrent;
  ]

let test_lock_port_resets_between_runs () =
  (* Port timestamps must not leak across Mcsim.run invocations. *)
  let m = Mcsim.create_mutex () in
  let body _ =
    for _ = 1 to 100 do
      Mcsim.lock m;
      Mcsim.charge 10;
      Mcsim.unlock m
    done
  in
  let r1 = Mcsim.run ~cores:2 ~contention_ns:50 [| body |] in
  let r2 = Mcsim.run ~cores:2 ~contention_ns:50 [| body |] in
  Alcotest.(check int) "same makespan across runs" r1.Mcsim.makespan_ns r2.Mcsim.makespan_ns

let test_port_serializes_shared_lock () =
  (* N threads hammering one lock are bounded by the port rate. *)
  let time threads =
    let l = Mcsim.create_rwlock () in
    let body _ =
      for _ = 1 to 200 do
        Mcsim.rd_lock l;
        Mcsim.rd_unlock l
      done
    in
    (Mcsim.run ~cores:16 ~lock_ns:0 ~contention_ns:100 (Array.init threads (fun _ -> body)))
      .Mcsim.makespan_ns
  in
  let t1 = time 1 and t8 = time 8 in
  (* 8x the lock traffic through one port: makespan must grow ~8x *)
  Alcotest.(check bool)
    (Printf.sprintf "port-bound (%d vs %d)" t1 t8)
    true
    (t8 > 5 * t1)

let test_spread_locks_scale () =
  (* Distinct locks have distinct ports: no serialization. *)
  let time threads =
    let locks = Array.init threads (fun _ -> Mcsim.create_mutex ()) in
    let body tid =
      for _ = 1 to 200 do
        Mcsim.lock locks.(tid);
        Mcsim.charge 10;
        Mcsim.unlock locks.(tid)
      done
    in
    (Mcsim.run ~cores:16 ~lock_ns:0 ~contention_ns:100 (Array.init threads (fun _ -> body)))
      .Mcsim.makespan_ns
  in
  let t1 = time 1 and t8 = time 8 in
  Alcotest.(check bool)
    (Printf.sprintf "parallel (%d vs %d)" t1 t8)
    true
    (t8 < 2 * t1)

let extra =
  [
    Alcotest.test_case "lock port resets between runs" `Quick test_lock_port_resets_between_runs;
    Alcotest.test_case "port serializes shared lock" `Quick test_port_serializes_shared_lock;
    Alcotest.test_case "spread locks scale" `Quick test_spread_locks_scale;
  ]

let suite = suite @ extra
