(* Property-based tests of the PM simulator's semantics — the crash
   experiments are only as trustworthy as these foundations. *)

open Ff_pmem
module Prng = Ff_util.Prng

let base = Arena.reserved_words

(* Random programs of stores/flushes over a small window. *)
type step = Store of int * int | Flush of int | Fence

let gen_program =
  QCheck.Gen.(
    list_size (int_range 1 120)
      (frequency
         [
           (6, map2 (fun a v -> Store (a land 63, (v land 0xffff) + 1)) int int);
           (2, map (fun a -> Flush (a land 63)) int);
           (1, return Fence);
         ]))

let arbitrary_program =
  QCheck.make gen_program
    ~print:(fun steps ->
      String.concat ";"
        (List.map
           (function
             | Store (a, v) -> Printf.sprintf "S(%d,%d)" a v
             | Flush a -> Printf.sprintf "F(%d)" a
             | Fence -> "mf")
           steps))

let run_program a steps =
  List.iter
    (function
      | Store (addr, v) -> Arena.write a (base + addr) v
      | Flush addr -> Arena.flush a (base + addr)
      | Fence -> Arena.fence a)
    steps

let prop_volatile_read_your_writes =
  QCheck.Test.make ~count:200 ~name:"volatile image = last store per word"
    arbitrary_program
    (fun steps ->
      let a = Arena.create ~words:4096 () in
      run_program a steps;
      let model = Hashtbl.create 64 in
      List.iter
        (function Store (addr, v) -> Hashtbl.replace model addr v | Flush _ | Fence -> ())
        steps;
      Hashtbl.fold
        (fun addr v ok -> ok && Arena.read a (base + addr) = v)
        model true)

let prop_flushed_stores_survive_keep_none =
  QCheck.Test.make ~count:200 ~name:"flushed stores survive Keep_none"
    arbitrary_program
    (fun steps ->
      let a = Arena.create ~words:4096 () in
      run_program a steps;
      (* model: value persisted for word w = last store to w at or
         before the last flush covering w's line *)
      let persisted = Hashtbl.create 64 in
      let pending = Hashtbl.create 64 in
      List.iter
        (function
          | Store (addr, v) -> Hashtbl.replace pending addr v
          | Flush addr ->
              let line = (base + addr) / Arena.words_per_line in
              Hashtbl.iter
                (fun w v ->
                  if (base + w) / Arena.words_per_line = line then
                    Hashtbl.replace persisted w v)
                pending;
              Hashtbl.iter
                (fun w _ ->
                  if (base + w) / Arena.words_per_line = line then Hashtbl.remove pending w)
                (Hashtbl.copy pending)
          | Fence -> ())
        steps;
      Arena.power_fail a Storelog.Keep_none;
      Hashtbl.fold
        (fun addr v ok -> ok && Arena.read a (base + addr) = v)
        persisted true)

let prop_keep_all_equals_volatile =
  QCheck.Test.make ~count:200 ~name:"Keep_all crash preserves the volatile image"
    arbitrary_program
    (fun steps ->
      let a = Arena.create ~words:4096 () in
      run_program a steps;
      let snapshot = Array.init 64 (fun i -> Arena.peek a (base + i)) in
      Arena.power_fail a Storelog.Keep_all;
      Array.for_all
        (fun i -> Arena.read a (base + i) = snapshot.(i))
        (Array.init 64 (fun i -> i)))

let prop_random_eviction_per_word_monotone =
  QCheck.Test.make ~count:200
    ~name:"Random_eviction yields per-word store prefixes"
    (QCheck.pair arbitrary_program QCheck.small_int)
    (fun (steps, seed) ->
      let a = Arena.create ~words:4096 () in
      run_program a steps;
      Arena.power_fail a (Storelog.Random_eviction (Prng.create seed));
      (* every word's persisted value is one of the values that word
         held at some point (including its initial 0) *)
      let history = Hashtbl.create 64 in
      for w = 0 to 63 do
        Hashtbl.replace history w [ 0 ]
      done;
      List.iter
        (function
          | Store (addr, v) ->
              Hashtbl.replace history addr (v :: Hashtbl.find history addr)
          | Flush _ | Fence -> ())
        steps;
      Hashtbl.fold
        (fun w vals ok -> ok && List.mem (Arena.read a (base + w)) vals)
        history true)

let prop_clone_equivalence =
  QCheck.Test.make ~count:100 ~name:"clone is observationally identical"
    arbitrary_program
    (fun steps ->
      let a = Arena.create ~words:4096 () in
      run_program a steps;
      Arena.drain a;
      let c = Arena.clone a in
      let same = ref true in
      for w = 0 to 63 do
        if Arena.peek a (base + w) <> Arena.peek c (base + w) then same := false;
        if Arena.peek_persisted a (base + w) <> Arena.peek_persisted c (base + w) then
          same := false
      done;
      !same)

let prop_drain_then_keep_none_is_identity =
  QCheck.Test.make ~count:100 ~name:"drain + Keep_none preserves everything"
    arbitrary_program
    (fun steps ->
      let a = Arena.create ~words:4096 () in
      run_program a steps;
      let snapshot = Array.init 64 (fun i -> Arena.peek a (base + i)) in
      Arena.drain a;
      Arena.power_fail a Storelog.Keep_none;
      Array.for_all (fun i -> Arena.read a (base + i) = snapshot.(i))
        (Array.init 64 (fun i -> i)))

(* Non-TSO: a fenced store sequence to distinct words can only persist
   downward-closed cuts. *)
let prop_non_tso_respects_fences =
  QCheck.Test.make ~count:300 ~name:"non-TSO crash states respect fences"
    QCheck.(pair small_int (int_bound 6))
    (fun (seed, nwrites) ->
      let nwrites = nwrites + 2 in
      let config = Config.arm () in
      let a = Arena.create ~config ~words:4096 () in
      (* write to one word per line, fence between each *)
      for i = 0 to nwrites - 1 do
        Arena.write a (base + (i * Arena.words_per_line)) (i + 1);
        Arena.fence a
      done;
      Arena.power_fail a (Storelog.Non_tso_random (Prng.create seed));
      (* persisted values must form a prefix: if word i survived, all
         earlier (fence-ordered) words survived *)
      let ok = ref true in
      let seen_zero = ref false in
      for i = 0 to nwrites - 1 do
        let v = Arena.read a (base + (i * Arena.words_per_line)) in
        if v = 0 then seen_zero := true
        else if !seen_zero then ok := false
      done;
      !ok)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_volatile_read_your_writes;
      prop_flushed_stores_survive_keep_none;
      prop_keep_all_equals_volatile;
      prop_random_eviction_per_word_monotone;
      prop_clone_equivalence;
      prop_drain_then_keep_none_is_identity;
      prop_non_tso_respects_fences;
    ]
