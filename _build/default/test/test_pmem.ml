(* Tests for the persistent-memory simulator: store/flush semantics,
   crash states, allocator, cost accounting. *)

open Ff_pmem
module Prng = Ff_util.Prng

let mk ?(config = Config.default) ?(words = 4096) () =
  Arena.create ~config ~words ()

let test_read_write_roundtrip () =
  let a = mk () in
  Arena.write a 100 42;
  Arena.write a 101 (-7);
  Alcotest.(check int) "read back" 42 (Arena.read a 100);
  Alcotest.(check int) "read back 2" (-7) (Arena.read a 101)

let test_unflushed_store_not_persisted () =
  let a = mk () in
  Arena.write a 100 42;
  Alcotest.(check int) "persisted image unchanged" 0 (Arena.peek_persisted a 100);
  Arena.flush a 100;
  Alcotest.(check int) "persisted after flush" 42 (Arena.peek_persisted a 100)

let test_flush_covers_whole_line () =
  let a = mk () in
  (* words 96..103 share one line *)
  for i = 96 to 103 do
    Arena.write a i (i * 10)
  done;
  Arena.flush a 99;
  for i = 96 to 103 do
    Alcotest.(check int) "line persisted" (i * 10) (Arena.peek_persisted a i)
  done;
  Arena.write a 104 7;
  Alcotest.(check int) "next line untouched" 0 (Arena.peek_persisted a 104)

let test_power_fail_keep_none () =
  let a = mk () in
  Arena.write a 100 1;
  Arena.flush a 100;
  Arena.write a 100 2;
  Arena.write a 200 3;
  Arena.power_fail a Storelog.Keep_none;
  Alcotest.(check int) "only flushed value survives" 1 (Arena.read a 100);
  Alcotest.(check int) "unflushed lost" 0 (Arena.read a 200)

let test_power_fail_keep_all () =
  let a = mk () in
  Arena.write a 100 1;
  Arena.write a 200 3;
  Arena.power_fail a Storelog.Keep_all;
  Alcotest.(check int) "pending applied" 1 (Arena.read a 100);
  Alcotest.(check int) "pending applied 2" 3 (Arena.read a 200)

let test_power_fail_random_is_per_line_prefix () =
  (* Store a sequence to one line; after a random-eviction crash the
     line must contain a prefix of the store sequence. *)
  for seed = 0 to 20 do
    let a = mk () in
    Arena.write a 96 1;
    Arena.write a 97 2;
    Arena.write a 98 3;
    Arena.power_fail a (Storelog.Random_eviction (Prng.create seed));
    let v1 = Arena.read a 96 and v2 = Arena.read a 97 and v3 = Arena.read a 98 in
    let state = (v1, v2, v3) in
    let valid =
      List.mem state [ (0, 0, 0); (1, 0, 0); (1, 2, 0); (1, 2, 3) ]
    in
    Alcotest.(check bool) "prefix state" true valid
  done

let test_crash_plan_store_counting () =
  let a = mk () in
  Arena.set_crash_plan a (Arena.After_stores (Arena.store_count a + 2));
  Arena.write a 100 1;
  Arena.write a 101 2;
  let crashed =
    try
      Arena.write a 102 3;
      false
    with Arena.Crashed -> true
  in
  Alcotest.(check bool) "third store crashes" true crashed;
  Alcotest.(check int) "second store applied" 2 (Arena.peek a 101);
  Alcotest.(check int) "third store not applied" 0 (Arena.peek a 102)

let test_crash_plan_flush_counting () =
  let a = mk () in
  Arena.set_crash_plan a (Arena.After_flushes (Arena.flush_count a + 1));
  Arena.write a 100 1;
  Arena.flush a 100;
  let crashed = try Arena.flush a 100; false with Arena.Crashed -> true in
  Alcotest.(check bool) "second flush crashes" true crashed

let test_fence_epochs_non_tso () =
  (* Under Non_tso, stores in a later epoch must not persist unless all
     earlier-epoch stores do. *)
  let config = Config.arm () in
  let violations = ref 0 in
  for seed = 0 to 40 do
    let a = Arena.create ~config ~words:4096 () in
    Arena.write a 96 1;
    Arena.fence a;
    Arena.write a 104 2;
    (* different line, later epoch *)
    Arena.power_fail a (Storelog.Non_tso_random (Prng.create seed));
    let v1 = Arena.read a 96 and v2 = Arena.read a 104 in
    if v2 = 2 && v1 = 0 then incr violations
  done;
  Alcotest.(check int) "fence ordering respected" 0 !violations

let test_non_tso_without_fence_can_reorder () =
  (* Without a fence, the later store may persist without the earlier
     one — the hazard FAST's mfence_IF_NOT_TSO exists to prevent. *)
  let config = Config.arm () in
  let reordered = ref false in
  for seed = 0 to 100 do
    let a = Arena.create ~config ~words:4096 () in
    Arena.write a 96 1;
    Arena.write a 104 2;
    Arena.power_fail a (Storelog.Non_tso_random (Prng.create seed));
    if Arena.read a 104 = 2 && Arena.read a 96 = 0 then reordered := true
  done;
  Alcotest.(check bool) "reordering observable" true !reordered

let test_alloc_line_aligned_and_zeroed () =
  let a = mk () in
  Arena.write a 200 99;
  let n = Arena.alloc a 10 in
  Alcotest.(check int) "line aligned" 0 (n mod Arena.words_per_line);
  Alcotest.(check bool) "beyond reserved" true (n >= Arena.reserved_words);
  for i = n to n + 15 do
    Alcotest.(check int) "zeroed (rounded to lines)" 0 (Arena.read a i)
  done

let test_alloc_free_reuse () =
  let a = mk () in
  let n1 = Arena.alloc a 16 in
  Arena.free a n1 16;
  let n2 = Arena.alloc_raw a 16 in
  Alcotest.(check int) "freed block reused" n1 n2

let test_alloc_out_of_memory () =
  let a = mk ~words:256 () in
  let raised =
    try
      ignore (Arena.alloc a 1024);
      false
    with Out_of_memory -> true
  in
  Alcotest.(check bool) "out of memory" true raised

let test_root_slots_failure_atomic () =
  let a = mk () in
  Arena.root_set a 0 1234;
  Arena.power_fail a Storelog.Keep_none;
  Alcotest.(check int) "root survives crash" 1234 (Arena.root_get a 0)

let test_stats_counting () =
  let a = mk () in
  Arena.reset_stats a;
  Arena.write a 100 1;
  Arena.write a 101 2;
  ignore (Arena.read a 100);
  Arena.flush a 100;
  Arena.fence a;
  let s = Arena.total_stats a in
  Alcotest.(check int) "stores" 2 s.Stats.stores;
  Alcotest.(check int) "loads" 1 s.Stats.loads;
  Alcotest.(check int) "flushes" 1 s.Stats.flushes;
  Alcotest.(check bool) "fences >= 2 (flush implies fence)" true (s.Stats.fences >= 2)

let test_latency_charging () =
  let config = Config.pm ~read_ns:300 ~write_ns:500 () in
  let a = Arena.create ~config ~words:65536 () in
  Arena.reset_stats a;
  (* A miss far from previous accesses costs the full read latency. *)
  ignore (Arena.read a 30000);
  let s = Arena.total_stats a in
  Alcotest.(check bool) "miss charged ~read latency" true (Stats.total_ns s >= 300);
  Arena.reset_stats a;
  ignore (Arena.read a 30001);
  (* same line: hit *)
  let s = Arena.total_stats a in
  Alcotest.(check bool) "hit is cheap" true (Stats.total_ns s < 10);
  Arena.reset_stats a;
  Arena.flush a 30000;
  let s = Arena.total_stats a in
  Alcotest.(check int) "flush charged write latency" 500 s.Stats.flush_ns

let test_sequential_miss_discount () =
  let config = Config.pm ~read_ns:400 ~write_ns:400 () in
  let a = Arena.create ~config ~words:(1 lsl 16) () in
  Arena.reset_stats a;
  ignore (Arena.read a 1024);
  (* line 128: miss, full cost *)
  ignore (Arena.read a 1032);
  (* line 129: sequential miss, discounted *)
  let s = Arena.total_stats a in
  Alcotest.(check int) "misses" 2 s.Stats.line_misses;
  Alcotest.(check int) "one sequential" 1 s.Stats.seq_misses;
  Alcotest.(check bool) "discount applied" true
    (Stats.total_ns s < 2 * 400 && Stats.total_ns s >= 400 + (400 / 4))

let test_phase_buckets () =
  let a = mk () in
  Arena.reset_stats a;
  Arena.set_phase a Stats.Search;
  ignore (Arena.read a 2048);
  Arena.set_phase a Stats.Update;
  Arena.write a 2048 5;
  Arena.set_phase a Stats.Other;
  let s = Arena.total_stats a in
  Alcotest.(check bool) "search bucket nonzero" true (s.Stats.search_ns > 0);
  Alcotest.(check bool) "update bucket nonzero" true (s.Stats.update_ns > 0)

let test_clone_independent () =
  let a = mk () in
  Arena.write a 100 1;
  Arena.drain a;
  let b = Arena.clone a in
  Arena.write a 100 2;
  Alcotest.(check int) "clone sees old value" 1 (Arena.read b 100);
  Arena.write b 100 3;
  Alcotest.(check int) "original unaffected" 2 (Arena.read a 100)

let test_drain_persists_everything () =
  let a = mk () in
  Arena.write a 100 1;
  Arena.write a 900 2;
  Arena.drain a;
  Alcotest.(check int) "persisted 1" 1 (Arena.peek_persisted a 100);
  Alcotest.(check int) "persisted 2" 2 (Arena.peek_persisted a 900)

let test_storelog_eviction_bounded () =
  let config = { Config.default with pending_high_water = 128 } in
  let a = Arena.create ~config ~words:65536 () in
  for i = 0 to 10_000 do
    Arena.write a (Arena.reserved_words + (i mod 50_000)) i
  done;
  Alcotest.(check bool) "pending bounded" true (Arena.dirty_line_count a < 4096)

let test_per_thread_stats () =
  let a = mk () in
  Arena.reset_stats a;
  Arena.set_tid a 0;
  ignore (Arena.read a 100);
  Arena.set_tid a 1;
  ignore (Arena.read a 200);
  ignore (Arena.read a 300);
  Alcotest.(check int) "tid 0 loads" 1 (Arena.stats a 0).Stats.loads;
  Alcotest.(check int) "tid 1 loads" 2 (Arena.stats a 1).Stats.loads;
  Arena.set_tid a 0

let test_cachesim_lru () =
  let c = Cachesim.create ~capacity:2 in
  ignore (Cachesim.access c 1);
  ignore (Cachesim.access c 2);
  Alcotest.(check bool) "1 resident" true (Cachesim.resident c 1);
  ignore (Cachesim.access c 3);
  (* evicts 1 (LRU) *)
  Alcotest.(check bool) "1 evicted" false (Cachesim.resident c 1);
  Alcotest.(check bool) "2 resident" true (Cachesim.resident c 2);
  (match Cachesim.access c 2 with
  | Cachesim.Hit -> ()
  | Cachesim.Miss _ -> Alcotest.fail "expected hit");
  ignore (Cachesim.access c 4);
  Alcotest.(check bool) "3 evicted after 2 touched" false (Cachesim.resident c 3)

let test_cachesim_sequential_detection () =
  let c = Cachesim.create ~capacity:16 in
  (match Cachesim.access c 10 with
  | Cachesim.Miss { sequential = false } -> ()
  | _ -> Alcotest.fail "first access: non-sequential miss");
  match Cachesim.access c 11 with
  | Cachesim.Miss { sequential = true } -> ()
  | _ -> Alcotest.fail "adjacent line: sequential miss"

let suite =
  [
    Alcotest.test_case "read/write roundtrip" `Quick test_read_write_roundtrip;
    Alcotest.test_case "unflushed not persisted" `Quick test_unflushed_store_not_persisted;
    Alcotest.test_case "flush covers line" `Quick test_flush_covers_whole_line;
    Alcotest.test_case "power fail keep none" `Quick test_power_fail_keep_none;
    Alcotest.test_case "power fail keep all" `Quick test_power_fail_keep_all;
    Alcotest.test_case "random eviction = line prefix" `Quick test_power_fail_random_is_per_line_prefix;
    Alcotest.test_case "crash plan stores" `Quick test_crash_plan_store_counting;
    Alcotest.test_case "crash plan flushes" `Quick test_crash_plan_flush_counting;
    Alcotest.test_case "non-TSO fences ordered" `Quick test_fence_epochs_non_tso;
    Alcotest.test_case "non-TSO reorders without fence" `Quick test_non_tso_without_fence_can_reorder;
    Alcotest.test_case "alloc aligned+zeroed" `Quick test_alloc_line_aligned_and_zeroed;
    Alcotest.test_case "alloc free reuse" `Quick test_alloc_free_reuse;
    Alcotest.test_case "alloc OOM" `Quick test_alloc_out_of_memory;
    Alcotest.test_case "root slot atomic" `Quick test_root_slots_failure_atomic;
    Alcotest.test_case "stats counting" `Quick test_stats_counting;
    Alcotest.test_case "latency charging" `Quick test_latency_charging;
    Alcotest.test_case "sequential discount" `Quick test_sequential_miss_discount;
    Alcotest.test_case "phase buckets" `Quick test_phase_buckets;
    Alcotest.test_case "clone independent" `Quick test_clone_independent;
    Alcotest.test_case "drain persists" `Quick test_drain_persists_everything;
    Alcotest.test_case "storelog eviction bounded" `Quick test_storelog_eviction_bounded;
    Alcotest.test_case "per-thread stats" `Quick test_per_thread_stats;
    Alcotest.test_case "cachesim LRU" `Quick test_cachesim_lru;
    Alcotest.test_case "cachesim sequential" `Quick test_cachesim_sequential_detection;
  ]

let test_save_load_file () =
  let a = mk ~words:(1 lsl 12) () in
  Arena.write a 100 42;
  Arena.flush a 100;
  Arena.write a 200 7;
  (* unflushed: must NOT survive the file image *)
  let path = Filename.temp_file "arena" ".img" in
  Arena.save_to_file a path;
  let b = Arena.load_from_file path in
  Sys.remove path;
  Alcotest.(check int) "flushed word survives" 42 (Arena.read b 100);
  Alcotest.(check int) "unflushed word lost" 0 (Arena.read b 200);
  (* arena remains usable: allocation continues past the old bump *)
  let n = Arena.alloc b 8 in
  Alcotest.(check bool) "alloc past restored bump" true (n >= Arena.reserved_words)

let test_save_load_roundtrip_tree () =
  let a = mk ~words:(1 lsl 16) () in
  let t = Ff_fastfair.Tree.create ~node_bytes:128 a in
  for k = 1 to 300 do
    Ff_fastfair.Tree.insert t ~key:k ~value:((2 * k) + 1)
  done;
  Arena.drain a;
  let path = Filename.temp_file "tree" ".img" in
  Arena.save_to_file a path;
  let b = Arena.load_from_file path in
  Sys.remove path;
  let t2 = Ff_fastfair.Tree.open_existing ~node_bytes:128 b in
  Ff_fastfair.Tree.recover t2;
  for k = 1 to 300 do
    Alcotest.(check (option int)) "key survives file roundtrip" (Some ((2 * k) + 1))
      (Ff_fastfair.Tree.search t2 k)
  done;
  (* and keeps accepting writes *)
  Ff_fastfair.Tree.insert t2 ~key:301 ~value:603;
  Alcotest.(check (option int)) "post-reload insert" (Some 603)
    (Ff_fastfair.Tree.search t2 301)

let file_tests =
  [
    Alcotest.test_case "save/load file image" `Quick test_save_load_file;
    Alcotest.test_case "save/load tree roundtrip" `Quick test_save_load_roundtrip_tree;
  ]

let suite = suite @ file_tests
