(* The invariant checker must actually catch each class of corruption
   — otherwise the crash tests prove nothing.  Each test plants one
   specific defect with raw stores and asserts the checker reports it. *)

open Ff_pmem
open Ff_fastfair

let value_of k = (2 * k) + 1

let mk ?(n = 200) () =
  let a = Arena.create ~words:(1 lsl 20) () in
  let t = Tree.create ~node_bytes:128 a in
  for k = 1 to n do
    Tree.insert t ~key:k ~value:(value_of k)
  done;
  (a, t)

let some_leaf t =
  (* a non-root leaf *)
  let a = Tree.arena t in
  List.find
    (fun n -> Arena.peek a (n + Layout.off_level) = 0 && n <> Tree.root t)
    (Tree.reachable_nodes t)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let expect_violation t pattern =
  match Invariant.check t with
  | [] -> Alcotest.failf "checker missed corruption (wanted %S)" pattern
  | vs ->
      Alcotest.(check bool)
        (Printf.sprintf "reports %S (got: %s)" pattern (String.concat " | " vs))
        true
        (List.exists (fun v -> contains_substring v pattern) vs)

let test_clean_tree_passes () =
  let _, t = mk () in
  Alcotest.(check (list string)) "no violations" [] (Invariant.check t)

let test_detects_unsorted_keys () =
  let a, t = mk () in
  let leaf = some_leaf t in
  Arena.write a (leaf + Layout.key_off 1) 0;
  expect_violation t "ascending"

let test_detects_duplicate_pointer_garbage () =
  let a, t = mk () in
  let leaf = some_leaf t in
  (* make records[1].ptr equal records[0].ptr *)
  Arena.write a (leaf + Layout.ptr_off 1) (Arena.peek a (leaf + Layout.ptr_off 0));
  expect_violation t "garbage"

let test_detects_broken_terminator () =
  let a, t = mk () in
  let leaf = some_leaf t in
  let l = Tree.layout t in
  (* nonzero pointer beyond the record terminator *)
  Arena.write a (leaf + Layout.ptr_off (l.Layout.capacity - 1)) 77777;
  expect_violation t "terminator"

let test_detects_bad_count_hint () =
  let a, t = mk () in
  let leaf = some_leaf t in
  Arena.write a (leaf + Layout.off_count) 1234;
  expect_violation t "count hint"

let test_detects_bad_anchor () =
  let a, t = mk () in
  let leaf = some_leaf t in
  Arena.write a (leaf + Layout.off_leftmost) 8;
  expect_violation t "anchor"

let test_detects_root_sibling () =
  let a, t = mk () in
  let leaf = some_leaf t in
  Arena.write a (Tree.root t + Layout.off_sibling) leaf;
  expect_violation t "root"

let test_detects_duplicate_values () =
  let a, t = mk () in
  let leaf = some_leaf t in
  (* clone another leaf's value into this one *)
  Arena.write a (leaf + Layout.ptr_off 0) (value_of 1);
  ignore (Invariant.check t);
  (* the planted value collides with key 1's value somewhere *)
  expect_violation t "duplicated"

let test_detects_low_key_violation () =
  let a, t = mk () in
  let leaf = some_leaf t in
  (* first key below the node's published lower bound *)
  let low = Arena.peek a (leaf + Layout.off_low) in
  if low > 0 then begin
    Arena.write a (leaf + Layout.off_low) (low + 1);
    expect_violation t "low"
  end

let test_keys_listing () =
  let _, t = mk ~n:50 () in
  Alcotest.(check (list int)) "keys in order" (List.init 50 (fun i -> i + 1))
    (Invariant.keys t)

let suite =
  [
    Alcotest.test_case "clean tree passes" `Quick test_clean_tree_passes;
    Alcotest.test_case "detects unsorted keys" `Quick test_detects_unsorted_keys;
    Alcotest.test_case "detects dup-pointer garbage" `Quick test_detects_duplicate_pointer_garbage;
    Alcotest.test_case "detects broken terminator" `Quick test_detects_broken_terminator;
    Alcotest.test_case "detects bad count hint" `Quick test_detects_bad_count_hint;
    Alcotest.test_case "detects bad anchor" `Quick test_detects_bad_anchor;
    Alcotest.test_case "detects root sibling" `Quick test_detects_root_sibling;
    Alcotest.test_case "detects duplicate values" `Quick test_detects_duplicate_values;
    Alcotest.test_case "detects low-key violation" `Quick test_detects_low_key_violation;
    Alcotest.test_case "keys listing" `Quick test_keys_listing;
  ]
