(* Additional FAST+FAIR coverage: extreme node sizes, non-TSO
   tree-level crashes, leaf-lock variant crashes, binary-mode
   recovery, concurrent range scans, switch-direction stress. *)

open Ff_pmem
open Ff_fastfair
module Prng = Ff_util.Prng
module Mcsim = Ff_mcsim.Mcsim
module Locks = Ff_index.Locks

let value_of k = (2 * k) + 1

let mk_arena ?(config = Config.default) ?(words = 1 lsl 21) () =
  Arena.create ~config ~words ()

let test_extreme_node_sizes () =
  List.iter
    (fun node_bytes ->
      let a = mk_arena () in
      let t = Tree.create ~node_bytes a in
      let rng = Prng.create node_bytes in
      let keys = Array.init 1500 (fun i -> (2 * i) + 1) in
      Prng.shuffle rng keys;
      Array.iter (fun k -> Tree.insert t ~key:k ~value:(value_of k)) keys;
      Array.iter
        (fun k ->
          Alcotest.(check (option int))
            (Printf.sprintf "%dB find" node_bytes)
            (Some (value_of k)) (Tree.search t k))
        keys;
      Alcotest.(check (option int)) "miss" None (Tree.search t 2);
      Invariant.check_exn t)
    [ 128; 256; 4096 ]

let test_min_capacity_layout () =
  (* 128B nodes: capacity 4, the minimum that still splits sanely. *)
  let l = Layout.make ~node_bytes:128 in
  Alcotest.(check int) "capacity" 4 l.Layout.capacity;
  let l = Layout.make ~node_bytes:4096 in
  Alcotest.(check int) "capacity 4KB" 252 l.Layout.capacity

let test_rejects_bad_node_bytes () =
  Alcotest.check_raises "too small"
    (Invalid_argument "Layout.make: node_bytes must be a power of two >= 128")
    (fun () -> ignore (Layout.make ~node_bytes:64));
  Alcotest.check_raises "not a power of two"
    (Invalid_argument "Layout.make: node_bytes must be a power of two >= 128")
    (fun () -> ignore (Layout.make ~node_bytes:777))

let test_rejects_bad_keys_values () =
  let a = mk_arena () in
  let t = Tree.create a in
  Alcotest.check_raises "key 0" (Invalid_argument "Tree.insert: key must be positive")
    (fun () -> Tree.insert t ~key:0 ~value:1);
  Alcotest.check_raises "value 0" (Invalid_argument "Tree.insert: value must be nonzero")
    (fun () -> Tree.insert t ~key:1 ~value:0)

let test_empty_tree_operations () =
  let a = mk_arena () in
  let t = Tree.create a in
  Alcotest.(check (option int)) "search empty" None (Tree.search t 5);
  Alcotest.(check bool) "delete empty" false (Tree.delete t 5);
  let n = ref 0 in
  Tree.range t ~lo:1 ~hi:100 (fun _ _ -> incr n);
  Alcotest.(check int) "range empty" 0 !n;
  Alcotest.(check int) "height" 1 (Tree.height t);
  Invariant.check_exn t

let test_delete_everything_then_refill () =
  let a = mk_arena () in
  let t = Tree.create ~node_bytes:128 a in
  for round = 1 to 3 do
    for k = 1 to 400 do
      Tree.insert t ~key:k ~value:(value_of (k + (round * 1000)))
    done;
    for k = 1 to 400 do
      Alcotest.(check bool) "delete" true (Tree.delete t k)
    done;
    Alcotest.(check (list int)) "empty after round" [] (Invariant.keys t)
  done;
  for k = 1 to 400 do
    Tree.insert t ~key:k ~value:(value_of k)
  done;
  Invariant.check_exn t

let test_switch_direction_stress () =
  (* Alternate insert/delete so the switch counter flips constantly;
     searches interleave in both directions. *)
  let a = mk_arena () in
  let t = Tree.create ~node_bytes:128 a in
  let rng = Prng.create 99 in
  let model = Hashtbl.create 256 in
  for _ = 1 to 4000 do
    let k = 1 + Prng.int rng 300 in
    if Prng.bool rng then begin
      Tree.insert t ~key:k ~value:(value_of k);
      Hashtbl.replace model k ()
    end
    else begin
      ignore (Tree.delete t k);
      Hashtbl.remove model k
    end;
    (* immediate read-back in the opposite-parity state *)
    let expect = if Hashtbl.mem model k then Some (value_of k) else None in
    Alcotest.(check (option int)) "read-back" expect (Tree.search t k)
  done;
  Invariant.check_exn t

let test_non_tso_tree_crash_enum () =
  (* Tree-level crash enumeration under the ARM memory model with
     dmb fences active: split + root growth must stay endurable. *)
  let config = Config.arm () in
  let a0 = Arena.create ~config ~words:(1 lsl 20) () in
  let t0 = Tree.create ~node_bytes:128 a0 in
  let setup = [ 10; 20; 30; 40 ] in
  List.iter (fun k -> Tree.insert t0 ~key:k ~value:(value_of k)) setup;
  Arena.drain a0;
  let total =
    let c = Arena.clone a0 in
    let tc = Tree.open_existing ~node_bytes:128 c in
    let b = Arena.store_count c in
    Tree.insert tc ~key:25 ~value:(value_of 25);
    Arena.store_count c - b
  in
  for k = 0 to total do
    for seed = 0 to 3 do
      let c = Arena.clone a0 in
      let tc = Tree.open_existing ~node_bytes:128 c in
      Arena.set_crash_plan c (Arena.After_stores (Arena.store_count c + k));
      (try Tree.insert tc ~key:25 ~value:(value_of 25) with Arena.Crashed -> ());
      Arena.power_fail c (Storelog.Non_tso_random (Prng.create ((k * 17) + seed)));
      let tc = Tree.open_existing ~node_bytes:128 c in
      List.iter
        (fun key ->
          Alcotest.(check (option int))
            (Printf.sprintf "non-tso crash@%d seed %d key %d" k seed key)
            (Some (value_of key)) (Tree.search tc key))
        setup;
      Tree.recover tc;
      match Invariant.check tc with
      | [] -> ()
      | vs -> Alcotest.failf "non-tso crash@%d: %s" k (String.concat "; " vs)
    done
  done

let test_leaflock_crash_enum () =
  (* The serializable variant must be exactly as endurable. *)
  let a0 = mk_arena ~words:(1 lsl 20) () in
  let t0 = Tree.create ~node_bytes:128 ~leaf_read_locks:true a0 in
  let setup = [ 10; 20; 30; 40 ] in
  List.iter (fun k -> Tree.insert t0 ~key:k ~value:(value_of k)) setup;
  Arena.drain a0;
  let total =
    let c = Arena.clone a0 in
    let tc = Tree.open_existing ~node_bytes:128 ~leaf_read_locks:true c in
    let b = Arena.store_count c in
    Tree.insert tc ~key:25 ~value:(value_of 25);
    Arena.store_count c - b
  in
  for k = 0 to total do
    let c = Arena.clone a0 in
    let tc = Tree.open_existing ~node_bytes:128 ~leaf_read_locks:true c in
    Arena.set_crash_plan c (Arena.After_stores (Arena.store_count c + k));
    (try Tree.insert tc ~key:25 ~value:(value_of 25) with Arena.Crashed -> ());
    Arena.power_fail c Storelog.Keep_all;
    let tc = Tree.open_existing ~node_bytes:128 ~leaf_read_locks:true c in
    List.iter
      (fun key ->
        Alcotest.(check (option int))
          (Printf.sprintf "leaflock crash@%d key %d" k key)
          (Some (value_of key)) (Tree.search tc key))
      setup;
    Tree.recover tc;
    Invariant.check_exn tc
  done

let test_binary_mode_crash_recovery () =
  (* Binary mode relies on count hints; recovery must rebuild them. *)
  let a = mk_arena () in
  let t = Tree.create ~node_bytes:256 ~mode:Node.Binary a in
  for k = 1 to 500 do
    Tree.insert t ~key:k ~value:(value_of k)
  done;
  Arena.power_fail a Storelog.Keep_all;
  let t = Tree.open_existing ~node_bytes:256 ~mode:Node.Binary a in
  Tree.recover t;
  for k = 1 to 500 do
    Alcotest.(check (option int)) "binary post-crash" (Some (value_of k)) (Tree.search t k)
  done;
  for k = 501 to 600 do
    Tree.insert t ~key:k ~value:(value_of k)
  done;
  Invariant.check_exn t

let test_concurrent_range_scans () =
  (* Range scans racing with writers return each surviving key at most
     once and in order. *)
  let a = mk_arena () in
  let t = Tree.create ~node_bytes:128 ~lock_mode:Locks.Sim a in
  ignore
    (Mcsim.run ~arena:a
       [|
         (fun _ ->
           for k = 1 to 300 do
             Tree.insert t ~key:(2 * k) ~value:(value_of (2 * k))
           done);
       |]);
  let bad = ref [] in
  let scanner tid =
    for _ = 1 to 5 do
      let last = ref 0 in
      Tree.range t ~lo:1 ~hi:10_000 (fun k _ ->
          if k <= !last then
            bad := Printf.sprintf "tid %d: %d after %d" tid k !last :: !bad;
          last := k)
    done
  in
  let writer _ =
    for k = 1 to 150 do
      Tree.insert t ~key:((2 * k) + 601) ~value:(value_of ((2 * k) + 601));
      ignore (Tree.delete t ((2 * k) + 601))
    done
  in
  ignore (Mcsim.run ~cores:8 ~quantum_ns:1 ~arena:a [| scanner; writer; scanner; writer |]);
  Alcotest.(check (list string)) "ordered, deduplicated scans" [] !bad;
  Invariant.check_exn t

let test_values_at_extremes () =
  let a = mk_arena () in
  let t = Tree.create a in
  let big = (1 lsl 60) - 1 in
  Tree.insert t ~key:big ~value:max_int;
  Tree.insert t ~key:1 ~value:(-1);
  Alcotest.(check (option int)) "max-ish key" (Some max_int) (Tree.search t big);
  Alcotest.(check (option int)) "negative value" (Some (-1)) (Tree.search t 1)

let test_many_crash_recover_cycles () =
  (* Crash, recover, keep writing — ten times in a row. *)
  let a = mk_arena ~words:(1 lsl 22) () in
  let t = ref (Tree.create ~node_bytes:256 a) in
  let model = Hashtbl.create 512 in
  let rng = Prng.create 5 in
  for cycle = 1 to 10 do
    Arena.set_crash_plan a (Arena.After_stores (Arena.store_count a + 400 + Prng.int rng 2000));
    (try
       for _ = 1 to 500 do
         let k = 1 + Prng.int rng 3000 in
         Tree.insert !t ~key:k ~value:(value_of k);
         Hashtbl.replace model k (value_of k)
       done
     with Arena.Crashed -> ());
    Arena.power_fail a (Storelog.Random_eviction (Prng.create cycle));
    t := Tree.open_existing ~node_bytes:256 a;
    Tree.recover !t;
    Hashtbl.iter
      (fun k v ->
        Alcotest.(check (option int))
          (Printf.sprintf "cycle %d key %d" cycle k)
          (Some v) (Tree.search !t k))
      model;
    Invariant.check_exn !t
  done

let suite =
  [
    Alcotest.test_case "extreme node sizes" `Quick test_extreme_node_sizes;
    Alcotest.test_case "layout capacities" `Quick test_min_capacity_layout;
    Alcotest.test_case "rejects bad node bytes" `Quick test_rejects_bad_node_bytes;
    Alcotest.test_case "rejects bad keys/values" `Quick test_rejects_bad_keys_values;
    Alcotest.test_case "empty tree ops" `Quick test_empty_tree_operations;
    Alcotest.test_case "delete all, refill" `Quick test_delete_everything_then_refill;
    Alcotest.test_case "switch direction stress" `Quick test_switch_direction_stress;
    Alcotest.test_case "non-TSO tree crash enum" `Slow test_non_tso_tree_crash_enum;
    Alcotest.test_case "leaflock crash enum" `Quick test_leaflock_crash_enum;
    Alcotest.test_case "binary mode crash" `Quick test_binary_mode_crash_recovery;
    Alcotest.test_case "concurrent range scans" `Quick test_concurrent_range_scans;
    Alcotest.test_case "extreme values" `Quick test_values_at_extremes;
    Alcotest.test_case "crash/recover cycles" `Quick test_many_crash_recover_cycles;
  ]
