test/test_pmem_props.ml: Arena Array Config Ff_pmem Ff_util Hashtbl List Printf QCheck QCheck_alcotest Storelog String
