test/test_util.ml: Alcotest Array Ff_util Heap Prng Stats String Table Vec Zipf
