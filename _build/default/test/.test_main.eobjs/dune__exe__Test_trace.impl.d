test/test_trace.ml: Alcotest Array Ff_fastfair Ff_index Ff_mcsim Ff_pmem Ff_trace Ff_util Ff_workload Hashtbl List Option Printf
