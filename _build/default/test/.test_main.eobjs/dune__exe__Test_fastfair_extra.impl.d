test/test_fastfair_extra.ml: Alcotest Arena Array Config Ff_fastfair Ff_index Ff_mcsim Ff_pmem Ff_util Hashtbl Invariant Layout List Node Printf Storelog String Tree
