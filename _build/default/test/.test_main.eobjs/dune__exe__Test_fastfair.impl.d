test/test_fastfair.ml: Alcotest Arena Array Config Ff_fastfair Ff_pmem Ff_util Hashtbl Int Invariant Layout List Node Printf QCheck QCheck_alcotest Set Storelog String Tree
