test/test_mcsim.ml: Alcotest Arena Array Ff_fastfair Ff_index Ff_mcsim Ff_pmem Ff_util List Printf
