test/test_baselines.ml: Alcotest Arena Array Ff_blink Ff_fastfair Ff_fptree Ff_index Ff_pmem Ff_skiplist Ff_util Ff_wbtree Ff_wort Hashtbl List Printf Stats Storelog
