test/test_pmem.ml: Alcotest Arena Cachesim Config Ff_fastfair Ff_pmem Ff_util Filename List Stats Storelog Sys
