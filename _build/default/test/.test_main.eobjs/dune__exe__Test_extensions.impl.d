test/test_extensions.ml: Alcotest Arena Array Bulk Compact Cursor Ff_fastfair Ff_pmem Ff_util Ff_workload Invariant Layout List Node Printf Storelog String Tree
