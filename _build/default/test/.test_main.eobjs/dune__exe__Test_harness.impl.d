test/test_harness.ml: Alcotest Arena Array Ff_fastfair Ff_fptree Ff_index Ff_pmem Ff_skiplist Ff_util Ff_wbtree Ff_workload Ff_wort List Printf
