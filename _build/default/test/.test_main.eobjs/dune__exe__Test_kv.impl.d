test/test_kv.ml: Alcotest Arena Ff_fastfair Ff_pmem Ff_util Hashtbl Kv List Printf Storelog
