test/test_workload.ml: Alcotest Arena Array Ff_fastfair Ff_index Ff_pmem Ff_skiplist Ff_tpcc Ff_util Ff_wbtree Ff_workload Hashtbl List Option Storelog String
