test/test_invariant.ml: Alcotest Arena Ff_fastfair Ff_pmem Invariant Layout List Printf String Tree
