(* The Kv layer: arbitrary (duplicate/zero) values over FAST+FAIR via
   persistent value cells. *)

open Ff_pmem
open Ff_fastfair
module Prng = Ff_util.Prng

let mk () =
  let a = Arena.create ~words:(1 lsl 21) () in
  (a, Kv.create ~node_bytes:256 a)

let test_basic () =
  let _, kv = mk () in
  Kv.put kv ~key:1 ~value:100;
  Kv.put kv ~key:2 ~value:100;
  (* duplicate values OK *)
  Kv.put kv ~key:3 ~value:0;
  (* zero values OK *)
  Alcotest.(check (option int)) "k1" (Some 100) (Kv.get kv 1);
  Alcotest.(check (option int)) "k2" (Some 100) (Kv.get kv 2);
  Alcotest.(check (option int)) "k3 zero" (Some 0) (Kv.get kv 3);
  Alcotest.(check (option int)) "miss" None (Kv.get kv 4)

let test_update_in_place () =
  let a, kv = mk () in
  Kv.put kv ~key:9 ~value:1;
  let stores_before = Arena.store_count a in
  Kv.put kv ~key:9 ~value:2;
  let delta = Arena.store_count a - stores_before in
  Alcotest.(check (option int)) "updated" (Some 2) (Kv.get kv 9);
  Alcotest.(check bool) "update is a single store" true (delta = 1)

let test_vs_model () =
  let _, kv = mk () in
  let rng = Prng.create 7 in
  let model = Hashtbl.create 256 in
  for _ = 1 to 5000 do
    let k = 1 + Prng.int rng 800 in
    match Prng.int rng 10 with
    | 0 ->
        let expected = Hashtbl.mem model k in
        Alcotest.(check bool) "delete" expected (Kv.delete kv k);
        Hashtbl.remove model k
    | _ ->
        let v = Prng.int rng 50 in
        (* heavily duplicated values *)
        Kv.put kv ~key:k ~value:v;
        Hashtbl.replace model k v
  done;
  Hashtbl.iter
    (fun k v -> Alcotest.(check (option int)) "model" (Some v) (Kv.get kv k))
    model

let test_range_reads_cells () =
  let _, kv = mk () in
  for k = 1 to 100 do
    Kv.put kv ~key:k ~value:(k mod 5)
  done;
  let acc = ref [] in
  Kv.range kv ~lo:10 ~hi:14 (fun k v -> acc := (k, v) :: !acc);
  Alcotest.(check (list (pair int int))) "range"
    [ (10, 0); (11, 1); (12, 2); (13, 3); (14, 4) ]
    (List.rev !acc)

let test_cell_reuse () =
  let a, kv = mk () in
  for k = 1 to 100 do
    Kv.put kv ~key:k ~value:k
  done;
  let used = Arena.used_words a in
  for k = 1 to 100 do
    ignore (Kv.delete kv k)
  done;
  for k = 101 to 200 do
    Kv.put kv ~key:k ~value:k
  done;
  (* cells recycled: little new allocation beyond node churn *)
  Alcotest.(check bool) "bounded growth" true (Arena.used_words a - used < 2048);
  for k = 101 to 200 do
    Alcotest.(check (option int)) "reused cells correct" (Some k) (Kv.get kv k)
  done

let test_crash_durability () =
  let a, kv = mk () in
  let committed = ref [] in
  Arena.set_crash_plan a (Arena.After_stores (Arena.store_count a + 3000));
  (try
     for k = 1 to 500 do
       Kv.put kv ~key:k ~value:(k * 7);
       committed := k :: !committed
     done
   with Arena.Crashed -> ());
  Arena.power_fail a (Storelog.Random_eviction (Prng.create 1));
  let kv = Kv.open_existing ~node_bytes:256 a in
  Kv.recover kv;
  List.iter
    (fun k ->
      Alcotest.(check (option int))
        (Printf.sprintf "committed %d" k)
        (Some (k * 7)) (Kv.get kv k))
    !committed;
  (* keeps working post-recovery *)
  Kv.put kv ~key:9999 ~value:1;
  Alcotest.(check (option int)) "post-recovery" (Some 1) (Kv.get kv 9999)

let test_crash_update_atomic () =
  (* An in-place value update is one atomic store: after any crash the
     cell holds the old or the new value, nothing else. *)
  let a, kv = mk () in
  Kv.put kv ~key:5 ~value:111;
  Arena.drain a;
  for k = 0 to 3 do
    let c = Arena.clone a in
    let kvc = Kv.open_existing ~node_bytes:256 c in
    Arena.set_crash_plan c (Arena.After_stores (Arena.store_count c + k));
    (try Kv.put kvc ~key:5 ~value:222 with Arena.Crashed -> ());
    Arena.power_fail c Storelog.Keep_all;
    let kvc = Kv.open_existing ~node_bytes:256 c in
    match Kv.get kvc 5 with
    | Some 111 | Some 222 -> ()
    | other ->
        Alcotest.failf "crash@%d: got %s" k
          (match other with Some v -> string_of_int v | None -> "none")
  done

let suite =
  [
    Alcotest.test_case "kv basic" `Quick test_basic;
    Alcotest.test_case "kv update in place" `Quick test_update_in_place;
    Alcotest.test_case "kv vs model" `Quick test_vs_model;
    Alcotest.test_case "kv range" `Quick test_range_reads_cells;
    Alcotest.test_case "kv cell reuse" `Quick test_cell_reuse;
    Alcotest.test_case "kv crash durability" `Quick test_crash_durability;
    Alcotest.test_case "kv crash update atomic" `Quick test_crash_update_atomic;
  ]
