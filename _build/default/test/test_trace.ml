(* Observability: event rings, metrics, Perfetto export.

   The interesting property is the last test: under a preempt-every-
   access quantum, lock-free readers racing a FAST shift *observe* the
   transient duplicate-adjacent-pointer state the paper argues is
   endurable — and the tracer counts each tolerated occurrence. *)

module Arena = Ff_pmem.Arena
module Config = Ff_pmem.Config
module Mcsim = Ff_mcsim.Mcsim
module Locks = Ff_index.Locks
module Tree = Ff_fastfair.Tree
module Trace = Ff_trace.Trace
module Metrics = Ff_trace.Metrics
module Json = Ff_trace.Json
module Perfetto = Ff_trace.Perfetto
module Prng = Ff_util.Prng
module W = Ff_workload.Workload

let get_exn what = function Some v -> v | None -> Alcotest.fail ("missing " ^ what)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\nd");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("l", Json.Arr [ Json.Null; Json.Bool true; Json.Bool false ]);
        ("o", Json.Obj [ ("nested", Json.Int 7) ]);
      ]
  in
  let doc' = Json.of_string (Json.to_string doc) in
  Alcotest.(check bool) "roundtrip" true (doc = doc');
  Alcotest.(check string) "string survives escaping" "a\"b\\c\nd"
    (get_exn "s" (Option.bind (Json.member "s" doc') Json.to_str))

let test_ring_wraparound () =
  let tr = Trace.create ~capacity:32 () in
  let tick = Trace.intern tr "tick" in
  for i = 1 to 100 do
    Trace.instant tr tick i
  done;
  Alcotest.(check int) "kept" 32 (Trace.event_count tr);
  Alcotest.(check int) "dropped" 68 (Trace.dropped_count tr);
  let details = ref [] in
  Trace.iter_events tr (fun ~tid:_ ~ts:_ ev ->
      match ev with
      | Trace.Inst { name = "tick"; detail } -> details := detail :: !details
      | _ -> ());
  let details = List.rev !details in
  Alcotest.(check int) "oldest surviving event" 69 (List.hd details);
  Alcotest.(check int) "newest event" 100 (List.nth details 31);
  ignore
    (List.fold_left
       (fun prev d ->
         if d <= prev then Alcotest.fail "events out of order after wrap";
         d)
       0 details)

let test_null_inert () =
  Trace.dup_skip Trace.null ~leaf:true;
  Trace.span_begin Trace.null Trace.id_insert 1;
  Trace.span_end Trace.null Trace.id_insert;
  Trace.incr Trace.null "x";
  Trace.observe Trace.null "h" 5;
  Alcotest.(check int) "no events" 0 (Trace.event_count Trace.null);
  Alcotest.(check int) "no dup skips" 0 (Trace.dup_skips Trace.null);
  Alcotest.(check int) "no counters" 0
    (Metrics.counter_value (Trace.metrics Trace.null) "x")

(* A traced multithreaded run: 4 threads interleaving inserts and
   searches on a 4-core simulated machine, PM events included. *)
let traced_run () =
  let config = { Config.default with Config.write_latency_ns = 300; max_threads = 16 } in
  let a = Arena.create ~config ~words:(1 lsl 18) () in
  let t = Tree.create ~lock_mode:Locks.Sim a in
  let tr = Trace.for_arena ~capacity:(1 lsl 14) a in
  Tree.set_tracer t tr;
  let body tid =
    let r = Prng.create (10 + tid) in
    for i = 1 to 150 do
      let k = (tid * 1000) + i in
      Tree.insert t ~key:k ~value:(W.value_of k);
      ignore (Tree.search t (1 + Prng.int r ((tid * 1000) + i)))
    done
  in
  ignore
    (Mcsim.run ~cores:4 ~quantum_ns:150 ~lock_ns:20 ~contention_ns:100 ~arena:a
       (Array.init 4 (fun _ -> body)));
  Arena.set_event_sink a None;
  tr

let test_perfetto_wellformed () =
  let tr = traced_run () in
  Alcotest.(check bool) "events recorded" true (Trace.event_count tr > 100);
  let j = Json.of_string (Perfetto.to_string tr) in
  let evs = get_exn "traceEvents" (Option.bind (Json.member "traceEvents" j) Json.to_list) in
  let last_ts = Hashtbl.create 8 in
  let data = ref 0 in
  List.iter
    (fun e ->
      let ph = get_exn "ph" (Option.bind (Json.member "ph" e) Json.to_str) in
      if ph <> "M" then begin
        incr data;
        let tid = get_exn "tid" (Option.bind (Json.member "tid" e) Json.to_int) in
        let ts = get_exn "ts" (Option.bind (Json.member "ts" e) Json.to_float) in
        (match Hashtbl.find_opt last_ts tid with
        | Some prev when ts < prev ->
            Alcotest.failf "ts went backwards on tid %d: %f < %f" tid ts prev
        | Some _ | None -> ());
        Hashtbl.replace last_ts tid ts
      end)
    evs;
  Alcotest.(check int) "all ring events exported" (Trace.event_count tr) !data;
  Alcotest.(check bool) "several thread tracks" true (Hashtbl.length last_ts >= 4)

let test_deterministic () =
  let p1 = Perfetto.to_string (traced_run ()) in
  let m1 = Metrics.to_json_string (Trace.metrics (traced_run ())) in
  let tr = traced_run () in
  Alcotest.(check string) "identical perfetto output" p1 (Perfetto.to_string tr);
  Alcotest.(check string) "identical metrics output" m1
    (Metrics.to_json_string (Trace.metrics tr))

let test_dup_skip_detected () =
  (* One leaf (no splits: 20 < capacity at 512B nodes).  The writer
     front-inserts descending keys so every insert FAST-shifts the
     whole populated region; readers scan toward the largest key
     through that region; a preempt-every-access quantum guarantees
     they see mid-shift states. *)
  let config = { Config.default with Config.max_threads = 8 } in
  let a = Arena.create ~config ~words:(1 lsl 16) () in
  let t = Tree.create ~lock_mode:Locks.Sim a in
  let tr = Trace.for_arena a in
  Tree.set_tracer t tr;
  let writer _ =
    for k = 20 downto 1 do
      Tree.insert t ~key:(2 * k) ~value:(W.value_of (2 * k))
    done
  in
  let reader _ =
    for _ = 1 to 300 do
      ignore (Tree.search t 40)
    done
  in
  ignore (Mcsim.run ~cores:4 ~quantum_ns:1 ~arena:a [| writer; reader; reader; reader |]);
  Arena.set_event_sink a None;
  Alcotest.(check bool) "readers observed duplicate pointers" true (Trace.dup_skips tr > 0);
  (* every inserted key is still found *)
  for k = 1 to 20 do
    Alcotest.(check (option int))
      (Printf.sprintf "key %d survives" (2 * k))
      (Some (W.value_of (2 * k)))
      (Tree.search t (2 * k))
  done;
  (* and the counter is exposed through the metrics JSON *)
  let j = Json.of_string (Metrics.to_json_string (Trace.metrics tr)) in
  let counters = get_exn "counters" (Json.member "counters" j) in
  let leaf =
    match Option.bind (Json.member "fastfair.dup_skip.leaf" counters) Json.to_int with
    | Some n -> n
    | None -> 0
  in
  Alcotest.(check bool) "dup_skip.leaf counter in JSON" true (leaf > 0)

let suite =
  [
    Alcotest.test_case "json-roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "ring-wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "null-tracer-inert" `Quick test_null_inert;
    Alcotest.test_case "perfetto-wellformed" `Quick test_perfetto_wellformed;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "dup-skip-detected" `Quick test_dup_skip_detected;
  ]
