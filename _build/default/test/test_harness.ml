(* The generic crash harness applied uniformly to every persistent
   index, plus histogram and tree-helper coverage. *)

open Ff_pmem
module Prng = Ff_util.Prng
module Histogram = Ff_util.Histogram
module Intf = Ff_index.Intf
module Harness = Ff_workload.Crash_harness
module W = Ff_workload.Workload

let value_of k = (2 * k) + 1

(* ------------------------------------------------------------------ *)
(* Crash harness across all persistent indexes                         *)
(* ------------------------------------------------------------------ *)

let harness_case label build reopen () =
  let base = Arena.create ~words:(1 lsl 20) () in
  let t = build base in
  let keys = List.init 150 (fun i -> (i + 1) * 3) in
  List.iter (fun k -> t.Intf.insert k (value_of k)) keys;
  let batch (t : Intf.ops) =
    for i = 1 to 12 do
      t.Intf.insert (10_000 + i) (value_of (10_000 + i))
    done;
    ignore (t.Intf.delete 3)
  in
  let validate (t : Intf.ops) =
    List.for_all
      (fun k -> k = 3 || t.Intf.search k = Some (value_of k))
      keys
  in
  let o = Harness.enumerate ~max_points:60 ~base ~reopen ~batch ~validate () in
  Alcotest.(check bool) (label ^ " span > 0") true (o.Harness.store_span > 0);
  (* After recovery, every index must pass at every crash point. *)
  Alcotest.(check int) (label ^ " recovered everywhere") o.Harness.points o.Harness.recovered

let harness_fastfair =
  harness_case "fastfair"
    (fun a -> Ff_fastfair.Tree.ops (Ff_fastfair.Tree.create ~node_bytes:128 a))
    (fun a -> Ff_fastfair.Tree.ops (Ff_fastfair.Tree.open_existing ~node_bytes:128 a))

let harness_wbtree =
  harness_case "wbtree"
    (fun a -> Ff_wbtree.Wbtree.ops (Ff_wbtree.Wbtree.create ~node_bytes:256 a))
    (fun a -> Ff_wbtree.Wbtree.ops (Ff_wbtree.Wbtree.open_existing ~node_bytes:256 a))

let harness_fptree =
  harness_case "fptree"
    (fun a -> Ff_fptree.Fptree.ops (Ff_fptree.Fptree.create ~leaf_bytes:256 a))
    (fun a -> Ff_fptree.Fptree.ops (Ff_fptree.Fptree.open_existing ~leaf_bytes:256 a))

let harness_wort =
  harness_case "wort"
    (fun a -> Ff_wort.Wort.ops (Ff_wort.Wort.create a))
    (fun a -> Ff_wort.Wort.ops (Ff_wort.Wort.open_existing a))

let harness_skiplist =
  harness_case "skiplist"
    (fun a -> Ff_skiplist.Skiplist.ops (Ff_skiplist.Skiplist.create a))
    (fun a -> Ff_skiplist.Skiplist.ops (Ff_skiplist.Skiplist.open_existing a))

(* FAST+FAIR additionally guarantees reader tolerance BEFORE recovery
   — the paper's differentiator; append-only/logged designs need their
   recovery step first. *)
let test_fastfair_pre_recovery_tolerance () =
  let base = Arena.create ~words:(1 lsl 20) () in
  let t = Ff_fastfair.Tree.create ~node_bytes:128 base in
  let keys = List.init 150 (fun i -> (i + 1) * 3) in
  List.iter (fun k -> Ff_fastfair.Tree.insert t ~key:k ~value:(value_of k)) keys;
  let reopen a = Ff_fastfair.Tree.ops (Ff_fastfair.Tree.open_existing ~node_bytes:128 a) in
  let batch (t : Intf.ops) =
    for i = 1 to 12 do
      t.Intf.insert (10_000 + i) (value_of (10_000 + i))
    done
  in
  let validate (t : Intf.ops) =
    List.for_all (fun k -> t.Intf.search k = Some (value_of k)) keys
  in
  let o = Harness.enumerate ~max_points:80 ~base ~reopen ~batch ~validate () in
  Alcotest.(check int) "tolerated pre-recovery everywhere" o.Harness.points o.Harness.tolerated

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let test_histogram_basics () =
  let h = Histogram.create () in
  for v = 1 to 1000 do
    Histogram.add h v
  done;
  Alcotest.(check int) "count" 1000 (Histogram.count h);
  Alcotest.(check (float 1.)) "mean" 500.5 (Histogram.mean h);
  Alcotest.(check int) "max" 1000 (Histogram.max_sample h);
  let p50 = Histogram.percentile h 50. in
  Alcotest.(check bool) (Printf.sprintf "p50 ~500 (got %d)" p50) true
    (p50 >= 500 && p50 <= 750);
  let p99 = Histogram.percentile h 99. in
  Alcotest.(check bool) (Printf.sprintf "p99 ~990 (got %d)" p99) true
    (p99 >= 990 && p99 <= 1000)

let test_histogram_empty_and_zero () =
  let h = Histogram.create () in
  Alcotest.(check int) "empty p50" 0 (Histogram.percentile h 50.);
  Histogram.add h 0;
  Histogram.add h (-5);
  Alcotest.(check int) "zeros counted" 2 (Histogram.count h);
  Alcotest.(check int) "p99 of zeros" 0 (Histogram.percentile h 99.)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.add a 10;
  Histogram.add b 1_000_000;
  Histogram.merge a b;
  Alcotest.(check int) "merged count" 2 (Histogram.count a);
  Alcotest.(check int) "merged max" 1_000_000 (Histogram.max_sample a)

let test_histogram_wide_range () =
  let h = Histogram.create () in
  let rng = Prng.create 13 in
  for _ = 1 to 10_000 do
    Histogram.add h (1 lsl Prng.int rng 40)
  done;
  (* bucket error bounded: p100 >= actual max / 1.5 *)
  let p100 = Histogram.percentile h 100. in
  Alcotest.(check bool) "p100 sane" true (p100 <= Histogram.max_sample h)

(* ------------------------------------------------------------------ *)
(* Tree helpers                                                        *)
(* ------------------------------------------------------------------ *)

let test_tree_min_max_cardinal () =
  let a = Arena.create ~words:(1 lsl 20) () in
  let t = Ff_fastfair.Tree.create ~node_bytes:128 a in
  Alcotest.(check (option (pair int int))) "empty min" None (Ff_fastfair.Tree.min_entry t);
  Alcotest.(check (option (pair int int))) "empty max" None (Ff_fastfair.Tree.max_entry t);
  Alcotest.(check int) "empty cardinal" 0 (Ff_fastfair.Tree.cardinal t);
  let rng = Prng.create 17 in
  let keys = W.distinct_uniform rng ~n:700 ~space:100_000 in
  Array.iter (fun k -> Ff_fastfair.Tree.insert t ~key:k ~value:(value_of k)) keys;
  let sorted = Array.copy keys in
  Array.sort compare sorted;
  let lo = sorted.(0) and hi = sorted.(699) in
  Alcotest.(check (option (pair int int))) "min" (Some (lo, value_of lo))
    (Ff_fastfair.Tree.min_entry t);
  Alcotest.(check (option (pair int int))) "max" (Some (hi, value_of hi))
    (Ff_fastfair.Tree.max_entry t);
  Alcotest.(check int) "cardinal" 700 (Ff_fastfair.Tree.cardinal t);
  ignore (Ff_fastfair.Tree.delete t hi);
  Alcotest.(check int) "cardinal after delete" 699 (Ff_fastfair.Tree.cardinal t);
  Alcotest.(check bool) "new max < old" true
    (match Ff_fastfair.Tree.max_entry t with Some (k, _) -> k < hi | None -> false)

let suite =
  [
    Alcotest.test_case "harness: fastfair" `Quick harness_fastfair;
    Alcotest.test_case "harness: wbtree" `Quick harness_wbtree;
    Alcotest.test_case "harness: fptree" `Quick harness_fptree;
    Alcotest.test_case "harness: wort" `Quick harness_wort;
    Alcotest.test_case "harness: skiplist" `Quick harness_skiplist;
    Alcotest.test_case "fastfair pre-recovery tolerance" `Quick test_fastfair_pre_recovery_tolerance;
    Alcotest.test_case "histogram basics" `Quick test_histogram_basics;
    Alcotest.test_case "histogram empty/zero" `Quick test_histogram_empty_and_zero;
    Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
    Alcotest.test_case "histogram wide range" `Quick test_histogram_wide_range;
    Alcotest.test_case "tree min/max/cardinal" `Quick test_tree_min_max_cardinal;
  ]
