(* FAST+FAIR correctness: node-level FAST semantics, tree-level
   model-based checks, and the paper's central claim — every 8-byte
   store prefix leaves a state that readers tolerate and recovery can
   repair without logs. *)

open Ff_pmem
open Ff_fastfair
module Prng = Ff_util.Prng

let value_of k = (2 * k) + 1 (* odd, unique, never collides with node addrs *)

let mk_arena ?(config = Config.default) ?(words = 1 lsl 18) () =
  Arena.create ~config ~words ()

let mk_tree ?config ?words ?(node_bytes = 512) ?(mode = Node.Linear)
    ?(split_policy = Tree.Fair) () =
  let a = mk_arena ?config ?words () in
  let t = Tree.create ~node_bytes ~mode ~split_policy a in
  (a, t)

(* ------------------------------------------------------------------ *)
(* Node-level tests                                                    *)
(* ------------------------------------------------------------------ *)

let mk_node ?(node_bytes = 512) () =
  let a = mk_arena ~words:(1 lsl 14) () in
  let l = Layout.make ~node_bytes in
  let n = Arena.alloc a l.Layout.node_words in
  Node.init a l n ~level:0 ~leftmost:0 ~low:0;
  (a, l, n)

let test_node_insert_ascending () =
  let a, l, n = mk_node () in
  for k = 1 to l.Layout.capacity - 1 do
    Node.insert_nonfull a l n ~key:k ~value:(value_of k) ~mode:Node.Linear
  done;
  Alcotest.(check int) "count" (l.Layout.capacity - 1) (Node.count a l n);
  for k = 1 to l.Layout.capacity - 1 do
    Alcotest.(check (option int)) "find" (Some (value_of k))
      (Node.search a l n ~mode:Node.Linear k)
  done

let test_node_insert_descending () =
  let a, l, n = mk_node () in
  for k = 20 downto 1 do
    Node.insert_nonfull a l n ~key:k ~value:(value_of k) ~mode:Node.Linear
  done;
  let entries = Node.entries_debug a l n in
  Alcotest.(check (list int)) "sorted"
    (List.init 20 (fun i -> i + 1))
    (List.map fst entries)

let test_node_insert_random_order () =
  let rng = Prng.create 5 in
  let a, l, n = mk_node () in
  let keys = Array.init 25 (fun i -> (i * 3) + 1) in
  Prng.shuffle rng keys;
  Array.iter (fun k -> Node.insert_nonfull a l n ~key:k ~value:(value_of k) ~mode:Node.Linear) keys;
  let entries = Node.entries_debug a l n in
  Alcotest.(check int) "count" 25 (List.length entries);
  let sorted = List.sort compare (Array.to_list keys) in
  Alcotest.(check (list int)) "sorted entries" sorted (List.map fst entries)

let test_node_delete_and_search () =
  let a, l, n = mk_node () in
  for k = 1 to 20 do
    Node.insert_nonfull a l n ~key:k ~value:(value_of k) ~mode:Node.Linear
  done;
  Alcotest.(check bool) "delete 10" true (Node.delete a l n 10);
  Alcotest.(check bool) "delete again" false (Node.delete a l n 10);
  Alcotest.(check (option int)) "10 gone" None (Node.search a l n ~mode:Node.Linear 10);
  Alcotest.(check (option int)) "11 remains" (Some (value_of 11))
    (Node.search a l n ~mode:Node.Linear 11);
  Alcotest.(check int) "count" 19 (Node.count a l n);
  (* the switch counter is now odd: right-to-left reads *)
  Alcotest.(check bool) "switch odd" true (Layout.switch a n land 1 = 1)

let test_node_update_value () =
  let a, l, n = mk_node () in
  Node.insert_nonfull a l n ~key:5 ~value:(value_of 5) ~mode:Node.Linear;
  (match Node.find_exact a l n 5 with
  | Some pos -> Node.update_value a l n ~pos ~value:999
  | None -> Alcotest.fail "key missing");
  Alcotest.(check (option int)) "updated" (Some 999) (Node.search a l n ~mode:Node.Linear 5)

let test_node_zero_terminator_invariant () =
  let a, l, n = mk_node ~node_bytes:128 () in
  for k = 1 to l.Layout.capacity - 1 do
    Node.insert_nonfull a l n ~key:k ~value:(value_of k) ~mode:Node.Linear
  done;
  Node.truncate_from a l n 1;
  for i = 1 to l.Layout.capacity - 1 do
    Alcotest.(check int) "zeroed beyond truncation" 0 (Arena.peek a (n + Layout.ptr_off i))
  done;
  Alcotest.(check int) "count" 1 (Node.count a l n)

let test_node_binary_search () =
  let a, l, n = mk_node () in
  for k = 1 to 20 do
    Node.insert_nonfull a l n ~key:(2 * k) ~value:(value_of k) ~mode:Node.Binary
  done;
  for k = 1 to 20 do
    Alcotest.(check (option int)) "binary find" (Some (value_of k))
      (Node.search a l n ~mode:Node.Binary (2 * k))
  done;
  Alcotest.(check (option int)) "binary miss" None (Node.search a l n ~mode:Node.Binary 7)

(* The paper's node-level crash claim: enumerate a crash before every
   store of a FAST insert/delete; in every resulting state all
   previously committed keys must read back correctly, and writer_fix
   must restore a clean node. *)
let node_crash_enumeration op_name setup op committed in_flight =
  let a0, l, n = mk_node ~node_bytes:256 () in
  setup a0 l n;
  Arena.drain a0;
  let probe_stores () =
    let c = Arena.clone a0 in
    let before = Arena.store_count c in
    op c l n;
    Arena.store_count c - before
  in
  let total = probe_stores () in
  Alcotest.(check bool) (op_name ^ ": op does stores") true (total > 0);
  let modes =
    [
      ("keep_none", fun () -> Storelog.Keep_none);
      ("keep_all", fun () -> Storelog.Keep_all);
      ("random", fun () -> Storelog.Random_eviction (Prng.create 99));
    ]
  in
  for k = 0 to total do
    List.iter
      (fun (mode_name, mode) ->
        let c = Arena.clone a0 in
        Arena.set_crash_plan c (Arena.After_stores (Arena.store_count c + k));
        let crashed = try op c l n; false with Arena.Crashed -> true in
        if k < total then
          Alcotest.(check bool)
            (Printf.sprintf "%s: crash fires at %d" op_name k)
            true crashed;
        Arena.power_fail c (mode ());
        (* Reader tolerance, before any repair. *)
        List.iter
          (fun (key, v) ->
            Alcotest.(check (option int))
              (Printf.sprintf "%s/%s k=%d committed key %d" op_name mode_name k key)
              (Some v)
              (Node.search c l n ~mode:Node.Linear key))
          (committed k);
        (* The in-flight key must be absent or carry the right value. *)
        (match in_flight with
        | None -> ()
        | Some (key, expect) -> (
            match Node.search c l n ~mode:Node.Linear key with
            | None -> ()
            | Some v ->
                Alcotest.(check int)
                  (Printf.sprintf "%s/%s k=%d in-flight key atomic" op_name mode_name k)
                  expect v));
        (* Repair must produce a clean node. *)
        ignore (Node.writer_fix c l n);
        let entries = Node.entries_debug c l n in
        let keys = List.map fst entries in
        let sorted = List.sort_uniq compare keys in
        Alcotest.(check (list int))
          (Printf.sprintf "%s/%s k=%d clean after fix" op_name mode_name k)
          sorted keys)
      modes
  done

let test_node_crash_insert_middle () =
  let setup a l n =
    List.iter
      (fun k -> Node.insert_nonfull a l n ~key:k ~value:(value_of k) ~mode:Node.Linear)
      [ 10; 20; 30; 40; 50; 60; 70 ]
  in
  let op a l n = Node.insert_nonfull a l n ~key:25 ~value:(value_of 25) ~mode:Node.Linear in
  let committed _ = List.map (fun k -> (k, value_of k)) [ 10; 20; 30; 40; 50; 60; 70 ] in
  node_crash_enumeration "insert-mid" setup op committed (Some (25, value_of 25))

let test_node_crash_insert_head () =
  let setup a l n =
    List.iter
      (fun k -> Node.insert_nonfull a l n ~key:k ~value:(value_of k) ~mode:Node.Linear)
      [ 10; 20; 30 ]
  in
  let op a l n = Node.insert_nonfull a l n ~key:5 ~value:(value_of 5) ~mode:Node.Linear in
  let committed _ = List.map (fun k -> (k, value_of k)) [ 10; 20; 30 ] in
  node_crash_enumeration "insert-head" setup op committed (Some (5, value_of 5))

let test_node_crash_insert_tail () =
  let setup a l n =
    List.iter
      (fun k -> Node.insert_nonfull a l n ~key:k ~value:(value_of k) ~mode:Node.Linear)
      [ 10; 20; 30 ]
  in
  let op a l n = Node.insert_nonfull a l n ~key:99 ~value:(value_of 99) ~mode:Node.Linear in
  let committed _ = List.map (fun k -> (k, value_of k)) [ 10; 20; 30 ] in
  node_crash_enumeration "insert-tail" setup op committed (Some (99, value_of 99))

let test_node_crash_delete () =
  let setup a l n =
    List.iter
      (fun k -> Node.insert_nonfull a l n ~key:k ~value:(value_of k) ~mode:Node.Linear)
      [ 10; 20; 30; 40; 50; 60 ]
  in
  let op a l n = ignore (Node.delete a l n 20) in
  (* All keys except the deleted one must stay readable. *)
  let committed _ = List.map (fun k -> (k, value_of k)) [ 10; 30; 40; 50; 60 ] in
  node_crash_enumeration "delete" setup op committed (Some (20, value_of 20))

let test_node_crash_delete_empty_node_edge () =
  let setup a l n = Node.insert_nonfull a l n ~key:7 ~value:(value_of 7) ~mode:Node.Linear in
  let op a l n = ignore (Node.delete a l n 7) in
  let committed _ = [] in
  node_crash_enumeration "delete-last" setup op committed (Some (7, value_of 7))

(* Non-TSO: with the dmb fences active (Config.arm), non-TSO crash
   states must still be tolerable. *)
let test_node_crash_non_tso_with_fences () =
  let config = Config.arm () in
  let a0 = Arena.create ~config ~words:(1 lsl 14) () in
  let l = Layout.make ~node_bytes:256 in
  let n = Arena.alloc a0 l.Layout.node_words in
  Node.init a0 l n ~level:0 ~leftmost:0 ~low:0;
  List.iter
    (fun k -> Node.insert_nonfull a0 l n ~key:k ~value:(value_of k) ~mode:Node.Linear)
    [ 10; 20; 30; 40 ];
  Arena.drain a0;
  let total =
    let c = Arena.clone a0 in
    let b = Arena.store_count c in
    Node.insert_nonfull c l n ~key:25 ~value:(value_of 25) ~mode:Node.Linear;
    Arena.store_count c - b
  in
  for k = 0 to total do
    for seed = 0 to 5 do
      let c = Arena.clone a0 in
      Arena.set_crash_plan c (Arena.After_stores (Arena.store_count c + k));
      (try Node.insert_nonfull c l n ~key:25 ~value:(value_of 25) ~mode:Node.Linear
       with Arena.Crashed -> ());
      Arena.power_fail c (Storelog.Non_tso_random (Prng.create (seed + (k * 31))));
      List.iter
        (fun key ->
          Alcotest.(check (option int))
            (Printf.sprintf "non-tso k=%d committed %d" k key)
            (Some (value_of key))
            (Node.search c l n ~mode:Node.Linear key))
        [ 10; 20; 30; 40 ]
    done
  done

(* ------------------------------------------------------------------ *)
(* Tree-level tests                                                    *)
(* ------------------------------------------------------------------ *)

let test_tree_insert_search_small () =
  let _, t = mk_tree () in
  for k = 1 to 100 do
    Tree.insert t ~key:k ~value:(value_of k)
  done;
  for k = 1 to 100 do
    Alcotest.(check (option int)) "find" (Some (value_of k)) (Tree.search t k)
  done;
  Alcotest.(check (option int)) "miss" None (Tree.search t 101);
  Invariant.check_exn t

let test_tree_splits_and_height () =
  let _, t = mk_tree ~node_bytes:128 ~words:(1 lsl 20) () in
  for k = 1 to 2000 do
    Tree.insert t ~key:k ~value:(value_of k)
  done;
  Alcotest.(check bool) "tree grew" true (Tree.height t >= 3);
  for k = 1 to 2000 do
    Alcotest.(check (option int)) "find after splits" (Some (value_of k)) (Tree.search t k)
  done;
  Invariant.check_exn t

let test_tree_random_inserts_vs_model () =
  let rng = Prng.create 77 in
  let _, t = mk_tree ~node_bytes:256 ~words:(1 lsl 21) () in
  let model = Hashtbl.create 1024 in
  for _ = 1 to 5000 do
    let k = 1 + Prng.int rng 20000 in
    Tree.insert t ~key:k ~value:(value_of k);
    Hashtbl.replace model k (value_of k)
  done;
  Hashtbl.iter
    (fun k v -> Alcotest.(check (option int)) "model match" (Some v) (Tree.search t k))
    model;
  Alcotest.(check int) "key count" (Hashtbl.length model)
    (List.length (Invariant.keys t));
  Invariant.check_exn t

let test_tree_update_in_place () =
  let _, t = mk_tree () in
  Tree.insert t ~key:42 ~value:(value_of 42);
  Tree.insert t ~key:42 ~value:1001;
  Alcotest.(check (option int)) "updated" (Some 1001) (Tree.search t 42);
  Alcotest.(check int) "single key" 1 (List.length (Invariant.keys t))

let test_tree_delete () =
  let _, t = mk_tree ~node_bytes:128 ~words:(1 lsl 20) () in
  for k = 1 to 500 do
    Tree.insert t ~key:k ~value:(value_of k)
  done;
  for k = 1 to 500 do
    if k mod 3 = 0 then
      Alcotest.(check bool) "delete present" true (Tree.delete t k)
  done;
  Alcotest.(check bool) "delete absent" false (Tree.delete t 3);
  for k = 1 to 500 do
    let expect = if k mod 3 = 0 then None else Some (value_of k) in
    Alcotest.(check (option int)) "post-delete search" expect (Tree.search t k)
  done;
  Invariant.check_exn t

let test_tree_range () =
  let _, t = mk_tree ~node_bytes:128 ~words:(1 lsl 20) () in
  for k = 1 to 300 do
    Tree.insert t ~key:(2 * k) ~value:(value_of k)
  done;
  let acc = ref [] in
  Tree.range t ~lo:100 ~hi:200 (fun k _ -> acc := k :: !acc);
  let got = List.rev !acc in
  let expect = List.init 51 (fun i -> 100 + (2 * i)) in
  Alcotest.(check (list int)) "range keys" expect got;
  (* open-ended corners *)
  let n = ref 0 in
  Tree.range t ~lo:0 ~hi:10_000 (fun _ _ -> incr n);
  Alcotest.(check int) "full range" 300 !n;
  let n = ref 0 in
  Tree.range t ~lo:601 ~hi:10_000 (fun _ _ -> incr n);
  Alcotest.(check int) "empty range" 0 !n

let test_tree_sequential_and_reverse () =
  List.iter
    (fun order ->
      let _, t = mk_tree ~node_bytes:128 ~words:(1 lsl 20) () in
      List.iter (fun k -> Tree.insert t ~key:k ~value:(value_of k)) order;
      List.iter
        (fun k ->
          Alcotest.(check (option int)) "find" (Some (value_of k)) (Tree.search t k))
        order;
      Invariant.check_exn t)
    [ List.init 800 (fun i -> i + 1); List.init 800 (fun i -> 800 - i) ]

let test_tree_binary_mode () =
  let _, t = mk_tree ~mode:Node.Binary ~words:(1 lsl 20) () in
  let rng = Prng.create 31 in
  let keys = Array.init 2000 (fun i -> (3 * i) + 1) in
  Prng.shuffle rng keys;
  Array.iter (fun k -> Tree.insert t ~key:k ~value:(value_of k)) keys;
  Array.iter
    (fun k ->
      Alcotest.(check (option int)) "binary find" (Some (value_of k)) (Tree.search t k))
    keys;
  Alcotest.(check (option int)) "binary miss" None (Tree.search t 2)

let test_tree_logged_split_policy () =
  let _, t = mk_tree ~split_policy:Tree.Logged ~node_bytes:128 ~words:(1 lsl 20) () in
  for k = 1 to 600 do
    Tree.insert t ~key:k ~value:(value_of k)
  done;
  for k = 1 to 600 do
    Alcotest.(check (option int)) "logged find" (Some (value_of k)) (Tree.search t k)
  done;
  Invariant.check_exn t

(* ------------------------------------------------------------------ *)
(* Tree-level crash enumeration                                        *)
(* ------------------------------------------------------------------ *)

(* Build a base tree, then for a given operation crash before every
   store; verify (a) reader tolerance without repair, (b) eager
   recovery restores all invariants. *)
let tree_crash_enum ?(node_bytes = 128) ~setup_keys ~op ~op_descr ~committed
    ~in_flight () =
  let a0 = mk_arena ~words:(1 lsl 20) () in
  let t0 = Tree.create ~node_bytes a0 in
  List.iter (fun k -> Tree.insert t0 ~key:k ~value:(value_of k)) setup_keys;
  Arena.drain a0;
  let total =
    let c = Arena.clone a0 in
    let tc = Tree.open_existing ~node_bytes c in
    let before = Arena.store_count c in
    op tc;
    Arena.store_count c - before
  in
  Alcotest.(check bool) (op_descr ^ " has stores") true (total > 0);
  let step = max 1 (total / 64) in
  let k = ref 0 in
  while !k <= total do
    List.iter
      (fun mode ->
        let c = Arena.clone a0 in
        let tc = Tree.open_existing ~node_bytes c in
        Arena.set_crash_plan c (Arena.After_stores (Arena.store_count c + !k));
        (try op tc with Arena.Crashed -> ());
        Arena.power_fail c mode;
        let tc = Tree.open_existing ~node_bytes c in
        (* (a) lock-free reader tolerance with no repair at all *)
        List.iter
          (fun key ->
            Alcotest.(check (option int))
              (Printf.sprintf "%s crash@%d committed %d (pre-recovery)" op_descr !k key)
              (Some (value_of key))
              (Tree.search tc key))
          committed;
        (match in_flight with
        | None -> ()
        | Some (key, v) -> (
            match Tree.search tc key with
            | None -> ()
            | Some got ->
                Alcotest.(check int)
                  (Printf.sprintf "%s crash@%d in-flight atomic" op_descr !k)
                  v got));
        (* (b) eager recovery then full invariants *)
        Tree.recover tc;
        (match Invariant.check tc with
        | [] -> ()
        | vs ->
            Alcotest.failf "%s crash@%d: invariants: %s" op_descr !k
              (String.concat "; " vs));
        List.iter
          (fun key ->
            Alcotest.(check (option int))
              (Printf.sprintf "%s crash@%d committed %d (post-recovery)" op_descr !k key)
              (Some (value_of key))
              (Tree.search tc key))
          committed)
      [ Storelog.Keep_none; Storelog.Keep_all;
        Storelog.Random_eviction (Prng.create (!k * 7)) ];
    k := !k + step
  done

let test_tree_crash_simple_insert () =
  let setup = [ 10; 20; 30; 40; 50 ] in
  tree_crash_enum ~setup_keys:setup
    ~op:(fun t -> Tree.insert t ~key:25 ~value:(value_of 25))
    ~op_descr:"tree-insert" ~committed:setup ~in_flight:(Some (25, value_of 25)) ()

let test_tree_crash_split_insert () =
  (* 128-byte nodes hold 4 records; 4 keys fill the root leaf, the 5th
     forces a FAIR split with root growth. *)
  let setup = [ 10; 20; 30; 40 ] in
  tree_crash_enum ~setup_keys:setup
    ~op:(fun t -> Tree.insert t ~key:25 ~value:(value_of 25))
    ~op_descr:"tree-split" ~committed:setup ~in_flight:(Some (25, value_of 25)) ()

let test_tree_crash_deep_split () =
  let setup = List.init 40 (fun i -> (i + 1) * 10) in
  tree_crash_enum ~setup_keys:setup
    ~op:(fun t -> Tree.insert t ~key:255 ~value:(value_of 255))
    ~op_descr:"tree-deep-split" ~committed:setup
    ~in_flight:(Some (255, value_of 255)) ()

let test_tree_crash_delete () =
  let setup = List.init 12 (fun i -> (i + 1) * 10) in
  tree_crash_enum ~setup_keys:setup
    ~op:(fun t -> ignore (Tree.delete t 60))
    ~op_descr:"tree-delete"
    ~committed:(List.filter (fun k -> k <> 60) setup)
    ~in_flight:(Some (60, value_of 60)) ()

let test_tree_crash_update () =
  let setup = [ 10; 20; 30 ] in
  tree_crash_enum ~setup_keys:setup
    ~op:(fun t -> Tree.insert t ~key:20 ~value:4242)
    ~op_descr:"tree-update"
    ~committed:(List.filter (fun k -> k <> 20) setup)
    ~in_flight:None ()

let test_tree_crash_logged_split () =
  (* The FAST+Logging baseline must also recover, via its log. *)
  let a0 = mk_arena ~words:(1 lsl 20) () in
  let t0 = Tree.create ~node_bytes:128 ~split_policy:Tree.Logged a0 in
  let setup = [ 10; 20; 30; 40 ] in
  List.iter (fun k -> Tree.insert t0 ~key:k ~value:(value_of k)) setup;
  Arena.drain a0;
  let total =
    let c = Arena.clone a0 in
    let tc = Tree.open_existing ~node_bytes:128 ~split_policy:Tree.Logged c in
    let b = Arena.store_count c in
    Tree.insert tc ~key:25 ~value:(value_of 25);
    Arena.store_count c - b
  in
  for k = 0 to total do
    let c = Arena.clone a0 in
    let tc = Tree.open_existing ~node_bytes:128 ~split_policy:Tree.Logged c in
    Arena.set_crash_plan c (Arena.After_stores (Arena.store_count c + k));
    (try Tree.insert tc ~key:25 ~value:(value_of 25) with Arena.Crashed -> ());
    Arena.power_fail c Storelog.Keep_none;
    let tc = Tree.open_existing ~node_bytes:128 ~split_policy:Tree.Logged c in
    Tree.recover tc;
    List.iter
      (fun key ->
        Alcotest.(check (option int))
          (Printf.sprintf "logged crash@%d committed %d" k key)
          (Some (value_of key))
          (Tree.search tc key))
      setup
  done

let test_tree_lazy_recovery_by_writers () =
  (* Crash mid-split, then let ordinary writers repair lazily. *)
  let a0 = mk_arena ~words:(1 lsl 20) () in
  let t0 = Tree.create ~node_bytes:128 a0 in
  let setup = [ 10; 20; 30; 40 ] in
  List.iter (fun k -> Tree.insert t0 ~key:k ~value:(value_of k)) setup;
  Arena.drain a0;
  let total =
    let c = Arena.clone a0 in
    let tc = Tree.open_existing ~node_bytes:128 c in
    let b = Arena.store_count c in
    Tree.insert tc ~key:25 ~value:(value_of 25);
    Arena.store_count c - b
  in
  for k = 0 to total do
    let c = Arena.clone a0 in
    let tc = Tree.open_existing ~node_bytes:128 c in
    Arena.set_crash_plan c (Arena.After_stores (Arena.store_count c + k));
    (try Tree.insert tc ~key:25 ~value:(value_of 25) with Arena.Crashed -> ());
    Arena.power_fail c Storelog.Keep_all;
    let tc = Tree.open_existing ~node_bytes:128 c in
    Tree.recover ~lazy_:true tc;
    (* Writers repair as a side effect of normal operation. *)
    List.iter (fun key -> Tree.insert tc ~key ~value:(value_of key)) [ 15; 35; 45 ];
    List.iter
      (fun key ->
        Alcotest.(check (option int))
          (Printf.sprintf "lazy crash@%d key %d" k key)
          (Some (value_of key))
          (Tree.search tc key))
      (setup @ [ 15; 35; 45 ])
  done

let test_tree_crash_random_workload () =
  (* Crash at random points of a longer randomized workload; committed
     prefix must fully survive under Keep_all (TSO strict model). *)
  let rng = Prng.create 2024 in
  for round = 1 to 8 do
    let a = mk_arena ~words:(1 lsl 21) () in
    let t = Tree.create ~node_bytes:128 a in
    let committed = Hashtbl.create 256 in
    let planned = 50 + Prng.int rng 300 in
    Arena.set_crash_plan a
      (Arena.After_stores (Arena.store_count a + 500 + Prng.int rng 4000));
    let crashed = ref false in
    (try
       for i = 1 to planned do
         let k = 1 + Prng.int rng 1000 in
         if Prng.int rng 10 < 7 then begin
           Tree.insert t ~key:k ~value:(value_of k);
           Hashtbl.replace committed k (value_of k)
         end
         else begin
           ignore (Tree.delete t k);
           Hashtbl.remove committed k
         end;
         ignore i
       done
     with Arena.Crashed -> crashed := true);
    Arena.power_fail a Storelog.Keep_all;
    let t = Tree.open_existing ~node_bytes:128 a in
    Tree.recover t;
    (match Invariant.check t with
    | [] -> ()
    | vs -> Alcotest.failf "round %d invariants: %s" round (String.concat "; " vs));
    Hashtbl.iter
      (fun k v ->
        Alcotest.(check (option int))
          (Printf.sprintf "round %d committed key %d" round k)
          (Some v) (Tree.search t k))
      committed
  done

(* ------------------------------------------------------------------ *)
(* Property-based tests                                                 *)
(* ------------------------------------------------------------------ *)

let prop_tree_matches_model =
  QCheck.Test.make ~count:60 ~name:"tree matches Map model under random ops"
    QCheck.(pair small_int (list (pair (int_bound 500) bool)))
    (fun (seed, ops) ->
      let _ = seed in
      let _, t = mk_tree ~node_bytes:128 ~words:(1 lsl 21) () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (k0, is_insert) ->
          let k = k0 + 1 in
          if is_insert then begin
            Tree.insert t ~key:k ~value:(value_of k);
            Hashtbl.replace model k (value_of k)
          end
          else begin
            let expected = Hashtbl.mem model k in
            let got = Tree.delete t k in
            if got <> expected then QCheck.Test.fail_report "delete mismatch";
            Hashtbl.remove model k
          end)
        ops;
      Hashtbl.iter
        (fun k v ->
          if Tree.search t k <> Some v then QCheck.Test.fail_report "search mismatch")
        model;
      Invariant.check t = [])

let prop_range_equals_model =
  QCheck.Test.make ~count:40 ~name:"range scan equals sorted model slice"
    QCheck.(pair (list (int_bound 1000)) (pair (int_bound 1000) (int_bound 1000)))
    (fun (keys, (a, b)) ->
      let lo = 1 + min a b and hi = 1 + max a b in
      let _, t = mk_tree ~node_bytes:128 ~words:(1 lsl 21) () in
      let module IS = Set.Make (Int) in
      let set =
        List.fold_left
          (fun s k0 ->
            let k = k0 + 1 in
            Tree.insert t ~key:k ~value:(value_of k);
            IS.add k s)
          IS.empty keys
      in
      let got = ref [] in
      Tree.range t ~lo ~hi (fun k _ -> got := k :: !got);
      let expect = IS.elements (IS.filter (fun k -> k >= lo && k <= hi) set) in
      List.rev !got = expect)

let prop_crash_then_recover_sound =
  QCheck.Test.make ~count:30 ~name:"random crash point: recovery sound"
    QCheck.(pair small_int (int_bound 3000))
    (fun (seed, crash_after) ->
      let rng = Prng.create (seed + 1) in
      let a = mk_arena ~words:(1 lsl 21) () in
      let t = Tree.create ~node_bytes:128 a in
      let committed = Hashtbl.create 64 in
      Arena.set_crash_plan a (Arena.After_stores (Arena.store_count a + 20 + crash_after));
      (try
         for _ = 1 to 400 do
           let k = 1 + Prng.int rng 500 in
           Tree.insert t ~key:k ~value:(value_of k);
           Hashtbl.replace committed k (value_of k)
         done
       with Arena.Crashed -> ());
      Arena.power_fail a (Storelog.Random_eviction (Prng.create seed));
      let t = Tree.open_existing ~node_bytes:128 a in
      Tree.recover t;
      Invariant.check t = []
      && Hashtbl.fold
           (fun k v ok ->
             ok
             && match Tree.search t k with
                | Some got -> got = v
                | None ->
                    (* Under per-line eviction only explicitly flushed
                       commits are guaranteed; committed ops always end
                       with a flush, so the key must be present. *)
                    false)
           committed true)

let suite =
  [
    Alcotest.test_case "node insert ascending" `Quick test_node_insert_ascending;
    Alcotest.test_case "node insert descending" `Quick test_node_insert_descending;
    Alcotest.test_case "node insert random" `Quick test_node_insert_random_order;
    Alcotest.test_case "node delete" `Quick test_node_delete_and_search;
    Alcotest.test_case "node update value" `Quick test_node_update_value;
    Alcotest.test_case "node zero terminator" `Quick test_node_zero_terminator_invariant;
    Alcotest.test_case "node binary search" `Quick test_node_binary_search;
    Alcotest.test_case "node crash: insert mid" `Quick test_node_crash_insert_middle;
    Alcotest.test_case "node crash: insert head" `Quick test_node_crash_insert_head;
    Alcotest.test_case "node crash: insert tail" `Quick test_node_crash_insert_tail;
    Alcotest.test_case "node crash: delete" `Quick test_node_crash_delete;
    Alcotest.test_case "node crash: delete last" `Quick test_node_crash_delete_empty_node_edge;
    Alcotest.test_case "node crash: non-TSO fenced" `Quick test_node_crash_non_tso_with_fences;
    Alcotest.test_case "tree insert/search" `Quick test_tree_insert_search_small;
    Alcotest.test_case "tree splits+height" `Quick test_tree_splits_and_height;
    Alcotest.test_case "tree vs model" `Quick test_tree_random_inserts_vs_model;
    Alcotest.test_case "tree update in place" `Quick test_tree_update_in_place;
    Alcotest.test_case "tree delete" `Quick test_tree_delete;
    Alcotest.test_case "tree range" `Quick test_tree_range;
    Alcotest.test_case "tree seq+reverse" `Quick test_tree_sequential_and_reverse;
    Alcotest.test_case "tree binary mode" `Quick test_tree_binary_mode;
    Alcotest.test_case "tree logged splits" `Quick test_tree_logged_split_policy;
    Alcotest.test_case "tree crash: insert" `Quick test_tree_crash_simple_insert;
    Alcotest.test_case "tree crash: split" `Quick test_tree_crash_split_insert;
    Alcotest.test_case "tree crash: deep split" `Quick test_tree_crash_deep_split;
    Alcotest.test_case "tree crash: delete" `Quick test_tree_crash_delete;
    Alcotest.test_case "tree crash: update" `Quick test_tree_crash_update;
    Alcotest.test_case "tree crash: logged split" `Quick test_tree_crash_logged_split;
    Alcotest.test_case "tree crash: lazy recovery" `Quick test_tree_lazy_recovery_by_writers;
    Alcotest.test_case "tree crash: random workload" `Slow test_tree_crash_random_workload;
    QCheck_alcotest.to_alcotest prop_tree_matches_model;
    QCheck_alcotest.to_alcotest prop_range_equals_model;
    QCheck_alcotest.to_alcotest prop_crash_then_recover_sound;
  ]
