(* Extensions beyond the released implementation: crash-safe merging
   (Compact), cursors, bottom-up bulk loading, and the negative
   control showing why FAST's store ordering is required. *)

open Ff_pmem
open Ff_fastfair
module Prng = Ff_util.Prng

let value_of k = (2 * k) + 1

let mk_arena ?(words = 1 lsl 21) () = Arena.create ~words ()

(* ------------------------------------------------------------------ *)
(* Compact                                                             *)
(* ------------------------------------------------------------------ *)

let load_tree ?(node_bytes = 128) n =
  let a = mk_arena () in
  let t = Tree.create ~node_bytes a in
  for k = 1 to n do
    Tree.insert t ~key:k ~value:(value_of k)
  done;
  (a, t)

let test_compact_after_mass_delete () =
  let _, t = load_tree 1000 in
  for k = 1 to 1000 do
    if k mod 10 <> 0 then ignore (Tree.delete t k)
  done;
  let nodes_before = List.length (Tree.reachable_nodes t) in
  let freed = Compact.compact t in
  let nodes_after = List.length (Tree.reachable_nodes t) in
  Alcotest.(check bool) "freed nodes" true (freed > 0);
  Alcotest.(check bool) "fewer nodes" true (nodes_after < nodes_before);
  for k = 1 to 1000 do
    let expect = if k mod 10 = 0 then Some (value_of k) else None in
    Alcotest.(check (option int)) "post-compact search" expect (Tree.search t k)
  done;
  Invariant.check_exn t

let test_compact_shrinks_height () =
  let _, t = load_tree 1000 in
  let h0 = Tree.height t in
  for k = 1 to 995 do
    ignore (Tree.delete t k)
  done;
  ignore (Compact.compact t);
  Alcotest.(check bool) "height shrank" true (Tree.height t < h0);
  for k = 996 to 1000 do
    Alcotest.(check (option int)) "survivors" (Some (value_of k)) (Tree.search t k)
  done;
  Invariant.check_exn t

let test_compact_noop_on_full_tree () =
  let _, t = load_tree 500 in
  let keys_before = Invariant.keys t in
  ignore (Compact.compact t);
  Alcotest.(check (list int)) "keys unchanged" keys_before (Invariant.keys t);
  Invariant.check_exn t

let test_compact_keeps_working () =
  let _, t = load_tree 600 in
  for k = 1 to 600 do
    if k mod 3 <> 0 then ignore (Tree.delete t k)
  done;
  ignore (Compact.compact t);
  (* tree keeps accepting operations after compaction *)
  for k = 601 to 900 do
    Tree.insert t ~key:k ~value:(value_of k)
  done;
  for k = 601 to 900 do
    Alcotest.(check (option int)) "post-compact insert" (Some (value_of k)) (Tree.search t k)
  done;
  Invariant.check_exn t

let test_compact_crash_points () =
  (* Crash compaction before every (sampled) store: committed keys
     survive in every state, pre- and post-recovery. *)
  let a0 = mk_arena () in
  let t0 = Tree.create ~node_bytes:128 a0 in
  for k = 1 to 120 do
    Tree.insert t0 ~key:k ~value:(value_of k)
  done;
  let survivors = List.filter (fun k -> k mod 7 = 0) (List.init 120 (fun i -> i + 1)) in
  for k = 1 to 120 do
    if k mod 7 <> 0 then ignore (Tree.delete t0 k)
  done;
  Arena.drain a0;
  let total =
    let c = Arena.clone a0 in
    let tc = Tree.open_existing ~node_bytes:128 c in
    let b = Arena.store_count c in
    ignore (Compact.compact tc);
    Arena.store_count c - b
  in
  Alcotest.(check bool) "compaction stores" true (total > 0);
  let step = max 1 (total / 80) in
  let k = ref 0 in
  while !k <= total do
    let c = Arena.clone a0 in
    let tc = Tree.open_existing ~node_bytes:128 c in
    Arena.set_crash_plan c (Arena.After_stores (Arena.store_count c + !k));
    (try ignore (Compact.compact tc) with Arena.Crashed -> ());
    Arena.power_fail c (Storelog.Random_eviction (Prng.create !k));
    let tc = Tree.open_existing ~node_bytes:128 c in
    (* pre-recovery reader tolerance *)
    List.iter
      (fun key ->
        Alcotest.(check (option int))
          (Printf.sprintf "compact crash@%d key %d (pre)" !k key)
          (Some (value_of key)) (Tree.search tc key))
      survivors;
    Tree.recover tc;
    (match Invariant.check tc with
    | [] -> ()
    | vs -> Alcotest.failf "compact crash@%d: %s" !k (String.concat "; " vs));
    k := !k + step
  done

(* ------------------------------------------------------------------ *)
(* Cursor                                                              *)
(* ------------------------------------------------------------------ *)

let test_cursor_full_scan () =
  let _, t = load_tree 500 in
  let c = Cursor.create t ~lo:1 in
  let rec collect acc =
    match Cursor.next c with Some (k, _) -> collect (k :: acc) | None -> List.rev acc
  in
  Alcotest.(check (list int)) "all keys in order" (List.init 500 (fun i -> i + 1))
    (collect [])

let test_cursor_seek () =
  let _, t = load_tree 100 in
  let c = Cursor.create t ~lo:1 in
  Cursor.seek c 42;
  (match Cursor.next c with
  | Some (42, v) -> Alcotest.(check int) "value" (value_of 42) v
  | Some (k, _) -> Alcotest.failf "expected 42, got %d" k
  | None -> Alcotest.fail "expected a key");
  Cursor.seek c 1000;
  Alcotest.(check bool) "past end" true (Cursor.next c = None)

let test_cursor_fold () =
  let _, t = load_tree 200 in
  let sum = Cursor.fold t ~lo:50 ~hi:60 ~init:0 (fun acc k _ -> acc + k) in
  Alcotest.(check int) "fold sum" (List.fold_left ( + ) 0 (List.init 11 (fun i -> 50 + i)))
    sum

let test_cursor_survives_mutation () =
  (* Inserting and deleting between next() calls must not derail an
     in-progress cursor (same tolerance as lock-free search). *)
  let _, t = load_tree 100 in
  let c = Cursor.create t ~lo:1 in
  let seen = ref [] in
  for _ = 1 to 50 do
    match Cursor.next c with
    | Some (k, _) -> seen := k :: !seen
    | None -> ()
  done;
  (* mutate around the cursor position *)
  Tree.insert t ~key:1000 ~value:(value_of 1000);
  ignore (Tree.delete t 60);
  for _ = 1 to 100 do
    match Cursor.next c with
    | Some (k, _) -> seen := k :: !seen
    | None -> ()
  done;
  let seen = List.rev !seen in
  (* strictly ascending, no duplicates *)
  let rec ascending = function
    | a :: (b :: _ as rest) -> a < b && ascending rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "ascending" true (ascending seen);
  Alcotest.(check bool) "saw the new tail key" true (List.mem 1000 seen);
  Alcotest.(check bool) "did not resurrect deleted 60 twice" true
    (List.length (List.filter (fun k -> k = 60) seen) <= 1)

(* ------------------------------------------------------------------ *)
(* Bulk load                                                           *)
(* ------------------------------------------------------------------ *)

let test_bulk_load_basic () =
  let a = mk_arena () in
  let rng = Prng.create 3 in
  let keys = Ff_workload.Workload.distinct_uniform rng ~n:5000 ~space:50_000 in
  let pairs = Array.map (fun k -> (k, value_of k)) keys in
  let t = Bulk.load ~node_bytes:256 a pairs in
  Array.iter
    (fun k ->
      Alcotest.(check (option int)) "bulk search" (Some (value_of k)) (Tree.search t k))
    keys;
  Alcotest.(check (option int)) "bulk miss" None (Tree.search t 50_001);
  Alcotest.(check int) "key count" 5000 (List.length (Invariant.keys t));
  Invariant.check_exn t

let test_bulk_load_then_mutate () =
  let a = mk_arena () in
  let pairs = Array.init 2000 (fun i -> ((2 * i) + 2, value_of (i + 1))) in
  let t = Bulk.load ~node_bytes:128 a pairs in
  (* odd keys go in incrementally, splits and all *)
  for k = 0 to 499 do
    Tree.insert t ~key:((4 * k) + 1) ~value:(value_of (3000 + k))
  done;
  for k = 0 to 499 do
    Alcotest.(check (option int)) "incremental over bulk"
      (Some (value_of (3000 + k)))
      (Tree.search t ((4 * k) + 1))
  done;
  ignore (Tree.delete t 2);
  Alcotest.(check (option int)) "delete over bulk" None (Tree.search t 2);
  Invariant.check_exn t

let test_bulk_load_crash_atomicity () =
  (* Anything before the root-slot store must leave the arena's old
     root untouched. *)
  let a = mk_arena () in
  let pairs = Array.init 500 (fun i -> (i + 1, value_of (i + 1))) in
  let probe =
    let c = Arena.clone a in
    let before = Arena.store_count c in
    ignore (Bulk.load ~node_bytes:128 c pairs);
    Arena.store_count c - before
  in
  (* crash in the middle of the build *)
  let c = Arena.clone a in
  Arena.set_crash_plan c (Arena.After_stores (Arena.store_count c + (probe / 2)));
  (try ignore (Bulk.load ~node_bytes:128 c pairs) with Arena.Crashed -> ());
  Arena.power_fail c Storelog.Keep_none;
  Alcotest.(check int) "root slot still empty" 0 (Arena.root_get c 0);
  (* crash after: everything present *)
  let c = Arena.clone a in
  let t = Bulk.load ~node_bytes:128 c pairs in
  Arena.power_fail c Storelog.Keep_none;
  let t2 = Tree.open_existing ~node_bytes:128 c in
  ignore t;
  for k = 1 to 500 do
    Alcotest.(check (option int)) "bulk survives crash" (Some (value_of k))
      (Tree.search t2 k)
  done

let test_bulk_load_rejects_duplicates () =
  let a = mk_arena () in
  Alcotest.check_raises "duplicate keys" (Invalid_argument "Bulk.load: duplicate key")
    (fun () -> ignore (Bulk.load a [| (1, 3); (1, 5) |]))

let test_bulk_load_empty_and_tiny () =
  let a = mk_arena () in
  let t = Bulk.load ~root_slot:0 a [||] in
  Alcotest.(check (option int)) "empty" None (Tree.search t 1);
  Tree.insert t ~key:5 ~value:11;
  Alcotest.(check (option int)) "insert into empty bulk" (Some 11) (Tree.search t 5);
  let a2 = mk_arena () in
  let t2 = Bulk.load a2 [| (9, 19) |] in
  Alcotest.(check (option int)) "singleton" (Some 19) (Tree.search t2 9)

(* ------------------------------------------------------------------ *)
(* Negative control: the naive unordered shift corrupts crash states   *)
(* ------------------------------------------------------------------ *)

let test_unordered_insert_is_not_endurable () =
  (* With key-before-pointer stores and no boundary flushes, some
     crash prefix must yield a wrong read — demonstrating that FAST's
     ordering is what provides endurability, not the simulator. *)
  let violations = ref 0 in
  let l = Layout.make ~node_bytes:256 in
  let a0 = Arena.create ~words:(1 lsl 14) () in
  let n = Arena.alloc a0 l.Layout.node_words in
  Node.init a0 l n ~level:0 ~leftmost:0 ~low:0;
  List.iter
    (fun k -> Node.insert_nonfull a0 l n ~key:k ~value:(value_of k) ~mode:Node.Linear)
    [ 10; 20; 30; 40; 50; 60; 70 ];
  Arena.drain a0;
  let total =
    let c = Arena.clone a0 in
    let b = Arena.store_count c in
    Node.insert_nonfull_unordered c l n ~key:25 ~value:(value_of 25);
    Arena.store_count c - b
  in
  for k = 0 to total do
    let c = Arena.clone a0 in
    Arena.set_crash_plan c (Arena.After_stores (Arena.store_count c + k));
    (try Node.insert_nonfull_unordered c l n ~key:25 ~value:(value_of 25)
     with Arena.Crashed -> ());
    Arena.power_fail c Storelog.Keep_all;
    List.iter
      (fun key ->
        match Node.search c l n ~mode:Node.Linear key with
        | Some v when v = value_of key -> ()
        | Some _ | None -> incr violations)
      [ 10; 20; 30; 40; 50; 60; 70 ]
  done;
  Alcotest.(check bool)
    (Printf.sprintf "unordered shift corrupts some crash state (%d violations)" !violations)
    true (!violations > 0)

let suite =
  [
    Alcotest.test_case "compact after mass delete" `Quick test_compact_after_mass_delete;
    Alcotest.test_case "compact shrinks height" `Quick test_compact_shrinks_height;
    Alcotest.test_case "compact noop when full" `Quick test_compact_noop_on_full_tree;
    Alcotest.test_case "compact keeps working" `Quick test_compact_keeps_working;
    Alcotest.test_case "compact crash points" `Quick test_compact_crash_points;
    Alcotest.test_case "cursor full scan" `Quick test_cursor_full_scan;
    Alcotest.test_case "cursor seek" `Quick test_cursor_seek;
    Alcotest.test_case "cursor fold" `Quick test_cursor_fold;
    Alcotest.test_case "cursor vs mutation" `Quick test_cursor_survives_mutation;
    Alcotest.test_case "bulk load basic" `Quick test_bulk_load_basic;
    Alcotest.test_case "bulk load then mutate" `Quick test_bulk_load_then_mutate;
    Alcotest.test_case "bulk load crash atomicity" `Quick test_bulk_load_crash_atomicity;
    Alcotest.test_case "bulk load duplicates" `Quick test_bulk_load_rejects_duplicates;
    Alcotest.test_case "bulk load empty/tiny" `Quick test_bulk_load_empty_and_tiny;
    Alcotest.test_case "unordered insert not endurable" `Quick test_unordered_insert_is_not_endurable;
  ]
