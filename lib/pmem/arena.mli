(** Simulated byte-addressable persistent memory.

    The arena is word-addressed (one OCaml [int] per 8-byte word, which
    OCaml 5 stores without tearing — the paper's 8-byte failure-atomic
    store granularity).  A cache line is {!words_per_line} words.

    Two images are kept: the {e volatile} image (what the CPU sees,
    always current) and the {e persisted} image (what PM holds).  A
    {!write} updates the volatile image and logs the store as pending;
    {!flush} ([clflush] + [mfence] in the paper's pseudo-code) persists
    the pending stores of one line.  {!power_fail} discards the
    volatile image after applying a {!Storelog.crash_mode} — this is
    how crash experiments enumerate every transient state the paper's
    Section III argues readers must tolerate.

    Every access charges simulated nanoseconds to the current thread
    context according to {!Config.t}: LLC misses cost the PM read
    latency (with an MLP/prefetch discount for sequential lines),
    flushes cost the PM write latency, fences cost fence time.  The
    accounting powers every latency figure of the paper. *)

type t

exception Crashed
(** Raised by {!write} / {!flush} when the injected crash plan fires.
    The triggering store is {e not} applied. *)

exception Media_error of int
(** Raised by {!read} when the accessed word lies on a poisoned cache
    line — the simulator's uncorrectable media error.  The payload is
    the word address of the failed load.  {!peek} and {!peek_persisted}
    never raise it (they are the scrubber's diagnostic view of the
    damaged device). *)

type crash_plan =
  | Never
  | After_stores of int  (** raise on store number [k+1] *)
  | After_flushes of int (** raise on flush number [k+1] *)

val words_per_line : int
(** 8 — a 64-byte cache line. *)

val reserved_words : int
(** Words [0 .. reserved_words-1] are root/metadata slots; {!alloc}
    never returns them.  Currently 80: shard inner roots (0-55), the
    transaction log anchor (56-57), the shard manifest (58-60), the
    registry manifest (61-63), the published snapshot epoch cell (64),
    the cross-shard snapshot decision word (65), the snapshot
    version-store anchor (66-67), the rebalance generation, decision
    word and plan-block pointer (68-70), and the replication term/role
    word, applied-seqno high-water and resync marker (71-73; 74-79 are
    spare, keeping the window line-aligned).  The slot map is audited
    against every consumer by [test/test_rebalance.ml]. *)

val create : ?config:Config.t -> words:int -> unit -> t
val config : t -> Config.t
val capacity : t -> int

(** {1 Thread contexts and accounting} *)

val set_tid : t -> int -> unit
(** Select the accounting context (simulated thread); default 0. *)

val tid : t -> int
val stats : t -> int -> Stats.t
val total_stats : t -> Stats.t
val reset_stats : t -> unit
val set_phase : t -> Stats.phase -> unit

val set_yield_hook : t -> (int -> unit) option -> unit
(** Called after every charged access with the simulated ns of that
    access; the multicore simulator uses it to preempt threads. *)

(** {1 Event sink (observability)}

    An optional hook through which the tracing layer observes PM
    events.  The arena stays below the tracer in the dependency order:
    it only calls plain closures and never learns what records them.
    With no sink installed (the default) the cost is one branch per
    operation; no simulated time is ever charged for eventing, so
    enabling a sink cannot change measured results. *)

type event_sink = {
  ev_store : int -> unit;  (** word store at this address *)
  ev_flush : int -> unit;  (** line flush containing this address *)
  ev_fence : unit -> unit;
  ev_alloc : int -> int -> unit;  (** [addr words] block allocated *)
  ev_free : int -> int -> unit;   (** [addr words] block freed *)
  ev_crash : unit -> unit;        (** {!power_fail} applied *)
}

val set_event_sink : t -> event_sink option -> unit
val event_sink : t -> event_sink option

(** {1 Memory operations} *)

val read : t -> int -> int
(** Charged word load from the volatile image. *)

val write : t -> int -> int -> unit
(** Charged, failure-atomic word store (volatile image + store log). *)

val flush : t -> int -> unit
(** [clflush_with_mfence] of the line containing the address. *)

val flush_range : t -> int -> int -> unit
(** Flush every line overlapping [addr, addr+words). *)

val fence : t -> unit
(** Explicit memory fence ([mfence] / [dmb]); bumps the store epoch. *)

val fence_if_not_tso : t -> unit
(** The paper's [mfence_IF_NOT_TSO]: free on TSO configurations,
    a real fence otherwise. *)

val cpu_work : t -> int -> unit
(** Charge pure CPU time (key comparisons, branch penalties). *)

(** {1 Group flush}

    Inside a group-flush scope every {!flush} behaves like [clwb]
    instead of [clflush_with_mfence]: the line is still written back to
    the persisted image immediately (a legal TSO state, so crash
    semantics are unchanged and every crash-sweep result carries over),
    but no fence is implied — the write-back cost overlaps with other
    in-flight write-backs at the MLP discount and no per-flush fence is
    counted.  {!group_end} issues the single fence that makes the whole
    batch durable.  This is the serving layer's group-commit primitive:
    durability is acknowledged at batch granularity, fence and flush
    costs amortize across the batch. *)

val group_begin : t -> unit
(** @raise Invalid_argument if a scope is already open. *)

val group_end : t -> unit
(** Close the scope and issue the batch's durability {!fence}.
    @raise Invalid_argument if no scope is open. *)

val in_group : t -> bool

val peek : t -> int -> int
(** Uncharged volatile read (checkers and debugging only). *)

val peek_persisted : t -> int -> int
(** Uncharged read of the persisted image. *)

(** {1 Allocation} *)

val alloc : t -> int -> int
(** [alloc t words] returns a line-aligned address.  The memory is
    zeroed with ordinary (logged, charged) stores, as a real allocator
    would initialize a fresh node.  @raise Out_of_memory if full. *)

val alloc_raw : t -> int -> int
(** Like {!alloc} but without zeroing: for structures that fully
    initialize their memory themselves.  Reused memory retains stale
    contents, exactly like real PM. *)

val free : t -> int -> int -> unit
(** [free t addr words] returns a block to the size-class free list,
    or shrinks the heap when the block ends at the bump pointer (then
    keeps absorbing free blocks newly exposed at the top, so reclaimed
    tail leaks genuinely reduce {!used_words}).

    Hardened against scrub and caller bugs.
    @raise Invalid_argument if the block is out of the allocated
    region, not line-aligned, already on a free list, or sized
    differently from its recorded live allocation.  Blocks unknown to
    the live table (e.g. leaks reclaimed after a crash destroyed the
    volatile allocator state) are accepted. *)

val used_words : t -> int

val free_words : t -> int
(** Total words currently on free lists. *)

val free_blocks : t -> (int * int) list
(** Free-listed [(addr, words)] blocks, sorted by address. *)

(** {1 Roots} *)

val root_get : t -> int -> int
val root_set : t -> int -> int -> unit
(** Failure-atomic root update: store + flush + fence. *)

(** {1 Crash machinery} *)

val set_crash_plan : t -> crash_plan -> unit
val store_count : t -> int
val flush_count : t -> int

val epoch : t -> int
(** Current store epoch (bumped by every {!fence} and every non-group
    {!flush}).  The model checker records epochs at fence events to
    enumerate crash cutoffs. *)

val pending_epochs : t -> int list
(** Distinct epochs among not-yet-persisted stores, sorted ascending:
    the meaningful {!Storelog.Non_tso_cutoff} values right now. *)

val set_flush_elision : t -> bool -> unit
(** Fault injection: while enabled, {!flush} does all its accounting
    (events, counters, simulated cost, epoch bump) but does {e not}
    persist the line — the missing-[clflush] bug pattern the model
    checker's mutant descriptors use to prove the crash engine can
    detect real durability violations.  Disabled by {!power_fail}
    (recovery code always runs with real flushes) and never inherited
    by {!clone}. *)

val flush_elision : t -> bool

val power_fail : t -> Storelog.crash_mode -> unit
(** Apply a crash state to the persisted image, then reset the
    volatile image to it, clear caches and the store log, and disarm
    the crash plan.  Free lists and the live-block table are also
    dropped (allocator metadata is volatile, as across
    {!save_to_file}/{!load_from_file}), and an armed {!fault_plan}
    fires on the post-crash image before disarming.  Execution can
    continue (recovery). *)

(** {1 Media faults}

    A seeded, deterministic model of uncorrectable PM media errors.
    Arm a {!fault_plan} and the next {!power_fail} poisons whole cache
    lines (subsequent charged reads raise {!Media_error}) and injects
    bit flips / stuck words via {!Storelog.Media_fault}.  Poisoning
    scrambles the line's contents in both images with seed-derived
    garbage, so repair code must re-derive the data from surviving
    structure rather than peek at it.  An ordinary {!write} to a
    poisoned line clears the poison (the full-line-overwrite repair of
    real platforms).  Poison survives further power failures but is
    {e not} carried through {!save_to_file} — scrub before saving. *)

type fault_kind = Fault_poison | Fault_flip | Fault_stuck

type fault = {
  fault_kind : fault_kind;
  fault_addr : int;  (** word address (line base for poison) *)
  fault_index : int; (** position in the injection sequence *)
}

type fault_plan = {
  fault_seed : int;    (** sole source of randomness; replays exactly *)
  poison_lines : int;  (** lines to poison in [reserved, bump) *)
  flip_words : int;    (** single-bit flips to inject *)
  stuck_words : int;   (** words stuck at all-ones *)
}

type fault_stats = {
  poisoned : int;          (** lines poisoned (plan + {!poison_line}) *)
  flipped : int;
  stuck : int;
  media_error_reads : int; (** charged reads that raised {!Media_error} *)
}

val set_fault_plan : t -> fault_plan option -> unit
(** Arm (or disarm) the one-shot fault plan for the next
    {!power_fail}.  Never inherited by {!clone}. *)

val fault_plan : t -> fault_plan option

val injected_faults : t -> fault list
(** Every fault injected into this arena, in injection order — the
    [(seed, index)] replay record. *)

val fault_stats : t -> fault_stats

val poison_line : t -> int -> unit
(** [poison_line t line] poisons one cache line directly (tests and
    targeted experiments); idempotent. *)

val clear_poison_line : t -> int -> unit
(** Lift the poison without repairing the scrambled contents. *)

val is_poisoned : t -> int -> bool
(** Whether the line containing this word address is poisoned. *)

val poisoned_lines : t -> int list
(** Poisoned line numbers, sorted ascending. *)

val drain : t -> unit
(** Quiesce: persist all pending stores (legal under TSO — it is the
    all-lines-evicted state).  Used before {!clone}. *)

val forget_allocations : t -> unit
(** Drop the volatile allocator metadata (live-block table and free
    lists) while keeping the heap contents and bump pointer — the
    fresh-mount state a reattached {!Segment} or reloaded image starts
    from.  Subsequent {!free}s of pre-existing blocks take the
    unknown-block path, exactly as after {!power_fail}. *)

val clone : t -> t
(** Deep copy for crash-point enumeration.  The store log must be
    empty ({!drain} first).  Statistics are reset in the copy. *)

val dirty_line_count : t -> int

(** {1 File-backed durability}

    The simulated device can be written to and reread from a file,
    which lets tools demonstrate cross-process durability: only the
    {e persisted} image is saved — exactly what would survive a real
    power failure. *)

val save_to_file : t -> string -> unit
(** Serialize the persisted image (pending stores are NOT included —
    call {!drain} first if you want them). *)

val load_from_file : ?config:Config.t -> string -> t
(** Recreate an arena whose volatile and persisted images both equal
    the saved persisted image (i.e. the post-crash, post-power-on
    state).  Allocation metadata (bump pointer) is restored; free
    lists are not (they are volatile, as on real PM). *)
