(* Relocatable arena segments.

   A segment is a captured description of everything a persisted arena
   image holds: the root-slot window [0, reserved) and the data region
   [reserved, bump).  Because every interior pointer in this codebase
   is an arena-word offset, a whole-image copy is position-independent
   as long as the data lands at the same offsets in the destination —
   identity-offset relocation.  [copy] ships the data region in
   chunks; [attach] performs the root translation (re-publishing the
   captured root values in the destination's slot window, after the
   payload is durable) and resets the destination's volatile allocator
   bookkeeping to the fresh-mount state.

   Relocation at a nonzero base delta would need typed pointer maps
   (every structure enumerating its pointer words, Puddles-style);
   identity offsets sidestep that by requiring a fresh destination
   heap.  See DESIGN.md "Relocatable segments". *)

let data_lo = Arena.reserved_words

type t = {
  roots : int array; (* persisted root slots 0 .. reserved-1 at capture *)
  data_words : int;  (* persisted data region beyond the slot window *)
}

let capture src =
  if Arena.dirty_line_count src > 0 then
    invalid_arg
      "Segment.capture: source has pending stores (drain or clone it first)";
  {
    roots = Array.init Arena.reserved_words (Arena.peek_persisted src);
    data_words = Arena.used_words src;
  }

let words seg = seg.data_words
let root seg slot = seg.roots.(slot)

let copy ?(chunk_words = 512) ?(between = fun _ -> ()) ~src ~dst seg =
  if chunk_words < 1 then invalid_arg "Segment.copy: chunk_words must be >= 1";
  if Arena.used_words dst <> 0 then
    invalid_arg
      "Segment.copy: destination heap is not empty (identity-offset \
       relocation needs a fresh arena)";
  if data_lo + seg.data_words > Arena.capacity dst then
    invalid_arg
      (Printf.sprintf
         "Segment.copy: segment of %d data words does not fit a %d-word arena"
         seg.data_words (Arena.capacity dst));
  if seg.data_words > 0 then begin
    (* One raw block spanning the whole data region pins the
       destination bump pointer to the source's; [attach] later drops
       this bookkeeping so the copied structures own their blocks. *)
    let base = Arena.alloc_raw dst seg.data_words in
    if base <> data_lo then
      invalid_arg "Segment.copy: destination heap base is not offset-clean";
    let copied = ref 0 in
    while !copied < seg.data_words do
      let len = min chunk_words (seg.data_words - !copied) in
      let off = data_lo + !copied in
      for i = off to off + len - 1 do
        (* Charged loads: a poisoned source line surfaces as
           [Media_error] and aborts the copy — the source stays
           authoritative. *)
        Arena.write dst i (Arena.read src i)
      done;
      Arena.flush_range dst off len;
      copied := !copied + len;
      between !copied
    done
  end;
  Arena.fence dst

let attach ~dst seg =
  if Arena.used_words dst < seg.data_words then
    invalid_arg "Segment.attach: destination does not hold the copied image";
  (* Root translation, payload-first: the fence orders every copied
     data store ahead of the slot window, so the segment only becomes
     reachable once its payload is durable.  A crash mid-translation
     is harmless — the rebalance decision word still names the source
     as authoritative until the cutover commits. *)
  Arena.fence dst;
  for slot = 0 to Arena.reserved_words - 1 do
    if Arena.peek dst slot <> seg.roots.(slot) then
      Arena.write dst slot seg.roots.(slot)
  done;
  Arena.flush_range dst 0 Arena.reserved_words;
  Arena.fence dst;
  Arena.forget_allocations dst
