module Prng = Ff_util.Prng

exception Crashed
exception Media_error of int

type crash_plan = Never | After_stores of int | After_flushes of int

type fault_kind = Fault_poison | Fault_flip | Fault_stuck

type fault = { fault_kind : fault_kind; fault_addr : int; fault_index : int }

type fault_plan = {
  fault_seed : int;
  poison_lines : int;
  flip_words : int;
  stuck_words : int;
}

type fault_stats = {
  poisoned : int;
  flipped : int;
  stuck : int;
  media_error_reads : int;
}

type event_sink = {
  ev_store : int -> unit;
  ev_flush : int -> unit;
  ev_fence : unit -> unit;
  ev_alloc : int -> int -> unit;
  ev_free : int -> int -> unit;
  ev_crash : unit -> unit;
}

let words_per_line = 8

(* Root/metadata slot map (one word each):
     0-55   shard inner roots (shard i at 2i, 2i+1; up to 28 shards)
     56-57  transaction log region (Txlog)
     58-60  shard manifest
     61-63  registry root-slot manifest
     64     published snapshot epoch cell (Epoch)
     65     cross-shard global snapshot decision word
     66-67  snapshot version-store anchor
     68-70  rebalance generation / decision word / plan-block pointer
     71     replication term/role word (Cluster)
     72     replication applied-seqno high-water (Cluster)
     73     replication epoch-of-resync marker (Cluster)
     74-79  unassigned (the window stays line-aligned) *)
let reserved_words = 80

type ctx = { cache : Cachesim.t; stats : Stats.t }

type t = {
  config : Config.t;
  volatile : int array;
  persisted : int array;
  log : Storelog.t;
  ctxs : ctx array;
  mutable cur : int;
  mutable epoch : int;
  mutable stores : int;
  mutable flushes : int;
  mutable plan : crash_plan;
  mutable yield_hook : (int -> unit) option;
  mutable sink : event_sink option;
  mutable group : bool;
  mutable elide_flush : bool;
  mutable bump : int;
  free_lists : (int, int list) Hashtbl.t;
  (* Allocator hardening: [live_blocks] maps every outstanding
     allocation (addr -> rounded words); [free_set] mirrors the free
     lists keyed by address so double frees are O(1) to detect. *)
  live_blocks : (int, int) Hashtbl.t;
  free_set : (int, int) Hashtbl.t;
  (* Media-fault state: poisoned lines raise on charged reads.  The
     table survives power failures (media damage is persistent) and is
     only cleared by an overwriting store or an explicit repair. *)
  poison : (int, unit) Hashtbl.t;
  mutable poison_n : int;
  mutable fplan : fault_plan option;
  mutable injected : fault list; (* newest first *)
  mutable fs_poisoned : int;
  mutable fs_flipped : int;
  mutable fs_stuck : int;
  mutable fs_media_reads : int;
}

let create ?(config = Config.default) ~words () =
  let words =
    (* round up to a line boundary *)
    (words + words_per_line - 1) / words_per_line * words_per_line
  in
  {
    config;
    volatile = Array.make words 0;
    persisted = Array.make words 0;
    log = Storelog.create ();
    ctxs =
      Array.init config.Config.max_threads (fun _ ->
          { cache = Cachesim.create ~capacity:config.Config.cache_lines; stats = Stats.create () });
    cur = 0;
    epoch = 0;
    stores = 0;
    flushes = 0;
    plan = Never;
    yield_hook = None;
    sink = None;
    group = false;
    elide_flush = false;
    bump = reserved_words;
    free_lists = Hashtbl.create 8;
    live_blocks = Hashtbl.create 64;
    free_set = Hashtbl.create 8;
    poison = Hashtbl.create 4;
    poison_n = 0;
    fplan = None;
    injected = [];
    fs_poisoned = 0;
    fs_flipped = 0;
    fs_stuck = 0;
    fs_media_reads = 0;
  }

let config t = t.config
let capacity t = Array.length t.volatile

let set_tid t tid =
  assert (tid >= 0 && tid < Array.length t.ctxs);
  t.cur <- tid

let tid t = t.cur
let stats t tid = t.ctxs.(tid).stats

let total_stats t =
  let acc = Stats.create () in
  Array.iter (fun c -> Stats.add acc c.stats) t.ctxs;
  acc

let reset_stats t = Array.iter (fun c -> Stats.reset c.stats) t.ctxs

let set_phase t phase = (t.ctxs.(t.cur).stats).Stats.phase <- phase

let set_yield_hook t hook = t.yield_hook <- hook
let set_event_sink t sink = t.sink <- sink
let event_sink t = t.sink

(* Charge [ns] to the current phase bucket and run the yield hook. *)
let charge t ns =
  let s = t.ctxs.(t.cur).stats in
  (match s.Stats.phase with
  | Stats.Search -> s.Stats.search_ns <- s.Stats.search_ns + ns
  | Stats.Update -> s.Stats.update_ns <- s.Stats.update_ns + ns
  | Stats.Other -> s.Stats.other_ns <- s.Stats.other_ns + ns);
  match t.yield_hook with None -> () | Some f -> f ns

let charge_flush t ns =
  let s = t.ctxs.(t.cur).stats in
  s.Stats.flush_ns <- s.Stats.flush_ns + ns;
  match t.yield_hook with None -> () | Some f -> f ns

let charge_fence t ns =
  let s = t.ctxs.(t.cur).stats in
  s.Stats.fence_ns <- s.Stats.fence_ns + ns;
  match t.yield_hook with None -> () | Some f -> f ns

let line_of addr = addr / words_per_line

let check addr t =
  if addr < 0 || addr >= Array.length t.volatile then
    invalid_arg (Printf.sprintf "Arena: address %d out of bounds" addr)

let read t addr =
  check addr t;
  let ctx = t.ctxs.(t.cur) in
  let s = ctx.stats in
  s.Stats.loads <- s.Stats.loads + 1;
  let cfg = t.config in
  (match Cachesim.access ctx.cache (line_of addr) with
  | Cachesim.Hit ->
      s.Stats.line_hits <- s.Stats.line_hits + 1;
      charge t cfg.Config.l1_hit_ns
  | Cachesim.Miss { sequential } ->
      s.Stats.line_misses <- s.Stats.line_misses + 1;
      if sequential then begin
        s.Stats.seq_misses <- s.Stats.seq_misses + 1;
        charge t (cfg.Config.read_latency_ns / cfg.Config.mlp_factor)
      end
      else charge t cfg.Config.read_latency_ns);
  (* A poisoned line surfaces as an uncorrectable media error on the
     charged load path; the cost of the access has already been paid,
     as on real hardware where the MCE follows the stalled load. *)
  if t.poison_n > 0 && Hashtbl.mem t.poison (line_of addr) then begin
    t.fs_media_reads <- t.fs_media_reads + 1;
    raise (Media_error addr)
  end;
  t.volatile.(addr)

let maybe_crash_on_store t =
  match t.plan with
  | After_stores k when t.stores >= k -> raise Crashed
  | Never | After_stores _ | After_flushes _ -> ()

let maybe_crash_on_flush t =
  match t.plan with
  | After_flushes k when t.flushes >= k -> raise Crashed
  | Never | After_stores _ | After_flushes _ -> ()

let write t addr v =
  check addr t;
  maybe_crash_on_store t;
  (match t.sink with None -> () | Some s -> s.ev_store addr);
  t.stores <- t.stores + 1;
  let ctx = t.ctxs.(t.cur) in
  let s = ctx.stats in
  s.Stats.stores <- s.Stats.stores + 1;
  t.volatile.(addr) <- v;
  let line = line_of addr in
  (* Overwriting a poisoned line repairs it (the model's analogue of a
     full-line write clearing the platform poison bit). *)
  if t.poison_n > 0 && Hashtbl.mem t.poison line then begin
    Hashtbl.remove t.poison line;
    t.poison_n <- t.poison_n - 1
  end;
  (* Write-allocate: the line is resident after the store. *)
  ignore (Cachesim.access ctx.cache line);
  Storelog.record t.log ~addr ~value:v ~line ~epoch:t.epoch;
  if Storelog.pending t.log > t.config.Config.pending_high_water then
    Storelog.evict_to t.log ~persisted:t.persisted
      ~target:(t.config.Config.pending_high_water / 2);
  charge t t.config.Config.store_ns

let fence t =
  (match t.sink with None -> () | Some s -> s.ev_fence ());
  let s = t.ctxs.(t.cur).stats in
  s.Stats.fences <- s.Stats.fences + 1;
  t.epoch <- t.epoch + 1;
  charge_fence t t.config.Config.fence_ns

let fence_if_not_tso t =
  match t.config.Config.memory_order with
  | Config.Tso -> ()
  | Config.Non_tso -> fence t

let flush t addr =
  check addr t;
  maybe_crash_on_flush t;
  (match t.sink with None -> () | Some s -> s.ev_flush addr);
  t.flushes <- t.flushes + 1;
  let s = t.ctxs.(t.cur).stats in
  s.Stats.flushes <- s.Stats.flushes + 1;
  (* Fault injection: an elided flush performs all the accounting of a
     real one (events, counters, cost, epoch) but leaves the stores in
     the volatile cache — the bug pattern of a forgotten clflush. *)
  if not t.elide_flush then
    Storelog.flush_line t.log ~persisted:t.persisted (line_of addr);
  if t.group then
    (* Group-flush scope: the line is written back asynchronously
       ([clwb]), so no fence is implied and the write latency overlaps
       with other in-flight write-backs at the MLP discount.  The
       persisted image is updated immediately, which is a legal (and
       conservative) TSO state — durability is only *guaranteed* at the
       closing [group_end] fence, so crash semantics are unchanged. *)
    charge_flush t
      (max 1 (t.config.Config.write_latency_ns / t.config.Config.mlp_factor))
  else begin
    s.Stats.fences <- s.Stats.fences + 1;
    t.epoch <- t.epoch + 1;
    charge_flush t t.config.Config.write_latency_ns
  end

let flush_range t addr words =
  let first = line_of addr and last = line_of (addr + words - 1) in
  for line = first to last do
    flush t (line * words_per_line)
  done

let cpu_work t ns = charge t ns

(* Group flush: batch executors bracket a run of operations so that
   every flush inside the scope behaves like [clwb] (see [flush]); the
   closing fence is the batch's single durability point. *)

let group_begin t =
  if t.group then invalid_arg "Arena.group_begin: group-flush scope already open";
  t.group <- true

let group_end t =
  if not t.group then invalid_arg "Arena.group_end: no group-flush scope open";
  t.group <- false;
  fence t

let in_group t = t.group

let peek t addr =
  check addr t;
  t.volatile.(addr)

let peek_persisted t addr =
  check addr t;
  t.persisted.(addr)

(* Allocation: line-aligned bump pointer with per-size free lists.
   Allocator metadata is volatile; recovery re-derives reachability
   (see DESIGN.md). *)

let round_to_lines words = (words + words_per_line - 1) / words_per_line * words_per_line

let alloc_raw t words =
  let words = round_to_lines (max words 1) in
  match Hashtbl.find_opt t.free_lists words with
  | Some (addr :: rest) ->
      Hashtbl.replace t.free_lists words rest;
      Hashtbl.remove t.free_set addr;
      Hashtbl.replace t.live_blocks addr words;
      addr
  | Some [] | None ->
      let addr = t.bump in
      if addr + words > Array.length t.volatile then raise Out_of_memory;
      t.bump <- addr + words;
      Hashtbl.replace t.live_blocks addr words;
      addr

let alloc t words =
  let addr = alloc_raw t words in
  let n = round_to_lines (max words 1) in
  (match t.sink with None -> () | Some s -> s.ev_alloc addr n);
  for i = addr to addr + n - 1 do
    write t i 0
  done;
  addr

(* Freeing the block that ends at the bump pointer shrinks the heap
   instead of free-listing it, then keeps absorbing free blocks newly
   exposed at the top — so [used_words] genuinely drops when scrub
   reclaims a leak at the end of the heap. *)
let rec trim_bump t =
  let top =
    Hashtbl.fold
      (fun a w acc -> if a + w = t.bump then Some (a, w) else acc)
      t.free_set None
  in
  match top with
  | None -> ()
  | Some (a, w) ->
      Hashtbl.remove t.free_set a;
      (match Hashtbl.find_opt t.free_lists w with
      | Some lst -> Hashtbl.replace t.free_lists w (List.filter (fun x -> x <> a) lst)
      | None -> ());
      t.bump <- a;
      trim_bump t

let free t addr words =
  let words = round_to_lines (max words 1) in
  if addr < reserved_words || addr + words > t.bump then
    invalid_arg
      (Printf.sprintf "Arena.free: block [%d,%d) outside allocated region [%d,%d)"
         addr (addr + words) reserved_words t.bump);
  if addr mod words_per_line <> 0 then
    invalid_arg (Printf.sprintf "Arena.free: address %d is not line-aligned" addr);
  if Hashtbl.mem t.free_set addr then
    invalid_arg (Printf.sprintf "Arena.free: double free of block at %d" addr);
  (match Hashtbl.find_opt t.live_blocks addr with
  | Some w when w <> words ->
      invalid_arg
        (Printf.sprintf "Arena.free: block at %d spans %d words, freed as %d" addr w
           words)
  | Some _ | None ->
      (* Blocks unknown to the live table are accepted: scrub
         reclamation frees leaked blocks whose allocation record died
         with the crash. *)
      ());
  Hashtbl.remove t.live_blocks addr;
  (match t.sink with None -> () | Some s -> s.ev_free addr words);
  if addr + words = t.bump then begin
    t.bump <- addr;
    trim_bump t
  end
  else begin
    Hashtbl.replace t.free_set addr words;
    let prev = try Hashtbl.find t.free_lists words with Not_found -> [] in
    Hashtbl.replace t.free_lists words (addr :: prev)
  end

let used_words t = t.bump - reserved_words
let free_words t = Hashtbl.fold (fun _ w acc -> acc + w) t.free_set 0

let free_blocks t =
  List.sort compare (Hashtbl.fold (fun a w acc -> (a, w) :: acc) t.free_set [])

let root_get t slot =
  assert (slot >= 0 && slot < reserved_words);
  read t slot

let root_set t slot v =
  assert (slot >= 0 && slot < reserved_words);
  write t slot v;
  flush t slot;
  fence t

(* ------------------------------------------------------------------ *)
(* Media faults                                                        *)
(* ------------------------------------------------------------------ *)

(* Poisoning scrambles the line in BOTH images with seed-derived
   garbage: repair code cannot cheat by peeking the old contents — it
   must re-derive them from surviving structure. *)
let scramble_mult = 0x2545F4914F6CDD1D

let poison_line t line =
  let addr = line * words_per_line in
  check addr t;
  if not (Hashtbl.mem t.poison line) then begin
    Hashtbl.replace t.poison line ();
    t.poison_n <- t.poison_n + 1;
    t.fs_poisoned <- t.fs_poisoned + 1;
    let rng = Prng.create (line * scramble_mult) in
    for w = addr to addr + words_per_line - 1 do
      let v = Prng.next rng in
      t.volatile.(w) <- v;
      t.persisted.(w) <- v
    done
  end

let clear_poison_line t line =
  if Hashtbl.mem t.poison line then begin
    Hashtbl.remove t.poison line;
    t.poison_n <- t.poison_n - 1
  end

let is_poisoned t addr =
  t.poison_n > 0 && Hashtbl.mem t.poison (line_of addr)

let poisoned_lines t =
  List.sort compare (Hashtbl.fold (fun l () acc -> l :: acc) t.poison [])

let set_fault_plan t p = t.fplan <- p
let fault_plan t = t.fplan
let injected_faults t = List.rev t.injected

let fault_stats t =
  {
    poisoned = t.fs_poisoned;
    flipped = t.fs_flipped;
    stuck = t.fs_stuck;
    media_error_reads = t.fs_media_reads;
  }

let record_fault t kind addr =
  let index = List.length t.injected in
  t.injected <- { fault_kind = kind; fault_addr = addr; fault_index = index } :: t.injected

(* Fire the armed fault plan: poison lines first (index order), then
   delegate flips/stuck words to the Storelog fault model with a seed
   derived from the same PRNG stream — the whole sequence replays from
   [fault_seed] alone. *)
let inject_faults t p =
  let rng = Prng.create p.fault_seed in
  let lo_line = reserved_words / words_per_line in
  let hi_line = t.bump / words_per_line in
  if hi_line > lo_line then
    for _ = 1 to p.poison_lines do
      let line = Prng.in_range rng lo_line hi_line in
      poison_line t line;
      record_fault t Fault_poison (line * words_per_line)
    done;
  if p.flip_words > 0 || p.stuck_words > 0 then begin
    let spec =
      {
        Storelog.fault_seed = Prng.next rng;
        flip_words = p.flip_words;
        stuck_words = p.stuck_words;
        fault_lo = reserved_words;
        fault_hi = t.bump;
      }
    in
    let faults = Storelog.apply_faults ~persisted:t.persisted spec in
    List.iter
      (fun (kind, addr) ->
        t.volatile.(addr) <- t.persisted.(addr);
        match kind with
        | `Flip ->
            t.fs_flipped <- t.fs_flipped + 1;
            record_fault t Fault_flip addr
        | `Stuck ->
            t.fs_stuck <- t.fs_stuck + 1;
            record_fault t Fault_stuck addr)
      faults
  end

let set_crash_plan t plan = t.plan <- plan
let store_count t = t.stores
let flush_count t = t.flushes
let epoch t = t.epoch
let set_flush_elision t b = t.elide_flush <- b
let flush_elision t = t.elide_flush
let pending_epochs t = Storelog.pending_epochs t.log

let power_fail t mode =
  (match t.sink with None -> () | Some s -> s.ev_crash ());
  Storelog.apply_crash t.log ~persisted:t.persisted mode;
  Array.blit t.persisted 0 t.volatile 0 (Array.length t.persisted);
  Array.iter (fun c -> Cachesim.clear c.cache) t.ctxs;
  t.plan <- Never;
  t.group <- false;
  (* Fault injection applies to the pre-crash execution only: recovery
     code after the power failure runs with real flushes, so a mutant's
     missing-flush bug is confined to the phase under test. *)
  t.elide_flush <- false;
  (* Allocator metadata is volatile by design: free lists and the live
     table die with the power, exactly as across a file round trip.
     Blocks that were free-listed but not reclaimed by trimming become
     leaks until a scrub finds them. *)
  Hashtbl.reset t.free_lists;
  Hashtbl.reset t.free_set;
  Hashtbl.reset t.live_blocks;
  (* Media damage from the armed fault plan lands now, on the post-crash
     image; like the crash plan, the fault plan disarms after firing. *)
  (match t.fplan with None -> () | Some p -> inject_faults t p);
  t.fplan <- None

let drain t =
  Storelog.evict_to t.log ~persisted:t.persisted ~target:0

let clone t =
  drain t;
  if Storelog.pending t.log > 0 then invalid_arg "Arena.clone: store log not empty";
  {
    config = t.config;
    volatile = Array.copy t.volatile;
    persisted = Array.copy t.persisted;
    log = Storelog.create ();
    ctxs =
      Array.init t.config.Config.max_threads (fun _ ->
          {
            cache = Cachesim.create ~capacity:t.config.Config.cache_lines;
            stats = Stats.create ();
          });
    cur = 0;
    epoch = t.epoch;
    stores = t.stores;
    flushes = t.flushes;
    plan = Never;
    yield_hook = None;
    sink = None;
    group = false;
    elide_flush = false;
    bump = t.bump;
    free_lists = Hashtbl.copy t.free_lists;
    live_blocks = Hashtbl.copy t.live_blocks;
    free_set = Hashtbl.copy t.free_set;
    poison = Hashtbl.copy t.poison;
    poison_n = t.poison_n;
    fplan = None;
    injected = [];
    fs_poisoned = 0;
    fs_flipped = 0;
    fs_stuck = 0;
    fs_media_reads = 0;
  }

let dirty_line_count t = List.length (Storelog.dirty_lines t.log)

(* A reattached segment (or any freshly mounted image) starts from the
   post-crash allocator state: the heap contents and bump pointer are
   authoritative, the volatile block bookkeeping is not.  Dropping it
   makes subsequent frees of pre-existing blocks take the
   unknown-block path, exactly as after [power_fail]. *)
let forget_allocations t =
  Hashtbl.reset t.free_lists;
  Hashtbl.reset t.free_set;
  Hashtbl.reset t.live_blocks

(* File format: (magic, capacity, bump, persisted image). *)
let magic = 0xFA57FA12

let save_to_file t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Marshal.to_channel oc (magic, Array.length t.persisted, t.bump, t.persisted) [])

let load_from_file ?(config = Config.default) path =
  let ic = open_in_bin path in
  let m, words, bump, persisted =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> (Marshal.from_channel ic : int * int * int * int array))
  in
  if m <> magic then invalid_arg "Arena.load_from_file: not an arena image";
  let t = create ~config ~words () in
  Array.blit persisted 0 t.persisted 0 (min words (Array.length t.persisted));
  Array.blit persisted 0 t.volatile 0 (min words (Array.length t.volatile));
  t.bump <- max bump reserved_words;
  t
