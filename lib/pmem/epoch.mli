(** Failure-atomic snapshot epoch cell (root slot 64).

    The epoch is the snapshot subsystem's notion of logical time: a
    monotonically increasing counter persisted in one reserved root
    word.  {!publish} is crash-atomic in the same way the registry
    manifest magic is — the payload the epoch covers is persisted
    first (an explicit ordering fence), then the epoch word is written
    with a single store + flush + fence.  A crash anywhere in between
    leaves the old epoch current, and the versions only reachable
    through the new epoch are unreachable garbage, not corruption.

    A fresh arena reads epoch [0]; the first published epoch is [1].
    Root slot 65 holds the {e cross-shard decision word}: a serving
    ensemble's coordinator publishes the agreed global epoch there
    after every shard pinned it, so post-crash validity of a global
    snapshot is decided by one word (see [Ff_shard.Shard.snapshot_begin]). *)

val slot_epoch : int
(** 64 *)

val slot_global : int
(** 65 *)

val current : Arena.t -> int
(** Published epoch; [0] on a fresh arena. *)

val publish : Arena.t -> int -> unit
(** [publish arena e] fences, then installs [e] as the published epoch
    (store + flush + fence on one word — crash-atomic).
    @raise Invalid_argument if [e <= current arena], or inside a
    group-flush scope (the group's deferred fence would break the
    payload-before-epoch ordering). *)

val bump : Arena.t -> int
(** Publish and return [current + 1]. *)

val global_decision : Arena.t -> int
(** The cross-shard decision word (root slot 65); [0] when no global
    snapshot was ever taken on this arena. *)

val publish_global : Arena.t -> int -> unit
(** Persist the cross-shard decision word (fence, then store + flush +
    fence — same discipline as {!publish}). *)
