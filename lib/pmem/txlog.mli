(** Failure-atomic transaction log region.

    A reserved, root-anchored segment of the arena holding combined
    undo/redo records plus a commit-record header — the PM-side half of
    the transaction layer ([Ff_tx.Tx] drives it; [Ff_shard] runs a
    two-phase commit over one log per shard).

    {b Layout.}  Root slot {!slot_addr} holds the region's base word
    address (nonzero once initialized; written {e last}, so a crash
    mid-initialization leaves the arena without a log rather than with
    a torn one) and {!slot_words} its size.  The region starts with one
    header line:

    {v
    +0 magic     +1 commit    +2 head      +3 prepared  +4 coord
    +5 txid
    v}

    followed by one line per record: [tag, seq, key, old, new, chk]
    (values use [0] for "absent"/"delete", legal because index values
    are nonzero by contract; [chk] is an always-odd integrity word
    written last, so a crash mode that persists only a prefix of the
    line's stores leaves a detectably torn record).  [txid] is written
    at begin time, before any [head] store on the same line: since
    crash modes persist per-line store prefixes, a surviving nonzero
    [head] always comes with the matching [txid], and a record slot
    still holding a stale previous-transaction image — internally
    consistent, checksum and all — fails the tag check instead of
    being replayed at recovery.

    {b Commit-record protocol.}  Records are appended and persisted
    {e before} the in-place updates they guard; [head] counts valid
    records and is persisted after the record it covers (so a torn
    append is invisible).  {!set_commit} persists the commit word
    {e last}: recovery treats a nonzero commit word as "all effects are
    (re)applicable from the redo images", a zero commit word with
    [head > 0] as "roll back from the undo images".  {!discard} clears
    the header, which is the log's only truncation point.

    {b Two-phase commit.}  A participant persists its payload, then a
    [prepared] marker naming the coordinator shard; the coordinator's
    commit word is the global decision record.  Recovery consults the
    coordinator (via the closure given to {!resolve}) before choosing
    redo or discard.

    {b Mutant.}  {!set_torn_commit} inverts the protocol — the commit
    word is persisted {e before} the log payload — reproducing the
    classic torn-commit bug the model checker must detect. *)

type t

type record = {
  key : int;
  old_v : int;  (** pre-image value, [0] when the key was absent *)
  new_v : int;  (** post-image value, [0] for a delete *)
}

val slot_addr : int
(** 56 — root slot holding the region base address. *)

val slot_words : int
(** 57 — root slot holding the region size in words. *)

val default_capacity : int
(** Records a freshly created region can hold (64). *)

val ensure : ?capacity:int -> Arena.t -> t
(** Attach to the arena's log region, creating (and root-anchoring) it
    first if the arena has none.  Idempotent; [capacity] only applies
    on creation. *)

val attach : Arena.t -> t option
(** Attach to an existing region; [None] if the arena carries none. *)

val arena : t -> Arena.t
val capacity : t -> int

val set_torn_commit : t -> bool -> unit
(** Fault injection: persist the commit word before the payload (and
    skip the per-append persist), the bug pattern the checker's
    torn-commit mutant proves it can catch.  Test-only. *)

val torn_commit : t -> bool

(** {1 Writing the log} *)

val begin_tx : t -> int
(** Start a transaction; returns its id (monotonic, nonzero).  The log
    must be idle (discarded).
    @raise Invalid_argument if a transaction is already in flight. *)

val append : ?persist:bool -> t -> record -> unit
(** Append one record under the open transaction.  With
    [persist = true] (the default) the record line and the advanced
    [head] are flushed and fenced before returning — the undo-logging
    contract: the pre-image is durable before the caller's in-place
    write.  With [persist = false] the stores are merely issued
    (shadow path: the caller persists the whole payload at once).
    @raise Invalid_argument when the region is full or no transaction
    is open. *)

val persist_payload : t -> unit
(** Flush every appended record line plus the header and fence once —
    the shadow path's single payload ordering point. *)

val set_commit : t -> unit
(** Persist the commit word (store + flush + fence), {e after} the
    payload per the protocol — unless {!set_torn_commit} inverted it. *)

val set_prepared : t -> gtid:int -> coord:int -> unit
(** Persist the two-phase-commit participant marker: global
    transaction id and coordinator shard index.  Payload must already
    be persisted. *)

val discard : t -> unit
(** Clear commit/head/prepared/coord (one line flush + fence) and
    close the in-flight transaction.  The log is idle afterwards. *)

val abandon : t -> unit
(** Close an open transaction that appended {e nothing}: purely
    volatile, no flush or fence (read-only transactions commit for
    free).
    @raise Invalid_argument if records were appended. *)

(** {1 Reading and recovery} *)

type state =
  | Idle
  | In_flight of int  (** head: records logged, no commit word *)
  | Committed of int  (** commit word set; payload count *)
  | Prepared of { gtid : int; coord : int; count : int }

val state : t -> state
(** Decode the header (post-crash this reads the surviving image). *)

val decision : t -> gtid:int -> bool
(** Coordinator-side query for two-phase-commit recovery: does this
    log carry a durable commit decision for global transaction
    [gtid] (commit word set, prepared marker matching)? *)

val records : t -> record list
(** The [head] currently-valid records, oldest first.  Records whose
    tag does not match the logged transaction, whose sequence number
    does not match their slot, or whose checksum fails (torn append)
    are dropped along with everything after them. *)

val commit_torn : t -> bool
(** True when the commit word is durable but the payload it covers is
    not fully trusted — impossible under the correct protocol (the
    payload's durability fence precedes the commit word's), so this is
    direct evidence of a torn commit.  {!resolve} still replays the
    trusted prefix; the model checker reports it as a durability
    violation. *)

val resolve :
  t ->
  decided:(gtid:int -> coord:int -> bool) ->
  redo:(record -> unit) ->
  undo:(record -> unit) ->
  [ `Clean | `Redone of int | `Undone of int | `Aborted of int ]
(** Recovery: replay or roll back whatever the log holds, then
    {!discard}.

    - [Committed] — replay every record through [redo] (idempotent
      logical re-application), [`Redone n].
    - [In_flight] — roll back through [undo] in reverse append order,
      [`Undone n].
    - [Prepared] — ask [decided] whether the coordinator's decision
      record exists; redo if so, otherwise abort without applying
      anything ([`Aborted n] — a prepared participant made no in-place
      writes).
    - [Idle] — [`Clean]. *)
