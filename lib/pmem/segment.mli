(** Relocatable arena segments: a copyable, offset-addressed
    description of a persisted arena image, so a shard's image can be
    shipped between arenas.

    Every interior pointer in the simulated structures is an
    arena-word offset, which makes a whole-image copy
    position-independent as long as it lands at the same offsets —
    {e identity-offset relocation}.  {!capture} records the root-slot
    window and the data-region extent of a quiesced source;
    {!copy} ships the data region chunk by chunk (the caller throttles
    through [between], as {!Ff_snapshot.Snapshot.backup} does);
    {!attach} performs the root translation — re-publishing the
    captured root values in the destination slot window only after the
    payload is durable — and resets the destination allocator to the
    fresh-mount state.

    Relocation at a nonzero base delta would require typed pointer
    maps (each structure enumerating its pointer words); identity
    offsets sidestep that by requiring a fresh destination heap. *)

type t
(** A captured segment descriptor (volatile; cheap to hold). *)

val capture : Arena.t -> t
(** Capture the persisted image of a quiesced arena: all
    {!Arena.reserved_words} root values plus the data-region extent.
    @raise Invalid_argument if the source has pending stores —
    {!Arena.drain} or {!Arena.clone} it first. *)

val words : t -> int
(** Data words the segment spans (beyond the reserved slot window). *)

val root : t -> int -> int
(** Captured value of one root slot. *)

val copy :
  ?chunk_words:int -> ?between:(int -> unit) -> src:Arena.t -> dst:Arena.t ->
  t -> unit
(** Copy the segment's data region into a fresh destination arena at
    identity offsets, [chunk_words] (default 512) words at a time,
    flushing each chunk.  [between] is called after every chunk with
    the cumulative words copied — rebalance charges its copy throttle
    there.  Loads from [src] are charged reads, so a poisoned source
    line aborts the copy with {!Arena.Media_error}.
    @raise Invalid_argument if the destination heap is not empty or
    too small. *)

val attach : dst:Arena.t -> t -> unit
(** Install the captured roots in the destination slot window (after a
    fence ordering the copied payload first) and drop the
    destination's volatile allocator bookkeeping
    ({!Arena.forget_allocations}), so the image reopens exactly like a
    post-crash mount — typically via
    [Ff_index.Registry.open_existing]. *)
