(** Log of stores that have reached the (volatile) CPU cache but have
    not yet been flushed to persistent memory.

    This is what gives the simulator real crash semantics: at a crash,
    the persisted image may additionally contain any subset of the
    pending stores that the memory-order model allows —
    - under TSO, an arbitrary per-line {e prefix} of that line's store
      sequence (a cache line is evicted as a snapshot, and stores to a
      line land in program order);
    - under non-TSO strict persistency, any downward-closed set with
      respect to fence ordering and per-word program order.

    [flush_line] models [clflush]: it applies the line's pending stores
    to the persisted image and retires them.  A background-eviction
    high-water mark bounds memory by applying the oldest stores (always
    a legal persisted state). *)

type t

val create : unit -> t

val record : t -> addr:int -> value:int -> line:int -> epoch:int -> unit
(** Log a store that has been applied to the volatile image. *)

val pending : t -> int
(** Number of stores not yet persisted. *)

val flush_line : t -> persisted:int array -> int -> unit
(** Apply all pending stores of the given line, in order. *)

val evict_to : t -> persisted:int array -> target:int -> unit
(** Apply oldest pending stores until at most [target] remain. *)

type fault_spec = {
  fault_seed : int;  (** seeds a private PRNG; faults replay from it alone *)
  flip_words : int;  (** number of single-bit flips to inject *)
  stuck_words : int; (** number of words forced to all-ones ([max_int]) *)
  fault_lo : int;    (** first word address eligible for a fault *)
  fault_hi : int;    (** one past the last eligible word address *)
}
(** Uncorrectable-media damage applied to the persisted image at crash
    time: [flip_words] random single-bit flips followed by
    [stuck_words] words stuck at all-ones, drawn uniformly from
    [fault_lo, fault_hi).  The draw order is fixed (flips first, in
    index order, then stuck words), so every fault is replayable from
    [(fault_seed, index)]. *)

type crash_mode =
  | Keep_none
      (** Only explicitly flushed data survives: the adversarial
          "everything still in cache is lost" outcome. *)
  | Keep_all
      (** Every pending store survives (the crash happened after all
          lines were incidentally evicted): together with crash-point
          enumeration this realizes every TSO store-prefix state. *)
  | Random_eviction of Ff_util.Prng.t
      (** Independent random per-line prefixes (TSO). *)
  | Non_tso_random of Ff_util.Prng.t
      (** Random downward-closed set under fence ordering: picks an
          epoch cutoff and random per-word prefixes at the cutoff. *)
  | Non_tso_cutoff of int * Ff_util.Prng.t
      (** Like {!Non_tso_random} but with the epoch cutoff fixed by the
          caller: all pending stores with epoch < cutoff persist, and
          each word at the cutoff epoch persists a random prefix of its
          store sequence.  {!Ff_check} uses this to sweep every fence
          epoch exhaustively instead of sampling one. *)
  | Media_fault of fault_spec * crash_mode
      (** Apply the base crash mode, then corrupt the resulting
          persisted image per the {!fault_spec} — the media-error
          pattern of real PM, where a power event damages lines that
          were otherwise durable. *)

val apply_faults : persisted:int array -> fault_spec -> ([ `Flip | `Stuck ] * int) list
(** Apply only the media damage of a {!fault_spec} to [persisted] and
    return the injected faults in injection order (kind, word
    address).  Exposed so {!Arena.power_fail} can record fault stats;
    {!apply_crash} with {!Media_fault} calls this internally. *)

val pending_epochs : t -> int list
(** Distinct fence epochs among pending stores, sorted ascending —
    the set of meaningful {!Non_tso_cutoff} values for this log. *)

val apply_crash : t -> persisted:int array -> crash_mode -> unit
(** Apply a crash state to [persisted] and clear the log.
    Randomized modes iterate lines/words in sorted order (never
    [Hashtbl] order), so for a fixed log content and PRNG seed the
    resulting image is identical across OCaml versions — recorded
    counterexamples replay bit-for-bit. *)

val clear : t -> unit

val dirty_lines : t -> int list
(** Lines with at least one pending store (deduplicated). *)
