type phase = Search | Update | Other

type t = {
  mutable loads : int;
  mutable stores : int;
  mutable flushes : int;
  mutable fences : int;
  mutable line_misses : int;
  mutable line_hits : int;
  mutable seq_misses : int;
  mutable search_ns : int;
  mutable update_ns : int;
  mutable other_ns : int;
  mutable flush_ns : int;
  mutable fence_ns : int;
  mutable phase : phase;
}

let create () =
  {
    loads = 0;
    stores = 0;
    flushes = 0;
    fences = 0;
    line_misses = 0;
    line_hits = 0;
    seq_misses = 0;
    search_ns = 0;
    update_ns = 0;
    other_ns = 0;
    flush_ns = 0;
    fence_ns = 0;
    phase = Other;
  }

let reset t =
  t.loads <- 0;
  t.stores <- 0;
  t.flushes <- 0;
  t.fences <- 0;
  t.line_misses <- 0;
  t.line_hits <- 0;
  t.seq_misses <- 0;
  t.search_ns <- 0;
  t.update_ns <- 0;
  t.other_ns <- 0;
  t.flush_ns <- 0;
  t.fence_ns <- 0;
  t.phase <- Other

let total_ns t = t.search_ns + t.update_ns + t.other_ns + t.flush_ns + t.fence_ns

let add acc x =
  acc.loads <- acc.loads + x.loads;
  acc.stores <- acc.stores + x.stores;
  acc.flushes <- acc.flushes + x.flushes;
  acc.fences <- acc.fences + x.fences;
  acc.line_misses <- acc.line_misses + x.line_misses;
  acc.line_hits <- acc.line_hits + x.line_hits;
  acc.seq_misses <- acc.seq_misses + x.seq_misses;
  acc.search_ns <- acc.search_ns + x.search_ns;
  acc.update_ns <- acc.update_ns + x.update_ns;
  acc.other_ns <- acc.other_ns + x.other_ns;
  acc.flush_ns <- acc.flush_ns + x.flush_ns;
  acc.fence_ns <- acc.fence_ns + x.fence_ns

let diff a b =
  {
    loads = a.loads - b.loads;
    stores = a.stores - b.stores;
    flushes = a.flushes - b.flushes;
    fences = a.fences - b.fences;
    line_misses = a.line_misses - b.line_misses;
    line_hits = a.line_hits - b.line_hits;
    seq_misses = a.seq_misses - b.seq_misses;
    search_ns = a.search_ns - b.search_ns;
    update_ns = a.update_ns - b.update_ns;
    other_ns = a.other_ns - b.other_ns;
    flush_ns = a.flush_ns - b.flush_ns;
    fence_ns = a.fence_ns - b.fence_ns;
    phase = a.phase;
  }

let copy t = diff t (create ())

let to_json t =
  Printf.sprintf
    {|{"loads":%d,"stores":%d,"flushes":%d,"fences":%d,"line_misses":%d,"line_hits":%d,"seq_misses":%d,"search_ns":%d,"update_ns":%d,"other_ns":%d,"flush_ns":%d,"fence_ns":%d,"total_ns":%d}|}
    t.loads t.stores t.flushes t.fences t.line_misses t.line_hits t.seq_misses
    t.search_ns t.update_ns t.other_ns t.flush_ns t.fence_ns (total_ns t)

let pp ppf t =
  Format.fprintf ppf
    "loads=%d stores=%d flushes=%d fences=%d misses=%d hits=%d seq=%d \
     ns[search=%d update=%d other=%d flush=%d fence=%d total=%d]"
    t.loads t.stores t.flushes t.fences t.line_misses t.line_hits t.seq_misses
    t.search_ns t.update_ns t.other_ns t.flush_ns t.fence_ns (total_ns t)
