(* Failure-atomic snapshot epoch cell.

   The published epoch lives in one reserved root word.  Publication
   follows the manifest-magic discipline: everything the new epoch
   covers is already persisted (the caller's flush/fence protocol plus
   our explicit ordering fence), and then the epoch word itself is
   stored, flushed and fenced as a single word — a crash either keeps
   the old epoch or installs the new one, never a torn state. *)

let slot_epoch = 64
let slot_global = 65

let current arena = Arena.root_get arena slot_epoch

let publish arena e =
  if e <= current arena then
    invalid_arg
      (Printf.sprintf "Epoch.publish: epoch %d not beyond published %d" e
         (current arena));
  if Arena.in_group arena then
    invalid_arg "Epoch.publish: inside a group-flush scope";
  (* Order every payload store (version records, entry updates, the
     structures' own writes) ahead of the epoch word. *)
  Arena.fence arena;
  Arena.root_set arena slot_epoch e

let bump arena =
  let e = current arena + 1 in
  publish arena e;
  e

let global_decision arena = Arena.root_get arena slot_global

let publish_global arena g =
  if Arena.in_group arena then
    invalid_arg "Epoch.publish_global: inside a group-flush scope";
  Arena.fence arena;
  Arena.root_set arena slot_global g
