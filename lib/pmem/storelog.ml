module Vec = Ff_util.Vec
module Prng = Ff_util.Prng

(* Entries live in parallel growable arrays indexed by sequence number.
   [applied] marks entries already persisted (by a flush or eviction);
   they are skipped until the next compaction.  Per-line index lists
   allow O(pending-in-line) flushes. *)

type t = {
  addrs : int Vec.t;
  values : int Vec.t;
  lines : int Vec.t;
  epochs : int Vec.t;
  applied : bool Vec.t;
  by_line : (int, int Vec.t) Hashtbl.t;
  mutable live : int; (* entries not yet applied *)
}

let create () =
  {
    addrs = Vec.create ~dummy:0 ();
    values = Vec.create ~dummy:0 ();
    lines = Vec.create ~dummy:0 ();
    epochs = Vec.create ~dummy:0 ();
    applied = Vec.create ~dummy:false ();
    by_line = Hashtbl.create 64;
    live = 0;
  }

let compact t =
  (* Drop applied entries, preserving order, and rebuild line lists. *)
  let n = Vec.length t.addrs in
  let keep = ref [] in
  for i = n - 1 downto 0 do
    if not (Vec.get t.applied i) then
      keep := (Vec.get t.addrs i, Vec.get t.values i, Vec.get t.lines i, Vec.get t.epochs i) :: !keep
  done;
  Vec.clear t.addrs;
  Vec.clear t.values;
  Vec.clear t.lines;
  Vec.clear t.epochs;
  Vec.clear t.applied;
  Hashtbl.reset t.by_line;
  t.live <- 0;
  List.iter
    (fun (addr, value, line, epoch) ->
      let idx = Vec.length t.addrs in
      Vec.push t.addrs addr;
      Vec.push t.values value;
      Vec.push t.lines line;
      Vec.push t.epochs epoch;
      Vec.push t.applied false;
      t.live <- t.live + 1;
      let lst =
        match Hashtbl.find_opt t.by_line line with
        | Some v -> v
        | None ->
            let v = Vec.create ~dummy:(-1) () in
            Hashtbl.add t.by_line line v;
            v
      in
      Vec.push lst idx)
    !keep

let record t ~addr ~value ~line ~epoch =
  let idx = Vec.length t.addrs in
  Vec.push t.addrs addr;
  Vec.push t.values value;
  Vec.push t.lines line;
  Vec.push t.epochs epoch;
  Vec.push t.applied false;
  t.live <- t.live + 1;
  let lst =
    match Hashtbl.find_opt t.by_line line with
    | Some v -> v
    | None ->
        let v = Vec.create ~dummy:(-1) () in
        Hashtbl.add t.by_line line v;
        v
  in
  Vec.push lst idx

let pending t = t.live

let apply_entry t persisted idx =
  if not (Vec.get t.applied idx) then begin
    persisted.(Vec.get t.addrs idx) <- Vec.get t.values idx;
    Vec.set t.applied idx true;
    t.live <- t.live - 1
  end

let flush_line t ~persisted line =
  match Hashtbl.find_opt t.by_line line with
  | None -> ()
  | Some lst ->
      Vec.iter (fun idx -> apply_entry t persisted idx) lst;
      Hashtbl.remove t.by_line line

let evict_to t ~persisted ~target =
  if t.live > target then begin
    let n = Vec.length t.addrs in
    let i = ref 0 in
    while t.live > target && !i < n do
      apply_entry t persisted !i;
      incr i
    done;
    compact t
  end

type fault_spec = {
  fault_seed : int;
  flip_words : int;
  stuck_words : int;
  fault_lo : int;
  fault_hi : int;
}

type crash_mode =
  | Keep_none
  | Keep_all
  | Random_eviction of Prng.t
  | Non_tso_random of Prng.t
  | Non_tso_cutoff of int * Prng.t
  | Media_fault of fault_spec * crash_mode

(* Media faults draw word addresses from a private PRNG seeded by
   [fault_seed] alone, so a recorded (seed, index) pair replays the
   identical fault sequence regardless of what the base crash mode
   did: flips first (index order), then stuck words. *)
let apply_faults ~persisted spec =
  let rng = Prng.create spec.fault_seed in
  let span = spec.fault_hi - spec.fault_lo in
  if span <= 0 then []
  else begin
    let faults = ref [] in
    for _ = 1 to spec.flip_words do
      let addr = spec.fault_lo + Prng.int rng span in
      let bit = Prng.int rng 62 in
      persisted.(addr) <- persisted.(addr) lxor (1 lsl bit);
      faults := (`Flip, addr) :: !faults
    done;
    for _ = 1 to spec.stuck_words do
      let addr = spec.fault_lo + Prng.int rng span in
      persisted.(addr) <- max_int;
      faults := (`Stuck, addr) :: !faults
    done;
    List.rev !faults
  end

let pending_epochs t =
  let seen = Hashtbl.create 16 in
  let n = Vec.length t.addrs in
  for i = 0 to n - 1 do
    if not (Vec.get t.applied i) then Hashtbl.replace seen (Vec.get t.epochs i) ()
  done;
  List.sort compare (Hashtbl.fold (fun e () acc -> e :: acc) seen [])

let clear t =
  Vec.clear t.addrs;
  Vec.clear t.values;
  Vec.clear t.lines;
  Vec.clear t.epochs;
  Vec.clear t.applied;
  Hashtbl.reset t.by_line;
  t.live <- 0

(* All randomized modes iterate lines/words in sorted order, never in
   Hashtbl order: the PRNG draw sequence is then a function of the
   logged stores alone, so a recorded (seed, crash point) pair replays
   to the identical persisted image on any OCaml version (Hashtbl
   iteration order depends on Hashtbl.hash internals and is not a
   cross-version contract). *)

let apply_non_tso_cutoff t persisted cutoff rng =
  let n = Vec.length t.addrs in
  for i = 0 to n - 1 do
    if (not (Vec.get t.applied i)) && Vec.get t.epochs i < cutoff then
      apply_entry t persisted i
  done;
  (* Per-word random prefixes at the cutoff epoch. *)
  let by_word = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    if (not (Vec.get t.applied i)) && Vec.get t.epochs i = cutoff then begin
      let addr = Vec.get t.addrs i in
      let lst = try Hashtbl.find by_word addr with Not_found -> [] in
      Hashtbl.replace by_word addr (i :: lst)
    end
  done;
  let words =
    List.sort compare (Hashtbl.fold (fun addr _ acc -> addr :: acc) by_word [])
  in
  List.iter
    (fun addr ->
      let idxs = Array.of_list (List.rev (Hashtbl.find by_word addr)) in
      let k = Prng.int rng (Array.length idxs + 1) in
      for i = 0 to k - 1 do
        apply_entry t persisted idxs.(i)
      done)
    words

let rec apply_mode t ~persisted mode =
  match mode with
  | Keep_none -> ()
  | Keep_all ->
      let n = Vec.length t.addrs in
      for i = 0 to n - 1 do
        apply_entry t persisted i
      done
  | Random_eviction rng ->
      (* Independent per-line prefix of the line's pending stores. *)
      let lines =
        List.sort compare (Hashtbl.fold (fun line _ acc -> line :: acc) t.by_line [])
      in
      List.iter
        (fun line ->
          let lst = Hashtbl.find t.by_line line in
          let unapplied =
            Array.of_seq
              (Seq.filter
                 (fun idx -> not (Vec.get t.applied idx))
                 (Array.to_seq (Vec.to_array lst)))
          in
          let n = Array.length unapplied in
          if n > 0 then begin
            let k = Prng.int rng (n + 1) in
            for i = 0 to k - 1 do
              apply_entry t persisted unapplied.(i)
            done
          end)
        lines
  | Non_tso_random rng ->
      (* Pick an epoch cutoff e*: all pending stores with epoch < e*
         persist; at epoch = e*, each word independently persists a
         random prefix of its store sequence. *)
      let n = Vec.length t.addrs in
      let min_e = ref max_int and max_e = ref min_int in
      for i = 0 to n - 1 do
        if not (Vec.get t.applied i) then begin
          let e = Vec.get t.epochs i in
          if e < !min_e then min_e := e;
          if e > !max_e then max_e := e
        end
      done;
      if !min_e <= !max_e then begin
        let cutoff = Prng.in_range rng !min_e (!max_e + 2) in
        apply_non_tso_cutoff t persisted cutoff rng
      end
  | Non_tso_cutoff (cutoff, rng) -> apply_non_tso_cutoff t persisted cutoff rng
  | Media_fault (spec, base) ->
      (* Base crash state first, then the media damage on top: the
         fault model corrupts whatever the crash left behind. *)
      apply_mode t ~persisted base;
      ignore (apply_faults ~persisted spec)

let apply_crash t ~persisted mode =
  apply_mode t ~persisted mode;
  clear t

let dirty_lines t =
  Hashtbl.fold
    (fun line lst acc ->
      let has_live = ref false in
      Vec.iter (fun idx -> if not (Vec.get t.applied idx) then has_live := true) lst;
      if !has_live then line :: acc else acc)
    t.by_line []
