type record = { key : int; old_v : int; new_v : int }

let slot_addr = 56
let slot_words = 57
let default_capacity = 64
let magic = 0x54584c31 (* "TXL1" *)

(* Header word offsets within the region's first line. *)
let off_magic = 0
let off_commit = 1
let off_head = 2
let off_prepared = 3
let off_coord = 4 (* coordinator shard + 1; 0 = none *)

(* Id of the transaction the record slots belong to.  Written at
   begin_tx, BEFORE any head store on the same header line: crash modes
   persist per-line store prefixes, so any crash image whose head is
   nonzero also carries the matching txid — and record slots still
   holding a stale (previous-transaction) image then fail the tag
   check instead of being replayed. *)
let off_txid = 5

let record_words = Arena.words_per_line

(* Per-record integrity word, stored last in the record line.  Crash
   modes can persist any per-line store prefix, so a record is trusted
   only when its checksum — which no proper prefix can carry — matches.
   Forced odd so a dropped (all-zero) checksum word never validates. *)
let checksum ~tag ~seq ~key ~old_v ~new_v =
  let h = tag in
  let h = (h * 131) + seq in
  let h = (h * 131) + key in
  let h = (h * 131) + old_v in
  let h = (h * 131) + new_v in
  h lor 1

type t = {
  arena : Arena.t;
  base : int;             (* region base word address *)
  cap : int;              (* record capacity *)
  mutable open_tx : bool;
  mutable txid : int;     (* id of the open (or last) transaction *)
  mutable count : int;    (* volatile mirror of the head word *)
  mutable next_id : int;
  mutable torn : bool;
}

let arena t = t.arena
let capacity t = t.cap
let set_torn_commit t b = t.torn <- b
let torn_commit t = t.torn

let record_base t i = t.base + record_words + (i * record_words)

let mk arena base cap =
  { arena; base; cap; open_tx = false; txid = 0; count = 0; next_id = 1; torn = false }

let attach arena =
  let base = Arena.root_get arena slot_addr in
  if base = 0 then None
  else begin
    let words = Arena.root_get arena slot_words in
    if Arena.peek arena base <> magic then None
    else Some (mk arena base ((words - record_words) / record_words))
  end

let ensure ?(capacity = default_capacity) arena =
  match attach arena with
  | Some t -> t
  | None ->
      let words = record_words * (capacity + 1) in
      let base = Arena.alloc_raw arena words in
      Arena.write arena (base + off_magic) magic;
      Arena.write arena (base + off_commit) 0;
      Arena.write arena (base + off_head) 0;
      Arena.write arena (base + off_prepared) 0;
      Arena.write arena (base + off_coord) 0;
      Arena.write arena (base + off_txid) 0;
      Arena.flush arena base;
      Arena.fence arena;
      (* The size is anchored first and the address last: a crash
         mid-initialization leaves slot_addr zero — no log — rather
         than a root pointing at an uninitialized region. *)
      Arena.root_set arena slot_words words;
      Arena.root_set arena slot_addr base;
      mk arena base capacity

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let begin_tx t =
  if t.open_tx then invalid_arg "Txlog.begin_tx: transaction already in flight";
  t.open_tx <- true;
  t.txid <- t.next_id;
  t.next_id <- t.next_id + 1;
  t.count <- 0;
  (* Pending until the first flush of the header line (every append
     and persist_payload flushes it); ordered before any head store. *)
  Arena.write t.arena (t.base + off_txid) t.txid;
  t.txid

let append ?(persist = true) t r =
  if not t.open_tx then invalid_arg "Txlog.append: no transaction open";
  if t.count >= t.cap then
    invalid_arg
      (Printf.sprintf "Txlog.append: log full (%d records); raise ?capacity"
         t.cap);
  let a = t.arena in
  let i = t.count in
  let rb = record_base t i in
  Arena.write a (rb + 0) t.txid;
  Arena.write a (rb + 1) i;
  Arena.write a (rb + 2) r.key;
  Arena.write a (rb + 3) r.old_v;
  Arena.write a (rb + 4) r.new_v;
  Arena.write a (rb + 5)
    (checksum ~tag:t.txid ~seq:i ~key:r.key ~old_v:r.old_v ~new_v:r.new_v);
  Arena.write a (t.base + off_head) (i + 1);
  t.count <- i + 1;
  (* Undo-logging ordering: the record line, then the head that makes
     it valid, both durable before the caller's in-place write.  The
     torn-commit mutant elides exactly this persist. *)
  if persist && not t.torn then begin
    Arena.flush a rb;
    Arena.flush a t.base;
    Arena.fence a
  end

let persist_payload t =
  let a = t.arena in
  let own = not (Arena.in_group a) in
  if own then Arena.group_begin a;
  for i = 0 to t.count - 1 do
    Arena.flush a (record_base t i)
  done;
  Arena.flush a t.base;
  if own then Arena.group_end a

let set_commit t =
  let a = t.arena in
  Arena.write a (t.base + off_commit) t.txid;
  Arena.flush a t.base;
  Arena.fence a

let set_prepared t ~gtid ~coord =
  if gtid <= 0 then invalid_arg "Txlog.set_prepared: gtid must be positive";
  let a = t.arena in
  Arena.write a (t.base + off_prepared) gtid;
  Arena.write a (t.base + off_coord) (coord + 1);
  Arena.flush a t.base;
  Arena.fence a

let discard t =
  let a = t.arena in
  Arena.write a (t.base + off_commit) 0;
  Arena.write a (t.base + off_head) 0;
  Arena.write a (t.base + off_prepared) 0;
  Arena.write a (t.base + off_coord) 0;
  Arena.flush a t.base;
  Arena.fence a;
  t.open_tx <- false;
  t.count <- 0

let abandon t =
  if t.count > 0 then
    invalid_arg "Txlog.abandon: transaction appended records; discard instead";
  t.open_tx <- false

(* ------------------------------------------------------------------ *)
(* Reading and recovery                                                *)
(* ------------------------------------------------------------------ *)

type state =
  | Idle
  | In_flight of int
  | Committed of int
  | Prepared of { gtid : int; coord : int; count : int }

let state t =
  let a = t.arena in
  let commit = Arena.read a (t.base + off_commit) in
  let head = Arena.read a (t.base + off_head) in
  let prepared = Arena.read a (t.base + off_prepared) in
  if commit <> 0 then Committed head
  else if prepared <> 0 then
    Prepared
      { gtid = prepared; coord = Arena.read a (t.base + off_coord) - 1; count = head }
  else if head > 0 then In_flight head
  else Idle

let decision t ~gtid =
  let a = t.arena in
  Arena.read a (t.base + off_commit) <> 0
  && Arena.read a (t.base + off_prepared) = gtid

(* A record is trusted only when its tag matches the header's durable
   transaction id (ordered before the head on the same line), its
   sequence number matches its slot, and its checksum validates: a
   torn append (head advanced, record line not fully — or not at all —
   persisted) truncates the tail instead of replaying garbage or a
   stale record left over from an earlier, already-discarded
   transaction. *)
let records t =
  let a = t.arena in
  let head = min (Arena.read a (t.base + off_head)) t.cap in
  if head <= 0 then []
  else begin
    let tag0 = Arena.read a (t.base + off_txid) in
    let rec go i acc =
      if i >= head then List.rev acc
      else
        let rb = record_base t i in
        let tag = Arena.read a (rb + 0) in
        let seq = Arena.read a (rb + 1) in
        let key = Arena.read a (rb + 2) in
        let old_v = Arena.read a (rb + 3) in
        let new_v = Arena.read a (rb + 4) in
        if
          tag0 = 0 || tag <> tag0 || seq <> i
          || Arena.read a (rb + 5) <> checksum ~tag ~seq ~key ~old_v ~new_v
        then List.rev acc
        else go (i + 1) ({ key; old_v; new_v } :: acc)
    in
    go 0 []
  end

(* The commit protocol orders the payload's durability fence before
   the commit word's, so a durable commit whose records are not all
   trusted can only come from a broken ordering (the torn-commit
   mutant, or real log corruption).  Recovery still replays the
   trusted prefix; checkers treat this as a durability violation. *)
let commit_torn t =
  match state t with
  | Committed head -> head = 0 || List.length (records t) < min head t.cap
  | _ -> false

let resolve t ~decided ~redo ~undo =
  match state t with
  | Idle -> `Clean
  | Committed _ ->
      let rs = records t in
      List.iter redo rs;
      discard t;
      `Redone (List.length rs)
  | In_flight _ ->
      let rs = records t in
      List.iter undo (List.rev rs);
      discard t;
      `Undone (List.length rs)
  | Prepared { gtid; coord; _ } ->
      let rs = records t in
      if decided ~gtid ~coord then begin
        List.iter redo rs;
        discard t;
        `Redone (List.length rs)
      end
      else begin
        discard t;
        `Aborted (List.length rs)
      end
