module Histogram = Ff_util.Histogram
module Trace = Ff_trace.Trace
module Metrics = Ff_trace.Metrics
module Json = Ff_trace.Json

(* Declarative SLO rules over a tracer's metrics registry.

   Latency: a percentile of a named latency histogram must stay under
   a bound.  Burn_rate: bad events (summed over a counter prefix, so
   per-shard labels work) per 1000 ops must stay under a budget — the
   error-budget view of degraded/media-fault events. *)

type rule =
  | Latency of {
      rule : string;
      metric : string;
      percentile : float;
      bound_ns : int;
    }
  | Burn_rate of {
      rule : string;
      events : string; (* counter prefix *)
      ops : string; (* counter prefix *)
      max_per_1k : float;
    }
  | Burn_rate_multi of {
      rule : string;
      events : string;
      ops : string;
      max_per_1k : float;
      short_ns : int;
      long_ns : int;
    }
      (* SRE-style multi-window burn rate: fire only when the rate
         exceeds the budget over BOTH the short window (the problem is
         happening now) and the long window (it has been happening
         long enough to matter).  Windowed rates need sample history,
         which lives in the Monitor; the stateless check degrades to
         the lifetime rate. *)

let rule_name = function
  | Latency r -> r.rule
  | Burn_rate r -> r.rule
  | Burn_rate_multi r -> r.rule

let rule_describe = function
  | Latency r ->
      Printf.sprintf "%s: p%g(%s) <= %dns" r.rule r.percentile r.metric
        r.bound_ns
  | Burn_rate r ->
      Printf.sprintf "%s: sum(%s*) per 1k sum(%s*) <= %g" r.rule r.events
        r.ops r.max_per_1k
  | Burn_rate_multi r ->
      Printf.sprintf
        "%s: sum(%s*) per 1k sum(%s*) <= %g over both %dns and %dns windows"
        r.rule r.events r.ops r.max_per_1k r.short_ns r.long_ns

type violation = {
  rule : string;
  detail : string;
  observed : float;
  bound : float;
  at_ns : int;
}

type report = {
  evaluated : int;
  at_ns : int;
  violations : violation list;
}

let ok r = r.violations = []

let check_rule m ~now rule =
  match rule with
  | Latency { rule; metric; percentile; bound_ns } -> (
      match Metrics.histogram m metric with
      | None -> None
      | Some h when Histogram.count h = 0 -> None
      | Some h ->
          let v = Histogram.percentile h percentile in
          if v > bound_ns then
            Some
              {
                rule;
                detail =
                  Printf.sprintf "p%g(%s) = %dns > bound %dns" percentile
                    metric v bound_ns;
                observed = float_of_int v;
                bound = float_of_int bound_ns;
                at_ns = now;
              }
          else None)
  | Burn_rate { rule; events; ops; max_per_1k }
  | Burn_rate_multi { rule; events; ops; max_per_1k; _ } ->
      (* The stateless check sees no history: a multi-window rule
         degrades to its lifetime rate here. *)
      let ev = Metrics.counter_prefix_sum m events in
      let n = Metrics.counter_prefix_sum m ops in
      if n = 0 then None
      else
        let per_1k = 1000. *. float_of_int ev /. float_of_int n in
        if per_1k > max_per_1k then
          Some
            {
              rule;
              detail =
                Printf.sprintf "%d %s events over %d ops = %.3f/1k > budget %g"
                  ev events n per_1k max_per_1k;
              observed = per_1k;
              bound = max_per_1k;
              at_ns = now;
            }
        else None

let evaluate ~tracer ~now rules =
  let m = Trace.metrics tracer in
  {
    evaluated = List.length rules;
    at_ns = now;
    violations = List.filter_map (check_rule m ~now) rules;
  }

(* ------------------------------------------------------------------ *)
(* Serialisation                                                       *)
(* ------------------------------------------------------------------ *)

let violation_json v =
  Json.Obj
    [
      ("rule", Json.Str v.rule);
      ("detail", Json.Str v.detail);
      ("observed", Json.Float v.observed);
      ("bound", Json.Float v.bound);
      ("at_ns", Json.Int v.at_ns);
    ]

let report_to_json r =
  Json.Obj
    [
      ("ok", Json.Bool (ok r));
      ("evaluated", Json.Int r.evaluated);
      ("at_ns", Json.Int r.at_ns);
      ("violations", Json.Arr (List.map violation_json r.violations));
    ]

let violation_of_json j =
  let str k = Option.bind (Json.member k j) Json.to_str in
  let fl k =
    Option.value ~default:0. (Option.bind (Json.member k j) Json.to_float)
  in
  let num k =
    Option.value ~default:0 (Option.bind (Json.member k j) Json.to_int)
  in
  match str "rule" with
  | None -> None
  | Some rule ->
      Some
        {
          rule;
          detail = Option.value ~default:"" (str "detail");
          observed = fl "observed";
          bound = fl "bound";
          at_ns = num "at_ns";
        }

let report_of_json j =
  let num k =
    Option.value ~default:0 (Option.bind (Json.member k j) Json.to_int)
  in
  {
    evaluated = num "evaluated";
    at_ns = num "at_ns";
    violations =
      (match Option.bind (Json.member "violations" j) Json.to_list with
      | None -> []
      | Some l -> List.filter_map violation_of_json l);
  }

let pp_report ppf r =
  if ok r then
    Format.fprintf ppf "SLO: ok (%d rules, checked at %dns)@." r.evaluated
      r.at_ns
  else begin
    Format.fprintf ppf "SLO: %d violation(s) of %d rules@."
      (List.length r.violations) r.evaluated;
    List.iter
      (fun v -> Format.fprintf ppf "  VIOLATED %s: %s@." v.rule v.detail)
      r.violations
  end

(* ------------------------------------------------------------------ *)
(* Continuous monitor                                                  *)
(* ------------------------------------------------------------------ *)

module Monitor = struct
  (* Counter readings at past checks, for windowed burn rates. *)
  type sample = { s_at : int; s_ev : int; s_ops : int }

  type nonrec t = {
    rules : rule array;
    tracer : Trace.t;
    window_ns : int;
    mutable next_ns : int;
    mutable checks : int;
    (* Worst observed violation per rule index; a rule fires at most
       one instant event per window (the per-rule counter still counts
       every violating window). *)
    worst : violation option array;
    (* Per-rule sample history, newest first (multi-window rules
       only); pruned to the long window plus one straddling sample. *)
    hist : sample list array;
  }

  let create ?(window_ns = 100_000) ~tracer rules =
    if window_ns <= 0 then invalid_arg "Slo.Monitor.create: window_ns <= 0";
    {
      rules = Array.of_list rules;
      tracer;
      window_ns;
      next_ns = 0;
      checks = 0;
      worst = Array.make (max 1 (List.length rules)) None;
      hist = Array.make (max 1 (List.length rules)) [];
    }

  (* Rate per 1k ops since the newest sample at or before
     [now - window_ns] (the oldest retained sample when history is
     still shorter than the window). *)
  let windowed_rate hist ~now ~window_ns ~ev ~ops =
    let boundary = now - window_ns in
    let rec anchor = function
      | [] -> { s_at = 0; s_ev = 0; s_ops = 0 }
      | [ s ] -> s
      | s :: rest -> if s.s_at <= boundary then s else anchor rest
    in
    let a = anchor hist in
    let dev = ev - a.s_ev and dops = ops - a.s_ops in
    if dev <= 0 then 0.
    else 1000. *. float_of_int dev /. float_of_int (max 1 dops)

  let prune ~boundary hist =
    let rec go = function
      | [] -> []
      | s :: rest -> if s.s_at > boundary then s :: go rest else [ s ]
    in
    go hist

  (* Multi-window burn rate: both the short and the long window must
     exceed the budget.  Needs the monitor's history, so it lives
     here rather than in the stateless [check_rule]. *)
  let check_multi m i ~now ~reg ~rule ~events ~ops ~max_per_1k ~short_ns
      ~long_ns =
    let ev = Metrics.counter_prefix_sum reg events in
    let n = Metrics.counter_prefix_sum reg ops in
    let hist = m.hist.(i) in
    let short_r = windowed_rate hist ~now ~window_ns:short_ns ~ev ~ops:n in
    let long_r = windowed_rate hist ~now ~window_ns:long_ns ~ev ~ops:n in
    m.hist.(i) <-
      prune ~boundary:(now - long_ns)
        ({ s_at = now; s_ev = ev; s_ops = n } :: hist);
    if short_r > max_per_1k && long_r > max_per_1k then
      Some
        {
          rule;
          detail =
            Printf.sprintf
              "%s burning at %.3f/1k (%dns window) and %.3f/1k (%dns window) \
               > budget %g"
              events short_r short_ns long_r long_ns max_per_1k;
          observed = short_r;
          bound = max_per_1k;
          at_ns = now;
        }
    else None

  let check m ~now =
    m.checks <- m.checks + 1;
    let reg = Trace.metrics m.tracer in
    Array.iteri
      (fun i rule ->
        let result =
          match rule with
          | Burn_rate_multi { rule; events; ops; max_per_1k; short_ns; long_ns }
            ->
              check_multi m i ~now ~reg ~rule ~events ~ops ~max_per_1k
                ~short_ns ~long_ns
          | rule -> check_rule reg ~now rule
        in
        match result with
        | None -> ()
        | Some v ->
            Trace.instant m.tracer Trace.id_slo_violation i;
            Metrics.incr reg ("slo.violations." ^ v.rule);
            let keep =
              match m.worst.(i) with
              | Some w when w.observed >= v.observed -> w
              | _ -> v
            in
            m.worst.(i) <- Some keep)
      m.rules;
    m.next_ns <- now + m.window_ns

  let tick m ~now = if now >= m.next_ns then check m ~now
  let checks m = m.checks

  let report m ~now =
    {
      evaluated = Array.length m.rules;
      at_ns = now;
      violations =
        Array.to_list m.worst |> List.filter_map (fun v -> v);
    }
end
