(** Fence/flush attribution profile: the tracer's per-site counters
    ({!Ff_trace.Trace.site_table}) normalised per op.

    Fence count is the cost model for PM structures (MOD, Circ-Tree),
    so the audit question is not "how many fences" but "which code
    path issued them" — this table answers it per site (insert, split,
    merge, scrub, batch, recovery, or "untagged"). *)

type row = {
  site : string;
  spans : int;
  stores : int;
  flushes : int;
  fences : int;
  fences_per_op : float;
}

type t = {
  ops : int;
  total_stores : int;
  total_flushes : int;
  total_fences : int;
  rows : row list;  (** sorted by site name *)
}

val of_trace : ops:int -> Ff_trace.Trace.t -> t
(** Snapshot the tracer's attribution counters; [ops] is the op count
    the per-op columns divide by. *)

val fences_per_op : t -> float
val flushes_per_op : t -> float

val to_json : t -> Ff_trace.Json.t
val of_json : Ff_trace.Json.t -> t
val pp : Format.formatter -> t -> unit
(** Fixed-width text table with a totals line. *)
