(** Sliding-window time-series over a tracer's metrics registry,
    sampled on simulated time.

    Tracked metrics become series of [(sim_ns, value)] points in a
    fixed ring (oldest points overwritten): counters report the
    per-window delta, gauges the current value, histograms a
    percentile of the in-window {!Ff_util.Histogram.delta} — so a
    latency spike inside one window stays visible after the cumulative
    histogram has converged.  Deterministic for deterministic runs. *)

type t

val create : ?window_ns:int -> ?capacity:int -> Ff_trace.Trace.t -> t
(** [window_ns] is the sampling period on the tracer's clock (default
    100us of simulated time); [capacity] the per-series point ring
    (default 1024). *)

val window_ns : t -> int

val track_counter : t -> string -> unit
(** Counter (or per-shard counter prefix — summed via
    {!Ff_trace.Metrics.counter_prefix_sum}): per-window delta. *)

val track_gauge : t -> string -> unit

val track_histogram : ?percentile:float -> t -> string -> unit
(** Percentile (default p99) of the window's histogram delta. *)

val sample : t -> now:int -> unit
(** Force one sample point per series at time [now]. *)

val tick : t -> now:int -> unit
(** {!sample} only if a full window has elapsed since the last one —
    callers may tick on every op. *)

val samples : t -> int
val names : t -> string list
val points : t -> string -> (int * float) array
(** Retained points, oldest first; [[||]] for unknown names. *)

val to_json : t -> Ff_trace.Json.t
