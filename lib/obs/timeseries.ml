module Histogram = Ff_util.Histogram
module Trace = Ff_trace.Trace
module Metrics = Ff_trace.Metrics
module Json = Ff_trace.Json

(* Each tracked metric becomes one series of (sim_ns, value) points in
   a fixed ring.  Counters report the per-window delta (a rate at
   window granularity), gauges the current value, histograms a
   percentile of the in-window delta (Histogram.delta between
   snapshots), so a latency spike inside one window is visible even
   when the cumulative histogram has long since converged. *)

type kind =
  | Counter of { mutable last : int }
  | Gauge
  | Hist of { percentile : float; mutable prev : Histogram.t }

type series = {
  name : string;
  unit_label : string;
  kind : kind;
  ts : int array;
  vs : float array;
  mutable n : int; (* total points ever pushed *)
}

type t = {
  tracer : Trace.t;
  window_ns : int;
  capacity : int;
  mutable series : series list; (* reverse registration order *)
  mutable next_ns : int;
  mutable samples : int;
}

let create ?(window_ns = 100_000) ?(capacity = 1024) tracer =
  if window_ns <= 0 then invalid_arg "Timeseries.create: window_ns must be > 0";
  {
    tracer;
    window_ns;
    capacity = max 4 capacity;
    series = [];
    next_ns = 0;
    samples = 0;
  }

let window_ns t = t.window_ns

let add_series t name unit_label kind =
  t.series <-
    {
      name;
      unit_label;
      kind;
      ts = Array.make t.capacity 0;
      vs = Array.make t.capacity 0.;
      n = 0;
    }
    :: t.series

let track_counter t name = add_series t name "delta" (Counter { last = 0 })
let track_gauge t name = add_series t name "gauge" Gauge

let track_histogram ?(percentile = 99.) t name =
  add_series t name
    (Printf.sprintf "p%g" percentile)
    (Hist { percentile; prev = Histogram.create () })

let push s cap ts v =
  let i = s.n mod cap in
  s.ts.(i) <- ts;
  s.vs.(i) <- v;
  s.n <- s.n + 1

let sample t ~now =
  let m = Trace.metrics t.tracer in
  List.iter
    (fun s ->
      match s.kind with
      | Counter c ->
          let cur = Metrics.counter_prefix_sum m s.name in
          push s t.capacity now (float_of_int (cur - c.last));
          c.last <- cur
      | Gauge ->
          push s t.capacity now
            (Option.value ~default:0. (Metrics.gauge_value m s.name))
      | Hist h ->
          let v =
            match Metrics.histogram m s.name with
            | None -> 0.
            | Some cur ->
                let d = Histogram.delta cur h.prev in
                h.prev <- Histogram.copy cur;
                if Histogram.count d = 0 then 0.
                else float_of_int (Histogram.percentile d h.percentile)
          in
          push s t.capacity now v)
    t.series;
  t.samples <- t.samples + 1;
  t.next_ns <- now + t.window_ns

let tick t ~now = if now >= t.next_ns then sample t ~now

let samples t = t.samples

let points_of s cap =
  let kept = min s.n cap in
  Array.init kept (fun j ->
      let i = (s.n - kept + j) mod cap in
      (s.ts.(i), s.vs.(i)))

let points t name =
  match List.find_opt (fun s -> s.name = name) t.series with
  | None -> [||]
  | Some s -> points_of s t.capacity

let names t = List.rev_map (fun s -> s.name) t.series

let to_json t =
  let ser s =
    Json.Obj
      [
        ("name", Json.Str s.name);
        ("unit", Json.Str s.unit_label);
        ( "points",
          Json.Arr
            (Array.to_list
               (Array.map
                  (fun (ts, v) -> Json.Arr [ Json.Int ts; Json.Float v ])
                  (points_of s t.capacity))) );
      ]
  in
  Json.Obj
    [
      ("window_ns", Json.Int t.window_ns);
      ("samples", Json.Int t.samples);
      ("series", Json.Arr (List.rev_map ser t.series));
    ]
