(** Declarative SLO rules evaluated over a tracer's metrics registry,
    with a continuous monitor that emits violations as trace instants.

    Two rule shapes cover the serving-layer objectives: a latency
    bound on a percentile of a named histogram, and an error-budget
    burn rate — bad events (counter prefix, so per-shard labels sum)
    per 1000 ops.  Violations carry the rule name, a human-readable
    detail line, the observed value and the bound. *)

type rule =
  | Latency of {
      rule : string;  (** name quoted in violations *)
      metric : string;  (** histogram name, e.g. ["shard.latency_ns.insert"] *)
      percentile : float;
      bound_ns : int;
    }
  | Burn_rate of {
      rule : string;
      events : string;  (** counter prefix, e.g. ["shard.degraded"] *)
      ops : string;  (** counter prefix, e.g. ["shard.batch_ops"] *)
      max_per_1k : float;
    }
  | Burn_rate_multi of {
      rule : string;
      events : string;
      ops : string;
      max_per_1k : float;
      short_ns : int;  (** fast window: the problem is happening now *)
      long_ns : int;  (** slow window: it has lasted long enough to page *)
    }
      (** SRE-style multi-window burn rate: fires only when the event
          rate exceeds the budget over {e both} windows, suppressing
          one-off blips (short window recovers) and stale alerts (long
          window never accumulates).  Windowed evaluation needs sample
          history and therefore lives in {!Monitor}; the stateless
          {!evaluate} degrades the rule to its lifetime rate. *)

val rule_name : rule -> string
val rule_describe : rule -> string

type violation = {
  rule : string;
  detail : string;
  observed : float;
  bound : float;
  at_ns : int;
}

type report = { evaluated : int; at_ns : int; violations : violation list }

val ok : report -> bool

val evaluate : tracer:Ff_trace.Trace.t -> now:int -> rule list -> report
(** One-shot evaluation against current metric values.  Rules whose
    metric has no samples yet pass vacuously. *)

val report_to_json : report -> Ff_trace.Json.t
val report_of_json : Ff_trace.Json.t -> report
val pp_report : Format.formatter -> report -> unit

(** Windowed continuous evaluation on the simulated clock.  Each
    violating window emits an [id_slo_violation] instant (detail =
    rule index) into the tracer — visible in the Perfetto export — and
    bumps the ["slo.violations.<rule>"] counter; the final report
    keeps the worst observed violation per rule.

    For {!Burn_rate_multi} rules the monitor records a counter sample
    at every check and evaluates the rate over the short and long
    windows against that history (pruned to the long window); the rule
    fires only when both windows exceed the budget. *)
module Monitor : sig
  type t

  val create : ?window_ns:int -> tracer:Ff_trace.Trace.t -> rule list -> t
  (** [window_ns] defaults to 100us of simulated time. *)

  val tick : t -> now:int -> unit
  (** Evaluate if a window has elapsed; callers may tick per op. *)

  val check : t -> now:int -> unit
  (** Force an evaluation now. *)

  val checks : t -> int
  val report : t -> now:int -> report
end
