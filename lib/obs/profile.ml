module Trace = Ff_trace.Trace
module Json = Ff_trace.Json

(* The fence-attribution table: per code site (insert, split, scrub,
   batch, ...), how many ordered stores / flushes / fences ran under
   it, normalised per op.  MOD's observation that fence count is the
   cost model for PM structures makes this the table a fence audit
   reads first. *)

type row = {
  site : string;
  spans : int;
  stores : int;
  flushes : int;
  fences : int;
  fences_per_op : float;
}

type t = {
  ops : int;
  total_stores : int;
  total_flushes : int;
  total_fences : int;
  rows : row list; (* sorted by site name *)
}

let of_trace ~ops tracer =
  let per v = if ops <= 0 then 0. else float_of_int v /. float_of_int ops in
  let rows =
    List.map
      (fun (r : Trace.site_row) ->
        {
          site = r.Trace.site;
          spans = r.Trace.spans;
          stores = r.Trace.stores;
          flushes = r.Trace.flushes;
          fences = r.Trace.fences;
          fences_per_op = per r.Trace.fences;
        })
      (Trace.site_table tracer)
  in
  {
    ops;
    total_stores = List.fold_left (fun a r -> a + r.stores) 0 rows;
    total_flushes = List.fold_left (fun a r -> a + r.flushes) 0 rows;
    total_fences = List.fold_left (fun a r -> a + r.fences) 0 rows;
    rows;
  }

let fences_per_op t =
  if t.ops <= 0 then 0. else float_of_int t.total_fences /. float_of_int t.ops

let flushes_per_op t =
  if t.ops <= 0 then 0. else float_of_int t.total_flushes /. float_of_int t.ops

let row_json r =
  Json.Obj
    [
      ("site", Json.Str r.site);
      ("spans", Json.Int r.spans);
      ("stores", Json.Int r.stores);
      ("flushes", Json.Int r.flushes);
      ("fences", Json.Int r.fences);
      ("fences_per_op", Json.Float r.fences_per_op);
    ]

let to_json t =
  Json.Obj
    [
      ("ops", Json.Int t.ops);
      ("stores", Json.Int t.total_stores);
      ("flushes", Json.Int t.total_flushes);
      ("fences", Json.Int t.total_fences);
      ("sites", Json.Arr (List.map row_json t.rows));
    ]

let row_of_json j =
  let str k = Option.bind (Json.member k j) Json.to_str in
  let num k =
    Option.value ~default:0 (Option.bind (Json.member k j) Json.to_int)
  in
  let fl k =
    Option.value ~default:0. (Option.bind (Json.member k j) Json.to_float)
  in
  match str "site" with
  | None -> None
  | Some site ->
      Some
        {
          site;
          spans = num "spans";
          stores = num "stores";
          flushes = num "flushes";
          fences = num "fences";
          fences_per_op = fl "fences_per_op";
        }

let of_json j =
  let num k =
    Option.value ~default:0 (Option.bind (Json.member k j) Json.to_int)
  in
  let rows =
    match Option.bind (Json.member "sites" j) Json.to_list with
    | None -> []
    | Some l -> List.filter_map row_of_json l
  in
  {
    ops = num "ops";
    total_stores = num "stores";
    total_flushes = num "flushes";
    total_fences = num "fences";
    rows;
  }

let pp ppf t =
  Format.fprintf ppf "%-14s %8s %9s %9s %8s %10s@." "site" "spans" "stores"
    "flushes" "fences" "fences/op";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-14s %8d %9d %9d %8d %10.3f@." r.site r.spans
        r.stores r.flushes r.fences r.fences_per_op)
    t.rows;
  Format.fprintf ppf "%-14s %8s %9d %9d %8d %10.3f  (%d ops)@." "total" ""
    t.total_stores t.total_flushes t.total_fences (fences_per_op t) t.ops
