module Histogram = Ff_util.Histogram
module Json = Ff_trace.Json

(* The checked-in perf trajectory: one BENCH_<n>.json per PR holds this
   headline (throughput, fence economy, latency tail) plus the
   attribution table, so a regression in any later PR is a diff
   against a file, not an anecdote.  Everything is simulated-time
   derived — no wall-clock fields — so snapshots are reproducible from
   a seed and comparable across machines. *)

type t = {
  label : string;
  scale : float;
  seed : int;
  ops : int;
  elapsed_ns : int;
  kops : float; (* ops per simulated millisecond = kops/s of sim time *)
  fences_per_op : float;
  flushes_per_op : float;
  p50_ns : int;
  p99_ns : int;
  p999_ns : int;
  profile : Profile.t;
  slo : Slo.report option;
}

let kops_of ~ops ~elapsed_ns =
  if elapsed_ns <= 0 then 0.
  else float_of_int ops /. (float_of_int elapsed_ns /. 1e6)

let make ~label ~scale ~seed ~ops ~elapsed_ns ~latency ?slo ~profile () =
  {
    label;
    scale;
    seed;
    ops;
    elapsed_ns;
    kops = kops_of ~ops ~elapsed_ns;
    fences_per_op = Profile.fences_per_op profile;
    flushes_per_op = Profile.flushes_per_op profile;
    p50_ns = Histogram.percentile latency 50.;
    p99_ns = Histogram.percentile latency 99.;
    p999_ns = Histogram.percentile latency 99.9;
    profile;
    slo;
  }

let to_json s =
  Json.Obj
    ([
       ("label", Json.Str s.label);
       ("scale", Json.Float s.scale);
       ("seed", Json.Int s.seed);
       ("ops", Json.Int s.ops);
       ("elapsed_ns", Json.Int s.elapsed_ns);
       ("kops", Json.Float s.kops);
       ("fences_per_op", Json.Float s.fences_per_op);
       ("flushes_per_op", Json.Float s.flushes_per_op);
       ("p50_ns", Json.Int s.p50_ns);
       ("p99_ns", Json.Int s.p99_ns);
       ("p999_ns", Json.Int s.p999_ns);
       ("profile", Profile.to_json s.profile);
     ]
    @ match s.slo with
      | None -> []
      | Some r -> [ ("slo", Slo.report_to_json r) ])

let of_json j =
  let num k =
    Option.value ~default:0 (Option.bind (Json.member k j) Json.to_int)
  in
  let fl k =
    Option.value ~default:0. (Option.bind (Json.member k j) Json.to_float)
  in
  let str k =
    Option.value ~default:"" (Option.bind (Json.member k j) Json.to_str)
  in
  {
    label = str "label";
    scale = fl "scale";
    seed = num "seed";
    ops = num "ops";
    elapsed_ns = num "elapsed_ns";
    kops = fl "kops";
    fences_per_op = fl "fences_per_op";
    flushes_per_op = fl "flushes_per_op";
    p50_ns = num "p50_ns";
    p99_ns = num "p99_ns";
    p999_ns = num "p999_ns";
    profile =
      (match Json.member "profile" j with
      | Some p -> Profile.of_json p
      | None ->
          {
            Profile.ops = 0;
            total_stores = 0;
            total_flushes = 0;
            total_fences = 0;
            rows = [];
          });
    slo = Option.map Slo.report_of_json (Json.member "slo" j);
  }

let save s file =
  let oc = open_out file in
  output_string oc (Json.to_string (to_json s));
  output_char oc '\n';
  close_out oc

let load file =
  let ic = open_in file in
  let n = in_channel_length ic in
  let b = really_input_string ic n in
  close_in ic;
  of_json (Json.of_string b)

(* Gate: simulated time makes runs at matching scale exactly
   reproducible, so the tolerance only absorbs intended algorithmic
   drift between PRs, not measurement noise. *)
let compare_headline ~prev ~fresh ~tolerance =
  let fails = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> fails := s :: !fails) fmt in
  if prev.scale <> fresh.scale then
    fail "scale mismatch: prev %g vs fresh %g (gate compares equals only)"
      prev.scale fresh.scale
  else begin
    if prev.kops > 0. && fresh.kops < prev.kops *. (1. -. tolerance) then
      fail "throughput regression: %.1f kops -> %.1f kops (> %.0f%% drop)"
        prev.kops fresh.kops (tolerance *. 100.);
    if
      prev.fences_per_op > 0.
      && fresh.fences_per_op > prev.fences_per_op *. (1. +. tolerance)
    then
      fail "fence regression: %.3f fences/op -> %.3f fences/op (> %.0f%% rise)"
        prev.fences_per_op fresh.fences_per_op (tolerance *. 100.)
  end;
  List.rev !fails

let pp ppf s =
  Format.fprintf ppf
    "%s: %d ops in %dns (scale %g, seed %d)@.  %.1f kops  %.3f fences/op  \
     %.3f flushes/op@.  latency p50=%dns p99=%dns p999=%dns@."
    s.label s.ops s.elapsed_ns s.scale s.seed s.kops s.fences_per_op
    s.flushes_per_op s.p50_ns s.p99_ns s.p999_ns;
  Profile.pp ppf s.profile;
  match s.slo with None -> () | Some r -> Slo.pp_report ppf r
