(** Benchmark snapshot: the headline numbers one [BENCH_<n>.json]
    carries (throughput, fence economy, latency tail), the per-site
    fence attribution table, and the SLO report if one was evaluated.

    Everything derives from simulated time, so a snapshot is exactly
    reproducible from its scale and seed — the CI perf gate compares
    snapshots at equal scale and flags drift beyond a tolerance as a
    code regression, not noise. *)

type t = {
  label : string;
  scale : float;
  seed : int;
  ops : int;
  elapsed_ns : int;
  kops : float;  (** ops per simulated millisecond *)
  fences_per_op : float;
  flushes_per_op : float;
  p50_ns : int;
  p99_ns : int;
  p999_ns : int;
  profile : Profile.t;
  slo : Slo.report option;
}

val make :
  label:string ->
  scale:float ->
  seed:int ->
  ops:int ->
  elapsed_ns:int ->
  latency:Ff_util.Histogram.t ->
  ?slo:Slo.report ->
  profile:Profile.t ->
  unit ->
  t

val to_json : t -> Ff_trace.Json.t
val of_json : Ff_trace.Json.t -> t
val save : t -> string -> unit
val load : string -> t
(** @raise Ff_trace.Json.Parse_error on malformed files. *)

val compare_headline : prev:t -> fresh:t -> tolerance:float -> string list
(** Gate check: empty means pass.  Fails on a kops drop or a
    fences/op rise beyond [tolerance] (fractional, e.g. 0.1), or on a
    scale mismatch (snapshots at different scales are incomparable). *)

val pp : Format.formatter -> t -> unit
