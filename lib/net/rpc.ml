module Prng = Ff_util.Prng

type ('req, 'resp) endpoint = {
  ep_node : int;
  mutable ep_up : bool;
  mutable ep_handler : 'req -> 'resp;
  ep_dedup : (int * int, 'resp) Hashtbl.t;
  mutable ep_served : int;
  mutable ep_deduped : int;
}

let endpoint ~node handler =
  {
    ep_node = node;
    ep_up = true;
    ep_handler = handler;
    ep_dedup = Hashtbl.create 64;
    ep_served = 0;
    ep_deduped = 0;
  }

let set_handler ep h = ep.ep_handler <- h
let node ep = ep.ep_node
let up ep = ep.ep_up

let set_up ep b =
  if b && not ep.ep_up then Hashtbl.reset ep.ep_dedup;
  ep.ep_up <- b

let served ep = ep.ep_served
let deduped ep = ep.ep_deduped

type error = Timeout

let serve ep ~src ~token req =
  match Hashtbl.find_opt ep.ep_dedup (src, token) with
  | Some r ->
      ep.ep_deduped <- ep.ep_deduped + 1;
      r
  | None ->
      let r = ep.ep_handler req in
      ep.ep_served <- ep.ep_served + 1;
      Hashtbl.replace ep.ep_dedup (src, token) r;
      r

let call ?(timeout_ns = 20_000) ?(retries = 4) ?(backoff_ns = 2_000) ~fabric
    ~rng ~src ~token ep req =
  let rec attempt n =
    if n > retries then Error Timeout
    else begin
      if n > 0 then begin
        (* Jittered exponential backoff: base << (n-1) plus a uniform
           draw of the same magnitude. *)
        let base = backoff_ns lsl (n - 1) in
        Fabric.charge fabric (base + Prng.int rng (max 1 base))
      end;
      let v = Fabric.transmit fabric ~src ~dst:ep.ep_node in
      match v.Fabric.v_deliveries with
      | [] ->
          Fabric.charge fabric timeout_ns;
          attempt (n + 1)
      | ds when not ep.ep_up ->
          (* The request reaches a dead host: same as a loss, but the
             delivery delay is still charged before the timeout. *)
          List.iter (fun _ -> ()) ds;
          Fabric.charge fabric timeout_ns;
          attempt (n + 1)
      | ds -> begin
          (* Deliver every copy: duplicates re-enter the endpoint and
             are answered from the idempotency cache. *)
          let resp =
            List.fold_left
              (fun _ d ->
                Fabric.charge fabric d;
                Some (serve ep ~src ~token req))
              None ds
          in
          match resp with
          | None -> assert false
          | Some r -> begin
              let rv = Fabric.transmit fabric ~src:ep.ep_node ~dst:src in
              match rv.Fabric.v_deliveries with
              | [] ->
                  (* Reply lost: the handler ran; the retry is served
                     from the cache without re-executing it. *)
                  Fabric.charge fabric timeout_ns;
                  attempt (n + 1)
              | d :: _ ->
                  Fabric.charge fabric d;
                  Ok r
            end
        end
    end
  in
  attempt 0
