(** Simulated message fabric with seeded fault injection.

    The fabric connects [endpoints] numbered [0 .. endpoints-1] (node
    replicas plus control-plane and client endpoints) on the simulated
    clock.  Every {!transmit} consults a deterministic fault model —
    drop, duplicate, delay with jitter, reorder (a late outlier
    delay), and pairwise partitions (one-shot or timed) — and returns
    a {e verdict}: the list of one-way delivery delays for each copy
    of the message that arrives ([[]] when the message is lost).  The
    caller charges those delays to the simulated clock; the fabric
    itself never blocks.

    Determinism: the PRNG draws per {!transmit} are fixed in number
    and order regardless of the outcome, so the same seed and the
    same call sequence replay to an identical verdict log — the
    property QCheck pins down in [test/test_cluster.ml], and what
    makes `repl` counterexamples replayable. *)

type faults = {
  drop_per_1k : int;  (** message loss probability (per mille) *)
  dup_per_1k : int;  (** duplicate-delivery probability (per mille) *)
  delay_ns : int;  (** base one-way delay *)
  jitter_ns : int;  (** uniform extra delay in [0, jitter_ns) *)
  reorder_per_1k : int;  (** probability of a late outlier (per mille) *)
  reorder_extra_ns : int;  (** extra delay a reordered message suffers *)
}

val default_faults : faults
(** A mildly hostile WAN: 2% drop, 1% duplicate, 1.5us +- 0.5us delay,
    3% reordered with a 4us outlier. *)

val calm : faults
(** No faults, fixed 1us delay — for overhead baselines. *)

type verdict = {
  v_seq : int;  (** transmit sequence number (fabric-global) *)
  v_src : int;
  v_dst : int;
  v_deliveries : int list;
      (** one-way delay of each delivered copy; [[]] = lost *)
  v_cut : bool;  (** lost to a partition (counted under drops too) *)
}

type t

val create : ?faults:faults -> seed:int -> endpoints:int -> unit -> t
val endpoints : t -> int

val now : t -> int
(** Simulated time: {!Ff_mcsim.Mcsim.sim_now} inside a simulation,
    otherwise the fabric's own virtual clock (advanced by {!charge}). *)

val charge : t -> int -> unit
(** Consume simulated nanoseconds: {!Ff_mcsim.Mcsim.charge} inside a
    simulation, otherwise the fabric's virtual clock. *)

val partition : t -> a:int -> b:int -> unit
(** Cut the [a]<->[b] link (both directions) until {!heal}. *)

val partition_for : t -> a:int -> b:int -> ns:int -> unit
(** Timed partition: the link heals itself once {!now} passes
    [now + ns]. *)

val heal : t -> unit
(** Lift every partition, timed or not. *)

val partitioned : t -> a:int -> b:int -> bool
(** Whether the [a]<->[b] link is currently cut. *)

val transmit : t -> src:int -> dst:int -> verdict
(** Ask the fault model about one message send.  Records the verdict
    in the log and bumps the counters; charges nothing. *)

val log : t -> verdict list
(** Every verdict since creation, in transmit order. *)

val sends : t -> int

val drops : t -> int
(** Messages lost (fault model and partitions combined). *)

val dups : t -> int
