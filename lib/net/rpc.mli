(** Request/response RPC over the {!Fabric} with timeouts, idempotency
    tokens and jittered exponential backoff.

    Calls are executed inline on the caller's simulated thread: the
    fabric decides delivery, the caller charges the delays, and the
    endpoint's handler runs synchronously.  A lost request or reply
    costs the caller [timeout_ns] and triggers a retry after a
    jittered exponential backoff.  Every call carries an idempotency
    token; the endpoint caches the response per [(caller, token)], so
    duplicate deliveries and retries of a request whose {e reply} was
    lost return the cached response instead of re-executing the
    handler — exactly-once effects over an at-least-once fabric. *)

type ('req, 'resp) endpoint

val endpoint : node:int -> ('req -> 'resp) -> ('req, 'resp) endpoint
(** An endpoint living at fabric address [node], initially up. *)

val set_handler : ('req, 'resp) endpoint -> ('req -> 'resp) -> unit
val node : ('req, 'resp) endpoint -> int

val up : ('req, 'resp) endpoint -> bool
val set_up : ('req, 'resp) endpoint -> bool -> unit
(** A down endpoint swallows requests (the caller sees timeouts).
    Bringing it back up clears the volatile dedup cache, as a restart
    would. *)

val served : ('req, 'resp) endpoint -> int
(** Handler executions (cache misses). *)

val deduped : ('req, 'resp) endpoint -> int
(** Duplicate deliveries answered from the idempotency cache. *)

type error = Timeout

val call :
  ?timeout_ns:int ->
  ?retries:int ->
  ?backoff_ns:int ->
  fabric:Fabric.t ->
  rng:Ff_util.Prng.t ->
  src:int ->
  token:int ->
  ('req, 'resp) endpoint ->
  'req ->
  ('resp, error) result
(** [call ep req] with up to [retries] (default 4) retransmissions.
    Each lost leg charges [timeout_ns] (default 20us); retry [n]
    first charges [backoff_ns lsl (n-1)] plus a uniform jitter of the
    same magnitude (default base 2us), drawn from [rng] — so
    concurrent callers do not retry in lockstep. *)
