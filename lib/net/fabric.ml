module Prng = Ff_util.Prng
module Mcsim = Ff_mcsim.Mcsim

type faults = {
  drop_per_1k : int;
  dup_per_1k : int;
  delay_ns : int;
  jitter_ns : int;
  reorder_per_1k : int;
  reorder_extra_ns : int;
}

let default_faults =
  {
    drop_per_1k = 20;
    dup_per_1k = 10;
    delay_ns = 1_500;
    jitter_ns = 500;
    reorder_per_1k = 30;
    reorder_extra_ns = 4_000;
  }

let calm =
  {
    drop_per_1k = 0;
    dup_per_1k = 0;
    delay_ns = 1_000;
    jitter_ns = 0;
    reorder_per_1k = 0;
    reorder_extra_ns = 0;
  }

type verdict = {
  v_seq : int;
  v_src : int;
  v_dst : int;
  v_deliveries : int list;
  v_cut : bool;
}

(* A pairwise cut; [cut_until < 0] means "until heal". *)
type cut = { cut_a : int; cut_b : int; cut_until : int }

type t = {
  n : int;
  faults : faults;
  rng : Prng.t;
  mutable seq : int;
  mutable cuts : cut list;
  mutable rlog : verdict list; (* newest first *)
  mutable sent : int;
  mutable dropped : int;
  mutable dupped : int;
  mutable vclock : int; (* fallback clock outside Mcsim *)
}

let create ?(faults = default_faults) ~seed ~endpoints () =
  if endpoints < 1 then invalid_arg "Fabric.create: endpoints < 1";
  {
    n = endpoints;
    faults;
    rng = Prng.create seed;
    seq = 0;
    cuts = [];
    rlog = [];
    sent = 0;
    dropped = 0;
    dupped = 0;
    vclock = 0;
  }

let endpoints t = t.n

let now t =
  match Mcsim.sim_now () with Some ns -> ns | None -> t.vclock

let charge t ns =
  if ns > 0 then
    match Mcsim.sim_now () with
    | Some _ -> Mcsim.charge ns
    | None -> t.vclock <- t.vclock + ns

let check_ep t e name =
  if e < 0 || e >= t.n then
    invalid_arg (Printf.sprintf "Fabric.%s: endpoint %d out of range" name e)

let partition t ~a ~b =
  check_ep t a "partition";
  check_ep t b "partition";
  t.cuts <- { cut_a = a; cut_b = b; cut_until = -1 } :: t.cuts

let partition_for t ~a ~b ~ns =
  check_ep t a "partition_for";
  check_ep t b "partition_for";
  t.cuts <- { cut_a = a; cut_b = b; cut_until = now t + ns } :: t.cuts

let heal t = t.cuts <- []

let cut_live t c = c.cut_until < 0 || now t < c.cut_until

let partitioned t ~a ~b =
  List.exists
    (fun c ->
      cut_live t c
      && ((c.cut_a = a && c.cut_b = b) || (c.cut_a = b && c.cut_b = a)))
    t.cuts

let transmit t ~src ~dst =
  check_ep t src "transmit";
  check_ep t dst "transmit";
  let f = t.faults in
  let seq = t.seq in
  t.seq <- seq + 1;
  t.sent <- t.sent + 1;
  (* Fixed number and order of PRNG draws per call, whatever the
     outcome: the fault plan is a pure function of (seed, call
     sequence) and replays identically. *)
  let r_drop = Prng.int t.rng 1000 in
  let r_dup = Prng.int t.rng 1000 in
  let r_reord = Prng.int t.rng 1000 in
  let j1 = if f.jitter_ns > 0 then Prng.int t.rng f.jitter_ns else 0 in
  let j2 = if f.jitter_ns > 0 then Prng.int t.rng f.jitter_ns else 0 in
  let cut = partitioned t ~a:src ~b:dst in
  let deliveries =
    if cut || r_drop < f.drop_per_1k then []
    else begin
      let d1 =
        f.delay_ns + j1
        + (if r_reord < f.reorder_per_1k then f.reorder_extra_ns else 0)
      in
      if r_dup < f.dup_per_1k then [ d1; f.delay_ns + j2 ] else [ d1 ]
    end
  in
  if deliveries = [] then t.dropped <- t.dropped + 1;
  if List.length deliveries > 1 then t.dupped <- t.dupped + 1;
  let v = { v_seq = seq; v_src = src; v_dst = dst; v_deliveries = deliveries;
            v_cut = cut } in
  t.rlog <- v :: t.rlog;
  v

let log t = List.rev t.rlog
let sends t = t.sent
let drops t = t.dropped
let dups t = t.dupped
