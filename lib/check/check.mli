(** The model checker: systematic schedule exploration, WGL
    linearizability checking, and a crash x schedule product engine
    with replayable counterexamples.

    Three engines compose over the pieces the repo already has:

    - {b Schedule explorer}: runs a deterministic workload (generated
      from a seed) on {!Ff_mcsim.Mcsim} with [cores = 1] and
      [quantum_ns = 1], so every PM access is a preemption point and a
      {!Ff_mcsim.Mcsim.Choose} policy's decision sequence is a total
      order.  Exploration is either bounded-exhaustive DFS over the
      decision tree or PCT-style randomized priority sampling
      ({!Schedule}).

    - {b Linearizability}: every explored schedule records per-thread
      invocation/response histories, checked WGL-style against the
      sequential {!Model} oracle and the observed final state
      ({!Linearize}).

    - {b Crash product}: for every fence of an explored schedule, the
      run is replayed decision-for-decision up to that store count,
      the arena is crashed through each {!Ff_pmem.Storelog.crash_mode}
      (exhaustive per-epoch [Non_tso_cutoff] sweeps under non-TSO),
      and the result is validated for pre-recovery reader tolerance
      (lock-free readers must not fabricate bindings or raise) and
      durable linearizability (completed ops must survive recovery;
      in-flight ops may).

    Every violation carries a {!Counterexample} artifact that
    {!replay} (and [ffcli check --replay]) re-executes
    deterministically.

    {b Soundness caveats}: exploration is bounded (a pass is evidence,
    not proof, unless [exhausted] is reported); crash modes are gated
    on the arena's memory-order model; histories are capped at
    {!Linearize.max_ops} operations. *)

type explorer = Dfs | Pct

type config = {
  writers : int;          (** concurrent writer threads (default 2) *)
  readers : int;          (** concurrent reader threads (default 1) *)
  ops_per_thread : int;   (** script length per thread (default 2) *)
  keyspace : int;         (** keys drawn from [1..keyspace] (default 8) *)
  prefill : int;          (** keys inserted before the concurrent phase *)
  seed : int;             (** workload + exploration seed *)
  explorer : explorer;    (** default [Pct]; [Dfs] for tiny workloads *)
  schedules : int;        (** exploration budget (default 16) *)
  crashes : bool;         (** run the crash product engine (default true) *)
  max_crash_points : int; (** fence points sampled per schedule *)
  crash_budget : int;     (** global cap on crash executions *)
  non_tso : bool;         (** run under [Non_tso] memory order and sweep
                              per-epoch cutoffs exhaustively *)
  elide_flush : bool;     (** fault injection: drop every flush during
                              the concurrent phase (test-only mutant) *)
  node_bytes : int option;
}

val default : config

type kind = Linearizability | Tolerance | Durability

val kind_to_string : kind -> string

type violation = {
  kind : kind;
  detail : string;
  counterexample : Counterexample.t;
}

type report = {
  index : string;
  schedules_run : int;
  exhausted : bool;       (** DFS covered the entire decision tree *)
  crash_runs : int;       (** crash executions performed *)
  ops_checked : int;      (** history operations across all schedules *)
  violations : violation list;
  skipped : string option;  (** reason when the index is not checkable *)
  crash_note : string option;
      (** why the crash engine was skipped or truncated, if it was *)
}

val checkable : Ff_index.Descriptor.t -> config -> string option
(** [None] when the descriptor supports concurrent checking under this
    config (Sim lock mode, or lock-free reads with at most one
    writer); [Some reason] otherwise. *)

val run : ?config:config -> ?tracer:Ff_trace.Trace.t -> string -> report
(** [run name] checks the registry index [name].  Never raises on an
    uncheckable index — returns a [skipped] report.  The optional
    tracer receives one ["check.schedule"] span per explored schedule
    and a ["check.crash_point"] instant per crash execution.
    @raise Invalid_argument on an unknown registry name. *)

val replay : ?tracer:Ff_trace.Trace.t -> Counterexample.t -> report
(** Re-execute exactly one recorded schedule (and crash, if any).  A
    faithful counterexample yields the same violation(s); an empty
    [violations] list means the artifact did not reproduce. *)

val config_of_counterexample : Counterexample.t -> config

val report_summary : report -> string
(** One-line human-readable summary. *)
