type call = {
  opid : int;
  tid : int;
  op : Model.op;
  mutable inv : int;
  mutable resp : Model.resp option;
  mutable ret : int;
}

let make_call ~opid ~tid op = { opid; tid; op; inv = -1; resp = None; ret = max_int }

let pp_call c =
  Printf.sprintf "  t%d #%d %s -> %s [%d,%s]" c.tid c.opid (Model.op_to_string c.op)
    (match c.resp with None -> "pending" | Some r -> Model.resp_to_string r)
    c.inv
    (if c.ret = max_int then "crash" else string_of_int c.ret)

let pp_history calls =
  let by_inv = Array.copy calls in
  Array.sort (fun a b -> compare a.inv b.inv) by_inv;
  String.concat "\n" (Array.to_list (Array.map pp_call by_inv))

let max_ops = 62

exception Linearized

(* WGL (Wing & Gong) search: repeatedly pick a minimal operation — one
   invoked before every response still outstanding — apply it to the
   model, and require the model's response to match the observed one.
   States are memoized on (remaining-ops bitmask, model bindings) so
   schedules whose interleavings commute are explored once.

   Pending operations (invoked, no response — the thread was running
   when the power failed) may linearize or not, which is exactly the
   durable-linearizability rule: completed operations must take
   effect, in-flight ones are free to.  When [final] is given, a
   terminal state additionally must reproduce it — the post-recovery
   dump must be explained by the completed ops plus some subset of the
   in-flight ones. *)
let check ?(initial = []) ?final calls =
  let n = Array.length calls in
  if n > max_ops then
    invalid_arg
      (Printf.sprintf "Linearize.check: %d ops > %d (history too long)" n max_ops);
  let completed_mask = ref 0 in
  Array.iteri (fun i c -> if c.resp <> None then completed_mask := !completed_mask lor (1 lsl i)) calls;
  let completed_mask = !completed_mask in
  let memo = Hashtbl.create 1024 in
  let rec go mask model =
    let bindings = Model.bindings model in
    let key = (mask, bindings) in
    if not (Hashtbl.mem memo key) then begin
      Hashtbl.add memo key ();
      if
        mask land completed_mask = 0
        && (match final with None -> true | Some f -> bindings = f)
      then raise Linearized;
      (* earliest response among ops not yet linearized *)
      let min_ret = ref max_int in
      for i = 0 to n - 1 do
        if mask land (1 lsl i) <> 0 && calls.(i).ret < !min_ret then
          min_ret := calls.(i).ret
      done;
      for i = 0 to n - 1 do
        if mask land (1 lsl i) <> 0 && calls.(i).inv < !min_ret then begin
          let c = calls.(i) in
          let m' = Model.copy model in
          let r = Model.apply m' c.op in
          match c.resp with
          | Some observed when observed <> r -> () (* spec contradicts observation *)
          | _ -> go (mask land lnot (1 lsl i)) m'
        end
      done
    end
  in
  try
    go ((1 lsl n) - 1) (Model.create ~initial ());
    let reason =
      match final with
      | None -> "no linearization of the history exists"
      | Some f ->
          Printf.sprintf
            "no linearization of the completed ops (plus any subset of in-flight \
             ops) reproduces the observed final state [%s]"
            (String.concat "; "
               (List.map (fun (k, v) -> Printf.sprintf "%d->%d" k v) f))
    in
    Error (Printf.sprintf "%s\nhistory (by invocation):\n%s" reason (pp_history calls))
  with Linearized -> Ok ()
