module Json = Ff_trace.Json

type workload = {
  writers : int;
  readers : int;
  ops_per_thread : int;
  keyspace : int;
  prefill : int;
  seed : int;
  non_tso : bool;
  elide_flush : bool;
}

type crash = {
  store_count : int;
  mode : string;
  crash_seed : int;
  cutoff : int option;
}

type tx_info = {
  path : string; (* "logged" | "shadow" *)
  torn : bool;
  txns : int;
}

type snap_info = {
  mutant : bool; (* read-latest mutant armed *)
  rounds : int;
}

type rebal_info = {
  rb_kind : string; (* "split" | "merge" | "migrate" *)
  rb_mutant : bool; (* drop-delta mutant armed *)
  rb_shards : int;  (* shard count before the rebalance *)
  rb_arena : int;   (* crash-plan arena: 0 = source, 1 = migrate dst *)
}

type repl_info = {
  rp_mutant : bool;    (* ack-before-replicate mutant armed *)
  rp_nodes : int;      (* cluster node count *)
  rp_shards : int;     (* shards per node ensemble *)
  rp_fault_seed : int; (* fabric fault-plan seed *)
  rp_kill_at : int;    (* kill primary after this many acks; -1 = never *)
  rp_partition : bool; (* partition primary/backup before the kill *)
  rp_recovery : string; (* "failover" | "restart" | "restart_refail" *)
}

type t = {
  index : string;
  node_bytes : int option;
  kind : string;
  workload : workload;
  tx : tx_info option;
  snap : snap_info option;
  rebal : rebal_info option;
  repl : repl_info option;
  decisions : int array;
  crash : crash option;
  detail : string;
}

let version = 1

let to_json t =
  let w = t.workload in
  Json.to_string
    (Json.Obj
       [
         ("version", Json.Int version);
         ("index", Json.Str t.index);
         ( "node_bytes",
           match t.node_bytes with None -> Json.Null | Some n -> Json.Int n );
         ("kind", Json.Str t.kind);
         ( "workload",
           Json.Obj
             [
               ("writers", Json.Int w.writers);
               ("readers", Json.Int w.readers);
               ("ops_per_thread", Json.Int w.ops_per_thread);
               ("keyspace", Json.Int w.keyspace);
               ("prefill", Json.Int w.prefill);
               ("seed", Json.Int w.seed);
               ("non_tso", Json.Bool w.non_tso);
               ("elide_flush", Json.Bool w.elide_flush);
             ] );
         ( "tx",
           match t.tx with
           | None -> Json.Null
           | Some x ->
               Json.Obj
                 [
                   ("path", Json.Str x.path);
                   ("torn", Json.Bool x.torn);
                   ("txns", Json.Int x.txns);
                 ] );
         ( "snap",
           match t.snap with
           | None -> Json.Null
           | Some s ->
               Json.Obj
                 [
                   ("mutant", Json.Bool s.mutant);
                   ("rounds", Json.Int s.rounds);
                 ] );
         ( "rebal",
           match t.rebal with
           | None -> Json.Null
           | Some r ->
               Json.Obj
                 [
                   ("rb_kind", Json.Str r.rb_kind);
                   ("rb_mutant", Json.Bool r.rb_mutant);
                   ("rb_shards", Json.Int r.rb_shards);
                   ("rb_arena", Json.Int r.rb_arena);
                 ] );
         ( "repl",
           match t.repl with
           | None -> Json.Null
           | Some r ->
               Json.Obj
                 [
                   ("rp_mutant", Json.Bool r.rp_mutant);
                   ("rp_nodes", Json.Int r.rp_nodes);
                   ("rp_shards", Json.Int r.rp_shards);
                   ("rp_fault_seed", Json.Int r.rp_fault_seed);
                   ("rp_kill_at", Json.Int r.rp_kill_at);
                   ("rp_partition", Json.Bool r.rp_partition);
                   ("rp_recovery", Json.Str r.rp_recovery);
                 ] );
         ( "decisions",
           Json.Arr (Array.to_list (Array.map (fun d -> Json.Int d) t.decisions)) );
         ( "crash",
           match t.crash with
           | None -> Json.Null
           | Some c ->
               Json.Obj
                 [
                   ("store_count", Json.Int c.store_count);
                   ("mode", Json.Str c.mode);
                   ("seed", Json.Int c.crash_seed);
                   ( "cutoff",
                     match c.cutoff with None -> Json.Null | Some e -> Json.Int e );
                 ] );
         ("detail", Json.Str t.detail);
       ])

let field name conv j =
  match Json.member name j with
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "counterexample: bad field %S" name))
  | None -> Error (Printf.sprintf "counterexample: missing field %S" name)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let of_json s =
  match Json.of_string s with
  | exception Json.Parse_error m -> Error ("counterexample: " ^ m)
  | j ->
      let* v = field "version" Json.to_int j in
      if v <> version then
        Error (Printf.sprintf "counterexample: unsupported version %d" v)
      else
        let* index = field "index" Json.to_str j in
        let node_bytes =
          match Json.member "node_bytes" j with
          | Some (Json.Int n) -> Some n
          | _ -> None
        in
        let* kind = field "kind" Json.to_str j in
        let* wj = field "workload" Option.some j in
        let* writers = field "writers" Json.to_int wj in
        let* readers = field "readers" Json.to_int wj in
        let* ops_per_thread = field "ops_per_thread" Json.to_int wj in
        let* keyspace = field "keyspace" Json.to_int wj in
        let* prefill = field "prefill" Json.to_int wj in
        let* seed = field "seed" Json.to_int wj in
        let bool_field name =
          match Json.member name wj with Some (Json.Bool b) -> b | _ -> false
        in
        let non_tso = bool_field "non_tso" in
        let elide_flush = bool_field "elide_flush" in
        (* Optional transaction extension (absent in pre-tx artifacts;
           tolerant parse keeps the version at 1). *)
        let* tx =
          match Json.member "tx" j with
          | None | Some Json.Null -> Ok None
          | Some xj ->
              let* path = field "path" Json.to_str xj in
              let* txns = field "txns" Json.to_int xj in
              let torn =
                match Json.member "torn" xj with
                | Some (Json.Bool b) -> b
                | _ -> false
              in
              Ok (Some { path; torn; txns })
        in
        (* Optional snapshot extension (same tolerant-parse convention
           as [tx]; version stays 1). *)
        let* snap =
          match Json.member "snap" j with
          | None | Some Json.Null -> Ok None
          | Some sj ->
              let* rounds = field "rounds" Json.to_int sj in
              let mutant =
                match Json.member "mutant" sj with
                | Some (Json.Bool b) -> b
                | _ -> false
              in
              Ok (Some { mutant; rounds })
        in
        (* Optional rebalance extension (same tolerant-parse
           convention; version stays 1). *)
        let* rebal =
          match Json.member "rebal" j with
          | None | Some Json.Null -> Ok None
          | Some rj ->
              let* rb_kind = field "rb_kind" Json.to_str rj in
              let* rb_shards = field "rb_shards" Json.to_int rj in
              let rb_mutant =
                match Json.member "rb_mutant" rj with
                | Some (Json.Bool b) -> b
                | _ -> false
              in
              let rb_arena =
                match Json.member "rb_arena" rj with
                | Some (Json.Int a) -> a
                | _ -> 0
              in
              Ok (Some { rb_kind; rb_mutant; rb_shards; rb_arena })
        in
        (* Optional replication extension (same tolerant-parse
           convention; version stays 1). *)
        let* repl =
          match Json.member "repl" j with
          | None | Some Json.Null -> Ok None
          | Some rj ->
              let* rp_nodes = field "rp_nodes" Json.to_int rj in
              let* rp_shards = field "rp_shards" Json.to_int rj in
              let* rp_fault_seed = field "rp_fault_seed" Json.to_int rj in
              let rp_mutant =
                match Json.member "rp_mutant" rj with
                | Some (Json.Bool b) -> b
                | _ -> false
              in
              let rp_kill_at =
                match Json.member "rp_kill_at" rj with
                | Some (Json.Int k) -> k
                | _ -> -1
              in
              let rp_partition =
                match Json.member "rp_partition" rj with
                | Some (Json.Bool b) -> b
                | _ -> false
              in
              let rp_recovery =
                match Json.member "rp_recovery" rj with
                | Some (Json.Str s) -> s
                | _ -> "failover"
              in
              Ok
                (Some
                   {
                     rp_mutant;
                     rp_nodes;
                     rp_shards;
                     rp_fault_seed;
                     rp_kill_at;
                     rp_partition;
                     rp_recovery;
                   })
        in
        let* decisions = field "decisions" Json.to_list j in
        let* decisions =
          try
            Ok
              (Array.of_list
                 (List.map
                    (fun d ->
                      match Json.to_int d with
                      | Some i -> i
                      | None -> failwith "non-int decision")
                    decisions))
          with Failure m -> Error ("counterexample: " ^ m)
        in
        let* crash =
          match Json.member "crash" j with
          | None | Some Json.Null -> Ok None
          | Some cj ->
              let* store_count = field "store_count" Json.to_int cj in
              let* mode = field "mode" Json.to_str cj in
              let* crash_seed = field "seed" Json.to_int cj in
              let cutoff =
                match Json.member "cutoff" cj with
                | Some (Json.Int e) -> Some e
                | _ -> None
              in
              Ok (Some { store_count; mode; crash_seed; cutoff })
        in
        let* detail = field "detail" Json.to_str j in
        Ok
          {
            index;
            node_bytes;
            kind;
            workload =
              {
                writers;
                readers;
                ops_per_thread;
                keyspace;
                prefill;
                seed;
                non_tso;
                elide_flush;
              };
            tx;
            snap;
            rebal;
            repl;
            decisions;
            crash;
            detail;
          }

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json t);
      output_char oc '\n')

let load path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
      let s =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      of_json s
