(** WGL-style linearizability checking over invocation/response
    histories.

    A history is an array of {!call}s stamped with a global counter:
    [inv] when the operation was invoked, [ret] when its response was
    observed ([max_int] while pending — i.e. in flight when a crash
    cut the schedule short).  The checker searches for a total order
    that (1) respects real time — an op can only linearize before
    another if it was invoked before that other's response — and (2)
    agrees with the sequential {!Model} on every observed response.
    Memoization on (remaining-set, model-state) keeps the search
    polynomial on commuting histories. *)

type call = {
  opid : int;
  tid : int;
  op : Model.op;
  mutable inv : int;   (** global stamp at invocation; -1 = never ran *)
  mutable resp : Model.resp option;  (** [None] = pending at crash *)
  mutable ret : int;   (** global stamp at response; [max_int] = pending *)
}

val make_call : opid:int -> tid:int -> Model.op -> call

val max_ops : int
(** History length limit (62: remaining ops are a bitmask in one
    OCaml int). *)

val check :
  ?initial:(int * int) list ->
  ?final:(int * int) list ->
  call array ->
  (unit, string) result
(** [check ~initial history] — [Ok ()] iff the history is
    linearizable against {!Model} started from [initial].

    With [~final] this is the {e durable} variant: completed ops must
    linearize, pending ops may linearize or vanish, and the resulting
    model state must equal [final] (the post-recovery dump).  [Error]
    carries a human-readable explanation including the history.
    @raise Invalid_argument when the history exceeds {!max_ops}. *)

val pp_history : call array -> string
