module Mcsim = Ff_mcsim.Mcsim
module Prng = Ff_util.Prng

type decision = { arity : int; choice : int }

type recorder = { mutable rev : decision list; mutable count : int }

let recorder () = { rev = []; count = 0 }
let decisions r = Array.of_list (List.rev r.rev)
let choices r = Array.map (fun d -> d.choice) (decisions r)

let chooser_of_policy = function
  | Mcsim.Fifo -> fun _ -> 0
  | Mcsim.Random rng -> fun tids -> Prng.int rng (Array.length tids)
  | Mcsim.Choose f -> f

(* A policy that replays [prefix] decision-for-decision, falls back to
   [fallback] past the end, records everything it does, and clamps
   out-of-range prefix entries (a replay against a diverged execution
   cannot index past the runnable set; divergence is then visible as a
   mismatched recording rather than a crash of the checker itself). *)
let record_policy ?(prefix = [||]) ~fallback r =
  let fallback = chooser_of_policy fallback in
  Mcsim.Choose
    (fun tids ->
      let arity = Array.length tids in
      let pos = r.count in
      let choice =
        if pos < Array.length prefix then min prefix.(pos) (arity - 1)
        else fallback tids
      in
      let choice = if choice < 0 then 0 else choice in
      r.rev <- { arity; choice } :: r.rev;
      r.count <- r.count + 1;
      choice)

type 'a exploration = { results : 'a list; schedules : int; exhausted : bool }

(* Stateless bounded-exhaustive DFS: re-execute from scratch with a
   decision prefix, let the fallback (first runnable) extend it, then
   backtrack on the deepest decision that still has an untried
   alternative.  With a deterministic simulator the prefix uniquely
   determines the execution, so no state is saved between schedules.
   [max_schedules] bounds the walk; [exhausted] reports whether the
   full (depth-unbounded) tree was covered within the budget. *)
let dfs ~max_schedules run =
  let results = ref [] in
  let schedules = ref 0 in
  let exhausted = ref false in
  let prefix = ref [||] in
  let continue = ref true in
  while !continue && !schedules < max_schedules do
    incr schedules;
    let decisions, result = run ~prefix:!prefix in
    results := result :: !results;
    let pos = ref (Array.length decisions - 1) in
    while !pos >= 0 && decisions.(!pos).choice + 1 >= decisions.(!pos).arity do
      decr pos
    done;
    if !pos < 0 then begin
      continue := false;
      exhausted := true
    end
    else begin
      let p = Array.init (!pos + 1) (fun i -> decisions.(i).choice) in
      p.(!pos) <- p.(!pos) + 1;
      prefix := p
    end
  done;
  { results = List.rev !results; schedules = !schedules; exhausted = !exhausted }

(* PCT sampling: one run per derived seed.  Never exhaustive. *)
let pct ~schedules ~seed run =
  let results = ref [] in
  for i = 0 to schedules - 1 do
    let policy = Mcsim.pct_policy ~seed:(seed + i) () in
    results := run ~policy :: !results
  done;
  { results = List.rev !results; schedules; exhausted = false }
