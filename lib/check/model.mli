(** Sequential specification of the uniform {!Ff_index.Intf.ops}
    contract — the oracle every explored schedule is linearized
    against.

    [insert] is insert-or-update, [delete] reports presence, [search]
    returns the current binding: exactly the semantics the registry's
    structures implement. *)

type op = Insert of int * int | Delete of int | Search of int
type resp = Done | Deleted of bool | Found of int option

type t
(** Mutable map state. *)

val create : ?initial:(int * int) list -> unit -> t
val copy : t -> t

val apply : t -> op -> resp
(** Apply one operation sequentially and return its specified
    response. *)

val bindings : t -> (int * int) list
(** Sorted (key, value) list — the canonical state used both as the
    memoization key of the linearizability search and to compare
    against a post-recovery dump. *)

val op_to_string : op -> string
val resp_to_string : resp -> string
