(** Controlled-schedule exploration over {!Ff_mcsim.Mcsim}.

    Everything in the simulator is deterministic except which runnable
    thread runs next, so a schedule {e is} its sequence of scheduling
    choices.  This module records those choices during a run, replays
    a recorded sequence decision-for-decision, and drives two
    exploration strategies over the decision tree: bounded-exhaustive
    DFS (small thread counts) and PCT-style randomized priority
    sampling (everything else). *)

type decision = { arity : int; choice : int }
(** One scheduling decision: [arity] runnable threads, index [choice]
    was picked. *)

type recorder

val recorder : unit -> recorder
val decisions : recorder -> decision array
val choices : recorder -> int array
(** Just the chosen indices — what a counterexample artifact stores. *)

val chooser_of_policy : Ff_mcsim.Mcsim.policy -> int array -> int

val record_policy :
  ?prefix:int array ->
  fallback:Ff_mcsim.Mcsim.policy ->
  recorder ->
  Ff_mcsim.Mcsim.policy
(** A policy that plays [prefix] first (clamped to the runnable
    count), then delegates to [fallback], recording every decision
    into the recorder.  Replaying the same prefix over the same
    deterministic workload reproduces the execution exactly. *)

type 'a exploration = {
  results : 'a list;
  schedules : int;   (** schedules actually executed *)
  exhausted : bool;  (** DFS covered the whole decision tree *)
}

val dfs :
  max_schedules:int ->
  (prefix:int array -> decision array * 'a) ->
  'a exploration
(** Stateless bounded-exhaustive DFS.  [run ~prefix] must re-execute
    the workload from scratch following [prefix] (extending with its
    own default) and return the full decision trace plus a result. *)

val pct :
  schedules:int ->
  seed:int ->
  (policy:Ff_mcsim.Mcsim.policy -> 'a) ->
  'a exploration
(** One run per seed in [seed .. seed+schedules-1], each under a fresh
    {!Ff_mcsim.Mcsim.pct_policy}. *)
