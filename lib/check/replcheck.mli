(** Replication checker: no lost acknowledged writes across the
    network-fault x node-crash x failover product
    ({!Ff_cluster.Cluster}).

    Each scenario drives a deterministic client script (puts, deletes
    and interleaved reads derived from the workload seed) against a
    simulated cluster whose fabric injects seeded faults.  The
    scenario product varies the fabric fault seed, the kill point
    (primary of the hot shard power-failed after [k] acknowledged
    writes, with the crash mode alternating between [Keep_all] and
    [Keep_none]), and whether a primary/backup partition precedes the
    kill.  After the kill the script keeps writing through the
    failover; the run then heals, restarts the dead node (segment
    resync) and audits.

    Two oracles:

    - {b no lost acks} (durability): every key's last {e acknowledged}
      value must read back after the dust settles.  Writes that
      errored or timed out are indeterminate — the ack may have been
      lost in flight — so any such later attempt on the key is also
      accepted, but nothing older than the last ack is.
    - {b no stale reads} (linearizability): a successful read, at any
      point in the run, must return the last acknowledged value or an
      indeterminate later attempt — never an earlier state.

    [mutant] arms {!Ff_cluster.Cluster.mutant_ack_before_replicate}
    (the primary acks before the backup is durable).  A mutant run
    under partition + kill must produce lost-ack violations; each
    counterexample carries the [repl] extension so
    [ffcli check --replay] re-executes it deterministically. *)

type config = {
  nodes : int;  (** cluster nodes (default 3) *)
  shards : int;  (** logical shards (default 2) *)
  ops : int;  (** client script length per scenario (default 60) *)
  keyspace : int;
  seed : int;  (** workload seed (scripts and scenario derivation) *)
  mutant : bool;  (** arm the ack-before-replicate mutant *)
  faulty_fabric : bool;  (** inject fabric faults (default true) *)
  schedules : int;  (** scenario budget (default 12) *)
  node_bytes : int option;
}

val default : config

val checkable : Ff_index.Descriptor.t -> config -> string option
(** [None] when the descriptor can host a replicated ensemble:
    persistent with recovery (replicas crash and resync). *)

val run : ?config:config -> ?tracer:Ff_trace.Trace.t -> string -> Check.report
(** [run name] checks a cluster over the registry index [name] and
    returns a {!Check.report}.  Counterexamples carry
    [Counterexample.repl = Some _]. *)

val replay : ?tracer:Ff_trace.Trace.t -> Counterexample.t -> Check.report
(** Re-execute one recorded replication counterexample (the artifact
    must carry the [repl] extension).
    @raise Invalid_argument if [cx.repl = None]. *)

val config_of_counterexample : Counterexample.t -> config
(** @raise Invalid_argument if [cx.repl = None]. *)
