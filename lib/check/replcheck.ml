module Trace = Ff_trace.Trace
module D = Ff_index.Descriptor
module Registry = Ff_index.Registry
module Prng = Ff_util.Prng
module Storelog = Ff_pmem.Storelog
module Cluster = Ff_cluster.Cluster
module Fabric = Ff_net.Fabric
module Cx = Counterexample

type config = {
  nodes : int;
  shards : int;
  ops : int;
  keyspace : int;
  seed : int;
  mutant : bool;
  faulty_fabric : bool;
  schedules : int;
  node_bytes : int option;
}

let default =
  {
    nodes = 3;
    shards = 2;
    ops = 60;
    keyspace = 12;
    seed = 42;
    mutant = false;
    faulty_fabric = true;
    schedules = 12;
    node_bytes = None;
  }

let checkable d cfg =
  let c = d.D.caps in
  if not (c.D.is_persistent && c.D.has_recovery) then
    Some "not replication-checkable: volatile or no recovery"
  else if cfg.nodes < 2 then Some "need at least 2 nodes"
  else if cfg.ops < 1 || cfg.keyspace < 2 then
    Some "need at least 1 op and keyspace >= 2"
  else None

(* ------------------------------------------------------------------ *)
(* Deterministic client script                                         *)
(* ------------------------------------------------------------------ *)

type sop = S_put of int * int | S_del of int | S_get of int

(* Values are the script position + 1, so per-key values are strictly
   increasing and a stale read is detectable by inequality alone. *)
let gen_script cfg =
  let rng = Prng.create (cfg.seed * 31 + 17) in
  Array.init cfg.ops (fun j ->
      let k = 1 + Prng.int rng cfg.keyspace in
      match Prng.int rng 10 with
      | 0 | 1 -> S_get k
      | 2 -> S_del k
      | _ -> S_put (k, j + 1))

(* ------------------------------------------------------------------ *)
(* Oracle state                                                        *)
(* ------------------------------------------------------------------ *)

(* [acked] is the last acknowledged binding per key.  [pending] holds
   the bindings attempted since that ack whose outcome is
   indeterminate (the op errored or timed out, but the mutation — or
   just its ack — may have been lost in flight). *)
type oracle = {
  acked : (int, int option) Hashtbl.t;
  pending : (int, int option list) Hashtbl.t;
}

let oracle_create () = { acked = Hashtbl.create 64; pending = Hashtbl.create 64 }

let oracle_ack o k v =
  Hashtbl.replace o.acked k v;
  Hashtbl.remove o.pending k

let oracle_attempt o k v =
  let prev = Option.value ~default:[] (Hashtbl.find_opt o.pending k) in
  Hashtbl.replace o.pending k (v :: prev)

let oracle_allowed o k v =
  let pend = Option.value ~default:[] (Hashtbl.find_opt o.pending k) in
  match Hashtbl.find_opt o.acked k with
  | Some a -> v = a || List.mem v pend
  | None -> v = None || List.mem v pend

let describe_binding = function
  | None -> "absent"
  | Some v -> string_of_int v

let expectation o k =
  match (Hashtbl.find_opt o.acked k, Hashtbl.find_opt o.pending k) with
  | Some a, _ -> Printf.sprintf "last ack %s" (describe_binding a)
  | None, Some _ -> "never acked (attempts pending)"
  | None, None -> "never written"

(* ------------------------------------------------------------------ *)
(* Counterexamples and reports                                         *)
(* ------------------------------------------------------------------ *)

let mode_to_string = function
  | Storelog.Keep_none -> "keep_none"
  | Storelog.Keep_all -> "keep_all"
  | _ -> "keep_all"

let mode_of_string = function
  | "keep_none" -> Storelog.Keep_none
  | _ -> Storelog.Keep_all

(* What follows the kill.  [Failover] promotes the backup and the
   victim rejoins as a backup at settle; [Restart] brings the victim
   straight back while it is still the route primary (no failover at
   all); [Restart_refail] does that and then kills the primary a
   second time later in the script, failing over for real, so the
   audit reads from the backup the post-restart acks had to reach. *)
type recovery = Failover | Restart | Restart_refail

let recovery_to_string = function
  | Failover -> "failover"
  | Restart -> "restart"
  | Restart_refail -> "restart_refail"

let recovery_of_string = function
  | "restart" -> Restart
  | "restart_refail" -> Restart_refail
  | _ -> Failover

let mk_cx cfg ~name ~kind ~fault_seed ~kill_at ~recovery ~partition ~mode
    ~detail =
  {
    Cx.index = name;
    node_bytes = cfg.node_bytes;
    kind = Check.kind_to_string kind;
    workload =
      {
        writers = 1;
        readers = 0;
        ops_per_thread = cfg.ops;
        keyspace = cfg.keyspace;
        prefill = 0;
        seed = cfg.seed;
        non_tso = false;
        elide_flush = false;
      };
    tx = None;
    snap = None;
    rebal = None;
    repl =
      Some
        {
          Cx.rp_mutant = cfg.mutant;
          rp_nodes = cfg.nodes;
          rp_shards = cfg.shards;
          rp_fault_seed = fault_seed;
          rp_kill_at = kill_at;
          rp_partition = partition;
          rp_recovery = recovery_to_string recovery;
        };
    decisions = [||];
    crash =
      (if kill_at < 0 then None
       else
         Some
           {
             Cx.store_count = kill_at;
             mode = mode_to_string mode;
             crash_seed = fault_seed;
             cutoff = None;
           });
    detail;
  }

let empty_report index =
  {
    Check.index;
    schedules_run = 0;
    exhausted = false;
    crash_runs = 0;
    ops_checked = 0;
    violations = [];
    skipped = None;
    crash_note = None;
  }

let with_mutant armed f =
  let prev = !Cluster.mutant_ack_before_replicate in
  Cluster.mutant_ack_before_replicate := armed;
  Fun.protect
    ~finally:(fun () -> Cluster.mutant_ack_before_replicate := prev)
    f

(* ------------------------------------------------------------------ *)
(* One scenario                                                        *)
(* ------------------------------------------------------------------ *)

(* Drive the script against a fresh cluster; kill the hot shard's
   primary after [kill_at] acks (optionally partitioning it from its
   backup a few ops earlier), recover per [recovery] — fail over, or
   restart the victim in place with no failover, or restart in place
   and fail over on a second kill — finish the script, then heal,
   restart any dead node and audit every key. *)
let run_scenario cfg ~tracer ~name ~fault_seed ~kill_at ~recovery ~partition
    ~mode =
  let script = gen_script cfg in
  let ccfg =
    {
      Cluster.default with
      nodes = cfg.nodes;
      shards = cfg.shards;
      inner = name;
      words = 1 lsl 14;
      seed = fault_seed;
      faults = (if cfg.faulty_fabric then Fabric.default_faults else Fabric.calm);
    }
  in
  let cl = Cluster.create ~tracer ccfg in
  let o = oracle_create () in
  let violations = ref [] in
  let crash_runs = ref 0 in
  let killed = ref (-1) in
  let acks = ref 0 in
  let hot = 0 in
  let add kind detail =
    violations :=
      {
        Check.kind;
        detail;
        counterexample =
          mk_cx cfg ~name ~kind ~fault_seed ~kill_at ~recovery ~partition
            ~mode ~detail;
      }
      :: !violations
  in
  let scen_tag =
    Printf.sprintf
      "[fault_seed=%d kill_at=%d recovery=%s partition=%b mode=%s]" fault_seed
      kill_at
      (recovery_to_string recovery)
      partition (mode_to_string mode)
  in
  let check_read ~where k = function
    | Error _ -> ()
    | Ok v ->
        if not (oracle_allowed o k v) then
          add Check.Linearizability
            (Printf.sprintf "stale read (%s): key %d returned %s, expected %s %s"
               where k (describe_binding v) (expectation o k) scen_tag)
  in
  (* The partition opens a few acks before the kill, so a primary
     that acks unreplicated writes (the mutant) has a window to do
     damage before it dies. *)
  let part_at =
    if partition && kill_at >= 0 then max 0 (kill_at - 6) else max_int
  in
  let partitioned = ref false in
  let maybe_partition () =
    if (not !partitioned) && !killed < 0 && !acks >= part_at then begin
      Cluster.partition cl
        ~a:(Cluster.primary_of cl ~shard:hot)
        ~b:(Cluster.backup_of cl ~shard:hot);
      partitioned := true
    end
  in
  let dead = ref (-1) in
  let promote_away victim =
    (* The detector's action, taken deterministically: promote the
       backup of every shard the victim led. *)
    for s = 0 to cfg.shards - 1 do
      if Cluster.primary_of cl ~shard:s = victim then
        ignore (Cluster.failover cl ~shard:s)
    done
  in
  let maybe_kill () =
    if !killed < 0 && kill_at >= 0 && !acks >= kill_at then begin
      let victim = Cluster.primary_of cl ~shard:hot in
      Cluster.kill_node ~mode cl victim;
      incr crash_runs;
      killed := victim;
      match recovery with
      | Failover ->
          dead := victim;
          promote_away victim
      | Restart | Restart_refail ->
          (* Crash-restart in place: the victim comes straight back
             while it is still the route primary, with no failover in
             between — the schedule that catches a reborn primary
             recycling seqnos its live backup already acked. *)
          Cluster.restart_node cl victim
    end
  in
  (* Second act of [Restart_refail]: once the restarted primary has
     taken more acked writes, kill it again and this time fail over,
     so the audit reads from the backup those acks had to reach. *)
  let rekill_at =
    if kill_at < 0 then max_int else kill_at + max 6 (cfg.ops / 6)
  in
  let maybe_rekill () =
    if
      recovery = Restart_refail
      && !killed >= 0
      && !dead < 0
      && !acks >= rekill_at
    then begin
      let victim = Cluster.primary_of cl ~shard:hot in
      Cluster.kill_node ~mode cl victim;
      incr crash_runs;
      dead := victim;
      promote_away victim
    end
  in
  Array.iter
    (fun op ->
      maybe_partition ();
      maybe_kill ();
      maybe_rekill ();
      match op with
      | S_put (k, v) -> (
          match Cluster.put cl k v with
          | Ok () ->
              oracle_ack o k (Some v);
              incr acks
          | Error _ -> oracle_attempt o k (Some v))
      | S_del k -> (
          match Cluster.del cl k with
          | Ok () ->
              oracle_ack o k None;
              incr acks
          | Error _ -> oracle_attempt o k None)
      | S_get k -> check_read ~where:"during run" k (Cluster.get cl k))
    script;
  maybe_kill ();
  maybe_rekill ();
  (* Settle: heal the fabric, bring any dead node back (segment
     resync) and audit the whole keyspace against the oracle. *)
  Cluster.heal cl;
  if !dead >= 0 then Cluster.restart_node cl !dead;
  for _ = 1 to 3 do
    Cluster.tick cl
  done;
  for k = 1 to cfg.keyspace do
    let rec read tries =
      match Cluster.get cl k with
      | Ok v -> Some v
      | Error _ ->
          if tries <= 0 then None
          else begin
            Cluster.tick cl;
            read (tries - 1)
          end
    in
    match read 10 with
    | None ->
        add Check.Tolerance
          (Printf.sprintf "audit read unavailable after recovery: key %d %s" k
             scen_tag)
    | Some v ->
        if not (oracle_allowed o k v) then
          add
            (if Hashtbl.mem o.acked k then Check.Durability
             else Check.Linearizability)
            (Printf.sprintf
               "lost acknowledged write: key %d read back %s after recovery, \
                expected %s %s"
               k (describe_binding v) (expectation o k) scen_tag)
  done;
  Cluster.close cl;
  (List.rev !violations, !crash_runs, Array.length script + cfg.keyspace)

(* ------------------------------------------------------------------ *)
(* Scenario product                                                    *)
(* ------------------------------------------------------------------ *)

let scenario cfg i =
  let kill_points = [| -1; cfg.ops / 4; cfg.ops / 2; 3 * cfg.ops / 4 |] in
  let recoveries = [| Failover; Restart; Restart_refail |] in
  let fault_seed = (cfg.seed * 7919) + (101 * i) in
  let kill_at = kill_points.(i mod Array.length kill_points) in
  let recovery =
    recoveries.(i / Array.length kill_points mod Array.length recoveries)
  in
  let partition = i / 2 mod 2 = 1 in
  let mode = if i mod 2 = 0 then Storelog.Keep_all else Storelog.Keep_none in
  (fault_seed, kill_at, recovery, partition, mode)

let run ?(config = default) ?(tracer = Trace.null) name =
  let cfg = config in
  let d = Registry.find_exn name in
  match checkable d cfg with
  | Some reason -> { (empty_report name) with Check.skipped = Some reason }
  | None ->
      with_mutant cfg.mutant @@ fun () ->
      let scen_span = Trace.intern tracer "replcheck.scenario" in
      let crash_runs = ref 0 in
      let ops_checked = ref 0 in
      let violations = ref [] in
      for i = 0 to cfg.schedules - 1 do
        let fault_seed, kill_at, recovery, partition, mode = scenario cfg i in
        Trace.span_begin tracer scen_span i;
        let vs, cr, ops =
          run_scenario cfg ~tracer ~name ~fault_seed ~kill_at ~recovery
            ~partition ~mode
        in
        Trace.span_end tracer scen_span;
        violations := !violations @ vs;
        crash_runs := !crash_runs + cr;
        ops_checked := !ops_checked + ops
      done;
      {
        Check.index = name;
        schedules_run = cfg.schedules;
        exhausted = false;
        crash_runs = !crash_runs;
        ops_checked = !ops_checked;
        violations = !violations;
        skipped = None;
        crash_note = None;
      }

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

let repl_of_cx (cx : Cx.t) =
  match cx.repl with
  | Some r -> r
  | None -> invalid_arg "Replcheck.replay: counterexample has no repl extension"

let config_of_counterexample (cx : Cx.t) =
  let r = repl_of_cx cx in
  {
    default with
    nodes = r.rp_nodes;
    shards = r.rp_shards;
    ops = cx.workload.ops_per_thread;
    keyspace = cx.workload.keyspace;
    seed = cx.workload.seed;
    mutant = r.rp_mutant;
    schedules = 1;
    node_bytes = cx.node_bytes;
  }

let replay ?(tracer = Trace.null) (cx : Cx.t) =
  let r = repl_of_cx cx in
  let cfg = config_of_counterexample cx in
  let mode =
    match cx.crash with
    | Some c -> mode_of_string c.mode
    | None -> Storelog.Keep_all
  in
  with_mutant cfg.mutant @@ fun () ->
  let vs, cr, ops =
    run_scenario cfg ~tracer ~name:cx.index ~fault_seed:r.rp_fault_seed
      ~kill_at:r.rp_kill_at
      ~recovery:(recovery_of_string r.rp_recovery)
      ~partition:r.rp_partition ~mode
  in
  {
    Check.index = cx.index;
    schedules_run = 1;
    exhausted = false;
    crash_runs = cr;
    ops_checked = ops;
    violations = vs;
    skipped = None;
    crash_note = None;
  }
