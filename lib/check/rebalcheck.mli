(** Crash x schedule model checker for elastic resharding
    ({!Ff_rebalance.Rebalance}).

    One writer thread applies a deterministic commit log of puts and
    deletes through the routed serving layer while a rebalancer
    thread splits, merges or migrates a shard underneath it.  The
    schedule x crash product is explored exactly as in {!Check}:
    scheduler decisions come from the exploration policy, and every
    fence point of every involved arena is a crash candidate —
    covering plan publication, the throttled background copy, the
    dual-write window, the cutover commit and the finish phase.

    The single oracle is the rebalancer's contract: {e zero lost
    acknowledged writes}.  The writer counts fully-applied ops (no
    yield point separates an op's return from the increment, so the
    count is exact).  After a crash anywhere in the protocol the
    surviving authority — resolved from the decision word alone via
    {!Ff_rebalance.Rebalance.resolve} — must read back the model
    state at that acknowledged prefix, give or take the single op
    that was in flight.  Crash-free runs additionally check that the
    rebalance completed and reshaped the topology.

    Split and merge run against a single-arena composite (the whole
    ensemble crashes and reattaches as one image); migrate runs a
    serving ensemble and sweeps crash points on {e both} the source
    and the destination arena, resolving which image is authoritative
    from the source's decision word.

    [mutant] arms {!Ff_rebalance.Rebalance.mutant_drop_delta} (cutover
    silently discards the dual-written delta records).  A run over
    the mutant must produce lost-write violations; each
    counterexample carries the [rebal] extension so
    [ffcli check --replay] re-executes it deterministically. *)

type rkind = Rb_split | Rb_merge | Rb_migrate

val rkind_to_string : rkind -> string
val rkind_of_string : string -> rkind

type config = {
  kind : rkind;          (** which rebalance runs under the writer *)
  ops : int;             (** writer commit-log length (default 10) *)
  keyspace : int;
  prefill : int;
  seed : int;
  mutant : bool;         (** arm the drop-delta mutant (default false) *)
  explorer : Check.explorer;
  schedules : int;
  max_crash_points : int;
  crash_budget : int;
  node_bytes : int option;
}

val default : config

val checkable : Ff_index.Descriptor.t -> config -> string option
(** [None] when the descriptor is rebalance-checkable: persistent,
    recoverable, range-scannable, and (for split/merge) with a
    relocatable root. *)

val run : ?config:config -> ?tracer:Ff_trace.Trace.t -> string -> Check.report
(** [run name] checks the registry index [name] (e.g. ["fastfair"])
    and returns a {!Check.report}.  Counterexamples carry
    [Counterexample.rebal = Some _]. *)

val replay : ?tracer:Ff_trace.Trace.t -> Counterexample.t -> Check.report
(** Re-execute one recorded rebalance counterexample (the artifact
    must carry the [rebal] extension).
    @raise Invalid_argument if [cx.rebal = None]. *)

val config_of_counterexample : Counterexample.t -> config
(** @raise Invalid_argument if [cx.rebal = None]. *)
