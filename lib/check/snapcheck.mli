(** Snapshot-serializability checker for the MVCC snapshot layer.

    One writer thread applies a deterministic commit log of puts and
    deletes through a snapshot-wrapped index
    ({!Ff_snapshot.Snapshot}), while a reader thread pins an epoch at
    a scheduler-chosen point and reads the whole keyspace at that
    epoch — twice.  The schedule x crash product is explored exactly
    as in {!Check}.

    Three oracles:

    - {e Prefix-window isolation}: the reader records how many log
      entries were fully applied immediately before and after its
      [snapshot_begin] call.  The pinned read vector must equal the
      model state at some commit-log prefix inside that window — a
      vector matching a later prefix read the future; one matching no
      prefix is torn.  Reported as [Tolerance].
    - {e Stability}: a second full pass over the same pinned epoch,
      taken while the writer keeps committing, must be identical to
      the first.  Reported as [Tolerance].
    - {e Durability}: every crash point is replayed under each crash
      mode; after [power_fail] + recovery the pre-crash epoch must
      still be published and re-pinning it must reproduce every
      pre-crash observation byte-for-byte.  Reported as
      [Durability].

    [mutant] arms {!Ff_snapshot.Snapshot.mutant_read_latest} (pinned
    reads silently resolve against the live tree).  A run over the
    mutant must produce violations; each counterexample carries the
    [snap] extension so [ffcli check --replay] re-executes it
    deterministically. *)

type config = {
  rounds : int;          (** writer rounds (default 3) *)
  ops_per_round : int;   (** puts/deletes per round (default 4) *)
  keyspace : int;
  prefill : int;
  seed : int;
  mutant : bool;         (** arm the read-latest mutant (default false) *)
  explorer : Check.explorer;
  schedules : int;
  max_crash_points : int;
  crash_budget : int;
  node_bytes : int option;
}

val default : config

val checkable : Ff_index.Descriptor.t -> config -> string option
(** [None] when the descriptor is snapshot-checkable: [snapshottable]
    and persistent with recovery. *)

val run : ?config:config -> ?tracer:Ff_trace.Trace.t -> string -> Check.report
(** [run name] checks the registry index [name] (e.g.
    ["snap-fastfair"]) and returns a {!Check.report}.  Counterexamples
    carry [Counterexample.snap = Some _]. *)

val replay : ?tracer:Ff_trace.Trace.t -> Counterexample.t -> Check.report
(** Re-execute one recorded snapshot counterexample (the artifact must
    carry the [snap] extension).
    @raise Invalid_argument if [cx.snap = None]. *)

val config_of_counterexample : Counterexample.t -> config
(** @raise Invalid_argument if [cx.snap = None]. *)
