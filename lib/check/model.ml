type op = Insert of int * int | Delete of int | Search of int
type resp = Done | Deleted of bool | Found of int option

type t = (int, int) Hashtbl.t

let create ?(initial = []) () =
  let m = Hashtbl.create 32 in
  List.iter (fun (k, v) -> Hashtbl.replace m k v) initial;
  m

let copy = Hashtbl.copy

let apply m = function
  | Insert (k, v) ->
      Hashtbl.replace m k v;
      Done
  | Delete k ->
      let present = Hashtbl.mem m k in
      Hashtbl.remove m k;
      Deleted present
  | Search k -> Found (Hashtbl.find_opt m k)

let bindings m =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) m [])

let op_to_string = function
  | Insert (k, v) -> Printf.sprintf "insert(%d,%d)" k v
  | Delete k -> Printf.sprintf "delete(%d)" k
  | Search k -> Printf.sprintf "search(%d)" k

let resp_to_string = function
  | Done -> "ok"
  | Deleted b -> Printf.sprintf "deleted:%b" b
  | Found None -> "none"
  | Found (Some v) -> Printf.sprintf "found:%d" v
