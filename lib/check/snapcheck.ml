module Arena = Ff_pmem.Arena
module Storelog = Ff_pmem.Storelog
module Epoch = Ff_pmem.Epoch
module Mcsim = Ff_mcsim.Mcsim
module Prng = Ff_util.Prng
module Intf = Ff_index.Intf
module D = Ff_index.Descriptor
module Registry = Ff_index.Registry
module Trace = Ff_trace.Trace
module Snapshot = Ff_snapshot.Snapshot
module Cx = Counterexample

type config = {
  rounds : int;
  ops_per_round : int;
  keyspace : int;
  prefill : int;
  seed : int;
  mutant : bool;
  explorer : Check.explorer;
  schedules : int;
  max_crash_points : int;
  crash_budget : int;
  node_bytes : int option;
}

let default =
  {
    rounds = 3;
    ops_per_round = 4;
    keyspace = 8;
    prefill = 4;
    seed = 1;
    mutant = false;
    explorer = Check.Pct;
    schedules = 8;
    max_crash_points = 10;
    crash_budget = 128;
    node_bytes = None;
  }

let checkable d cfg =
  if not d.D.caps.D.snapshottable then Some "not snapshottable"
  else if not (d.D.caps.D.is_persistent && d.D.caps.D.has_recovery) then
    Some "not crash-checkable: volatile or no recovery"
  else if cfg.rounds < 1 || cfg.ops_per_round < 1 then
    Some "need at least 1 write round"
  else None

(* ------------------------------------------------------------------ *)
(* Deterministic workload generation                                   *)
(* ------------------------------------------------------------------ *)

type wop = Put of int * int | Del of int

type workload = {
  ops : wop array;               (* flat writer script: the commit log *)
  initial : (int * int) list;
  states : (int * int) list array;  (* states.(i) = sorted state after
                                       the first i log entries *)
}

let value_of n = (2 * n) + 1

let apply_op state = function
  | Put (k, v) -> (k, v) :: List.remove_assoc k state
  | Del k -> List.remove_assoc k state

let gen_workload cfg =
  let vcount = ref 0 in
  let fresh_value () =
    let v = value_of !vcount in
    incr vcount;
    v
  in
  let initial =
    List.init (min cfg.prefill cfg.keyspace) (fun i -> (i + 1, fresh_value ()))
  in
  let rng = Prng.create cfg.seed in
  let ops =
    Array.init (cfg.rounds * cfg.ops_per_round) (fun _ ->
        let key = 1 + Prng.int rng cfg.keyspace in
        if Prng.int rng 4 = 0 then Del key else Put (key, fresh_value ()))
  in
  let states = Array.make (Array.length ops + 1) [] in
  states.(0) <- List.sort compare initial;
  Array.iteri
    (fun i op -> states.(i + 1) <- List.sort compare (apply_op states.(i) op))
    ops;
  { ops; initial; states }

(* ------------------------------------------------------------------ *)
(* One controlled execution                                            *)
(* ------------------------------------------------------------------ *)

type exec = {
  arena : Arena.t;
  dcfg : D.config;
  applied : int;                     (* log entries fully applied *)
  pinned : (int * int * int) option; (* (epoch, window lo, window hi) *)
  vec1 : (int * int option) list;    (* first pinned read pass, reversed *)
  vec2 : (int * int option) list;    (* second pass (stability probe) *)
  fence_points : int list;
  crashed : bool;
}

(* Writer applies the commit log through the wrapped ops while a
   snapshot reader pins an epoch at a scheduler-chosen point, records
   the prefix window [lo, hi] of commits the pin could linearize
   against, then reads the whole keyspace at that epoch twice.  The
   [applied] counter moves only between wrapped ops (no yield point
   separates an op's return from the increment), so the window is
   exact. *)
let execute cfg d w ~policy ~crash_at =
  let arena = Arena.create ~words:(1 lsl 20) () in
  let dcfg = { D.default_config with D.node_bytes = cfg.node_bytes } in
  let ops = Registry.build ~config:dcfg d.D.name arena in
  ignore
    (Mcsim.run ~cores:1 ~arena
       [| (fun _ -> List.iter (fun (k, v) -> ops.Intf.insert k v) w.initial) |]);
  let fences = ref [] in
  let mark _ = fences := Arena.store_count arena :: !fences in
  let nop = fun (_ : int) -> () and nop2 = fun (_ : int) (_ : int) -> () in
  Arena.set_event_sink arena
    (Some
       {
         Arena.ev_store = nop;
         ev_flush = mark;
         ev_fence = (fun () -> mark 0);
         ev_alloc = nop2;
         ev_free = nop2;
         ev_crash = (fun () -> ());
       });
  (match crash_at with
  | Some k -> Arena.set_crash_plan arena (Arena.After_stores k)
  | None -> ());
  let applied = ref 0 in
  let pinned = ref None in
  let vec1 = ref [] in
  let vec2 = ref [] in
  let writer _ =
    Array.iter
      (fun op ->
        (match op with
        | Put (k, v) -> ops.Intf.insert k v
        | Del k -> ignore (ops.Intf.delete k));
        incr applied)
      w.ops
  in
  let reader _ =
    let lo = !applied in
    let e = ops.Intf.snapshot_begin 0 in
    let hi = !applied in
    pinned := Some (e, lo, hi);
    for k = 1 to cfg.keyspace do
      vec1 := (k, ops.Intf.read_at e k) :: !vec1
    done;
    for k = 1 to cfg.keyspace do
      vec2 := (k, ops.Intf.read_at e k) :: !vec2
    done
  in
  let crashed =
    try
      ignore (Mcsim.run ~cores:1 ~quantum_ns:1 ~policy ~arena [| writer; reader |]);
      false
    with Arena.Crashed -> true
  in
  Arena.set_event_sink arena None;
  {
    arena;
    dcfg;
    applied = !applied;
    pinned = !pinned;
    vec1 = !vec1;
    vec2 = !vec2;
    fence_points = List.sort_uniq compare !fences;
    crashed;
  }

let show_state st =
  "{"
  ^ String.concat "; " (List.map (fun (k, v) -> Printf.sprintf "%d->%d" k v) st)
  ^ "}"

let observed_assoc vec =
  List.sort compare
    (List.filter_map (fun (k, o) -> Option.map (fun v -> (k, v)) o) vec)

(* ------------------------------------------------------------------ *)
(* Oracles                                                             *)
(* ------------------------------------------------------------------ *)

(* Live run: the pinned read vector must equal the model state at some
   commit-log prefix within the pin window, and a second pass over the
   same epoch must be identical even though the writer kept going. *)
let validate_live cfg w exec =
  let failures = ref [] in
  (match exec.pinned with
  | None -> ()
  | Some (e, lo, hi) ->
      if List.length exec.vec1 = cfg.keyspace then begin
        let obs = observed_assoc exec.vec1 in
        let matched = ref None in
        Array.iteri
          (fun p st -> if !matched = None && st = obs then matched := Some p)
          w.states;
        (match !matched with
        | Some p when p >= lo && p <= hi -> ()
        | Some p ->
            failures :=
              ( Check.Tolerance,
                Printf.sprintf
                  "snapshot isolation: epoch %d pinned in commit window \
                   [%d, %d] but the read vector matches prefix %d"
                  e lo hi p )
              :: !failures
        | None ->
            failures :=
              ( Check.Tolerance,
                Printf.sprintf
                  "snapshot isolation: read vector %s at epoch %d matches no \
                   commit-log prefix (window [%d, %d])"
                  (show_state obs) e lo hi )
              :: !failures)
      end;
      if
        List.length exec.vec2 = cfg.keyspace
        && observed_assoc exec.vec2 <> observed_assoc exec.vec1
      then
        failures :=
          ( Check.Tolerance,
            Printf.sprintf
              "snapshot stability: re-reading pinned epoch %d diverged from \
               the first pass (%s vs %s)"
              e
              (show_state (observed_assoc exec.vec2))
              (show_state (observed_assoc exec.vec1)) )
          :: !failures);
  List.rev !failures

let mode_of_crash (c : Cx.crash) =
  match c.Cx.mode with
  | "keep_none" -> Storelog.Keep_none
  | "keep_all" -> Storelog.Keep_all
  | "random_eviction" -> Storelog.Random_eviction (Prng.create c.Cx.crash_seed)
  | s -> invalid_arg (Printf.sprintf "counterexample: unknown crash mode %S" s)

(* Crash run: power-fail, recover, and re-pin the pre-crash epoch.
   Every key the reader observed before the crash must read back
   identically — a published epoch is durable, so the crash cannot
   move it. *)
let validate_crash cfg d exec (crash : Cx.crash) =
  match exec.pinned with
  | None -> []
  | Some (e, _, _) ->
      let failures = ref [] in
      Arena.power_fail exec.arena (mode_of_crash crash);
      (match
         let o = d.D.open_existing exec.dcfg exec.arena in
         o.Intf.recover ();
         o
       with
      | o ->
          if Epoch.current exec.arena < e then
            failures :=
              ( Check.Durability,
                Printf.sprintf
                  "published epoch lost: reader pinned %d but recovery reads \
                   %d"
                  e
                  (Epoch.current exec.arena) )
              :: !failures
          else
            List.iter
              (fun (k, seen) ->
                match o.Intf.read_at e k with
                | got when got <> seen ->
                    if List.length !failures < cfg.keyspace then
                      failures :=
                        ( Check.Durability,
                          Printf.sprintf
                            "post-crash re-pin diverged: epoch %d key %d was \
                             %s before the crash, %s after recovery"
                            e k
                            (match seen with
                            | Some v -> string_of_int v
                            | None -> "absent")
                            (match got with
                            | Some v -> string_of_int v
                            | None -> "absent") )
                        :: !failures
                | _ -> ())
              exec.vec1
      | exception ex ->
          failures :=
            ( Check.Durability,
              "snapshot recovery raised: " ^ Printexc.to_string ex )
            :: !failures);
      List.rev !failures

(* ------------------------------------------------------------------ *)
(* Top-level engines                                                   *)
(* ------------------------------------------------------------------ *)

let sample_evenly max_n lst =
  let n = List.length lst in
  if n <= max_n then lst
  else
    let arr = Array.of_list lst in
    List.init max_n (fun i -> arr.(i * n / max_n))

let mk_cx cfg index kind ~decisions ~crash ~detail =
  {
    Cx.index;
    node_bytes = cfg.node_bytes;
    kind = Check.kind_to_string kind;
    workload =
      {
        Cx.writers = 1;
        readers = 1;
        ops_per_thread = cfg.ops_per_round;
        keyspace = cfg.keyspace;
        prefill = cfg.prefill;
        seed = cfg.seed;
        non_tso = false;
        elide_flush = false;
      };
    tx = None;
    snap = Some { Cx.mutant = cfg.mutant; rounds = cfg.rounds };
    rebal = None;
    repl = None;
    decisions;
    crash;
    detail;
  }

let empty_report index =
  {
    Check.index;
    schedules_run = 0;
    exhausted = false;
    crash_runs = 0;
    ops_checked = 0;
    violations = [];
    skipped = None;
    crash_note = None;
  }

let with_mutant armed f =
  let prev = !Snapshot.mutant_read_latest in
  Snapshot.mutant_read_latest := armed;
  Fun.protect ~finally:(fun () -> Snapshot.mutant_read_latest := prev) f

let run ?(config = default) ?(tracer = Trace.null) name =
  let cfg = config in
  let d = Registry.find_exn name in
  match checkable d cfg with
  | Some reason -> { (empty_report name) with Check.skipped = Some reason }
  | None ->
      with_mutant cfg.mutant @@ fun () ->
      let w = gen_workload cfg in
      let sched_span = Trace.intern tracer "snapcheck.schedule" in
      let crash_inst = Trace.intern tracer "snapcheck.crash_point" in
      let crash_budget = ref cfg.crash_budget in
      let crash_runs = ref 0 in
      let ops_checked = ref 0 in
      let violations = ref [] in
      let crash_note = ref None in
      let add kind detail ~decisions ~crash =
        violations :=
          {
            Check.kind;
            detail;
            counterexample = mk_cx cfg name kind ~decisions ~crash ~detail;
          }
          :: !violations
      in
      let crash_run choices crash =
        incr crash_runs;
        decr crash_budget;
        Trace.instant tracer crash_inst crash.Cx.store_count;
        let rc = Schedule.recorder () in
        let policy =
          Schedule.record_policy ~prefix:choices ~fallback:Mcsim.Fifo rc
        in
        let exec = execute cfg d w ~policy ~crash_at:(Some crash.Cx.store_count) in
        List.iter
          (fun (kind, detail) ->
            add kind detail ~decisions:choices ~crash:(Some crash))
          (validate_crash cfg d exec crash)
      in
      let crash_sweep choices fence_points =
        let points = sample_evenly cfg.max_crash_points fence_points in
        List.iter
          (fun k ->
            List.iter
              (fun mode ->
                if !crash_budget > 0 then
                  crash_run choices
                    { Cx.store_count = k; mode; crash_seed = k; cutoff = None })
              [ "keep_none"; "keep_all"; "random_eviction" ])
          points
      in
      let check_schedule policy rc =
        let exec = execute cfg d w ~policy ~crash_at:None in
        let choices = Schedule.choices rc in
        Trace.span_begin tracer sched_span (Array.length choices);
        ops_checked := !ops_checked + exec.applied;
        List.iter
          (fun (kind, detail) -> add kind detail ~decisions:choices ~crash:None)
          (validate_live cfg w exec);
        crash_sweep choices exec.fence_points;
        Trace.span_end tracer sched_span
      in
      let exploration =
        match cfg.explorer with
        | Check.Dfs ->
            Schedule.dfs ~max_schedules:cfg.schedules (fun ~prefix ->
                let rc = Schedule.recorder () in
                let policy =
                  Schedule.record_policy ~prefix ~fallback:Mcsim.Fifo rc
                in
                check_schedule policy rc;
                (Schedule.decisions rc, ()))
        | Check.Pct ->
            Schedule.pct ~schedules:cfg.schedules ~seed:cfg.seed (fun ~policy ->
                let rc = Schedule.recorder () in
                let policy = Schedule.record_policy ~fallback:policy rc in
                check_schedule policy rc)
      in
      if !crash_budget <= 0 then
        crash_note :=
          Some
            (Printf.sprintf
               "crash budget (%d executions) exhausted; sweep truncated"
               cfg.crash_budget);
      {
        Check.index = name;
        schedules_run = exploration.Schedule.schedules;
        exhausted = exploration.Schedule.exhausted;
        crash_runs = !crash_runs;
        ops_checked = !ops_checked;
        violations = List.rev !violations;
        skipped = None;
        crash_note = !crash_note;
      }

let config_of_counterexample (cx : Cx.t) =
  match cx.Cx.snap with
  | None -> invalid_arg "Snapcheck: counterexample lacks the snap extension"
  | Some s ->
      let w = cx.Cx.workload in
      {
        default with
        rounds = s.Cx.rounds;
        ops_per_round = w.Cx.ops_per_thread;
        keyspace = w.Cx.keyspace;
        prefill = w.Cx.prefill;
        seed = w.Cx.seed;
        mutant = s.Cx.mutant;
        node_bytes = cx.Cx.node_bytes;
      }

let replay ?(tracer = Trace.null) (cx : Cx.t) =
  ignore tracer;
  let cfg = config_of_counterexample cx in
  let name = cx.Cx.index in
  let d = Registry.find_exn name in
  match checkable d cfg with
  | Some reason -> { (empty_report name) with Check.skipped = Some reason }
  | None ->
      with_mutant cfg.mutant @@ fun () ->
      let w = gen_workload cfg in
      let violations = ref [] in
      let ops_checked = ref 0 in
      let crash_runs = ref 0 in
      let record kind detail =
        violations :=
          { Check.kind; detail; counterexample = { cx with Cx.detail = detail } }
          :: !violations
      in
      (match cx.Cx.crash with
      | None ->
          let rc = Schedule.recorder () in
          let policy =
            Schedule.record_policy ~prefix:cx.Cx.decisions ~fallback:Mcsim.Fifo
              rc
          in
          let exec = execute cfg d w ~policy ~crash_at:None in
          ops_checked := exec.applied;
          List.iter
            (fun (kind, detail) -> record kind detail)
            (validate_live cfg w exec)
      | Some crash ->
          incr crash_runs;
          let rc = Schedule.recorder () in
          let policy =
            Schedule.record_policy ~prefix:cx.Cx.decisions ~fallback:Mcsim.Fifo
              rc
          in
          let exec =
            execute cfg d w ~policy ~crash_at:(Some crash.Cx.store_count)
          in
          ops_checked := exec.applied;
          List.iter
            (fun (kind, detail) -> record kind detail)
            (validate_crash cfg d exec crash));
      {
        Check.index = name;
        schedules_run = 1;
        exhausted = false;
        crash_runs = !crash_runs;
        ops_checked = !ops_checked;
        violations = List.rev !violations;
        skipped = None;
        crash_note = None;
      }
