module Arena = Ff_pmem.Arena
module Pconfig = Ff_pmem.Config
module Storelog = Ff_pmem.Storelog
module Mcsim = Ff_mcsim.Mcsim
module Prng = Ff_util.Prng
module Intf = Ff_index.Intf
module D = Ff_index.Descriptor
module Registry = Ff_index.Registry
module Locks = Ff_index.Locks
module Trace = Ff_trace.Trace
module Cx = Counterexample

type explorer = Dfs | Pct

type config = {
  writers : int;
  readers : int;
  ops_per_thread : int;
  keyspace : int;
  prefill : int;
  seed : int;
  explorer : explorer;
  schedules : int;
  crashes : bool;
  max_crash_points : int;
  crash_budget : int;
  non_tso : bool;
  elide_flush : bool;
  node_bytes : int option;
}

let default =
  {
    writers = 2;
    readers = 1;
    ops_per_thread = 2;
    keyspace = 8;
    prefill = 4;
    seed = 1;
    explorer = Pct;
    schedules = 16;
    crashes = true;
    max_crash_points = 12;
    crash_budget = 256;
    non_tso = false;
    elide_flush = false;
    node_bytes = None;
  }

type kind = Linearizability | Tolerance | Durability

let kind_to_string = function
  | Linearizability -> "linearizability"
  | Tolerance -> "tolerance"
  | Durability -> "durability"

type violation = { kind : kind; detail : string; counterexample : Cx.t }

type report = {
  index : string;
  schedules_run : int;
  exhausted : bool;
  crash_runs : int;
  ops_checked : int;
  violations : violation list;
  skipped : string option;
  crash_note : string option;
}

let empty_report index =
  {
    index;
    schedules_run = 0;
    exhausted = false;
    crash_runs = 0;
    ops_checked = 0;
    violations = [];
    skipped = None;
    crash_note = None;
  }

(* An index is schedule-checkable when concurrent threads are legal:
   either the structure drives Mcsim locks itself (Sim mode), or its
   readers are lock-free and at most one writer runs. *)
let checkable d cfg =
  if cfg.writers + cfg.readers < 2 then Some "need at least 2 threads"
  else if (cfg.writers + cfg.readers) * cfg.ops_per_thread > Linearize.max_ops then
    Some
      (Printf.sprintf "history would exceed %d ops (reduce threads/ops)"
         Linearize.max_ops)
  else if D.supports_lock_mode d Locks.Sim then None
  else if d.D.caps.D.lock_free_reads && cfg.writers <= 1 then None
  else
    Some
      "not concurrency-checkable: no Sim lock mode and readers are not \
       lock-free (or >1 writer without locks)"

let crash_checkable d =
  let c = d.D.caps in
  if c.D.is_persistent && c.D.has_recovery then None
  else Some "not crash-checkable: volatile or no recovery"

(* ------------------------------------------------------------------ *)
(* Deterministic workload generation                                   *)
(* ------------------------------------------------------------------ *)

let value_of opid = (2 * opid) + 1

type workload = {
  scripts : (int * Model.op) list array;  (* per thread: (opid, op) *)
  initial : (int * int) list;             (* prefill bindings *)
  writable : (int * int) list;            (* every (key, value) any insert may write *)
}

let gen_workload cfg =
  (* Values are salted by a global counter so every insert (prefill
     included) writes a distinct value — the registry's uniqueness
     contract, and what lets the tolerance check recognize a
     fabricated binding. *)
  let vcount = ref 0 in
  let fresh_value () =
    let v = value_of !vcount in
    incr vcount;
    v
  in
  let initial =
    List.init (min cfg.prefill cfg.keyspace) (fun i -> (i + 1, fresh_value ()))
  in
  let master = Prng.create cfg.seed in
  let opid = ref 0 in
  let scripts =
    Array.init (cfg.writers + cfg.readers) (fun tid ->
        let rng = Prng.split master in
        List.init cfg.ops_per_thread (fun _ ->
            let key = 1 + Prng.int rng cfg.keyspace in
            let op =
              if tid < cfg.writers then
                if Prng.int rng 4 = 0 then Model.Delete key
                else Model.Insert (key, fresh_value ())
              else Model.Search key
            in
            let id = !opid in
            incr opid;
            (id, op)))
  in
  let writable =
    initial
    @ Array.fold_left
        (fun acc script ->
          List.fold_left
            (fun acc (_, op) ->
              match op with Model.Insert (k, v) -> (k, v) :: acc | _ -> acc)
            acc script)
        [] scripts
  in
  { scripts; initial; writable }

(* ------------------------------------------------------------------ *)
(* One controlled execution                                            *)
(* ------------------------------------------------------------------ *)

type exec = {
  arena : Arena.t;
  ops : Intf.ops;
  dcfg : D.config;
  calls : Linearize.call array;  (* only ops that were invoked *)
  fence_points : int list;       (* absolute store counts at concurrent-phase fences *)
  crashed : bool;
}

(* Build + prefill on a fresh arena, then run the concurrent scripts
   under the given policy at quantum 1 on one simulated core, so the
   policy's decision sequence is a total order over every PM access.
   [crash_at] arms [After_stores] before the concurrent phase; the
   resulting [Arena.Crashed] (propagated out of [Mcsim.run]) leaves
   in-flight calls pending. *)
let execute cfg d w ~policy ~crash_at =
  let pconf =
    if cfg.non_tso then { Pconfig.default with Pconfig.memory_order = Pconfig.Non_tso }
    else Pconfig.default
  in
  let arena = Arena.create ~config:pconf ~words:(1 lsl 20) () in
  let lock_mode =
    if D.supports_lock_mode d Locks.Sim then Locks.Sim else Locks.Single
  in
  let dcfg = { D.default_config with D.node_bytes = cfg.node_bytes; lock_mode } in
  let ops = Registry.build ~config:dcfg d.D.name arena in
  ignore
    (Mcsim.run ~cores:1 ~arena
       [| (fun _ -> List.iter (fun (k, v) -> ops.Intf.insert k v) w.initial) |]);
  if cfg.elide_flush then Arena.set_flush_elision arena true;
  let total = Array.fold_left (fun a s -> a + List.length s) 0 w.scripts in
  let calls = Array.make total (Linearize.make_call ~opid:0 ~tid:0 (Model.Search 0)) in
  Array.iteri
    (fun tid script ->
      List.iter
        (fun (opid, op) -> calls.(opid) <- Linearize.make_call ~opid ~tid op)
        script)
    w.scripts;
  let fences = ref [] in
  (* Durability points: explicit fences AND non-group flushes (a flush
     is clflush_with_mfence here — under TSO the tree never issues a
     bare fence, so flushes are where epochs advance). *)
  let mark _ = fences := Arena.store_count arena :: !fences in
  let nop = fun (_ : int) -> () and nop2 = fun (_ : int) (_ : int) -> () in
  Arena.set_event_sink arena
    (Some
       {
         Arena.ev_store = nop;
         ev_flush = mark;
         ev_fence = (fun () -> mark 0);
         ev_alloc = nop2;
         ev_free = nop2;
         ev_crash = (fun () -> ());
       });
  (match crash_at with
  | Some k -> Arena.set_crash_plan arena (Arena.After_stores k)
  | None -> ());
  let stamp = ref 0 in
  let tick () =
    incr stamp;
    !stamp
  in
  let body tid _ =
    List.iter
      (fun (opid, op) ->
        let c = calls.(opid) in
        c.Linearize.inv <- tick ();
        let resp =
          match op with
          | Model.Insert (k, v) ->
              ops.Intf.insert k v;
              Model.Done
          | Model.Delete k -> Model.Deleted (ops.Intf.delete k)
          | Model.Search k -> Model.Found (ops.Intf.search k)
        in
        c.Linearize.resp <- Some resp;
        c.Linearize.ret <- tick ())
      w.scripts.(tid)
  in
  let bodies = Array.init (Array.length w.scripts) (fun tid -> body tid) in
  let crashed =
    try
      ignore (Mcsim.run ~cores:1 ~quantum_ns:1 ~policy ~arena bodies);
      false
    with Arena.Crashed -> true
  in
  Arena.set_event_sink arena None;
  Arena.set_flush_elision arena false;
  let invoked =
    Array.of_list
      (List.filter (fun c -> c.Linearize.inv >= 0) (Array.to_list calls))
  in
  {
    arena;
    ops;
    dcfg;
    calls = invoked;
    fence_points = List.sort_uniq compare !fences;
    crashed;
  }

(* Observed final bindings, via charged searches inside the simulator
   (the live handle may hold Sim locks). *)
let dump_live cfg exec =
  let acc = ref [] in
  ignore
    (Mcsim.run ~cores:1 ~arena:exec.arena
       [|
         (fun _ ->
           for k = cfg.keyspace downto 1 do
             match exec.ops.Intf.search k with
             | Some v -> acc := (k, v) :: !acc
             | None -> ()
           done);
       |]);
  !acc

let dump_single cfg ops =
  let acc = ref [] in
  for k = cfg.keyspace downto 1 do
    match ops.Intf.search k with Some v -> acc := (k, v) :: !acc | None -> ()
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Crash validation                                                    *)
(* ------------------------------------------------------------------ *)

let mode_of_crash (c : Cx.crash) =
  match c.Cx.mode with
  | "keep_none" -> Storelog.Keep_none
  | "keep_all" -> Storelog.Keep_all
  | "random_eviction" -> Storelog.Random_eviction (Prng.create c.Cx.crash_seed)
  | "non_tso_cutoff" ->
      let cutoff =
        match c.Cx.cutoff with
        | Some e -> e
        | None -> invalid_arg "counterexample: non_tso_cutoff without cutoff"
      in
      Storelog.Non_tso_cutoff (cutoff, Prng.create c.Cx.crash_seed)
  | s -> invalid_arg (Printf.sprintf "counterexample: unknown crash mode %S" s)

(* Apply the crash to a finished/crashed execution and validate:
   pre-recovery reader tolerance (lock-free readers only), then
   recovery and durable linearizability of the invoked history against
   the post-recovery dump. *)
let validate_crash cfg d w exec (crash : Cx.crash) =
  let failures = ref [] in
  Arena.power_fail exec.arena (mode_of_crash crash);
  let sdcfg = { exec.dcfg with D.lock_mode = Locks.Single } in
  (if d.D.caps.D.lock_free_reads then
     match
       let o = d.D.open_existing sdcfg exec.arena in
       let bad = ref None in
       for k = 1 to cfg.keyspace do
         match o.Intf.search k with
         | Some v when not (List.mem (k, v) w.writable) ->
             if !bad = None then bad := Some (k, v)
         | _ -> ()
       done;
       !bad
     with
     | None -> ()
     | Some (k, v) ->
         failures :=
           ( Tolerance,
             Printf.sprintf
               "pre-recovery reader returned fabricated binding %d -> %d" k v )
           :: !failures
     | exception e ->
         failures :=
           ( Tolerance,
             "pre-recovery reader raised: " ^ Printexc.to_string e )
           :: !failures);
  (match
     let o = d.D.open_existing sdcfg exec.arena in
     o.Intf.recover ();
     dump_single cfg o
   with
  | dump -> (
      match Linearize.check ~initial:w.initial ~final:dump exec.calls with
      | Ok () -> ()
      | Error msg -> failures := (Durability, msg) :: !failures)
  | exception e ->
      failures :=
        (Durability, "recovery raised: " ^ Printexc.to_string e) :: !failures);
  List.rev !failures

(* ------------------------------------------------------------------ *)
(* Top-level engines                                                   *)
(* ------------------------------------------------------------------ *)

let sample_evenly max_n lst =
  let n = List.length lst in
  if n <= max_n then lst
  else
    let arr = Array.of_list lst in
    List.init max_n (fun i -> arr.(i * n / max_n))

let mk_cx cfg index kind ~decisions ~crash ~detail =
  {
    Cx.index;
    node_bytes = cfg.node_bytes;
    kind = kind_to_string kind;
    workload =
      {
        Cx.writers = cfg.writers;
        readers = cfg.readers;
        ops_per_thread = cfg.ops_per_thread;
        keyspace = cfg.keyspace;
        prefill = cfg.prefill;
        seed = cfg.seed;
        non_tso = cfg.non_tso;
        elide_flush = cfg.elide_flush;
      };
    tx = None;
    snap = None;
    rebal = None;
    repl = None;
    decisions;
    crash;
    detail;
  }

let run ?(config = default) ?(tracer = Trace.null) name =
  let cfg = config in
  let d = Registry.find_exn name in
  match checkable d cfg with
  | Some reason -> { (empty_report name) with skipped = Some reason }
  | None ->
      let w = gen_workload cfg in
      let sched_span = Trace.intern tracer "check.schedule" in
      let crash_inst = Trace.intern tracer "check.crash_point" in
      let crash_note =
        ref
          (if not cfg.crashes then Some "crash engine disabled"
           else crash_checkable d)
      in
      let crash_budget = ref cfg.crash_budget in
      let crash_runs = ref 0 in
      let ops_checked = ref 0 in
      let violations = ref [] in
      let crash_enabled = cfg.crashes && crash_checkable d = None in
      (* Replays the recorded schedule up to [crash_at] and validates
         the given crash semantics on the result. *)
      let crash_run choices crash =
        incr crash_runs;
        decr crash_budget;
        Trace.instant tracer crash_inst crash.Cx.store_count;
        let rc = Schedule.recorder () in
        let policy = Schedule.record_policy ~prefix:choices ~fallback:Mcsim.Fifo rc in
        let exec = execute cfg d w ~policy ~crash_at:(Some crash.Cx.store_count) in
        List.iter
          (fun (kind, detail) ->
            violations :=
              {
                kind;
                detail;
                counterexample =
                  mk_cx cfg name kind ~decisions:choices ~crash:(Some crash) ~detail;
              }
              :: !violations)
          (validate_crash cfg d w exec crash)
      in
      (* Full product for one explored schedule: every (sampled) fence
         point x every legal crash mode, within the global budget. *)
      let crash_sweep choices fence_points =
        let points = sample_evenly cfg.max_crash_points fence_points in
        List.iter
          (fun k ->
            if !crash_budget > 0 then begin
              let base =
                [
                  { Cx.store_count = k; mode = "keep_none"; crash_seed = k; cutoff = None };
                  { Cx.store_count = k; mode = "keep_all"; crash_seed = k; cutoff = None };
                  {
                    Cx.store_count = k;
                    mode = "random_eviction";
                    crash_seed = k;
                    cutoff = None;
                  };
                ]
              in
              let non_tso_modes =
                if not cfg.non_tso then []
                else begin
                  (* probe: replay to the crash point to learn which
                     epochs still have pending stores, then sweep every
                     cutoff exhaustively *)
                  let rc = Schedule.recorder () in
                  let policy =
                    Schedule.record_policy ~prefix:choices ~fallback:Mcsim.Fifo rc
                  in
                  let exec = execute cfg d w ~policy ~crash_at:(Some k) in
                  List.map
                    (fun e ->
                      {
                        Cx.store_count = k;
                        mode = "non_tso_cutoff";
                        crash_seed = k;
                        cutoff = Some e;
                      })
                    (Arena.pending_epochs exec.arena)
                end
              in
              List.iter
                (fun crash -> if !crash_budget > 0 then crash_run choices crash)
                (base @ non_tso_modes)
            end)
          points
      in
      (* One explored schedule: execute, check linearizability against
         the live final state, then run the crash product. *)
      let check_schedule policy rc =
        let exec = execute cfg d w ~policy ~crash_at:None in
        let choices = Schedule.choices rc in
        Trace.span_begin tracer sched_span (Array.length choices);
        ops_checked := !ops_checked + Array.length exec.calls;
        (match
           Linearize.check ~initial:w.initial ~final:(dump_live cfg exec) exec.calls
         with
        | Ok () -> ()
        | Error detail ->
            violations :=
              {
                kind = Linearizability;
                detail;
                counterexample =
                  mk_cx cfg name Linearizability ~decisions:choices ~crash:None
                    ~detail;
              }
              :: !violations);
        if crash_enabled then crash_sweep choices exec.fence_points;
        Trace.span_end tracer sched_span
      in
      let exploration =
        match cfg.explorer with
        | Dfs ->
            Schedule.dfs ~max_schedules:cfg.schedules (fun ~prefix ->
                let rc = Schedule.recorder () in
                let policy = Schedule.record_policy ~prefix ~fallback:Mcsim.Fifo rc in
                check_schedule policy rc;
                (Schedule.decisions rc, ()))
        | Pct ->
            Schedule.pct ~schedules:cfg.schedules ~seed:cfg.seed (fun ~policy ->
                let rc = Schedule.recorder () in
                let policy = Schedule.record_policy ~fallback:policy rc in
                check_schedule policy rc)
      in
      if crash_enabled && !crash_budget <= 0 then
        crash_note :=
          Some
            (Printf.sprintf "crash budget (%d executions) exhausted; sweep truncated"
               cfg.crash_budget);
      {
        index = name;
        schedules_run = exploration.Schedule.schedules;
        exhausted = exploration.Schedule.exhausted;
        crash_runs = !crash_runs;
        ops_checked = !ops_checked;
        violations = List.rev !violations;
        skipped = None;
        crash_note = !crash_note;
      }

let config_of_counterexample (cx : Cx.t) =
  let w = cx.Cx.workload in
  {
    default with
    writers = w.Cx.writers;
    readers = w.Cx.readers;
    ops_per_thread = w.Cx.ops_per_thread;
    keyspace = w.Cx.keyspace;
    prefill = w.Cx.prefill;
    seed = w.Cx.seed;
    non_tso = w.Cx.non_tso;
    elide_flush = w.Cx.elide_flush;
    node_bytes = cx.Cx.node_bytes;
  }

(* Deterministic re-execution of one recorded counterexample: replay
   the decision sequence and re-run exactly the recorded check. *)
let replay ?(tracer = Trace.null) (cx : Cx.t) =
  ignore tracer;
  let cfg = config_of_counterexample cx in
  let name = cx.Cx.index in
  let d = Registry.find_exn name in
  match checkable d cfg with
  | Some reason -> { (empty_report name) with skipped = Some reason }
  | None ->
      let w = gen_workload cfg in
      let violations = ref [] in
      let ops_checked = ref 0 in
      let crash_runs = ref 0 in
      (match cx.Cx.crash with
      | None ->
          let rc = Schedule.recorder () in
          let policy =
            Schedule.record_policy ~prefix:cx.Cx.decisions ~fallback:Mcsim.Fifo rc
          in
          let exec = execute cfg d w ~policy ~crash_at:None in
          ops_checked := Array.length exec.calls;
          (match
             Linearize.check ~initial:w.initial ~final:(dump_live cfg exec)
               exec.calls
           with
          | Ok () -> ()
          | Error detail ->
              violations :=
                [
                  {
                    kind = Linearizability;
                    detail;
                    counterexample = { cx with Cx.detail = detail };
                  };
                ])
      | Some crash ->
          incr crash_runs;
          let rc = Schedule.recorder () in
          let policy =
            Schedule.record_policy ~prefix:cx.Cx.decisions ~fallback:Mcsim.Fifo rc
          in
          let exec = execute cfg d w ~policy ~crash_at:(Some crash.Cx.store_count) in
          ops_checked := Array.length exec.calls;
          List.iter
            (fun (kind, detail) ->
              violations :=
                { kind; detail; counterexample = { cx with Cx.detail = detail } }
                :: !violations)
            (validate_crash cfg d w exec crash));
      {
        index = name;
        schedules_run = 1;
        exhausted = false;
        crash_runs = !crash_runs;
        ops_checked = !ops_checked;
        violations = List.rev !violations;
        skipped = None;
        crash_note = None;
      }

let report_summary r =
  match r.skipped with
  | Some reason -> Printf.sprintf "%s: skipped (%s)" r.index reason
  | None ->
      let lin, tol, dur =
        List.fold_left
          (fun (l, t, u) v ->
            match v.kind with
            | Linearizability -> (l + 1, t, u)
            | Tolerance -> (l, t + 1, u)
            | Durability -> (l, t, u + 1))
          (0, 0, 0) r.violations
      in
      Printf.sprintf
        "%s: %d schedules%s, %d ops checked, %d crash executions -> %d \
         linearizability, %d tolerance, %d durability violations%s"
        r.index r.schedules_run
        (if r.exhausted then " (exhaustive)" else "")
        r.ops_checked r.crash_runs lin tol dur
        (match r.crash_note with None -> "" | Some n -> " [" ^ n ^ "]")
