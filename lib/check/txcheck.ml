module Arena = Ff_pmem.Arena
module Pconfig = Ff_pmem.Config
module Storelog = Ff_pmem.Storelog
module Mcsim = Ff_mcsim.Mcsim
module Prng = Ff_util.Prng
module Intf = Ff_index.Intf
module D = Ff_index.Descriptor
module Registry = Ff_index.Registry
module Locks = Ff_index.Locks
module Trace = Ff_trace.Trace
module Tx = Ff_tx.Tx
module Cx = Counterexample

type config = {
  txns : int;
  ops_per_txn : int;
  readers : int;
  keyspace : int;
  prefill : int;
  seed : int;
  path : Tx.path;
  torn_commit : bool;
  explorer : Check.explorer;
  schedules : int;
  max_crash_points : int;
  crash_budget : int;
  non_tso : bool;
  node_bytes : int option;
}

let default =
  {
    txns = 3;
    ops_per_txn = 2;
    readers = 1;
    keyspace = 8;
    prefill = 4;
    seed = 1;
    path = Tx.Logged;
    torn_commit = false;
    explorer = Check.Pct;
    schedules = 8;
    max_crash_points = 12;
    crash_budget = 192;
    non_tso = false;
    node_bytes = None;
  }

let path_name = function Tx.Logged -> "logged" | Tx.Shadow -> "shadow"

let path_of_name = function
  | "logged" -> Tx.Logged
  | "shadow" -> Tx.Shadow
  | s -> invalid_arg (Printf.sprintf "counterexample: unknown tx path %S" s)

let checkable d cfg =
  if not d.D.caps.D.txnable then Some "not txnable"
  else if not (d.D.caps.D.is_persistent && d.D.caps.D.has_recovery) then
    Some "not crash-checkable: volatile or no recovery"
  else if cfg.txns < 1 then Some "need at least 1 transaction"
  else if
    cfg.readers > 0
    && (not (D.supports_lock_mode d Locks.Sim))
    && not d.D.caps.D.lock_free_reads
  then Some "readers need Sim locks or lock-free reads"
  else None

(* ------------------------------------------------------------------ *)
(* Deterministic workload generation                                   *)
(* ------------------------------------------------------------------ *)

type txop = Put of int * int | Del of int

type workload = {
  txs : txop list array;          (* writer script, one entry per transaction *)
  reader_scripts : int list array;
  initial : (int * int) list;
  writable : (int * int) list;    (* every binding any put (or prefill) may write *)
  states : (int * int) list array; (* states.(i) = sorted state after i commits *)
}

let value_of n = (2 * n) + 1

let apply_tx state ops =
  List.fold_left
    (fun st op ->
      match op with
      | Put (k, v) -> (k, v) :: List.remove_assoc k st
      | Del k -> List.remove_assoc k st)
    state ops

let gen_workload cfg =
  let vcount = ref 0 in
  let fresh_value () =
    let v = value_of !vcount in
    incr vcount;
    v
  in
  let initial =
    List.init (min cfg.prefill cfg.keyspace) (fun i -> (i + 1, fresh_value ()))
  in
  let master = Prng.create cfg.seed in
  let wrng = Prng.split master in
  let txs =
    Array.init cfg.txns (fun _ ->
        List.init cfg.ops_per_txn (fun _ ->
            let key = 1 + Prng.int wrng cfg.keyspace in
            if Prng.int wrng 4 = 0 then Del key
            else Put (key, fresh_value ())))
  in
  let reader_scripts =
    Array.init cfg.readers (fun _ ->
        let rng = Prng.split master in
        List.init
          (cfg.txns * cfg.ops_per_txn)
          (fun _ -> 1 + Prng.int rng cfg.keyspace))
  in
  let writable =
    initial
    @ Array.fold_left
        (fun acc ops ->
          List.fold_left
            (fun acc op ->
              match op with Put (k, v) -> (k, v) :: acc | Del _ -> acc)
            acc ops)
        [] txs
  in
  let states = Array.make (cfg.txns + 1) [] in
  states.(0) <- List.sort compare initial;
  for i = 1 to cfg.txns do
    states.(i) <- List.sort compare (apply_tx states.(i - 1) txs.(i - 1))
  done;
  { txs; reader_scripts; initial; writable; states }

(* ------------------------------------------------------------------ *)
(* One controlled execution                                            *)
(* ------------------------------------------------------------------ *)

type exec = {
  arena : Arena.t;
  ops : Intf.ops;
  dcfg : D.config;
  committed : int;       (* commits that returned before the crash *)
  commit_started : int;  (* transactions whose commit call began *)
  tx_ops : int;          (* transactional ops executed *)
  fabricated : (int * int) option;  (* concurrent reader saw an
                                       out-of-universe binding *)
  fence_points : int list;
  crashed : bool;
}

(* Mirror of [Check.execute] with a transactional writer: build +
   prefill + transaction-manager creation happen before the event sink
   and crash plan are armed, then the writer's transaction script and
   the reader scripts run under the policy at quantum 1. *)
let execute cfg d w ~policy ~crash_at =
  let pconf =
    if cfg.non_tso then
      { Pconfig.default with Pconfig.memory_order = Pconfig.Non_tso }
    else Pconfig.default
  in
  let arena = Arena.create ~config:pconf ~words:(1 lsl 20) () in
  let lock_mode =
    if D.supports_lock_mode d Locks.Sim then Locks.Sim else Locks.Single
  in
  let dcfg = { D.default_config with D.node_bytes = cfg.node_bytes; lock_mode } in
  let ops = Registry.build ~config:dcfg d.D.name arena in
  ignore
    (Mcsim.run ~cores:1 ~arena
       [| (fun _ -> List.iter (fun (k, v) -> ops.Intf.insert k v) w.initial) |]);
  let mgr = Tx.create ~path:cfg.path arena ops in
  if cfg.torn_commit then Tx.set_torn_commit mgr true;
  let fences = ref [] in
  let mark _ = fences := Arena.store_count arena :: !fences in
  let nop = fun (_ : int) -> () and nop2 = fun (_ : int) (_ : int) -> () in
  Arena.set_event_sink arena
    (Some
       {
         Arena.ev_store = nop;
         ev_flush = mark;
         ev_fence = (fun () -> mark 0);
         ev_alloc = nop2;
         ev_free = nop2;
         ev_crash = (fun () -> ());
       });
  (match crash_at with
  | Some k -> Arena.set_crash_plan arena (Arena.After_stores k)
  | None -> ());
  let committed = ref 0 in
  let commit_started = ref 0 in
  let tx_ops = ref 0 in
  let fabricated = ref None in
  let writer _ =
    Array.iteri
      (fun i txops ->
        let tx = Tx.begin_tx mgr in
        List.iter
          (fun op ->
            incr tx_ops;
            match op with
            | Put (k, v) -> Tx.put tx k v
            | Del k -> ignore (Tx.del tx k))
          txops;
        commit_started := i + 1;
        Tx.commit tx;
        committed := i + 1)
      w.txs
  in
  let reader rid _ =
    List.iter
      (fun k ->
        match ops.Intf.search k with
        | Some v when not (List.mem (k, v) w.writable) ->
            if !fabricated = None then fabricated := Some (k, v)
        | _ -> ())
      w.reader_scripts.(rid)
  in
  let bodies =
    Array.append [| writer |] (Array.init cfg.readers (fun rid -> reader rid))
  in
  let crashed =
    try
      ignore (Mcsim.run ~cores:1 ~quantum_ns:1 ~policy ~arena bodies);
      false
    with Arena.Crashed -> true
  in
  Arena.set_event_sink arena None;
  {
    arena;
    ops;
    dcfg;
    committed = !committed;
    commit_started = !commit_started;
    tx_ops = !tx_ops;
    fabricated = !fabricated;
    fence_points = List.sort_uniq compare !fences;
    crashed;
  }

let dump_live cfg exec =
  let acc = ref [] in
  ignore
    (Mcsim.run ~cores:1 ~arena:exec.arena
       [|
         (fun _ ->
           for k = cfg.keyspace downto 1 do
             match exec.ops.Intf.search k with
             | Some v -> acc := (k, v) :: !acc
             | None -> ()
           done);
       |]);
  List.sort compare !acc

let dump_single cfg ops =
  let acc = ref [] in
  for k = cfg.keyspace downto 1 do
    match ops.Intf.search k with Some v -> acc := (k, v) :: !acc | None -> ()
  done;
  List.sort compare !acc

(* ------------------------------------------------------------------ *)
(* Crash validation                                                    *)
(* ------------------------------------------------------------------ *)

let mode_of_crash (c : Cx.crash) =
  match c.Cx.mode with
  | "keep_none" -> Storelog.Keep_none
  | "keep_all" -> Storelog.Keep_all
  | "random_eviction" -> Storelog.Random_eviction (Prng.create c.Cx.crash_seed)
  | "non_tso_cutoff" ->
      let cutoff =
        match c.Cx.cutoff with
        | Some e -> e
        | None -> invalid_arg "counterexample: non_tso_cutoff without cutoff"
      in
      Storelog.Non_tso_cutoff (cutoff, Prng.create c.Cx.crash_seed)
  | s -> invalid_arg (Printf.sprintf "counterexample: unknown crash mode %S" s)

let show_state st =
  "{"
  ^ String.concat "; "
      (List.map (fun (k, v) -> Printf.sprintf "%d->%d" k v) st)
  ^ "}"

(* Crash the execution, recover (index recovery then transaction
   recovery over the persisted log), and compare the observed state
   against the durable-serializability oracle. *)
let validate_crash cfg d w exec (crash : Cx.crash) =
  let failures = ref [] in
  Arena.power_fail exec.arena (mode_of_crash crash);
  let sdcfg = { exec.dcfg with D.lock_mode = Locks.Single } in
  (if d.D.caps.D.lock_free_reads then
     match
       let o = d.D.open_existing sdcfg exec.arena in
       let bad = ref None in
       for k = 1 to cfg.keyspace do
         match o.Intf.search k with
         | Some v when not (List.mem (k, v) w.writable) ->
             if !bad = None then bad := Some (k, v)
         | _ -> ()
       done;
       !bad
     with
     | None -> ()
     | Some (k, v) ->
         failures :=
           ( Check.Tolerance,
             Printf.sprintf
               "pre-recovery reader returned fabricated binding %d -> %d" k v )
           :: !failures
     | exception e ->
         failures :=
           (Check.Tolerance, "pre-recovery reader raised: " ^ Printexc.to_string e)
           :: !failures);
  (* A durable commit word covering an untrusted payload is direct
     evidence of inverted commit ordering — flag it before recovery
     truncates the log. *)
  (match Ff_pmem.Txlog.attach exec.arena with
  | Some l when Ff_pmem.Txlog.commit_torn l ->
      failures :=
        ( Check.Durability,
          "torn commit: commit record durable without its payload" )
        :: !failures
  | _ -> ());
  (match
     let o = d.D.open_existing sdcfg exec.arena in
     o.Intf.recover ();
     let mgr = Tx.create ~path:cfg.path exec.arena o in
     ignore (Tx.recover mgr);
     dump_single cfg o
   with
  | dump ->
      let c = exec.committed in
      let ok_committed = dump = w.states.(c) in
      let ok_inflight =
        exec.commit_started > c
        && exec.commit_started <= cfg.txns
        && dump = w.states.(exec.commit_started)
      in
      if not (ok_committed || ok_inflight) then begin
        let boundary = ref None in
        Array.iteri
          (fun i st -> if !boundary = None && dump = st then boundary := Some i)
          w.states;
        let detail =
          match !boundary with
          | Some i ->
              Printf.sprintf
                "durable serializability: %d transactions committed (commit \
                 started on %d) but recovered state matches boundary %d"
                c exec.commit_started i
          | None ->
              Printf.sprintf
                "atomicity: recovered state %s matches no transaction boundary \
                 (%d committed, expected %s)"
                (show_state dump) c
                (show_state w.states.(c))
        in
        failures := (Check.Durability, detail) :: !failures
      end
  | exception e ->
      failures :=
        (Check.Durability, "tx recovery raised: " ^ Printexc.to_string e)
        :: !failures);
  List.rev !failures

(* ------------------------------------------------------------------ *)
(* Top-level engines                                                   *)
(* ------------------------------------------------------------------ *)

let sample_evenly max_n lst =
  let n = List.length lst in
  if n <= max_n then lst
  else
    let arr = Array.of_list lst in
    List.init max_n (fun i -> arr.(i * n / max_n))

let mk_cx cfg index kind ~decisions ~crash ~detail =
  {
    Cx.index;
    node_bytes = cfg.node_bytes;
    kind = Check.kind_to_string kind;
    workload =
      {
        Cx.writers = 1;
        readers = cfg.readers;
        ops_per_thread = cfg.ops_per_txn;
        keyspace = cfg.keyspace;
        prefill = cfg.prefill;
        seed = cfg.seed;
        non_tso = cfg.non_tso;
        elide_flush = false;
      };
    tx =
      Some
        { Cx.path = path_name cfg.path; torn = cfg.torn_commit; txns = cfg.txns };
    snap = None;
    rebal = None;
    repl = None;
    decisions;
    crash;
    detail;
  }

let empty_report index =
  {
    Check.index;
    schedules_run = 0;
    exhausted = false;
    crash_runs = 0;
    ops_checked = 0;
    violations = [];
    skipped = None;
    crash_note = None;
  }

let run ?(config = default) ?(tracer = Trace.null) name =
  let cfg = config in
  let d = Registry.find_exn name in
  match checkable d cfg with
  | Some reason -> { (empty_report name) with Check.skipped = Some reason }
  | None ->
      let w = gen_workload cfg in
      let sched_span = Trace.intern tracer "txcheck.schedule" in
      let crash_inst = Trace.intern tracer "txcheck.crash_point" in
      let crash_budget = ref cfg.crash_budget in
      let crash_runs = ref 0 in
      let ops_checked = ref 0 in
      let violations = ref [] in
      let crash_note = ref None in
      let add kind detail ~decisions ~crash =
        violations :=
          {
            Check.kind;
            detail;
            counterexample = mk_cx cfg name kind ~decisions ~crash ~detail;
          }
          :: !violations
      in
      let crash_run choices crash =
        incr crash_runs;
        decr crash_budget;
        Trace.instant tracer crash_inst crash.Cx.store_count;
        let rc = Schedule.recorder () in
        let policy =
          Schedule.record_policy ~prefix:choices ~fallback:Mcsim.Fifo rc
        in
        let exec = execute cfg d w ~policy ~crash_at:(Some crash.Cx.store_count) in
        List.iter
          (fun (kind, detail) ->
            add kind detail ~decisions:choices ~crash:(Some crash))
          (validate_crash cfg d w exec crash)
      in
      let crash_sweep choices fence_points =
        let points = sample_evenly cfg.max_crash_points fence_points in
        List.iter
          (fun k ->
            if !crash_budget > 0 then begin
              let base =
                [
                  { Cx.store_count = k; mode = "keep_none"; crash_seed = k; cutoff = None };
                  { Cx.store_count = k; mode = "keep_all"; crash_seed = k; cutoff = None };
                  {
                    Cx.store_count = k;
                    mode = "random_eviction";
                    crash_seed = k;
                    cutoff = None;
                  };
                ]
              in
              let non_tso_modes =
                if not cfg.non_tso then []
                else begin
                  let rc = Schedule.recorder () in
                  let policy =
                    Schedule.record_policy ~prefix:choices ~fallback:Mcsim.Fifo rc
                  in
                  let exec = execute cfg d w ~policy ~crash_at:(Some k) in
                  List.map
                    (fun e ->
                      {
                        Cx.store_count = k;
                        mode = "non_tso_cutoff";
                        crash_seed = k;
                        cutoff = Some e;
                      })
                    (Arena.pending_epochs exec.arena)
                end
              in
              List.iter
                (fun crash -> if !crash_budget > 0 then crash_run choices crash)
                (base @ non_tso_modes)
            end)
          points
      in
      let check_schedule policy rc =
        let exec = execute cfg d w ~policy ~crash_at:None in
        let choices = Schedule.choices rc in
        Trace.span_begin tracer sched_span (Array.length choices);
        ops_checked := !ops_checked + exec.tx_ops;
        (match exec.fabricated with
        | Some (k, v) ->
            let detail =
              Printf.sprintf "concurrent reader saw fabricated binding %d -> %d"
                k v
            in
            add Check.Tolerance detail ~decisions:choices ~crash:None
        | None -> ());
        (if not exec.crashed then
           let dump = dump_live cfg exec in
           if dump <> w.states.(cfg.txns) then
             let detail =
               Printf.sprintf
                 "serializability: final state %s diverges from the committed \
                  schedule %s"
                 (show_state dump)
                 (show_state w.states.(cfg.txns))
             in
             add Check.Durability detail ~decisions:choices ~crash:None);
        crash_sweep choices exec.fence_points;
        Trace.span_end tracer sched_span
      in
      let exploration =
        match cfg.explorer with
        | Check.Dfs ->
            Schedule.dfs ~max_schedules:cfg.schedules (fun ~prefix ->
                let rc = Schedule.recorder () in
                let policy =
                  Schedule.record_policy ~prefix ~fallback:Mcsim.Fifo rc
                in
                check_schedule policy rc;
                (Schedule.decisions rc, ()))
        | Check.Pct ->
            Schedule.pct ~schedules:cfg.schedules ~seed:cfg.seed (fun ~policy ->
                let rc = Schedule.recorder () in
                let policy = Schedule.record_policy ~fallback:policy rc in
                check_schedule policy rc)
      in
      if !crash_budget <= 0 then
        crash_note :=
          Some
            (Printf.sprintf
               "crash budget (%d executions) exhausted; sweep truncated"
               cfg.crash_budget);
      {
        Check.index = name;
        schedules_run = exploration.Schedule.schedules;
        exhausted = exploration.Schedule.exhausted;
        crash_runs = !crash_runs;
        ops_checked = !ops_checked;
        violations = List.rev !violations;
        skipped = None;
        crash_note = !crash_note;
      }

let config_of_counterexample (cx : Cx.t) =
  match cx.Cx.tx with
  | None -> invalid_arg "Txcheck: counterexample lacks the tx extension"
  | Some x ->
      let w = cx.Cx.workload in
      {
        default with
        txns = x.Cx.txns;
        ops_per_txn = w.Cx.ops_per_thread;
        readers = w.Cx.readers;
        keyspace = w.Cx.keyspace;
        prefill = w.Cx.prefill;
        seed = w.Cx.seed;
        path = path_of_name x.Cx.path;
        torn_commit = x.Cx.torn;
        non_tso = w.Cx.non_tso;
        node_bytes = cx.Cx.node_bytes;
      }

let replay ?(tracer = Trace.null) (cx : Cx.t) =
  ignore tracer;
  let cfg = config_of_counterexample cx in
  let name = cx.Cx.index in
  let d = Registry.find_exn name in
  match checkable d cfg with
  | Some reason -> { (empty_report name) with Check.skipped = Some reason }
  | None ->
      let w = gen_workload cfg in
      let violations = ref [] in
      let ops_checked = ref 0 in
      let crash_runs = ref 0 in
      let record kind detail =
        violations :=
          { Check.kind; detail; counterexample = { cx with Cx.detail = detail } }
          :: !violations
      in
      (match cx.Cx.crash with
      | None ->
          let rc = Schedule.recorder () in
          let policy =
            Schedule.record_policy ~prefix:cx.Cx.decisions ~fallback:Mcsim.Fifo rc
          in
          let exec = execute cfg d w ~policy ~crash_at:None in
          ops_checked := exec.tx_ops;
          (match exec.fabricated with
          | Some (k, v) ->
              record Check.Tolerance
                (Printf.sprintf
                   "concurrent reader saw fabricated binding %d -> %d" k v)
          | None -> ());
          if not exec.crashed then begin
            let dump = dump_live cfg exec in
            if dump <> w.states.(cfg.txns) then
              record Check.Durability
                (Printf.sprintf
                   "serializability: final state %s diverges from the \
                    committed schedule %s"
                   (show_state dump)
                   (show_state w.states.(cfg.txns)))
          end
      | Some crash ->
          incr crash_runs;
          let rc = Schedule.recorder () in
          let policy =
            Schedule.record_policy ~prefix:cx.Cx.decisions ~fallback:Mcsim.Fifo rc
          in
          let exec =
            execute cfg d w ~policy ~crash_at:(Some crash.Cx.store_count)
          in
          ops_checked := exec.tx_ops;
          List.iter
            (fun (kind, detail) -> record kind detail)
            (validate_crash cfg d w exec crash));
      {
        Check.index = name;
        schedules_run = 1;
        exhausted = false;
        crash_runs = !crash_runs;
        ops_checked = !ops_checked;
        violations = List.rev !violations;
        skipped = None;
        crash_note = None;
      }
