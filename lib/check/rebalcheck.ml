(* Model checking for elastic resharding: crash points swept through
   the background copy, the dual-write window and the cutover commit
   of a live split / merge / migrate, under scheduler-controlled
   interleavings with a concurrent writer.

   The oracle is the rebalancer's contract: ZERO LOST ACKNOWLEDGED
   WRITES.  The writer applies a deterministic commit log through the
   routed serving layer and counts fully-applied ops (no yield point
   separates an op's return from the increment, so the count is
   exact).  After a crash anywhere in the protocol, the surviving
   authority — resolved from the decision word alone — must read back
   the model state at that prefix, give or take the one op that was
   in flight.

   The drop-delta mutant ([Rebalance.mutant_drop_delta]) discards the
   dual-written records at replay; the sweep must catch it as a lost
   acknowledged write, proving the oracle has teeth. *)

module Arena = Ff_pmem.Arena
module Storelog = Ff_pmem.Storelog
module Mcsim = Ff_mcsim.Mcsim
module Prng = Ff_util.Prng
module Intf = Ff_index.Intf
module D = Ff_index.Descriptor
module Registry = Ff_index.Registry
module Trace = Ff_trace.Trace
module Shard = Ff_shard.Shard
module Rebalance = Ff_rebalance.Rebalance
module Cx = Counterexample

type rkind = Rb_split | Rb_merge | Rb_migrate

let rkind_to_string = function
  | Rb_split -> "split"
  | Rb_merge -> "merge"
  | Rb_migrate -> "migrate"

let rkind_of_string = function
  | "split" -> Rb_split
  | "merge" -> Rb_merge
  | "migrate" -> Rb_migrate
  | s -> invalid_arg (Printf.sprintf "Rebalcheck: unknown kind %S" s)

type config = {
  kind : rkind;
  ops : int;      (* writer commit-log length *)
  keyspace : int;
  prefill : int;
  seed : int;
  mutant : bool;  (* arm the drop-delta mutant *)
  explorer : Check.explorer;
  schedules : int;
  max_crash_points : int;
  crash_budget : int;
  node_bytes : int option;
}

let default =
  {
    kind = Rb_split;
    ops = 10;
    keyspace = 8;
    prefill = 4;
    seed = 1;
    mutant = false;
    explorer = Check.Pct;
    schedules = 4;
    max_crash_points = 8;
    crash_budget = 64;
    node_bytes = None;
  }

let checkable d cfg =
  let c = d.D.caps in
  if not (c.D.is_persistent && c.D.has_recovery) then
    Some "not crash-checkable: volatile or no recovery"
  else if not c.D.has_range then Some "no range scans (copy needs them)"
  else if
    (cfg.kind = Rb_split || cfg.kind = Rb_merge) && not c.D.relocatable_root
  then Some "root not relocatable (composite split/merge carves one arena)"
  else if cfg.ops < 1 || cfg.keyspace < 4 then
    Some "need at least 1 op and keyspace >= 4"
  else None

(* ------------------------------------------------------------------ *)
(* Deterministic workload                                              *)
(* ------------------------------------------------------------------ *)

type wop = Put of int * int | Del of int

type workload = {
  wops : wop array;
  initial : (int * int) list;
  states : (int * int) list array; (* model state after i log entries *)
  pivot : int;
}

let value_of n = (2 * n) + 1

let apply_op state = function
  | Put (k, v) -> (k, v) :: List.remove_assoc k state
  | Del k -> List.remove_assoc k state

let gen_workload cfg =
  let vcount = ref 0 in
  let fresh_value () =
    let v = value_of !vcount in
    incr vcount;
    v
  in
  let initial =
    List.init (min cfg.prefill cfg.keyspace) (fun i -> (i + 1, fresh_value ()))
  in
  let rng = Prng.create cfg.seed in
  let wops =
    Array.init cfg.ops (fun _ ->
        let key = 1 + Prng.int rng cfg.keyspace in
        if Prng.int rng 4 = 0 then Del key else Put (key, fresh_value ()))
  in
  let states = Array.make (Array.length wops + 1) [] in
  states.(0) <- List.sort compare initial;
  Array.iteri
    (fun i op -> states.(i + 1) <- List.sort compare (apply_op states.(i) op))
    wops;
  { wops; initial; states; pivot = (cfg.keyspace / 2) + 1 }

(* ------------------------------------------------------------------ *)
(* One controlled execution                                            *)
(* ------------------------------------------------------------------ *)

type exec = {
  arenas : Arena.t array; (* [src] or [src; dst] (migrate) *)
  dcfg : D.config;
  applied : int;          (* writer ops fully applied (acknowledged) *)
  rebalanced : bool;      (* the rebalancer thread ran to completion *)
  shards_after : int;
  dst_live : bool;        (* migrate: shard 0 now serves from dst *)
  fence_points : (int * int) list; (* (arena, store_count) at fences *)
  crashed : bool;
  read_live : int -> int option; (* routed search on the live ensemble *)
}

(* Writer applies the commit log through the routed serving layer
   while the rebalancer thread splits / merges / migrates underneath
   it.  Fence marks on every involved arena are the crash-sweep
   candidates, so the sweep covers plan publication, the background
   copy, dual-write application, cutover and the finish phase. *)
let execute cfg name w ~policy ~crash_at =
  let dcfg = { D.default_config with D.node_bytes = cfg.node_bytes } in
  let src = Arena.create ~words:(1 lsl 20) () in
  let dst =
    match cfg.kind with
    | Rb_migrate -> Some (Arena.create ~words:(1 lsl 20) ())
    | Rb_split | Rb_merge -> None
  in
  let t =
    match cfg.kind with
    | Rb_split ->
        Shard.create_composite ~config:dcfg ~inner:name
          ~partition:(Shard.Partition.range ~bounds:[||])
          src
    | Rb_merge ->
        Shard.create_composite ~config:dcfg ~inner:name
          ~partition:(Shard.Partition.range ~bounds:[| w.pivot |])
          src
    | Rb_migrate ->
        (* Serving mode builds its own arena; we adopt it as [src]. *)
        let t =
          Shard.create ~inner_config:dcfg ~group:false ~inner:name ~shards:1 ()
        in
        t
  in
  let src =
    match cfg.kind with Rb_migrate -> (Shard.arenas t).(0) | _ -> src
  in
  let arenas =
    match dst with Some d -> [| src; d |] | None -> [| src |]
  in
  ignore
    (Mcsim.run ~cores:1 ~arena:src
       [|
         (fun _ ->
           List.iter (fun (k, v) -> Shard.insert t ~key:k ~value:v) w.initial);
       |]);
  let fences = ref [] in
  let sink aid a =
    let mark _ = fences := (aid, Arena.store_count a) :: !fences in
    let nop = fun (_ : int) -> () and nop2 = fun (_ : int) (_ : int) -> () in
    Arena.set_event_sink a
      (Some
         {
           Arena.ev_store = nop;
           ev_flush = mark;
           ev_fence = (fun () -> mark 0);
           ev_alloc = nop2;
           ev_free = nop2;
           ev_crash = (fun () -> ());
         })
  in
  Array.iteri (fun i a -> sink i a) arenas;
  (match crash_at with
  | Some (aid, k) when aid < Array.length arenas ->
      Arena.set_crash_plan arenas.(aid) (Arena.After_stores k)
  | Some _ | None -> ());
  let applied = ref 0 in
  let rebalanced = ref false in
  let writer _ =
    Array.iter
      (fun op ->
        (match op with
        | Put (k, v) -> Shard.insert t ~key:k ~value:v
        | Del k -> ignore (Shard.delete t k));
        incr applied)
      w.wops
  in
  let rebalancer _ =
    (* A tight throttle (one pair per chunk) stretches the background
       copy across many writer ops, maximising the dual-write window
       the checker must protect. *)
    let throttle = { Rebalance.bytes_per_ms = 16; chunk_ops = 1 } in
    (match cfg.kind with
    | Rb_split -> ignore (Rebalance.split ~throttle t ~shard:0 ~pivot:w.pivot)
    | Rb_merge -> ignore (Rebalance.merge ~throttle t ~left:0)
    | Rb_migrate ->
        ignore (Rebalance.migrate ~throttle t ~shard:0 ~dst:(Option.get dst)));
    rebalanced := true
  in
  let crashed =
    try
      ignore
        (Mcsim.run ~cores:1 ~quantum_ns:1 ~policy ~arena:src
           [| writer; rebalancer |]);
      false
    with Arena.Crashed -> true
  in
  Array.iter (fun a -> Arena.set_event_sink a None) arenas;
  let dst_live =
    match dst with
    | Some d -> (try Shard.instance_arena t 0 == d with _ -> false)
    | None -> false
  in
  {
    arenas;
    dcfg;
    applied = !applied;
    rebalanced = !rebalanced;
    shards_after = (try Shard.shards t with _ -> 0);
    dst_live;
    fence_points = List.sort_uniq compare !fences;
    crashed;
    read_live = (fun k -> Shard.search t k);
  }

(* ------------------------------------------------------------------ *)
(* Oracles                                                             *)
(* ------------------------------------------------------------------ *)

let show_binding = function
  | Some v -> string_of_int v
  | None -> "absent"

(* Zero lost acknowledged writes: every key must read back as the
   model state after [applied] ops; the single in-flight op (index
   [applied]) may or may not have landed, so the key it touches also
   accepts the next prefix's binding. *)
let check_prefix cfg w ~applied ~ctx read =
  let expect0 = w.states.(applied) in
  let expect1 =
    if applied < Array.length w.wops then Some w.states.(applied + 1) else None
  in
  let inflight_key =
    if applied < Array.length w.wops then
      match w.wops.(applied) with Put (k, _) -> Some k | Del k -> Some k
    else None
  in
  let failures = ref [] in
  for k = 1 to cfg.keyspace do
    let got = read k in
    let want0 = List.assoc_opt k expect0 in
    let ok =
      got = want0
      || (Some k = inflight_key
         && match expect1 with
            | Some st -> got = List.assoc_opt k st
            | None -> false)
    in
    if not ok && List.length !failures < 8 then
      failures :=
        ( Check.Durability,
          Printf.sprintf
            "lost acknowledged write (%s): key %d reads %s but the %d \
             acknowledged ops left %s"
            ctx k (show_binding got) applied (show_binding want0) )
        :: !failures
  done;
  List.rev !failures

(* Live run to completion: the rebalance finished, the topology
   changed shape, and the full commit log is visible. *)
let validate_live cfg w exec read =
  let failures = ref [] in
  if not exec.rebalanced then
    failures :=
      [ (Check.Tolerance, "rebalance did not complete in a crash-free run") ]
  else begin
    let expected_shards =
      match cfg.kind with Rb_split -> 2 | Rb_merge -> 1 | Rb_migrate -> 1
    in
    if exec.shards_after <> expected_shards then
      failures :=
        ( Check.Tolerance,
          Printf.sprintf "topology after %s: %d shards, expected %d"
            (rkind_to_string cfg.kind) exec.shards_after expected_shards )
        :: !failures;
    if cfg.kind = Rb_migrate && not exec.dst_live then
      failures :=
        (Check.Tolerance, "migrate completed but shard 0 still serves the old arena")
        :: !failures
  end;
  List.rev !failures @ check_prefix cfg w ~applied:exec.applied ~ctx:"live" read

let mode_of_crash (c : Cx.crash) =
  match c.Cx.mode with
  | "keep_none" -> Storelog.Keep_none
  | "keep_all" -> Storelog.Keep_all
  | "random_eviction" -> Storelog.Random_eviction (Prng.create c.Cx.crash_seed)
  | s -> invalid_arg (Printf.sprintf "counterexample: unknown crash mode %S" s)

(* Crash run: power-fail every involved arena, resolve the half-done
   rebalance from the decision word alone, reattach whatever authority
   survives, recover it, and hold it to the acknowledged prefix. *)
let validate_crash cfg name w exec (crash : Cx.crash) =
  let mode () = mode_of_crash crash in
  Array.iter (fun a -> Arena.power_fail a (mode ())) exec.arenas;
  match cfg.kind with
  | Rb_split | Rb_merge -> (
      let arena = exec.arenas.(0) in
      match
        ignore (Rebalance.resolve arena);
        let t2 = Shard.attach ~config:exec.dcfg ~inner:name arena in
        Shard.recover t2;
        t2
      with
      | t2 ->
          check_prefix cfg w ~applied:exec.applied ~ctx:"post-crash"
            (fun k -> Shard.search t2 k)
      | exception ex ->
          [
            ( Check.Durability,
              "post-crash reattach raised: " ^ Printexc.to_string ex );
          ])
  | Rb_migrate -> (
      let src = exec.arenas.(0) in
      let authority =
        match Rebalance.resolve src with
        | Rebalance.Resolved_migrated -> exec.arenas.(1)
        | _ -> src
      in
      match
        let o = Registry.open_existing authority in
        o.Intf.recover ();
        o
      with
      | o ->
          check_prefix cfg w ~applied:exec.applied ~ctx:"post-crash"
            (fun k -> o.Intf.search k)
      | exception ex ->
          [
            ( Check.Durability,
              "post-crash authority reopen raised: " ^ Printexc.to_string ex );
          ])

(* ------------------------------------------------------------------ *)
(* Top-level engines                                                   *)
(* ------------------------------------------------------------------ *)

let sample_evenly max_n lst =
  let n = List.length lst in
  if n <= max_n then lst
  else
    let arr = Array.of_list lst in
    List.init max_n (fun i -> arr.(i * n / max_n))

let mk_cx cfg index kind ~arena ~decisions ~crash ~detail =
  {
    Cx.index;
    node_bytes = cfg.node_bytes;
    kind = Check.kind_to_string kind;
    workload =
      {
        Cx.writers = 1;
        readers = 0;
        ops_per_thread = cfg.ops;
        keyspace = cfg.keyspace;
        prefill = cfg.prefill;
        seed = cfg.seed;
        non_tso = false;
        elide_flush = false;
      };
    tx = None;
    snap = None;
    rebal =
      Some
        {
          Cx.rb_kind = rkind_to_string cfg.kind;
          rb_mutant = cfg.mutant;
          rb_shards = (match cfg.kind with Rb_merge -> 2 | _ -> 1);
          rb_arena = arena;
        };
    repl = None;
    decisions;
    crash;
    detail;
  }

let empty_report index =
  {
    Check.index;
    schedules_run = 0;
    exhausted = false;
    crash_runs = 0;
    ops_checked = 0;
    violations = [];
    skipped = None;
    crash_note = None;
  }

let with_mutant armed f =
  let prev = !Rebalance.mutant_drop_delta in
  Rebalance.mutant_drop_delta := armed;
  Fun.protect ~finally:(fun () -> Rebalance.mutant_drop_delta := prev) f

let run ?(config = default) ?(tracer = Trace.null) name =
  let cfg = config in
  let d = Registry.find_exn name in
  match checkable d cfg with
  | Some reason -> { (empty_report name) with Check.skipped = Some reason }
  | None ->
      with_mutant cfg.mutant @@ fun () ->
      let w = gen_workload cfg in
      let sched_span = Trace.intern tracer "rebalcheck.schedule" in
      let crash_inst = Trace.intern tracer "rebalcheck.crash_point" in
      let crash_budget = ref cfg.crash_budget in
      let crash_runs = ref 0 in
      let ops_checked = ref 0 in
      let violations = ref [] in
      let crash_note = ref None in
      let add kind detail ~arena ~decisions ~crash =
        violations :=
          {
            Check.kind;
            detail;
            counterexample =
              mk_cx cfg name kind ~arena ~decisions ~crash ~detail;
          }
          :: !violations
      in
      let crash_run choices (aid, crash) =
        incr crash_runs;
        decr crash_budget;
        Trace.instant tracer crash_inst crash.Cx.store_count;
        let rc = Schedule.recorder () in
        let policy =
          Schedule.record_policy ~prefix:choices ~fallback:Mcsim.Fifo rc
        in
        let exec =
          execute cfg name w ~policy ~crash_at:(Some (aid, crash.Cx.store_count))
        in
        if exec.crashed then
          List.iter
            (fun (kind, detail) ->
              add kind detail ~arena:aid ~decisions:choices ~crash:(Some crash))
            (validate_crash cfg name w exec crash)
      in
      let crash_sweep choices fence_points =
        let points = sample_evenly cfg.max_crash_points fence_points in
        List.iter
          (fun (aid, k) ->
            List.iter
              (fun mode ->
                if !crash_budget > 0 then
                  crash_run choices
                    ( aid,
                      { Cx.store_count = k; mode; crash_seed = k; cutoff = None }
                    ))
              [ "keep_none"; "keep_all"; "random_eviction" ])
          points
      in
      let check_schedule policy rc =
        let exec = execute cfg name w ~policy ~crash_at:None in
        let choices = Schedule.choices rc in
        Trace.span_begin tracer sched_span (Array.length choices);
        ops_checked := !ops_checked + exec.applied;
        List.iter
          (fun (kind, detail) ->
            add kind detail ~arena:0 ~decisions:choices ~crash:None)
          (validate_live cfg w exec exec.read_live);
        crash_sweep choices exec.fence_points;
        Trace.span_end tracer sched_span
      in
      (* Schedule 0 is always the canonical round-robin interleaving:
         Fifo at quantum 1 drives the writer through the whole copy /
         dual-write window, the regime the dual-write protocol exists
         for.  PCT/DFS exploration then supplements it with biased and
         systematic orders (two-thread PCT often runs one thread to
         completion first, which never populates the delta). *)
      (let rc = Schedule.recorder () in
       let policy = Schedule.record_policy ~fallback:Mcsim.Fifo rc in
       check_schedule policy rc);
      let exploration =
        match cfg.explorer with
        | Check.Dfs ->
            Schedule.dfs ~max_schedules:cfg.schedules (fun ~prefix ->
                let rc = Schedule.recorder () in
                let policy =
                  Schedule.record_policy ~prefix ~fallback:Mcsim.Fifo rc
                in
                check_schedule policy rc;
                (Schedule.decisions rc, ()))
        | Check.Pct ->
            Schedule.pct ~schedules:cfg.schedules ~seed:cfg.seed (fun ~policy ->
                let rc = Schedule.recorder () in
                let policy = Schedule.record_policy ~fallback:policy rc in
                check_schedule policy rc)
      in
      if !crash_budget <= 0 then
        crash_note :=
          Some
            (Printf.sprintf
               "crash budget (%d executions) exhausted; sweep truncated"
               cfg.crash_budget);
      {
        Check.index = name;
        schedules_run = exploration.Schedule.schedules;
        exhausted = exploration.Schedule.exhausted;
        crash_runs = !crash_runs;
        ops_checked = !ops_checked;
        violations = List.rev !violations;
        skipped = None;
        crash_note = !crash_note;
      }

let config_of_counterexample (cx : Cx.t) =
  match cx.Cx.rebal with
  | None -> invalid_arg "Rebalcheck: counterexample lacks the rebal extension"
  | Some r ->
      let w = cx.Cx.workload in
      {
        default with
        kind = rkind_of_string r.Cx.rb_kind;
        ops = w.Cx.ops_per_thread;
        keyspace = w.Cx.keyspace;
        prefill = w.Cx.prefill;
        seed = w.Cx.seed;
        mutant = r.Cx.rb_mutant;
        node_bytes = cx.Cx.node_bytes;
      }

let replay ?(tracer = Trace.null) (cx : Cx.t) =
  ignore tracer;
  let cfg = config_of_counterexample cx in
  let name = cx.Cx.index in
  let d = Registry.find_exn name in
  let arena =
    match cx.Cx.rebal with Some r -> r.Cx.rb_arena | None -> 0
  in
  match checkable d cfg with
  | Some reason -> { (empty_report name) with Check.skipped = Some reason }
  | None ->
      with_mutant cfg.mutant @@ fun () ->
      let w = gen_workload cfg in
      let violations = ref [] in
      let ops_checked = ref 0 in
      let crash_runs = ref 0 in
      let record kind detail =
        violations :=
          { Check.kind; detail; counterexample = { cx with Cx.detail = detail } }
          :: !violations
      in
      let rc = Schedule.recorder () in
      let policy =
        Schedule.record_policy ~prefix:cx.Cx.decisions ~fallback:Mcsim.Fifo rc
      in
      (match cx.Cx.crash with
      | None ->
          let exec = execute cfg name w ~policy ~crash_at:None in
          ops_checked := exec.applied;
          List.iter
            (fun (kind, detail) -> record kind detail)
            (validate_live cfg w exec exec.read_live)
      | Some crash ->
          incr crash_runs;
          let exec =
            execute cfg name w ~policy
              ~crash_at:(Some (arena, crash.Cx.store_count))
          in
          ops_checked := exec.applied;
          List.iter
            (fun (kind, detail) -> record kind detail)
            (validate_crash cfg name w exec crash));
      {
        Check.index = name;
        schedules_run = 1;
        exhausted = false;
        crash_runs = !crash_runs;
        ops_checked = !ops_checked;
        violations = List.rev !violations;
        skipped = None;
        crash_note = None;
      }
