(** Replayable counterexample artifacts.

    A failure found by the model checker is fully determined by:
    the index and workload parameters (every script is derived from
    the seed), the recorded scheduling decisions, and — for crash
    failures — the crash point (absolute store count), crash-mode
    name, PRNG seed and optional epoch cutoff.  This module
    round-trips that tuple through JSON so `ffcli check --replay`
    can re-execute it deterministically on any build. *)

type workload = {
  writers : int;
  readers : int;
  ops_per_thread : int;
  keyspace : int;
  prefill : int;
  seed : int;
  non_tso : bool;
      (** arena ran with [Non_tso] memory order (affects fence
          placement, hence execution determinism) *)
  elide_flush : bool;
      (** fault injection was active (mutant run, test-only) *)
}

type crash = {
  store_count : int;  (** crash fires at this absolute store count *)
  mode : string;      (** "keep_none" | "keep_all" | "random_eviction"
                          | "non_tso_cutoff" *)
  crash_seed : int;
  cutoff : int option;  (** epoch cutoff for "non_tso_cutoff" *)
}

type tx_info = {
  path : string;  (** commit path: "logged" | "shadow" *)
  torn : bool;    (** torn-commit mutant was active *)
  txns : int;     (** transactions in the writer script *)
}
(** Transaction-checker extension ({!Txcheck}).  Serialized as an
    optional ["tx"] member — absent/[null] for per-op counterexamples
    — so pre-transaction artifacts still parse (version stays 1). *)

type snap_info = {
  mutant : bool;  (** read-latest mutant was active *)
  rounds : int;   (** writer rounds in the script *)
}
(** Snapshot-checker extension ({!Snapcheck}).  Serialized as an
    optional ["snap"] member with the same tolerant-parse convention
    as [tx] (version stays 1). *)

type rebal_info = {
  rb_kind : string; (** "split" | "merge" | "migrate" *)
  rb_mutant : bool; (** drop-delta mutant was active *)
  rb_shards : int;  (** shard count before the rebalance *)
  rb_arena : int;   (** crash-plan arena: 0 = source, 1 = migrate dst *)
}
(** Rebalance-checker extension ({!Rebalcheck}).  Serialized as an
    optional ["rebal"] member with the same tolerant-parse convention
    as [tx] and [snap] (version stays 1). *)

type repl_info = {
  rp_mutant : bool;     (** ack-before-replicate mutant was active *)
  rp_nodes : int;       (** cluster node count *)
  rp_shards : int;      (** shards per node ensemble *)
  rp_fault_seed : int;  (** fabric fault-plan seed *)
  rp_kill_at : int;     (** kill the primary after this many acks; -1 = never *)
  rp_partition : bool;  (** partition primary/backup before the kill *)
  rp_recovery : string;
      (** what follows the kill: ["failover"] (promote the backup, the
          victim rejoins as a backup at settle), ["restart"] (the
          victim restarts in place, still the route primary, with no
          failover), or ["restart_refail"] (restart in place, then a
          second kill with a forced failover later in the script) *)
}
(** Replication-checker extension ({!Replcheck}).  Serialized as an
    optional ["repl"] member with the same tolerant-parse convention
    as [tx], [snap] and [rebal] (version stays 1). *)

type t = {
  index : string;       (** registry name *)
  node_bytes : int option;
  kind : string;        (** "linearizability" | "tolerance" | "durability" *)
  workload : workload;
  tx : tx_info option;  (** present iff produced by {!Txcheck} *)
  snap : snap_info option;  (** present iff produced by {!Snapcheck} *)
  rebal : rebal_info option;  (** present iff produced by {!Rebalcheck} *)
  repl : repl_info option;  (** present iff produced by {!Replcheck} *)
  decisions : int array;
  crash : crash option;
  detail : string;      (** human-readable failure description *)
}

val version : int

val to_json : t -> string
val of_json : string -> (t, string) result
val save : t -> string -> unit
val load : string -> (t, string) result
