(** Durable-serializability checker for the transaction layer.

    Where {!Check} validates individual index operations, this engine
    validates whole {!Ff_tx.Tx} transactions: one writer thread runs a
    deterministic script of multi-key transactions while lock-free
    reader threads observe, the schedule x crash product is explored
    exactly as in {!Check}, and every crash point is replayed {e
    through transaction recovery} (index [recover] first, then
    {!Ff_tx.Tx.recover} over the persisted log).

    The durable-serializability oracle: with [C] = transactions whose
    commit call returned before the crash, the post-recovery state
    must equal the state after exactly [C] committed transactions — or
    after [C + 1] iff transaction [C + 1] had entered its commit call
    (an in-flight commit may land atomically or not at all, never
    partially).  A state matching no transaction boundary is an
    atomicity violation; a state matching the wrong boundary lost or
    fabricated a whole commit.  Both are reported as [Durability]
    violations with distinguishing detail strings.

    Reader threads are additionally checked for tolerance: no
    fabricated bindings before or after the crash.  (Isolation of
    in-flight reads is {e not} checked: the [Logged] commit path
    installs effects eagerly, so concurrent readers legitimately see
    read-uncommitted data; the [Shadow] path stages privately and
    gives read-committed.)

    [torn_commit] arms the injected mutant (commit record persisted
    before the log payload it covers, and eager-path undo records left
    volatile).  A sweep over a torn run must produce violations; each
    carries a {!Counterexample} with the [tx] extension populated so
    [ffcli check --replay] re-executes it deterministically. *)

type config = {
  txns : int;             (** transactions in the writer script (default 3) *)
  ops_per_txn : int;      (** puts/deletes per transaction (default 2) *)
  readers : int;          (** concurrent reader threads (default 1) *)
  keyspace : int;
  prefill : int;
  seed : int;
  path : Ff_tx.Tx.path;   (** commit path under test (default [Logged]) *)
  torn_commit : bool;     (** arm the torn-commit mutant (default false) *)
  explorer : Check.explorer;
  schedules : int;
  max_crash_points : int;
  crash_budget : int;
  non_tso : bool;
  node_bytes : int option;
}

val default : config

val checkable : Ff_index.Descriptor.t -> config -> string option
(** [None] when the descriptor is transaction-checkable: [txnable],
    persistent with recovery, and — when [readers > 0] — safe for
    concurrent lock-free reads (or Sim locks). *)

val run : ?config:config -> ?tracer:Ff_trace.Trace.t -> string -> Check.report
(** [run name] checks the registry index [name] and returns a report
    in {!Check.report} form ([Durability] counts cover both atomicity
    and durability failures; see module docs).  Counterexamples carry
    [Counterexample.tx = Some _]. *)

val replay : ?tracer:Ff_trace.Trace.t -> Counterexample.t -> Check.report
(** Re-execute one recorded transaction counterexample (the artifact
    must carry the [tx] extension).
    @raise Invalid_argument if [cx.tx = None]. *)

val config_of_counterexample : Counterexample.t -> config
(** @raise Invalid_argument if [cx.tx = None] or the recorded path
    name is unknown. *)
