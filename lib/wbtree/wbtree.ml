module Arena = Ff_pmem.Arena
module Intf = Ff_index.Intf

(* Node layout (words):
     0 level | 1 bitmap | 2 sibling | 3 leftmost child
     4..11   slot array as bytes: byte 0 = count, byte j = entry index
             of the j-th smallest live entry
     12..15  pad (header fills two cache lines)
     16+2i   entries[i].key
     17+2i   entries[i].value
   Bitmap word: bit 0 = slot-array-valid; bit (i+1) = entry i live. *)

let off_level = 0
let off_bitmap = 1
let off_sibling = 2
let off_leftmost = 3
let off_slots = 4
let slots_words = 8
let off_entries = 16

type t = {
  arena : Arena.t;
  node_words : int;
  capacity : int;
  root_slot : int;
  mutable log_area : int;
}

let key_off i = off_entries + (2 * i)
let val_off i = off_entries + (2 * i) + 1

let make ?(node_bytes = 1024) ?(root_slot = 4) arena =
  if node_bytes < 256 || node_bytes land (node_bytes - 1) <> 0 then
    invalid_arg "Wbtree: node_bytes must be a power of two >= 256";
  let node_words = node_bytes / 8 in
  let capacity = min ((node_words - off_entries) / 2) 62 in
  { arena; node_words; capacity; root_slot; log_area = 0 }

(* ------------------------------------------------------------------ *)
(* Field access                                                        *)
(* ------------------------------------------------------------------ *)

let level t n = Arena.read t.arena (n + off_level)
let bitmap t n = Arena.read t.arena (n + off_bitmap)
let sibling t n = Arena.read t.arena (n + off_sibling)
let leftmost t n = Arena.read t.arena (n + off_leftmost)
let key t n i = Arena.read t.arena (n + key_off i)
let value t n i = Arena.read t.arena (n + val_off i)

let set_bitmap_committed t n bm =
  Arena.write t.arena (n + off_bitmap) bm;
  Arena.flush t.arena (n + off_bitmap)

let slots_valid bm = bm land 1 = 1
let live bm i = bm land (1 lsl (i + 1)) <> 0

let slot_byte t n j =
  let w = Arena.read t.arena (n + off_slots + (j / 8)) in
  (w lsr (8 * (j mod 8))) land 0xff

let count t n = slot_byte t n 0

(* Rewrite the slot array from a list of entry indexes (ascending key
   order), then flush the touched lines. *)
let write_slots t n idxs =
  let cnt = List.length idxs in
  assert (cnt <= 62);
  let words = Array.make slots_words 0 in
  let put j v = words.(j / 8) <- words.(j / 8) lor ((v land 0xff) lsl (8 * (j mod 8))) in
  put 0 cnt;
  List.iteri (fun j idx -> put (j + 1) idx) idxs;
  let touched = 1 + (cnt / 8) in
  for w = 0 to touched - 1 do
    Arena.write t.arena (n + off_slots + w) words.(w)
  done;
  Arena.flush_range t.arena (n + off_slots) touched

(* Current logical order as entry indexes, via the slot array (fast
   path) or by scanning the bitmap and sorting (post-crash). *)
let logical_order t n =
  let bm = bitmap t n in
  if slots_valid bm then begin
    let cnt = count t n in
    List.init cnt (fun j -> slot_byte t n (j + 1))
  end
  else begin
    let idxs = ref [] in
    for i = t.capacity - 1 downto 0 do
      if live bm i then idxs := i :: !idxs
    done;
    List.sort (fun a b -> compare (key t n a) (key t n b)) !idxs
  end

let init_node t n ~lvl ~lm =
  Arena.write t.arena (n + off_level) lvl;
  Arena.write t.arena (n + off_sibling) 0;
  Arena.write t.arena (n + off_leftmost) lm;
  write_slots t n [];
  Arena.write t.arena (n + off_bitmap) 1

(* ------------------------------------------------------------------ *)
(* Creation / reattach                                                 *)
(* ------------------------------------------------------------------ *)

let root t = Arena.root_get t.arena t.root_slot

let create ?node_bytes ?root_slot arena =
  let t = make ?node_bytes ?root_slot arena in
  let r = Arena.alloc arena t.node_words in
  init_node t r ~lvl:0 ~lm:0;
  Arena.flush_range arena r t.node_words;
  Arena.root_set arena t.root_slot r;
  t

let open_existing ?node_bytes ?root_slot arena =
  let t = make ?node_bytes ?root_slot arena in
  t.log_area <- Arena.root_get arena (t.root_slot + 1);
  t

(* ------------------------------------------------------------------ *)
(* Node search: slot-array binary search with entry indirection        *)
(* ------------------------------------------------------------------ *)

let cfg_branch t = (Arena.config t.arena).Ff_pmem.Config.branch_miss_ns

(* Largest slot position whose key <= target; -1 if none. *)
let slot_upper_bound t n target =
  let cnt = count t n in
  let rec go lo hi best =
    if lo > hi then best
    else begin
      let mid = (lo + hi) / 2 in
      Arena.cpu_work t.arena (cfg_branch t);
      let idx = slot_byte t n (mid + 1) in
      let k = key t n idx in
      if k <= target then go (mid + 1) hi mid else go lo (mid - 1) best
    end
  in
  go 0 (cnt - 1) (-1)

let node_find t n target =
  let bm = bitmap t n in
  if slots_valid bm then begin
    let pos = slot_upper_bound t n target in
    if pos < 0 then None
    else begin
      let idx = slot_byte t n (pos + 1) in
      if key t n idx = target && live bm idx then Some idx else None
    end
  end
  else begin
    (* Degraded post-crash path: scan the bitmap. *)
    let found = ref None in
    for i = 0 to t.capacity - 1 do
      if !found = None && live bm i && key t n i = target then found := Some i
    done;
    !found
  end

let node_route t n target =
  let bm = bitmap t n in
  if slots_valid bm then begin
    let pos = slot_upper_bound t n target in
    if pos < 0 then leftmost t n else value t n (slot_byte t n (pos + 1))
  end
  else begin
    let best = ref (-1) and best_key = ref min_int in
    for i = 0 to t.capacity - 1 do
      if live bm i then begin
        let k = key t n i in
        if k <= target && k > !best_key then begin
          best := i;
          best_key := k
        end
      end
    done;
    if !best < 0 then leftmost t n else value t n !best
  end

let first_key t n =
  match logical_order t n with [] -> None | idx :: _ -> Some (key t n idx)

let last_key t n =
  match List.rev (logical_order t n) with [] -> None | idx :: _ -> Some (key t n idx)

(* ------------------------------------------------------------------ *)
(* Descent with sibling chase (split completion tolerance)             *)
(* ------------------------------------------------------------------ *)

let rec chain_covers t s k =
  if s = 0 then false
  else
    match first_key t s with
    | Some k0 -> k0 <= k
    | None -> chain_covers t (sibling t s) k

let move_right t n k =
  let rec go n =
    match last_key t n with
    | Some last when k <= last -> n
    | Some _ | None ->
        let s = sibling t n in
        if s <> 0 && chain_covers t s k then go s else n
  in
  go n

let rec to_leaf t n k =
  let n = move_right t n k in
  if level t n = 0 then n else to_leaf t (node_route t n k) k

let search t k =
  let leaf = to_leaf t (root t) k in
  match node_find t leaf k with
  | Some idx -> Some (value t leaf idx)
  | None -> None

(* ------------------------------------------------------------------ *)
(* Insert: append entry, 4-flush commit protocol                       *)
(* ------------------------------------------------------------------ *)

let free_entry_slot t bm =
  let rec go i = if i >= t.capacity then None else if live bm i then go (i + 1) else Some i in
  go 0

(* Insert into a node with a free slot.  The paper's protocol:
   (1) write entry, flush;
   (2) clear the slot-valid bit, flush (atomic invalidate);
   (3) rewrite the slot array, flush;
   (4) commit bitmap with entry bit + valid bit, flush. *)
let node_insert t n k v =
  let bm = bitmap t n in
  match node_find t n k with
  | Some idx ->
      Arena.write t.arena (n + val_off idx) v;
      Arena.flush t.arena (n + val_off idx);
      `Done
  | None -> (
      match free_entry_slot t bm with
      | None -> `Full
      | Some idx ->
          Arena.write t.arena (n + key_off idx) k;
          Arena.write t.arena (n + val_off idx) v;
          Arena.flush t.arena (n + key_off idx);
          set_bitmap_committed t n (bm land lnot 1);
          let order = logical_order t n in
          let order =
            let rec ins = function
              | [] -> [ idx ]
              | x :: rest -> if key t n x < k then x :: ins rest else idx :: x :: rest
            in
            ins order
          in
          write_slots t n order;
          set_bitmap_committed t n (bm lor (1 lsl (idx + 1)) lor 1);
          `Done)

(* ------------------------------------------------------------------ *)
(* Split: PM redo log + rebuild donor                                  *)
(* ------------------------------------------------------------------ *)

let ensure_log t =
  if t.log_area = 0 then begin
    let la = Arena.alloc t.arena (t.node_words + Arena.words_per_line) in
    t.log_area <- la;
    Arena.root_set t.arena (t.root_slot + 1) la
  end;
  t.log_area

let write_log t n =
  let la = ensure_log t in
  let image = la + Arena.words_per_line in
  for i = 0 to t.node_words - 1 do
    Arena.write t.arena (image + i) (Arena.read t.arena (n + i))
  done;
  Arena.flush_range t.arena image t.node_words;
  Arena.write t.arena la n;
  Arena.write t.arena (la + 1) 1;
  Arena.flush t.arena la

let clear_log t =
  let la = ensure_log t in
  Arena.write t.arena (la + 1) 0;
  Arena.flush t.arena la

(* Write a fresh node's entries compactly from (key, value) pairs. *)
let fill_node t n pairs =
  List.iteri
    (fun i (k, v) ->
      Arena.write t.arena (n + key_off i) k;
      Arena.write t.arena (n + val_off i) v)
    pairs;
  let cnt = List.length pairs in
  write_slots t n (List.init cnt (fun i -> i));
  let bm = ref 1 in
  for i = 0 to cnt - 1 do
    bm := !bm lor (1 lsl (i + 1))
  done;
  Arena.write t.arena (n + off_bitmap) !bm

let rec split_and_insert t n k v =
  write_log t n;
  let order = logical_order t n in
  let pairs = List.map (fun idx -> (key t n idx, value t n idx)) order in
  let cnt = List.length pairs in
  let median = cnt / 2 in
  let lvl = level t n in
  let rec take i = function
    | [] -> ([], [])
    | x :: rest ->
        let a, b = take (i + 1) rest in
        if i < median then (x :: a, b) else (a, x :: b)
  in
  let lower, upper = take 0 pairs in
  let sep, sib_pairs, sib_leftmost =
    match upper with
    | [] -> assert false
    | (sk, sv) :: rest ->
        if lvl = 0 then (sk, upper, 0) else (sk, rest, sv)
  in
  let sib = Arena.alloc t.arena t.node_words in
  init_node t sib ~lvl ~lm:sib_leftmost;
  fill_node t sib sib_pairs;
  Arena.write t.arena (sib + off_sibling) (sibling t n);
  Arena.flush_range t.arena sib t.node_words;
  (* Publish the sibling, then rebuild the donor under log protection. *)
  Arena.write t.arena (n + off_sibling) sib;
  Arena.flush t.arena (n + off_sibling);
  set_bitmap_committed t n 0;
  fill_node t n lower;
  Arena.flush_range t.arena n t.node_words;
  clear_log t;
  (* Pending key. *)
  let target = if k < sep then n else sib in
  (match node_insert t target k v with `Done -> () | `Full -> assert false);
  (* Parent update. *)
  insert_at_level t ~lvl:(lvl + 1) ~k:sep ~v:sib ~donor:n

and insert_at_level t ~lvl ~k ~v ~donor =
  let rt = root t in
  if level t rt < lvl then begin
    let nr = Arena.alloc t.arena t.node_words in
    init_node t nr ~lvl ~lm:donor;
    fill_node t nr [ (k, v) ];
    Arena.flush_range t.arena nr t.node_words;
    Arena.root_set t.arena t.root_slot nr
  end
  else begin
    let rec descend n =
      let n = move_right t n k in
      if level t n = lvl then n else descend (node_route t n k)
    in
    let n = descend rt in
    match node_insert t n k v with `Done -> () | `Full -> split_and_insert t n k v
  end

let insert t ~key:k ~value:v =
  if k <= 0 then invalid_arg "Wbtree.insert: key must be positive";
  if v = 0 then invalid_arg "Wbtree.insert: value must be nonzero";
  Arena.set_phase t.arena Ff_pmem.Stats.Search;
  let leaf = to_leaf t (root t) k in
  Arena.set_phase t.arena Ff_pmem.Stats.Update;
  (match node_insert t leaf k v with
  | `Done -> ()
  | `Full -> split_and_insert t leaf k v);
  Arena.set_phase t.arena Ff_pmem.Stats.Other

(* ------------------------------------------------------------------ *)
(* Delete: bitmap invalidate + slot rewrite                            *)
(* ------------------------------------------------------------------ *)

let delete t k =
  let leaf = to_leaf t (root t) k in
  match node_find t leaf k with
  | None -> false
  | Some idx ->
      let bm = bitmap t leaf in
      set_bitmap_committed t leaf (bm land lnot 1);
      let order = List.filter (fun i -> i <> idx) (logical_order t leaf) in
      write_slots t leaf order;
      set_bitmap_committed t leaf ((bm land lnot (1 lsl (idx + 1))) lor 1);
      true

(* ------------------------------------------------------------------ *)
(* Range: leaf chain via slot order                                    *)
(* ------------------------------------------------------------------ *)

let range t ~lo ~hi f =
  let leaf = to_leaf t (root t) lo in
  let rec scan n last =
    let stop = ref false in
    let last = ref last in
    List.iter
      (fun idx ->
        if not !stop then begin
          let k = key t n idx in
          if k > hi then stop := true
          else if k >= lo && k > !last then begin
            f k (value t n idx);
            last := k
          end
        end)
      (logical_order t n);
    let s = sibling t n in
    if (not !stop) && s <> 0 then scan s !last
  in
  scan leaf (lo - 1)

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

let leftmost_of_level t lvl =
  let rec go n = if level t n > lvl then go (leftmost t n) else n in
  go (root t)

let chain t first =
  let rec go n acc = if n = 0 then List.rev acc else go (sibling t n) (n :: acc) in
  go first []

let fix_slots t n =
  let bm = bitmap t n in
  if not (slots_valid bm) then begin
    let order = logical_order t n in
    write_slots t n order;
    set_bitmap_committed t n (bm lor 1)
  end

let recover t =
  t.log_area <- Arena.root_get t.arena (t.root_slot + 1);
  (* Redo-log restore. *)
  (if t.log_area <> 0 && Arena.peek t.arena (t.log_area + 1) = 1 then begin
     let n = Arena.read t.arena t.log_area in
     let image = t.log_area + Arena.words_per_line in
     for i = 0 to t.node_words - 1 do
       Arena.write t.arena (n + i) (Arena.read t.arena (image + i))
     done;
     Arena.flush_range t.arena n t.node_words;
     clear_log t
   end);
  (* Slot arrays, dangling siblings, root growth. *)
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 32 do
    changed := false;
    incr rounds;
    let rt = root t in
    (if sibling t rt <> 0 then
       match first_key t (sibling t rt) with
       | Some k0 ->
           changed := true;
           insert_at_level t ~lvl:(level t rt + 1) ~k:k0 ~v:(sibling t rt) ~donor:rt
       | None -> ());
    let rt = root t in
    let top = level t rt in
    for lvl = top downto 0 do
      let ch = chain t (leftmost_of_level t lvl) in
      List.iter (fix_slots t) ch;
      if lvl < top then begin
        let referenced = Hashtbl.create 64 in
        List.iter
          (fun p ->
            Hashtbl.replace referenced (leftmost t p) ();
            List.iter
              (fun idx -> Hashtbl.replace referenced (value t p idx) ())
              (logical_order t p))
          (chain t (leftmost_of_level t (lvl + 1)));
        List.iteri
          (fun i n ->
            if i > 0 && not (Hashtbl.mem referenced n) then
              match first_key t n with
              | Some k0 ->
                  changed := true;
                  insert_at_level t ~lvl:(lvl + 1) ~k:k0 ~v:n ~donor:n
              | None -> ())
          ch
      end
    done
  done

(* ------------------------------------------------------------------ *)
(* Checks and misc                                                     *)
(* ------------------------------------------------------------------ *)

let height t = level t (root t) + 1

let check t =
  let acc = ref [] in
  let rt = root t in
  if sibling t rt <> 0 then acc := "root has sibling" :: !acc;
  for lvl = level t rt downto 0 do
    let prev = ref min_int in
    List.iter
      (fun n ->
        if not (slots_valid (bitmap t n)) then
          acc := Printf.sprintf "node %d: slot array invalid" n :: !acc;
        List.iter
          (fun idx ->
            let k = key t n idx in
            if k <= !prev then
              acc := Printf.sprintf "node %d: unsorted key %d" n k :: !acc;
            prev := k)
          (logical_order t n))
      (chain t (leftmost_of_level t lvl))
  done;
  List.rev !acc

let ops t =
  Intf.make ~name:"wbtree"
    ~insert:(fun k v -> insert t ~key:k ~value:v)
    ~search:(fun k -> search t k)
    ~delete:(fun k -> delete t k)
    ~range:(fun lo hi f -> range t ~lo ~hi f)
    ~recover:(fun () -> recover t)
    ~close:(fun () -> Arena.drain t.arena)
    ()

let () =
  let module D = Ff_index.Descriptor in
  Ff_index.Registry.register
    {
      D.name = "wbtree";
      summary = "wB+-tree baseline (slot-array + bitmap nodes, logged splits)";
      caps =
        {
          D.has_range = true;
          has_delete = true;
          has_recovery = true;
          is_persistent = true;
          lock_modes = [ Ff_index.Locks.Single ];
          lock_free_reads = false;
          tunable_node_bytes = true;
          relocatable_root = true;
          scrubbable = false;
          txnable = true;
          snapshottable = false;
        };
      composite = None;
      build =
        (fun cfg a ->
          ops (create ?node_bytes:cfg.D.node_bytes ~root_slot:cfg.D.root_slot a));
      open_existing =
        (fun cfg a ->
          ops
            (open_existing ?node_bytes:cfg.D.node_bytes
               ~root_slot:cfg.D.root_slot a));
    }
