(** Deterministic discrete-event multicore simulator.

    The paper's Figure 7 runs 1-32 threads on a 16-vCPU machine; this
    host has one core, so scalability is reproduced in {e simulated}
    time.  Logical threads are OCaml 5 effect-handler coroutines that
    yield at every instrumented PM access (via {!Ff_pmem.Arena}'s
    yield hook) and at every synchronization operation.  A scheduler
    multiplexes them over [cores] simulated cores, advancing a
    simulated clock; mutexes and read/write locks block threads in
    simulated time, so lock-free readers (FAST+FAIR, SkipList) scale
    while lock-based readers (B-link, leaf-lock mode) serialize —
    exactly the mechanism behind the paper's scalability results.

    With [quantum_ns = 1] the scheduler preempts at {e every} memory
    access, which is how the Section IV suspended-reader interleavings
    are tested deterministically. *)

(** {1 Synchronization primitives (usable only inside {!run})} *)

type mutex

val create_mutex : unit -> mutex
val lock : mutex -> unit
val unlock : mutex -> unit
val try_lock : mutex -> bool

type rwlock

val create_rwlock : unit -> rwlock
val rd_lock : rwlock -> unit
val rd_unlock : rwlock -> unit
val wr_lock : rwlock -> unit
val wr_unlock : rwlock -> unit

type gate
(** A binary event: threads wait until it is opened. *)

val create_gate : unit -> gate
val gate_wait : gate -> unit
val gate_open : gate -> unit

val charge : int -> unit
(** Consume simulated CPU nanoseconds. *)

val yield : unit -> unit
(** Zero-cost reschedule point. *)

val my_tid : unit -> int
(** Index of the current logical thread.  @raise Failure outside {!run}. *)

val sim_now : unit -> int option
(** Current simulated time in nanoseconds — the scheduler clock plus
    the running segment's consumed charge, so events stamped with it
    align across threads on one timeline.  [None] outside {!run};
    tracers then fall back to a per-thread clock. *)

(** {1 Running} *)

type policy =
  | Fifo  (** deterministic round-robin *)
  | Random of Ff_util.Prng.t  (** seeded random runnable-thread choice *)
  | Choose of (int array -> int)
      (** Controlled scheduling: at every scheduling decision the
          callback receives the runnable thread ids in queue order and
          returns the index (into that array) of the thread to run
          next; out-of-range returns fall back to 0.  Everything else
          in the simulator is deterministic, so the sequence of
          returned indices fully determines the schedule — the model
          checker ({!Ff_check.Check}) uses this both to enumerate
          interleavings and to replay a recorded counterexample
          decision-for-decision. *)

val pct_policy : ?change_points:int -> ?horizon:int -> seed:int -> unit -> policy
(** PCT-style probabilistic concurrency testing: distinct random
    priorities per thread, highest-priority runnable thread runs, and
    at [change_points] (default 3) decision steps drawn uniformly from
    [\[0, horizon)] (default 4096) the running thread is demoted below
    all others.  Deterministic for a given seed. *)

val policy_of_spec : ?seed:int -> string -> policy
(** ["fifo"], ["random"] or ["pct"], seeded; for CLI/bench flags.
    @raise Invalid_argument on other names. *)

type outcome = {
  makespan_ns : int;  (** simulated time at which the last thread finished *)
  thread_end_ns : int array;  (** per-thread completion times *)
  events : int;  (** scheduler segments executed *)
}

val run :
  ?cores:int ->
  ?quantum_ns:int ->
  ?lock_ns:int ->
  ?contention_ns:int ->
  ?policy:policy ->
  ?arena:Ff_pmem.Arena.t ->
  (int -> unit) array ->
  outcome
(** [run bodies] executes [bodies.(i) i] as logical thread [i].
    If [arena] is given, its yield hook and thread id are managed so
    that all PM costs advance the simulated clock of the running
    thread.  Defaults: [cores = 16], [quantum_ns = 400],
    [lock_ns = 20] (cost of an uncontended lock operation),
    [contention_ns = lock_ns] (every acquire/release owns the lock's
    cache line for this long, serialized per lock — the cache-line
    bouncing that makes every-node read locking collapse while
    per-leaf locking stays cheap).  @raise Failure on deadlock. *)
