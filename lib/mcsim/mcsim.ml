module Vec = Ff_util.Vec
module Heap = Ff_util.Heap
module Prng = Ff_util.Prng
module Arena = Ff_pmem.Arena

(* ------------------------------------------------------------------ *)
(* Thread and synchronization object representations                   *)
(* ------------------------------------------------------------------ *)

type pending =
  | P_none
  | P_charged of int  (* suspended after consuming this much time *)
  | P_blocked         (* parked in some wait queue *)
  | P_finished

type thread = {
  thread_tid : int;
  mutable cont : (unit, unit) Effect.Deep.continuation option;
  mutable pending : pending;
  mutable end_ns : int;
}

type mutex = {
  mutable m_owner : int;
  m_waiters : thread Queue.t;
  mutable m_port_free : int;
  mutable m_port_run : int;
}

let create_mutex () =
  { m_owner = -1; m_waiters = Queue.create (); m_port_free = 0; m_port_run = -1 }

type rw_kind = R | W

type rwlock = {
  mutable readers : int;
  mutable writer : int;
  rw_waiters : (thread * rw_kind) Queue.t;
  mutable rw_port_free : int;
  mutable rw_port_run : int;
}

let create_rwlock () =
  { readers = 0; writer = -1; rw_waiters = Queue.create (); rw_port_free = 0;
    rw_port_run = -1 }

type gate = { mutable opened : bool; g_waiters : thread Queue.t }

let create_gate () = { opened = false; g_waiters = Queue.create () }

(* ------------------------------------------------------------------ *)
(* Effects                                                              *)
(* ------------------------------------------------------------------ *)

type _ Effect.t +=
  | Charge : int -> unit Effect.t
  | Lock : mutex -> unit Effect.t
  | Try_lock : mutex -> bool Effect.t
  | Unlock : mutex -> unit Effect.t
  | Rd_lock : rwlock -> unit Effect.t
  | Rd_unlock : rwlock -> unit Effect.t
  | Wr_lock : rwlock -> unit Effect.t
  | Wr_unlock : rwlock -> unit Effect.t
  | Gate_wait : gate -> unit Effect.t
  | Gate_open : gate -> unit Effect.t
  | My_tid : int Effect.t
  | Now : int Effect.t

let charge ns = if ns > 0 then Effect.perform (Charge ns)
let yield () = Effect.perform (Charge 0)
let lock m = Effect.perform (Lock m)
let try_lock m = Effect.perform (Try_lock m)
let unlock m = Effect.perform (Unlock m)
let rd_lock l = Effect.perform (Rd_lock l)
let rd_unlock l = Effect.perform (Rd_unlock l)
let wr_lock l = Effect.perform (Wr_lock l)
let wr_unlock l = Effect.perform (Wr_unlock l)
let gate_wait g = Effect.perform (Gate_wait g)
let gate_open g = Effect.perform (Gate_open g)

let my_tid () =
  try Effect.perform My_tid
  with Effect.Unhandled _ -> failwith "Mcsim.my_tid: not inside Mcsim.run"

let sim_now () =
  try Some (Effect.perform Now) with Effect.Unhandled _ -> None

(* ------------------------------------------------------------------ *)
(* Scheduler                                                            *)
(* ------------------------------------------------------------------ *)

type policy = Fifo | Random of Prng.t | Choose of (int array -> int)

(* PCT-style priority scheduling (Burckhardt et al., ASPLOS'10): every
   thread gets a distinct random priority; the scheduler always runs
   the highest-priority runnable thread; at [change_points] randomly
   chosen decision steps the running-priority thread is demoted below
   everyone, which is what surfaces bugs needing d preemptions.
   Implemented on top of [Choose], so the same controlled-scheduling
   hook serves PCT, bounded-exhaustive DFS and counterexample replay. *)
let pct_policy ?(change_points = 3) ?(horizon = 4096) ~seed () =
  let rng = Prng.create seed in
  let prio = Hashtbl.create 16 in
  (* Fresh priorities are drawn lazily per tid; demotions push below
     every priority handed out so far. *)
  let next_hi = ref 0 and next_lo = ref 0 in
  let priority tid =
    match Hashtbl.find_opt prio tid with
    | Some p -> p
    | None ->
        (* random insertion among the high band *)
        incr next_hi;
        let p = (!next_hi * 1024) + Prng.int rng 1024 in
        Hashtbl.replace prio tid p;
        p
  in
  let change_steps = Hashtbl.create 8 in
  for _ = 1 to change_points do
    Hashtbl.replace change_steps (Prng.int rng horizon) ()
  done;
  let step = ref 0 in
  Choose
    (fun tids ->
      let s = !step in
      incr step;
      let best = ref 0 in
      for i = 1 to Array.length tids - 1 do
        if priority tids.(i) > priority tids.(!best) then best := i
      done;
      if Hashtbl.mem change_steps s then begin
        (* demote the thread about to run below every known priority *)
        decr next_lo;
        Hashtbl.replace prio tids.(!best) !next_lo;
        let best' = ref 0 in
        for i = 1 to Array.length tids - 1 do
          if priority tids.(i) > priority tids.(!best') then best' := i
        done;
        !best'
      end
      else !best)

let policy_of_spec ?(seed = 42) name =
  match name with
  | "fifo" -> Fifo
  | "random" -> Random (Prng.create seed)
  | "pct" -> pct_policy ~seed ()
  | s ->
      invalid_arg
        (Printf.sprintf "Mcsim.policy_of_spec: unknown policy %S (fifo, random, pct)" s)

type outcome = { makespan_ns : int; thread_end_ns : int array; events : int }

let run_generation = ref 0

let run ?(cores = 16) ?(quantum_ns = 400) ?(lock_ns = 20) ?contention_ns
    ?(policy = Fifo) ?arena bodies =
  let contention_ns = Option.value contention_ns ~default:lock_ns in
  let n = Array.length bodies in
  let threads =
    Array.init n (fun i ->
        { thread_tid = i; cont = None; pending = P_none; end_ns = 0 })
  in
  let runq : thread Vec.t =
    Vec.create ~dummy:{ thread_tid = -1; cont = None; pending = P_none; end_ns = 0 } ()
  in
  Array.iter (Vec.push runq) threads;
  let take_runnable () =
    match policy with
    | Fifo ->
        let th = Vec.get runq 0 in
        (* n is tiny (<= 64 threads); O(n) dequeue keeps things simple *)
        let len = Vec.length runq in
        for i = 0 to len - 2 do
          Vec.set runq i (Vec.get runq (i + 1))
        done;
        ignore (Vec.pop runq);
        th
    | Random rng ->
        let i = Prng.int rng (Vec.length runq) in
        let th = Vec.get runq i in
        let last = Vec.pop runq in
        if i < Vec.length runq then Vec.set runq i last;
        th
    | Choose f ->
        let len = Vec.length runq in
        let tids = Array.init len (fun i -> (Vec.get runq i).thread_tid) in
        let i = f tids in
        let i = if i < 0 || i >= len then 0 else i in
        let th = Vec.get runq i in
        (* Ordered removal keeps the runnable array the chooser sees in
           a stable queue order, so recorded decision indices replay
           identically. *)
        for j = i to len - 2 do
          Vec.set runq j (Vec.get runq (j + 1))
        done;
        ignore (Vec.pop runq);
        th
  in
  let events : [ `Free of int | `Wake of thread ] Heap.t = Heap.create () in
  let idle = ref [] in
  let now = ref 0 in
  let nevents = ref 0 in
  let current = ref threads.(0) in
  (* Simulated ns already consumed by the running segment: [!now +
     !seg_acc] is the precise current time inside a thread body, which
     the [Now] effect exposes to tracers. *)
  let seg_acc = ref 0 in
  (* Lock-word serialization: each acquire/release is an atomic RMW
     that owns the lock's cache line for [contention_ns]; concurrent
     operations on the same lock queue up on this "port".  This is
     what makes an every-reader-locks design (B-link) saturate while
     spread-out per-leaf locks stay cheap (paper Figure 7). *)
  incr run_generation;
  let generation = !run_generation in
  let mutex_port (m : mutex) =
    if m.m_port_run <> generation then begin
      m.m_port_run <- generation;
      m.m_port_free <- 0
    end;
    let grant = max !now m.m_port_free in
    m.m_port_free <- grant + contention_ns;
    lock_ns + (grant - !now)
  in
  let rw_port (l : rwlock) =
    if l.rw_port_run <> generation then begin
      l.rw_port_run <- generation;
      l.rw_port_free <- 0
    end;
    let grant = max !now l.rw_port_free in
    l.rw_port_free <- grant + contention_ns;
    lock_ns + (grant - !now)
  in
  let wake th =
    Vec.push runq th;
    match !idle with
    | c :: rest ->
        idle := rest;
        Heap.push events !now (`Free c)
    | [] -> ()
  in
  (* Grant the lock/rwlock to waiters in FIFO order. *)
  let drain_rwlock l =
    let continue_draining = ref true in
    while !continue_draining do
      match Queue.peek_opt l.rw_waiters with
      | Some (th, R) when l.writer = -1 ->
          ignore (Queue.pop l.rw_waiters);
          l.readers <- l.readers + 1;
          wake th
      | Some (th, W) when l.writer = -1 && l.readers = 0 ->
          ignore (Queue.pop l.rw_waiters);
          l.writer <- th.thread_tid;
          wake th
      | Some _ | None -> continue_draining := false
    done
  in
  let handler : type a. a Effect.t -> ((a, unit) Effect.Deep.continuation -> unit) option =
    fun eff ->
      let th = !current in
      let suspend_charged (k : (unit, unit) Effect.Deep.continuation) ns =
        th.cont <- Some k;
        th.pending <- P_charged ns
      in
      match eff with
      | Charge ns -> Some (fun k -> suspend_charged k ns)
      | Lock m ->
          Some
            (fun k ->
              if m.m_owner = -1 then begin
                m.m_owner <- th.thread_tid;
                suspend_charged k (mutex_port m)
              end
              else begin
                Queue.push th m.m_waiters;
                th.cont <- Some k;
                th.pending <- P_blocked
              end)
      | Try_lock m ->
          Some
            (fun k ->
              if m.m_owner = -1 then begin
                m.m_owner <- th.thread_tid;
                Effect.Deep.continue k true
              end
              else Effect.Deep.continue k false)
      | Unlock m ->
          Some
            (fun k ->
              if m.m_owner <> th.thread_tid then
                failwith "Mcsim.unlock: not the owner";
              (match Queue.take_opt m.m_waiters with
              | Some w ->
                  m.m_owner <- w.thread_tid;
                  wake w
              | None -> m.m_owner <- -1);
              suspend_charged k (mutex_port m))
      | Rd_lock l ->
          Some
            (fun k ->
              if l.writer = -1 && Queue.is_empty l.rw_waiters then begin
                l.readers <- l.readers + 1;
                suspend_charged k (rw_port l)
              end
              else begin
                Queue.push (th, R) l.rw_waiters;
                th.cont <- Some k;
                th.pending <- P_blocked
              end)
      | Rd_unlock l ->
          Some
            (fun k ->
              assert (l.readers > 0);
              l.readers <- l.readers - 1;
              drain_rwlock l;
              suspend_charged k (rw_port l))
      | Wr_lock l ->
          Some
            (fun k ->
              if l.writer = -1 && l.readers = 0 && Queue.is_empty l.rw_waiters
              then begin
                l.writer <- th.thread_tid;
                suspend_charged k (rw_port l)
              end
              else begin
                Queue.push (th, W) l.rw_waiters;
                th.cont <- Some k;
                th.pending <- P_blocked
              end)
      | Wr_unlock l ->
          Some
            (fun k ->
              if l.writer <> th.thread_tid then
                failwith "Mcsim.wr_unlock: not the writer";
              l.writer <- -1;
              drain_rwlock l;
              suspend_charged k (rw_port l))
      | Gate_wait g ->
          Some
            (fun k ->
              if g.opened then Effect.Deep.continue k ()
              else begin
                Queue.push th g.g_waiters;
                th.cont <- Some k;
                th.pending <- P_blocked
              end)
      | Gate_open g ->
          Some
            (fun k ->
              g.opened <- true;
              Queue.iter wake g.g_waiters;
              Queue.clear g.g_waiters;
              Effect.Deep.continue k ())
      | My_tid -> Some (fun k -> Effect.Deep.continue k th.thread_tid)
      | Now -> Some (fun k -> Effect.Deep.continue k (!now + !seg_acc))
      | _ -> None
  in
  let start th =
    Effect.Deep.match_with
      (fun () -> bodies.(th.thread_tid) th.thread_tid)
      ()
      {
        retc = (fun () -> th.pending <- P_finished);
        exnc = raise;
        effc = (fun eff -> handler eff);
      }
  in
  let run_segment th =
    current := th;
    (match arena with Some a -> Arena.set_tid a th.thread_tid | None -> ());
    let acc = seg_acc in
    acc := 0;
    let result = ref None in
    while !result = None do
      th.pending <- P_none;
      (match th.cont with
      | None -> start th
      | Some k ->
          th.cont <- None;
          Effect.Deep.continue k ());
      (match th.pending with
      | P_charged ns ->
          acc := !acc + ns;
          if !acc >= quantum_ns then result := Some (`Ran !acc)
      | P_blocked -> result := Some (`Blocked !acc)
      | P_finished -> result := Some (`Done !acc)
      | P_none -> assert false);
      incr nevents
    done;
    match !result with Some r -> r | None -> assert false
  in
  (match arena with
  | Some a -> Arena.set_yield_hook a (Some (fun ns -> charge ns))
  | None -> ());
  let finished = ref 0 in
  for c = 0 to cores - 1 do
    Heap.push events 0 (`Free c)
  done;
  let rec loop () =
    if !finished < n then
      match Heap.pop events with
      | None -> failwith "Mcsim.run: deadlock (no runnable thread)"
      | Some (t, `Wake th) ->
          now := t;
          wake th;
          loop ()
      | Some (t, `Free c) ->
          now := t;
          if Vec.is_empty runq then idle := c :: !idle
          else begin
            let th = take_runnable () in
            (match run_segment th with
            | `Ran cost ->
                (* The thread occupies this core until t + cost; it
                   may not be picked up elsewhere before then. *)
                Heap.push events (t + cost) (`Wake th);
                Heap.push events (t + cost) (`Free c)
            | `Blocked cost -> Heap.push events (t + cost) (`Free c)
            | `Done cost ->
                th.end_ns <- t + cost;
                incr finished;
                Heap.push events (t + cost) (`Free c));
          end;
          loop ()
  in
  let cleanup () =
    match arena with
    | Some a ->
        Arena.set_yield_hook a None;
        Arena.set_tid a 0
    | None -> ()
  in
  (try loop ()
   with e ->
     cleanup ();
     raise e);
  cleanup ();
  let makespan = Array.fold_left (fun m th -> max m th.end_ns) 0 threads in
  {
    makespan_ns = makespan;
    thread_end_ns = Array.map (fun th -> th.end_ns) threads;
    events = !nevents;
  }
