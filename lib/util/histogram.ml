(* Bucket scheme (documented contract, relied on by the merge/percentile
   fidelity property test):

   Bucket [i] covers the integer interval (bounds.(i-1), bounds.(i)]
   with bounds.(-1) taken as 0.  The ideal bound is b(i) = 2^(i/2) —
   powers of sqrt(2), <= ~41% relative width — but integer truncation
   makes neighbouring ideals collide below ~64 (int(1*sqrt2) = 1,
   int(2*sqrt2) = 2 ...).  The table therefore forces strict
   monotonicity: bounds.(i) = max(ideal(i), bounds.(i-1) + 1).  Small
   buckets degenerate to width 1 (exact), and no bucket is ever wider
   than one sqrt(2) step — which is what keeps a merged histogram's
   percentile within one bucket of the percentile over the pooled raw
   samples (merge sums bucket counts, so merged rank selection equals
   pooled rank selection at bucket granularity). *)

let nbuckets = 124 (* covers up to ~2^62 *)

let bounds =
  let b = Array.make nbuckets 0 in
  let prev = ref 0 in
  for i = 0 to nbuckets - 1 do
    let ideal =
      let base = 1 lsl (i / 2) in
      if i land 1 = 0 then base
      else int_of_float (float_of_int base *. 1.4142135623730951)
    in
    b.(i) <- max ideal (!prev + 1);
    prev := b.(i)
  done;
  b

type t = {
  buckets : int array;
  mutable n : int;
  mutable total : int;
  mutable max_sample : int;
}

let create () = { buckets = Array.make nbuckets 0; n = 0; total = 0; max_sample = 0 }

let bound i = bounds.(min (nbuckets - 1) (max 0 i))

(* Smallest i with bounds.(i) >= v, by binary search over the strictly
   increasing table. *)
let bucket_of v =
  if v <= 1 then 0
  else begin
    let lo = ref 0 and hi = ref (nbuckets - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if bounds.(mid) >= v then hi := mid else lo := mid + 1
    done;
    !lo
  end

let add t v =
  let v = max v 0 in
  let i = if v = 0 then 0 else bucket_of v in
  t.buckets.(i) <- t.buckets.(i) + 1;
  t.n <- t.n + 1;
  t.total <- t.total + v;
  if v > t.max_sample then t.max_sample <- v

let count t = t.n
let mean t = if t.n = 0 then 0. else float_of_int t.total /. float_of_int t.n
let max_sample t = t.max_sample

let percentile t p =
  if t.n = 0 then 0
  else begin
    let rank = int_of_float (ceil (p /. 100. *. float_of_int t.n)) in
    let rank = max 1 (min t.n rank) in
    let rec go i seen =
      let seen = seen + t.buckets.(i) in
      if seen >= rank || i = nbuckets - 1 then bounds.(i) else go (i + 1) seen
    in
    min (go 0 0) t.max_sample
  end

let merge acc x =
  for i = 0 to nbuckets - 1 do
    acc.buckets.(i) <- acc.buckets.(i) + x.buckets.(i)
  done;
  acc.n <- acc.n + x.n;
  acc.total <- acc.total + x.total;
  if x.max_sample > acc.max_sample then acc.max_sample <- x.max_sample

let copy t =
  {
    buckets = Array.copy t.buckets;
    n = t.n;
    total = t.total;
    max_sample = t.max_sample;
  }

(* Window delta: everything recorded in [cur] since the [prev]
   snapshot.  Bucket counts subtract exactly; the true maximum inside
   the window is not recoverable from snapshots, so the cumulative
   maximum is kept as the percentile clamp (an upper bound, never an
   under-estimate). *)
let delta cur prev =
  let d = create () in
  for i = 0 to nbuckets - 1 do
    d.buckets.(i) <- max 0 (cur.buckets.(i) - prev.buckets.(i))
  done;
  d.n <- max 0 (cur.n - prev.n);
  d.total <- max 0 (cur.total - prev.total);
  d.max_sample <- cur.max_sample;
  d

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.1f p50=%d p99=%d max=%d" t.n (mean t)
    (percentile t 50.) (percentile t 99.) t.max_sample
