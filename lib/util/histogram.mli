(** Log-bucketed latency histogram.

    {b Bucket scheme.}  Bucket [i] covers the integer interval
    [(bound (i-1), bound i]] where the ideal bound is [2^(i/2)] —
    powers of sqrt(2), at most ~41% relative width — and the table is
    forced strictly monotonic ([bound i >= bound (i-1) + 1]) so that
    integer truncation never collapses neighbouring buckets into one
    double-width bucket.  Small values get width-1 (exact) buckets;
    124 buckets cover nine orders of magnitude in a few hundred bytes.

    Because {!merge} sums bucket counts, rank selection over a merged
    histogram equals rank selection over the pooled samples at bucket
    granularity: a merged percentile is within one bucket (one
    sqrt(2) step) of the percentile computed from all raw samples
    pooled — the property test in [test_util] checks exactly this. *)

type t

val create : unit -> t
val add : t -> int -> unit
(** Record one sample (negative samples count as 0). *)

val count : t -> int
val mean : t -> float

val percentile : t -> float -> int
(** [percentile t p] for p in [\[0, 100\]]: the upper bound of the
    bucket containing the p-th percentile sample (clamped to
    {!max_sample}); 0 when empty. *)

val max_sample : t -> int

val bucket_of : int -> int
(** Index of the bucket a sample lands in (exposed for fidelity
    tests). *)

val bound : int -> int
(** Upper bound of bucket [i] (clamped to the table range). *)

val merge : t -> t -> unit
(** [merge acc x] adds [x]'s samples into [acc].  Exact at bucket
    granularity — see the bucket-scheme note above. *)

val copy : t -> t
(** Snapshot for windowed deltas. *)

val delta : t -> t -> t
(** [delta cur prev] is everything recorded in [cur] since the [prev]
    snapshot (bucket-wise subtraction).  The delta's percentile clamp
    is [cur]'s cumulative maximum — an upper bound, since the true
    in-window maximum is not recoverable from snapshots. *)

val pp : Format.formatter -> t -> unit
