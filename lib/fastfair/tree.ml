module Arena = Ff_pmem.Arena
module Stats = Ff_pmem.Stats
module L = Layout
module Locks = Ff_index.Locks
module Intf = Ff_index.Intf
module Trace = Ff_trace.Trace

type split_policy = Fair | Logged

type t = {
  arena : Arena.t;
  layout : L.t;
  root_slot : int;
  mode : Node.search_mode;
  split_policy : split_policy;
  locks : Locks.Table.t;
  leaf_read_locks : bool;
  root_mutex : Locks.mutex;
  mutable lazy_pending : bool;
  clean : (int, unit) Hashtbl.t;
  mutable log_area : int;
  mutable trace : string -> unit;
  mutable tracer : Trace.t;
}

let arena t = t.arena
let layout t = t.layout
let root_slot t = t.root_slot

let make_t ?(node_bytes = 512) ?(mode = Node.Linear) ?(split_policy = Fair)
    ?(lock_mode = Locks.Single) ?(leaf_read_locks = false) ?(root_slot = 0)
    arena =
  {
    arena;
    layout = L.make ~node_bytes;
    root_slot;
    mode;
    split_policy;
    locks = Locks.Table.create lock_mode;
    leaf_read_locks;
    root_mutex = Locks.make_mutex lock_mode;
    lazy_pending = false;
    clean = Hashtbl.create 256;
    log_area = 0;
    trace = (fun _ -> ());
    tracer = Trace.null;
  }

let create ?node_bytes ?mode ?split_policy ?lock_mode ?leaf_read_locks
    ?root_slot arena =
  let t =
    make_t ?node_bytes ?mode ?split_policy ?lock_mode ?leaf_read_locks
      ?root_slot arena
  in
  let a = t.arena and l = t.layout in
  let root = Arena.alloc a l.L.node_words in
  Node.init a l root ~level:0 ~leftmost:0 ~low:0;
  Arena.flush_range a root l.L.node_words;
  Arena.root_set a t.root_slot root;
  t

let open_existing ?node_bytes ?mode ?split_policy ?lock_mode ?leaf_read_locks
    ?root_slot arena =
  let t =
    make_t ?node_bytes ?mode ?split_policy ?lock_mode ?leaf_read_locks
      ?root_slot arena
  in
  t.log_area <- Arena.root_get arena (t.root_slot + 1);
  t

let root t = Arena.root_get t.arena t.root_slot

let set_trace t f = t.trace <- f
let set_tracer t tr = t.tracer <- tr
let tracer t = t.tracer

(* Span + per-op metrics wrapper.  When tracing is off this is one
   field test; eventing never charges simulated time, so enabling it
   does not move measured ns/op. *)
let flushes_of t = (Arena.stats t.arena (Arena.tid t.arena)).Stats.flushes

let with_op t id hist_latency hist_flushes key f =
  let tr = t.tracer in
  if not (Trace.enabled tr) then f ()
  else begin
    Trace.span_begin tr id key;
    let t0 = Trace.now tr and f0 = flushes_of t in
    let finish () =
      Trace.observe tr hist_latency (Trace.now tr - t0);
      Trace.observe tr hist_flushes (flushes_of t - f0);
      Trace.span_end tr id
    in
    match f () with
    | r -> finish (); r
    | exception e -> finish (); raise e
  end

(* ------------------------------------------------------------------ *)
(* Locks                                                               *)
(* ------------------------------------------------------------------ *)

let is_leaf t n = L.is_leaf t.arena n

let wlock t n =
  if t.leaf_read_locks && is_leaf t n then
    Locks.wr_lock (Locks.Table.rwlock_of t.locks n)
  else Locks.lock (Locks.Table.mutex_of t.locks n)

let wunlock t n =
  if t.leaf_read_locks && is_leaf t n then
    Locks.wr_unlock (Locks.Table.rwlock_of t.locks n)
  else Locks.unlock (Locks.Table.mutex_of t.locks n)

let rlock t n =
  if t.leaf_read_locks then Locks.rd_lock (Locks.Table.rwlock_of t.locks n)

let runlock t n =
  if t.leaf_read_locks then Locks.rd_unlock (Locks.Table.rwlock_of t.locks n)

(* ------------------------------------------------------------------ *)
(* Descent with B-link move-right                                      *)
(* ------------------------------------------------------------------ *)

(* Has the current node been split past us, i.e. does the sibling's
   range cover the key?  The persisted low key is the exact bound;
   the released C++ code compares the sibling's first entry, which is
   wrong for the separator gap of internal splits (see Layout.low). *)
let chain_covers t s key = s <> 0 && L.low t.arena s <= key

let rec move_right t node key =
  let s = L.sibling t.arena node in
  if s <> 0 && chain_covers t s key then move_right t s key else node

(* Move right only when the key lies beyond this node's last entry —
   avoids touching the sibling on the common path. *)
let move_right_if_beyond t node key =
  match Node.last_entry t.arena t.layout node with
  | Some (last, _) when key <= last -> node
  | Some _ | None -> move_right t node key

let rec to_leaf t node key =
  let node = move_right_if_beyond t node key in
  if is_leaf t node then node
  else
    to_leaf t
      (Node.find_child t.arena t.layout node ~mode:t.mode ~tr:t.tracer key)
      key

(* ------------------------------------------------------------------ *)
(* Lazy recovery hooks (Section 4.2)                                   *)
(* ------------------------------------------------------------------ *)

(* Complete an interrupted FAIR split on this node: if its entries
   overlap the sibling's range, the truncation store never persisted —
   redo it. *)
let complete_truncation t node =
  let a = t.arena and l = t.layout in
  let s = L.sibling a node in
  if s <> 0 then
    match (Node.last_entry a l node, Some (L.low a s, ())) with
    | Some (last, _), Some (sfk, _) when last >= sfk -> (
        match
          let rec find_pos i prev_raw =
            if i >= l.L.capacity then None
            else begin
              let p = L.ptr a node i in
              if p = 0 then None
              else if p <> prev_raw && L.key a node i >= sfk then Some i
              else find_pos (i + 1) p
            end
          in
          find_pos 0 (L.leftmost a node)
        with
        | Some pos -> Node.truncate_from a l node pos
        | None -> ())
    | (Some _ | None), (Some _ | None) -> ()

let writer_fix_if_pending t node =
  if t.lazy_pending && not (Hashtbl.mem t.clean node) then begin
    let fixed = Node.writer_fix t.arena t.layout node in
    if fixed then Trace.incr t.tracer "fastfair.recovery.lazy_fixes";
    complete_truncation t node;
    Hashtbl.replace t.clean node ()
  end

(* ------------------------------------------------------------------ *)
(* Search                                                              *)
(* ------------------------------------------------------------------ *)

let search t key =
  with_op t Trace.id_search "fastfair.latency_ns.search"
    "fastfair.flushes_per_op.search" key
  @@ fun () ->
  let a = t.arena and l = t.layout in
  Arena.set_phase a Stats.Search;
  let leaf = to_leaf t (root t) key in
  (* Algorithm 3 epilogue: on a miss, chase the sibling chain while it
     can still cover the key. *)
  let rec at_leaf leaf =
    rlock t leaf;
    let v = Node.search a l leaf ~mode:t.mode ~tr:t.tracer key in
    let next =
      match v with
      | Some _ -> None
      | None ->
          let s = L.sibling a leaf in
          if s <> 0 && chain_covers t s key then Some s else None
    in
    runlock t leaf;
    match (v, next) with
    | Some v, _ -> Some v
    | None, Some s ->
        if Trace.enabled t.tracer then begin
          Trace.incr t.tracer "fastfair.sibling_chase";
          Trace.instant t.tracer Trace.id_sibling_chase s
        end;
        at_leaf s
    | None, None -> None
  in
  let r = at_leaf leaf in
  Arena.set_phase a Stats.Other;
  r

(* ------------------------------------------------------------------ *)
(* Logged splits (the FAST+Logging baseline)                           *)
(* ------------------------------------------------------------------ *)

let ensure_log t =
  if t.log_area = 0 then begin
    let la = Arena.alloc t.arena (t.layout.L.node_words + Arena.words_per_line) in
    t.log_area <- la;
    Arena.root_set t.arena (t.root_slot + 1) la
  end;
  t.log_area

let write_split_log t node =
  let a = t.arena and l = t.layout in
  let la = ensure_log t in
  let image = la + Arena.words_per_line in
  for i = 0 to l.L.node_words - 1 do
    Arena.write a (image + i) (Arena.read a (node + i))
  done;
  Arena.flush_range a image l.L.node_words;
  Arena.write a la node;
  Arena.write a (la + 1) 1;
  Arena.flush a la

let clear_split_log t =
  let a = t.arena in
  let la = ensure_log t in
  Arena.write a (la + 1) 0;
  Arena.flush a la

let restore_from_log t =
  let a = t.arena and l = t.layout in
  let la = Arena.root_get a (t.root_slot + 1) in
  if la <> 0 && Arena.peek a (la + 1) = 1 then begin
    t.log_area <- la;
    let node = Arena.read a la in
    let image = la + Arena.words_per_line in
    for i = 0 to l.L.node_words - 1 do
      Arena.write a (node + i) (Arena.read a (image + i))
    done;
    Arena.flush_range a node l.L.node_words;
    Arena.write a (la + 1) 0;
    Arena.flush a la
  end
  else if la <> 0 then t.log_area <- la

(* ------------------------------------------------------------------ *)
(* Insertion: FAST in-node, FAIR split, parent update                  *)
(* ------------------------------------------------------------------ *)

let append_raw t sib j k p =
  let a = t.arena in
  L.set_key a sib j k;
  L.set_ptr a sib j p

(* Split [node] (lock held, node full) and insert the pending (key,
   value); releases the lock and attaches the new sibling to the
   parent.  Paper Algorithm 2. *)
let rec split_and_insert t node key value =
  let a = t.arena and l = t.layout in
  let cnt = Node.count a l node in
  let median = cnt / 2 in
  let level = L.level a node in
  let sep = L.key a node median in
  Trace.span_begin t.tracer Trace.id_split level;
  if Trace.enabled t.tracer then
    Trace.incr t.tracer (Printf.sprintf "fastfair.splits.level%d" level);
  if t.split_policy = Logged then write_split_log t node;
  let sib = Arena.alloc a l.L.node_words in
  if level > 0 then
    t.trace (Printf.sprintf "split lvl%d node=%d sep=%d sib=%d entries=[%s] pending=%d"
      level node sep sib
      (String.concat ";" (List.map (fun (k,_) -> string_of_int k) (Node.entries_debug a l node))) key);
  let leftmost = if level = 0 then 0 else L.ptr a node median in
  Node.init a l sib ~level ~leftmost ~low:sep;
  let start = if level = 0 then median else median + 1 in
  let j = ref 0 in
  for i = start to cnt - 1 do
    append_raw t sib !j (L.key a node i) (L.ptr a node i);
    incr j
  done;
  L.set_count_hint a sib !j;
  (* While still private, place the pending key if it belongs right. *)
  if key >= sep then
    Node.insert_nonfull a l sib ~key ~value ~mode:t.mode;
  L.set_sibling a sib (L.sibling a node);
  Arena.flush_range a sib l.L.node_words;
  (* Commit point: the sibling becomes visible. *)
  L.set_sibling a node sib;
  Arena.flush a (node + L.off_sibling);
  (* In-place truncation of the donor. *)
  Node.truncate_from a l node median;
  if key < sep then Node.insert_nonfull a l node ~key ~value ~mode:t.mode;
  if t.split_policy = Logged then clear_split_log t;
  Trace.span_end t.tracer Trace.id_split;
  wunlock t node;
  (* Update the parent by traversing from the root (Algorithm 2 l.28). *)
  insert_at_level t ~level:(level + 1) ~key:sep ~child:sib ~donor:node

(* Generic locked insert into the node covering [key] at its level.
   For internal nodes, [value] is a child pointer and an existing equal
   separator means the attachment already happened. *)
and insert_into_node t node key value ~internal =
  let a = t.arena and l = t.layout in
  wlock t node;
  writer_fix_if_pending t node;
  let s = L.sibling a node in
  if s <> 0 && chain_covers t s key then begin
    (* A concurrent (or interrupted) split moved our range right. *)
    wunlock t node;
    insert_into_node t s key value ~internal
  end
  else begin
    Arena.set_phase a Stats.Search;
    let existing = Node.find_exact a l node key in
    Arena.set_phase a Stats.Update;
    match existing with
    | Some pos ->
        if not internal then Node.update_value a l node ~pos ~value;
        wunlock t node
    | None ->
        if Node.count a l node < l.L.capacity then begin
          if internal then
            t.trace (Printf.sprintf "ins lvl%d key=%d node=%d entries=[%s]"
              (L.level a node) key node
              (String.concat ";" (List.map (fun (k,_) -> string_of_int k) (Node.entries_debug a l node))));
          (* The level argument is a charged read: only pay it when
             tracing is on, so the disabled path is cost-free. *)
          if Trace.enabled t.tracer then
            Trace.span_begin t.tracer Trace.id_fast_shift (L.level a node);
          Node.insert_nonfull a l node ~key ~value ~mode:t.mode;
          Trace.span_end t.tracer Trace.id_fast_shift;
          wunlock t node
        end
        else split_and_insert t node key value
  end

(* Insert a separator into the internal level [level], growing the root
   if the tree is shorter than that. *)
and insert_at_level t ~level ~key ~child ~donor =
  let a = t.arena in
  let rt = root t in
  if L.level a rt < level then grow_root t ~level ~sep:key ~child ~donor
  else begin
    let rec descend n =
      let n = move_right_if_beyond t n key in
      if L.level a n = level then n
      else descend (Node.find_child a t.layout n ~mode:t.mode ~tr:t.tracer key)
    in
    insert_into_node t (descend rt) key child ~internal:true
  end

and grow_root t ~level ~sep ~child ~donor =
  let a = t.arena and l = t.layout in
  Locks.lock t.root_mutex;
  let rt = root t in
  if L.level a rt >= level then begin
    (* Someone grew the root first; retry as a normal insert. *)
    Locks.unlock t.root_mutex;
    insert_at_level t ~level ~key:sep ~child ~donor
  end
  else if rt <> donor then begin
    (* The tree is shorter than [level] but we did not split the root
       itself: the root's own split is still promoting.  Only that
       thread may grow the root (its node must become the new root's
       leftmost child); wait for it and retry. *)
    Locks.unlock t.root_mutex;
    Arena.cpu_work a 100;
    grow_root t ~level ~sep ~child ~donor
  end
  else begin
    let nr = Arena.alloc a l.L.node_words in
    Node.init a l nr ~level ~leftmost:donor ~low:0;
    append_raw t nr 0 sep child;
    L.set_count_hint a nr 1;
    Arena.flush_range a nr l.L.node_words;
    Arena.root_set a t.root_slot nr;
    Locks.unlock t.root_mutex;
    if Trace.enabled t.tracer then begin
      Trace.incr t.tracer "fastfair.root_grows";
      Trace.instant t.tracer (Trace.intern t.tracer "root_grow") level
    end
  end

let insert t ~key ~value =
  if key <= 0 then invalid_arg "Tree.insert: key must be positive";
  if value = 0 then invalid_arg "Tree.insert: value must be nonzero";
  with_op t Trace.id_insert "fastfair.latency_ns.insert"
    "fastfair.flushes_per_op.insert" key
  @@ fun () ->
  let a = t.arena in
  Arena.set_phase a Stats.Search;
  let leaf = to_leaf t (root t) key in
  insert_into_node t leaf key value ~internal:false;
  Arena.set_phase a Stats.Other

(* ------------------------------------------------------------------ *)
(* Deletion (in-node FAST left shift; no structural rebalance, like    *)
(* the released implementation)                                        *)
(* ------------------------------------------------------------------ *)

let delete t key =
  with_op t Trace.id_delete "fastfair.latency_ns.delete"
    "fastfair.flushes_per_op.delete" key
  @@ fun () ->
  let a = t.arena and l = t.layout in
  Arena.set_phase a Stats.Search;
  let leaf = to_leaf t (root t) key in
  let rec del leaf =
    wlock t leaf;
    writer_fix_if_pending t leaf;
    let s = L.sibling a leaf in
    if s <> 0 && chain_covers t s key then begin
      wunlock t leaf;
      del s
    end
    else begin
      Arena.set_phase a Stats.Update;
      let found = Node.delete a l leaf key in
      wunlock t leaf;
      found
    end
  in
  let r = del leaf in
  Arena.set_phase a Stats.Other;
  r

(* ------------------------------------------------------------------ *)
(* Range scan                                                          *)
(* ------------------------------------------------------------------ *)

let range t ~lo ~hi f =
  with_op t Trace.id_range "fastfair.latency_ns.range"
    "fastfair.flushes_per_op.range" lo
  @@ fun () ->
  let a = t.arena and l = t.layout in
  Arena.set_phase a Stats.Search;
  let leaf = to_leaf t (root t) lo in
  let last = ref (lo - 1) in
  let rec scan node =
    rlock t node;
    let cap = l.L.capacity in
    let beyond = ref false in
    let rec go i prev_raw =
      if i < cap && not !beyond then begin
        let p = L.ptr a node i in
        if p <> 0 then begin
          let k = L.key a node i in
          if p <> prev_raw then begin
            if k > hi then beyond := true
            else if k >= lo && k > !last then begin
              f k p;
              last := k
            end
          end;
          go (i + 1) p
        end
      end
    in
    go 0 (L.leftmost a node);
    let s = L.sibling a node in
    runlock t node;
    if (not !beyond) && s <> 0 then scan s
  in
  scan leaf;
  Arena.set_phase a Stats.Other

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

let leftmost_of_level t level =
  let a = t.arena in
  let rec go n = if L.level a n > level then go (L.leftmost a n) else n in
  go (root t)

let chain_of t first =
  let a = t.arena in
  let rec go n acc = if n = 0 then List.rev acc else go (L.sibling a n) (n :: acc) in
  go first []

let eager_recover t =
  let a = t.arena and l = t.layout in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 64 do
    changed := false;
    incr rounds;
    (* Grow the root if it has been split but the new root never
       committed. *)
    let rt = root t in
    (if L.sibling a rt <> 0 then begin
       let s = L.sibling a rt in
       changed := true;
       grow_root t ~level:(L.level a rt + 1) ~sep:(L.low a s) ~child:s ~donor:rt
     end);
    let rt = root t in
    let top = L.level a rt in
    for level = top downto 0 do
      let chain = chain_of t (leftmost_of_level t level) in
      (* Node-local repairs. *)
      List.iter
        (fun n ->
          if Node.writer_fix a l n then begin
            changed := true;
            Trace.incr t.tracer "fastfair.recovery.fixes"
          end;
          complete_truncation t n)
        chain;
      (* Re-attach dangling siblings: collect children referenced from
         the parent level, then insert any unreferenced node. *)
      if level < top then begin
        let referenced = Hashtbl.create 64 in
        let parents = chain_of t (leftmost_of_level t (level + 1)) in
        List.iter
          (fun p ->
            Hashtbl.replace referenced (L.leftmost a p) ();
            List.iter
              (fun (_, c) -> Hashtbl.replace referenced c ())
              (Node.entries_debug a l p))
          parents;
        List.iteri
          (fun i n ->
            if i > 0 && not (Hashtbl.mem referenced n) then begin
              changed := true;
              insert_at_level t ~level:(level + 1) ~key:(L.low a n) ~child:n
                ~donor:n
            end)
          chain
      end
    done
  done

let recover ?(lazy_ = false) t =
  Trace.span_begin t.tracer Trace.id_recovery (if lazy_ then 1 else 0);
  Hashtbl.reset t.clean;
  if t.split_policy = Logged then restore_from_log t;
  if lazy_ then t.lazy_pending <- true else eager_recover t;
  Trace.span_end t.tracer Trace.id_recovery

(* ------------------------------------------------------------------ *)
(* Misc                                                                *)
(* ------------------------------------------------------------------ *)

let height t = L.level t.arena (root t) + 1

let reachable_nodes t =
  let a = t.arena in
  let seen = Hashtbl.create 256 in
  let acc = ref [] in
  let rec visit n =
    if n <> 0 && not (Hashtbl.mem seen n) then begin
      Hashtbl.replace seen n ();
      acc := n :: !acc;
      let level = Arena.peek a (n + L.off_level) in
      visit (Arena.peek a (n + L.off_sibling));
      if level > 0 then begin
        visit (Arena.peek a (n + L.off_leftmost));
        List.iter (fun (_, c) -> visit c) (Node.entries_debug a t.layout n)
      end
    end
  in
  visit (root t);
  List.rev !acc

let ops t =
  Intf.make ~name:"fastfair"
    ~insert:(fun k v -> insert t ~key:k ~value:v)
    ~search:(fun k -> search t k)
    ~delete:(fun k -> delete t k)
    ~range:(fun lo hi f -> range t ~lo ~hi f)
    ~recover:(fun () -> recover t)
    ~close:(fun () -> Arena.drain t.arena)
    ~set_tracer:(set_tracer t)
    ()

let min_entry t =
  let a = t.arena and l = t.layout in
  let rec leftmost n = if L.is_leaf a n then n else leftmost (L.leftmost a n) in
  let rec first n =
    if n = 0 then None
    else
      match Node.first_entry a l n with
      | Some e -> Some e
      | None -> first (L.sibling a n)
  in
  first (leftmost (root t))

let max_entry t =
  let a = t.arena and l = t.layout in
  (* rightmost leaf via rightmost children, then the chain's end *)
  let rec rightmost n =
    if L.is_leaf a n then n
    else
      match Node.last_entry a l n with
      | Some (_, child) -> rightmost child
      | None -> rightmost (L.leftmost a n)
  in
  let rec chase n best =
    let best = match Node.last_entry a l n with Some e -> Some e | None -> best in
    let s = L.sibling a n in
    if s = 0 then best else chase s best
  in
  chase (rightmost (root t)) None

let cardinal t =
  let a = t.arena and l = t.layout in
  let rec leftmost n = if L.is_leaf a n then n else leftmost (L.leftmost a n) in
  let rec go n acc =
    if n = 0 then acc
    else go (L.sibling a n) (acc + List.length (Node.entries_debug a l n))
  in
  go (leftmost (root t)) 0

(* ------------------------------------------------------------------ *)
(* Registry descriptors: one per policy/lock variant                   *)
(* ------------------------------------------------------------------ *)

let descriptor ~name ~summary ?split_policy ?(leaf_read_locks = false) () =
  let module D = Ff_index.Descriptor in
  {
    D.name;
    summary;
    caps =
      {
        D.has_range = true;
        has_delete = true;
        has_recovery = true;
        is_persistent = true;
        lock_modes = [ Locks.Single; Locks.Sim ];
        lock_free_reads = not leaf_read_locks;
        tunable_node_bytes = true;
        relocatable_root = true;
        scrubbable = true;
        txnable = true;
        snapshottable = false;
      };
    composite = None;
    build =
      (fun cfg a ->
        ops
          (create ?node_bytes:cfg.D.node_bytes ?split_policy
             ~lock_mode:cfg.D.lock_mode ~leaf_read_locks
             ~root_slot:cfg.D.root_slot a));
    open_existing =
      (fun cfg a ->
        ops
          (open_existing ?node_bytes:cfg.D.node_bytes ?split_policy
             ~lock_mode:cfg.D.lock_mode ~leaf_read_locks
             ~root_slot:cfg.D.root_slot a));
  }

let () =
  let r = Ff_index.Registry.register in
  r
    (descriptor ~name:"fastfair"
       ~summary:"FAST+FAIR persistent B+-tree (the paper's design)" ());
  r
    (descriptor ~name:"fastfair-logged"
       ~summary:"FAST with legacy logged splits (Figure 5's FAST+Logging)"
       ~split_policy:Logged ());
  r
    (descriptor ~name:"fastfair-leaflock"
       ~summary:"FAST+FAIR with serializable leaf read locks (Section 4.1)"
       ~leaf_read_locks:true ())
