module Arena = Ff_pmem.Arena
module Intf = Ff_index.Intf

(* Value cells are carved from line-grained allocations; a volatile
   free list recycles deleted cells (cell reachability is re-derivable
   from the tree, like the allocator's own metadata). *)
type t = {
  tree : Tree.t;
  arena : Arena.t;
  mutable pool_line : int;
  mutable pool_used : int;
  mutable free_cells : int list;
}

let make tree arena =
  { tree; arena; pool_line = 0; pool_used = Arena.words_per_line; free_cells = [] }

let create ?node_bytes ?root_slot arena =
  make (Tree.create ?node_bytes ?root_slot arena) arena

let open_existing ?node_bytes ?root_slot arena =
  make (Tree.open_existing ?node_bytes ?root_slot arena) arena

let tree t = t.tree

let alloc_cell t =
  match t.free_cells with
  | c :: rest ->
      t.free_cells <- rest;
      c
  | [] ->
      if t.pool_used = Arena.words_per_line then begin
        t.pool_line <- Arena.alloc_raw t.arena Arena.words_per_line;
        t.pool_used <- 0
      end;
      let c = t.pool_line + t.pool_used in
      t.pool_used <- t.pool_used + 1;
      c

let put t ~key ~value =
  match Tree.search t.tree key with
  | Some cell ->
      (* In-place failure-atomic update of the existing cell. *)
      Arena.write t.arena cell value;
      Arena.flush t.arena cell
  | None ->
      let cell = alloc_cell t in
      (* The cell must be durable before the key commits to it. *)
      Arena.write t.arena cell value;
      Arena.flush t.arena cell;
      Tree.insert t.tree ~key ~value:cell

let get t key =
  match Tree.search t.tree key with
  | Some cell -> Some (Arena.read t.arena cell)
  | None -> None

let delete t key =
  match Tree.search t.tree key with
  | Some cell ->
      let removed = Tree.delete t.tree key in
      if removed then t.free_cells <- cell :: t.free_cells;
      removed
  | None -> false

let range t ~lo ~hi f =
  Tree.range t.tree ~lo ~hi (fun k cell -> f k (Arena.read t.arena cell))

let recover ?lazy_ t =
  Tree.recover ?lazy_ t.tree;
  (* Discard the volatile free list: a cell freed before the crash may
     have been re-committed; reachability decides. *)
  t.free_cells <- [];
  t.pool_used <- Arena.words_per_line

let ops t =
  Intf.make ~name:"fastfair-kv"
    ~insert:(fun k v -> put t ~key:k ~value:v)
    ~search:(fun k -> get t k)
    ~delete:(fun k -> delete t k)
    ~range:(fun lo hi f -> range t ~lo ~hi f)
    ~recover:(fun () -> recover t)
    ~update:(fun k v ->
      match get t k with
      | None -> false
      | Some _ ->
          put t ~key:k ~value:v;
          true)
    ~close:(fun () -> Arena.drain t.arena)
    ()

let () =
  let module D = Ff_index.Descriptor in
  Ff_index.Registry.register
    {
      D.name = "fastfair-kv";
      summary =
        "KV layer over FAST+FAIR: values in persistent cells, so duplicates \
         and zero are allowed";
      caps =
        {
          D.has_range = true;
          has_delete = true;
          has_recovery = true;
          is_persistent = true;
          lock_modes = [ Ff_index.Locks.Single ];
          lock_free_reads = false;
          tunable_node_bytes = true;
          relocatable_root = true;
          scrubbable = false;
          txnable = true;
          snapshottable = false;
        };
      composite = None;
      build =
        (fun cfg a ->
          ops (create ?node_bytes:cfg.D.node_bytes ~root_slot:cfg.D.root_slot a));
      open_existing =
        (fun cfg a ->
          ops
            (open_existing ?node_bytes:cfg.D.node_bytes
               ~root_slot:cfg.D.root_slot a));
    }
