(* Media-fault repair and reachability hooks for the FAST+FAIR tree.

   This module backs the [scrubbable] capability of the fastfair
   descriptors: it registers a {!Ff_index.Registry.register_scrub}
   provider that can enumerate reachable blocks, re-derive poisoned
   lines from surviving structure, and validate the result against
   {!Invariant}.  Everything reads through uncharged peeks — the
   scrubber must be able to inspect a damaged device without tripping
   the very {!Ff_pmem.Arena.Media_error} it is diagnosing.  Writes go
   through ordinary charged stores, which clear the poison (the
   full-line-overwrite repair of real platforms) and are flushed like
   any recovery-time write.

   Repair policy (conservative, structure-first):
   - split-log lines are zeroed: the log is an idempotent redo record,
     and an invalid flag word is the safe state;
   - a poisoned leaf RECORD line is quarantined: surviving records from
     clean lines are compacted in place, the lost ones are counted;
   - a poisoned leaf HEADER is re-derived from the parent level (the
     separator is the leaf's low key, the in-order successor is its
     sibling) when the inner levels are sound;
   - any poisoned INNER node triggers a full rebuild of every inner
     level from the leaf chain — inner nodes are pure routing state, so
     they can always be re-derived while the chain is intact.  The old
     inner nodes are zeroed and become leaked blocks for the scrubber
     to reclaim. *)

module Arena = Ff_pmem.Arena
module D = Ff_index.Descriptor
module L = Layout

let wpl = Arena.words_per_line

type ctx = { a : Arena.t; t : Tree.t; l : L.t; root_slot : int }

let pk c addr = Arena.peek c.a addr
let line_clean c line = not (Arena.is_poisoned c.a (line * wpl))
let header_clean c n = not (Arena.is_poisoned c.a n)
let root c = pk c c.root_slot
let log_area c = pk c (c.root_slot + 1)
let log_words c = c.l.L.node_words + wpl

let in_node c n addr = addr >= n && addr < n + c.l.L.node_words

let plausible_node c n =
  n >= Arena.reserved_words
  && n mod wpl = 0
  && n + c.l.L.node_words <= Arena.capacity c.a

(* Poison-aware reachability walk.  Pointers are only followed out of
   clean lines, and only into plausible node addresses whose level
   matches the position in the tree — scrambled lines cannot steer the
   walk into garbage.  Returns the visit table (node -> level, with
   [-1] when the level is unknown because the header is poisoned). *)
let walk c =
  let seen : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let rec visit n expected =
    if plausible_node c n && not (Hashtbl.mem seen n) then begin
      if header_clean c n then begin
        let level = pk c (n + L.off_level) in
        if expected < 0 || level = expected then begin
          Hashtbl.replace seen n level;
          visit (pk c (n + L.off_sibling)) level;
          if level > 0 then begin
            visit (pk c (n + L.off_leftmost)) (level - 1);
            for i = 0 to c.l.L.capacity - 1 do
              let po = n + L.ptr_off i in
              if line_clean c (po / wpl) then begin
                let p = pk c po in
                if p <> 0 then visit p (level - 1)
              end
            done
          end
        end
      end
      else
        (* Damaged header: the block is reachable (something pointed at
           it) but its contents cannot be trusted for further routing. *)
        Hashtbl.replace seen n (max expected (-1))
    end
  in
  visit (root c) (-1);
  seen

let reachable_blocks c =
  let seen = walk c in
  let nodes =
    List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) seen [])
  in
  let blocks = List.map (fun n -> (n, c.l.L.node_words)) nodes in
  let la = log_area c in
  if la <> 0 then (la, log_words c) :: blocks else blocks

(* ------------------------------------------------------------------ *)
(* Leaf-order enumeration via the inner levels                         *)
(* ------------------------------------------------------------------ *)

(* In-order (separator, leaf) sequence derived from the level-1 chain:
   the leftmost child's separator is the parent's low key, child [i]'s
   is key [i].  Poison-aware: entries are only read out of clean
   lines, and the chain is only followed through clean headers — a
   damaged parent contributes nothing (its leaves fall back to
   self-derived separators), it cannot contribute garbage. *)
let leaf_sequence c =
  let r = root c in
  if not (header_clean c r) then []
  else begin
    let top = pk c (r + L.off_level) in
    if top = 0 then [ (pk c (r + L.off_low), r) ]
    else begin
      let rec leftmost_at n lvl target =
        if n = 0 || not (header_clean c n) then 0
        else if lvl = target then n
        else leftmost_at (pk c (n + L.off_leftmost)) (lvl - 1) target
      in
      let acc = ref [] in
      let n = ref (leftmost_at r top 1) in
      while !n <> 0 do
        let p = !n in
        acc := (pk c (p + L.off_low), pk c (p + L.off_leftmost)) :: !acc;
        for i = 0 to c.l.L.capacity - 1 do
          let ko = p + L.key_off i in
          if line_clean c (ko / wpl) then begin
            let ptr = pk c (p + L.ptr_off i) in
            if ptr <> 0 then acc := (pk c ko, ptr) :: !acc
          end
        done;
        let s = pk c (p + L.off_sibling) in
        n :=
          if s <> 0 && plausible_node c s && header_clean c s
             && pk c (s + L.off_level) = 1
          then s
          else 0
      done;
      List.rev !acc
    end
  end

(* ------------------------------------------------------------------ *)
(* Line repairs                                                        *)
(* ------------------------------------------------------------------ *)

let zero_line c line =
  let base = line * wpl in
  for w = base to base + wpl - 1 do
    Arena.write c.a w 0
  done;
  Arena.flush c.a base

(* Compact a leaf whose record area has poisoned lines: keep the
   records whose lines are clean, rewrite them densely, zero the rest.
   Offline (the scrubber owns the tree), so plain stores suffice. *)
let compact_leaf c n bad_lines =
  let survivors = ref [] in
  for i = c.l.L.capacity - 1 downto 0 do
    let ko = n + L.key_off i in
    if line_clean c (ko / wpl) then begin
      let k = pk c ko and p = pk c (ko + 1) in
      if p <> 0 then survivors := (k, p) :: !survivors
    end
  done;
  let survivors =
    List.sort_uniq (fun (k1, _) (k2, _) -> compare k1 k2) !survivors
  in
  let old_hint = if header_clean c n then pk c (n + L.off_count) else 0 in
  List.iteri
    (fun i (k, p) ->
      Arena.write c.a (n + L.key_off i) k;
      Arena.write c.a (n + L.ptr_off i) p)
    survivors;
  let nsurv = List.length survivors in
  for i = nsurv to c.l.L.capacity - 1 do
    Arena.write c.a (n + L.key_off i) 0;
    Arena.write c.a (n + L.ptr_off i) 0
  done;
  if header_clean c n then Arena.write c.a (n + L.off_count) nsurv;
  Arena.flush_range c.a n c.l.L.node_words;
  (* The rewrite already cleared the poison; report which lines were
     dropped and a best-effort loss count. *)
  (List.length bad_lines, max 0 (old_hint - nsurv))

(* Re-derive a poisoned leaf header.  Preferred source: the parent
   level (low = routing separator, sibling = in-order successor).
   Fallback when the parent info did not survive: the leaf's own
   smallest surviving record key — every record is >= the true low
   key, so using it as the separator preserves chain order; the
   sibling is left 0 and the caller must rebuild (and relink) the
   whole routing structure.  [R_failed] means nothing survived at all:
   the leaf cannot be re-derived and must be dropped. *)
type rederive = R_parent | R_selflow | R_failed

let rederive_leaf_header c n seq =
  let write_header ~sep ~succ =
    Arena.write c.a (n + L.off_level) 0;
    Arena.write c.a (n + L.off_sibling) succ;
    Arena.write c.a (n + L.off_switch) 0;
    Arena.write c.a (n + L.off_leftmost) n;
    Arena.write c.a (n + L.off_low) sep;
    Arena.write c.a (n + (L.off_low + 1)) 0;
    Arena.write c.a (n + (L.off_low + 2)) 0;
    let cnt = ref 0 in
    (try
       for i = 0 to c.l.L.capacity - 1 do
         if pk c (n + L.ptr_off i) = 0 then raise Exit;
         incr cnt
       done
     with Exit -> ());
    Arena.write c.a (n + L.off_count) !cnt;
    Arena.flush_range c.a n wpl
  in
  let rec find = function
    | (sep, leaf) :: rest when leaf = n ->
        let succ = match rest with (_, s) :: _ -> s | [] -> 0 in
        Some (sep, succ)
    | _ :: rest -> find rest
    | [] -> None
  in
  match find seq with
  | Some (sep, succ) ->
      write_header ~sep ~succ;
      R_parent
  | None ->
      let mink = ref max_int in
      for i = 0 to c.l.L.capacity - 1 do
        let ko = n + L.key_off i in
        if line_clean c (ko / wpl) && pk c (n + L.ptr_off i) <> 0 then
          mink := min !mink (pk c ko)
      done;
      if !mink = max_int then R_failed
      else begin
        write_header ~sep:!mink ~succ:0;
        R_selflow
      end

(* Rebuild every inner level from the leaf chain.  Inner nodes are
   routing state only, so as long as the chain of repaired leaves is
   walkable the whole upper tree can be re-derived.  Old inner nodes
   are zeroed (clearing any poison) and left for leak reclamation. *)
let rebuild_inners c old_inners leaves =
  List.iter
    (fun n ->
      for line = n / wpl to (n + c.l.L.node_words) / wpl - 1 do
        if not (line_clean c line) then zero_line c line
      done;
      Arena.write c.a (n + L.off_sibling) 0;
      Arena.write c.a (n + L.off_leftmost) 0;
      for i = 0 to c.l.L.capacity - 1 do
        Arena.write c.a (n + L.ptr_off i) 0
      done;
      Arena.flush_range c.a n c.l.L.node_words)
    old_inners;
  let fanout = max 2 c.l.L.capacity in
  let rec build level children =
    match children with
    | [] -> ()
    | [ (_, only) ] -> Arena.root_set c.a c.root_slot only
    | _ ->
        let rec pack acc = function
          | [] -> List.rev acc
          | (low0, first) :: rest ->
              let rec take n acc rest =
                match rest with
                | e :: tl when n > 0 -> take (n - 1) (e :: acc) tl
                | _ -> (List.rev acc, rest)
              in
              let entries, rest = take (fanout - 1) [] rest in
              let node = Arena.alloc c.a c.l.L.node_words in
              Node.init c.a c.l node ~level ~leftmost:first ~low:low0;
              List.iteri
                (fun i (k, child) ->
                  Arena.write c.a (node + L.key_off i) k;
                  Arena.write c.a (node + L.ptr_off i) child)
                entries;
              Arena.write c.a (node + L.off_count) (List.length entries);
              pack ((low0, node) :: acc) rest
        in
        let parents = pack [] children in
        let rec link = function
          | (_, x) :: ((_, y) :: _ as rest) ->
              Arena.write c.a (x + L.off_sibling) y;
              link rest
          | _ -> ()
        in
        link parents;
        List.iter
          (fun (_, n) -> Arena.flush_range c.a n c.l.L.node_words)
          parents;
        build (level + 1) parents
  in
  build 1 leaves

(* ------------------------------------------------------------------ *)
(* The repair entry point                                              *)
(* ------------------------------------------------------------------ *)

let repair c lines =
  let repaired = ref [] and quarantined = ref [] and lost = ref 0 in
  let seen = walk c in
  let owner addr =
    Hashtbl.fold
      (fun n lvl acc -> if in_node c n addr then Some (n, lvl) else acc)
      seen None
  in
  let la = log_area c in
  let in_log addr = la <> 0 && addr >= la && addr < la + log_words c in
  (* Partition the poisoned lines by what owns them. *)
  let log_lines = ref [] and node_lines = ref [] in
  List.iter
    (fun line ->
      let addr = line * wpl in
      if in_log addr then log_lines := line :: !log_lines
      else
        match owner addr with
        | Some (n, lvl) -> node_lines := (n, lvl, line) :: !node_lines
        | None -> () (* unreachable: leak reclamation will clear it *))
    lines;
  (* 1. Split-log damage: zero it; an invalid log is the safe state. *)
  List.iter
    (fun line ->
      zero_line c line;
      repaired := line :: !repaired)
    (List.rev !log_lines);
  let damaged_inners =
    List.sort_uniq compare
      (List.filter_map
         (fun (n, lvl, _) -> if lvl <> 0 then Some n else None)
         !node_lines)
  in
  let inner_damage = damaged_inners <> [] in
  (* 2. Leaf record lines: compact the survivors in place. *)
  let leaf_groups = Hashtbl.create 8 in
  List.iter
    (fun (n, lvl, line) ->
      if lvl = 0 && line <> n / wpl then begin
        let prev = try Hashtbl.find leaf_groups n with Not_found -> [] in
        Hashtbl.replace leaf_groups n (line :: prev)
      end)
    !node_lines;
  Hashtbl.iter
    (fun n bad ->
      let dropped, l = compact_leaf c n bad in
      ignore dropped;
      lost := !lost + l;
      quarantined := bad @ !quarantined)
    leaf_groups;
  (* 3. Leaf headers: re-derive from surviving parent info while it is
     still present (the rebuild below discards the old routing), else
     from the leaf's own surviving records — which breaks the chain at
     that leaf and forces a rebuild. *)
  let header_leaves =
    List.sort_uniq compare
      (List.filter_map
         (fun (n, lvl, line) ->
           if lvl = 0 && line = n / wpl then Some n else None)
         !node_lines)
  in
  let rebuild_needed = ref inner_damage in
  (if header_leaves <> [] then begin
     let seq = leaf_sequence c in
     List.iter
       (fun n ->
         match rederive_leaf_header c n seq with
         | R_parent -> repaired := (n / wpl) :: !repaired
         | R_selflow ->
             repaired := (n / wpl) :: !repaired;
             rebuild_needed := true
         | R_failed ->
             (* Nothing survived: zero the whole node so the rebuild
                drops it from the chain; the block becomes a leak. *)
             for line = n / wpl to (n + c.l.L.node_words - 1) / wpl do
               zero_line c line
             done;
             quarantined := (n / wpl) :: !quarantined;
             rebuild_needed := true)
       header_leaves
   end);
  (* 4. Rebuild every routing level from the repaired leaf set.  A
     fresh walk (all headers are clean now) finds every live leaf —
     including ones only reachable through a surviving parent pointer
     when the sibling chain was severed.  The whole chain is relinked
     in key order, then the inner levels are rebuilt from it; old
     inner nodes (damaged or merely abandoned) become leaks. *)
  (if !rebuild_needed then begin
     let seen2 = walk c in
     let leaves =
       Hashtbl.fold
         (fun n lvl acc ->
           if lvl = 0 && header_clean c n && pk c (n + L.off_leftmost) = n
           then n :: acc
           else acc)
         seen2 []
     in
     let keyed =
       List.sort compare (List.map (fun n -> (pk c (n + L.off_low), n)) leaves)
     in
     match keyed with
     | [] -> () (* nothing to hang the tree from; validate will report *)
     | _ ->
         let rec relink = function
           | (_, x) :: ((_, y) :: _ as rest) ->
               Arena.write c.a (x + L.off_sibling) y;
               Arena.flush c.a (x + L.off_sibling);
               relink rest
           | [ (_, last) ] ->
               Arena.write c.a (last + L.off_sibling) 0;
               Arena.flush c.a (last + L.off_sibling)
           | [] -> ()
         in
         relink keyed;
         let old_inners =
           Hashtbl.fold
             (fun n lvl acc -> if lvl <> 0 then n :: acc else acc)
             seen2 []
         in
         rebuild_inners c old_inners keyed;
         List.iter
           (fun (_, lvl, line) -> if lvl <> 0 then repaired := line :: !repaired)
           !node_lines
   end);
  {
    D.repaired_lines = List.sort_uniq compare !repaired;
    quarantined_lines = List.sort_uniq compare !quarantined;
    lost_records = !lost;
  }

(* ------------------------------------------------------------------ *)
(* Provider registration                                               *)
(* ------------------------------------------------------------------ *)

let validate c =
  try Invariant.check c.t with e -> [ Printexc.to_string e ]

let provider ?split_policy () (cfg : D.config) a =
  let t =
    Tree.open_existing ?node_bytes:cfg.D.node_bytes ?split_policy
      ~root_slot:cfg.D.root_slot a
  in
  let c = { a; t; l = Tree.layout t; root_slot = cfg.D.root_slot } in
  {
    D.scrub_grain = c.l.L.node_words;
    scrub_reachable = (fun () -> reachable_blocks c);
    scrub_repair = (fun lines -> repair c lines);
    scrub_validate = (fun () -> validate c);
  }

let () =
  let r = Ff_index.Registry.register_scrub in
  r "fastfair" (provider ());
  r "fastfair-logged" (provider ~split_policy:Tree.Logged ());
  r "fastfair-leaflock" (provider ())
