(** The FAST+FAIR persistent B+-tree.

    Wraps the node-level FAST algorithms into a full index: B-link
    style descent over sibling pointers, FAIR in-place node splits
    (Algorithm 2), non-blocking lock-free reads, root growth, deletes,
    range scans, and both lazy (writer-driven, Section 4.2) and eager
    recovery.

    Keys are positive ints; values are nonzero ints and must be unique
    across the tree (the paper's record-pointer uniqueness, which the
    duplicate-pointer validity rule depends on).  [insert] of an
    existing key updates its value in place with a single
    failure-atomic 8-byte store. *)

type split_policy =
  | Fair    (** the paper's FAIR in-place rebalance *)
  | Logged  (** legacy logged split — the "FAST+Logging" baseline of
                Figure 5 *)

type t

val create :
  ?node_bytes:int ->
  ?mode:Node.search_mode ->
  ?split_policy:split_policy ->
  ?lock_mode:Ff_index.Locks.mode ->
  ?leaf_read_locks:bool ->
  ?root_slot:int ->
  Ff_pmem.Arena.t ->
  t
(** Build a fresh empty tree.  Defaults: 512-byte nodes (the paper's
    sweet spot), linear search, FAIR splits, single-threaded locks,
    lock-free reads.  [leaf_read_locks = true] selects the
    serializable FAST+FAIR+LeafLock variant of Section 4.1.
    [root_slot] is the arena root slot holding the root pointer. *)

val open_existing :
  ?node_bytes:int ->
  ?mode:Node.search_mode ->
  ?split_policy:split_policy ->
  ?lock_mode:Ff_index.Locks.mode ->
  ?leaf_read_locks:bool ->
  ?root_slot:int ->
  Ff_pmem.Arena.t ->
  t
(** Reattach to a persisted tree (e.g. after {!Ff_pmem.Arena.power_fail});
    the caller should then run {!recover}. *)

val arena : t -> Ff_pmem.Arena.t
val layout : t -> Layout.t
val root_slot : t -> int
val root : t -> Layout.node

val insert : t -> key:int -> value:int -> unit
val search : t -> int -> int option
val delete : t -> int -> bool

val range : t -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** Ascending leaf-chain scan over [lo, hi], deduplicating the
    transient repetitions a concurrent shift or an untruncated split
    donor can produce. *)

val recover : ?lazy_:bool -> t -> unit
(** Post-crash normalization.  [lazy_ = true] (paper Section 4.2)
    defers repair to write threads: each node is fixed the first time
    a writer locks it, and a dangling sibling is re-attached to the
    parent by the next writer that reaches it through the sibling
    pointer.  [lazy_ = false] (default) repairs everything eagerly:
    completes interrupted splits (truncation, parent insertion, root
    growth) and compacts duplicate-pointer garbage in every reachable
    node. *)

val ops : t -> Ff_index.Intf.ops
(** Uniform driver view. *)

val set_tracer : t -> Ff_trace.Trace.t -> unit
(** Attach an observability tracer (see {!Ff_trace.Trace}): tree
    operations become spans, splits / sibling chases / root grows /
    recovery fixes become counters, per-op latency and flush counts
    feed histograms, and lock-free readers record every
    duplicate-adjacent-pointer skip — the paper's tolerated transient
    inconsistency, made visible.  Defaults to {!Ff_trace.Trace.null},
    which costs one branch per site.  PM-level store/flush/fence
    events additionally require the tracer to be built with
    {!Ff_trace.Trace.for_arena}, which installs the arena sink. *)

val tracer : t -> Ff_trace.Trace.t

val height : t -> int
val reachable_nodes : t -> Layout.node list
(** All nodes reachable from the root (uncharged; checker/debug). *)

(**/**)

val set_trace : t -> (string -> unit) -> unit
(** Debug hook: called with a line per structural event. *)

val min_entry : t -> (int * int) option
(** Smallest (key, value), or [None] when empty. *)

val max_entry : t -> (int * int) option
(** Largest (key, value), or [None] when empty. *)

val cardinal : t -> int
(** Number of keys (leaf-chain walk; uncharged entry counting). *)
