(** Media-fault repair and reachability hooks backing the fastfair
    descriptors' [scrubbable] capability.

    Registered with {!Ff_index.Registry.register_scrub} for
    ["fastfair"], ["fastfair-logged"] and ["fastfair-leaflock"] at
    module-initialization time ([-linkall]).  All inspection is done
    with uncharged peeks so a damaged device can be examined without
    raising {!Ff_pmem.Arena.Media_error}; all repairs are ordinary
    charged stores (which clear line poison) followed by flushes.

    Repair policy: split-log lines are zeroed (an invalid log is the
    safe state); poisoned leaf record lines are quarantined and the
    surviving records compacted; a poisoned leaf header is re-derived
    from the parent level when the inner levels are sound; any
    poisoned inner node triggers a rebuild of all routing levels from
    the leaf chain — inner nodes carry no primary data, so they can be
    re-derived whenever the chain is walkable.  Abandoned inner nodes
    are zeroed and left for leak reclamation. *)

val provider :
  ?split_policy:Tree.split_policy ->
  unit ->
  Ff_index.Descriptor.config ->
  Ff_pmem.Arena.t ->
  Ff_index.Descriptor.scrub_ops
(** Build scrub hooks bound to the persisted tree instance described
    by the config (node size, root slot).  Exposed for composite
    descriptors (e.g. the sharding layer) that wrap per-shard hooks. *)
