module Arena = Ff_pmem.Arena
module Prng = Ff_util.Prng
module Locks = Ff_index.Locks
module Intf = Ff_index.Intf

let max_level = 20

(* PM node: [0] key, [1] value, [2] level-0 next.  One cache line per
   entry — deliberately poor locality, as in the paper. *)
let node_words = 3

type t = {
  arena : Arena.t;
  root_slot : int;
  head : int;
  rng : Prng.t;
  towers : (int, int array) Hashtbl.t; (* volatile next pointers, levels 1.. *)
  head_tower : int array;
  mutable levels : int; (* current number of levels in use (>= 1) *)
  mutable writer_lock : Locks.mutex;
}

let key_of t n = Arena.read t.arena n
let value_of t n = Arena.read t.arena (n + 1)
let next0 t n = Arena.read t.arena (n + 2)

let set_next0 t n v =
  Arena.write t.arena (n + 2) v;
  Arena.flush t.arena (n + 2)

(* Volatile hop: a DRAM pointer chase, charged as CPU work. *)
let next_at t n lvl =
  Arena.cpu_work t.arena 2;
  if n = t.head then if lvl < t.levels then t.head_tower.(lvl) else 0
  else
    match Hashtbl.find_opt t.towers n with
    | Some tower when lvl < Array.length tower -> tower.(lvl)
    | Some _ | None -> 0

let make ?(root_slot = 2) ?(seed = 0x51ab) arena existing =
  let head =
    if existing then Arena.root_get arena root_slot
    else begin
      let head = Arena.alloc arena node_words in
      Arena.flush_range arena head node_words;
      Arena.root_set arena root_slot head;
      head
    end
  in
  {
    arena;
    root_slot;
    head;
    rng = Prng.create seed;
    towers = Hashtbl.create 4096;
    head_tower = Array.make max_level 0;
    levels = 1;
    writer_lock = Locks.make_mutex Locks.Single;
  }

let create ?root_slot ?seed arena = make ?root_slot ?seed arena false
let open_existing ?root_slot ?seed arena = make ?root_slot ?seed arena true

let lock t = t.writer_lock
let set_lock_mode t mode = t.writer_lock <- Locks.make_mutex mode

let random_height t =
  let rec go h = if h < max_level && Prng.bool t.rng then go (h + 1) else h in
  go 1

(* Collect the predecessor at every level (the classic update path). *)
let find_predecessors t key =
  let update = Array.make max_level t.head in
  let x = ref t.head in
  for lvl = t.levels - 1 downto 1 do
    let continue_walk = ref true in
    while !continue_walk do
      let nxt = next_at t !x lvl in
      if nxt <> 0 && key_of t nxt < key then x := nxt else continue_walk := false
    done;
    update.(lvl) <- !x
  done;
  let continue_walk = ref true in
  while !continue_walk do
    let nxt = next0 t !x in
    if nxt <> 0 && key_of t nxt < key then x := nxt else continue_walk := false
  done;
  update.(0) <- !x;
  update

let search t key =
  let x = ref t.head in
  for lvl = t.levels - 1 downto 1 do
    let continue_walk = ref true in
    while !continue_walk do
      let nxt = next_at t !x lvl in
      if nxt <> 0 && key_of t nxt < key then x := nxt else continue_walk := false
    done
  done;
  let continue_walk = ref true in
  while !continue_walk do
    let nxt = next0 t !x in
    if nxt <> 0 && key_of t nxt < key then x := nxt else continue_walk := false
  done;
  let nxt = next0 t !x in
  if nxt <> 0 && key_of t nxt = key then Some (value_of t nxt) else None

let link_volatile t node height update =
  if height > 1 then begin
    let tower = Array.make height 0 in
    for lvl = 1 to height - 1 do
      let pred = update.(lvl) in
      let succ = next_at t pred lvl in
      tower.(lvl) <- succ;
      if pred = t.head then t.head_tower.(lvl) <- node
      else begin
        match Hashtbl.find_opt t.towers pred with
        | Some ptower when lvl < Array.length ptower -> ptower.(lvl) <- node
        | Some _ | None -> ()
      end
    done;
    Hashtbl.replace t.towers node tower;
    if height > t.levels then t.levels <- height
  end

let insert t ~key ~value =
  if key <= 0 then invalid_arg "Skiplist.insert: key must be positive";
  if value = 0 then invalid_arg "Skiplist.insert: value must be nonzero";
  Locks.lock t.writer_lock;
  Arena.set_phase t.arena Ff_pmem.Stats.Search;
  let update = find_predecessors t key in
  Arena.set_phase t.arena Ff_pmem.Stats.Update;
  let pred = update.(0) in
  let succ = next0 t pred in
  if succ <> 0 && key_of t succ = key then begin
    (* In-place failure-atomic value update. *)
    Arena.write t.arena (succ + 1) value;
    Arena.flush t.arena (succ + 1);
    Arena.set_phase t.arena Ff_pmem.Stats.Other;
    Locks.unlock t.writer_lock
  end
  else begin
    let node = Arena.alloc t.arena node_words in
    Arena.write t.arena node key;
    Arena.write t.arena (node + 1) value;
    Arena.write t.arena (node + 2) succ;
    Arena.flush_range t.arena node node_words;
    (* Commit: swing the predecessor's next pointer. *)
    set_next0 t pred node;
    link_volatile t node (random_height t) update;
    Arena.set_phase t.arena Ff_pmem.Stats.Other;
    Locks.unlock t.writer_lock
  end

let delete t key =
  Locks.lock t.writer_lock;
  let update = find_predecessors t key in
  let pred = update.(0) in
  let victim = next0 t pred in
  let found = victim <> 0 && key_of t victim = key in
  if found then begin
    (* Unlink volatile levels first so no reader routes through the
       victim above level 0. *)
    for lvl = 1 to t.levels - 1 do
      let p = update.(lvl) in
      if next_at t p lvl = victim then begin
        let succ = next_at t victim lvl in
        if p = t.head then t.head_tower.(lvl) <- succ
        else
          match Hashtbl.find_opt t.towers p with
          | Some tower when lvl < Array.length tower -> tower.(lvl) <- succ
          | Some _ | None -> ()
      end
    done;
    Hashtbl.remove t.towers victim;
    (* Failure-atomic level-0 unlink. *)
    set_next0 t pred (next0 t victim);
    Arena.free t.arena victim node_words
  end;
  Locks.unlock t.writer_lock;
  found

let range t ~lo ~hi f =
  let update = find_predecessors t lo in
  let x = ref (next0 t update.(0)) in
  let continue_walk = ref true in
  while !continue_walk && !x <> 0 do
    let k = key_of t !x in
    if k > hi then continue_walk := false
    else begin
      if k >= lo then f k (value_of t !x);
      x := next0 t !x
    end
  done

let recover t =
  Hashtbl.reset t.towers;
  Array.fill t.head_tower 0 max_level 0;
  t.levels <- 1;
  (* Walk the persistent level-0 list and rebuild the volatile index. *)
  let update = Array.make max_level t.head in
  let x = ref (next0 t t.head) in
  while !x <> 0 do
    let node = !x in
    let height = random_height t in
    if height > 1 then begin
      let tower = Array.make height 0 in
      Hashtbl.replace t.towers node tower;
      for lvl = 1 to height - 1 do
        let pred = update.(lvl) in
        if pred = t.head then t.head_tower.(lvl) <- node
        else begin
          match Hashtbl.find_opt t.towers pred with
          | Some ptower when lvl < Array.length ptower -> ptower.(lvl) <- node
          | Some _ | None -> ()
        end;
        update.(lvl) <- node
      done;
      if height > t.levels then t.levels <- height
    end;
    x := next0 t node
  done

let length t =
  let n = ref 0 in
  let x = ref (next0 t t.head) in
  while !x <> 0 do
    incr n;
    x := next0 t !x
  done;
  !n

let ops t =
  Intf.make ~name:"skiplist"
    ~insert:(fun k v -> insert t ~key:k ~value:v)
    ~search:(fun k -> search t k)
    ~delete:(fun k -> delete t k)
    ~range:(fun lo hi f -> range t ~lo ~hi f)
    ~recover:(fun () -> recover t)
    ~close:(fun () -> Arena.drain t.arena)
    ()

let () =
  let module D = Ff_index.Descriptor in
  Ff_index.Registry.register
    {
      D.name = "skiplist";
      summary = "persistent SkipList baseline (PM level-0 list, volatile towers)";
      caps =
        {
          D.has_range = true;
          has_delete = true;
          has_recovery = true;
          is_persistent = true;
          lock_modes = [ Locks.Single; Locks.Sim ];
          (* writers serialize on a mutex; readers traverse unlocked *)
          lock_free_reads = true;
          tunable_node_bytes = false;
          relocatable_root = true;
          scrubbable = false;
          txnable = true;
          snapshottable = false;
        };
      composite = None;
      build =
        (fun cfg a ->
          let s = create ~root_slot:cfg.D.root_slot a in
          set_lock_mode s cfg.D.lock_mode;
          ops s);
      open_existing =
        (fun cfg a ->
          let s = open_existing ~root_slot:cfg.D.root_slot a in
          set_lock_mode s cfg.D.lock_mode;
          ops s);
    }
