(** Sharded serving layer: partitioned ensembles of registry indexes
    with batched group-flush execution and a merged range cursor.

    The layer composes any capability-qualified inner structure (it
    must be persistent, recoverable, range-scannable and honour
    [config.root_slot]) into an [N]-way partitioned index:

    - {b Serving mode} ({!create}): one arena per shard, a request
      scheduler ({!submit}) that enqueues point ops per shard and
      drains each queue as one batch under an {!Ff_pmem.Arena}
      group-flush scope — flush write-backs overlap and one fence per
      batch replaces one fence per op.
    - {b Composite mode} ({!descriptor}): all shards carved from a
      single arena (shard [i]'s inner root at slots [2i, 2i+1], the
      shard manifest at slots 58-60), so the ensemble registers in
      {!Ff_index.Registry}, persists, crash-sweeps and reloads exactly
      like a plain structure.  ["sharded-fastfair"] self-registers.

    Cross-shard [range] merges per-shard ascending slices through a
    stable k-way heap cursor, so results are globally ordered even
    when a scan straddles shard boundaries.  After {!power_fail},
    {!recover_parallel} reopens and recovers every shard on its own
    simulated thread ({!Ff_mcsim.Mcsim}). *)

module Partition : sig
  type t =
    | Hash of int  (** scrambled modulo over [n] shards *)
    | Range of int array
        (** [n-1] strictly ascending upper bounds; shard [i] owns keys
            below [bounds.(i)], the last shard owns the tail *)

  val hash : shards:int -> t
  val range : bounds:int array -> t
  val even_range : shards:int -> space:int -> t
  (** Equal-width range partition of the key space [\[1, space\]]. *)

  val shards : t -> int
  val shard_of : t -> int -> int
  (** Owning shard of a key. *)

  val overlapping : t -> lo:int -> hi:int -> int * int
  (** Inclusive shard-index interval a [\[lo, hi\]] scan must visit. *)

  val tag : t -> int
  (** Persisted policy tag: 0 = hash, 1 = range. *)

  val bounds : t -> int array
  (** Range bounds ([[||]] for hash). *)

  val span : t -> int -> int * int
  (** Inclusive key interval shard [i] owns (hash shards nominally own
      the whole key space). *)

  val split : t -> shard:int -> pivot:int -> t
  (** Range partitions only: insert [pivot] so position [shard] keeps
      keys below it and a new position [shard+1] owns the rest of the
      old span.  @raise Invalid_argument for hash partitions or a
      pivot outside the shard's span. *)

  val merge : t -> left:int -> t
  (** Range partitions only: drop the bound between [left] and
      [left+1], so [left] absorbs its right neighbour's span. *)
end

val key_space_hi : int
(** Upper end of the served key space ([2^60 - 1]). *)

type t

exception Degraded of { shard : int; addr : int; attempts : int }
(** A point operation kept hitting {!Ff_pmem.Arena.Media_error} at
    [addr] on [shard] after [attempts] tries (initial attempt plus
    bounded retries with exponential backoff in simulated time).  The
    shard stays marked degraded — sibling shards keep serving — until
    a {!recover} scrub pass comes back clean. *)

val max_shards : int
(** 28 — each shard owns two reserved root slots below the manifests. *)

(** {1 Construction} *)

val create :
  ?pm_config:Ff_pmem.Config.t ->
  ?words:int ->
  ?inner_config:Ff_index.Descriptor.config ->
  ?partition:Partition.t ->
  ?batch_cap:int ->
  ?group:bool ->
  ?tracer:Ff_trace.Trace.t ->
  ?retry_limit:int ->
  ?backoff_ns:int ->
  inner:string ->
  shards:int ->
  unit ->
  t
(** Serving mode: one arena of [words] per shard, each holding a fresh
    inner instance built through the registry (so every shard arena
    carries its own root-slot manifest).  [partition] defaults to
    {!Partition.hash}; [group] (default true) runs scheduler batches
    under a group-flush scope.  A point op that raises
    {!Ff_pmem.Arena.Media_error} is retried up to [retry_limit]
    (default 3) times with jittered exponential backoff starting at
    [backoff_ns] (default 1000) simulated ns — each retry [n] waits
    [backoff_ns lsl n] plus a deterministic uniform draw of the same
    magnitude, so degraded shards do not retry in lockstep — before
    surfacing as {!Degraded}.
    @raise Invalid_argument if the inner structure lacks a required
    capability, or the partition disagrees with [shards]. *)

val attach :
  ?batch_cap:int ->
  ?group:bool ->
  ?tracer:Ff_trace.Trace.t ->
  ?retry_limit:int ->
  ?backoff_ns:int ->
  ?config:Ff_index.Descriptor.config ->
  inner:string ->
  Ff_pmem.Arena.t ->
  t
(** Reattach to a single-arena composite image from its persisted
    shard manifest (count, policy tag, range bounds plus the
    position-to-root-slot map).  The caller runs {!recover} before
    relying on the contents. *)

val create_composite :
  ?batch_cap:int ->
  ?group:bool ->
  ?tracer:Ff_trace.Trace.t ->
  ?retry_limit:int ->
  ?backoff_ns:int ->
  ?config:Ff_index.Descriptor.config ->
  inner:string ->
  partition:Partition.t ->
  Ff_pmem.Arena.t ->
  t
(** Build a single-arena composite with an explicit partition (the
    registered ["sharded-<inner>"] descriptor is fixed at 4 hash
    shards; elastic rebalancing wants range partitions of any
    width).  Persists the shard manifest like {!descriptor}'s
    [build]. *)

(** {1 Topology} *)

val shards : t -> int
val partition : t -> Partition.t
val group : t -> bool
val arenas : t -> Ff_pmem.Arena.t array
val shard_of_key : t -> int -> int
val multi : t -> bool
(** Serving mode (one arena per shard) vs single-arena composite. *)

val inner_descriptor : t -> Ff_index.Descriptor.t
val inner_config : t -> Ff_index.Descriptor.config
val tracer : t -> Ff_trace.Trace.t
val instance_ops : t -> int -> Ff_index.Intf.ops
(** Shard [i]'s current inner ops handle (tapped while a rebalance
    dual-write tap is installed). *)

val instance_arena : t -> int -> Ff_pmem.Arena.t
val instance_slot : t -> int -> int
(** Shard [i]'s composite root-slot id (the inner sits at slots
    [2*slot, 2*slot+1]); equals the build position in serving mode. *)

val shard_span : t -> int -> int * int
(** {!Partition.span} of the live partition. *)

val free_slot : t -> int
(** Smallest composite root-slot id no current shard occupies — where
    a split installs the new shard's inner.
    @raise Invalid_argument when all {!max_shards} slot pairs are
    taken. *)

(** {1 Elastic topology (rebalance primitives)}

    The mechanism {!Ff_rebalance.Rebalance} drives: a {e write tap}
    dual-applies point writes while a background copy runs, {!quiesce}
    provides the drained window a crash-atomic cutover commits in, and
    the {e splices} swap the volatile topology (the rebalancer
    persists it separately, sequenced around its decision word). *)

val quiesce : t -> (unit -> 'a) -> 'a
(** Run [f] with the ensemble quiesced: new mutations stall, mutations
    already past the write gate (point writes, executing batches,
    cross-shard commits) are waited out, and the batch queues drain.
    Reads keep flowing.  The snapshot pin commits inside this same
    window. *)

val tap_writes : t -> shard:int -> (int -> int option -> unit) -> unit
(** Wrap shard [shard]'s ops handle so every applied point write —
    insert, update, delete, bulk insert, transactional install — also
    reaches the tap with the key and its new binding ([None] =
    deleted).  @raise Invalid_argument if already tapped. *)

val untap_writes : t -> shard:int -> unit
(** Restore the untapped handle; idempotent. *)

val splice_split :
  t -> shard:int -> slot:int -> pivot:int -> ops:Ff_index.Intf.ops ->
  arena:Ff_pmem.Arena.t -> unit
(** Replace the volatile topology so position [shard] keeps keys below
    [pivot] and a new position [shard+1] (inner [ops] on [arena],
    composite root-slot id [slot]) owns the rest.  Queues must be
    drained (call inside {!quiesce}); the scheduler arrays are
    rebuilt and cached transaction managers invalidated. *)

val splice_merge : t -> left:int -> unit
(** Drop position [left+1]; [left] absorbs its span (the data must
    already have been copied in). *)

val splice_replace :
  t -> shard:int -> ops:Ff_index.Intf.ops -> arena:Ff_pmem.Arena.t -> unit
(** Swap shard [shard]'s instance for a migrated replica. *)

val persist_topology : t -> unit
(** Composite mode: rewrite the shard manifest (bounds, slot map,
    count) from the live topology.  No-op in serving mode, where
    topology is rebuilt at startup. *)

val manifest_slots : int list
(** Reserved root slots the shard manifest occupies (58-60), for the
    slot-map audit. *)

val read_manifest : Ff_pmem.Arena.t -> Partition.t * int array
(** Decode a composite arena's persisted shard manifest: the partition
    and the position-to-root-slot map.  Arena-level (no ensemble
    handle needed) so rebalance crash resolution can inspect the
    pre-crash topology. *)

val write_manifest : Ff_pmem.Arena.t -> Partition.t -> int array -> unit
(** Persist a composite shard manifest (bounds block, slot map, policy
    tag, count).  The rebalancer's roll-forward uses this to promote a
    committed topology before the ensemble reattaches. *)

(** {1 Routed operations} *)

val insert : t -> key:int -> value:int -> unit
val search : t -> int -> int option
val delete : t -> int -> bool
val update : t -> key:int -> value:int -> bool
(** Point ops route to the owning shard through the degradation guard:
    a {!Ff_pmem.Arena.Media_error} marks the shard degraded (bumping
    the [shard.degraded.shard<i>] metric once per episode), retries
    with exponential backoff, and raises {!Degraded} once the retry
    budget is exhausted.  Sibling shards are unaffected. *)

val bulk_insert : t -> (int * int) array -> unit

val range : t -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** Globally ordered scan across all overlapping shards (k-way merged
    cursor; emits one [merge] trace instant). *)

(** {1 Multi-key transactions}

    Failure-atomic transactions over the ensemble, built on one
    {!Ff_tx.Tx} manager per shard arena.  Writes stage in volatile
    write sets; a transaction touching one shard commits through the
    local shadow protocol, while one spanning several shards runs a
    two-phase commit over the per-shard log regions: every participant
    persists its payload plus a prepared marker, the coordinator (the
    lowest participating shard) persists the commit word as the global
    decision record, installs happen under group-flush scopes, and the
    coordinator's log is truncated last.  {!recover} (and
    {!recover_parallel}) resolve surviving logs — prepared
    participants consult the coordinator's decision — so a crash at
    any point leaves every key in either the full transaction or none
    of it. *)

type txn
(** An open ensemble transaction.  Not reusable after
    {!txn_commit} / {!txn_rollback}. *)

val txn_begin : t -> txn
val txn_get : txn -> int -> int option
(** Reads through the transaction's own staged writes. *)

val txn_put : txn -> int -> int -> unit
val txn_del : txn -> int -> bool
val txn_commit : txn -> unit
val txn_rollback : txn -> unit

val txn : t -> (txn -> 'a) -> ('a, string) result
(** [txn t f] opens, applies [f], commits; {!Ff_tx.Tx.Abort} rolls
    back into [Error reason]. *)

val set_tx_torn : t -> bool -> unit
(** Arm the torn-commit mutant on every shard's log.  Test-only. *)

val tx_stats : t -> int * int * int
(** [(commits, aborts, replays)]; replays counts logs the last
    recovery had to resolve. *)

(** {1 Batched scheduler} *)

val submit : t -> Ff_workload.Workload.op array -> int
(** Enqueue a trace shard-by-shard; a shard's queue drains as one
    batch when it reaches [batch_cap] (and at the end of the call).
    Within a batch, ops are stably sorted by key — same-key order is
    preserved and distinct point ops commute, so the returned checksum
    equals sequential {!Ff_workload.Workload.run_trace}.  [Range] ops
    are scheduling barriers: all queues drain first, then the merged
    cursor runs.  Each batch emits a [batch] trace instant and bumps
    the per-shard [shard.batch_ops.shard<i>] metric. *)

val drain_queues : t -> int
(** Force-drain every pending queue; returns the checksum sum. *)

(** {1 Cross-shard consistent snapshots}

    Serving-mode ensembles over a snapshottable inner (e.g.
    ["snap-fastfair"]) can pin {e all} shards at one global epoch.
    {!snapshot_begin} runs a two-phase protocol: stall writers, drain
    the batch queues, have every shard publish the agreed epoch [g]
    through its own crash-atomic epoch cell, then persist [g] in the
    coordinator's decision word (shard 0's arena, root slot 65).
    After a crash, a global snapshot [g] is valid iff
    [snapshot_decision t >= g]. *)

val snapshot_begin : t -> int
(** Pin every shard at one freshly published global epoch and return
    it.  @raise Invalid_argument for single-arena ensembles or a
    non-snapshottable inner. *)

val snapshot_decision : t -> int
(** The coordinator's persisted decision word — the largest global
    epoch whose 2PC completed; [0] when none ever did. *)

val read_at : t -> epoch:int -> int -> int option
(** Point read as of a pinned global epoch, routed like [find]. *)

val range_at : t -> epoch:int -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** Ascending merged scan of [\[lo, hi\]] as of a pinned global epoch
    — same stable k-way heap merge as {!range}. *)

val gc_before : t -> int -> int
(** Reclaim version records below [epoch] on every shard; returns
    total freed lines. *)

(** {1 Statistics} *)

val occupancy : t -> int array
(** Keys resident per shard (by full-range count). *)

val imbalance : t -> int * float
(** [(max, mean)] of {!occupancy} — max/mean is the skew factor. *)

val routed : t -> int array
(** Ops routed to each shard since construction. *)

val batches : t -> int
val latency : t -> int -> Ff_util.Histogram.t
(** Per-op simulated-ns latency histogram of one shard's batches. *)

val merged_latency : t -> Ff_util.Histogram.t
(** All shards' latency histograms merged
    ({!Ff_util.Histogram.merge}). *)

val healthy : t -> bool array
(** Per-shard health: [false] once a media error degraded the shard,
    [true] again after a clean {!recover} scrub re-admits it. *)

val degraded_stats : t -> (int * int * int) array
(** Per-shard [(media_errors, retries, rejected)]: raw media-error
    hits, backoff retries taken, and ops rejected with {!Degraded}. *)

val scrub_reports : t -> Ff_scrub.Scrub.report list
(** Reports from the most recent {!recover} — one per shard in
    serving mode, one composite report in single-arena mode; [[]] if
    recovery never ran or the inner structure is not scrubbable. *)

(** {1 Crash and recovery} *)

val close : t -> unit

val power_fail : t -> Ff_pmem.Storelog.crash_mode -> unit
(** Drain pending queues, then crash every shard arena (one arena in
    composite mode). *)

val recover : t -> unit
(** Sequentially reopen ([open_existing]) and recover every shard.
    When the inner structure is scrubbable, each shard instead gets a
    full {!Ff_scrub.Scrub.run} pass (media repair, recovery,
    validation, leak reclamation) and is re-admitted — marked healthy
    — only if its report came back clean; in single-arena mode one
    composite scrub (provider ["sharded-<inner>"]) covers all shards
    plus the partition metadata.  Reports land in {!scrub_reports}. *)

val recover_parallel : ?cores:int -> t -> Ff_mcsim.Mcsim.outcome
(** Recover every shard on its own simulated thread; the outcome's
    makespan is the parallel recovery time.  [cores] defaults to the
    shard count. *)

(** {1 Registry composition} *)

val descriptor :
  ?policy:[ `Hash | `Range of int array ] ->
  inner:string ->
  shards:int ->
  unit ->
  Ff_index.Descriptor.t
(** Composite descriptor ["sharded-<inner>"] over a registered inner
    structure: [build] carves one arena into [shards] instances and
    persists the shard manifest; [open_existing] reattaches from it.
    The composite keeps the inner capabilities but clears
    [relocatable_root] (composites cannot be nested).
    @raise Invalid_argument if the inner structure lacks persistence,
    recovery, range scans or a relocatable root. *)
