module Arena = Ff_pmem.Arena
module Config = Ff_pmem.Config
module Stats = Ff_pmem.Stats
module Histogram = Ff_util.Histogram
module Heap = Ff_util.Heap
module Intf = Ff_index.Intf
module D = Ff_index.Descriptor
module Registry = Ff_index.Registry
module Trace = Ff_trace.Trace
module Metrics = Ff_trace.Metrics
module Mcsim = Ff_mcsim.Mcsim
module Workload = Ff_workload.Workload
module Scrub = Ff_scrub.Scrub
module Tx = Ff_tx.Tx
module Txlog = Ff_pmem.Txlog
module Epoch = Ff_pmem.Epoch

exception Degraded of { shard : int; addr : int; attempts : int }

(* ------------------------------------------------------------------ *)
(* Partitioning                                                        *)
(* ------------------------------------------------------------------ *)

let key_space_hi = (1 lsl 60) - 1

module Partition = struct
  type t = Hash of int | Range of int array

  let hash ~shards =
    if shards < 1 then invalid_arg "Partition.hash: shards must be >= 1";
    Hash shards

  let range ~bounds =
    let n = Array.length bounds in
    for i = 1 to n - 1 do
      if bounds.(i) <= bounds.(i - 1) then
        invalid_arg "Partition.range: bounds must be strictly ascending"
    done;
    Range (Array.copy bounds)

  let even_range ~shards ~space =
    if shards < 1 then invalid_arg "Partition.even_range: shards must be >= 1";
    range ~bounds:(Array.init (shards - 1) (fun i -> ((space / shards) * (i + 1)) + 1))

  let shards = function Hash n -> n | Range b -> Array.length b + 1

  (* Multiplicative scramble (low 62 bits of a SplitMix64 constant, so
     the literal fits OCaml's boxed-free int). *)
  let shard_of t key =
    match t with
    | Hash n -> key * 0x2545F4914F6CDD1D land max_int mod n
    | Range b ->
        (* Smallest i with key < b.(i); the last shard owns the tail. *)
        let lo = ref 0 and hi = ref (Array.length b) in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if key < b.(mid) then hi := mid else lo := mid + 1
        done;
        !lo

  (* Inclusive shard-index interval a [lo, hi] scan must visit.  Hash
     scatters the key space, so every shard overlaps every range. *)
  let overlapping t ~lo ~hi =
    match t with
    | Hash n -> (0, n - 1)
    | Range _ -> (shard_of t lo, shard_of t hi)

  let tag = function Hash _ -> 0 | Range _ -> 1
  let bounds = function Hash _ -> [||] | Range b -> Array.copy b

  (* Inclusive key interval shard [i] owns.  Hash scatters the key
     space, so every hash shard nominally owns all of it. *)
  let span t i =
    match t with
    | Hash _ -> (1, key_space_hi)
    | Range b ->
        ( (if i = 0 then 1 else b.(i - 1)),
          if i = Array.length b then key_space_hi else b.(i) - 1 )

  (* Elastic topology edits (volatile; callers persist separately). *)

  let split t ~shard ~pivot =
    match t with
    | Hash _ -> invalid_arg "Partition.split: hash partitions cannot split"
    | Range b ->
        let lo, hi = span t shard in
        if pivot <= lo || pivot > hi then
          invalid_arg
            (Printf.sprintf
               "Partition.split: pivot %d outside shard %d's span (%d, %d]"
               pivot shard lo hi);
        let n = Array.length b in
        let nb = Array.make (n + 1) 0 in
        Array.blit b 0 nb 0 shard;
        nb.(shard) <- pivot;
        Array.blit b shard nb (shard + 1) (n - shard);
        Range nb

  let merge t ~left =
    match t with
    | Hash _ -> invalid_arg "Partition.merge: hash partitions cannot merge"
    | Range b ->
        if left < 0 || left >= Array.length b then
          invalid_arg "Partition.merge: no right neighbour to merge";
        let n = Array.length b in
        let nb = Array.make (n - 1) 0 in
        Array.blit b 0 nb 0 left;
        Array.blit b (left + 1) nb left (n - left - 1);
        Range nb
end

(* ------------------------------------------------------------------ *)
(* Capability gating and persisted metadata                            *)
(* ------------------------------------------------------------------ *)

(* Shard i confines its inner instance to root slots 2i and 2i+1; the
   top of the reserved window holds the shard manifest (58-60) and the
   registry manifest (61-63). *)
let slot_shards = 60
let slot_policy = 59
let slot_bounds = 58
let max_shards = 28

let check_shards n =
  if n < 1 || n > max_shards then
    invalid_arg
      (Printf.sprintf
         "Shard: shard count must be in [1, %d] (each shard owns 2 reserved \
          root slots), got %d"
         max_shards n)

(* Serving mode gives every shard a whole arena, so the inner builds at
   its native root slot and [relocatable_root] is not required there —
   which is what lets the snapshot wrapper (fixed version-store anchor,
   hence one instance per arena) shard in serving mode only. *)
let require_shardable ?(relocatable = true) (d : D.t) =
  let c = d.D.caps in
  let missing =
    (if c.D.is_persistent then [] else [ "persistence" ])
    @ (if c.D.has_recovery then [] else [ "crash recovery" ])
    @ (if c.D.has_range then [] else [ "range scans" ])
    @
    if c.D.relocatable_root || not relocatable then []
    else [ "a relocatable root" ]
  in
  if missing <> [] then
    invalid_arg
      (Printf.sprintf
         "Shard: '%s' cannot be sharded: it lacks %s (the serving layer needs \
          a persistent, recoverable, range-scannable inner structure whose \
          root honours config.root_slot)"
         d.D.name
         (String.concat ", " missing))

let shard_config (base : D.config) i = { base with D.root_slot = 2 * i }

(* ------------------------------------------------------------------ *)
(* The serving layer                                                   *)
(* ------------------------------------------------------------------ *)

type instance = {
  mutable ops : Intf.ops;
  arena : Arena.t;
  (* Composite root-slot id: the inner builds at slots [2*slot,
     2*slot+1].  Decoupled from the instance's position in the array so
     elastic splices never renumber surviving shards' slots.  Unused
     (position-equal) in serving mode. *)
  mutable slot : int;
  (* Original ops while a rebalance write tap wraps this instance. *)
  mutable tap_base : Intf.ops option;
  lat : Histogram.t;
  mutable routed : int;
  mutable batches : int;
  mutable healthy : bool;
  mutable media_errors : int;
  mutable retries : int;
  mutable rejected : int;
  (* Deterministic jitter source for this shard's retry backoff:
     seeded from the composite slot, so runs replay and distinct
     shards draw distinct sequences. *)
  backoff_rng : Ff_util.Prng.t;
}

type t = {
  mutable partition : Partition.t;
  inner : D.t;
  inner_config : D.config;
  mutable instances : instance array;
  multi : bool; (* one arena per shard (serving) vs one carved arena *)
  batch_cap : int;
  group : bool; (* batches run under a group-flush scope *)
  mutable tracer : Trace.t;
  (* Queued ops carry the id and enqueue time assigned at submit, so a
     batch records true end-to-end latency (queueing + execution).
     Rebuilt (empty) whenever a splice changes the topology. *)
  mutable queues : (int * int * Workload.op) list ref array;
  mutable qlen : int array;
  retry_limit : int;
  backoff_ns : int;
  mutable next_op : int;
  mutable last_scrub : Scrub.report list;
  (* Transaction machinery: one manager per shard arena (multi mode)
     or one routing manager (composite mode), built lazily and
     invalidated whenever the instances' ops handles are replaced. *)
  mutable txs : Tx.t array option;
  mutable next_gtid : int;
  mutable tx_torn : bool;
  mutable tx_replays : int;
  (* A global snapshot pin or rebalance cutover in progress: new
     mutations stall until the quiesced section ends (reads keep
     flowing). *)
  mutable pinning : bool;
  (* Mutations past the write gate but not yet fully applied — point
     writes mid-flight, batches executing, cross-shard commits applying
     shard by shard.  A quiesce must wait these out: a snapshot cut
     could otherwise capture half a committed transaction, and a
     rebalance cutover could otherwise lose a write that was applied to
     the source after the delta buffer was replayed. *)
  mutable commits_in_flight : int;
}

let mk_instance ?(slot = 0) ops arena =
  {
    ops;
    arena;
    slot;
    tap_base = None;
    lat = Histogram.create ();
    routed = 0;
    batches = 0;
    healthy = true;
    media_errors = 0;
    retries = 0;
    rejected = 0;
    backoff_rng = Ff_util.Prng.create (0x5eed_ba5e + (slot lsl 8));
  }

(* Pushing the ensemble tracer into every inner instance puts tree
   spans (insert, split, recovery) on the same timeline as the shard's
   batch spans — which is what gives stores and fences their code-site
   attribution. *)
let wire_tracer tracer instances =
  if Trace.enabled tracer then
    Array.iter (fun it -> it.ops.Intf.set_tracer tracer) instances

let make ~partition ~inner ~inner_config ~instances ~multi ~batch_cap ~group
    ~tracer ~retry_limit ~backoff_ns =
  let n = Array.length instances in
  wire_tracer tracer instances;
  {
    partition;
    inner;
    inner_config;
    instances;
    multi;
    batch_cap;
    group;
    tracer;
    queues = Array.init n (fun _ -> ref []);
    qlen = Array.make n 0;
    retry_limit;
    backoff_ns;
    next_op = 0;
    last_scrub = [];
    txs = None;
    next_gtid = 1;
    tx_torn = false;
    tx_replays = 0;
    pinning = false;
    commits_in_flight = 0;
  }

(* Shard-local clock: global simulated time inside Mcsim.run, else the
   shard arena's accumulated simulated nanoseconds.  Enqueue and
   completion are always read on the same shard's clock. *)
let now_ns it =
  match Mcsim.sim_now () with
  | Some ns -> ns
  | None -> Stats.total_ns (Arena.total_stats it.arena)

let shards t = Array.length t.instances
let partition t = t.partition
let group t = t.group
let arenas t = Array.map (fun i -> i.arena) t.instances
let shard_of_key t k = Partition.shard_of t.partition k

let create ?(pm_config = Config.default) ?(words = 1 lsl 20)
    ?(inner_config = D.default_config) ?partition ?(batch_cap = 64)
    ?(group = true) ?(tracer = Trace.null) ?(retry_limit = 3)
    ?(backoff_ns = 1000) ~inner ~shards () =
  check_shards shards;
  let d = Registry.find_exn inner in
  require_shardable ~relocatable:false d;
  let partition =
    match partition with
    | None -> Partition.hash ~shards
    | Some p ->
        if Partition.shards p <> shards then
          invalid_arg "Shard.create: partition disagrees with shard count";
        p
  in
  let instances =
    Array.init shards (fun i ->
        let a = Arena.create ~config:pm_config ~words () in
        mk_instance ~slot:i (Registry.build ~config:inner_config inner a) a)
  in
  make ~partition ~inner:d ~inner_config ~instances ~multi:true ~batch_cap
    ~group ~tracer ~retry_limit ~backoff_ns

(* Single-arena composite: all shards carved from one arena, so the
   whole ensemble persists, crashes and reloads as one image. *)

(* Range manifest block: [len; bounds x len; slot map x (len+1)].  The
   slot map names each partition position's root-slot id, so elastic
   splices can hand a split-off shard the next free slot pair without
   renumbering survivors. *)
let persist_meta arena partition map =
  (match partition with
  | Partition.Hash _ -> Arena.root_set arena slot_bounds 0
  | Partition.Range b ->
      let len = Array.length b in
      if Array.length map <> len + 1 then
        invalid_arg "Shard.persist_meta: slot map disagrees with bounds";
      let old = Arena.root_get arena slot_bounds in
      let words = 1 + len + (len + 1) in
      let blk = Arena.alloc arena words in
      Arena.write arena blk len;
      Array.iteri (fun i v -> Arena.write arena (blk + 1 + i) v) b;
      Array.iteri (fun i s -> Arena.write arena (blk + 1 + len + i) s) map;
      Arena.flush_range arena blk words;
      Arena.fence arena;
      Arena.root_set arena slot_bounds blk;
      if old <> 0 then begin
        let olen = Arena.read arena old in
        Arena.free arena old (1 + olen + (olen + 1))
      end);
  Arena.root_set arena slot_policy (Partition.tag partition);
  Arena.root_set arena slot_shards (Partition.shards partition)

let read_meta arena =
  let n = Arena.root_get arena slot_shards in
  if n < 1 || n > max_shards then
    invalid_arg "Shard.attach: arena carries no shard metadata";
  match Arena.root_get arena slot_policy with
  | 0 -> (Partition.hash ~shards:n, Array.init n Fun.id)
  | 1 ->
      let blk = Arena.root_get arena slot_bounds in
      let len = Arena.read arena blk in
      if len <> n - 1 then
        invalid_arg "Shard.attach: shard manifest is inconsistent";
      let bounds = Array.init len (fun i -> Arena.read arena (blk + 1 + i)) in
      let map = Array.init n (fun i -> Arena.read arena (blk + 1 + len + i)) in
      (Partition.range ~bounds, map)
  | tag ->
      invalid_arg
        (Printf.sprintf "Shard.attach: unknown partition policy tag %d" tag)

(* Arena-level manifest access for the rebalancer: crash resolution
   must be able to promote a committed topology (or inspect the old
   one) before any ensemble handle exists. *)
let manifest_slots = [ slot_bounds; slot_policy; slot_shards ]
let read_manifest = read_meta
let write_manifest = persist_meta

let build_single ?(batch_cap = 64) ?(group = false) ?(tracer = Trace.null)
    ?(retry_limit = 3) ?(backoff_ns = 1000) ~inner:(d : D.t) ~partition cfg
    arena =
  require_shardable d;
  check_shards (Partition.shards partition);
  let instances =
    Array.init (Partition.shards partition) (fun i ->
        mk_instance ~slot:i (d.D.build (shard_config cfg i) arena) arena)
  in
  persist_meta arena partition
    (Array.init (Partition.shards partition) Fun.id);
  make ~partition ~inner:d ~inner_config:cfg ~instances ~multi:false ~batch_cap
    ~group ~tracer ~retry_limit ~backoff_ns

let attach_with ?(batch_cap = 64) ?(group = false) ?(tracer = Trace.null)
    ?(retry_limit = 3) ?(backoff_ns = 1000) (d : D.t) cfg arena =
  let partition, map = read_meta arena in
  let instances =
    Array.init (Partition.shards partition) (fun i ->
        mk_instance ~slot:map.(i)
          (d.D.open_existing (shard_config cfg map.(i)) arena)
          arena)
  in
  make ~partition ~inner:d ~inner_config:cfg ~instances ~multi:false ~batch_cap
    ~group ~tracer ~retry_limit ~backoff_ns

let attach ?batch_cap ?group ?tracer ?retry_limit ?backoff_ns
    ?(config = D.default_config) ~inner arena =
  let d = Registry.find_exn inner in
  require_shardable d;
  attach_with ?batch_cap ?group ?tracer ?retry_limit ?backoff_ns d config arena

(* Build a single-arena composite with an explicit partition (the
   registered composite descriptor is fixed at 4 hash shards; elastic
   rebalancing wants range partitions of any width). *)
let create_composite ?batch_cap ?group ?tracer ?retry_limit ?backoff_ns
    ?(config = D.default_config) ~inner ~partition arena =
  let d = Registry.find_exn inner in
  build_single ?batch_cap ?group ?tracer ?retry_limit ?backoff_ns ~inner:d
    ~partition config arena

(* ------------------------------------------------------------------ *)
(* Routed point operations and the merged range cursor                 *)
(* ------------------------------------------------------------------ *)

(* Graceful degradation: a [Media_error] escaping a shard marks it
   degraded instead of tearing down the ensemble.  The op is retried
   with exponential backoff in simulated time — transient errors (or a
   write path that incidentally repairs the line) succeed on retry —
   and after [retry_limit] retries surfaces as a typed {!Degraded}
   error naming the shard and the failing address.  Other shards, and
   reads that do not touch the damaged line, keep serving; a shard is
   re-admitted when {!recover}'s scrub pass leaves it clean. *)
let guarded t i f =
  let it = t.instances.(i) in
  let rec attempt n =
    match f () with
    | r -> r
    | exception Arena.Media_error addr ->
        it.media_errors <- it.media_errors + 1;
        if it.healthy then begin
          it.healthy <- false;
          if Trace.enabled t.tracer then begin
            Metrics.incr (Trace.metrics t.tracer)
              (Metrics.shard_label "shard.degraded" i);
            Trace.instant t.tracer Trace.id_degraded i
          end
        end;
        if n >= t.retry_limit then begin
          it.rejected <- it.rejected + 1;
          raise (Degraded { shard = i; addr; attempts = n + 1 })
        end
        else begin
          it.retries <- it.retries + 1;
          (* Jittered exponential backoff: base << n plus a uniform
             draw of the same magnitude from this shard's own stream,
             so degraded shards do not retry in lockstep. *)
          let base = t.backoff_ns lsl n in
          Arena.cpu_work it.arena
            (base + Ff_util.Prng.int it.backoff_rng (max 1 base));
          attempt (n + 1)
        end
  in
  attempt 0

(* Mutations wait out an in-progress global snapshot pin or rebalance
   cutover so no write lands on an already-pinned shard while a
   sibling has yet to pin — the cross-shard cut stays consistent.
   Reads are unaffected. *)
let write_gate t =
  while t.pinning do
    Arena.cpu_work t.instances.(0).arena 30
  done

(* Pass the gate and count the mutation as in flight until it is fully
   applied.  The gate check and the increment share no yield point, so
   a quiesce raised after the gate waits the whole mutation out —
   routing, apply, and (during a rebalance) the dual-write tap are one
   indivisible unit from the quiescer's point of view. *)
let with_inflight t f =
  write_gate t;
  t.commits_in_flight <- t.commits_in_flight + 1;
  Fun.protect
    ~finally:(fun () -> t.commits_in_flight <- t.commits_in_flight - 1)
    f

let insert t ~key ~value =
  with_inflight t (fun () ->
      let i = shard_of_key t key in
      let it = t.instances.(i) in
      it.routed <- it.routed + 1;
      guarded t i (fun () -> it.ops.Intf.insert key value))

let search t key =
  let i = shard_of_key t key in
  guarded t i (fun () -> t.instances.(i).ops.Intf.search key)

let delete t key =
  with_inflight t (fun () ->
      let i = shard_of_key t key in
      guarded t i (fun () -> t.instances.(i).ops.Intf.delete key))

let update t ~key ~value =
  with_inflight t (fun () ->
      let i = shard_of_key t key in
      guarded t i (fun () -> t.instances.(i).ops.Intf.update key value))

let bulk_insert t pairs =
  with_inflight t (fun () ->
      (* Partition first so each inner sees one call and may use its
         bulk path; within a shard the submission order is preserved. *)
      let buckets = Array.make (shards t) [] in
      Array.iter
        (fun (k, v) ->
          let i = shard_of_key t k in
          buckets.(i) <- (k, v) :: buckets.(i))
        pairs;
      Array.iteri
        (fun i b ->
          if b <> [] then begin
            let arr = Array.of_list (List.rev b) in
            t.instances.(i).routed <- t.instances.(i).routed + Array.length arr;
            t.instances.(i).ops.Intf.bulk_insert arr
          end)
        buckets)

(* Scans are clamped to the queried shard's owned span: after a split
   or merge the source tree may still hold moved keys outside its span
   (until the background cleanup deletes them), and clamping keeps
   those stale copies invisible. *)
let clamped_range t j lo hi f =
  let sl, sh = Partition.span t.partition j in
  let qlo = max lo sl and qhi = min hi sh in
  if qlo <= qhi then t.instances.(j).ops.Intf.range qlo qhi f

(* Cross-shard ordered scan: materialize each overlapping shard's
   slice (already ascending) and k-way merge on a stable min-heap.
   Keys are globally unique across shards, so ties cannot occur. *)
let range t ~lo ~hi f =
  let slo, shi = Partition.overlapping t.partition ~lo ~hi in
  let nsh = shi - slo + 1 in
  if Trace.enabled t.tracer then Trace.instant t.tracer Trace.id_merge nsh;
  if nsh = 1 then guarded t slo (fun () -> clamped_range t slo lo hi f)
  else begin
    let slices =
      Array.init nsh (fun j ->
          guarded t (slo + j) (fun () ->
              let buf = ref [] in
              clamped_range t (slo + j) lo hi (fun k v ->
                  buf := (k, v) :: !buf);
              Array.of_list (List.rev !buf)))
    in
    let cursor = Array.make nsh 0 in
    let heap = Heap.create () in
    Array.iteri
      (fun j s -> if Array.length s > 0 then Heap.push heap (fst s.(0)) j)
      slices;
    let rec drain () =
      match Heap.pop heap with
      | None -> ()
      | Some (_, j) ->
          let s = slices.(j) in
          let k, v = s.(cursor.(j)) in
          f k v;
          cursor.(j) <- cursor.(j) + 1;
          if cursor.(j) < Array.length s then
            Heap.push heap (fst s.(cursor.(j))) j;
          drain ()
    in
    drain ()
  end

(* ------------------------------------------------------------------ *)
(* Batched scheduler with group flush                                  *)
(* ------------------------------------------------------------------ *)

let key_of_op = function
  | Workload.Insert k | Workload.Search k | Workload.Delete k -> k
  | Workload.Range (lo, _) -> lo

let latency_label = function
  | Workload.Insert _ -> "shard.latency_ns.insert"
  | Workload.Search _ -> "shard.latency_ns.search"
  | Workload.Delete _ -> "shard.latency_ns.delete"
  | Workload.Range _ -> "shard.latency_ns.range"

(* Record one op's end-to-end latency (enqueue to completion, on the
   shard's clock) and link it back to its submit-time id with an
   [id_op] instant, so traces can be joined per op. *)
let finish_op t it op_id enq op =
  let lat = max 0 (now_ns it - enq) in
  Histogram.add it.lat lat;
  if Trace.enabled t.tracer then begin
    Trace.observe t.tracer (latency_label op) lat;
    Trace.instant t.tracer Trace.id_op op_id
  end

(* Drain shard [i]'s queue as one batch.  Ops are stably sorted by key
   (same-key submission order survives; distinct point ops commute, so
   results match sequential execution) and run under one group-flush
   scope: per-op flushes persist at the MLP discount and the single
   group_end fence makes the whole batch durable.  The batch is a
   span, so its group_end fence is attributed to the "batch" site
   rather than to whichever op happened to run last. *)
(* The batch counts as one in-flight mutation (no gate: the quiescer's
   own queue drain runs while [pinning] is up), so a quiesce raised
   mid-batch waits for the whole batch to apply. *)
let exec_batch t i =
  if t.qlen.(i) = 0 then 0
  else begin
    t.commits_in_flight <- t.commits_in_flight + 1;
    Fun.protect
      ~finally:(fun () -> t.commits_in_flight <- t.commits_in_flight - 1)
    @@ fun () ->
    let q = t.queues.(i) in
    let batch =
      List.stable_sort
        (fun (_, _, a) (_, _, b) -> compare (key_of_op a) (key_of_op b))
        (List.rev !q)
    in
    q := [];
    let count = t.qlen.(i) in
    t.qlen.(i) <- 0;
    let it = t.instances.(i) in
    let a = it.arena in
    if Trace.enabled t.tracer then
      Trace.span_begin t.tracer Trace.id_batch count;
    if t.group then Arena.group_begin a;
    let acc =
      List.fold_left
        (fun acc (op_id, enq, op) ->
          (* A shard going degraded fails this op, not the batch: the
             remaining ops still run and the closing group_end fence
             still makes the survivors durable. *)
          let r =
            try guarded t i (fun () -> Workload.run_op it.ops op)
            with Degraded _ -> 0
          in
          finish_op t it op_id enq op;
          acc + r)
        0 batch
    in
    if t.group then Arena.group_end a;
    if Trace.enabled t.tracer then Trace.span_end t.tracer Trace.id_batch;
    it.batches <- it.batches + 1;
    it.routed <- it.routed + count;
    if Trace.enabled t.tracer then
      Metrics.add (Trace.metrics t.tracer)
        (Metrics.shard_label "shard.batch_ops" i)
        count;
    acc
  end

let drain_queues t =
  let acc = ref 0 in
  for i = 0 to shards t - 1 do
    acc := !acc + exec_batch t i
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Quiesce                                                             *)
(* ------------------------------------------------------------------ *)

(* Run [f] with the ensemble quiesced: new mutations stall behind
   [pinning], mutations already past the gate (point writes, executing
   batches, cross-shard commits applying shard by shard) are waited
   out, and the batch queues drain.  Reads keep flowing throughout.
   Both the snapshot pin and the rebalance cutover commit inside this
   window. *)
let quiesce t f =
  write_gate t;
  t.pinning <- true;
  Fun.protect
    ~finally:(fun () -> t.pinning <- false)
    (fun () ->
      while t.commits_in_flight > 0 do
        Arena.cpu_work t.instances.(0).arena 30
      done;
      ignore (drain_queues t);
      f ())

(* ------------------------------------------------------------------ *)
(* Cross-shard consistent snapshots                                    *)
(* ------------------------------------------------------------------ *)

let require_snapshottable t =
  if not t.inner.D.caps.D.snapshottable then
    invalid_arg
      (Printf.sprintf "Shard: inner '%s' is not snapshottable (caps: %s)"
         t.inner.D.name (D.caps_line t.inner));
  if not t.multi then
    invalid_arg
      "Shard: cross-shard snapshots need serving mode (one arena per shard)"

(* Pin every shard at one global epoch, 2PC-style: mutations stall
   behind [pinning] (the prepare barrier), queues drain, each shard
   publishes the agreed epoch [g] through its own crash-atomic epoch
   cell, and finally the coordinator (shard 0's arena) persists [g] as
   the global decision word.  After a crash, a global snapshot [g] is
   valid iff the decision word reached [g]: a crash before that leaves
   some shards unpinned, and the partial pins are harmless local
   epochs. *)
let snapshot_begin t =
  require_snapshottable t;
  quiesce t
    (fun () ->
      let g =
        1
        + Array.fold_left
            (fun m it -> max m (Epoch.current it.arena))
            0 t.instances
      in
      Array.iteri
        (fun i it ->
          (* The per-shard pin is idempotent at [g], so a transient
             media fault retried by [guarded] re-pins cleanly; any
             other epoch is a broken 2PC agreement — a real error, not
             an assert that -noassert compiles away. *)
          let got = guarded t i (fun () -> it.ops.Intf.snapshot_begin g) in
          if got <> g then
            failwith
              (Printf.sprintf
                 "Shard.snapshot_begin: shard %d pinned epoch %d instead of \
                  the agreed %d"
                 i got g))
        t.instances;
      Epoch.publish_global t.instances.(0).arena g;
      g)

let snapshot_decision t =
  require_snapshottable t;
  Epoch.global_decision t.instances.(0).arena

let read_at t ~epoch k =
  require_snapshottable t;
  let i = shard_of_key t k in
  guarded t i (fun () -> t.instances.(i).ops.Intf.read_at epoch k)

(* As-of variant of the merged range cursor: each overlapping shard's
   pinned slice is already ascending, so the same stable k-way heap
   merge yields a globally ordered cut. *)
let clamped_range_at t j epoch lo hi f =
  let sl, sh = Partition.span t.partition j in
  let qlo = max lo sl and qhi = min hi sh in
  if qlo <= qhi then t.instances.(j).ops.Intf.range_at epoch qlo qhi f

let range_at t ~epoch ~lo ~hi f =
  require_snapshottable t;
  let slo, shi = Partition.overlapping t.partition ~lo ~hi in
  let nsh = shi - slo + 1 in
  if Trace.enabled t.tracer then Trace.instant t.tracer Trace.id_merge nsh;
  if nsh = 1 then
    guarded t slo (fun () -> clamped_range_at t slo epoch lo hi f)
  else begin
    let slices =
      Array.init nsh (fun j ->
          guarded t (slo + j) (fun () ->
              let buf = ref [] in
              clamped_range_at t (slo + j) epoch lo hi (fun k v ->
                  buf := (k, v) :: !buf);
              Array.of_list (List.rev !buf)))
    in
    let cursor = Array.make nsh 0 in
    let heap = Heap.create () in
    Array.iteri
      (fun j s -> if Array.length s > 0 then Heap.push heap (fst s.(0)) j)
      slices;
    let rec drain () =
      match Heap.pop heap with
      | None -> ()
      | Some (_, j) ->
          let s = slices.(j) in
          let k, v = s.(cursor.(j)) in
          f k v;
          cursor.(j) <- cursor.(j) + 1;
          if cursor.(j) < Array.length s then
            Heap.push heap (fst s.(cursor.(j))) j;
          drain ()
    in
    drain ()
  end

let gc_before t epoch =
  require_snapshottable t;
  Array.fold_left
    (fun acc it -> acc + it.ops.Intf.gc_before epoch)
    0 t.instances

(* ------------------------------------------------------------------ *)
(* Elastic topology: write taps and live splices                       *)
(* ------------------------------------------------------------------ *)

(* Dual-write tap: wrap one shard's ops handle so every applied point
   write — insert, update, delete, bulk insert, and transactional
   install — also reaches [f] with the key and its new binding.  The
   rebalancer records these in its delta buffer while the background
   copy runs; [with_inflight] guarantees a quiesce never separates an
   applied write from its tap record. *)
let tap_writes t ~shard f =
  let it = t.instances.(shard) in
  (match it.tap_base with
  | Some _ -> invalid_arg "Shard.tap_writes: shard is already tapped"
  | None -> ());
  let base = it.ops in
  it.tap_base <- Some base;
  it.ops <-
    {
      base with
      Intf.insert =
        (fun k v ->
          base.Intf.insert k v;
          f k (Some v));
      update =
        (fun k v ->
          let r = base.Intf.update k v in
          if r then f k (Some v);
          r);
      delete =
        (fun k ->
          let r = base.Intf.delete k in
          f k None;
          r);
      install =
        (fun k vo ->
          base.Intf.install k vo;
          f k vo);
      bulk_insert =
        (fun pairs ->
          base.Intf.bulk_insert pairs;
          Array.iter (fun (k, v) -> f k (Some v)) pairs);
    };
  (* Cached transaction managers hold the untapped handle. *)
  t.txs <- None

let untap_writes t ~shard =
  let it = t.instances.(shard) in
  match it.tap_base with
  | None -> ()
  | Some base ->
      it.ops <- base;
      it.tap_base <- None;
      t.txs <- None

(* Splices replace the volatile topology in one step.  They require
   drained queues (call them inside {!quiesce}) and rebuild the
   scheduler arrays; persistence of the new topology is the caller's
   (the rebalancer's) job, sequenced around its decision word. *)

let check_spliceable t =
  Array.iteri
    (fun i n -> if n > 0 then
        invalid_arg
          (Printf.sprintf "Shard.splice: shard %d has %d queued ops" i n))
    t.qlen

let rebuild_sched t =
  let n = Array.length t.instances in
  t.queues <- Array.init n (fun _ -> ref []);
  t.qlen <- Array.make n 0;
  t.txs <- None

let splice_split t ~shard ~slot ~pivot ~ops ~arena =
  check_spliceable t;
  let p = Partition.split t.partition ~shard ~pivot in
  check_shards (Partition.shards p);
  let n = Array.length t.instances in
  let nu = mk_instance ~slot ops arena in
  if Trace.enabled t.tracer then nu.ops.Intf.set_tracer t.tracer;
  t.instances <-
    Array.init (n + 1) (fun i ->
        if i <= shard then t.instances.(i)
        else if i = shard + 1 then nu
        else t.instances.(i - 1));
  t.partition <- p;
  rebuild_sched t

let splice_merge t ~left =
  check_spliceable t;
  let p = Partition.merge t.partition ~left in
  let n = Array.length t.instances in
  t.instances <-
    Array.init (n - 1) (fun i ->
        if i <= left then t.instances.(i) else t.instances.(i + 1));
  t.partition <- p;
  rebuild_sched t

let splice_replace t ~shard ~ops ~arena =
  check_spliceable t;
  let old = t.instances.(shard) in
  let nu = mk_instance ~slot:old.slot ops arena in
  nu.routed <- old.routed;
  nu.batches <- old.batches;
  if Trace.enabled t.tracer then nu.ops.Intf.set_tracer t.tracer;
  t.instances <- Array.mapi (fun i it -> if i = shard then nu else it) t.instances;
  rebuild_sched t

let persist_topology t =
  if not t.multi then
    persist_meta t.instances.(0).arena t.partition
      (Array.map (fun it -> it.slot) t.instances)

let instance_slot t i = t.instances.(i).slot

let free_slot t =
  let used = Array.map (fun it -> it.slot) t.instances in
  let s = ref 0 in
  while Array.exists (fun u -> u = !s) used do incr s done;
  if !s >= max_shards then invalid_arg "Shard.free_slot: all root slots in use";
  !s

let multi t = t.multi
let inner_descriptor t = t.inner
let inner_config t = t.inner_config
let tracer t = t.tracer
let instance_ops t i = t.instances.(i).ops
let instance_arena t i = t.instances.(i).arena
let shard_span t i = Partition.span t.partition i

(* Enqueue a trace; a shard executes whenever its queue reaches
   [batch_cap].  Range is a scheduling barrier: all queues drain so the
   merged cursor sees every prior write, matching sequential order. *)
let submit t ops =
  write_gate t;
  let acc = ref 0 in
  Array.iter
    (fun op ->
      let op_id = t.next_op in
      t.next_op <- op_id + 1;
      match op with
      | Workload.Range (lo, len) ->
          acc := !acc + drain_queues t;
          let it = t.instances.(shard_of_key t lo) in
          let enq = now_ns it in
          let n = ref 0 in
          (* Like point ops in a batch, a scan over a degraded shard
             fails this op, not the run. *)
          (try range t ~lo ~hi:(lo + (len * 4)) (fun _ _ -> incr n)
           with Degraded _ -> ());
          finish_op t it op_id enq op;
          acc := !acc + !n
      | op ->
          let i = shard_of_key t (key_of_op op) in
          t.queues.(i) := (op_id, now_ns t.instances.(i), op) :: !(t.queues.(i));
          t.qlen.(i) <- t.qlen.(i) + 1;
          if t.qlen.(i) >= t.batch_cap then acc := !acc + exec_batch t i)
    ops;
  acc := !acc + drain_queues t;
  !acc

(* ------------------------------------------------------------------ *)
(* Occupancy and latency statistics                                    *)
(* ------------------------------------------------------------------ *)

(* Occupancy counts only the keys a shard owns (its partition span),
   so a source tree's not-yet-cleaned stale keys after a split do not
   inflate its load. *)
let occupancy t =
  Array.mapi
    (fun i it ->
      let sl, sh = Partition.span t.partition i in
      Intf.range_count it.ops sl sh)
    t.instances

let imbalance t =
  let occ = occupancy t in
  let mx = Array.fold_left max 0 occ in
  let mean =
    float_of_int (Array.fold_left ( + ) 0 occ) /. float_of_int (Array.length occ)
  in
  (mx, mean)

let routed t = Array.map (fun it -> it.routed) t.instances
let batches t = Array.fold_left (fun acc it -> acc + it.batches) 0 t.instances
let latency t i = t.instances.(i).lat

let merged_latency t =
  let acc = Histogram.create () in
  Array.iter (fun it -> Histogram.merge acc it.lat) t.instances;
  acc

(* ------------------------------------------------------------------ *)
(* Crash and recovery                                                  *)
(* ------------------------------------------------------------------ *)

let close t = Array.iter (fun it -> it.ops.Intf.close ()) t.instances

let power_fail t mode =
  ignore (drain_queues t);
  t.txs <- None;
  if t.multi then
    Array.iter (fun it -> Arena.power_fail it.arena mode) t.instances
  else Arena.power_fail t.instances.(0).arena mode

let reopen_instance t i =
  let it = t.instances.(i) in
  let cfg =
    if t.multi then t.inner_config else shard_config t.inner_config it.slot
  in
  (* Reopening supersedes any rebalance write tap on the old handle. *)
  it.tap_base <- None;
  it.ops <- t.inner.D.open_existing cfg it.arena;
  if Trace.enabled t.tracer then it.ops.Intf.set_tracer t.tracer

(* Recovery with scrub-and-readmit: when the inner structure is
   scrubbable, every shard gets a full scrub pass (media repair, then
   inner recovery, then validation and leak reclamation) and is
   re-admitted — marked healthy again — only if its scrub came back
   clean.  In single-arena mode the whole ensemble shares one heap, so
   one composite scrub (registered as "sharded-<inner>") covers all
   shards plus the partition metadata; per-shard reclamation would
   misread sibling shards' nodes as leaks. *)
let plain_recover t =
  Array.iteri
    (fun i it ->
      reopen_instance t i;
      it.ops.Intf.recover ())
    t.instances

(* Re-admission after a clean scrub is an observable event: the SLO
   burn-rate rules and the soak smoke both key off the degraded /
   readmit instant pair. *)
let set_health t i was clean =
  t.instances.(i).healthy <- clean;
  if clean && not was && Trace.enabled t.tracer then begin
    Metrics.incr (Trace.metrics t.tracer)
      (Metrics.shard_label "shard.readmitted" i);
    Trace.instant t.tracer Trace.id_readmit i
  end

(* Resolve every shard's transaction log after the structural recovery
   pass.  Prepared participants consult the coordinator shard's log for
   the global decision, so all Prepared logs resolve in a first pass
   while every coordinator's commit record is still intact; Committed /
   In_flight logs (including coordinators, which discard their decision
   records) resolve second. *)
let dec_v v = if v = 0 then None else Some v

let tx_resolve t =
  let n = Array.length t.instances in
  let logs =
    if t.multi then Array.map (fun it -> Txlog.attach it.arena) t.instances
    else
      Array.init n (fun i ->
          if i = 0 then Txlog.attach t.instances.(0).arena else None)
  in
  let install i k post =
    let j = if t.multi then i else Partition.shard_of t.partition k in
    t.instances.(j).ops.Intf.install k post
  in
  let decided ~gtid ~coord =
    coord >= 0 && coord < n
    && match logs.(coord) with
       | Some cl -> Txlog.decision cl ~gtid
       | None -> false
  in
  let resolve i log =
    let redo (r : Txlog.record) = install i r.Txlog.key (dec_v r.Txlog.new_v) in
    let undo (r : Txlog.record) = install i r.Txlog.key (dec_v r.Txlog.old_v) in
    match Txlog.resolve log ~decided ~redo ~undo with
    | `Clean -> ()
    | `Redone k | `Undone k | `Aborted k ->
        t.tx_replays <- t.tx_replays + 1;
        if Trace.enabled t.tracer then Trace.instant t.tracer Trace.id_tx_replay k
  in
  let prepared log =
    match Txlog.state log with Txlog.Prepared _ -> true | _ -> false
  in
  Array.iteri
    (fun i -> function Some l when prepared l -> resolve i l | _ -> ())
    logs;
  Array.iteri (fun i -> function Some l -> resolve i l | None -> ()) logs

let recover t =
  t.last_scrub <- [];
  t.txs <- None;
  if t.multi then begin
    if Scrub.scrubbable t.inner then
      Array.iteri
        (fun i it ->
          let was = it.healthy in
          let r =
            Scrub.run ~tracer:t.tracer ~config:t.inner_config t.inner it.arena
              ~recover:(fun () ->
                reopen_instance t i;
                it.ops.Intf.recover ())
          in
          t.last_scrub <- t.last_scrub @ [ r ];
          set_health t i was (Scrub.clean r))
        t.instances
    else plain_recover t
  end
  else begin
    let comp = { t.inner with D.name = "sharded-" ^ t.inner.D.name } in
    if Scrub.scrubbable comp then begin
      let was = Array.map (fun it -> it.healthy) t.instances in
      let r =
        Scrub.run ~tracer:t.tracer ~config:t.inner_config comp
          t.instances.(0).arena
          ~recover:(fun () -> plain_recover t)
      in
      t.last_scrub <- [ r ];
      Array.iteri (fun i _ -> set_health t i was.(i) (Scrub.clean r)) t.instances
    end
    else plain_recover t
  end;
  tx_resolve t

let healthy t = Array.map (fun it -> it.healthy) t.instances

let degraded_stats t =
  Array.map (fun it -> (it.media_errors, it.retries, it.rejected)) t.instances

let scrub_reports t = t.last_scrub

(* Parallel recovery: one simulated thread per shard.  In multi-arena
   mode every arena's yield hook feeds the simulator clock directly;
   in single-arena mode the simulator manages the shared arena. *)
let recover_parallel ?cores t =
  let n = shards t in
  let cores = match cores with Some c -> c | None -> n in
  let bodies =
    Array.mapi
      (fun i it _tid ->
        reopen_instance t i;
        it.ops.Intf.recover ())
      t.instances
  in
  let outcome =
    if t.multi then begin
      Array.iter
        (fun it -> Arena.set_yield_hook it.arena (Some Mcsim.charge))
        t.instances;
      Fun.protect
        ~finally:(fun () ->
          Array.iter (fun it -> Arena.set_yield_hook it.arena None) t.instances)
        (fun () -> Mcsim.run ~cores bodies)
    end
    else Mcsim.run ~cores ~arena:t.instances.(0).arena bodies
  in
  t.txs <- None;
  tx_resolve t;
  outcome

(* ------------------------------------------------------------------ *)
(* Composite registry descriptor                                       *)
(* ------------------------------------------------------------------ *)

let ops_of t name =
  Intf.make ~name
    ~insert:(fun k v -> insert t ~key:k ~value:v)
    ~search:(fun k -> search t k)
    ~delete:(fun k -> delete t k)
    ~range:(fun lo hi f -> range t ~lo ~hi f)
    ~recover:(fun () -> recover t)
    ~update:(fun k v -> update t ~key:k ~value:v)
    ~bulk_insert:(fun pairs -> bulk_insert t pairs)
    ~close:(fun () -> close t)
    ~set_tracer:(fun tr ->
      t.tracer <- tr;
      wire_tracer tr t.instances)
    ()

(* ------------------------------------------------------------------ *)
(* Multi-key transactions                                              *)
(* ------------------------------------------------------------------ *)

(* One Tx manager per shard arena in serving mode; in composite mode
   the single arena carries a single log, so one manager routes
   installs through the ensemble's own ops.  Shard transactions always
   stage (deferred writes): a cross-shard global decision must precede
   every in-place install, and a single-shard transaction then commits
   through the same shadow protocol as a degenerate one-participant
   case. *)
let tx_managers t =
  match t.txs with
  | Some a -> a
  | None ->
      let a =
        if t.multi then
          Array.map (fun it -> Tx.create ~path:Tx.Shadow it.arena it.ops)
            t.instances
        else
          [| Tx.create ~path:Tx.Shadow t.instances.(0).arena (ops_of t "tx") |]
      in
      Array.iter
        (fun m ->
          Tx.set_torn_commit m t.tx_torn;
          if Trace.enabled t.tracer then Tx.set_tracer m t.tracer)
        a;
      t.txs <- Some a;
      a

let set_tx_torn t b =
  t.tx_torn <- b;
  match t.txs with
  | Some a -> Array.iter (fun m -> Tx.set_torn_commit m b) a
  | None -> ()

type txn = {
  sh : t;
  mutable parts : (int * Tx.tx) list; (* participating shard -> open tx *)
  mutable live : bool;
}

let txn_begin t =
  ignore (tx_managers t);
  { sh = t; parts = []; live = true }

let txn_live x = if not x.live then invalid_arg "Shard.txn: already retired"

let txn_shard_of x k =
  if x.sh.multi then Partition.shard_of x.sh.partition k else 0

let txn_part x k =
  let i = txn_shard_of x k in
  match List.assoc_opt i x.parts with
  | Some p -> p
  | None ->
      let p = Tx.begin_tx ~deferred:true (tx_managers x.sh).(i) in
      x.parts <- (i, p) :: x.parts;
      p

let txn_get x k =
  txn_live x;
  match List.assoc_opt (txn_shard_of x k) x.parts with
  | Some p -> Tx.get p k
  | None -> search x.sh k

let txn_put x k v =
  txn_live x;
  Tx.put (txn_part x k) k v

let txn_del x k =
  txn_live x;
  Tx.del (txn_part x k) k

let txn_rollback x =
  txn_live x;
  List.iter (fun (_, p) -> Tx.cancel p) x.parts;
  x.live <- false

(* Commit: single participant commits locally; several run two-phase
   commit with the lowest participating shard as coordinator.  The
   coordinator's commit word is the global decision record; it is
   truncated last, so a prepared participant can always still read the
   decision at recovery. *)
let txn_commit x =
  txn_live x;
  let t = x.sh in
  write_gate t;
  (* Counted from the moment the gate is passed: a global pin raised
     after this point waits for the whole commit (prepare, decide, and
     every per-shard apply) to land before cutting.  No yield point
     separates the gate check from the increment. *)
  t.commits_in_flight <- t.commits_in_flight + 1;
  Fun.protect
    ~finally:(fun () -> t.commits_in_flight <- t.commits_in_flight - 1)
    (fun () ->
      match x.parts with
      | [] -> ()
      | [ (_, p) ] -> Tx.commit p
      | parts ->
          let parts = List.sort (fun (a, _) (b, _) -> compare a b) parts in
          let coord = fst (List.hd parts) in
          let cp = List.assoc coord parts in
          let gtid = t.next_gtid in
          t.next_gtid <- gtid + 1;
          List.iter
            (fun (i, p) -> if i <> coord then Tx.prepare p ~gtid ~coord)
            parts;
          Tx.prepare cp ~gtid ~coord;
          Tx.decide cp;
          List.iter (fun (_, p) -> Tx.apply p) parts;
          List.iter (fun (i, p) -> if i <> coord then Tx.finish p) parts;
          Tx.finish cp);
  x.live <- false

let txn t f =
  let x = txn_begin t in
  match f x with
  | v ->
      txn_commit x;
      Ok v
  | exception Tx.Abort reason ->
      txn_rollback x;
      Error reason
  | exception e ->
      if x.live then txn_rollback x;
      raise e

let tx_stats t =
  let c, a =
    match t.txs with
    | Some ms ->
        Array.fold_left
          (fun (c, a) m -> (c + Tx.commits m, a + Tx.aborts m))
          (0, 0) ms
    | None -> (0, 0)
  in
  (c, a, t.tx_replays)

let descriptor ?(policy = `Hash) ~inner ~shards () =
  check_shards shards;
  let d = Registry.find_exn inner in
  require_shardable d;
  let partition =
    match policy with
    | `Hash -> Partition.hash ~shards
    | `Range bounds ->
        let p = Partition.range ~bounds in
        if Partition.shards p <> shards then
          invalid_arg "Shard.descriptor: bounds imply a different shard count";
        p
  in
  let name = "sharded-" ^ inner in
  {
    D.name;
    summary =
      Printf.sprintf "%d-way sharded %s: partitioned serving layer, merged \
                      range cursor, per-shard recovery" shards d.D.name;
    (* Single-arena composite: every shard shares one root-slot space,
       so per-shard epoch cells / version-store anchors would collide —
       snapshots need serving mode. *)
    caps =
      { d.D.caps with D.relocatable_root = false; D.snapshottable = false };
    composite = Some (inner, shards);
    build = (fun cfg a -> ops_of (build_single ~inner:d ~partition cfg a) name);
    open_existing = (fun cfg a -> ops_of (attach_with d cfg a) name);
  }

(* ------------------------------------------------------------------ *)
(* Composite scrub provider (single-arena ensembles)                   *)
(* ------------------------------------------------------------------ *)

(* All shards of a single-arena ensemble share one heap, so the scrub
   reachability set is the union of every shard's nodes plus the
   persisted partition metadata; scrubbing one shard in isolation
   would misread its siblings' nodes as leaks.  Repair hands the full
   poisoned-line set to each shard's hook — hooks only touch lines in
   nodes they can prove they own, so the passes compose. *)

let round_to_lines w =
  (w + Arena.words_per_line - 1) / Arena.words_per_line * Arena.words_per_line

let composite_scrub inner_name (cfg : D.config) arena =
  let ip =
    match Registry.scrub_provider inner_name with
    | Some p -> p
    | None ->
        invalid_arg
          (Printf.sprintf "Shard: inner '%s' registered no scrub provider"
             inner_name)
  in
  let n = Arena.root_get arena slot_shards in
  if n < 1 || n > max_shards then
    invalid_arg "Shard: arena carries no shard metadata";
  (* Manifest words are read uncharged; if their lines are poisoned the
     values may be garbage, so clamp everything to representable
     ranges — the stranded poison then keeps the report not-clean
     rather than crashing. *)
  let ranged = Arena.root_get arena slot_policy = 1 in
  let clamp_len len = if len < 0 || len >= max_shards then max_shards - 1 else len in
  let slot_map () =
    if not ranged then Array.init n Fun.id
    else begin
      let blk = Arena.root_get arena slot_bounds in
      let len = clamp_len (Arena.peek arena blk) in
      Array.init n (fun i ->
          if i > len then i
          else
            let s = Arena.peek arena (blk + 1 + len + i) in
            if s < 0 || s >= max_shards then i else s)
    end
  in
  let map = slot_map () in
  let hooks = Array.init n (fun i -> ip (shard_config cfg map.(i)) arena) in
  (* Length-prefixed bounds array plus the position-to-slot map for the
     Range policy, reachable as one line-rounded block. *)
  let bounds_block () =
    if ranged then begin
      let blk = Arena.root_get arena slot_bounds in
      let len = clamp_len (Arena.peek arena blk) in
      [ (blk, round_to_lines (1 + len + (len + 1))) ]
    end
    else []
  in
  {
    D.scrub_grain = hooks.(0).D.scrub_grain;
    scrub_reachable =
      (fun () ->
        Array.fold_left
          (fun acc h -> h.D.scrub_reachable () @ acc)
          (bounds_block ()) hooks);
    scrub_repair =
      (fun lines ->
        Array.fold_left
          (fun acc h ->
            let r = h.D.scrub_repair lines in
            {
              D.repaired_lines = acc.D.repaired_lines @ r.D.repaired_lines;
              quarantined_lines = acc.D.quarantined_lines @ r.D.quarantined_lines;
              lost_records = acc.D.lost_records + r.D.lost_records;
            })
          { D.repaired_lines = []; quarantined_lines = []; lost_records = 0 }
          hooks);
    scrub_validate =
      (fun () ->
        List.concat
          (List.mapi
             (fun i h ->
               List.map
                 (Printf.sprintf "shard %d: %s" i)
                 (h.D.scrub_validate ()))
             (Array.to_list hooks)));
  }

let () = Registry.register (descriptor ~inner:"fastfair" ~shards:4 ())
let () = Registry.register_scrub "sharded-fastfair" (composite_scrub "fastfair")
