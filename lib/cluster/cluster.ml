module Arena = Ff_pmem.Arena
module Storelog = Ff_pmem.Storelog
module Segment = Ff_pmem.Segment
module Prng = Ff_util.Prng
module Registry = Ff_index.Registry
module Intf = Ff_index.Intf
module Trace = Ff_trace.Trace
module Metrics = Ff_trace.Metrics
module Shard = Ff_shard.Shard
module Fabric = Ff_net.Fabric
module Rpc = Ff_net.Rpc

(* Reserved root slots (see lib/pmem/arena.ml's slot map). *)
let slot_term = 71
let slot_applied = 72
let slot_resync = 73
let reserved_slots = [ slot_term; slot_applied; slot_resync ]

let mutant_ack_before_replicate = ref false

type config = {
  nodes : int;
  shards : int;
  inner : string;
  words : int;
  seed : int;
  faults : Fabric.faults;
  heartbeat_ns : int;
  heartbeat_timeout_ns : int;
  rpc_timeout_ns : int;
  rpc_retries : int;
  rpc_backoff_ns : int;
  log_cap : int;
  ship_ns_per_word : int;
  read_only_when_solo : bool;
}

let default =
  {
    nodes = 3;
    shards = 4;
    inner = "fastfair";
    words = 1 lsl 16;
    seed = 42;
    faults = Fabric.default_faults;
    heartbeat_ns = 50_000;
    heartbeat_timeout_ns = 200_000;
    rpc_timeout_ns = 20_000;
    rpc_retries = 4;
    rpc_backoff_ns = 2_000;
    log_cap = 8192;
    ship_ns_per_word = 10;
    read_only_when_solo = true;
  }

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                       *)
(* ------------------------------------------------------------------ *)

type wop = Put of int * int | Del of int

type msg =
  | M_write of { ms : int; mterm : int; mop : wop }
  | M_read of { ms : int; mterm : int; mkey : int }
  | M_repl of { ms : int; mterm : int; mseq : int; mop : wop }
  | M_promote of { ms : int; mterm : int }
  | M_demote of { ms : int; mterm : int }

type reply =
  | R_ok
  | R_val of int option
  | R_ack of int
  | R_gap of int  (** backup is missing records; payload = its high-water *)
  | R_stale of int  (** term fence: request's term below the replica's *)
  | R_not_primary of int
  | R_read_only

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

type role = Primary | Backup | Idle

type rep = {
  rshard : int;
  mutable role : role;
  mutable rterm : int;
  mutable issued : int;  (* primary: last issued record seq *)
  mutable applied : int;  (* backup: last durably applied seq *)
  mutable acked : int;  (* primary's view of the backup high-water *)
  rlog : (int, wop) Hashtbl.t;  (* retained tail, seq -> op *)
  mutable rlog_lo : int;  (* smallest seq still retained *)
}

type node = {
  nid : int;
  ens : Shard.t;
  mutable nup : bool;
  nep : (msg, reply) Rpc.endpoint;
  reps : rep array;
}

type route = {
  mutable term : int;
  mutable primary : int;
  mutable backup : int;
  mutable ro : bool;  (* read-only degradation: no live backup *)
}

type werr = Read_only | Unavailable

type stats = {
  s_acks : int;
  s_read_only : int;
  s_unavailable : int;
  s_failovers : int;
  s_resyncs : int;
  s_repl_records : int;
  s_repl_resent : int;
  s_rpc_sent : int;
  s_rpc_dropped : int;
  s_rpc_dup : int;
  s_last_blackout_ns : int;
}

type t = {
  cfg : config;
  tracer : Trace.t;
  fab : Fabric.t;
  rng : Prng.t;  (* RPC backoff jitter *)
  nodes : node array;
  routes : route array;
  last_heard : int array;
  mutable next_hb : int;
  mutable next_token : int;
  mutable acks : int;
  mutable read_only_rejections : int;
  mutable unavailable : int;
  mutable failovers : int;
  mutable resyncs : int;
  mutable repl_records : int;
  mutable repl_resent : int;
  mutable last_ack_ns : int;
  mutable blackout_start : int;  (* -1 = no blackout pending *)
  mutable last_blackout : int;
}

let config t = t.cfg
let fabric t = t.fab
let now_ns t = Fabric.now t.fab
let control_id t = t.cfg.nodes
let client_id t = t.cfg.nodes + 1

let fresh_token t =
  t.next_token <- t.next_token + 1;
  t.next_token

let metric t name = Metrics.incr (Trace.metrics t.tracer) name
let metric_add t name v = Metrics.add (Trace.metrics t.tracer) name v

let role_code = function Idle -> 0 | Backup -> 1 | Primary -> 2
let role_of_code = function 1 -> Backup | 2 -> Primary | _ -> Idle

(* Persist a replica's term/role word: one failure-atomic root_set in
   the PR-9 decision-word style. *)
let set_role t nd s role term =
  let rep = nd.reps.(s) in
  rep.role <- role;
  rep.rterm <- term;
  Arena.root_set (Shard.instance_arena nd.ens s) slot_term
    ((term lsl 2) lor role_code role);
  ignore t

let apply_op nd op =
  match op with
  | Put (k, v) -> Shard.insert nd.ens ~key:k ~value:v
  | Del k -> ignore (Shard.delete nd.ens k : bool)

let log_add t rep seq op =
  Hashtbl.replace rep.rlog seq op;
  if rep.rlog_lo = 0 then rep.rlog_lo <- seq;
  while Hashtbl.length rep.rlog > t.cfg.log_cap do
    Hashtbl.remove rep.rlog rep.rlog_lo;
    rep.rlog_lo <- rep.rlog_lo + 1
  done

(* ------------------------------------------------------------------ *)
(* RPC plumbing                                                        *)
(* ------------------------------------------------------------------ *)

let rpc t ~src ep msg =
  let c = t.cfg in
  Rpc.call ~timeout_ns:c.rpc_timeout_ns ~retries:c.rpc_retries
    ~backoff_ns:c.rpc_backoff_ns ~fabric:t.fab ~rng:t.rng ~src
    ~token:(fresh_token t) ep msg

(* Control-plane liveness probe: a few raw transmits, uncharged (the
   orchestrator rides a management channel); deterministic given the
   call sequence. *)
let probe t n =
  t.nodes.(n).nup
  && (let rec go k =
        k < 3
        && ((Fabric.transmit t.fab ~src:(control_id t) ~dst:n).Fabric.v_deliveries
            <> []
           || go (k + 1))
      in
      go 0)

(* ------------------------------------------------------------------ *)
(* Replication (primary -> backup)                                     *)
(* ------------------------------------------------------------------ *)

(* Ship record [seq] of shard [s] to the backup; on a gap answer,
   re-ship the missing tail from the retained log.  Returns true iff
   the backup durably acked everything up to [seq]. *)
let replicate t nd s seq =
  let rep = nd.reps.(s) in
  let r = t.routes.(s) in
  let b = r.backup in
  if b < 0 || b = nd.nid || not t.nodes.(b).nup then false
  else begin
    let send one_seq op =
      match
        rpc t ~src:nd.nid t.nodes.(b).nep
          (M_repl { ms = s; mterm = rep.rterm; mseq = one_seq; mop = op })
      with
      | Ok (R_ack a) ->
          rep.acked <- max rep.acked a;
          `Acked a
      | Ok (R_gap a) -> `Gap a
      | Ok (R_stale term) ->
          (* Term fence: we have been deposed. Step down. *)
          rep.role <- Idle;
          ignore term;
          `Deposed
      | Ok _ | Error Rpc.Timeout -> `Dead
    in
    let rec ship from =
      if from > seq then true
      else
        match Hashtbl.find_opt rep.rlog from with
        | None -> false (* tail fell out of retention: needs full resync *)
        | Some op -> (
            match send from op with
            | `Acked a ->
                if Trace.enabled t.tracer then begin
                  Trace.instant t.tracer Trace.id_repl a;
                  metric t "cluster.repl.records"
                end;
                t.repl_records <- t.repl_records + 1;
                if from < seq then begin
                  t.repl_resent <- t.repl_resent + 1;
                  if Trace.enabled t.tracer then metric t "cluster.repl.resent"
                end;
                ship (max (from + 1) (a + 1))
            | `Gap a ->
                if a < from then false (* backup went backwards: resync *)
                else ship (a + 1)
            | `Deposed | `Dead -> false)
    in
    let start = max rep.rlog_lo (rep.acked + 1) in
    let ok = ship start in
    if Trace.enabled t.tracer then
      Metrics.set_gauge (Trace.metrics t.tracer)
        (Metrics.shard_label "cluster.repl.lag" s)
        (float_of_int (rep.issued - rep.acked));
    ok
  end

(* ------------------------------------------------------------------ *)
(* Request handlers (run inline on the caller's simulated thread)      *)
(* ------------------------------------------------------------------ *)

let handle t nd msg =
  match msg with
  | M_write { ms; mterm; mop } ->
      let rep = nd.reps.(ms) in
      if rep.role <> Primary || mterm <> rep.rterm then R_not_primary rep.rterm
      else begin
        (* Local apply first (durable per op); the client ack is
           withheld until the backup is durable too. *)
        apply_op nd mop;
        rep.issued <- rep.issued + 1;
        log_add t rep rep.issued mop;
        if !mutant_ack_before_replicate then begin
          (* BUG, armed only by Replcheck's mutant sweep: externalize
             the ack whether or not the backup is durable. *)
          ignore (replicate t nd ms rep.issued : bool);
          R_ok
        end
        else if replicate t nd ms rep.issued then R_ok
        else if t.cfg.read_only_when_solo then begin
          t.routes.(ms).ro <- true;
          R_read_only
        end
        else R_ok
      end
  | M_read { ms; mterm; mkey } ->
      let rep = nd.reps.(ms) in
      if rep.role <> Primary || mterm <> rep.rterm then R_not_primary rep.rterm
      else R_val (Shard.search nd.ens mkey)
  | M_repl { ms; mterm; mseq; mop } ->
      let rep = nd.reps.(ms) in
      if mterm < rep.rterm then R_stale rep.rterm (* term fencing *)
      else begin
        if mterm > rep.rterm || rep.role = Idle then
          set_role t nd ms Backup mterm;
        if mseq <= rep.applied then R_ack rep.applied
        else if mseq = rep.applied + 1 then begin
          apply_op nd mop;
          rep.applied <- mseq;
          (* Durable high-water after the durable op: a crash between
             the two replays this record, and applies are idempotent. *)
          Arena.root_set (Shard.instance_arena nd.ens ms) slot_applied mseq;
          R_ack mseq
        end
        else R_gap rep.applied
      end
  | M_promote { ms; mterm } ->
      let rep = nd.reps.(ms) in
      if mterm <= rep.rterm then R_stale rep.rterm
      else begin
        (* Crash-atomic failover decision: one persisted word. *)
        set_role t nd ms Primary mterm;
        rep.issued <- rep.applied;
        rep.acked <- rep.applied;
        Hashtbl.reset rep.rlog;
        rep.rlog_lo <- 0;
        R_ok
      end
  | M_demote { ms; mterm } ->
      let rep = nd.reps.(ms) in
      if mterm < rep.rterm then R_stale rep.rterm
      else begin
        set_role t nd ms Idle mterm;
        R_ok
      end

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create ?(tracer = Trace.null) (cfg : config) =
  if cfg.nodes < 2 then invalid_arg "Cluster.create: nodes < 2";
  if cfg.shards < 1 then invalid_arg "Cluster.create: shards < 1";
  let fab =
    Fabric.create ~faults:cfg.faults ~seed:cfg.seed
      ~endpoints:(cfg.nodes + 2) ()
  in
  let nodes =
    Array.init cfg.nodes (fun nid ->
        let ens =
          Shard.create ~words:cfg.words ~tracer ~inner:cfg.inner
            ~shards:cfg.shards ()
        in
        {
          nid;
          ens;
          nup = true;
          nep = Rpc.endpoint ~node:nid (fun _ -> R_ok);
          reps =
            Array.init cfg.shards (fun s ->
                {
                  rshard = s;
                  role = Idle;
                  rterm = 0;
                  issued = 0;
                  applied = 0;
                  acked = 0;
                  rlog = Hashtbl.create 256;
                  rlog_lo = 0;
                });
        })
  in
  let routes =
    Array.init cfg.shards (fun s ->
        {
          term = 1;
          primary = s mod cfg.nodes;
          backup = (s + 1) mod cfg.nodes;
          ro = false;
        })
  in
  let t =
    {
      cfg;
      tracer;
      fab;
      rng = Prng.create (cfg.seed lxor 0x7ee1);
      nodes;
      routes;
      last_heard = Array.make cfg.nodes 0;
      next_hb = 0;
      next_token = 0;
      acks = 0;
      read_only_rejections = 0;
      unavailable = 0;
      failovers = 0;
      resyncs = 0;
      repl_records = 0;
      repl_resent = 0;
      last_ack_ns = 0;
      blackout_start = -1;
      last_blackout = -1;
    }
  in
  Array.iter (fun nd -> Rpc.set_handler nd.nep (fun m -> handle t nd m)) nodes;
  (* Persist the initial term words. *)
  Array.iteri
    (fun s r ->
      set_role t nodes.(r.primary) s Primary r.term;
      set_role t nodes.(r.backup) s Backup r.term)
    routes;
  t

let shard_of_key t key =
  Shard.shard_of_key t.nodes.(0).ens key

(* ------------------------------------------------------------------ *)
(* Failover and the failure detector                                   *)
(* ------------------------------------------------------------------ *)

let failover t ~shard =
  let r = t.routes.(shard) in
  if r.backup < 0 || not (probe t r.backup) then false
  else begin
    let nt = r.term + 1 in
    match
      rpc t ~src:(control_id t) t.nodes.(r.backup).nep
        (M_promote { ms = shard; mterm = nt })
    with
    | Ok R_ok ->
        if t.blackout_start < 0 then t.blackout_start <- max 0 t.last_ack_ns;
        let oldp = r.primary in
        r.term <- nt;
        r.primary <- r.backup;
        r.backup <- oldp;
        r.ro <- t.cfg.read_only_when_solo;
        t.failovers <- t.failovers + 1;
        if Trace.enabled t.tracer then begin
          Trace.instant t.tracer Trace.id_failover shard;
          metric t "cluster.failovers"
        end;
        true
    | _ -> false
  end

let suspect t s =
  let r = t.routes.(s) in
  if (not (probe t r.primary)) && r.backup >= 0 && probe t r.backup then
    ignore (failover t ~shard:s : bool)

let tick t =
  let nnow = Fabric.now t.fab in
  if nnow >= t.next_hb then begin
    t.next_hb <- nnow + t.cfg.heartbeat_ns;
    Array.iter
      (fun nd -> if probe t nd.nid then t.last_heard.(nd.nid) <- nnow)
      t.nodes;
    let stale n =
      n < 0 || nnow - t.last_heard.(n) > t.cfg.heartbeat_timeout_ns
    in
    Array.iteri
      (fun s r ->
        if stale r.primary && (not (stale r.backup)) && not (probe t r.primary)
        then ignore (failover t ~shard:s : bool))
      t.routes
  end

(* ------------------------------------------------------------------ *)
(* Client operations                                                   *)
(* ------------------------------------------------------------------ *)

let record_ack t =
  t.acks <- t.acks + 1;
  t.last_ack_ns <- Fabric.now t.fab;
  if Trace.enabled t.tracer then metric t "cluster.writes.acked";
  if t.blackout_start >= 0 then begin
    let b = t.last_ack_ns - t.blackout_start in
    t.last_blackout <- b;
    t.blackout_start <- -1;
    if Trace.enabled t.tracer then
      Metrics.observe (Trace.metrics t.tracer) "cluster.blackout_ns" b
  end

let write_op t key op =
  tick t;
  let s = shard_of_key t key in
  let rec go attempts =
    if attempts > 3 then begin
      t.unavailable <- t.unavailable + 1;
      if Trace.enabled t.tracer then metric t "cluster.unavail.timeout";
      Error Unavailable
    end
    else begin
      let r = t.routes.(s) in
      if r.ro then begin
        t.read_only_rejections <- t.read_only_rejections + 1;
        if Trace.enabled t.tracer then metric t "cluster.unavail.read_only";
        Error Read_only
      end
      else
        match
          rpc t ~src:(client_id t) t.nodes.(r.primary).nep
            (M_write { ms = s; mterm = r.term; mop = op })
        with
        | Ok R_ok ->
            record_ack t;
            Ok ()
        | Ok R_read_only ->
            r.ro <- true;
            t.read_only_rejections <- t.read_only_rejections + 1;
            if Trace.enabled t.tracer then metric t "cluster.unavail.read_only";
            Error Read_only
        | Ok (R_not_primary _) ->
            suspect t s;
            go (attempts + 1)
        | Ok _ ->
            t.unavailable <- t.unavailable + 1;
            Error Unavailable
        | Error Rpc.Timeout ->
            suspect t s;
            go (attempts + 1)
    end
  in
  if Trace.enabled t.tracer then metric t "cluster.ops.write";
  go 0

let put t k v = write_op t k (Put (k, v))
let del t k = write_op t k (Del k)

let get t key =
  tick t;
  let s = shard_of_key t key in
  if Trace.enabled t.tracer then metric t "cluster.ops.read";
  let rec go attempts =
    if attempts > 3 then begin
      t.unavailable <- t.unavailable + 1;
      Error Unavailable
    end
    else
      let r = t.routes.(s) in
      match
        rpc t ~src:(client_id t) t.nodes.(r.primary).nep
          (M_read { ms = s; mterm = r.term; mkey = key })
      with
      | Ok (R_val v) -> Ok v
      | Ok (R_not_primary _) ->
          suspect t s;
          go (attempts + 1)
      | Ok _ ->
          t.unavailable <- t.unavailable + 1;
          Error Unavailable
      | Error Rpc.Timeout ->
          suspect t s;
          go (attempts + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Partitions, crashes, catch-up                                       *)
(* ------------------------------------------------------------------ *)

let partition t ~a ~b = Fabric.partition t.fab ~a ~b
let partition_for t ~a ~b ~ns = Fabric.partition_for t.fab ~a ~b ~ns
let heal t = Fabric.heal t.fab

let kill_node ?(mode = Storelog.Keep_all) t n =
  let nd = t.nodes.(n) in
  nd.nup <- false;
  Rpc.set_up nd.nep false;
  Shard.power_fail nd.ens mode

(* Reload a node's volatile replica state from its persisted words. *)
let reload_reps nd =
  Array.iter
    (fun rep ->
      let a = Shard.instance_arena nd.ens rep.rshard in
      let w = Arena.root_get a slot_term in
      rep.rterm <- w lsr 2;
      rep.role <- role_of_code (w land 3);
      rep.applied <- Arena.root_get a slot_applied;
      rep.issued <- rep.applied;
      rep.acked <- rep.applied;
      Hashtbl.reset rep.rlog;
      rep.rlog_lo <- 0)
    nd.reps

let demote t ~shard =
  let r = t.routes.(shard) in
  if r.backup >= 0 && t.nodes.(r.backup).nup then
    ignore
      (rpc t ~src:(control_id t) t.nodes.(r.backup).nep
         (M_demote { ms = shard; mterm = r.term })
        : (reply, Rpc.error) result)

(* Segment-ship the primary's quiesced shard image into a fresh arena
   on the joiner, then stream the records issued during the copy from
   the primary's retained log. *)
let resync t ~shard =
  let s = shard in
  let r = t.routes.(s) in
  if r.primary < 0 || r.backup < 0 then false
  else begin
    let p = t.nodes.(r.primary) and j = t.nodes.(r.backup) in
    if (not p.nup) || not j.nup then false
    else begin
      let prep = p.reps.(s) in
      if prep.role <> Primary then false
      else begin
        if Trace.enabled t.tracer then
          Trace.span_begin t.tracer Trace.id_catchup s;
        let src = Shard.instance_arena p.ens s in
        let frozen, fseq =
          Shard.quiesce p.ens (fun () ->
              Arena.drain src;
              (Arena.clone src, prep.issued))
        in
        let seg = Segment.capture frozen in
        let dst =
          Arena.create ~config:(Arena.config src) ~words:(Arena.capacity src)
            ()
        in
        let last = ref 0 in
        Segment.copy ~src:frozen ~dst seg ~between:(fun copied ->
            (* the ship crosses the network: charge transfer time *)
            Fabric.charge t.fab ((copied - !last) * t.cfg.ship_ns_per_word);
            last := copied);
        Segment.attach ~dst seg;
        let ops = Registry.open_existing dst in
        ops.Intf.recover ();
        (* The image carries the primary's term word; rewrite it as
           Backup before the replica goes live, and seed the applied
           high-water at the freeze point. *)
        Arena.root_set dst slot_term ((r.term lsl 2) lor 1);
        Arena.root_set dst slot_applied fseq;
        Shard.quiesce j.ens (fun () ->
            Shard.splice_replace j.ens ~shard:s ~ops ~arena:dst);
        let jrep = j.reps.(s) in
        jrep.role <- Backup;
        jrep.rterm <- r.term;
        jrep.applied <- fseq;
        jrep.issued <- fseq;
        prep.acked <- max prep.acked fseq;
        t.resyncs <- t.resyncs + 1;
        if Trace.enabled t.tracer then begin
          metric t "cluster.resyncs";
          metric_add t "cluster.catchup.words" (Segment.words seg);
          Trace.span_end t.tracer Trace.id_catchup
        end;
        (* Stream the tail issued since the freeze. *)
        let ok = prep.issued = fseq || replicate t p s prep.issued in
        if ok then r.ro <- false;
        ok
      end
    end
  end

let restart_node t n =
  let nd = t.nodes.(n) in
  Shard.recover nd.ens;
  nd.nup <- true;
  Rpc.set_up nd.nep true;
  t.last_heard.(n) <- Fabric.now t.fab;
  reload_reps nd;
  (* A deposed primary's persisted word may still claim primacy at a
     superseded term: fence it before it rejoins. *)
  Array.iteri
    (fun s r ->
      let rep = nd.reps.(s) in
      if rep.rterm < r.term && rep.role = Primary then rep.role <- Idle;
      if r.backup = n then ignore (resync t ~shard:s : bool)
      else if r.primary = n && rep.role = Primary then begin
        (* The node resumes primacy with issued/acked reloaded from
           slot_applied — a word only backups advance — so the live
           backup's applied high-water may exceed the reborn issued
           counter and its [mseq <= applied] branch would falsely ack
           fresh seqnos without applying them.  Re-image the backup,
           which coherently resets both sides' watermarks, before the
           shard takes writes again; if that fails, degrade rather
           than risk acks that are durable on one node only. *)
        if not (resync t ~shard:s) then r.ro <- t.cfg.read_only_when_solo
      end)
    t.routes

let recover_all t =
  Array.iter
    (fun nd ->
      if not nd.nup then begin
        Shard.recover nd.ens;
        nd.nup <- true;
        Rpc.set_up nd.nep true;
        t.last_heard.(nd.nid) <- Fabric.now t.fab
      end;
      reload_reps nd)
    t.nodes;
  (* Resolve each shard's authority from the persisted words alone:
     highest (term, role, applied) wins. *)
  Array.iteri
    (fun s r ->
      let best = ref (-1) and best_key = ref (-1, -1, -1) in
      let second = ref (-1) and second_key = ref (-1, -1, -1) in
      Array.iter
        (fun nd ->
          let a = Shard.instance_arena nd.ens s in
          let w = Arena.root_get a slot_term in
          let code = w land 3 in
          if code > 0 then begin
            let key =
              (w lsr 2, (if code = 2 then 1 else 0), Arena.root_get a slot_applied)
            in
            if key > !best_key then begin
              second := !best;
              second_key := !best_key;
              best := nd.nid;
              best_key := key
            end
            else if key > !second_key then begin
              second := nd.nid;
              second_key := key
            end
          end)
        t.nodes;
      if !best >= 0 then begin
        let term, _, _ = !best_key in
        (* Recovery epoch bump: the resolved authority re-asserts
           primacy at a fresh term, fencing any deposed claimant. *)
        let nt = term + 1 in
        set_role t t.nodes.(!best) s Primary nt;
        let rep = t.nodes.(!best).reps.(s) in
        rep.issued <- rep.applied;
        rep.acked <- rep.applied;
        r.term <- nt;
        r.primary <- !best;
        r.backup <- !second;
        r.ro <- t.cfg.read_only_when_solo
      end)
    t.routes

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let read_only t ~shard = t.routes.(shard).ro
let term_of t ~shard = t.routes.(shard).term
let primary_of t ~shard = t.routes.(shard).primary
let backup_of t ~shard = t.routes.(shard).backup

let repl_lag t ~shard =
  let r = t.routes.(shard) in
  if r.primary < 0 then 0
  else
    let rep = t.nodes.(r.primary).reps.(shard) in
    rep.issued - rep.acked

let stats t =
  {
    s_acks = t.acks;
    s_read_only = t.read_only_rejections;
    s_unavailable = t.unavailable;
    s_failovers = t.failovers;
    s_resyncs = t.resyncs;
    s_repl_records = t.repl_records;
    s_repl_resent = t.repl_resent;
    s_rpc_sent = Fabric.sends t.fab;
    s_rpc_dropped = Fabric.drops t.fab;
    s_rpc_dup = Fabric.dups t.fab;
    s_last_blackout_ns = t.last_blackout;
  }

let fences t =
  Array.fold_left
    (fun acc nd ->
      Array.fold_left
        (fun acc a -> acc + (Arena.total_stats a).Ff_pmem.Stats.fences)
        acc (Shard.arenas nd.ens))
    0 t.nodes

let close t = Array.iter (fun nd -> Shard.close nd.ens) t.nodes
