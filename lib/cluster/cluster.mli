(** Simulated multi-node cluster: per-shard primary/backup replication
    over the fault-injected {!Ff_net.Fabric}.

    [nodes] simulated nodes each host a serving-mode {!Ff_shard.Shard}
    ensemble (one arena per logical shard) built over the same
    partition, so a key routes to the same shard index on every node.
    Each logical shard has a {e primary} and a {e backup} replica;
    the client write path is

    {v client --RPC--> primary: apply locally (durable)
                       primary --RPC--> backup: apply + persist seq
                       backup durable ack --> primary --> client ack v}

    so an acknowledged write is durable on {e both} replicas — the
    NVTraverse discipline lifted across nodes: nothing is
    externalized before it is persistent at its destination.

    {b Term fencing.}  Every replica persists a term/role word in its
    shard arena (root slot {!slot_term}, PR-9 decision-word style:
    one failure-atomic [root_set]).  Requests carry the issuer's
    term; a replica rejects terms below its own, so a deposed primary
    cannot ack writes or serve reads after a failover — its first
    replication attempt is refused by the promoted backup and it
    steps down.

    {b Failover.}  A heartbeat failure detector (control-plane probes
    over the same lossy fabric) promotes the backup when the primary
    goes quiet: the backup persists [term+1, Primary] crash-atomically
    and the route flips.  Acked writes survive because they were
    durable on the backup before the ack.  With no live backup the
    shard degrades to read-only service (default) instead of acking
    unreplicated writes.

    {b Catch-up.}  A rejoining or lagging replica is resynced with a
    {!Ff_pmem.Segment} identity-offset ship of the primary's quiesced
    image into a fresh arena (charged to the fabric as transfer
    time), spliced into its ensemble, then the records issued during
    the copy are streamed from the primary's retained log. *)

module Fabric = Ff_net.Fabric

val slot_term : int
(** Root slot 71: the persisted term/role word, [4*term + role] with
    role 0 = idle, 1 = backup, 2 = primary. *)

val slot_applied : int
(** Root slot 72: the backup's durably-applied replication seqno. *)

val slot_resync : int
(** Root slot 73: reserved for the resync epoch marker. *)

val reserved_slots : int list
(** [[71; 72; 73]] for the slot-map audit. *)

type config = {
  nodes : int;  (** simulated nodes (>= 2) *)
  shards : int;  (** logical shards, each with one primary + one backup *)
  inner : string;  (** registry inner index, e.g. ["fastfair"] *)
  words : int;  (** arena words per shard replica *)
  seed : int;
  faults : Fabric.faults;
  heartbeat_ns : int;
  heartbeat_timeout_ns : int;
  rpc_timeout_ns : int;
  rpc_retries : int;
  rpc_backoff_ns : int;
  log_cap : int;  (** replication-log tail records retained per shard *)
  ship_ns_per_word : int;  (** resync transfer cost charged per word *)
  read_only_when_solo : bool;
      (** refuse write acks when a shard has no live backup (default);
          [false] lets a solo primary keep acking — measurably faster
          and measurably unsafe, which is the point of the default *)
}

val default : config
(** 3 nodes, 4 shards over ["fastfair"], {!Fabric.default_faults}. *)

type t

type werr =
  | Read_only  (** the shard has no live backup and refuses write acks *)
  | Unavailable  (** no reachable primary after retries *)

type stats = {
  s_acks : int;  (** client writes acknowledged *)
  s_read_only : int;  (** writes refused in read-only degradation *)
  s_unavailable : int;  (** ops that exhausted routing retries *)
  s_failovers : int;
  s_resyncs : int;
  s_repl_records : int;  (** replication records durably acked *)
  s_repl_resent : int;  (** records re-shipped to close gaps *)
  s_rpc_sent : int;
  s_rpc_dropped : int;
  s_rpc_dup : int;
  s_last_blackout_ns : int;  (** last ack gap bridged by a failover; -1 if none *)
}

val create : ?tracer:Ff_trace.Trace.t -> config -> t
val config : t -> config
val fabric : t -> Fabric.t
val shard_of_key : t -> int -> int

(** {1 Client operations} *)

val put : t -> int -> int -> (unit, werr) result
val del : t -> int -> (unit, werr) result
val get : t -> int -> (int option, werr) result
(** Routed to the shard's current primary with the route's term; a
    deposed primary answers [not_primary] and the client re-routes,
    so reads never observe a stale authority. *)

(** {1 Control plane} *)

val tick : t -> unit
(** Heartbeat round + failure detector, paced on the fabric clock
    (also invoked opportunistically by client ops). *)

val partition : t -> a:int -> b:int -> unit
(** Cut the fabric link between nodes [a] and [b] until {!heal}. *)

val partition_for : t -> a:int -> b:int -> ns:int -> unit
val heal : t -> unit

val kill_node : ?mode:Ff_pmem.Storelog.crash_mode -> t -> int -> unit
(** Power-fail every shard arena of the node (default [Keep_all]) and
    mark it down; its endpoint swallows requests. *)

val restart_node : t -> int -> unit
(** Recover the node's ensemble, re-derive its replica state from the
    persisted term words, and resync every shard it backs from the
    current primary (segment ship + log-tail stream), lifting
    read-only degradation where the resync succeeds.  Where the node
    instead {e resumes primacy} (it restarted without being deposed),
    its backup is re-imaged first so both sides' replication
    watermarks restart coherently — its volatile issued counter
    reloads from a word only backups advance, and a live backup left
    ahead of it would falsely ack recycled seqnos; if that resync
    fails the shard degrades to read-only instead. *)

val failover : t -> shard:int -> bool
(** Explicit promote of the shard's backup (the detector's action);
    [false] when the backup is unreachable. *)

val demote : t -> shard:int -> unit
(** Persist an idle role on the route's {e backup} replica — the
    explicit fencing of a deposed primary after a heal, before its
    resync. *)

val resync : t -> shard:int -> bool
(** Force a catch-up of the route's backup from its primary. *)

val recover_all : t -> unit
(** After a full-cluster crash: recover every down node, then resolve
    each shard's authority from the persisted term words alone —
    highest [(term, role, applied)] wins, PR-9 [resolve] style — bump
    its term, and restore routes.  Shards come back read-only until
    their backups resync. *)

val read_only : t -> shard:int -> bool
val term_of : t -> shard:int -> int
val primary_of : t -> shard:int -> int
val backup_of : t -> shard:int -> int

val repl_lag : t -> shard:int -> int
(** Primary's issued seqno minus the backup's acked seqno. *)

val stats : t -> stats
val fences : t -> int
(** Total fences across every node arena (replication overhead). *)

val now_ns : t -> int
val close : t -> unit

val mutant_ack_before_replicate : bool ref
(** Test-only fault: the primary acknowledges client writes {e before}
    (and regardless of) backup replication.  {!Ff_check.Replcheck}
    must catch the lost acks this produces. *)
