module Arena = Ff_pmem.Arena
module Locks = Ff_index.Locks
module Intf = Ff_index.Intf

(* Leaf layout (words):
     0 bitmap (bit i = entry i live) | 1 sibling
     2..9 fingerprints (one byte per entry)
     10..15 pad
     16+2i entries[i].key | 17+2i entries[i].value *)

let off_bitmap = 0
let off_sibling = 1
let off_fps = 2
let off_entries = 16

let key_off i = off_entries + (2 * i)
let val_off i = off_entries + (2 * i) + 1

type child = Leaf of int | Inner of inner
and inner = { mutable keys : int array; mutable children : child array; mutable n : int }

type t = {
  arena : Arena.t;
  leaf_words : int;
  capacity : int;
  inner_fanout : int;
  root_slot : int;
  mutable root : child;
  locks : Locks.Table.t;
  versions : (int, int ref) Hashtbl.t; (* per-leaf seqlock (volatile) *)
  smo : Locks.mutex; (* serializes structure modifications (TSX fallback lock) *)
  mutable log_area : int;
}

let fingerprint key =
  (* SplitMix-style mix.  7 bits, not 8: the eighth byte packed into a
     word would need bit 63, which OCaml's 63-bit ints lack. *)
  let z = key * 0x9E3779B9 in
  let z = z lxor (z lsr 17) in
  z land 0x7f

(* Calibrated against the paper's Figure 5(b): at DRAM read latency an
   FP-tree search costs about the same as FAST+FAIR's (its 4KB DRAM
   inner nodes still miss caches), and only wins once PM reads are
   >= ~2x DRAM. *)
let inner_cpu_ns = 100 (* DRAM binary search of one 4KB inner node *)
let tx_cpu_ns = 60 (* TSX begin/commit *)

let make ?(leaf_bytes = 1024) ?(inner_fanout = 64) ?(root_slot = 6)
    ?(lock_mode = Locks.Single) arena =
  if leaf_bytes < 256 || leaf_bytes land (leaf_bytes - 1) <> 0 then
    invalid_arg "Fptree: leaf_bytes must be a power of two >= 256";
  let leaf_words = leaf_bytes / 8 in
  let capacity = min ((leaf_words - off_entries) / 2) 62 in
  {
    arena;
    leaf_words;
    capacity;
    inner_fanout = max inner_fanout 4;
    root_slot;
    root = Leaf 0;
    locks = Locks.Table.create lock_mode;
    versions = Hashtbl.create 1024;
    smo = Locks.make_mutex lock_mode;
    log_area = 0;
  }

(* ------------------------------------------------------------------ *)
(* Leaf primitives                                                     *)
(* ------------------------------------------------------------------ *)

let bitmap t n = Arena.read t.arena (n + off_bitmap)
let sibling t n = Arena.read t.arena (n + off_sibling)
let live bm i = bm land (1 lsl i) <> 0
let key t n i = Arena.read t.arena (n + key_off i)
let value t n i = Arena.read t.arena (n + val_off i)

let fp_byte t n i =
  let w = Arena.read t.arena (n + off_fps + (i / 8)) in
  (w lsr (8 * (i mod 8))) land 0xff

let set_fp_byte t n i v =
  let addr = n + off_fps + (i / 8) in
  let w = Arena.read t.arena addr in
  let shift = 8 * (i mod 8) in
  Arena.write t.arena addr ((w land lnot (0xff lsl shift)) lor ((v land 0xff) lsl shift))

let version_of t n =
  match Hashtbl.find_opt t.versions n with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace t.versions n r;
      r

(* Probe a leaf through the fingerprints: returns the slot index. *)
let leaf_find t n k =
  let fp = fingerprint k in
  let bm = bitmap t n in
  let rec go i =
    if i >= t.capacity then None
    else if live bm i && fp_byte t n i = fp && key t n i = k then Some i
    else go (i + 1)
  in
  go 0

let leaf_min_key t n =
  let bm = bitmap t n in
  let best = ref max_int in
  for i = 0 to t.capacity - 1 do
    if live bm i then begin
      let k = key t n i in
      if k < !best then best := k
    end
  done;
  if !best = max_int then None else Some !best

let leaf_live_pairs t n =
  let bm = bitmap t n in
  let acc = ref [] in
  (* Ascending slot order: the scan walks the leaf's lines forward, so
     the prefetcher discount applies as it would on hardware. *)
  for i = 0 to t.capacity - 1 do
    if live bm i then acc := (key t n i, value t n i) :: !acc
  done;
  List.rev !acc

let new_leaf t =
  let n = Arena.alloc t.arena t.leaf_words in
  Arena.flush_range t.arena n t.leaf_words;
  n

(* Rebuild the volatile inner levels bottom-up from the leaf chain.
   This is a restart cost, not a crash-repair step: the DRAM inners
   exist only in this process, so {e every} reopen must pay it before
   the tree can route keys (the uLog replay in [recover] is the
   crash-repair part). *)
let rebuild_inners t =
  let head = Arena.root_get t.arena t.root_slot in
  let rec leaves n acc = if n = 0 then List.rev acc else leaves (sibling t n) (n :: acc) in
  let chain = leaves head [] in
  let seps =
    List.filter_map (fun n -> Option.map (fun k -> (k, n)) (leaf_min_key t n)) chain
  in
  let nodes = List.map (fun (k, n) -> (k, Leaf n)) seps in
  (* Build levels bottom-up: each (k, c) pair is a subtree covering
     keys >= k; within a parent, the i-th child's lower bound is the
     (i-1)-th routing key. *)
  let rec build nodes =
    match nodes with
    | [] -> Leaf head
    | [ (_, c) ] -> c
    | _ ->
        let fan = t.inner_fanout in
        let rec chunk l acc =
          match l with
          | [] -> List.rev acc
          | _ ->
              let rec take n l got =
                match l with
                | x :: rest when n > 0 -> take (n - 1) rest (x :: got)
                | _ -> (List.rev got, l)
              in
              let grp, rest = take (fan + 1) l [] in
              chunk rest (grp :: acc)
        in
        let parent grp =
          match grp with
          | [] -> assert false
          | (k0, _) :: _ ->
              let m = List.length grp in
              let ka = Array.make fan 0 in
              let ca = Array.make (fan + 1) (Leaf 0) in
              List.iteri
                (fun i (k, c) ->
                  ca.(i) <- c;
                  if i > 0 then ka.(i - 1) <- k)
                grp;
              (k0, Inner { keys = ka; children = ca; n = m - 1 })
        in
        build (List.map parent (chunk nodes []))
  in
  t.root <- build nodes;
  Hashtbl.reset t.versions

(* ------------------------------------------------------------------ *)
(* Creation                                                            *)
(* ------------------------------------------------------------------ *)

let create ?leaf_bytes ?inner_fanout ?root_slot ?lock_mode arena =
  let t = make ?leaf_bytes ?inner_fanout ?root_slot ?lock_mode arena in
  let leaf = new_leaf t in
  Arena.root_set arena t.root_slot leaf;
  t.root <- Leaf leaf;
  t

let open_existing ?leaf_bytes ?inner_fanout ?root_slot ?lock_mode arena =
  let t = make ?leaf_bytes ?inner_fanout ?root_slot ?lock_mode arena in
  t.log_area <- Arena.root_get arena (t.root_slot + 1);
  rebuild_inners t;
  t

(* ------------------------------------------------------------------ *)
(* Volatile inner descent                                              *)
(* ------------------------------------------------------------------ *)

(* children.(i) covers keys k with keys.(i-1) <= k < keys.(i). *)
let child_index inner k =
  let rec go lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if k < inner.keys.(mid) then go lo mid else go (mid + 1) hi
    end
  in
  go 0 inner.n

let rec to_leaf t node k =
  match node with
  | Leaf n -> n
  | Inner inner ->
      Arena.cpu_work t.arena inner_cpu_ns;
      to_leaf t inner.children.(child_index inner k) k

(* ------------------------------------------------------------------ *)
(* Search (seqlock reader)                                             *)
(* ------------------------------------------------------------------ *)

let search t k =
  Arena.cpu_work t.arena tx_cpu_ns;
  let n = to_leaf t t.root k in
  let ver = version_of t n in
  let rec attempt budget =
    let v1 = !ver in
    let r = match leaf_find t n k with Some i -> Some (value t n i) | None -> None in
    if !ver <> v1 && budget > 0 then attempt (budget - 1) else r
  in
  attempt 64

(* ------------------------------------------------------------------ *)
(* Micro-log for leaf splits                                           *)
(* ------------------------------------------------------------------ *)

let ensure_log t =
  if t.log_area = 0 then begin
    let la = Arena.alloc t.arena Arena.words_per_line in
    t.log_area <- la;
    Arena.root_set t.arena (t.root_slot + 1) la
  end;
  t.log_area

(* uLog: [0] donor leaf; [1] new leaf; [2] commit flag. *)
let log_split_begin t donor fresh =
  let la = ensure_log t in
  Arena.write t.arena la donor;
  Arena.write t.arena (la + 1) fresh;
  Arena.write t.arena (la + 2) 1;
  Arena.flush t.arena la

let log_split_end t =
  let la = ensure_log t in
  Arena.write t.arena (la + 2) 0;
  Arena.flush t.arena la

(* ------------------------------------------------------------------ *)
(* Insert                                                              *)
(* ------------------------------------------------------------------ *)

let leaf_append t n k v =
  (* Requires a free slot. *)
  let bm = bitmap t n in
  let rec free i = if live bm i then free (i + 1) else i in
  let i = free 0 in
  Arena.write t.arena (n + key_off i) k;
  Arena.write t.arena (n + val_off i) v;
  Arena.flush t.arena (n + key_off i);
  set_fp_byte t n i (fingerprint k);
  Arena.flush t.arena (n + off_fps + (i / 8));
  (* Commit with one failure-atomic bitmap store. *)
  Arena.write t.arena (n + off_bitmap) (bm lor (1 lsl i));
  Arena.flush t.arena (n + off_bitmap)

let leaf_count t n =
  let bm = bitmap t n in
  let c = ref 0 in
  for i = 0 to t.capacity - 1 do
    if live bm i then incr c
  done;
  !c

(* Split a full leaf; returns (separator, new leaf). *)
let split_leaf t n =
  let pairs = leaf_live_pairs t n in
  let sorted = List.sort compare pairs in
  let cnt = List.length sorted in
  let median_key = fst (List.nth sorted (cnt / 2)) in
  let fresh = new_leaf t in
  log_split_begin t n fresh;
  (* Copy upper half into the fresh (private) leaf. *)
  let moved = ref 0 in
  let bm_keep = ref 0 in
  let bm = bitmap t n in
  for i = 0 to t.capacity - 1 do
    if live bm i then begin
      let k = key t n i in
      if k >= median_key then begin
        Arena.write t.arena (fresh + key_off !moved) k;
        Arena.write t.arena (fresh + val_off !moved) (value t n i);
        set_fp_byte t fresh !moved (fingerprint k);
        incr moved
      end
      else bm_keep := !bm_keep lor (1 lsl i)
    end
  done;
  let bm_fresh = (1 lsl !moved) - 1 in
  Arena.write t.arena (fresh + off_bitmap) bm_fresh;
  Arena.write t.arena (fresh + off_sibling) (sibling t n);
  Arena.flush_range t.arena fresh t.leaf_words;
  (* Publish, then retire the moved entries with one atomic store. *)
  Arena.write t.arena (n + off_sibling) fresh;
  Arena.flush t.arena (n + off_sibling);
  Arena.write t.arena (n + off_bitmap) !bm_keep;
  Arena.flush t.arena (n + off_bitmap);
  log_split_end t;
  (median_key, fresh)

(* Place a separator (sep, right) directly above the leaf level.
   Pure volatile-array surgery with no PM access, hence atomic in the
   cooperative simulator; callers hold the SMO lock. *)
let rec place_sep t node sep right =
  match node with
  | Leaf _ -> assert false (* handled by the root case in [insert] *)
  | Inner inner -> (
      let i = child_index inner sep in
      match inner.children.(i) with
      | Leaf _ -> put_sep t inner i sep right
      | Inner _ as sub -> (
          match place_sep t sub sep right with
          | `Ok -> `Ok
          | `Split (up, r) -> put_sep t inner (child_index inner up) up r))

and put_sep t inner i sep right =
  if inner.n < Array.length inner.keys then begin
    Array.blit inner.keys i inner.keys (i + 1) (inner.n - i);
    Array.blit inner.children (i + 1) inner.children (i + 2) (inner.n - i);
    inner.keys.(i) <- sep;
    inner.children.(i + 1) <- right;
    inner.n <- inner.n + 1;
    `Ok
  end
  else begin
    (* Split this inner node around its median. *)
    let fan = Array.length inner.keys in
    let keys = Array.make (inner.n + 1) 0 in
    let children = Array.make (inner.n + 2) (Leaf 0) in
    Array.blit inner.keys 0 keys 0 i;
    keys.(i) <- sep;
    Array.blit inner.keys i keys (i + 1) (inner.n - i);
    Array.blit inner.children 0 children 0 (i + 1);
    children.(i + 1) <- right;
    Array.blit inner.children (i + 1) children (i + 2) (inner.n - i);
    let total = inner.n + 1 in
    let mid = total / 2 in
    let up = keys.(mid) in
    let left_keys = Array.make fan 0 in
    let left_children = Array.make (fan + 1) (Leaf 0) in
    Array.blit keys 0 left_keys 0 mid;
    Array.blit children 0 left_children 0 (mid + 1);
    let rn = total - mid - 1 in
    let right_keys = Array.make fan 0 in
    let right_children = Array.make (fan + 1) (Leaf 0) in
    Array.blit keys (mid + 1) right_keys 0 rn;
    Array.blit children (mid + 1) right_children 0 (rn + 1);
    inner.keys <- left_keys;
    inner.children <- left_children;
    inner.n <- mid;
    ignore t;
    `Split (up, Inner { keys = right_keys; children = right_children; n = rn })
  end

let grow_root t sep left right =
  let fan = t.inner_fanout in
  let keys = Array.make fan 0 in
  let children = Array.make (fan + 1) (Leaf 0) in
  keys.(0) <- sep;
  children.(0) <- left;
  children.(1) <- right;
  t.root <- Inner { keys; children; n = 1 }

let rec insert t ~key:k ~value:v =
  if k <= 0 then invalid_arg "Fptree.insert: key must be positive";
  if v = 0 then invalid_arg "Fptree.insert: value must be nonzero";
  Arena.set_phase t.arena Ff_pmem.Stats.Search;
  Arena.cpu_work t.arena tx_cpu_ns;
  let leaf = to_leaf t t.root k in
  Locks.lock (Locks.Table.mutex_of t.locks leaf);
  (* The leaf may have split while we acquired the lock. *)
  if to_leaf t t.root k <> leaf then begin
    Locks.unlock (Locks.Table.mutex_of t.locks leaf);
    insert t ~key:k ~value:v
  end
  else begin
    Arena.set_phase t.arena Ff_pmem.Stats.Update;
    match leaf_find t leaf k with
    | Some i ->
        let ver = version_of t leaf in
        incr ver;
        Arena.write t.arena (leaf + val_off i) v;
        Arena.flush t.arena (leaf + val_off i);
        incr ver;
        Locks.unlock (Locks.Table.mutex_of t.locks leaf);
        Arena.set_phase t.arena Ff_pmem.Stats.Other
    | None ->
        if leaf_count t leaf < t.capacity then begin
          let ver = version_of t leaf in
          incr ver;
          leaf_append t leaf k v;
          incr ver;
          Locks.unlock (Locks.Table.mutex_of t.locks leaf);
          Arena.set_phase t.arena Ff_pmem.Stats.Other
        end
        else begin
          (* Structure modification: split under the TSX fallback lock,
             then retry the insert against the new shape. *)
          Locks.lock t.smo;
          let ver = version_of t leaf in
          incr ver;
          let sep, fresh = split_leaf t leaf in
          incr ver;
          (match t.root with
          | Leaf r when r = leaf -> grow_root t sep (Leaf leaf) (Leaf fresh)
          | Leaf _ | Inner _ -> (
              match place_sep t t.root sep (Leaf fresh) with
              | `Ok -> ()
              | `Split (up, right) -> grow_root t up t.root right));
          Locks.unlock t.smo;
          Locks.unlock (Locks.Table.mutex_of t.locks leaf);
          Arena.set_phase t.arena Ff_pmem.Stats.Other;
          insert t ~key:k ~value:v
        end
  end

(* ------------------------------------------------------------------ *)
(* Delete                                                              *)
(* ------------------------------------------------------------------ *)

let delete t k =
  Arena.cpu_work t.arena tx_cpu_ns;
  let n = to_leaf t t.root k in
  Locks.lock (Locks.Table.mutex_of t.locks n);
  let r =
    match leaf_find t n k with
    | None -> false
    | Some i ->
        let ver = version_of t n in
        incr ver;
        Arena.write t.arena (n + off_bitmap) (bitmap t n land lnot (1 lsl i));
        Arena.flush t.arena (n + off_bitmap);
        incr ver;
        true
  in
  Locks.unlock (Locks.Table.mutex_of t.locks n);
  r

(* ------------------------------------------------------------------ *)
(* Range: leaf chain with per-leaf volatile sort                       *)
(* ------------------------------------------------------------------ *)

let range t ~lo ~hi f =
  Arena.cpu_work t.arena tx_cpu_ns;
  let n = to_leaf t t.root lo in
  let rec scan n last =
    if n <> 0 then begin
      let pairs = List.sort compare (leaf_live_pairs t n) in
      Arena.cpu_work t.arena (2 * List.length pairs);
      let stop = ref false in
      let last = ref last in
      List.iter
        (fun (k, v) ->
          if not !stop then
            if k > hi then stop := true
            else if k >= lo && k > !last then begin
              f k v;
              last := k
            end)
        pairs;
      if not !stop then scan (sibling t n) !last
    end
  in
  scan n (lo - 1)

(* ------------------------------------------------------------------ *)
(* Recovery: replay uLog, rebuild inner levels from the leaf chain     *)
(* ------------------------------------------------------------------ *)

let recover t =
  t.log_area <- Arena.root_get t.arena (t.root_slot + 1);
  (* uLog replay: if a split was in flight, retire donor entries that
     already landed in the (published) new leaf, or discard the
     unpublished leaf by doing nothing — the donor still owns them. *)
  (if t.log_area <> 0 && Arena.peek t.arena (t.log_area + 2) = 1 then begin
     let donor = Arena.read t.arena t.log_area in
     let fresh = Arena.read t.arena (t.log_area + 1) in
     if sibling t donor = fresh then begin
       (* Published: drop donor copies of every key present in fresh. *)
       let fresh_keys = List.map fst (leaf_live_pairs t fresh) in
       let bm = ref (bitmap t donor) in
       for i = 0 to t.capacity - 1 do
         if live !bm i && List.mem (key t donor i) fresh_keys then
           bm := !bm land lnot (1 lsl i)
       done;
       Arena.write t.arena (donor + off_bitmap) !bm;
       Arena.flush t.arena (donor + off_bitmap)
     end;
     log_split_end t
   end);
  (* The replay may have changed leaf occupancy; rebuild routing. *)
  rebuild_inners t

let height t =
  let rec go = function Leaf _ -> 1 | Inner i -> 1 + go i.children.(0) in
  go t.root

let ops t =
  Intf.make ~name:"fptree"
    ~insert:(fun k v -> insert t ~key:k ~value:v)
    ~search:(fun k -> search t k)
    ~delete:(fun k -> delete t k)
    ~range:(fun lo hi f -> range t ~lo ~hi f)
    ~recover:(fun () -> recover t)
    ~close:(fun () -> Arena.drain t.arena)
    ()

let () =
  let module D = Ff_index.Descriptor in
  Ff_index.Registry.register
    {
      D.name = "fptree";
      summary = "FP-tree baseline (fingerprinted PM leaves, volatile inner levels)";
      caps =
        {
          D.has_range = true;
          has_delete = true;
          has_recovery = true;
          is_persistent = true;
          lock_modes = [ Locks.Single; Locks.Sim ];
          lock_free_reads = false;
          tunable_node_bytes = true;
          relocatable_root = true;
          scrubbable = false;
          txnable = true;
          snapshottable = false;
        };
      composite = None;
      build =
        (fun cfg a ->
          ops
            (create ?leaf_bytes:cfg.D.node_bytes ~lock_mode:cfg.D.lock_mode
               ~root_slot:cfg.D.root_slot a));
      open_existing =
        (fun cfg a ->
          ops
            (open_existing ?leaf_bytes:cfg.D.node_bytes
               ~lock_mode:cfg.D.lock_mode ~root_slot:cfg.D.root_slot a));
    }
