(** FP-tree baseline (Oukid et al., SIGMOD'16): selective persistence.

    Leaf nodes live in PM with a liveness bitmap, one-byte key
    fingerprints (to probe at most one entry line per search on
    average), and unsorted entries; inner nodes live in volatile DRAM
    and are rebuilt from the leaf chain on recovery — which is exactly
    why the paper argues FP-tree is not instantly recoverable
    (Section V: "the reconstruction of internal nodes is not very
    different from the reconstruction of the whole index").

    Leaf splits are guarded by a small PM micro-log.  Concurrency
    follows the paper's TSX modelling: inner-node accesses are
    hardware transactions (atomic in the cooperative simulator, with a
    small CPU charge), writers take a per-leaf lock, readers validate
    a per-leaf version counter (seqlock) instead of locking. *)

type t

val create :
  ?leaf_bytes:int -> ?inner_fanout:int -> ?root_slot:int ->
  ?lock_mode:Ff_index.Locks.mode -> Ff_pmem.Arena.t -> t
(** Defaults: 1 KB leaves, inner fanout 64, root slot 6. *)

val open_existing :
  ?leaf_bytes:int -> ?inner_fanout:int -> ?root_slot:int ->
  ?lock_mode:Ff_index.Locks.mode -> Ff_pmem.Arena.t -> t
(** Reattach to a persisted image.  The volatile inner levels are
    rebuilt from the leaf chain immediately (a restart cost every
    reopen pays — the non-instant restart the paper criticizes); after
    a crash, {!recover} must still run before relying on the tree (it
    replays the leaf-split micro-log). *)

val insert : t -> key:int -> value:int -> unit
val search : t -> int -> int option
val delete : t -> int -> bool
val range : t -> lo:int -> hi:int -> (int -> int -> unit) -> unit

val recover : t -> unit
(** Replay the leaf-split micro-log, then rebuild the inner levels
    from the (possibly repaired) leaf chain. *)

val ops : t -> Ff_index.Intf.ops
val height : t -> int
