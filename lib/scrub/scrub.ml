(* Post-crash scrubber: reachability scan, leak reclamation, media
   repair — the generic orchestrator over the structure-specific hooks
   registered through [Registry.register_scrub].

   Order of operations is conservative, structure-first:

   1. repair poisoned lines (the structure's hook re-derives or
      quarantines them) — never reclaim from a damaged structure;
   2. re-run recovery (the caller's [ops.recover], now safe to take
      charged reads);
   3. validate against the structure's invariant checker;
   4. only if the structure is sound, sweep [reserved_words, bump) for
      allocated-but-unreachable gaps and return them to the allocator
      through the hardened [Arena.free].

   All scan work is charged to the arena as sequential media reads, so
   scrub cost shows up in simulated nanoseconds like any other phase. *)

module Arena = Ff_pmem.Arena
module Config = Ff_pmem.Config
module Stats = Ff_pmem.Stats
module D = Ff_index.Descriptor
module Registry = Ff_index.Registry
module Trace = Ff_trace.Trace
module Metrics = Ff_trace.Metrics
module Json = Ff_trace.Json

let wpl = Arena.words_per_line

type report = {
  index : string;
  used_words_before : int;
  used_words_after : int;
  reachable_words : int;
  free_words : int;
  leaked_blocks : (int * int) list;
  leaked_words : int;
  reclaimed_words : int;
  repaired_lines : int list;
  quarantined_lines : int list;
  lost_records : int;
  remaining_poison : int list;
  violations : string list;
  duration_ns : int;
}

let clean r = r.violations = [] && r.remaining_poison = []

let scrubbable (d : D.t) =
  d.D.caps.D.scrubbable && Registry.scrub_provider d.D.name <> None

(* Allocated-but-unreachable gaps: the complement of reachable blocks
   and free-listed blocks within [reserved_words, bump).  Overlapping
   coverage is a structural bug (the tree references a freed block) and
   is reported as a violation rather than silently merged. *)
let find_gaps ~reachable ~free ~bump =
  let blocks = List.sort compare (reachable @ free) in
  let gaps = ref [] and overlaps = ref [] in
  let pos = ref Arena.reserved_words in
  List.iter
    (fun (a, w) ->
      if a < !pos then
        overlaps := Printf.sprintf "block [%d,%d) overlaps coverage up to %d" a (a + w) !pos :: !overlaps
      else begin
        if a > !pos then gaps := (!pos, a - !pos) :: !gaps;
        pos := a + w
      end)
    blocks;
  if bump > !pos then gaps := (!pos, bump - !pos) :: !gaps;
  (List.rev !gaps, List.rev !overlaps)

(* Carve a gap into grain-sized blocks (so reclaimed leaks come back
   in node-sized units the structure can actually reuse), with a
   single remainder block for any tail. *)
let split_gap grain (addr, words) =
  if grain <= 0 || words <= grain then [ (addr, words) ]
  else begin
    let rec go a w acc =
      if w = 0 then List.rev acc
      else if w >= grain then go (a + grain) (w - grain) ((a, grain) :: acc)
      else List.rev ((a, w) :: acc)
    in
    go addr words []
  end

let zero_line a line =
  let base = line * wpl in
  for w = base to base + wpl - 1 do
    Arena.write a w 0
  done;
  Arena.flush a base

let empty_repair = { D.repaired_lines = []; quarantined_lines = []; lost_records = 0 }

let run ?(tracer = Trace.null) ?(repair = true) ?(reclaim = true) ?recover
    ~config (d : D.t) arena =
  if not d.D.caps.D.scrubbable then
    invalid_arg (Printf.sprintf "Scrub.run: %s is not scrubbable" d.D.name);
  let provider =
    match Registry.scrub_provider d.D.name with
    | Some p -> p
    | None ->
        invalid_arg
          (Printf.sprintf "Scrub.run: %s claims scrubbable but registered no provider"
             d.D.name)
  in
  Trace.span_begin tracer Trace.id_scrub 0;
  let ns0 = Stats.total_ns (Arena.total_stats arena) in
  let used_before = Arena.used_words arena in
  let sops = provider config arena in
  (* 1. Media repair. *)
  let poisoned = Arena.poisoned_lines arena in
  let rep =
    if repair && poisoned <> [] then sops.D.scrub_repair poisoned
    else empty_repair
  in
  (* 2. Recovery, now that charged reads are safe again. *)
  let recover_violation =
    match recover with
    | None -> []
    | Some f -> (
        try
          f ();
          []
        with
        | Arena.Media_error addr ->
            [ Printf.sprintf "recovery raised Media_error at %d" addr ]
        | e -> [ "recovery raised " ^ Printexc.to_string e ])
  in
  (* 3. Validation. *)
  let violations = recover_violation @ sops.D.scrub_validate () in
  (* 4. Reachability scan and leak reclamation.  Charge the sweep as a
     sequential media read of the whole allocated region. *)
  let reachable = sops.D.scrub_reachable () in
  (* The arena's transaction-log region is root-anchored arena
     metadata, reachable by definition — without this the reclamation
     pass would misread it as a leak and free it out from under root
     slot 56. *)
  let reachable =
    let addr = Arena.root_get arena Ff_pmem.Txlog.slot_addr in
    if addr = 0 then reachable
    else (addr, Arena.root_get arena Ff_pmem.Txlog.slot_words) :: reachable
  in
  let reachable_words = List.fold_left (fun acc (_, w) -> acc + w) 0 reachable in
  let cfg = Arena.config arena in
  let scan_lines = (Arena.used_words arena + wpl - 1) / wpl in
  Arena.cpu_work arena
    (scan_lines * (cfg.Config.read_latency_ns / cfg.Config.mlp_factor));
  let free = Arena.free_blocks arena in
  let free_total = List.fold_left (fun acc (_, w) -> acc + w) 0 free in
  let gaps, overlaps =
    find_gaps ~reachable ~free ~bump:(Arena.reserved_words + Arena.used_words arena)
  in
  let violations = violations @ overlaps in
  let leaked_words = List.fold_left (fun acc (_, w) -> acc + w) 0 gaps in
  let extra_repaired = ref [] in
  let reclaimed =
    if reclaim && violations = [] && gaps <> [] then begin
      List.iter
        (fun (addr, words) ->
          (* Clear any poison stranded in the leaked area before the
             block can be recycled through the (non-zeroing) raw
             allocation path. *)
          for line = addr / wpl to (addr + words - 1) / wpl do
            if Arena.is_poisoned arena (line * wpl) then begin
              zero_line arena line;
              extra_repaired := line :: !extra_repaired
            end
          done;
          List.iter
            (fun (a, w) -> Arena.free arena a w)
            (split_gap sops.D.scrub_grain (addr, words)))
        gaps;
      leaked_words
    end
    else 0
  in
  let remaining_poison =
    List.map (fun l -> l * wpl) (Arena.poisoned_lines arena)
  in
  let ns1 = Stats.total_ns (Arena.total_stats arena) in
  let report =
    {
      index = d.D.name;
      used_words_before = used_before;
      used_words_after = Arena.used_words arena;
      reachable_words;
      free_words = free_total;
      leaked_blocks = gaps;
      leaked_words;
      reclaimed_words = reclaimed;
      repaired_lines =
        List.sort_uniq compare (rep.D.repaired_lines @ !extra_repaired);
      quarantined_lines = rep.D.quarantined_lines;
      lost_records = rep.D.lost_records;
      remaining_poison;
      violations;
      duration_ns = ns1 - ns0;
    }
  in
  if Trace.enabled tracer then begin
    let m = Trace.metrics tracer in
    Metrics.add m "scrub.leaked_words" report.leaked_words;
    Metrics.add m "scrub.reclaimed_words" report.reclaimed_words;
    Metrics.add m "scrub.quarantined_lines" (List.length report.quarantined_lines);
    Metrics.add m "scrub.repaired_lines" (List.length report.repaired_lines);
    Metrics.observe m "scrub.duration_ns" report.duration_ns
  end;
  Trace.span_end tracer Trace.id_scrub;
  report

let audit ~config d arena = run ~repair:false ~reclaim:false ~config d arena

let to_json r =
  let blocks bs =
    Json.Arr
      (List.map (fun (a, w) -> Json.Obj [ ("addr", Json.Int a); ("words", Json.Int w) ]) bs)
  in
  let ints is = Json.Arr (List.map (fun i -> Json.Int i) is) in
  Json.Obj
    [
      ("index", Json.Str r.index);
      ("used_words_before", Json.Int r.used_words_before);
      ("used_words_after", Json.Int r.used_words_after);
      ("reachable_words", Json.Int r.reachable_words);
      ("free_words", Json.Int r.free_words);
      ("leaked_blocks", blocks r.leaked_blocks);
      ("leaked_words", Json.Int r.leaked_words);
      ("reclaimed_words", Json.Int r.reclaimed_words);
      ("repaired_lines", ints r.repaired_lines);
      ("quarantined_lines", ints r.quarantined_lines);
      ("lost_records", Json.Int r.lost_records);
      ("remaining_poison", ints r.remaining_poison);
      ("violations", Json.Arr (List.map (fun v -> Json.Str v) r.violations));
      ("duration_ns", Json.Int r.duration_ns);
      ("clean", Json.Bool (clean r));
    ]

let to_string r = Json.to_string (to_json r)

let pp fmt r =
  Format.fprintf fmt
    "@[<v>scrub %s: %s@,\
     used %d -> %d words, reachable %d, free-listed %d@,\
     leaked %d words in %d blocks, reclaimed %d@,\
     repaired %d lines, quarantined %d lines, lost %d records@,\
     duration %d simulated ns%a@]"
    r.index
    (if clean r then "clean" else "NOT CLEAN")
    r.used_words_before r.used_words_after r.reachable_words r.free_words
    r.leaked_words
    (List.length r.leaked_blocks)
    r.reclaimed_words
    (List.length r.repaired_lines)
    (List.length r.quarantined_lines)
    r.lost_records r.duration_ns
    (fun fmt vs ->
      List.iter (fun v -> Format.fprintf fmt "@,violation: %s" v) vs)
    r.violations
