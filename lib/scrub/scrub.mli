(** Post-crash scrubber: reachability scan, leak reclamation, and
    media-fault repair over any index whose descriptor claims
    [caps.scrubbable].

    FAST+FAIR trades logging away, so a crash inside a split can leak
    a freshly allocated node forever: allocator metadata is volatile,
    [used_words] only grows across crash/recover cycles, and nothing
    in the tree ever walks the arena to take leaked blocks back.  The
    scrubber closes that loop — and doubles as the repair pass for the
    arena's media-fault model (poisoned lines, bit flips).

    The orchestrator is structure-agnostic: per-structure knowledge
    (what is reachable, how to repair, how to validate) comes from the
    {!Ff_index.Descriptor.scrub_ops} hooks registered through
    {!Ff_index.Registry.register_scrub}.  Pass order is conservative:
    repair poisoned lines first, re-run recovery, validate, and only
    reclaim leaks from a structure that validated clean. *)

type report = {
  index : string;
  used_words_before : int;
  used_words_after : int;     (** drops when tail leaks are trimmed *)
  reachable_words : int;
  free_words : int;           (** free-listed words at scan time *)
  leaked_blocks : (int * int) list;
      (** allocated-but-unreachable [(addr, words)] gaps *)
  leaked_words : int;
  reclaimed_words : int;      (** 0 unless the structure validated clean *)
  repaired_lines : int list;  (** poisoned lines re-derived in full *)
  quarantined_lines : int list; (** poisoned lines dropped with loss *)
  lost_records : int;
  remaining_poison : int list;  (** word addresses still poisoned *)
  violations : string list;
  duration_ns : int;          (** simulated ns charged for the pass *)
}

val clean : report -> bool
(** No violations and no remaining poison. *)

val scrubbable : Ff_index.Descriptor.t -> bool
(** The descriptor claims the capability {e and} a provider is
    registered for its name. *)

val run :
  ?tracer:Ff_trace.Trace.t ->
  ?repair:bool ->
  ?reclaim:bool ->
  ?recover:(unit -> unit) ->
  config:Ff_index.Descriptor.config ->
  Ff_index.Descriptor.t ->
  Ff_pmem.Arena.t ->
  report
(** Full scrub pass.  [repair] (default true) runs the structure's
    poison-repair hook; [recover] (typically [ops.recover]) re-runs
    recovery after repair, when charged reads are safe again; leaks
    are reclaimed through the hardened {!Ff_pmem.Arena.free} only when
    validation reports no violations ([reclaim] defaults to true).
    The scan is charged to the arena as a sequential media read, so
    [duration_ns] is comparable with operation latencies.  With
    [tracer] enabled, emits a [scrub] span and
    [scrub.leaked_words] / [scrub.reclaimed_words] /
    [scrub.quarantined_lines] / [scrub.duration_ns] metrics.
    @raise Invalid_argument if the descriptor is not scrubbable. *)

val audit :
  config:Ff_index.Descriptor.config ->
  Ff_index.Descriptor.t ->
  Ff_pmem.Arena.t ->
  report
(** Detection only: no repair, no recovery, no reclamation — the leak
    oracle.  A clean tree satisfies
    [reachable_words + free_words = used_words_before]
    (i.e. [leaked_blocks = []]). *)

val to_json : report -> Ff_trace.Json.t
(** Deterministic (key-ordered) JSON; identical seeds produce
    byte-identical reports. *)

val to_string : report -> string

val pp : Format.formatter -> report -> unit
