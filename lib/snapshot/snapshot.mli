(** MVCC epoch snapshots, time-travel reads and online backup over any
    registry index.

    The wrapper interposes on every mutation of an inner structure and
    keeps a persistent {e version store} beside it: one entry per
    ever-written key anchoring a prepend-only chain of superseded
    versions, each a closed epoch span [\[begin, end)].  Epochs are
    published crash-atomically through {!Ff_pmem.Epoch} (payload
    persisted, then one ordered epoch-word store), so a pinned
    snapshot's reads are stable against concurrent writers {e and}
    survive [power_fail] + recovery: re-pinning the same epoch after a
    crash returns byte-identical results.

    The registered descriptor ["snap-fastfair"] wraps the FAST+FAIR
    tree and claims [Descriptor.caps.snapshottable]; generic drivers
    reach the machinery through the {!Ff_index.Intf.ops} hooks
    ([snapshot_begin] / [read_at] / [range_at] / [gc_before]).  The
    shadow-transaction path composes for free: staged installs run
    inside a group-flush scope, and publication refuses to pin while a
    scope is open, so a snapshot never observes half a transaction. *)

type t
(** A snapshot-wrapped index instance. *)

val slot_anchor : int
(** Root slot (66) holding the version-store base address; written
    last, manifest-magic style, so store creation is crash-atomic. *)

val create : ?buckets:int -> Ff_pmem.Arena.t -> Ff_index.Intf.ops -> t
(** Wrap a freshly built inner index, allocating and anchoring an
    empty version store ([buckets] defaults to 64 hash chains). *)

val attach : Ff_pmem.Arena.t -> Ff_index.Intf.ops -> t
(** Reattach to a persisted version store from its anchor (after a
    crash or an image reload).
    @raise Invalid_argument when the arena carries none. *)

val ops_of : t -> string -> Ff_index.Intf.ops
(** The wrapped ops: mutations preserve superseded versions, reads and
    scans pass through, and the snapshot hooks are live. *)

val inner : t -> Ff_index.Intf.ops
val arena : t -> Ff_pmem.Arena.t

val recover : t -> unit
(** Inner recovery plus a volatile-cache rebuild from the persisted
    chains. *)

(** {1 Publication and raw epoch reads} *)

val snapshot_begin : t -> int -> int
(** [snapshot_begin t at]: quiesce in-flight writers and any open
    group-flush scope, then publish and return
    [max at (current + 1)].  Idempotent on retry: when [at > 0] is
    already the published epoch (a coordinator re-issuing a pin after
    a transient fault), returns [at] without publishing again.
    @raise Invalid_argument when [at > 0] and the published epoch has
    already moved beyond it.  See
    {!Ff_index.Intf.ops.snapshot_begin}. *)

val read_at : t -> int -> int -> int option
(** [read_at t e k]: the value of [k] as of published epoch [e].
    @raise Invalid_argument below the GC floor. *)

val range_at : t -> int -> int -> int -> (int -> int -> unit) -> unit
(** [range_at t e lo hi f]: ascending scan of [\[lo, hi\]] as of
    epoch [e]. *)

val gc_floor : t -> int
(** Oldest epoch still pinnable; [0] before any {!gc_before}. *)

val gc_before : t -> int -> int
(** [gc_before t e]: persist [e] as the GC floor (first, so a crash
    mid-reclamation cannot resurrect a half-collected epoch), then
    free every version record with [end <= e] and every entry that no
    longer distinguishes a pinnable epoch from the live tree — all
    through the hardened {!Ff_pmem.Arena.free}.  Runs exclusive with
    writers {e and} readers (both quiesce on the publication gate), so
    no walk can hold a pointer into a reclaimed line.  Returns freed
    lines. *)

(** {1 Pinned snapshot handles} *)

type snap

val take : t -> snap
(** Publish a fresh epoch and pin it. *)

val at : t -> epoch:int -> snap
(** Re-pin a previously published epoch (e.g. after recovery).
    @raise Invalid_argument if it was never published or was GC'd. *)

val epoch : snap -> int
val get : snap -> int -> int option
val range : snap -> lo:int -> hi:int -> (int -> int -> unit) -> unit
val release : snap -> unit
(** Unpin; the handle is dead afterwards (reads raise). *)

val gc : t -> int
(** {!gc_before} up to the oldest live pin (everything when none). *)

(** {1 Online backup} *)

val backup :
  t ->
  epoch:int ->
  dest:Ff_index.Intf.ops ->
  ?chunk:int ->
  ?between:(unit -> unit) ->
  unit ->
  int
(** Stream the pinned epoch into [dest] in [chunk]-key batches
    (default 512), calling [between] after each batch lands — the
    hook where a live source keeps serving traffic.  Returns the pair
    count.  The destination is typically a plain inner index built on
    a second arena with a non-default [root_slot] (the
    [relocatable_root] capability). *)

(** {1 Checker fault injection} *)

val mutant_read_latest : bool ref
(** Test-only mutant: resolve reads against the live tree, ignoring
    the pinned epoch.  The model checker's snapshot-serializability
    family must fail with this set. *)

(** {1 Composition} *)

val descriptor_over : string -> Ff_index.Descriptor.t
(** Descriptor ["snap-<inner>"] wrapping a registered inner structure.
    ["snap-fastfair"] (plus its scrub provider, which adds the version
    store's blocks to the reachability set and quarantines poisoned
    version lines with counted loss) self-registers at load. *)
