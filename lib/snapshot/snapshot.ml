(* MVCC epoch snapshots over any registry index.

   The wrapper interposes on every mutation of an inner structure and
   maintains a persistent *version store* beside it: one key entry per
   ever-written key, each anchoring a prepend-only chain of superseded
   versions.  Snapshot reads resolve strictly as-of a published epoch
   (Ff_pmem.Epoch) while writers proceed on the live tree.

   Version-store layout (all blocks are one 8-word cache line unless
   noted; the base address is anchored in root slot 66, written last so
   a crash before the anchor leaves only unreachable garbage):

     header block   [magic; gc_floor; buckets; ...] followed by
                    [buckets] hash-chain head words (line-rounded)
     key entry      [key; begin_epoch; chain; next_key; 0...]
     version record [value; begin_epoch; end_epoch; next; 0...]

   A record [v; b; e) means "the key held [v] from epoch [b] up to but
   not including epoch [e]".  The entry's [begin_epoch] is the epoch at
   which the inner structure's *current* state for the key became
   current, so resolution at snapshot epoch [s] is:

     - some chain record covers [s]           -> that record's value
     - entry.begin <= s                       -> the inner's live answer
     - entry.begin > s, no record covers [s]  -> absent at [s]

   Write protocol for a mutation of key [k] at working epoch
   [w = published + 1]:

     1. find or create the key entry (entry line persisted and fenced
        before the bucket head word links it — crash leaves a leak,
        never a dangling pointer);
     2. if entry.begin < w and the inner currently holds [v_old],
        persist a record [v_old; begin; w) and fence it *before*
        linking it at the chain head and advancing entry.begin to [w];
     3. perform the inner mutation.

   Every prefix of that order is crash-consistent: the chain and
   [begin_epoch] always agree with the inner's durable state about
   what was current at every published epoch.  Inside a group-flush
   scope (the shadow-transaction apply path and shard batches) the
   wrapper's fences are elided — the scope's closing fence is the
   durability point, and [snapshot_begin] refuses to pin while a scope
   is open, so a snapshot can never observe half a transaction. *)

module Arena = Ff_pmem.Arena
module Epoch = Ff_pmem.Epoch
module Intf = Ff_index.Intf
module D = Ff_index.Descriptor
module Registry = Ff_index.Registry
module Trace = Ff_trace.Trace

let magic = 0x534E4150 (* "SNAP" *)
let slot_anchor = 66
let line = Arena.words_per_line

(* Global fault-injection switch for the model checker's must-fail
   anchor: read the live tree instead of the pinned epoch.  Test-only;
   reaches registry-built instances that are only visible as ops. *)
let mutant_read_latest = ref false

type sites = { publish : int; read : int; gc : int; backup : int }

type t = {
  arena : Arena.t;
  inner : Intf.ops;
  base : int;    (* header block address *)
  buckets : int;
  cache : (int, int) Hashtbl.t;  (* key -> entry address (volatile) *)
  pins : (int, int) Hashtbl.t;   (* epoch -> pin count (volatile) *)
  mutable floor : int;           (* volatile mirror of the GC floor *)
  mutable in_flight : int;
  mutable readers : int;
  mutable publishing : bool;
  mutable tracer : (Trace.t * sites) option;
}

let inner t = t.inner
let arena t = t.arena
let gc_floor t = t.floor

let site_enter t which =
  match t.tracer with
  | Some (tr, s) ->
      Trace.site_enter tr
        (match which with
        | `Publish -> s.publish
        | `Read -> s.read
        | `Gc -> s.gc
        | `Backup -> s.backup)
  | None -> ()

let site_exit t =
  match t.tracer with Some (tr, _) -> Trace.site_exit tr | None -> ()

let set_tracer t tr =
  t.inner.Intf.set_tracer tr;
  if Trace.enabled tr then
    t.tracer <-
      Some
        ( tr,
          {
            publish = Trace.intern tr "snap_publish";
            read = Trace.intern tr "snap_read";
            gc = Trace.intern tr "snap_gc";
            backup = Trace.intern tr "snap_backup";
          } )

(* ------------------------------------------------------------------ *)
(* Version-store primitives                                            *)
(* ------------------------------------------------------------------ *)

let dir_words buckets = (buckets + line - 1) / line * line
let header_words buckets = line + dir_words buckets

let bucket_of t k = t.base + line + (k * 2654435761 land max_int) mod t.buckets

(* Inside a group-flush scope the closing fence is the durability
   point; the protocol's per-step fences are elided there (same crash
   semantics as the batch executor's). *)
let fence_unless_group t =
  if not (Arena.in_group t.arena) then Arena.fence t.arena

let rebuild_cache t =
  Hashtbl.reset t.cache;
  for b = 0 to t.buckets - 1 do
    let e = ref (Arena.read t.arena (t.base + line + b)) in
    while !e <> 0 do
      Hashtbl.replace t.cache (Arena.read t.arena !e) !e;
      e := Arena.read t.arena (!e + 3)
    done
  done;
  t.floor <- Arena.read t.arena (t.base + 1)

let create ?(buckets = 64) arena inner =
  let base = Arena.alloc arena (header_words buckets) in
  Arena.write arena base magic;
  Arena.write arena (base + 1) 0;
  Arena.write arena (base + 2) buckets;
  Arena.flush_range arena base (header_words buckets);
  Arena.fence arena;
  (* Anchor last: a crash before this store leaves the old image (or
     no version store at all), never a torn header. *)
  Arena.root_set arena slot_anchor base;
  {
    arena;
    inner;
    base;
    buckets;
    cache = Hashtbl.create 256;
    pins = Hashtbl.create 8;
    floor = 0;
    in_flight = 0;
    readers = 0;
    publishing = false;
    tracer = None;
  }

let attach arena inner =
  let base = Arena.root_get arena slot_anchor in
  if base = 0 || Arena.read arena base <> magic then
    invalid_arg "Snapshot.attach: arena carries no version store";
  let t =
    {
      arena;
      inner;
      base;
      buckets = Arena.read arena (base + 2);
      cache = Hashtbl.create 256;
      pins = Hashtbl.create 8;
      floor = 0;
      in_flight = 0;
      readers = 0;
      publishing = false;
      tracer = None;
    }
  in
  rebuild_cache t;
  t

let recover t =
  t.inner.Intf.recover ();
  t.in_flight <- 0;
  t.readers <- 0;
  t.publishing <- false;
  rebuild_cache t

(* ------------------------------------------------------------------ *)
(* Write path                                                          *)
(* ------------------------------------------------------------------ *)

let create_entry t k b =
  let head = bucket_of t k in
  let e = Arena.alloc t.arena line in
  Arena.write t.arena e k;
  Arena.write t.arena (e + 1) b;
  Arena.write t.arena (e + 3) (Arena.read t.arena head);
  Arena.flush_range t.arena e line;
  fence_unless_group t;
  Arena.write t.arena head e;
  Arena.flush t.arena head;
  fence_unless_group t;
  Hashtbl.replace t.cache k e;
  e

(* Preserve the inner's current state for [k] before a mutation at
   working epoch [w]: append the superseded value (if any) as a fully
   persisted record, then advance [begin_epoch].  The record is fenced
   before the head link, and the head link and [begin_epoch] share the
   entry line, so no crash point can orphan a span. *)
let preserve t e k w =
  let b = Arena.read t.arena (e + 1) in
  if b < w then begin
    (match t.inner.Intf.search k with
    | Some v_old ->
        let r = Arena.alloc t.arena line in
        Arena.write t.arena r v_old;
        Arena.write t.arena (r + 1) b;
        Arena.write t.arena (r + 2) w;
        Arena.write t.arena (r + 3) (Arena.read t.arena (e + 2));
        Arena.flush_range t.arena r line;
        fence_unless_group t;
        Arena.write t.arena (e + 2) r
    | None -> ());
    Arena.write t.arena (e + 1) w;
    Arena.flush t.arena e;
    fence_unless_group t
  end

(* Every mutation runs between [enter]/[leave] so a publisher can
   quiesce: new writers stall while an epoch is being published, and
   publication waits until in-flight writers drain.  The checks and
   counter updates touch no arena word, so under the cooperative
   simulator they are atomic with respect to thread switches. *)
let enter t =
  while t.publishing do
    Arena.cpu_work t.arena 20
  done;
  t.in_flight <- t.in_flight + 1

let leave t = t.in_flight <- t.in_flight - 1

let mutate t k f =
  if k < 1 then
    invalid_arg
      (Printf.sprintf
         "Snapshot: key %d outside the positive key domain (Intf contract)" k);
  enter t;
  Fun.protect
    ~finally:(fun () -> leave t)
    (fun () ->
      let w = Epoch.current t.arena + 1 in
      (match Hashtbl.find_opt t.cache k with
      | Some e -> preserve t e k w
      | None ->
          (* A missing entry is not proof of a missing pre-image: GC
             unlinks entries whose whole history the live tree already
             answers, yet epochs >= floor stay pinnable.  The live value
             of such a key has been current since before the floor (any
             later write would have re-created the entry), so re-anchor
             it at the floor and preserve it like any other
             supersession — a pin in [floor, w) keeps its read. *)
          if t.inner.Intf.search k = None then ignore (create_entry t k w)
          else preserve t (create_entry t k t.floor) k w);
      f ())

(* ------------------------------------------------------------------ *)
(* Snapshot reads                                                      *)
(* ------------------------------------------------------------------ *)

let chain_find t e s =
  let rec walk r =
    if r = 0 then None
    else
      let b = Arena.read t.arena (r + 1) and en = Arena.read t.arena (r + 2) in
      if b <= s && s < en then Some (Arena.read t.arena r)
      else walk (Arena.read t.arena (r + 3))
  in
  walk (Arena.read t.arena (e + 2))

(* Readers hold a slot so the collector can quiesce them: [gc_before]
   unlinks and [Arena.free]s version lines, and a reader mid-walk must
   never keep a pointer into a line being recycled.  The slot is gated
   on the same [publishing] flag as writers; the check-then-increment
   touches no arena word, so it is atomic under the cooperative
   simulator.  The floor check lives *inside* the slot — checking it
   before the gate would let a concurrent gc collect the epoch between
   the check and the walk. *)
let reader_enter t =
  while t.publishing do
    Arena.cpu_work t.arena 20
  done;
  t.readers <- t.readers + 1

let reader_leave t = t.readers <- t.readers - 1

let check_floor t s which =
  if s < t.floor then
    invalid_arg
      (Printf.sprintf "Snapshot.%s: epoch %d below GC floor %d" which s t.floor)

(* Resolution races with the write protocol only through the inner
   search: a writer may supersede the live value after we chose the
   live path.  Every such write advances [begin_epoch] *before* the
   inner mutation, so re-reading it detects the race and the retry
   finds the preserved record.  The caller holds a reader slot. *)
let resolve_at t s k =
  match Hashtbl.find_opt t.cache k with
  | None ->
      (* Never written through the wrapper: content that predates the
         version store is visible at every epoch. *)
      t.inner.Intf.search k
  | Some e ->
      let rec resolve () =
        match chain_find t e s with
        | Some v -> Some v
        | None ->
            let b = Arena.read t.arena (e + 1) in
            if b > s then
              (* The span covering [s] (if any) was linked before
                 [begin_epoch] advanced past [s]; one re-walk sees it. *)
              chain_find t e s
            else
              let r = t.inner.Intf.search k in
              if Arena.read t.arena (e + 1) <> b then resolve () else r
      in
      resolve ()

let read_at t s k =
  if !mutant_read_latest then t.inner.Intf.search k
  else begin
    reader_enter t;
    Fun.protect ~finally:(fun () -> reader_leave t) @@ fun () ->
    check_floor t s "read_at";
    site_enter t `Read;
    Fun.protect ~finally:(fun () -> site_exit t) @@ fun () -> resolve_at t s k
  end

let range_at t s lo hi f =
  if !mutant_read_latest then t.inner.Intf.range lo hi f
  else begin
    (* Candidates: every key the live tree holds in the window plus
       every key the version store has ever seen there (covers keys
       deleted since [s]).  The cache fold touches no arena word, so it
       is atomic under the simulator.  Per-key resolution then goes
       through [read_at], taking one reader slot per key — [f] runs
       outside any slot, so a backup's between-chunk writes cannot
       deadlock against a concurrent collector. *)
    let keys =
      reader_enter t;
      Fun.protect ~finally:(fun () -> reader_leave t) @@ fun () ->
      check_floor t s "range_at";
      let seen = Hashtbl.create 64 in
      t.inner.Intf.range lo hi (fun k _ -> Hashtbl.replace seen k ());
      Hashtbl.iter
        (fun k _ -> if k >= lo && k <= hi then Hashtbl.replace seen k ())
        t.cache;
      List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])
    in
    List.iter
      (fun k -> match read_at t s k with Some v -> f k v | None -> ())
      keys
  end

(* ------------------------------------------------------------------ *)
(* Publication                                                         *)
(* ------------------------------------------------------------------ *)

let snapshot_begin t at =
  while t.publishing do
    Arena.cpu_work t.arena 20
  done;
  t.publishing <- true;
  Fun.protect
    ~finally:(fun () -> t.publishing <- false)
    (fun () ->
      (* Quiesce: wait out in-flight writers and any open group-flush
         scope (a shadow-transaction apply or a shard batch), so the
         pinned epoch sits on an operation boundary. *)
      while t.in_flight > 0 || Arena.in_group t.arena do
        Arena.cpu_work t.arena 30
      done;
      let c = Epoch.current t.arena in
      if at > 0 && c = at then
        (* Already pinned at the coordinator's epoch — a retried call
           (a transient fault can hit between the publish and the
           return) must succeed idempotently, not publish past the
           agreed epoch. *)
        at
      else if at > 0 && c > at then
        invalid_arg
          (Printf.sprintf
             "Snapshot.snapshot_begin: published epoch %d already beyond \
              requested pin %d" c at)
      else begin
        let e = max at (c + 1) in
        site_enter t `Publish;
        Fun.protect ~finally:(fun () -> site_exit t) @@ fun () ->
        Epoch.publish t.arena e;
        e
      end)

(* ------------------------------------------------------------------ *)
(* Epoch-based GC                                                      *)
(* ------------------------------------------------------------------ *)

(* Reclaim everything only reachable from epochs below [e]: version
   records whose span ends at or before [e], and entries that carry no
   history beyond what the live tree already answers.  Runs exclusive
   with writers (same gate as publication) and persists the new floor
   *first*, so a crash mid-reclamation can never let a later re-pin
   read a half-collected epoch. *)
let gc_before t e =
  while t.publishing do
    Arena.cpu_work t.arena 20
  done;
  t.publishing <- true;
  Fun.protect
    ~finally:(fun () -> t.publishing <- false)
    (fun () ->
      (* Quiesce readers as well as writers: a reader mid-chain-walk
         must not hold a pointer into a record this pass is about to
         unlink and free (the line could be reallocated under it). *)
      while t.in_flight > 0 || t.readers > 0 || Arena.in_group t.arena do
        Arena.cpu_work t.arena 30
      done;
      site_enter t `Gc;
      Fun.protect ~finally:(fun () -> site_exit t) @@ fun () ->
      let freed = ref 0 in
      if e > t.floor then begin
        Arena.write t.arena (t.base + 1) e;
        Arena.flush t.arena (t.base + 1);
        Arena.fence t.arena;
        t.floor <- e;
        for b = 0 to t.buckets - 1 do
          let head = t.base + line + b in
          (* Prune each entry's chain, then unlink entries that no
             longer distinguish any pinnable epoch from the live tree.
             [prev] is the word holding the link under inspection, so
             unlinking is one store + flush + fence in either list. *)
          let prev = ref head in
          while Arena.read t.arena !prev <> 0 do
            let entry = Arena.read t.arena !prev in
            let vprev = ref (entry + 2) in
            while Arena.read t.arena !vprev <> 0 do
              let r = Arena.read t.arena !vprev in
              if Arena.read t.arena (r + 2) <= e then begin
                Arena.write t.arena !vprev (Arena.read t.arena (r + 3));
                Arena.flush t.arena !vprev;
                Arena.fence t.arena;
                Arena.free t.arena r line;
                incr freed
              end
              else vprev := r + 3
            done;
            if
              Arena.read t.arena (entry + 2) = 0
              && Arena.read t.arena (entry + 1) <= e
            then begin
              let k = Arena.read t.arena entry in
              Arena.write t.arena !prev (Arena.read t.arena (entry + 3));
              Arena.flush t.arena !prev;
              Arena.fence t.arena;
              Arena.free t.arena entry line;
              Hashtbl.remove t.cache k;
              incr freed
            end
            else prev := entry + 3
          done
        done
      end;
      !freed)

(* ------------------------------------------------------------------ *)
(* Pinned snapshot handles                                             *)
(* ------------------------------------------------------------------ *)

type snap = { st : t; epoch : int; mutable live : bool }

let pin t e =
  Hashtbl.replace t.pins e (1 + Option.value ~default:0 (Hashtbl.find_opt t.pins e))

let take t =
  let e = snapshot_begin t 0 in
  pin t e;
  { st = t; epoch = e; live = true }

let at t ~epoch =
  if epoch < 1 || epoch > Epoch.current t.arena then
    invalid_arg
      (Printf.sprintf "Snapshot.at: epoch %d was never published (current %d)"
         epoch (Epoch.current t.arena));
  if epoch < t.floor then
    invalid_arg
      (Printf.sprintf "Snapshot.at: epoch %d already collected (GC floor %d)"
         epoch t.floor);
  pin t epoch;
  { st = t; epoch; live = true }

let epoch s = s.epoch

let check_live s =
  if not s.live then invalid_arg "Snapshot: handle already released"

let get s k =
  check_live s;
  read_at s.st s.epoch k

let range s ~lo ~hi f =
  check_live s;
  range_at s.st s.epoch lo hi f

let release s =
  if s.live then begin
    s.live <- false;
    match Hashtbl.find_opt s.st.pins s.epoch with
    | Some 1 -> Hashtbl.remove s.st.pins s.epoch
    | Some n -> Hashtbl.replace s.st.pins s.epoch (n - 1)
    | None -> ()
  end

let min_pinned t = Hashtbl.fold (fun e _ acc -> min e acc) t.pins max_int

let gc t =
  let upto =
    match min_pinned t with
    | m when m = max_int -> Epoch.current t.arena + 1
    | m -> m
  in
  gc_before t upto

(* ------------------------------------------------------------------ *)
(* Online backup                                                       *)
(* ------------------------------------------------------------------ *)

(* Stream a pinned epoch into a destination index in chunks; [between]
   runs after every chunk lands, which is where a live source keeps
   serving traffic (writers race the stream — the pinned epoch is what
   makes the copy consistent anyway). *)
let backup t ~epoch ~dest ?(chunk = 512) ?(between = fun () -> ()) () =
  site_enter t `Backup;
  Fun.protect ~finally:(fun () -> site_exit t) @@ fun () ->
  let buf = ref [] and n = ref 0 and total = ref 0 in
  let flush_buf () =
    if !buf <> [] then begin
      dest.Intf.bulk_insert (Array.of_list (List.rev !buf));
      buf := [];
      n := 0;
      between ()
    end
  in
  (* [mutate] rejects non-positive keys (the Intf contract), so the
     scan over [1, max_int] provably covers every key the wrapped
     index can hold — the copy cannot silently omit records. *)
  range_at t epoch 1 max_int (fun k v ->
      buf := (k, v) :: !buf;
      incr n;
      incr total;
      if !n >= chunk then flush_buf ());
  flush_buf ();
  !total

(* ------------------------------------------------------------------ *)
(* Registry surface: wrapped ops and the snap-fastfair descriptor      *)
(* ------------------------------------------------------------------ *)

let ops_of t name =
  Intf.make ~name
    ~insert:(fun k v -> mutate t k (fun () -> t.inner.Intf.insert k v))
    ~search:t.inner.Intf.search
    ~delete:(fun k -> mutate t k (fun () -> t.inner.Intf.delete k))
    ~range:t.inner.Intf.range
    ~recover:(fun () -> recover t)
    ~update:(fun k v -> mutate t k (fun () -> t.inner.Intf.update k v))
    ~bulk_insert:(fun pairs ->
      Array.iter (fun (k, v) -> mutate t k (fun () -> t.inner.Intf.insert k v)) pairs)
    ~close:t.inner.Intf.close
    ~set_tracer:(fun tr -> set_tracer t tr)
    ~read_for_update:t.inner.Intf.read_for_update
    ~install:(fun k post -> mutate t k (fun () -> t.inner.Intf.install k post))
    ~snapshot_begin:(fun at -> snapshot_begin t at)
    ~read_at:(fun e k -> read_at t e k)
    ~range_at:(fun e lo hi f -> range_at t e lo hi f)
    ~gc_before:(fun e -> gc_before t e)
    ()

(* Scrub integration: the version store's blocks join the reachability
   set (so the leak oracle covers GC'd lines), poisoned version lines
   are quarantined with counted loss, and validation checks the chain
   invariants.  Inner-structure lines go through the inner provider. *)
let scrub_hooks inner_name cfg arena =
  let ip =
    match Registry.scrub_provider inner_name with
    | Some p -> p cfg arena
    | None ->
        invalid_arg
          (Printf.sprintf "Snapshot: inner '%s' registered no scrub provider"
             inner_name)
  in
  let base = Arena.root_get arena slot_anchor in
  let in_arena a = a >= Arena.reserved_words && a < Arena.capacity arena in
  let header_ok () = base <> 0 && Arena.peek arena base = magic in
  let buckets () = Arena.peek arena (base + 2) in
  let vstore_blocks () =
    if not (header_ok ()) then []
    else begin
      let acc = ref [ (base, header_words (buckets ())) ] in
      for b = 0 to buckets () - 1 do
        let e = ref (Arena.peek arena (base + line + b)) in
        while in_arena !e do
          acc := (!e, line) :: !acc;
          let r = ref (Arena.peek arena (!e + 2)) in
          while in_arena !r do
            acc := (!r, line) :: !acc;
            r := Arena.peek arena (!r + 3)
          done;
          e := Arena.peek arena (!e + 3)
        done
      done;
      !acc
    end
  in
  let owns lines addr = List.mem (addr / line) lines in
  let repair lines =
    let ir = ip.D.scrub_repair lines in
    if not (header_ok ()) then ir
    else begin
      (* Quarantine damaged version history: unlink any entry or record
         whose line is poisoned (links out of a scrambled line cannot be
         trusted), then zero the line so the poison clears.  The live
         tree is untouched; lost spans are counted. *)
      let quarantined = ref [] and lost = ref 0 in
      let zero addr =
        for i = addr to addr + line - 1 do
          Arena.write arena i 0
        done;
        Arena.flush_range arena addr line;
        Arena.fence arena;
        quarantined := (addr / line) :: !quarantined;
        incr lost
      in
      for b = 0 to buckets () - 1 do
        let prev = ref (base + line + b) in
        while
          let e = Arena.peek arena !prev in
          in_arena e
        do
          let e = Arena.peek arena !prev in
          if owns lines e then begin
            Arena.write arena !prev (Arena.peek arena (e + 3));
            Arena.flush arena !prev;
            Arena.fence arena;
            zero e
          end
          else begin
            let vprev = ref (e + 2) in
            while
              let r = Arena.peek arena !vprev in
              in_arena r
            do
              let r = Arena.peek arena !vprev in
              if owns lines r then begin
                Arena.write arena !vprev (Arena.peek arena (r + 3));
                Arena.flush arena !vprev;
                Arena.fence arena;
                zero r
              end
              else vprev := r + 3
            done;
            prev := e + 3
          end
        done
      done;
      {
        D.repaired_lines = ir.D.repaired_lines;
        quarantined_lines = ir.D.quarantined_lines @ List.rev !quarantined;
        lost_records = ir.D.lost_records + !lost;
      }
    end
  in
  let validate () =
    let iv = ip.D.scrub_validate () in
    if not (header_ok ()) then iv @ [ "snapshot: version store header damaged" ]
    else begin
      let errs = ref [] in
      let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
      for b = 0 to buckets () - 1 do
        let e = ref (Arena.peek arena (base + line + b)) in
        while !e <> 0 do
          if not (in_arena !e) then begin
            err "snapshot: bucket %d entry link %d out of bounds" b !e;
            e := 0
          end
          else begin
            let r = ref (Arena.peek arena (!e + 2)) in
            while !r <> 0 do
              if not (in_arena !r) then begin
                err "snapshot: key %d version link %d out of bounds"
                  (Arena.peek arena !e) !r;
                r := 0
              end
              else begin
                if Arena.peek arena (!r + 1) >= Arena.peek arena (!r + 2) then
                  err "snapshot: key %d record [%d,%d) is an empty span"
                    (Arena.peek arena !e)
                    (Arena.peek arena (!r + 1))
                    (Arena.peek arena (!r + 2));
                r := Arena.peek arena (!r + 3)
              end
            done;
            e := Arena.peek arena (!e + 3)
          end
        done
      done;
      iv @ List.rev !errs
    end
  in
  {
    D.scrub_grain = ip.D.scrub_grain;
    scrub_reachable = (fun () -> vstore_blocks () @ ip.D.scrub_reachable ());
    scrub_repair = repair;
    scrub_validate = validate;
  }

let descriptor_over inner_name =
  let d = Registry.find_exn inner_name in
  let name = "snap-" ^ inner_name in
  {
    D.name;
    summary =
      Printf.sprintf
        "MVCC epoch snapshots over %s: pinned time-travel reads, \
         version-chain GC, online backup" d.D.name;
    caps =
      {
        d.D.caps with
        D.snapshottable = true;
        (* The version store anchors at fixed root slots (64/66). *)
        relocatable_root = false;
        scrubbable = d.D.caps.D.scrubbable;
      };
    composite = None;
    build =
      (fun cfg arena -> ops_of (create arena (d.D.build cfg arena)) name);
    open_existing =
      (fun cfg arena ->
        ops_of (attach arena (d.D.open_existing cfg arena)) name);
  }

let () =
  Registry.register (descriptor_over "fastfair");
  Registry.register_scrub "snap-fastfair" (scrub_hooks "fastfair")
