(** Generic crash-point enumeration over any index.

    Encapsulates the pattern the paper's recoverability argument
    requires (and that the test suite applies to FAST+FAIR at every
    granularity): build a base image, probe how many 8-byte stores an
    operation batch performs, then for (sampled or exhaustive) crash
    points k = 0..N, clone the device, crash before store k+1, apply a
    crash semantics, and validate the reopened index — both {e before}
    recovery (reader tolerance) and after. *)

type outcome = {
  points : int;      (** crash points exercised *)
  tolerated : int;   (** validation passed before recovery ran *)
  recovered : int;   (** validation passed after recovery *)
  store_span : int;  (** total stores of the operation batch *)
  failed_tolerance : int list;
      (** crash-point indices (store counts) whose pre-recovery
          validation failed, ascending — which store broke the readers *)
  failed_recovery : int list;
      (** crash-point indices whose post-recovery validation failed —
          any entry here is a durability bug *)
}

val default_mode : int -> Ff_pmem.Storelog.crash_mode
(** The default crash semantics for point [k]:
    [Random_eviction (Prng.create k)].  The PRNG is seeded from the
    point index alone via {!Ff_util.Prng.create} (SplitMix64) — never
    [Hashtbl.hash] or anything else version-dependent — and
    {!Ff_pmem.Storelog.apply_crash} draws in sorted line order, so a
    recorded (point, seed) pair replays to the identical crash image
    on every OCaml version. *)

val enumerate :
  ?max_points:int ->
  ?exhaustive:bool ->
  ?mode:(int -> Ff_pmem.Storelog.crash_mode) ->
  base:Ff_pmem.Arena.t ->
  reopen:(Ff_pmem.Arena.t -> Ff_index.Intf.ops) ->
  batch:(Ff_index.Intf.ops -> unit) ->
  validate:(Ff_index.Intf.ops -> bool) ->
  unit ->
  outcome
(** [enumerate ~base ~reopen ~batch ~validate ()] — [base] must be
    quiesced (it is drained and cloned, never mutated).  [reopen]
    reattaches an index to a cloned arena; [batch] runs the operations
    to crash; [validate] checks the committed data (it runs once
    pre-recovery and once after calling the ops' [recover]).
    [max_points] (default 256) samples evenly across the store span;
    [exhaustive] (default false) ignores [max_points] and tests every
    store as a crash point — the model checker's non-sampled mode;
    [mode] picks the crash semantics per point (default
    {!default_mode}).  A [validate] call that raises counts as failed
    validation (a reader may crash, not just miss, on an intolerable
    transient state). *)

val enumerate_descriptor :
  ?max_points:int ->
  ?exhaustive:bool ->
  ?mode:(int -> Ff_pmem.Storelog.crash_mode) ->
  ?config:Ff_index.Descriptor.config ->
  base:Ff_pmem.Arena.t ->
  descriptor:Ff_index.Descriptor.t ->
  batch:(Ff_index.Intf.ops -> unit) ->
  validate:(Ff_index.Intf.ops -> bool) ->
  unit ->
  outcome option
(** {!enumerate} with [reopen] supplied by a registry descriptor.
    Returns [None] when the descriptor's capabilities exclude recovery
    (e.g. a volatile structure), so generic sweeps can skip instead of
    fail. *)
