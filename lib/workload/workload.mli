(** Workload generation and drivers for the experiments.

    Keys follow the paper's setups: uniform random 8-byte integers
    (Figures 3-5, 7), with optional Zipfian skew for the ablation
    benches.  Values are derived from keys ([value_of]) so they meet
    the uniqueness contract of {!Ff_index.Intf}. *)

val value_of : int -> int
(** Unique nonzero odd value for a key (never collides with the
    line-aligned node addresses a tree stores internally). *)

val distinct_uniform : Ff_util.Prng.t -> n:int -> space:int -> int array
(** [n] distinct keys uniform in [\[1, space\]].  [space >= 2 * n]. *)

val sequential : n:int -> int array
(** Keys 1..n. *)

val shuffled_sequential : Ff_util.Prng.t -> n:int -> int array

val zipfian : Ff_util.Prng.t -> n:int -> space:int -> theta:float -> int array
(** [n] draws (with repetition) from a Zipfian over [space] ranks,
    rank-scrambled so hot keys are spread across the key space. *)

(** {1 Operation traces} *)

type op =
  | Insert of int
  | Search of int
  | Delete of int
  | Range of int * int  (** lo, length target in keys *)

type mix = {
  insert_pct : int;
  search_pct : int;
  delete_pct : int;
  range_pct : int;
  range_len : int;  (** fixed scan length target when [scan_len_max = 0] *)
  read_latest : bool;
      (** reads draw from the last {!recency_window} inserted keys
          (YCSB-D's "latest" distribution, windowed) *)
  scan_len_max : int;
      (** when positive, each [Range] draws its length uniformly from
          [\[1, scan_len_max\]] (YCSB-E) *)
}

val ycsb_a : mix
(** YCSB-A: 50% read / 50% update (update = insert on a loaded key). *)

val ycsb_b : mix
(** YCSB-B: 95% read / 5% update. *)

val ycsb_c : mix
(** YCSB-C: read-only. *)

val ycsb_d : mix
(** YCSB-D: 95% read / 5% insert, reads biased to the latest inserts
    ([read_latest]). *)

val ycsb_e : mix
(** YCSB-E: 95% scan / 5% insert, scan length uniform in
    [\[1, 100\]]. *)

val mix_names : string list
(** Canonical accepted preset names (["ycsb-a"] .. ["ycsb-e"]) — the
    single source for CLI validation and error messages. *)

val ycsb_mix : string -> mix option
(** Preset lookup by name: ["a"|"b"|"c"|"d"|"e"], with or without a
    ["ycsb-"] prefix, case-insensitive. *)

val recency_window : int
(** Size of the sliding window of recent inserts that [read_latest]
    reads draw from (16). *)

val mixed_trace :
  Ff_util.Prng.t -> n:int -> space:int -> mix -> op array
(** Random trace over the key space with the given percentages
    (must sum to 100).  Presets A/B/C consume the PRNG identically to
    earlier releases; only the [read_latest] / [scan_len_max] paths add
    draws, so existing soak checksums are stable. *)

val run_op : Ff_index.Intf.ops -> op -> int
(** Execute one op; returns a small checksum (found values / counts)
    so the work cannot be optimized away. *)

val run_trace : Ff_index.Intf.ops -> op array -> int

val shard_seed : base:int -> shard:int -> int
(** Deterministic per-shard PRNG seed derived from a base seed and a
    shard id, scrambled so neighbouring shards get uncorrelated
    streams.  Benches use this so a sharded run is reproducible from
    one [--seed]. *)

val load_keys : Ff_index.Intf.ops -> int array -> unit
(** Bulk-insert keys with their standard values. *)
