module Arena = Ff_pmem.Arena
module Storelog = Ff_pmem.Storelog
module Prng = Ff_util.Prng
module Intf = Ff_index.Intf
module Descriptor = Ff_index.Descriptor

type outcome = { points : int; tolerated : int; recovered : int; store_span : int }

let enumerate ?(max_points = 256) ?mode ~base ~reopen ~batch ~validate () =
  let mode =
    match mode with
    | Some m -> m
    | None -> fun k -> Storelog.Random_eviction (Prng.create k)
  in
  (* A reader that cannot tolerate the crash state may raise rather
     than miss; count that as failed validation, not a harness error. *)
  let validate t = try validate t with _ -> false in
  Arena.drain base;
  let store_span =
    let c = Arena.clone base in
    let t = reopen c in
    let before = Arena.store_count c in
    batch t;
    Arena.store_count c - before
  in
  let step = max 1 (store_span / max_points) in
  let points = ref 0 and tolerated = ref 0 and recovered = ref 0 in
  let k = ref 0 in
  while !k <= store_span do
    incr points;
    let c = Arena.clone base in
    let t = reopen c in
    Arena.set_crash_plan c (Arena.After_stores (Arena.store_count c + !k));
    (try batch t with Arena.Crashed -> ());
    Arena.power_fail c (mode !k);
    let t = reopen c in
    if validate t then incr tolerated;
    t.Intf.recover ();
    if validate t then incr recovered;
    k := !k + step
  done;
  { points = !points; tolerated = !tolerated; recovered = !recovered; store_span }

let enumerate_descriptor ?max_points ?mode ?(config = Descriptor.default_config)
    ~base ~descriptor ~batch ~validate () =
  if not descriptor.Descriptor.caps.Descriptor.has_recovery then None
  else
    Some
      (enumerate ?max_points ?mode ~base
         ~reopen:(descriptor.Descriptor.open_existing config)
         ~batch ~validate ())
