module Arena = Ff_pmem.Arena
module Storelog = Ff_pmem.Storelog
module Prng = Ff_util.Prng
module Intf = Ff_index.Intf
module Descriptor = Ff_index.Descriptor

type outcome = {
  points : int;
  tolerated : int;
  recovered : int;
  store_span : int;
  failed_tolerance : int list;
  failed_recovery : int list;
}

(* The default per-point crash mode derives its PRNG directly from the
   crash-point index with Prng.create (SplitMix64), never from
   Hashtbl.hash or any other value that may differ between OCaml
   versions: the (point index, mode) pair is everything a recorded
   counterexample stores, so the same pair must rebuild the identical
   crash state anywhere. *)
let default_mode k = Storelog.Random_eviction (Prng.create k)

let enumerate ?(max_points = 256) ?(exhaustive = false) ?mode ~base ~reopen
    ~batch ~validate () =
  let mode = match mode with Some m -> m | None -> default_mode in
  (* A reader that cannot tolerate the crash state may raise rather
     than miss; count that as failed validation, not a harness error. *)
  let validate t = try validate t with _ -> false in
  Arena.drain base;
  let store_span =
    let c = Arena.clone base in
    let t = reopen c in
    let before = Arena.store_count c in
    batch t;
    Arena.store_count c - before
  in
  let step = if exhaustive then 1 else max 1 (store_span / max_points) in
  let points = ref 0 and tolerated = ref 0 and recovered = ref 0 in
  let failed_tolerance = ref [] and failed_recovery = ref [] in
  let k = ref 0 in
  while !k <= store_span do
    incr points;
    let c = Arena.clone base in
    let t = reopen c in
    Arena.set_crash_plan c (Arena.After_stores (Arena.store_count c + !k));
    (try batch t with Arena.Crashed -> ());
    Arena.power_fail c (mode !k);
    let t = reopen c in
    if validate t then incr tolerated else failed_tolerance := !k :: !failed_tolerance;
    t.Intf.recover ();
    if validate t then incr recovered else failed_recovery := !k :: !failed_recovery;
    k := !k + step
  done;
  {
    points = !points;
    tolerated = !tolerated;
    recovered = !recovered;
    store_span;
    failed_tolerance = List.rev !failed_tolerance;
    failed_recovery = List.rev !failed_recovery;
  }

let enumerate_descriptor ?max_points ?exhaustive ?mode
    ?(config = Descriptor.default_config) ~base ~descriptor ~batch ~validate () =
  if not descriptor.Descriptor.caps.Descriptor.has_recovery then None
  else
    Some
      (enumerate ?max_points ?exhaustive ?mode ~base
         ~reopen:(descriptor.Descriptor.open_existing config)
         ~batch ~validate ())
