module Prng = Ff_util.Prng
module Zipf = Ff_util.Zipf
module Intf = Ff_index.Intf

let value_of k = (2 * k) + 1

let distinct_uniform rng ~n ~space =
  assert (space >= 2 * n);
  let seen = Hashtbl.create (2 * n) in
  let out = Array.make n 0 in
  let filled = ref 0 in
  while !filled < n do
    let k = 1 + Prng.int rng space in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.replace seen k ();
      out.(!filled) <- k;
      incr filled
    end
  done;
  out

let sequential ~n = Array.init n (fun i -> i + 1)

let shuffled_sequential rng ~n =
  let a = sequential ~n in
  Prng.shuffle rng a;
  a

let scramble k space =
  (* Cheap bijective-ish spread of ranks over the key space. *)
  1 + ((k * 2654435761) land max_int) mod space

let zipfian rng ~n ~space ~theta =
  let z = Zipf.create ~n:space ~theta in
  Array.init n (fun _ -> scramble (Zipf.sample z rng) space)

type op = Insert of int | Search of int | Delete of int | Range of int * int

type mix = {
  insert_pct : int;
  search_pct : int;
  delete_pct : int;
  range_pct : int;
  range_len : int;
  read_latest : bool;
  scan_len_max : int;
}

(* YCSB core-workload presets (update = insert over an existing key).
   A/B/C are the read/update blends; D biases reads toward the latest
   inserts, E is the scan-heavy blend with a drawn scan length. *)
let ycsb_a =
  { insert_pct = 50; search_pct = 50; delete_pct = 0; range_pct = 0;
    range_len = 0; read_latest = false; scan_len_max = 0 }

let ycsb_b =
  { insert_pct = 5; search_pct = 95; delete_pct = 0; range_pct = 0;
    range_len = 0; read_latest = false; scan_len_max = 0 }

let ycsb_c =
  { insert_pct = 0; search_pct = 100; delete_pct = 0; range_pct = 0;
    range_len = 0; read_latest = false; scan_len_max = 0 }

let ycsb_d =
  { insert_pct = 5; search_pct = 95; delete_pct = 0; range_pct = 0;
    range_len = 0; read_latest = true; scan_len_max = 0 }

let ycsb_e =
  { insert_pct = 5; search_pct = 0; delete_pct = 0; range_pct = 95;
    range_len = 0; read_latest = false; scan_len_max = 100 }

let mix_names = [ "ycsb-a"; "ycsb-b"; "ycsb-c"; "ycsb-d"; "ycsb-e" ]

let ycsb_mix name =
  match String.lowercase_ascii name with
  | "a" | "ycsb-a" | "ycsb_a" -> Some ycsb_a
  | "b" | "ycsb-b" | "ycsb_b" -> Some ycsb_b
  | "c" | "ycsb-c" | "ycsb_c" -> Some ycsb_c
  | "d" | "ycsb-d" | "ycsb_d" -> Some ycsb_d
  | "e" | "ycsb-e" | "ycsb_e" -> Some ycsb_e
  | _ -> None

(* The recency window for read-latest mixes: reads draw from the last
   [recency_window] inserted keys, like YCSB-D's "latest" request
   distribution collapsed to a uniform window. *)
let recency_window = 16

let mixed_trace rng ~n ~space mix =
  assert (mix.insert_pct + mix.search_pct + mix.delete_pct + mix.range_pct = 100);
  let recent = Array.make recency_window 0 in
  let inserted = ref 0 in
  (* Extra PRNG draws happen only on the D/E-specific paths, so the
     A/B/C draw sequences — and their soak checksums — are unchanged. *)
  Array.init n (fun _ ->
      let k = 1 + Prng.int rng space in
      let d = Prng.int rng 100 in
      if d < mix.insert_pct then begin
        if mix.read_latest then begin
          recent.(!inserted mod recency_window) <- k;
          incr inserted
        end;
        Insert k
      end
      else if d < mix.insert_pct + mix.search_pct then
        if mix.read_latest && !inserted > 0 then
          let w = min !inserted recency_window in
          Search recent.(Prng.int rng w)
        else Search k
      else if d < mix.insert_pct + mix.search_pct + mix.delete_pct then Delete k
      else
        let len =
          if mix.scan_len_max > 0 then 1 + Prng.int rng mix.scan_len_max
          else mix.range_len
        in
        Range (k, len))

let run_op (t : Intf.ops) op =
  match op with
  | Insert k ->
      t.Intf.insert k (value_of k);
      1
  | Search k -> ( match t.Intf.search k with Some v -> v land 0xff | None -> 0)
  | Delete k -> if t.Intf.delete k then 1 else 0
  | Range (lo, len) ->
      let n = ref 0 in
      (* length-targeted scan: approximate by a bounded key window *)
      t.Intf.range lo (lo + (len * 4)) (fun _ _ -> incr n);
      !n

let run_trace t ops = Array.fold_left (fun acc op -> acc + run_op t op) 0 ops

let shard_seed ~base ~shard =
  (* Splitmix-style scramble so adjacent shard ids do not yield
     correlated PRNG streams, yet the mapping stays deterministic. *)
  let z = base + ((shard + 1) * 0x9E3779B9) in
  let z = (z lxor (z lsr 16)) * 0x45D9F3B in
  let z = (z lxor (z lsr 16)) * 0x45D9F3B in
  (z lxor (z lsr 16)) land max_int

let load_keys t keys =
  t.Intf.bulk_insert (Array.map (fun k -> (k, value_of k)) keys)
