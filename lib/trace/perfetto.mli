(** Chrome trace-event (Perfetto / [chrome://tracing]) JSON export.

    Timestamps are the tracer's simulated nanoseconds converted to the
    format's microsecond unit, so a multicore {!Ff_mcsim.Mcsim.run}
    renders as a real timeline: one track per simulated thread, tree
    operations as nested B/E spans, PM flushes/fences/allocs and
    duplicate-pointer detections as instant markers.  Load the file in
    {{:https://ui.perfetto.dev}ui.perfetto.dev} or [chrome://tracing]. *)

val to_json : Trace.t -> Json.t
(** [{"traceEvents":[...],"displayTimeUnit":"ns","otherData":{...}}];
    [otherData] records retained/dropped event counts.  Deterministic
    for deterministic traces. *)

val to_string : Trace.t -> string

val write_file : Trace.t -> string -> unit
