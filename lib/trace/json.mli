(** Minimal JSON tree: enough to emit metrics/bench/Perfetto files and
    to re-parse them in tests, without pulling an external dependency
    into the image.  Not a general-purpose parser — no unicode escapes
    beyond [\uXXXX] pass-through, no streaming. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (no whitespace) rendering; object key order is preserved,
    so deterministic inputs give byte-identical output. *)

val to_buffer : Buffer.t -> t -> unit

exception Parse_error of string

val of_string : string -> t
(** @raise Parse_error on malformed input.  Numbers with a fraction or
    exponent parse as [Float], others as [Int]. *)

(** {1 Accessors} (shallow; [None] on wrong constructor) *)

val member : string -> t -> t option
val to_list : t -> t list option
val to_int : t -> int option
val to_float : t -> float option
(** [Int] values coerce to float too. *)

val to_str : t -> string option
