(** Metrics registry: named counters, gauges and log-bucketed
    histograms with JSON and text exposition.

    Names are flat dotted strings; dimension values are folded into the
    name by the caller (e.g. ["fastfair.splits.level1"],
    ["fastfair.latency_ns.insert"]).  Getters create on first use, so
    emitting code never registers anything up front.  Exposition sorts
    names, making output deterministic regardless of update order. *)

type t

val create : unit -> t
val reset : t -> unit

(** {1 Counters} *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit

val counter_value : t -> string -> int
(** 0 when the counter was never touched. *)

val counter_prefix_sum : t -> string -> int
(** Sum of every counter whose name starts with the prefix — recovers
    an ensemble-wide total from per-shard labels
    (["shard.degraded"] matches ["shard.degraded.shard0"], ...). *)

(** {1 Gauges} *)

val set_gauge : t -> string -> float -> unit
val gauge_value : t -> string -> float option

(** {1 Histograms} *)

val observe : t -> string -> int -> unit
(** Record one sample into the named {!Ff_util.Histogram}. *)

val histogram : t -> string -> Ff_util.Histogram.t option

val shard_label : string -> int -> string
(** [shard_label base i] is ["<base>.shard<i>"], memoized so hot-path
    emitters don't allocate a fresh name per op. *)

(** {1 Exposition} *)

val to_json : t -> Json.t
(** [{"counters":{..},"gauges":{..},"histograms":{name:{count,mean,
    p50,p90,p99,max}}}], keys sorted. *)

val to_json_string : t -> string

val pp_text : Format.formatter -> t -> unit
(** Prometheus-flavoured plain text: one [name value] line per counter
    and gauge, one [name{quantile}] block per histogram. *)
