module Arena = Ff_pmem.Arena
module Stats = Ff_pmem.Stats
module Mcsim = Ff_mcsim.Mcsim

(* Events are 4 ints in a flat ring: ts, kind, arg1, arg2.  Kinds 0-4
   are PM events (arg1 = addr, arg2 = words for alloc/free); 5/6/7 are
   span begin/end and instants (arg1 = interned name id, arg2 =
   caller-defined detail). *)

let k_store = 0
let k_flush = 1
let k_fence = 2
let k_alloc = 3
let k_free = 4
let k_begin = 5
let k_end = 6
let k_instant = 7

let slot_words = 4

(* Code-site stacks are bounded: deeper nesting keeps attributing to
   the 64th frame rather than growing. *)
let max_site_depth = 64

type ring = { buf : int array; cap : int; mutable written : int }

type t = {
  enabled : bool;
  rings : ring array;
  mutable names : string array;
  mutable nnames : int;
  ids : (string, int) Hashtbl.t;
  metrics : Metrics.t;
  clock : unit -> int;
  tid : unit -> int;
  (* Per-thread code-site stack (indexed like [rings]); the top frame
     is the site every ordered store / flush / fence is attributed
     to.  Spans push their name automatically. *)
  site_stack : int array array;
  site_depth : int array;
  (* Per-site counters, indexed by interned name id (grown alongside
     [names]). *)
  mutable site_spans : int array;
  mutable site_stores : int array;
  mutable site_flushes : int array;
  mutable site_fences : int array;
}

(* Fixed ids: keep in sync with [predefined]. *)
let id_insert = 0
let id_delete = 1
let id_search = 2
let id_range = 3
let id_split = 4
let id_fast_shift = 5
let id_sibling_chase = 6
let id_dup_skip = 7
let id_recovery = 8
let id_crash = 9
let id_batch = 10
let id_merge = 11
let id_scrub = 12
let id_op = 13
let id_degraded = 14
let id_readmit = 15
let id_slo_violation = 16
let id_tx_begin = 17
let id_tx_log = 18
let id_tx_commit = 19
let id_tx_abort = 20
let id_tx_replay = 21
let id_untagged = 22
let id_rebal_copy = 23
let id_rebal_cutover = 24
let id_rebal_replay = 25
let id_rpc = 26
let id_repl = 27
let id_failover = 28
let id_catchup = 29

let predefined =
  [|
    "insert"; "delete"; "search"; "range"; "split"; "fast_shift";
    "sibling_chase"; "dup_skip"; "recovery"; "crash"; "batch"; "merge";
    "scrub"; "op"; "degraded"; "readmit"; "slo_violation"; "tx_begin";
    "tx_log"; "tx_commit"; "tx_abort"; "tx_replay"; "untagged";
    "rebal_copy"; "rebal_cutover"; "rebal_replay"; "rpc"; "repl";
    "failover"; "catchup";
  |]

let make ~enabled ~capacity ~threads ~clock ~tid =
  let capacity = max 16 capacity in
  let ids = Hashtbl.create 32 in
  Array.iteri (fun i n -> Hashtbl.add ids n i) predefined;
  let npre = Array.length predefined in
  {
    enabled;
    rings =
      Array.init threads (fun _ ->
          { buf = (if enabled then Array.make (capacity * slot_words) 0 else [||]);
            cap = capacity;
            written = 0 });
    names = Array.copy predefined;
    nnames = npre;
    ids;
    metrics = Metrics.create ();
    clock;
    tid;
    site_stack =
      Array.init threads (fun _ ->
          if enabled then Array.make max_site_depth 0 else [||]);
    site_depth = Array.make threads 0;
    site_spans = Array.make npre 0;
    site_stores = Array.make npre 0;
    site_flushes = Array.make npre 0;
    site_fences = Array.make npre 0;
  }

let null =
  make ~enabled:false ~capacity:16 ~threads:1 ~clock:(fun () -> 0) ~tid:(fun () -> 0)

let create ?(capacity = 65536) ?(threads = 1) ?clock ?tid () =
  let clock =
    match clock with
    | Some f -> f
    | None ->
        let n = ref 0 in
        fun () -> Stdlib.incr n; !n
  in
  let tid = match tid with Some f -> f | None -> fun () -> 0 in
  make ~enabled:true ~capacity ~threads ~clock ~tid

let enabled t = t.enabled
let metrics t = t.metrics
let now t = if t.enabled then t.clock () else 0

let grow_sites t want =
  let len = Array.length t.site_spans in
  if want > len then begin
    let bigger n = max want (2 * n) in
    let grow a =
      let b = Array.make (bigger len) 0 in
      Array.blit a 0 b 0 len;
      b
    in
    t.site_spans <- grow t.site_spans;
    t.site_stores <- grow t.site_stores;
    t.site_flushes <- grow t.site_flushes;
    t.site_fences <- grow t.site_fences
  end

let intern t name =
  match Hashtbl.find_opt t.ids name with
  | Some id -> id
  | None ->
      let id = t.nnames in
      if id >= Array.length t.names then begin
        let bigger = Array.make (2 * Array.length t.names) "" in
        Array.blit t.names 0 bigger 0 t.nnames;
        t.names <- bigger
      end;
      t.names.(id) <- name;
      t.nnames <- id + 1;
      grow_sites t t.nnames;
      Hashtbl.add t.ids name id;
      id

(* ------------------------------------------------------------------ *)
(* Code-site attribution                                               *)
(* ------------------------------------------------------------------ *)

let clamp_tid t tid = if tid >= 0 && tid < Array.length t.rings then tid else 0

let current_site_of t tid =
  let d = t.site_depth.(tid) in
  if d = 0 then id_untagged
  else t.site_stack.(tid).(min (d - 1) (max_site_depth - 1))

let push_site t tid id =
  let d = t.site_depth.(tid) in
  if d < max_site_depth then t.site_stack.(tid).(d) <- id;
  t.site_depth.(tid) <- d + 1

let pop_site t tid =
  if t.site_depth.(tid) > 0 then t.site_depth.(tid) <- t.site_depth.(tid) - 1

let site_enter t id =
  if t.enabled then begin
    let tid = clamp_tid t (t.tid ()) in
    push_site t tid id;
    t.site_spans.(id) <- t.site_spans.(id) + 1
  end

let site_exit t = if t.enabled then pop_site t (clamp_tid t (t.tid ()))

type site_row = {
  site : string;
  spans : int;
  stores : int;
  flushes : int;
  fences : int;
}

let site_table t =
  let rows = ref [] in
  for id = t.nnames - 1 downto 0 do
    let spans = t.site_spans.(id)
    and stores = t.site_stores.(id)
    and flushes = t.site_flushes.(id)
    and fences = t.site_fences.(id) in
    if spans + stores + flushes + fences > 0 then
      rows := { site = t.names.(id); spans; stores; flushes; fences } :: !rows
  done;
  List.sort (fun a b -> compare a.site b.site) !rows

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let emit_tid t tid kind a b =
  let tid = clamp_tid t tid in
  let r = t.rings.(tid) in
  let i = r.written mod r.cap * slot_words in
  r.buf.(i) <- t.clock ();
  r.buf.(i + 1) <- kind;
  r.buf.(i + 2) <- a;
  r.buf.(i + 3) <- b;
  r.written <- r.written + 1;
  (* Attribution: PM ordering events charge the enclosing site; span
     boundaries maintain the per-thread site stack. *)
  if kind = k_store then begin
    let s = current_site_of t tid in
    t.site_stores.(s) <- t.site_stores.(s) + 1
  end
  else if kind = k_flush then begin
    let s = current_site_of t tid in
    t.site_flushes.(s) <- t.site_flushes.(s) + 1
  end
  else if kind = k_fence then begin
    let s = current_site_of t tid in
    t.site_fences.(s) <- t.site_fences.(s) + 1
  end
  else if kind = k_begin then begin
    push_site t tid a;
    t.site_spans.(a) <- t.site_spans.(a) + 1
  end
  else if kind = k_end then pop_site t tid

let emit t kind a b = emit_tid t (t.tid ()) kind a b

let span_begin t name detail = if t.enabled then emit t k_begin name detail
let span_end t name = if t.enabled then emit t k_end name 0
let instant t name detail = if t.enabled then emit t k_instant name detail

let c_dup_leaf = "fastfair.dup_skip.leaf"
let c_dup_internal = "fastfair.dup_skip.internal"

let dup_skip t ~leaf =
  if t.enabled then begin
    Metrics.incr t.metrics (if leaf then c_dup_leaf else c_dup_internal);
    emit t k_instant id_dup_skip (if leaf then 0 else 1)
  end

let dup_skips t =
  Metrics.counter_value t.metrics c_dup_leaf
  + Metrics.counter_value t.metrics c_dup_internal

let incr t name = if t.enabled then Metrics.incr t.metrics name
let observe t name sample = if t.enabled then Metrics.observe t.metrics name sample

(* ------------------------------------------------------------------ *)
(* Arena wiring                                                        *)
(* ------------------------------------------------------------------ *)

(* The sink takes thread ids from the attached arena, so a tracer can
   observe several arenas (the sharded serving layer) on one event
   timeline. *)
let attach_arena t a =
  Arena.set_event_sink a
    (Some
       {
         Arena.ev_store = (fun addr -> emit_tid t (Arena.tid a) k_store addr 0);
         ev_flush = (fun addr -> emit_tid t (Arena.tid a) k_flush addr 0);
         ev_fence = (fun () -> emit_tid t (Arena.tid a) k_fence 0 0);
         ev_alloc = (fun addr words -> emit_tid t (Arena.tid a) k_alloc addr words);
         ev_free = (fun addr words -> emit_tid t (Arena.tid a) k_free addr words);
         ev_crash = (fun () -> emit_tid t (Arena.tid a) k_instant id_crash 0);
       })

let for_arena ?(capacity = 65536) a =
  let clock () =
    match Mcsim.sim_now () with
    | Some ns -> ns
    | None -> Stats.total_ns (Arena.stats a (Arena.tid a))
  in
  let threads = (Arena.config a).Ff_pmem.Config.max_threads in
  let t = make ~enabled:true ~capacity ~threads ~clock ~tid:(fun () -> Arena.tid a) in
  attach_arena t a;
  t

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

type event =
  | Pm_store of { addr : int }
  | Pm_flush of { addr : int }
  | Pm_fence
  | Pm_alloc of { addr : int; words : int }
  | Pm_free of { addr : int; words : int }
  | Span_b of { name : string; detail : int }
  | Span_e of { name : string }
  | Inst of { name : string; detail : int }

let name_of t id = if id >= 0 && id < t.nnames then t.names.(id) else "?"

let iter_events t f =
  Array.iteri
    (fun tid r ->
      let first = max 0 (r.written - r.cap) in
      for n = first to r.written - 1 do
        let i = n mod r.cap * slot_words in
        let ts = r.buf.(i)
        and kind = r.buf.(i + 1)
        and a = r.buf.(i + 2)
        and b = r.buf.(i + 3) in
        let ev =
          if kind = k_store then Pm_store { addr = a }
          else if kind = k_flush then Pm_flush { addr = a }
          else if kind = k_fence then Pm_fence
          else if kind = k_alloc then Pm_alloc { addr = a; words = b }
          else if kind = k_free then Pm_free { addr = a; words = b }
          else if kind = k_begin then Span_b { name = name_of t a; detail = b }
          else if kind = k_end then Span_e { name = name_of t a }
          else Inst { name = name_of t a; detail = b }
        in
        f ~tid ~ts ev
      done)
    t.rings

let threads t = Array.length t.rings

let event_count t =
  Array.fold_left (fun acc r -> acc + min r.written r.cap) 0 t.rings

let dropped_count t =
  Array.fold_left (fun acc r -> acc + max 0 (r.written - r.cap)) 0 t.rings
