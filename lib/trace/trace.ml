module Arena = Ff_pmem.Arena
module Stats = Ff_pmem.Stats
module Mcsim = Ff_mcsim.Mcsim

(* Events are 4 ints in a flat ring: ts, kind, arg1, arg2.  Kinds 0-4
   are PM events (arg1 = addr, arg2 = words for alloc/free); 5/6/7 are
   span begin/end and instants (arg1 = interned name id, arg2 =
   caller-defined detail). *)

let k_store = 0
let k_flush = 1
let k_fence = 2
let k_alloc = 3
let k_free = 4
let k_begin = 5
let k_end = 6
let k_instant = 7

let slot_words = 4

type ring = { buf : int array; cap : int; mutable written : int }

type t = {
  enabled : bool;
  rings : ring array;
  mutable names : string array;
  mutable nnames : int;
  ids : (string, int) Hashtbl.t;
  metrics : Metrics.t;
  clock : unit -> int;
  tid : unit -> int;
}

(* Fixed ids: keep in sync with [predefined]. *)
let id_insert = 0
let id_delete = 1
let id_search = 2
let id_range = 3
let id_split = 4
let id_fast_shift = 5
let id_sibling_chase = 6
let id_dup_skip = 7
let id_recovery = 8
let id_crash = 9
let id_batch = 10
let id_merge = 11
let id_scrub = 12

let predefined =
  [|
    "insert"; "delete"; "search"; "range"; "split"; "fast_shift";
    "sibling_chase"; "dup_skip"; "recovery"; "crash"; "batch"; "merge";
    "scrub";
  |]

let make ~enabled ~capacity ~threads ~clock ~tid =
  let capacity = max 16 capacity in
  let ids = Hashtbl.create 32 in
  Array.iteri (fun i n -> Hashtbl.add ids n i) predefined;
  {
    enabled;
    rings =
      Array.init threads (fun _ ->
          { buf = (if enabled then Array.make (capacity * slot_words) 0 else [||]);
            cap = capacity;
            written = 0 });
    names = Array.copy predefined;
    nnames = Array.length predefined;
    ids;
    metrics = Metrics.create ();
    clock;
    tid;
  }

let null =
  make ~enabled:false ~capacity:16 ~threads:1 ~clock:(fun () -> 0) ~tid:(fun () -> 0)

let create ?(capacity = 65536) ?(threads = 1) ?clock ?tid () =
  let clock =
    match clock with
    | Some f -> f
    | None ->
        let n = ref 0 in
        fun () -> Stdlib.incr n; !n
  in
  let tid = match tid with Some f -> f | None -> fun () -> 0 in
  make ~enabled:true ~capacity ~threads ~clock ~tid

let enabled t = t.enabled
let metrics t = t.metrics
let now t = if t.enabled then t.clock () else 0

let intern t name =
  match Hashtbl.find_opt t.ids name with
  | Some id -> id
  | None ->
      let id = t.nnames in
      if id >= Array.length t.names then begin
        let bigger = Array.make (2 * Array.length t.names) "" in
        Array.blit t.names 0 bigger 0 t.nnames;
        t.names <- bigger
      end;
      t.names.(id) <- name;
      t.nnames <- id + 1;
      Hashtbl.add t.ids name id;
      id

let emit t kind a b =
  let tid = t.tid () in
  let tid = if tid >= 0 && tid < Array.length t.rings then tid else 0 in
  let r = t.rings.(tid) in
  let i = r.written mod r.cap * slot_words in
  r.buf.(i) <- t.clock ();
  r.buf.(i + 1) <- kind;
  r.buf.(i + 2) <- a;
  r.buf.(i + 3) <- b;
  r.written <- r.written + 1

let span_begin t name detail = if t.enabled then emit t k_begin name detail
let span_end t name = if t.enabled then emit t k_end name 0
let instant t name detail = if t.enabled then emit t k_instant name detail

let c_dup_leaf = "fastfair.dup_skip.leaf"
let c_dup_internal = "fastfair.dup_skip.internal"

let dup_skip t ~leaf =
  if t.enabled then begin
    Metrics.incr t.metrics (if leaf then c_dup_leaf else c_dup_internal);
    emit t k_instant id_dup_skip (if leaf then 0 else 1)
  end

let dup_skips t =
  Metrics.counter_value t.metrics c_dup_leaf
  + Metrics.counter_value t.metrics c_dup_internal

let incr t name = if t.enabled then Metrics.incr t.metrics name
let observe t name sample = if t.enabled then Metrics.observe t.metrics name sample

(* ------------------------------------------------------------------ *)
(* Arena wiring                                                        *)
(* ------------------------------------------------------------------ *)

let for_arena ?(capacity = 65536) a =
  let clock () =
    match Mcsim.sim_now () with
    | Some ns -> ns
    | None -> Stats.total_ns (Arena.stats a (Arena.tid a))
  in
  let threads = (Arena.config a).Ff_pmem.Config.max_threads in
  let t = make ~enabled:true ~capacity ~threads ~clock ~tid:(fun () -> Arena.tid a) in
  Arena.set_event_sink a
    (Some
       {
         Arena.ev_store = (fun addr -> emit t k_store addr 0);
         ev_flush = (fun addr -> emit t k_flush addr 0);
         ev_fence = (fun () -> emit t k_fence 0 0);
         ev_alloc = (fun addr words -> emit t k_alloc addr words);
         ev_free = (fun addr words -> emit t k_free addr words);
         ev_crash = (fun () -> emit t k_instant id_crash 0);
       });
  t

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

type event =
  | Pm_store of { addr : int }
  | Pm_flush of { addr : int }
  | Pm_fence
  | Pm_alloc of { addr : int; words : int }
  | Pm_free of { addr : int; words : int }
  | Span_b of { name : string; detail : int }
  | Span_e of { name : string }
  | Inst of { name : string; detail : int }

let name_of t id = if id >= 0 && id < t.nnames then t.names.(id) else "?"

let iter_events t f =
  Array.iteri
    (fun tid r ->
      let first = max 0 (r.written - r.cap) in
      for n = first to r.written - 1 do
        let i = n mod r.cap * slot_words in
        let ts = r.buf.(i)
        and kind = r.buf.(i + 1)
        and a = r.buf.(i + 2)
        and b = r.buf.(i + 3) in
        let ev =
          if kind = k_store then Pm_store { addr = a }
          else if kind = k_flush then Pm_flush { addr = a }
          else if kind = k_fence then Pm_fence
          else if kind = k_alloc then Pm_alloc { addr = a; words = b }
          else if kind = k_free then Pm_free { addr = a; words = b }
          else if kind = k_begin then Span_b { name = name_of t a; detail = b }
          else if kind = k_end then Span_e { name = name_of t a }
          else Inst { name = name_of t a; detail = b }
        in
        f ~tid ~ts ev
      done)
    t.rings

let threads t = Array.length t.rings

let event_count t =
  Array.fold_left (fun acc r -> acc + min r.written r.cap) 0 t.rings

let dropped_count t =
  Array.fold_left (fun acc r -> acc + max 0 (r.written - r.cap)) 0 t.rings
