module Histogram = Ff_util.Histogram

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  hists : (string, Histogram.t) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 32; gauges = Hashtbl.create 8; hists = Hashtbl.create 16 }

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.hists

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let incr t name = Stdlib.incr (counter t name)
let add t name n = counter t name := !(counter t name) + n

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

(* Per-shard counters fold a dimension into the name
   ("shard.degraded.shard3"); summing a prefix recovers the
   ensemble-wide total without the caller enumerating shards. *)
let counter_prefix_sum t prefix =
  let plen = String.length prefix in
  Hashtbl.fold
    (fun k r acc ->
      if String.length k >= plen && String.sub k 0 plen = prefix then acc + !r
      else acc)
    t.counters 0

let set_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.add t.gauges name (ref v)

let gauge_value t name =
  Option.map (fun r -> !r) (Hashtbl.find_opt t.gauges name)

let observe t name sample =
  let h =
    match Hashtbl.find_opt t.hists name with
    | Some h -> h
    | None ->
        let h = Histogram.create () in
        Hashtbl.add t.hists name h;
        h
  in
  Histogram.add h sample

let histogram t name = Hashtbl.find_opt t.hists name

(* Per-shard metric names appear on hot paths; memoize so repeated
   lookups don't allocate a fresh string each op. *)
let shard_label =
  let tbl = Hashtbl.create 64 in
  fun base shard ->
    match Hashtbl.find_opt tbl (base, shard) with
    | Some s -> s
    | None ->
        let s = Printf.sprintf "%s.shard%d" base shard in
        Hashtbl.add tbl (base, shard) s;
        s

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let hist_json h =
  Json.Obj
    [
      ("count", Json.Int (Histogram.count h));
      ("mean", Json.Float (Histogram.mean h));
      ("p50", Json.Int (Histogram.percentile h 50.));
      ("p90", Json.Int (Histogram.percentile h 90.));
      ("p99", Json.Int (Histogram.percentile h 99.));
      ("max", Json.Int (Histogram.max_sample h));
    ]

let to_json t =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (k, r) -> (k, Json.Int !r)) (sorted_bindings t.counters)) );
      ( "gauges",
        Json.Obj (List.map (fun (k, r) -> (k, Json.Float !r)) (sorted_bindings t.gauges)) );
      ( "histograms",
        Json.Obj (List.map (fun (k, h) -> (k, hist_json h)) (sorted_bindings t.hists)) );
    ]

let to_json_string t = Json.to_string (to_json t)

let pp_text ppf t =
  List.iter
    (fun (k, r) -> Format.fprintf ppf "%s %d@." k !r)
    (sorted_bindings t.counters);
  List.iter
    (fun (k, r) -> Format.fprintf ppf "%s %g@." k !r)
    (sorted_bindings t.gauges);
  List.iter
    (fun (k, h) ->
      Format.fprintf ppf "%s count=%d mean=%.1f p50=%d p90=%d p99=%d max=%d@." k
        (Histogram.count h) (Histogram.mean h)
        (Histogram.percentile h 50.) (Histogram.percentile h 90.)
        (Histogram.percentile h 99.) (Histogram.max_sample h))
    (sorted_bindings t.hists)
