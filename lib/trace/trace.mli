(** Event tracing on the simulator's deterministic clock.

    A tracer owns one fixed-capacity ring buffer per simulated thread
    (wraparound overwrites the oldest events) plus a {!Metrics}
    registry.  Every event carries a timestamp from the tracer's clock:
    inside {!Ff_mcsim.Mcsim.run} that is the global simulated time (so
    multicore traces align on one timeline); outside it falls back to
    the current thread's accumulated simulated nanoseconds.

    Tracing must never perturb what it measures: events are recorded
    with plain integer stores into preallocated rings, no simulated
    time is charged, and every emitter is a no-op on a disabled tracer
    ({!null}) after a single field test.  Hot paths may therefore call
    these functions unconditionally. *)

type t

val null : t
(** The shared disabled tracer: {!enabled} is false, every emitter
    returns immediately, and its metrics registry is never written.
    Default value of every instrumented component's tracer slot. *)

val create :
  ?capacity:int ->
  ?threads:int ->
  ?clock:(unit -> int) ->
  ?tid:(unit -> int) ->
  unit ->
  t
(** A standalone enabled tracer.  [capacity] is events per thread ring
    (default 65536), [threads] the ring count (default 1).  The default
    [clock] counts emitted events (deterministic and monotonic); the
    default [tid] is the constant 0. *)

val for_arena : ?capacity:int -> Ff_pmem.Arena.t -> t
(** Tracer wired to an arena: installs the arena's event sink (PM
    stores/flushes/fences/allocs/crashes become events), takes thread
    ids from {!Ff_pmem.Arena.tid}, sizes the ring array from the
    arena's [max_threads], and uses the simulated-time clock described
    above.  Detach with [Arena.set_event_sink a None]. *)

val enabled : t -> bool
val metrics : t -> Metrics.t
val now : t -> int
(** Current clock value (0 on {!null}). *)

(** {1 Span / instant names}

    Interned to small ints so hot-path emitters store an id, not a
    string.  The fixed tree-level names are pre-interned: *)

val id_insert : int
val id_delete : int
val id_search : int
val id_range : int
val id_split : int
val id_fast_shift : int
val id_sibling_chase : int
val id_dup_skip : int
val id_recovery : int
val id_crash : int

val id_batch : int
(** One scheduler batch executed under a group-flush scope
    (detail = number of ops drained). *)

val id_merge : int
val id_scrub : int
(** One cross-shard k-way merge (detail = number of shards touched). *)

val id_op : int
(** One client operation completed end-to-end through the serving
    path (detail = op id assigned at submit time). *)

val id_degraded : int
(** A shard entered degraded mode (detail = shard index). *)

val id_readmit : int
(** A degraded shard was re-admitted after a clean scrub
    (detail = shard index). *)

val id_slo_violation : int
(** An SLO rule fired (detail = rule index in the evaluated set). *)

val id_tx_begin : int
(** A transaction opened (detail = tx id). *)

val id_tx_log : int
(** Log-region traffic for one tx op (detail = records so far). *)

val id_tx_commit : int
(** A commit-record protocol run (detail = ops committed). *)

val id_tx_abort : int
(** A transaction rolled back (detail = ops undone). *)

val id_tx_replay : int
(** Recovery replayed or rolled back a logged tx
    (detail = records resolved). *)

val id_rebal_copy : int
(** Rebalance background copy — one span per copied chunk
    (detail = cumulative keys or words moved). *)

val id_rebal_cutover : int
(** Rebalance cutover — the quiesced commit window
    (detail = delta records replayed). *)

val id_rebal_replay : int
(** Rebalance delta-buffer replay (detail = records applied). *)

val id_rpc : int
(** One fabric RPC call completed (detail = attempts taken). *)

val id_repl : int
(** One replication record durably acked by a backup (detail = seq). *)

val id_failover : int
(** A backup was promoted to primary (detail = shard). *)

val id_catchup : int
(** A rejoining replica finished a segment resync (detail = shard). *)

val intern : t -> string -> int
(** Id for an arbitrary name (stable within this tracer). *)

(** {1 Emitters} (all no-ops when disabled) *)

val span_begin : t -> int -> int -> unit
(** [span_begin t name_id detail] *)

val span_end : t -> int -> unit
val instant : t -> int -> int -> unit

val dup_skip : t -> leaf:bool -> unit
(** A lock-free reader observed duplicate adjacent pointers and
    skipped the entry — the paper's transient-inconsistency tolerance,
    counted under ["fastfair.dup_skip.leaf"/".internal"] and emitted
    as an instant event. *)

val dup_skips : t -> int
(** Total duplicate-pointer detections recorded so far. *)

val incr : t -> string -> unit
(** Metrics counter increment, gated on {!enabled}. *)

val observe : t -> string -> int -> unit
(** Metrics histogram sample, gated on {!enabled}. *)

(** {1 Code-site attribution}

    Every ordered store, flush and fence is attributed to the
    innermost open span (or explicit {!site_enter} frame) on the
    emitting thread — insert, split, merge, scrub, batch, recovery —
    or to the pseudo-site ["untagged"] when nothing is open.  The
    per-site counters feed the fences/op audit table (MOD's cost
    model: fences are the currency of PM structures). *)

val site_enter : t -> int -> unit
(** Open an attribution frame without emitting a ring event (for
    sites that are not spans). *)

val site_exit : t -> unit

type site_row = {
  site : string;
  spans : int;  (** frames opened under this name *)
  stores : int;
  flushes : int;
  fences : int;
}

val site_table : t -> site_row list
(** Nonzero rows, sorted by site name (deterministic). *)

val attach_arena : t -> Ff_pmem.Arena.t -> unit
(** Install this tracer's event sink on an additional arena so one
    tracer observes a whole sharded serving layer; thread ids come
    from that arena's {!Ff_pmem.Arena.tid}. *)

(** {1 Reading the rings} *)

type event =
  | Pm_store of { addr : int }
  | Pm_flush of { addr : int }
  | Pm_fence
  | Pm_alloc of { addr : int; words : int }
  | Pm_free of { addr : int; words : int }
  | Span_b of { name : string; detail : int }
  | Span_e of { name : string }
  | Inst of { name : string; detail : int }

val iter_events : t -> (tid:int -> ts:int -> event -> unit) -> unit
(** Oldest-to-newest per thread ring, thread 0 first. *)

val threads : t -> int
val event_count : t -> int
(** Events currently retained across all rings. *)

val dropped_count : t -> int
(** Events lost to ring wraparound. *)
