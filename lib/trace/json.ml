type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* NaN/inf are not JSON; integral floats print without an exponent so
   re-parsing them as Float round-trips. *)
let float_repr f =
  if Float.is_nan f then "0"
  else if f = Float.infinity then "1e308"
  else if f = Float.neg_infinity then "-1e308"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape buf s
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Recursive-descent parser                                            *)
(* ------------------------------------------------------------------ *)

type state = { s : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    && match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st ("expected " ^ word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then fail st "unterminated string";
    let c = st.s.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' ->
        (if st.pos >= String.length st.s then fail st "unterminated escape";
         let e = st.s.[st.pos] in
         st.pos <- st.pos + 1;
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
             if st.pos + 4 > String.length st.s then fail st "bad \\u escape";
             let hex = String.sub st.s st.pos 4 in
             st.pos <- st.pos + 4;
             let code =
               try int_of_string ("0x" ^ hex) with _ -> fail st "bad \\u escape"
             in
             (* ASCII pass-through is all our own emitter produces. *)
             if code < 0x80 then Buffer.add_char buf (Char.chr code)
             else Buffer.add_string buf (Printf.sprintf "\\u%04x" code)
         | _ -> fail st "bad escape");
        go ()
    | c -> Buffer.add_char buf c; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < String.length st.s && is_num st.s.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let text = String.sub st.s start (st.pos - start) in
  let is_float =
    String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text
  in
  if is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st "bad number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> fail st "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      expect st '{';
      skip_ws st;
      if peek st = Some '}' then (expect st '}'; Obj [])
      else begin
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' -> expect st ','; members ((k, v) :: acc)
          | Some '}' -> expect st '}'; Obj (List.rev ((k, v) :: acc))
          | _ -> fail st "expected ',' or '}'"
        in
        members []
      end
  | Some '[' ->
      expect st '[';
      skip_ws st;
      if peek st = Some ']' then (expect st ']'; Arr [])
      else begin
        let rec elems acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' -> expect st ','; elems (v :: acc)
          | Some ']' -> expect st ']'; Arr (List.rev (v :: acc))
          | _ -> fail st "expected ',' or ']'"
        in
        elems []
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let of_string s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_list = function Arr xs -> Some xs | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
