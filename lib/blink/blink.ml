module Arena = Ff_pmem.Arena
module Locks = Ff_index.Locks
module Intf = Ff_index.Intf

type node = {
  level : int;
  mutable nkeys : int;
  keys : int array;
  values : int array; (* leaves *)
  children : node option array; (* internal *)
  mutable sibling : node option;
  mutable high : int; (* exclusive bound; max_int at the right edge *)
  lock : Locks.mutex;
}

type t = {
  arena : Arena.t; (* cost accounting only *)
  fanout : int;
  lock_mode : Locks.mode;
  mutable root : node;
  root_mutex : Locks.mutex;
}

let node_visit_ns = 60
let probe_ns = 1

let mk_node t ~level =
  {
    level;
    nkeys = 0;
    keys = Array.make t.fanout 0;
    values = Array.make t.fanout 0;
    children = Array.make (t.fanout + 1) None;
    sibling = None;
    high = max_int;
    lock = Locks.make_mutex t.lock_mode;
  }

let create ?(fanout = 32) ?(lock_mode = Locks.Single) arena =
  let fanout = max fanout 4 in
  let root =
    {
      level = 0;
      nkeys = 0;
      keys = Array.make fanout 0;
      values = Array.make fanout 0;
      children = Array.make (fanout + 1) None;
      sibling = None;
      high = max_int;
      lock = Locks.make_mutex lock_mode;
    }
  in
  { arena; fanout; lock_mode; root; root_mutex = Locks.make_mutex lock_mode }

let charge_visit t n =
  Arena.cpu_work t.arena (node_visit_ns + (probe_ns * n.nkeys))

(* First index with key < keys.(i); equals nkeys when none. *)
let upper t n key =
  ignore t;
  let rec go i = if i < n.nkeys && key >= n.keys.(i) then go (i + 1) else i in
  go 0

let leaf_find n key =
  let rec go i =
    if i >= n.nkeys then None
    else if n.keys.(i) = key then Some i
    else if n.keys.(i) > key then None
    else go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Search: every node visit takes the read lock (no lock-free reads)  *)
(* ------------------------------------------------------------------ *)

let search t key =
  let rec descend n =
    Locks.lock n.lock;
    charge_visit t n;
    if key >= n.high then begin
      let s = n.sibling in
      Locks.unlock n.lock;
      match s with Some s -> descend s | None -> None
    end
    else if n.level = 0 then begin
      let r = match leaf_find n key with Some i -> Some n.values.(i) | None -> None in
      Locks.unlock n.lock;
      r
    end
    else begin
      let i = upper t n key in
      let c = n.children.(i) in
      Locks.unlock n.lock;
      match c with Some c -> descend c | None -> None
    end
  in
  descend t.root

(* ------------------------------------------------------------------ *)
(* Insert                                                              *)
(* ------------------------------------------------------------------ *)

(* Insert (key, value-or-child) into a node at a position; the caller
   holds the write lock and guarantees space. *)
let node_put n i key value child =
  Array.blit n.keys i n.keys (i + 1) (n.nkeys - i);
  n.keys.(i) <- key;
  if n.level = 0 then begin
    Array.blit n.values i n.values (i + 1) (n.nkeys - i);
    n.values.(i) <- value
  end
  else begin
    Array.blit n.children (i + 1) n.children (i + 2) (n.nkeys - i);
    n.children.(i + 1) <- child
  end;
  n.nkeys <- n.nkeys + 1

(* Split a full node (write lock held); returns (sep, sibling). *)
let split t n =
  let sib = mk_node t ~level:n.level in
  let total = n.nkeys in
  let mid = total / 2 in
  let sep = n.keys.(mid) in
  if n.level = 0 then begin
    (* Leaf: the separator stays in the right node. *)
    let moved = total - mid in
    Array.blit n.keys mid sib.keys 0 moved;
    Array.blit n.values mid sib.values 0 moved;
    sib.nkeys <- moved
  end
  else begin
    (* Internal: the separator moves up; its right child leads sib. *)
    let moved = total - mid - 1 in
    Array.blit n.keys (mid + 1) sib.keys 0 moved;
    Array.blit n.children (mid + 1) sib.children 0 (moved + 1);
    sib.nkeys <- moved
  end;
  sib.high <- n.high;
  sib.sibling <- n.sibling;
  n.high <- sep;
  n.sibling <- Some sib;
  n.nkeys <- mid;
  (sep, sib)

let rec insert_into t n key value child =
  Locks.lock n.lock;
  charge_visit t n;
  if key >= n.high then begin
    let s = n.sibling in
    Locks.unlock n.lock;
    match s with
    | Some s -> insert_into t s key value child
    | None -> failwith "Blink: broken chain"
  end
  else begin
    match (n.level, leaf_find n key) with
    | 0, Some i ->
        n.values.(i) <- value;
        Locks.unlock n.lock
    | _, _ ->
        if n.nkeys < t.fanout then begin
          node_put n (upper t n key) key value child;
          Locks.unlock n.lock
        end
        else begin
          let sep, sib = split t n in
          let target = if key < sep then n else sib in
          (if target == sib then charge_visit t sib);
          node_put target (upper t target key) key value child;
          let level = n.level + 1 in
          Locks.unlock n.lock;
          promote t ~level ~sep ~left:n ~right:sib
        end
  end

and promote t ~level ~sep ~left ~right =
  if t.root.level < level then begin
    Locks.lock t.root_mutex;
    if t.root.level < level && t.root == left then begin
      let nr = mk_node t ~level in
      nr.children.(0) <- Some left;
      nr.children.(1) <- Some right;
      nr.keys.(0) <- sep;
      nr.nkeys <- 1;
      t.root <- nr;
      Locks.unlock t.root_mutex
    end
    else begin
      Locks.unlock t.root_mutex;
      promote t ~level ~sep ~left ~right
    end
  end
  else begin
    (* Descend from the root to the target level. *)
    let rec descend n =
      if n.level = level then insert_into t n sep 0 (Some right)
      else begin
        Locks.lock n.lock;
        charge_visit t n;
        if sep >= n.high then begin
          let s = n.sibling in
          Locks.unlock n.lock;
          match s with Some s -> descend s | None -> failwith "Blink: broken chain"
        end
        else begin
          let c = n.children.(upper t n sep) in
          Locks.unlock n.lock;
          match c with Some c -> descend c | None -> failwith "Blink: missing child"
        end
      end
    in
    descend t.root
  end

let insert t ~key ~value =
  let rec descend n =
    if n.level = 0 then insert_into t n key value None
    else begin
      Locks.lock n.lock;
      charge_visit t n;
      if key >= n.high then begin
        let s = n.sibling in
        Locks.unlock n.lock;
        match s with Some s -> descend s | None -> failwith "Blink: broken chain"
      end
      else begin
        let c = n.children.(upper t n key) in
        Locks.unlock n.lock;
        match c with Some c -> descend c | None -> failwith "Blink: missing child"
      end
    end
  in
  descend t.root

(* ------------------------------------------------------------------ *)
(* Delete (leaf-local, like the other baselines)                       *)
(* ------------------------------------------------------------------ *)

let delete t key =
  let rec descend n =
    Locks.lock n.lock;
    charge_visit t n;
    if key >= n.high then begin
      let s = n.sibling in
      Locks.unlock n.lock;
      match s with Some s -> descend s | None -> false
    end
    else if n.level = 0 then begin
      Locks.unlock n.lock;
      Locks.lock n.lock;
      (* The leaf may have split while we upgraded the lock. *)
      if key >= n.high then begin
        let s = n.sibling in
        Locks.unlock n.lock;
        match s with Some s -> descend s | None -> false
      end
      else begin
        let r =
          match leaf_find n key with
          | None -> false
          | Some i ->
              Array.blit n.keys (i + 1) n.keys i (n.nkeys - i - 1);
              Array.blit n.values (i + 1) n.values i (n.nkeys - i - 1);
              n.nkeys <- n.nkeys - 1;
              true
        in
        Locks.unlock n.lock;
        r
      end
    end
    else begin
      let c = n.children.(upper t n key) in
      Locks.unlock n.lock;
      match c with Some c -> descend c | None -> false
    end
  in
  descend t.root

(* ------------------------------------------------------------------ *)
(* Range                                                               *)
(* ------------------------------------------------------------------ *)

let range t ~lo ~hi f =
  let rec to_leaf n =
    if n.level = 0 then n
    else begin
      Locks.lock n.lock;
      charge_visit t n;
      let next =
        if lo >= n.high then n.sibling else n.children.(upper t n lo)
      in
      Locks.unlock n.lock;
      match next with Some c -> to_leaf c | None -> n
    end
  in
  let rec scan n =
    Locks.lock n.lock;
    charge_visit t n;
    let stop = ref false in
    for i = 0 to n.nkeys - 1 do
      let k = n.keys.(i) in
      if k > hi then stop := true else if k >= lo && not !stop then f k n.values.(i)
    done;
    let s = n.sibling in
    Locks.unlock n.lock;
    if not !stop then match s with Some s -> scan s | None -> ()
  in
  scan (to_leaf t.root)

let height t =
  let rec go n = match n.children.(0) with Some c when n.level > 0 -> 1 + go c | _ -> 1 in
  go t.root

let ops t =
  Intf.make ~name:"blink"
    ~insert:(fun k v -> insert t ~key:k ~value:v)
    ~search:(fun k -> search t k)
    ~delete:(fun k -> delete t k)
    ~range:(fun lo hi f -> range t ~lo ~hi f)
    ~recover:(fun () -> ())
    ()

let () =
  let module D = Ff_index.Descriptor in
  Ff_index.Registry.register
    {
      D.name = "blink";
      summary = "volatile B-link tree (Lehman & Yao; Figure 7's concurrency reference)";
      caps =
        {
          D.has_range = true;
          has_delete = true;
          has_recovery = false;
          is_persistent = false;
          lock_modes = [ Locks.Single; Locks.Sim ];
          lock_free_reads = false;
          tunable_node_bytes = false;
          relocatable_root = false;
          scrubbable = false;
          txnable = false;
          snapshottable = false;
        };
      composite = None;
      build = (fun cfg a -> ops (create ~lock_mode:cfg.D.lock_mode a));
      open_existing =
        (fun _cfg _a ->
          invalid_arg "blink is volatile: no persisted image to reopen");
    }
