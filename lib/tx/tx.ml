module Arena = Ff_pmem.Arena
module Txlog = Ff_pmem.Txlog
module Intf = Ff_index.Intf
module Trace = Ff_trace.Trace

type path = Logged | Shadow

exception Abort of string

type t = {
  arena : Arena.t;
  log : Txlog.t;
  ops : Intf.ops;
  mutable path : path;
  mutable tracer : Trace.t option;
  mutable commits : int;
  mutable aborts : int;
  mutable replays : int;
}

type tx = {
  mgr : t;
  id : int;
  deferred : bool;
  mutable live : bool;
  mutable nops : int;
  mutable undos : (unit -> unit) list; (* eager path, newest first *)
  mutable staged : Txlog.record list; (* deferred path, newest first *)
  overlay : (int, int option) Hashtbl.t; (* deferred read-your-writes *)
}

let create ?(path = Logged) ?capacity arena ops =
  let log = Txlog.ensure ?capacity arena in
  { arena; log; ops; path; tracer = None; commits = 0; aborts = 0; replays = 0 }

let path t = t.path
let set_path t p = t.path <- p
let set_tracer t tr = t.tracer <- Some tr
let txlog t = t.log
let set_torn_commit t b = Txlog.set_torn_commit t.log b
let commits t = t.commits
let aborts t = t.aborts
let replays t = t.replays

let in_span t id detail f =
  match t.tracer with
  | None -> f ()
  | Some tr ->
      Trace.span_begin tr id detail;
      Fun.protect ~finally:(fun () -> Trace.span_end tr id) f

let instant t id detail =
  match t.tracer with None -> () | Some tr -> Trace.instant tr id detail

(* Log-record value encoding: 0 = absent/delete (legal because index
   values are nonzero by contract). *)
let enc = function None -> 0 | Some v -> v
let dec v = if v = 0 then None else Some v

let begin_tx ?deferred t =
  let deferred =
    match deferred with Some d -> d | None -> t.path = Shadow
  in
  let id = Txlog.begin_tx t.log in
  instant t Trace.id_tx_begin id;
  {
    mgr = t;
    id;
    deferred;
    live = true;
    nops = 0;
    undos = [];
    staged = [];
    overlay = Hashtbl.create 16;
  }

let check_live tx =
  if not tx.live then invalid_arg "Tx: transaction already retired"

let get tx k =
  check_live tx;
  if tx.deferred then
    match Hashtbl.find_opt tx.overlay k with
    | Some post -> post
    | None -> tx.mgr.ops.Intf.search k
  else tx.mgr.ops.Intf.search k

let visible_pre tx k =
  if tx.deferred then
    match Hashtbl.find_opt tx.overlay k with
    | Some post -> post
    | None -> tx.mgr.ops.Intf.read_for_update k
  else tx.mgr.ops.Intf.read_for_update k

let write tx k post =
  check_live tx;
  let m = tx.mgr in
  let pre = visible_pre tx k in
  let r = { Txlog.key = k; old_v = enc pre; new_v = enc post } in
  if tx.deferred then begin
    (* Shadow path: stage volatile, persist nothing yet. *)
    Txlog.append ~persist:false m.log r;
    tx.staged <- r :: tx.staged;
    Hashtbl.replace tx.overlay k post
  end
  else begin
    (* Logged path: undo record durable before the in-place write. *)
    in_span m Trace.id_tx_log tx.nops (fun () -> Txlog.append m.log r);
    m.ops.Intf.install k post;
    tx.undos <- m.ops.Intf.undo_of k pre :: tx.undos
  end;
  tx.nops <- tx.nops + 1;
  pre

let put tx k v =
  if v = 0 then invalid_arg "Tx.put: values must be nonzero";
  ignore (write tx k (Some v))

let del tx k = write tx k None <> None
let abort ?(reason = "aborted") _tx = raise (Abort reason)

let retire tx = tx.live <- false

let apply_staged tx =
  let m = tx.mgr in
  let own = not (Arena.in_group m.arena) in
  if own then Arena.group_begin m.arena;
  List.iter
    (fun r -> m.ops.Intf.install r.Txlog.key (dec r.Txlog.new_v))
    (List.rev tx.staged);
  if own then Arena.group_end m.arena

let commit tx =
  check_live tx;
  let m = tx.mgr in
  if tx.nops = 0 then begin
    (* Read-only: nothing was logged, nothing needs ordering. *)
    Txlog.abandon m.log;
    retire tx;
    m.commits <- m.commits + 1
  end
  else begin
  in_span m Trace.id_tx_commit tx.nops (fun () ->
      if tx.deferred then begin
        if Txlog.torn_commit m.log then
          (* Mutant: the decision record goes durable with no ordered
             persist of the payload it covers. *)
          Txlog.set_commit m.log
        else begin
          Txlog.persist_payload m.log;
          Txlog.set_commit m.log
        end;
        apply_staged tx
      end
      else
        (* Effects are already in place; the commit word makes the redo
           images authoritative for any crash before truncation. *)
        Txlog.set_commit m.log;
      Txlog.discard m.log);
  retire tx;
  m.commits <- m.commits + 1
  end

let rollback tx =
  check_live tx;
  let m = tx.mgr in
  if tx.nops = 0 then Txlog.abandon m.log
  else
    in_span m Trace.id_tx_abort tx.nops (fun () ->
        if not tx.deferred then List.iter (fun u -> u ()) tx.undos;
        Txlog.discard m.log);
  retire tx;
  m.aborts <- m.aborts + 1

let run t f =
  let tx = begin_tx t in
  match f tx with
  | v ->
      commit tx;
      Ok v
  | exception Abort reason ->
      rollback tx;
      Error reason
  | exception e ->
      (* A crash mid-append or mid-commit leaves the arena refusing
         further stores; the original exception must win over the
         secondary failure of a best-effort rollback. *)
      if tx.live then (try rollback tx with _ -> ());
      raise e

(* ------------------------------------------------------------------ *)
(* Two-phase commit hooks                                              *)
(* ------------------------------------------------------------------ *)

let prepare tx ~gtid ~coord =
  check_live tx;
  if not tx.deferred then
    invalid_arg "Tx.prepare: two-phase commit requires a deferred transaction";
  let m = tx.mgr in
  in_span m Trace.id_tx_log tx.nops (fun () ->
      if Txlog.torn_commit m.log then Txlog.set_prepared m.log ~gtid ~coord
      else begin
        Txlog.persist_payload m.log;
        Txlog.set_prepared m.log ~gtid ~coord
      end)

let decide tx =
  check_live tx;
  in_span tx.mgr Trace.id_tx_commit tx.nops (fun () ->
      Txlog.set_commit tx.mgr.log)

let decision t ~gtid = Txlog.decision t.log ~gtid

let apply tx =
  check_live tx;
  in_span tx.mgr Trace.id_tx_commit tx.nops (fun () -> apply_staged tx)

let finish tx =
  check_live tx;
  Txlog.discard tx.mgr.log;
  retire tx;
  tx.mgr.commits <- tx.mgr.commits + 1

let cancel tx =
  check_live tx;
  let m = tx.mgr in
  if tx.nops = 0 then Txlog.abandon m.log
  else in_span m Trace.id_tx_abort tx.nops (fun () -> Txlog.discard m.log);
  retire tx;
  m.aborts <- m.aborts + 1

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

let recover ?(decided = fun ~gtid:_ ~coord:_ -> false) t =
  let redo r = t.ops.Intf.install r.Txlog.key (dec r.Txlog.new_v) in
  let undo r = t.ops.Intf.install r.Txlog.key (dec r.Txlog.old_v) in
  let outcome =
    in_span t Trace.id_tx_replay 0 (fun () ->
        Txlog.resolve t.log ~decided ~redo ~undo)
  in
  (match outcome with
  | `Clean -> ()
  | `Redone n | `Undone n | `Aborted n ->
      t.replays <- t.replays + 1;
      instant t Trace.id_tx_replay n);
  outcome
